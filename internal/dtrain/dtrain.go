// Package dtrain is the end-to-end distributed bulk-sampled trainer —
// the code path that actually composes the paper's two contributions:
// ShaDow minibatches sampled in bulk as sparse-matrix operations
// (internal/sampling) and gradient synchronization through coalesced
// collectives (internal/comm, internal/ddp), driving the Interaction GNN
// across P simulated ranks.
//
// Each rank is a goroutine owning a model replica, a pinned
// workspace.Arena, and a contiguous range of the step's gradient
// micro-blocks. Every step each rank bulk-samples the subgraphs of its
// blocks (stacking up to BulkBatches batches into one matrix-sampler
// invocation), runs forward/backward per block, and synchronizes
// gradients under one of three strategies: one collective per parameter
// matrix (the baseline), one coalesced collective (the paper's
// optimization), or bucketed collectives overlapped with the backward
// pass (the PyTorch-DDP refinement: a bucket enters the ring as soon as
// its layer's backward completes).
//
// # Determinism
//
// The trainer is bitwise deterministic not just run-to-run but across
// rank counts and sync strategies: TrainEpoch at P ranks produces the
// exact float64 loss trajectory of the P=1 run. Three mechanisms make
// that hold:
//
//  1. Per-root sampling streams. Every batch vertex draws from its own
//     seeded generator (sampling.BulkMatrixShaDowStreams), so its ShaDow
//     subgraph does not depend on how batches are stacked into bulk
//     calls or sharded across ranks.
//  2. Canonical gradient micro-blocks. Each global batch is split into a
//     fixed number of micro-blocks (Config.GradBlocks, independent of
//     P). A rank backward-passes each of its blocks separately, so the
//     per-block gradients are P-independent.
//  3. Fixed-tree reduction. Block gradients cross ranks as distinct
//     summands (an all-reduce whose payload rows are per-block partials;
//     summation against zero rows is exact in IEEE arithmetic) and every
//     rank then combines all blocks with the same balanced pairwise tree
//     over block index. Floating-point addition is not associative, so a
//     plain ring reduction would order sums by rank layout; the fixed
//     tree makes the order a function of the block structure only.
//
// The sync strategy therefore changes which collectives are issued and
// charged — never the numbers. The α–β cost model charges each strategy
// the ring all-reduce a production NCCL deployment would run for the
// same logical payload: k·2(P−1)·α latency for per-matrix, one 2(P−1)·α
// for coalesced, and one per bucket for bucketed (overlapped with
// backward compute, so its wall-clock exposure is lower still).
package dtrain

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/ignn"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sampling"
	"repro/internal/tensor"
	"repro/internal/transport"
	"repro/internal/workspace"
)

// Config collects the distributed trainer's hyperparameters.
type Config struct {
	GNN       ignn.Config
	Epochs    int
	BatchSize int // global batch: ShaDow roots per optimizer step
	Shadow    sampling.Config
	LR        float64
	PosWeight float64

	// Ranks is the number of simulated devices P.
	Ranks int
	// Strategy selects the gradient synchronization pattern.
	Strategy ddp.SyncStrategy
	// BucketBytes caps each bucket for ddp.Bucketed
	// (ddp.DefaultBucketBytes when 0).
	BucketBytes int
	// BulkBatches is k, the number of consecutive batches stacked into
	// one bulk sampler invocation per rank (the paper's utilization
	// optimization). Changing k never changes the numbers — only how
	// much sampler work is amortized per call.
	BulkBatches int
	// GradBlocks is the number of canonical gradient micro-blocks per
	// step. It bounds usable ranks' parallelism (ranks beyond GradBlocks
	// idle through compute) and must stay fixed across runs that are
	// expected to match bitwise. Default 8.
	GradBlocks int

	// KernelWorkers bounds the intra-op parallelism of each rank's
	// kernels (0 = auto). Rank goroutines really run concurrently here,
	// so the per-rank budget is kernels.Budget(Ranks, KernelWorkers):
	// ranks × kernel-workers never exceeds GOMAXPROCS. A pure
	// performance knob — the loss trajectory is bitwise identical at
	// every value.
	KernelWorkers int

	// Network, when non-nil, carries the ring links of every transport
	// group over a pluggable transport (transport.TCP routes them through
	// real sockets; transport.Loopback through in-process pipes with a
	// registry). nil keeps the direct in-process pipe wiring. The loss
	// trajectory is bitwise identical either way — the reduction order is
	// a function of (Ranks, rank, length) only, never of the transport.
	// Callers that set Network should Close the trainer to release the
	// connections.
	Network transport.Network

	// CostModel prices the charged collectives; the zero value defaults
	// to comm.NVLink3 unless UseZeroCost is set.
	CostModel comm.CostModel
	// UseZeroCost makes New honor an explicitly zero CostModel (charge
	// nothing) instead of substituting the NVLink3 default.
	UseZeroCost bool

	Seed uint64
}

// DefaultConfig returns the paper-shaped defaults for a GNN config.
func DefaultConfig(gnn ignn.Config) Config {
	return Config{
		GNN:         gnn,
		Epochs:      8,
		BatchSize:   64,
		Shadow:      sampling.DefaultConfig(),
		LR:          1e-3,
		PosWeight:   1.0,
		Ranks:       1,
		Strategy:    ddp.Coalesced,
		BulkBatches: 4,
		GradBlocks:  8,
		Seed:        1,
	}
}

// CommStats summarizes the charged (logical) collective traffic.
type CommStats struct {
	// Calls is the number of charged collectives (per-matrix: one per
	// parameter per step; coalesced: one per step; bucketed: one per
	// bucket per step; plus the initial weight broadcast).
	Calls int64
	// LogicalBytes is the payload a production DDP would reduce — the
	// flattened gradient bytes, not the simulation's per-block transport.
	LogicalBytes int64
	// Modeled is the α–β ring time of the charged collectives.
	Modeled time.Duration
}

// EpochStats reports one epoch of distributed training.
type EpochStats struct {
	// Loss is the mean canonical step loss (sum of per-edge losses over
	// the global batch divided by its edge count).
	Loss float64
	// StepLosses is the canonical loss trajectory, one entry per
	// optimizer step — the sequence the determinism guarantee covers.
	StepLosses []float64
	// Steps is the number of optimizer steps taken.
	Steps int
	// Timer breaks the epoch into Sampling / Training (max across
	// ranks) and AllReduce (modeled collective time).
	Timer *metrics.PhaseTimer
	// Comm is the charged collective traffic of this epoch.
	Comm CommStats
}

// rankState is one rank's private training state.
type rankState struct {
	model  *ignn.Model
	params []*autograd.Param
	opt    nn.Optimizer
	arena  *workspace.Arena
	tape   *autograd.Tape
	timer  *metrics.PhaseTimer

	paramIdx map[*autograd.Param]int

	blockGrads [][]float64 // local block index → flattened gradient (len S)
	transports [][]float64 // bucket index → G×width all-reduce payload
	flat       []float64   // canonical combined gradient (len S)
	scratch    [][]float64 // tree-reduction temporaries, one per level
	meta       []float64   // 2·G: per-block (loss sum, edge count)
	lossTree   []float64   // G: loss sums gathered for tree reduction
	ctrl       []float64   // 1: cancellation consensus flag
}

// Trainer drives distributed bulk-sampled minibatch training.
type Trainer struct {
	Cfg Config

	ranks        []*rankState
	buckets      []ddp.Bucket
	bucketOfIdx  []int // param index → bucket index
	paramOffsets []int // param index → offset in the flattened gradient
	elems        int   // S: flattened gradient elements

	// Transport groups move real data through ring channels but charge
	// no modeled time (their payloads are the simulation's reproducible
	// per-block partials, not what a production ring would ship); the
	// logical collectives are charged explicitly against CostModel.
	bucketGroups []*comm.Group
	metaGroup    *comm.Group
	ctrlGroup    *comm.Group

	model comm.CostModel

	commCalls   int64
	commBytes   int64
	commModeled int64 // ns

	epoch       int
	edgeIndexes map[*pipeline.EventGraph]*sampling.EdgeIndex
	stepLosses  []float64 // rank 0 appends; driver drains per epoch
}

// New builds a trainer: P identically initialized replicas, per-rank
// arenas and tapes, bucket layout, transport groups, and the initial
// weight replication broadcast from rank 0.
func New(cfg Config) *Trainer {
	if cfg.Ranks < 1 {
		cfg.Ranks = 1
	}
	if cfg.GradBlocks < 1 {
		cfg.GradBlocks = 8
	}
	if cfg.BulkBatches < 1 {
		cfg.BulkBatches = 1
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 64
	}
	model := cfg.CostModel
	if !cfg.UseZeroCost && model == (comm.CostModel{}) {
		model = comm.NVLink3()
	}
	t := &Trainer{
		Cfg:         cfg,
		model:       model,
		edgeIndexes: make(map[*pipeline.EventGraph]*sampling.EdgeIndex),
	}
	replicas := ignn.Replicas(cfg.GNN, cfg.Seed+1000, cfg.Ranks)
	t.elems = nn.GradElements(replicas[0].Params())

	switch cfg.Strategy {
	case ddp.PerMatrix:
		t.buckets = ddp.BucketLayout(replicas[0].Params(), 1) // one param per bucket
	case ddp.Bucketed:
		t.buckets = ddp.BucketLayout(replicas[0].Params(), cfg.BucketBytes)
	default:
		t.buckets = ddp.BucketLayout(replicas[0].Params(), t.elems*8+1) // single bucket
	}

	params0 := replicas[0].Params()
	t.bucketOfIdx = make([]int, len(params0))
	for bi, b := range t.buckets {
		for _, p := range b.Params {
			t.bucketOfIdx[p] = bi
		}
	}
	t.paramOffsets = make([]int, len(params0)+1)
	for i, p := range params0 {
		t.paramOffsets[i+1] = t.paramOffsets[i] + p.Grad.Size()
	}

	var zero comm.CostModel
	for range t.buckets {
		t.bucketGroups = append(t.bucketGroups, newGroup(cfg, zero))
	}
	t.metaGroup = newGroup(cfg, zero)
	t.ctrlGroup = newGroup(cfg, zero)

	g := cfg.GradBlocks
	levels := 1
	for n := 1; n < g; n *= 2 {
		levels++
	}
	for rank := 0; rank < cfg.Ranks; rank++ {
		st := &rankState{
			model:    replicas[rank],
			params:   replicas[rank].Params(),
			opt:      nn.NewAdam(cfg.LR),
			arena:    workspace.NewArena(),
			timer:    metrics.NewPhaseTimer(),
			paramIdx: make(map[*autograd.Param]int),
			flat:     make([]float64, t.elems),
			meta:     make([]float64, 2*g),
			lossTree: make([]float64, g),
			ctrl:     make([]float64, 1),
		}
		st.tape = autograd.NewTapeArena(st.arena)
		st.tape.SetKernels(kernels.Budget(cfg.Ranks, cfg.KernelWorkers))
		for i, p := range st.params {
			st.paramIdx[p] = i
		}
		lo, hi := ddp.ShardRange(g, cfg.Ranks, rank)
		for b := lo; b < hi; b++ {
			st.blockGrads = append(st.blockGrads, make([]float64, t.elems))
		}
		for _, b := range t.buckets {
			st.transports = append(st.transports, make([]float64, g*b.Elements()))
		}
		for l := 0; l < levels; l++ {
			st.scratch = append(st.scratch, make([]float64, t.elems))
		}
		t.ranks = append(t.ranks, st)
	}

	// Initial weight replication: rank 0 broadcasts its flattened
	// parameters so every replica provably starts from the same bits
	// (they already do — the broadcast is the protocol, not a repair).
	if cfg.Ranks > 1 {
		bcast := newGroup(cfg, zero)
		defer bcast.Close()
		ddp.RunRanks(cfg.Ranks, func(rank int) {
			st := t.ranks[rank]
			buf := make([]float64, nn.ParamElements(st.params))
			nn.FlattenParams(st.params, buf)
			bcast.Broadcast(rank, buf, 0)
			nn.UnflattenParams(st.params, buf)
		})
		t.charge(1, int64(t.elems*8), t.model.BroadcastTime(int64(t.elems*8), cfg.Ranks))
	}
	return t
}

// newGroup builds one transport group: direct in-process pipes by
// default, ring links over cfg.Network when one is configured. Ring
// formation over a network is a one-time startup rendezvous; a failure
// there is a configuration error, surfaced as a panic because New's
// legacy signature has no error path.
func newGroup(cfg Config, model comm.CostModel) *comm.Group {
	if cfg.Network == nil {
		return comm.NewGroup(cfg.Ranks, model)
	}
	g, err := comm.NewGroupNetwork(cfg.Ranks, model, cfg.Network, nil)
	if err != nil {
		panic(fmt.Sprintf("dtrain: ring formation over network: %v", err))
	}
	return g
}

// Close releases the trainer's transport groups. A trainer over
// in-process pipes does not strictly need it; one over a real network
// (Config.Network) holds open sockets until closed.
func (t *Trainer) Close() error {
	var first error
	for _, g := range t.bucketGroups {
		if err := g.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, g := range []*comm.Group{t.metaGroup, t.ctrlGroup} {
		if g == nil {
			continue
		}
		if err := g.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// charge records one logical collective against the cost model.
func (t *Trainer) charge(calls, logicalBytes int64, d time.Duration) {
	atomic.AddInt64(&t.commCalls, calls)
	atomic.AddInt64(&t.commBytes, logicalBytes)
	atomic.AddInt64(&t.commModeled, int64(d))
}

// CommStats returns the accumulated charged collective traffic.
func (t *Trainer) CommStats() CommStats {
	return CommStats{
		Calls:        atomic.LoadInt64(&t.commCalls),
		LogicalBytes: atomic.LoadInt64(&t.commBytes),
		Modeled:      time.Duration(atomic.LoadInt64(&t.commModeled)),
	}
}

// Model returns replica 0 (replicas stay bitwise synchronized).
func (t *Trainer) Model() *ignn.Model { return t.ranks[0].model }

// Params returns replica 0's parameters.
func (t *Trainer) Params() []*autograd.Param { return t.ranks[0].params }

// NumBuckets reports how many collectives each step issues.
func (t *Trainer) NumBuckets() int { return len(t.buckets) }

func (t *Trainer) edgeIndex(eg *pipeline.EventGraph) *sampling.EdgeIndex {
	if idx, ok := t.edgeIndexes[eg]; ok {
		return idx
	}
	idx := sampling.NewEdgeIndex(eg.G)
	t.edgeIndexes[eg] = idx
	return idx
}

// fold mixes integers into a derived seed (splitmix-style), giving every
// (epoch, event, batch, root) coordinate its own independent stream.
func fold(seed uint64, parts ...uint64) uint64 {
	h := seed
	for _, p := range parts {
		h += 0x9e3779b97f4a7c15
		h = (h ^ p) * 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	return h
}

// Stream tags keep the derived RNG families disjoint.
const (
	tagPerm uint64 = 1 // per-event vertex shuffle
	tagRoot uint64 = 2 // per-root sampling stream
)

// planStep is one optimizer step of an epoch's precomputed schedule.
type planStep struct {
	event    int
	batchIdx int   // batch ordinal within its event (stream coordinate)
	roots    []int // global batch vertices
	runLen   int   // >0 on the first step of a bulk sampling run
}

// buildPlan lays out an epoch: per event, a seeded shuffle into batches,
// and consecutive same-event batches grouped into bulk runs of up to
// BulkBatches. The plan is a pure function of (seed, epoch, graphs) —
// never of Ranks or Strategy.
func (t *Trainer) buildPlan(epoch int, graphs []*pipeline.EventGraph) []planStep {
	var plan []planStep
	for ei, eg := range graphs {
		if eg.NumVertices() == 0 || eg.NumEdges() == 0 {
			continue
		}
		perm := rng.New(fold(t.Cfg.Seed, tagPerm, uint64(epoch), uint64(ei))).Perm(eg.NumVertices())
		start := len(plan)
		bi := 0
		for lo := 0; lo < len(perm); lo += t.Cfg.BatchSize {
			hi := lo + t.Cfg.BatchSize
			if hi > len(perm) {
				hi = len(perm)
			}
			plan = append(plan, planStep{event: ei, batchIdx: bi, roots: perm[lo:hi]})
			bi++
		}
		for i := start; i < len(plan); i += t.Cfg.BulkBatches {
			run := len(plan) - i
			if run > t.Cfg.BulkBatches {
				run = t.Cfg.BulkBatches
			}
			plan[i].runLen = run
		}
	}
	return plan
}

// blockBounds returns micro-block b's [lo, hi) within a batch of n roots.
func (t *Trainer) blockBounds(n, b int) (int, int) {
	return ddp.ShardRange(n, t.Cfg.GradBlocks, b)
}

// rootStreams builds the per-root generators for one batch's local
// blocks: the stream of a root depends only on its (epoch, event, batch,
// position) coordinate, never on sharding.
func (t *Trainer) rootStreams(epoch int, step planStep, blkLo, blkHi int) ([][]int, [][]*rng.Rand) {
	var batches [][]int
	var streams [][]*rng.Rand
	for b := blkLo; b < blkHi; b++ {
		lo, hi := t.blockBounds(len(step.roots), b)
		roots := step.roots[lo:hi]
		ss := make([]*rng.Rand, len(roots))
		for i := range roots {
			ss[i] = rng.New(fold(t.Cfg.Seed, tagRoot, uint64(epoch), uint64(step.event), uint64(step.batchIdx), uint64(lo+i)))
		}
		batches = append(batches, roots)
		streams = append(streams, ss)
	}
	return batches, streams
}

// treeReduceRows combines rows [lo, hi) of a row-major G×w buffer into
// dst with the canonical balanced pairwise tree — the fixed association
// order that makes gradient sums independent of rank layout.
func treeReduceRows(dst, buf []float64, w, lo, hi int, scratch [][]float64, level int) {
	if hi-lo == 1 {
		copy(dst, buf[lo*w:lo*w+w])
		return
	}
	mid := (lo + hi) / 2
	treeReduceRows(dst, buf, w, lo, mid, scratch, level+1)
	tmp := scratch[level][:w]
	treeReduceRows(tmp, buf, w, mid, hi, scratch, level+1)
	for i := range dst {
		dst[i] += tmp[i]
	}
}

// Train runs Cfg.Epochs epochs and returns the per-epoch stats. It stops
// early (returning the completed epochs alongside ctx.Err()) when the
// context is cancelled.
func (t *Trainer) Train(ctx context.Context, graphs []*pipeline.EventGraph) ([]EpochStats, error) {
	var out []EpochStats
	for e := 0; e < t.Cfg.Epochs; e++ {
		stats, err := t.TrainEpoch(ctx, graphs)
		out = append(out, stats)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// TrainEpoch executes one epoch across Cfg.Ranks rank goroutines. All
// ranks decide each step's fate together (a one-word consensus
// collective carries the cancellation flag), so a cancelled context
// stops every rank at the same step boundary with no goroutine leaked
// mid-collective.
func (t *Trainer) TrainEpoch(ctx context.Context, graphs []*pipeline.EventGraph) (EpochStats, error) {
	epoch := t.epoch
	t.epoch++
	plan := t.buildPlan(epoch, graphs)
	for _, eg := range graphs {
		if eg.NumVertices() > 0 && eg.NumEdges() > 0 {
			t.edgeIndex(eg)  // build shared indexes before ranks fan out
			eg.G.Adjacency() // materialize the lazily cached CSR likewise
		}
	}

	commBefore := t.CommStats()
	t.stepLosses = t.stepLosses[:0]
	for _, st := range t.ranks {
		st.timer = metrics.NewPhaseTimer()
	}
	var stopped atomic.Bool

	ddp.RunRanks(t.Cfg.Ranks, func(rank int) {
		t.runEpochRank(ctx, rank, epoch, plan, graphs, &stopped)
	})

	stats := EpochStats{Timer: metrics.NewPhaseTimer()}
	stats.StepLosses = append([]float64(nil), t.stepLosses...)
	stats.Steps = len(stats.StepLosses)
	if stats.Steps > 0 {
		sum := 0.0
		for _, l := range stats.StepLosses {
			sum += l
		}
		stats.Loss = sum / float64(stats.Steps)
	}
	for _, ph := range []metrics.Phase{metrics.PhaseSampling, metrics.PhaseTraining} {
		var worst time.Duration
		for _, st := range t.ranks {
			if d := st.timer.Get(ph); d > worst {
				worst = d
			}
		}
		stats.Timer.AddDuration(ph, worst)
	}
	after := t.CommStats()
	stats.Comm = CommStats{
		Calls:        after.Calls - commBefore.Calls,
		LogicalBytes: after.LogicalBytes - commBefore.LogicalBytes,
		Modeled:      after.Modeled - commBefore.Modeled,
	}
	stats.Timer.AddDuration(metrics.PhaseAllReduce, stats.Comm.Modeled)
	if stopped.Load() {
		return stats, ctx.Err()
	}
	return stats, nil
}

// runEpochRank is one rank's epoch body.
func (t *Trainer) runEpochRank(ctx context.Context, rank, epoch int, plan []planStep, graphs []*pipeline.EventGraph, stopped *atomic.Bool) {
	st := t.ranks[rank]
	g := t.Cfg.GradBlocks
	blkLo, blkHi := ddp.ShardRange(g, t.Cfg.Ranks, rank)
	nLocal := blkHi - blkLo

	// pending holds the bulk run's sampled subgraphs: nLocal per step.
	var pending []*sampling.Subgraph
	pendingAt := 0 // plan index pending starts at

	for si := 0; si < len(plan); si++ {
		step := plan[si]

		// Cancellation consensus: every rank contributes its view of the
		// context and all agree on the max — so either every rank enters
		// this step's collectives or none does.
		st.ctrl[0] = 0
		if ctx.Err() != nil {
			st.ctrl[0] = 1
		}
		t.ctrlGroup.AllReduceSum(rank, st.ctrl)
		if st.ctrl[0] > 0 {
			stopped.Store(true)
			return
		}

		eg := graphs[step.event]

		// Bulk sampling: on a run's first step, one matrix-sampler call
		// stacks this rank's blocks across all runLen batches.
		if step.runLen > 0 {
			pending = pending[:0]
			pendingAt = si
			if nLocal > 0 {
				start := time.Now()
				var batches [][]int
				var streams [][]*rng.Rand
				for ri := 0; ri < step.runLen; ri++ {
					b, s := t.rootStreams(epoch, plan[si+ri], blkLo, blkHi)
					batches = append(batches, b...)
					streams = append(streams, s...)
				}
				pending = sampling.BulkMatrixShaDowStreams(eg.G, t.edgeIndexes[eg], batches, t.Cfg.Shadow, streams)
				st.timer.AddDuration(metrics.PhaseSampling, time.Since(start))
			}
		}
		var subs []*sampling.Subgraph
		if nLocal > 0 {
			off := (si - pendingAt) * nLocal
			subs = pending[off : off+nLocal]
		}

		t.runStep(st, rank, eg, subs)
	}
}

// runStep executes one optimizer step: per-block backward passes, the
// strategy's collectives, the canonical tree combine, and the identical
// optimizer update on every rank.
func (t *Trainer) runStep(st *rankState, rank int, eg *pipeline.EventGraph, subs []*sampling.Subgraph) {
	g := t.Cfg.GradBlocks
	blkLo, _ := ddp.ShardRange(g, t.Cfg.Ranks, rank)
	nLocal := len(subs)
	bucketed := t.Cfg.Strategy == ddp.Bucketed

	start := time.Now()
	for i := range st.meta {
		st.meta[i] = 0
	}

	launched := make([]bool, len(t.buckets))
	var wg sync.WaitGroup
	bucketRemaining := make([]int, len(t.buckets))
	for bi, b := range t.buckets {
		bucketRemaining[bi] = len(b.Params)
	}

	launch := func(bi int) {
		// Fill the bucket's transport: local blocks' slices at their
		// global block rows, zero elsewhere. Adding +0 normalizes any
		// negative zero so the P=1 (no transport) and P>1 paths agree
		// bitwise.
		b := t.buckets[bi]
		w := b.Elements()
		tr := st.transports[bi]
		for i := range tr {
			tr[i] = 0
		}
		for j := 0; j < nLocal; j++ {
			row := tr[(blkLo+j)*w : (blkLo+j+1)*w]
			src := st.blockGrads[j][b.Lo:b.Hi]
			for i, v := range src {
				row[i] = v + 0
			}
		}
		launched[bi] = true
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.bucketGroups[bi].AllReduceSum(rank, tr)
			if rank == 0 && t.Cfg.Ranks > 1 {
				logical := int64(w * 8)
				t.charge(1, logical, t.model.RingAllReduceTime(logical, t.Cfg.Ranks))
			}
		}()
	}

	// Per-block forward/backward. The final local block arms the
	// param-grad hook under the bucketed strategy so each bucket's
	// collective launches the moment its layer's backward completes,
	// overlapping communication with the rest of the pass.
	for j := 0; j < nLocal; j++ {
		sub := subs[j]
		final := j == nLocal-1
		if sub == nil || sub.NumEdges() == 0 {
			for i := range st.blockGrads[j] {
				st.blockGrads[j][i] = 0
			}
			continue
		}
		nn.ZeroGrads(st.params)
		x := tensor.NewFrom(st.arena, len(sub.Vertices), eg.X.Cols())
		tensor.GatherRowsInto(x, eg.X, sub.Vertices)
		y := tensor.NewFrom(st.arena, len(sub.EdgeIDs), eg.Y.Cols())
		tensor.GatherRowsInto(y, eg.Y, sub.EdgeIDs)
		labels := st.arena.F64(len(sub.EdgeIDs))
		for i, id := range sub.EdgeIDs {
			labels[i] = eg.Label[id]
		}
		st.tape.Reset()
		logits := st.model.Forward(st.tape, sub.Src, sub.Dst, x, y)
		loss := st.tape.BCEWithLogitsSum(logits, labels, t.Cfg.PosWeight)
		if bucketed && final {
			bg := st.blockGrads[j]
			// The hook writes only the parameters backward reaches; clear
			// the slot so a parameter without gradient flow contributes
			// zeros rather than the previous step's values.
			for i := range bg {
				bg[i] = 0
			}
			st.tape.SetParamGradHook(func(p *autograd.Param) {
				pi := st.paramIdx[p]
				bi := t.bucketOfIdx[pi]
				// Flatten this parameter's finished gradient into the
				// final block's slot, then launch the bucket when it is
				// the last to arrive.
				off := t.paramOffsets[pi]
				copy(bg[off:off+p.Grad.Size()], p.Grad.Data())
				bucketRemaining[bi]--
				if bucketRemaining[bi] == 0 {
					launch(bi)
				}
			})
		}
		st.tape.Backward(loss)
		if bucketed && final {
			st.tape.SetParamGradHook(nil)
		} else {
			nn.FlattenGrads(st.params, st.blockGrads[j])
		}
		gb := blkLo + j
		st.meta[2*gb] = loss.Value.At(0, 0)
		st.meta[2*gb+1] = float64(len(sub.EdgeIDs))
		st.arena.Reset()
	}

	// Issue whatever the hook did not: all buckets for the synchronous
	// strategies; stragglers (empty final block, grad-free params) for
	// the bucketed one. Order is deterministic; each bucket has its own
	// transport group, so in-flight overlapped buckets are unaffected.
	for bi := range t.buckets {
		if !launched[bi] {
			launch(bi)
		}
	}
	wg.Wait()
	st.timer.AddDuration(metrics.PhaseTraining, time.Since(start))

	// Share per-block loss sums and edge counts (control plane, uncharged).
	t.metaGroup.AllReduceSum(rank, st.meta)

	totalEdges := 0.0
	for b := 0; b < g; b++ {
		st.lossTree[b] = st.meta[2*b]
		totalEdges += st.meta[2*b+1]
	}
	if totalEdges == 0 {
		return
	}

	start = time.Now()
	// Canonical combine: fixed tree over global block index, identical
	// on every rank, then the global-edge-count normalization.
	for bi, b := range t.buckets {
		treeReduceRows(st.flat[b.Lo:b.Hi], st.transports[bi], b.Elements(), 0, g, st.scratch, 0)
	}
	inv := 1 / totalEdges
	for i := range st.flat {
		st.flat[i] *= inv
	}
	nn.UnflattenGrads(st.params, st.flat)
	st.opt.Step(st.params)
	st.timer.AddDuration(metrics.PhaseTraining, time.Since(start))

	if rank == 0 {
		var lossSum float64
		scalarScratch := make([][]float64, len(st.scratch))
		for i := range scalarScratch {
			scalarScratch[i] = st.scratch[i][:1]
		}
		var dst [1]float64
		treeReduceRows(dst[:], st.lossTree, 1, 0, g, scalarScratch, 0)
		lossSum = dst[0]
		t.stepLosses = append(t.stepLosses, lossSum/totalEdges)
	}
}
