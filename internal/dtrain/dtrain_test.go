package dtrain

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/ddp"
	"repro/internal/detector"
	"repro/internal/ignn"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/sampling"
	"repro/internal/transport"
)

// testGraphs builds small truth-level event graphs.
func testGraphs(t *testing.T, events int, scale float64) ([]*pipeline.EventGraph, ignn.Config) {
	t.Helper()
	spec := detector.Ex3Like(scale)
	spec.NumEvents = events
	ds := detector.Generate(spec, 33)
	p := pipeline.New(pipeline.DefaultConfig(spec), 44)
	var egs []*pipeline.EventGraph
	for i, ev := range ds.Events {
		egs = append(egs, p.BuildTruthLevelGraph(ev, 1.5, uint64(200+i)))
	}
	gnn := ignn.Config{
		NodeFeatures: spec.VertexFeatures,
		EdgeFeatures: spec.EdgeFeatures,
		Hidden:       8,
		Steps:        2,
	}
	return egs, gnn
}

func fastConfig(gnn ignn.Config) Config {
	cfg := DefaultConfig(gnn)
	cfg.Epochs = 2
	cfg.BatchSize = 48
	cfg.Shadow = sampling.Config{Depth: 2, Fanout: 4}
	cfg.LR = 3e-3
	cfg.Seed = 7
	return cfg
}

// trajectory trains a fresh trainer and returns the concatenated
// per-step loss trajectory across epochs.
func trajectory(t *testing.T, cfg Config, egs []*pipeline.EventGraph) []float64 {
	t.Helper()
	tr := New(cfg)
	defer tr.Close()
	var losses []float64
	for e := 0; e < cfg.Epochs; e++ {
		stats, err := tr.TrainEpoch(context.Background(), egs)
		if err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if stats.Steps == 0 {
			t.Fatalf("epoch %d took no steps", e)
		}
		losses = append(losses, stats.StepLosses...)
	}
	return losses
}

func assertSameTrajectory(t *testing.T, name string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d steps vs %d", name, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: step %d loss %.17g != %.17g (bitwise mismatch)", name, i, got[i], want[i])
		}
	}
}

// TestRankCountParity is the acceptance bar: with a fixed seed and the
// same global batches, P∈{1,2,4} produce bit-identical loss
// trajectories, for both the coalesced and per-matrix strategies (and
// the bucketed-overlap one).
func TestRankCountParity(t *testing.T) {
	egs, gnn := testGraphs(t, 2, 0.02)
	for _, strategy := range []ddp.SyncStrategy{ddp.Coalesced, ddp.PerMatrix, ddp.Bucketed} {
		base := fastConfig(gnn)
		base.Strategy = strategy
		if strategy == ddp.Bucketed {
			base.BucketBytes = 2048 // force several buckets at test scale
		}
		base.Ranks = 1
		want := trajectory(t, base, egs)
		for _, p := range []int{2, 4} {
			cfg := base
			cfg.Ranks = p
			got := trajectory(t, cfg, egs)
			assertSameTrajectory(t, strategy.String()+"/P="+string(rune('0'+p)), want, got)
		}
	}
}

// TestNetworkTransportParity: moving the ring links off in-process
// pipes and onto a transport.Network — including real TCP sockets, the
// multi-process deployment shape — must not change a single bit of the
// loss trajectory. The reduction order is a function of (Ranks, rank,
// buffer length) only, never of the wire.
func TestNetworkTransportParity(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	base := fastConfig(gnn)
	base.Ranks = 3
	base.Epochs = 1
	want := trajectory(t, base, egs) // direct in-process pipes

	nets := map[string]transport.Network{
		"loopback": transport.NewLoopback(),
		"tcp":      &transport.TCP{},
	}
	for name, net := range nets {
		cfg := base
		cfg.Network = net
		assertSameTrajectory(t, "network "+name, want, trajectory(t, cfg, egs))
	}
}

// TestStrategyParity: the sync strategy changes which collectives are
// charged, never the numbers.
func TestStrategyParity(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	base := fastConfig(gnn)
	base.Ranks = 2
	base.Strategy = ddp.Coalesced
	want := trajectory(t, base, egs)
	for _, strategy := range []ddp.SyncStrategy{ddp.PerMatrix, ddp.Bucketed} {
		cfg := base
		cfg.Strategy = strategy
		cfg.BucketBytes = 2048
		assertSameTrajectory(t, "strategy "+strategy.String(), want, trajectory(t, cfg, egs))
	}
}

// TestBulkBatchParity: the bulk batch count k is a pure performance
// knob — per-root sampling streams make the subgraphs, and therefore the
// trajectory, independent of sampler-call stacking.
func TestBulkBatchParity(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	base := fastConfig(gnn)
	base.Ranks = 2
	base.BulkBatches = 1
	want := trajectory(t, base, egs)
	for _, k := range []int{2, 4} {
		cfg := base
		cfg.BulkBatches = k
		assertSameTrajectory(t, "bulk k", want, trajectory(t, cfg, egs))
	}
}

// TestGradBlockCountMatters documents the flip side of the determinism
// contract: GradBlocks defines the canonical reduction tree, so changing
// it is allowed to change low-order bits. (No assertion on inequality —
// just that both configurations train sanely.)
func TestLossDecreases(t *testing.T) {
	egs, gnn := testGraphs(t, 2, 0.02)
	cfg := fastConfig(gnn)
	cfg.Ranks = 2
	cfg.Epochs = 6
	tr := New(cfg)
	stats, err := tr.Train(context.Background(), egs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("got %d epochs", len(stats))
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].Loss, stats[len(stats)-1].Loss)
	}
	// The trained model must produce non-degenerate edge scores
	// (evaluation through the public surface lives in recon).
	eg := egs[0]
	scores := tr.Model().EdgeScores(eg.G.Src, eg.G.Dst, eg.X, eg.Y)
	counts := metrics.FromScores(scores, eg.Label, 0.5)
	if counts.Precision() == 0 && counts.Recall() == 0 {
		t.Fatal("trained model scored nothing")
	}
}

// TestCommAccounting: coalesced and bucketed must charge at most the
// per-matrix collective cost at every P — the paper's §III-D claim under
// the α–β model.
func TestCommAccounting(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	for _, p := range []int{2, 4} {
		modeled := map[ddp.SyncStrategy]time.Duration{}
		calls := map[ddp.SyncStrategy]int64{}
		for _, strategy := range []ddp.SyncStrategy{ddp.PerMatrix, ddp.Coalesced, ddp.Bucketed} {
			cfg := fastConfig(gnn)
			cfg.Ranks = p
			cfg.Strategy = strategy
			cfg.BucketBytes = 4096
			cfg.Epochs = 1
			tr := New(cfg)
			if _, err := tr.TrainEpoch(context.Background(), egs); err != nil {
				t.Fatal(err)
			}
			cs := tr.CommStats()
			modeled[strategy] = cs.Modeled
			calls[strategy] = cs.Calls
			if cs.Calls == 0 || cs.Modeled == 0 {
				t.Fatalf("P=%d %s: no comm charged", p, strategy)
			}
		}
		if modeled[ddp.Coalesced] > modeled[ddp.PerMatrix] {
			t.Fatalf("P=%d: coalesced %v > per-matrix %v", p, modeled[ddp.Coalesced], modeled[ddp.PerMatrix])
		}
		if modeled[ddp.Bucketed] > modeled[ddp.PerMatrix] {
			t.Fatalf("P=%d: bucketed %v > per-matrix %v", p, modeled[ddp.Bucketed], modeled[ddp.PerMatrix])
		}
		if calls[ddp.Coalesced] >= calls[ddp.PerMatrix] {
			t.Fatalf("P=%d: coalesced calls %d not < per-matrix %d", p, calls[ddp.Coalesced], calls[ddp.PerMatrix])
		}
	}
}

// TestSingleRankNoComm: P=1 charges nothing.
func TestSingleRankNoComm(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	cfg := fastConfig(gnn)
	cfg.Epochs = 1
	tr := New(cfg)
	if _, err := tr.TrainEpoch(context.Background(), egs); err != nil {
		t.Fatal(err)
	}
	if cs := tr.CommStats(); cs.Modeled != 0 {
		t.Fatalf("P=1 charged %v", cs.Modeled)
	}
}

// TestCancellationMidEpoch: cancelling the context mid-epoch stops every
// rank promptly at a step boundary without leaking goroutines, and
// TrainEpoch reports the context error.
func TestCancellationMidEpoch(t *testing.T) {
	egs, gnn := testGraphs(t, 3, 0.03)
	cfg := fastConfig(gnn)
	cfg.Ranks = 4
	cfg.Strategy = ddp.Bucketed
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	tr := New(cfg)
	// First epoch untouched, then cancel during the second.
	if _, err := tr.TrainEpoch(ctx, egs); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := tr.TrainEpoch(ctx, egs)
	if err == nil {
		// The epoch may have finished before the cancel landed; force a
		// deterministic check with an already-cancelled context.
		_, err = tr.TrainEpoch(ctx, egs)
	}
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// All rank and bucket goroutines must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}

// TestAlreadyCancelled: a cancelled context takes no steps at all.
func TestAlreadyCancelled(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	cfg := fastConfig(gnn)
	cfg.Ranks = 2
	tr := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := tr.TrainEpoch(ctx, egs)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if stats.Steps != 0 {
		t.Fatalf("cancelled epoch took %d steps", stats.Steps)
	}
}

// TestRanksExceedingBlocks: ranks beyond GradBlocks idle through compute
// but still participate in collectives — no deadlock, same numbers.
func TestRanksExceedingBlocks(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	base := fastConfig(gnn)
	base.GradBlocks = 2
	base.Ranks = 1
	want := trajectory(t, base, egs)
	cfg := base
	cfg.Ranks = 3 // one rank owns no blocks
	assertSameTrajectory(t, "P>G", want, trajectory(t, cfg, egs))
}
