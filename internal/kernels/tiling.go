package kernels

import (
	"sync/atomic"

	"repro/internal/fp"
)

// TileShape describes the cache-blocking of one precision's hot
// kernels. The zero value means "use the process default" (see
// DefaultTiling); a negative field disables that blocking dimension and
// falls back to the flat kernel. Every supported shape produces bitwise
// identical results — tiles regroup loops without changing any per-
// element accumulation order — so the choice is a pure performance
// knob, swept per host by `bench -tile-sweep`.
type TileShape struct {
	// MR is the GEMM micro-kernel height: how many output rows
	// accumulate simultaneously in registers against one packed
	// 4-column panel of B. Supported values are 1, 2, and 4 (others
	// round down); negative selects the flat (unpacked) GEMM.
	MR int
	// JB is the GEMM column-block width in output columns: the span of
	// packed panels kept hot while sweeping a block of rows. Rounded up
	// to a multiple of the 4-wide panel; negative or zero uses the
	// default.
	JB int
	// Band is the blocked-CSR column-band width of the sparse
	// aggregation kernels: the incidence matrix splits into
	// ⌈cols/Band⌉ column bands so the rows of the dense operand
	// touched by one band stay cache-resident. Negative selects the
	// flat CSR path.
	Band int
}

// GEMMOff reports whether the packed GEMM is disabled.
func (s TileShape) GEMMOff() bool { return s.MR < 0 }

// BandOff reports whether blocked-CSR aggregation is disabled.
func (s TileShape) BandOff() bool { return s.Band < 0 }

// normalize clamps s to the shapes the kernels implement: MR rounds
// down to {1,2,4}, JB rounds up to a positive multiple of 4. Negative
// fields pass through (they mean "off"); zero fields must already have
// been resolved against a default.
func (s TileShape) normalize() TileShape {
	switch {
	case s.MR >= 4:
		s.MR = 4
	case s.MR >= 2:
		s.MR = 2
	case s.MR >= 1:
		s.MR = 1
	}
	if s.JB > 0 {
		s.JB = (s.JB + 3) &^ 3
	} else if s.MR > 0 {
		s.JB = 512
	}
	return s
}

// Tiling bundles the per-precision tile shapes threaded through
// Context. The zero value resolves every shape to the process default,
// so serving picks up tuned tiles with zero flags.
type Tiling struct {
	F64, F32, I8 TileShape
}

// builtinTiling is the baked-in default, chosen by `bench -tile-sweep`
// on the reference host (see PERF.md "PR 10 tiling protocol" for the
// full sweep tables). Narrow GEMM column blocks win there — the packed
// panels for 64 output columns fit L1 alongside the A rows — while the
// incidence SpMM runs flat (Band < 0): incidence matrices are
// hyper-sparse (4 nnz/row), so per-band row-pointer overhead exceeds
// the locality gain at serving sizes. Re-run the sweep on a new host
// class; SetDefaultTiling or recon.WithTiling override without a
// rebuild.
var builtinTiling = Tiling{
	F64: TileShape{MR: 4, JB: 64, Band: -1},
	F32: TileShape{MR: 2, JB: 64, Band: -1},
	I8:  TileShape{MR: 4, JB: 256, Band: -1},
}

// defaultTiling holds the process-wide default, replaceable by the
// autotuner.
var defaultTiling atomic.Value // Tiling

func init() { defaultTiling.Store(builtinTiling) }

// DefaultTiling returns the process-wide default tiling: the built-in
// shapes unless SetDefaultTiling installed a tuned set.
func DefaultTiling() Tiling {
	return defaultTiling.Load().(Tiling)
}

// SetDefaultTiling installs t (with zero fields resolved against the
// built-in defaults) as the process-wide default — how `bench
// -tile-sweep` applies its chosen tiles before the main suite runs.
func SetDefaultTiling(t Tiling) {
	defaultTiling.Store(t.resolveAgainst(builtinTiling))
}

// Resolve fills every zero field of t from the process default and
// normalizes the result to implemented shapes.
func (t Tiling) Resolve() Tiling {
	return t.resolveAgainst(DefaultTiling())
}

func (t Tiling) resolveAgainst(d Tiling) Tiling {
	t.F64 = t.F64.resolveAgainst(d.F64).normalize()
	t.F32 = t.F32.resolveAgainst(d.F32).normalize()
	t.I8 = t.I8.resolveAgainst(d.I8).normalize()
	return t
}

func (s TileShape) resolveAgainst(d TileShape) TileShape {
	if s.MR == 0 {
		s.MR = d.MR
	}
	if s.JB == 0 {
		s.JB = d.JB
	}
	if s.Band == 0 {
		s.Band = d.Band
	}
	return s
}

// ShapeFor resolves the tile shape of element type T under c: the
// explicit per-precision shape when the Context carries one, the
// process default otherwise.
func ShapeFor[T fp.Float](c Context) TileShape {
	t := c.Tiles.Resolve()
	if fp.Is32[T]() {
		return t.F32
	}
	return t.F64
}

// ShapeI8 resolves the int8 tile shape under c.
func (c Context) ShapeI8() TileShape { return c.Tiles.Resolve().I8 }
