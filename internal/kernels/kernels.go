// Package kernels defines the intra-op parallelism budget threaded
// through the hot kernels (GEMM, SpGEMM, SpMM, gathers, fused ops).
//
// Every parallel kernel in internal/tensor and internal/sparse is
// row-partitioned with static chunking and no cross-chunk floating-point
// accumulation, so its output is bitwise identical at every worker
// count; the Context only decides how many goroutines share the loop.
// That makes the budget a pure performance knob that composes with the
// inter-op parallelism above it (engine workers, trainer ranks): each
// outer unit of concurrency runs its kernels under a Context sized so
// that outer × inner never oversubscribes GOMAXPROCS.
//
// The Context also carries the per-precision cache-blocking shapes
// (Tiling) the layout-tiled kernels run at; like the worker budget,
// tiles never change results — only where the time goes.
//
// The package is a leaf (stdlib + internal/fp only) so tensor, sparse,
// autograd, and the stage packages can all depend on it.
package kernels

import (
	"context"
	"runtime"
)

// Context carries the intra-op worker budget for one unit of work (one
// engine worker, one trainer rank, one serial caller). The zero value
// means "no explicit budget": kernels use GOMAXPROCS, the historical
// default.
type Context struct {
	// Workers is the maximum goroutines one kernel invocation may fan
	// out to. 0 (or negative) means GOMAXPROCS.
	Workers int
	// Tiles carries the per-precision cache-blocking shapes of the
	// tiled kernels. Zero fields resolve to the process default
	// (DefaultTiling), so the zero Context runs tuned tiles.
	Tiles Tiling
}

// Cap resolves the budget to a concrete worker count: Workers when
// positive, GOMAXPROCS otherwise.
func (c Context) Cap() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Budget returns the per-unit Context for `units` concurrent outer units
// (trainer ranks, engine workers) when the caller requested `requested`
// kernel workers per unit (0 = auto). The invariant is the worker-budget
// rule documented in PERF.md: units × per-unit workers ≤ GOMAXPROCS,
// with a floor of one worker so kernels always make progress. An
// explicit request is honoured only up to that cap, so callers cannot
// oversubscribe the host by combining options.
func Budget(units, requested int) Context {
	if units < 1 {
		units = 1
	}
	share := runtime.GOMAXPROCS(0) / units
	if share < 1 {
		share = 1
	}
	w := requested
	if w <= 0 || w > share {
		w = share
	}
	return Context{Workers: w}
}

// ctxKey keys the Context inside a context.Context.
type ctxKey struct{}

// Into returns a context.Context carrying kc. The recon stage interfaces
// pass context.Context (not kernels.Context) through their public
// signatures; this is how the engine hands each worker its per-worker
// budget without changing those signatures.
func Into(ctx context.Context, kc Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, kc)
}

// From extracts the Context installed by Into, or the zero Context
// (= GOMAXPROCS) when none is present.
func From(ctx context.Context) Context {
	if kc, ok := ctx.Value(ctxKey{}).(Context); ok {
		return kc
	}
	return Context{}
}
