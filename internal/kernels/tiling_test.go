package kernels

import "testing"

func TestZeroTilingResolvesToDefault(t *testing.T) {
	got := (Tiling{}).Resolve()
	for _, s := range []TileShape{got.F64, got.F32, got.I8} {
		if s.MR <= 0 || s.JB <= 0 || s.Band == 0 {
			t.Fatalf("zero Tiling resolved to incomplete shape %+v", got)
		}
	}
}

func TestNegativeFieldsDisable(t *testing.T) {
	tl := Tiling{F64: TileShape{MR: -1, JB: -1, Band: -1}}.Resolve()
	if !tl.F64.GEMMOff() || !tl.F64.BandOff() {
		t.Fatalf("negative shape did not disable: %+v", tl.F64)
	}
	// Other precisions still resolve to defaults.
	if tl.F32.MR <= 0 {
		t.Fatalf("untouched precision lost its default: %+v", tl.F32)
	}
}

func TestNormalizeClampsToImplementedShapes(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 4}, {8, 4}, {100, 4},
	} {
		got := TileShape{MR: tc.in, JB: 512, Band: 512}.normalize()
		if got.MR != tc.want {
			t.Fatalf("normalize MR %d = %d, want %d", tc.in, got.MR, tc.want)
		}
	}
	if got := (TileShape{MR: 4, JB: 5}).normalize(); got.JB != 8 {
		t.Fatalf("JB 5 normalized to %d, want 8", got.JB)
	}
	if got := (TileShape{MR: 4, JB: -3}).normalize(); got.JB != 512 {
		t.Fatalf("negative JB normalized to %d, want default 512", got.JB)
	}
}

func TestSetDefaultTilingAppliesAndResolves(t *testing.T) {
	orig := DefaultTiling()
	defer defaultTiling.Store(orig)
	SetDefaultTiling(Tiling{F32: TileShape{MR: 2, JB: 64, Band: 128}})
	got := DefaultTiling()
	if got.F32 != (TileShape{MR: 2, JB: 64, Band: 128}) {
		t.Fatalf("SetDefaultTiling F32 = %+v", got.F32)
	}
	// Unset precisions fall back to the built-ins.
	if got.F64 != builtinTiling.F64.normalize() {
		t.Fatalf("SetDefaultTiling F64 = %+v, want builtin %+v", got.F64, builtinTiling.F64)
	}
	// A zero Context now resolves to the tuned set.
	if s := ShapeFor[float32](Context{}); s != (TileShape{MR: 2, JB: 64, Band: 128}) {
		t.Fatalf("ShapeFor[float32] = %+v", s)
	}
}

func TestShapeForSelectsPrecision(t *testing.T) {
	kc := Context{Tiles: Tiling{
		F64: TileShape{MR: 1, JB: 4, Band: 1},
		F32: TileShape{MR: 2, JB: 8, Band: 2},
		I8:  TileShape{MR: 4, JB: 12, Band: 3},
	}}
	if s := ShapeFor[float64](kc); s.MR != 1 || s.Band != 1 {
		t.Fatalf("f64 shape %+v", s)
	}
	if s := ShapeFor[float32](kc); s.MR != 2 || s.Band != 2 {
		t.Fatalf("f32 shape %+v", s)
	}
	if s := kc.ShapeI8(); s.MR != 4 || s.Band != 3 {
		t.Fatalf("i8 shape %+v", s)
	}
}
