package kernels

import (
	"context"
	"runtime"
	"testing"
)

func TestCapDefaultsToGOMAXPROCS(t *testing.T) {
	if got := (Context{}).Cap(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("zero Context cap = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Context{Workers: 3}).Cap(); got != 3 {
		t.Fatalf("explicit cap = %d, want 3", got)
	}
}

// TestBudgetNeverOversubscribes pins the worker-budget rule:
// units × per-unit workers ≤ GOMAXPROCS (with a floor of one worker per
// unit), whatever was requested.
func TestBudgetNeverOversubscribes(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	for _, units := range []int{0, 1, 2, 4, 7, 100} {
		for _, req := range []int{0, 1, 3, 1000} {
			kc := Budget(units, req)
			if kc.Workers < 1 {
				t.Fatalf("Budget(%d,%d).Workers = %d < 1", units, req, kc.Workers)
			}
			u := units
			if u < 1 {
				u = 1
			}
			if u*kc.Workers > maxprocs && kc.Workers != 1 {
				t.Fatalf("Budget(%d,%d) oversubscribes: %d×%d > %d", units, req, u, kc.Workers, maxprocs)
			}
			if req > 0 && kc.Workers > req {
				t.Fatalf("Budget(%d,%d) exceeds request: %d", units, req, kc.Workers)
			}
		}
	}
}

func TestContextRoundTripsThroughContext(t *testing.T) {
	ctx := Into(context.Background(), Context{Workers: 5})
	if got := From(ctx); got.Workers != 5 {
		t.Fatalf("From(Into(5)) = %+v", got)
	}
	if got := From(context.Background()); got.Workers != 0 {
		t.Fatalf("From(plain ctx) = %+v, want zero", got)
	}
}
