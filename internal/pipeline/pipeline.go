// Package pipeline assembles the five-stage Exa.TrkX track-reconstruction
// pipeline (Figure 1 of the paper): (1) embed hits with an MLP, (2) build
// a fixed-radius nearest-neighbor graph in embedding space, (3) shrink the
// graph with an edge-filter MLP, (4) classify the surviving edges with an
// Interaction GNN, and (5) extract track candidates as connected
// components of the surviving true edges.
package pipeline

import (
	"context"
	"fmt"

	"repro/internal/autograd"
	"repro/internal/detector"
	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/ignn"
	"repro/internal/knnsearch"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Config collects all pipeline hyperparameters.
type Config struct {
	Spec detector.Spec

	Embed  embed.Config
	Filter filter.Config
	GNN    ignn.Config

	Radius    float64 // fixed-radius graph construction distance
	MaxDegree int     // per-vertex neighbor cap during construction

	GNNThreshold float64 // edge score needed to survive stage 4
	MinTrackHits int     // track candidates below this are dropped
}

// DefaultConfig returns a laptop-scale configuration tuned for the
// synthetic datasets. The structural hyperparameters follow the paper
// (8-layer GNN, hidden 64) scaled down via the hidden/steps fields which
// experiments override as needed.
func DefaultConfig(spec detector.Spec) Config {
	return Config{
		Spec:   spec,
		Embed:  embed.DefaultConfig(spec),
		Filter: filter.DefaultConfig(spec.VertexFeatures, spec.EdgeFeatures, spec.MLPLayers),
		GNN: ignn.Config{
			NodeFeatures: spec.VertexFeatures,
			EdgeFeatures: spec.EdgeFeatures,
			Hidden:       32,
			Steps:        4,
		},
		Radius:       0.35,
		MaxDegree:    12,
		GNNThreshold: 0.5,
		MinTrackHits: 3,
	}
}

// Pipeline holds the three trained models.
type Pipeline struct {
	Cfg      Config
	Embedder *embed.Embedder
	Filter   *filter.EdgeFilter
	GNN      *ignn.Model
}

// New creates an untrained pipeline with deterministic initialization.
func New(cfg Config, seed uint64) *Pipeline {
	r := rng.New(seed)
	return &Pipeline{
		Cfg:      cfg,
		Embedder: embed.New(cfg.Embed, r.Split()),
		Filter:   filter.New(cfg.Filter, r.Split()),
		GNN:      ignn.New(cfg.GNN, r.Split()),
	}
}

// EventGraph is the constructed, filtered graph for one event — the input
// the GNN stage trains and evaluates on.
type EventGraph struct {
	Event *detector.Event
	G     *graph.Graph  // filtered event graph (stage 1–3 output)
	X     *tensor.Dense // node features (n × nodeFeatures)
	Y     *tensor.Dense // edge features (m × edgeFeatures)
	Label []float64     // per-edge truth label
}

// NumVertices returns the vertex count.
func (eg *EventGraph) NumVertices() int { return eg.G.N }

// NumEdges returns the edge count.
func (eg *EventGraph) NumEdges() int { return eg.G.NumEdges() }

// BuildGraph runs stages 1–3 on an event: embed, radius graph, filter.
// The returned EventGraph carries edge truth labels for training stage 4.
// All intermediate activations live in one workspace arena released
// before returning, so repeated graph building recycles warm buffers.
func (p *Pipeline) BuildGraph(ev *detector.Event) *EventGraph {
	arena := workspace.NewArena()
	defer arena.Reset()

	// Stage 1: embedding; stage 2: fixed-radius neighbors in that space.
	embedded := p.Embedder.EmbedWith(arena, ev.Features)
	src, dst := knnsearch.BuildRadiusGraph(embedded, p.Cfg.Radius, p.Cfg.MaxDegree)

	// Stage 3: filter MLP prunes implausible edges.
	edgeFeat := detector.EdgeFeatures(p.Cfg.Spec, ev, src, dst)
	keep := p.Filter.KeepWith(arena, ev.Features, edgeFeat, src, dst)
	var fsrc, fdst []int
	for k := range src {
		if keep[k] {
			fsrc = append(fsrc, src[k])
			fdst = append(fdst, dst[k])
		}
	}
	return p.assembleGraph(ev, fsrc, fdst)
}

// BuildTruthLevelGraph constructs the event graph from truth edges plus
// the given number of random fake edges per true edge — a shortcut used
// by GNN-stage experiments (Figures 3 and 4) to decouple GNN training
// quality from upstream stage tuning, while preserving realistic
// vertex/edge ratios.
func (p *Pipeline) BuildTruthLevelGraph(ev *detector.Event, fakeRatio float64, seed uint64) *EventGraph {
	r := rng.New(seed)
	src := append([]int(nil), ev.TruthSrc...)
	dst := append([]int(nil), ev.TruthDst...)
	n := ev.NumHits()
	nFake := int(float64(len(src)) * fakeRatio)
	for i := 0; i < nFake; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || ev.IsTruthEdge(a, b) {
			continue
		}
		src = append(src, a)
		dst = append(dst, b)
	}
	return p.assembleGraph(ev, src, dst)
}

func (p *Pipeline) assembleGraph(ev *detector.Event, src, dst []int) *EventGraph {
	return AssembleGraph(p.Cfg.Spec, ev, src, dst)
}

// AssembleGraph packages an edge list into an EventGraph with truth
// labels and edge features — the shared stage-2/3 output format consumed
// by the GNN stage. The result is heap-owned.
func AssembleGraph(spec detector.Spec, ev *detector.Event, src, dst []int) *EventGraph {
	labels := make([]float64, len(src))
	for k := range src {
		if ev.IsTruthEdge(src[k], dst[k]) {
			labels[k] = 1
		}
	}
	return &EventGraph{
		Event: ev,
		G:     graph.New(ev.NumHits(), src, dst),
		X:     ev.Features,
		Y:     detector.EdgeFeatures(spec, ev, src, dst),
		Label: labels,
	}
}

// GraphQuality reports stage 1–3 output quality: the fraction of truth
// edges present in the constructed graph (edgewise efficiency) and the
// fraction of constructed edges that are true (purity).
func (eg *EventGraph) GraphQuality() (efficiency, purity float64) {
	trueKept := 0.0
	for _, l := range eg.Label {
		trueKept += l
	}
	if len(eg.Event.TruthSrc) > 0 {
		efficiency = trueKept / float64(len(eg.Event.TruthSrc))
	}
	if len(eg.Label) > 0 {
		purity = trueKept / float64(len(eg.Label))
	}
	return efficiency, purity
}

// Result is the output of full-pipeline inference on one event.
type Result struct {
	Tracks     [][]int // hit-index sets, one per candidate
	EdgeCounts metrics.BinaryCounts
	Match      metrics.TrackMatch
}

// Reconstruct runs all five stages on an event and scores the output
// against truth.
func (p *Pipeline) Reconstruct(ev *detector.Event) *Result {
	eg := p.BuildGraph(ev)
	return p.reconstructOn(eg)
}

// ReconstructOn runs stages 4–5 on a pre-built event graph.
func (p *Pipeline) ReconstructOn(eg *EventGraph) *Result { return p.reconstructOn(eg) }

func (p *Pipeline) reconstructOn(eg *EventGraph) *Result {
	res := &Result{}
	keep := make([]bool, eg.NumEdges())
	if eg.NumEdges() > 0 {
		arena := workspace.NewArena()
		defer arena.Reset()
		scores := p.GNN.EdgeScoresWith(arena, eg.G.Src, eg.G.Dst, eg.X, eg.Y)
		for k, s := range scores {
			keep[k] = s >= p.Cfg.GNNThreshold
			res.EdgeCounts.Add(keep[k], eg.Label[k] > 0.5)
		}
	}
	// Stage 5: connected components of surviving edges are the candidates.
	final := eg.G.FilterEdges(keep)
	labels, count := final.ConnectedComponents()
	comps := graph.ComponentMembers(labels, count)
	for _, c := range comps {
		if len(c) >= p.Cfg.MinTrackHits {
			res.Tracks = append(res.Tracks, c)
		}
	}
	hitParticle := make([]int, eg.Event.NumHits())
	for i, h := range eg.Event.Hits {
		hitParticle[i] = h.Particle
	}
	res.Match = metrics.MatchTracks(res.Tracks, hitParticle, eg.Event.TrackHits(p.Cfg.MinTrackHits), p.Cfg.MinTrackHits)
	return res
}

// allParams collects every trainable parameter of the three learned
// stages in a stable order.
func (p *Pipeline) allParams() []*autograd.Param {
	var ps []*autograd.Param
	ps = append(ps, p.Embedder.Params()...)
	ps = append(ps, p.Filter.Params()...)
	ps = append(ps, p.GNN.Params()...)
	return ps
}

// SaveModels writes the trained weights of all three learned stages to a
// single gzip-compressed checkpoint file.
func (p *Pipeline) SaveModels(path string) error {
	return nn.SaveParamsFile(path, p.allParams())
}

// LoadModels restores weights written by SaveModels into a pipeline built
// with the same Config and seed layout.
func (p *Pipeline) LoadModels(path string) error {
	return nn.LoadParamsFile(path, p.allParams())
}

// TrainGNN trains the stage-4 Interaction GNN full-graph on pre-built
// event graphs with Adam, returning the final-epoch mean loss. For the
// paper's minibatch/DDP training use core.NewTrainer instead; this is the
// simple path for examples and stage-wise pipeline fitting.
func (p *Pipeline) TrainGNN(graphs []*EventGraph, epochs int, lr, posWeight float64) float64 {
	loss, _ := p.TrainGNNContext(context.Background(), graphs, epochs, lr, posWeight)
	return loss
}

// TrainGNNContext is TrainGNN with cooperative cancellation: it checks
// the context between epochs and returns the last completed epoch's
// mean loss alongside ctx.Err() when cancelled.
func (p *Pipeline) TrainGNNContext(ctx context.Context, graphs []*EventGraph, epochs int, lr, posWeight float64) (float64, error) {
	opt := nn.NewAdam(lr)
	arena := workspace.NewArena()
	defer arena.Reset()
	tape := autograd.NewTapeArena(arena)
	last := 0.0
	for epoch := 0; epoch < epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		sum, n := 0.0, 0
		for _, eg := range graphs {
			if eg.NumEdges() == 0 {
				continue
			}
			tape.Reset()
			logits := p.GNN.Forward(tape, eg.G.Src, eg.G.Dst, eg.X, eg.Y)
			loss := tape.BCEWithLogits(logits, eg.Label, posWeight)
			tape.Backward(loss)
			opt.Step(p.GNN.Params())
			sum += loss.Value.At(0, 0)
			n++
			arena.Reset()
		}
		if n > 0 {
			last = sum / float64(n)
		}
	}
	return last, nil
}

// TrainStages13 trains the embedding and filter stages on the training
// events. The filter trains on radius graphs built from the trained
// embedder's output, mirroring the staged Exa.TrkX training procedure.
func (p *Pipeline) TrainStages13(train []*detector.Event, seed uint64) error {
	return p.TrainStages13Context(context.Background(), train, seed)
}

// TrainEmbedderContext trains only the stage-1 embedder, checking the
// context between epochs.
func (p *Pipeline) TrainEmbedderContext(ctx context.Context, train []*detector.Event, seed uint64) error {
	if len(train) == 0 {
		return fmt.Errorf("pipeline: no training events")
	}
	_, err := p.Embedder.TrainContext(ctx, train, seed)
	return err
}

// TrainStages13Context is TrainStages13 with cooperative cancellation
// between epochs. Every per-event intermediate — embedding forward,
// edge features, labels, and the filter step's activations — lives in
// one workspace arena checkpointed around the event, so epoch loops
// recycle warm buffers instead of reallocating graphs each pass.
func (p *Pipeline) TrainStages13Context(ctx context.Context, train []*detector.Event, seed uint64) error {
	if len(train) == 0 {
		return fmt.Errorf("pipeline: no training events")
	}
	if _, err := p.Embedder.TrainContext(ctx, train, seed); err != nil {
		return err
	}

	opt := nn.NewAdam(p.Cfg.Filter.LR)
	arena := workspace.NewArena()
	defer arena.Reset()
	for epoch := 0; epoch < p.Cfg.Filter.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.filterTrainEpoch(arena, opt, train)
	}
	return nil
}

// filterTrainEpoch runs one filter-training pass over the events. The
// per-event rebuild — embedding forward, radius graph, edge features,
// labels, filter step — borrows everything from the arena and releases
// it before moving on, so epochs after the first recycle warm buffers.
func (p *Pipeline) filterTrainEpoch(arena *workspace.Arena, opt nn.Optimizer, train []*detector.Event) {
	for _, ev := range train {
		mark := arena.Checkpoint()
		embedded := p.Embedder.EmbedWith(arena, ev.Features)
		src, dst := knnsearch.BuildRadiusGraph(embedded, p.Cfg.Radius, p.Cfg.MaxDegree)
		if len(src) == 0 {
			arena.ResetTo(mark)
			continue
		}
		edgeFeat := detector.EdgeFeaturesWith(arena, p.Cfg.Spec, ev, src, dst)
		labels := arena.F64(len(src))
		for k := range src {
			if ev.IsTruthEdge(src[k], dst[k]) {
				labels[k] = 1
			}
		}
		p.Filter.TrainStepWith(arena, ev.Features, edgeFeat, src, dst, labels, opt)
		arena.ResetTo(mark)
	}
}
