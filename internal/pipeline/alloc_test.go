package pipeline

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/knnsearch"
	"repro/internal/nn"
	"repro/internal/workspace"
)

// TestFilterTrainEpochAllocsWarm is the TrainStages13 churn regression
// guard: the filter stage rebuilds radius graphs and edge features for
// every event every epoch, and that rebuild must recycle the arena's
// warm buffers rather than reallocating. With ~1000 hits across the
// fixture the pre-arena implementation allocated >1100 times per epoch
// (heap embedding tapes, per-node kd-tree allocations, heap edge
// features and labels); the arena-routed path measures ~280, dominated
// by edge-list growth. The bound has ~2x headroom over the measured
// value while still failing loudly if any of those paths regress to
// per-hit or per-edge heap allocation.
func TestFilterTrainEpochAllocsWarm(t *testing.T) {
	spec := detector.Ex3Like(0.04)
	spec.NumEvents = 2
	ds := detector.Generate(spec, 21)
	p := New(DefaultConfig(spec), 3)

	opt := nn.NewAdam(p.Cfg.Filter.LR)
	arena := workspace.NewArena()
	defer arena.Reset()
	p.filterTrainEpoch(arena, opt, ds.Events) // warm pools + optimizer state

	allocs := testing.AllocsPerRun(5, func() {
		p.filterTrainEpoch(arena, opt, ds.Events)
	})
	totalHits := 0
	for _, ev := range ds.Events {
		totalHits += ev.NumHits()
	}
	if allocs > 600 {
		t.Fatalf("warm filter-training epoch allocated %.0f times (%d hits); budget 600 — "+
			"per-hit or per-edge heap allocation has crept back in", allocs, totalHits)
	}
}

// TestKDTreeBuildAllocs pins the slab optimization: building over n
// rows must not allocate per node.
func TestKDTreeBuildAllocs(t *testing.T) {
	spec := detector.Ex3Like(0.04)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 22)
	p := New(DefaultConfig(spec), 3)
	ev := ds.Events[0]

	arena := workspace.NewArena()
	defer arena.Reset()
	embedded := p.Embedder.EmbedWith(arena, ev.Features)
	allocs := testing.AllocsPerRun(10, func() {
		src, dst := knnsearch.BuildRadiusGraph(embedded, p.Cfg.Radius, p.Cfg.MaxDegree)
		_, _ = src, dst
	})
	// Slab tree + edge-list growth: well under one alloc per hit.
	if allocs > float64(ev.NumHits())/4 {
		t.Fatalf("BuildRadiusGraph allocated %.0f times for %d hits — kd-tree slab regressed",
			allocs, ev.NumHits())
	}
}
