package pipeline

import (
	"path/filepath"
	"testing"

	"repro/internal/autograd"
	"repro/internal/detector"
	"repro/internal/nn"
)

func smallDataset(t *testing.T, events int) (*detector.Dataset, Config) {
	t.Helper()
	spec := detector.Ex3Like(0.04)
	spec.NumEvents = events
	ds := detector.Generate(spec, 21)
	cfg := DefaultConfig(spec)
	cfg.GNN.Hidden = 16
	cfg.GNN.Steps = 2
	return ds, cfg
}

func TestBuildTruthLevelGraph(t *testing.T) {
	ds, cfg := smallDataset(t, 1)
	p := New(cfg, 1)
	eg := p.BuildTruthLevelGraph(ds.Events[0], 1.5, 7)
	if eg.NumVertices() != ds.Events[0].NumHits() {
		t.Fatalf("graph has %d vertices for %d hits", eg.NumVertices(), ds.Events[0].NumHits())
	}
	if eg.NumEdges() <= len(ds.Events[0].TruthSrc) {
		t.Fatal("no fake edges were added")
	}
	eff, purity := eg.GraphQuality()
	if eff != 1.0 {
		t.Fatalf("truth-level graph efficiency %v, want 1", eff)
	}
	if purity <= 0.2 || purity >= 1.0 {
		t.Fatalf("purity %v outside (0.2, 1)", purity)
	}
	if eg.Y.Rows() != eg.NumEdges() || len(eg.Label) != eg.NumEdges() {
		t.Fatal("edge feature/label sizes inconsistent")
	}
}

func TestStages13ImproveGraphQuality(t *testing.T) {
	ds, cfg := smallDataset(t, 3)
	cfg.Filter.Epochs = 6
	p := New(cfg, 2)
	train, _, _ := ds.Split(0.7, 0.15)

	if err := p.TrainStages13(train, 3); err != nil {
		t.Fatal(err)
	}
	eg := p.BuildGraph(ds.Events[len(ds.Events)-1]) // held-out event
	eff, purity := eg.GraphQuality()
	if eff < 0.5 {
		t.Fatalf("trained stage 1-3 edge efficiency %v too low", eff)
	}
	if purity < 0.1 {
		t.Fatalf("trained stage 1-3 purity %v too low", purity)
	}
	t.Logf("stage 1-3: efficiency=%.3f purity=%.3f edges=%d", eff, purity, eg.NumEdges())
}

func TestReconstructAfterGNNTraining(t *testing.T) {
	ds, cfg := smallDataset(t, 2)
	p := New(cfg, 4)
	// Train the GNN stage on truth-level graphs (decoupled from stages
	// 1-3) with a short full-graph loop.
	opt := nn.NewAdam(3e-3)
	var egs []*EventGraph
	for i, ev := range ds.Events {
		egs = append(egs, p.BuildTruthLevelGraph(ev, 1.5, uint64(100+i)))
	}
	for epoch := 0; epoch < 30; epoch++ {
		for _, eg := range egs {
			tp := autograd.NewTape()
			logits := p.GNN.Forward(tp, eg.G.Src, eg.G.Dst, eg.X, eg.Y)
			loss := tp.BCEWithLogits(logits, eg.Label, 1)
			tp.Backward(loss)
			opt.Step(p.GNN.Params())
		}
	}
	res := p.ReconstructOn(egs[0])
	if res.EdgeCounts.Precision() < 0.7 || res.EdgeCounts.Recall() < 0.7 {
		t.Fatalf("edge precision %.3f recall %.3f too low after training",
			res.EdgeCounts.Precision(), res.EdgeCounts.Recall())
	}
	if res.Match.Efficiency() < 0.3 {
		t.Fatalf("track efficiency %.3f too low", res.Match.Efficiency())
	}
	t.Logf("reconstruct: edgeP=%.3f edgeR=%.3f trackEff=%.3f fakeRate=%.3f tracks=%d",
		res.EdgeCounts.Precision(), res.EdgeCounts.Recall(),
		res.Match.Efficiency(), res.Match.FakeRate(), len(res.Tracks))
}

func TestReconstructUntrainedDoesNotPanic(t *testing.T) {
	ds, cfg := smallDataset(t, 1)
	p := New(cfg, 5)
	res := p.Reconstruct(ds.Events[0])
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestTrainStages13EmptyInput(t *testing.T) {
	_, cfg := smallDataset(t, 1)
	p := New(cfg, 6)
	if err := p.TrainStages13(nil, 1); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestDefaultConfigFollowsSpec(t *testing.T) {
	spec := detector.CTDLike(0.001)
	cfg := DefaultConfig(spec)
	if cfg.GNN.NodeFeatures != 14 || cfg.GNN.EdgeFeatures != 8 {
		t.Fatalf("GNN feature widths %d/%d", cfg.GNN.NodeFeatures, cfg.GNN.EdgeFeatures)
	}
	if cfg.Filter.HiddenLayers != 3 {
		t.Fatalf("filter layers %d, want Table I's 3", cfg.Filter.HiddenLayers)
	}
}

func TestSaveLoadModels(t *testing.T) {
	ds, cfg := smallDataset(t, 1)
	p := New(cfg, 7)
	// Light training so weights differ from initialization.
	eg := p.BuildTruthLevelGraph(ds.Events[0], 1.0, 3)
	p.TrainGNN([]*EventGraph{eg}, 2, 1e-3, 1)

	path := filepath.Join(t.TempDir(), "pipeline.ckpt.gz")
	if err := p.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	// A same-config, different-seed pipeline scores differently until the
	// checkpoint is loaded; after loading, scores match exactly.
	q := New(cfg, 999)
	want := p.GNN.EdgeScores(eg.G.Src, eg.G.Dst, eg.X, eg.Y)
	before := q.GNN.EdgeScores(eg.G.Src, eg.G.Dst, eg.X, eg.Y)
	same := true
	for i := range want {
		if want[i] != before[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should score differently before load")
	}
	if err := q.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	got := q.GNN.EdgeScores(eg.G.Src, eg.G.Dst, eg.X, eg.Y)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d score %v != %v after load", i, got[i], want[i])
		}
	}
	// Embedding stage restored too.
	if q.Embedder.Embed(eg.X).MaxAbsDiff(p.Embedder.Embed(eg.X)) != 0 {
		t.Fatal("embedder weights not restored")
	}
}

func TestLoadModelsWrongConfigFails(t *testing.T) {
	ds, cfg := smallDataset(t, 1)
	_ = ds
	p := New(cfg, 7)
	path := filepath.Join(t.TempDir(), "pipeline.ckpt.gz")
	if err := p.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	bigger := cfg
	bigger.GNN.Hidden = cfg.GNN.Hidden * 2
	q := New(bigger, 7)
	if err := q.LoadModels(path); err == nil {
		t.Fatal("loading into mismatched architecture should fail")
	}
}
