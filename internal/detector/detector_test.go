package detector

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func smallSpec() Spec {
	s := Ex3Like(0.05) // ~65 particles
	s.NumEvents = 4
	return s
}

func TestGenerateEventBasics(t *testing.T) {
	ev := GenerateEvent(smallSpec(), rng.New(1))
	if ev.NumHits() == 0 {
		t.Fatal("no hits generated")
	}
	if ev.Features.Rows() != ev.NumHits() || ev.Features.Cols() != 6 {
		t.Fatalf("feature matrix %dx%d for %d hits", ev.Features.Rows(), ev.Features.Cols(), ev.NumHits())
	}
	if len(ev.TruthSrc) != len(ev.TruthDst) {
		t.Fatal("truth edge lists unbalanced")
	}
	if len(ev.TruthSrc) == 0 {
		t.Fatal("no truth edges")
	}
}

func TestHitsLieOnLayers(t *testing.T) {
	spec := smallSpec()
	ev := GenerateEvent(spec, rng.New(2))
	for i, h := range ev.Hits {
		r := math.Hypot(h.X, h.Y)
		if math.Abs(r-spec.Layers[h.Layer]) > 1e-9 {
			t.Fatalf("hit %d radius %v but layer %d radius %v", i, r, h.Layer, spec.Layers[h.Layer])
		}
		if math.Abs(h.Z) > spec.ZMax+5*spec.SigmaZ {
			t.Fatalf("hit %d |z|=%v beyond barrel %v", i, math.Abs(h.Z), spec.ZMax)
		}
	}
}

func TestTruthEdgesConnectSameParticleAdjacentLayers(t *testing.T) {
	ev := GenerateEvent(smallSpec(), rng.New(3))
	for k := range ev.TruthSrc {
		a, b := ev.Hits[ev.TruthSrc[k]], ev.Hits[ev.TruthDst[k]]
		if a.Particle != b.Particle || a.Particle < 0 {
			t.Fatalf("truth edge %d connects particles %d and %d", k, a.Particle, b.Particle)
		}
		if b.Layer <= a.Layer {
			t.Fatalf("truth edge %d not inner→outer: layers %d→%d", k, a.Layer, b.Layer)
		}
	}
}

func TestIsTruthEdgeSymmetric(t *testing.T) {
	ev := GenerateEvent(smallSpec(), rng.New(4))
	k := len(ev.TruthSrc) / 2
	a, b := ev.TruthSrc[k], ev.TruthDst[k]
	if !ev.IsTruthEdge(a, b) || !ev.IsTruthEdge(b, a) {
		t.Fatal("IsTruthEdge not symmetric")
	}
	if ev.IsTruthEdge(a, a) {
		t.Fatal("self loop labeled true")
	}
}

func TestTrackHitsOrdering(t *testing.T) {
	ev := GenerateEvent(smallSpec(), rng.New(5))
	tracks := ev.TrackHits(3)
	if len(tracks) == 0 {
		t.Fatal("no reconstructable tracks")
	}
	for pid, hits := range tracks {
		if len(hits) < 3 {
			t.Fatalf("track %d has %d hits, below min", pid, len(hits))
		}
		for i := 1; i < len(hits); i++ {
			if ev.Hits[hits[i]].Layer <= ev.Hits[hits[i-1]].Layer {
				t.Fatalf("track %d hits not layer-ordered", pid)
			}
			if ev.Hits[hits[i]].Particle != pid {
				t.Fatalf("track %d contains foreign hit", pid)
			}
		}
	}
}

func TestNoiseHitsPresent(t *testing.T) {
	spec := smallSpec()
	spec.NoiseFraction = 0.2
	ev := GenerateEvent(spec, rng.New(6))
	noise := 0
	for _, h := range ev.Hits {
		if h.Particle == -1 {
			noise++
		}
	}
	if noise == 0 {
		t.Fatal("no noise hits with 20% noise fraction")
	}
	// Noise must never appear in truth edges.
	for k := range ev.TruthSrc {
		if ev.Hits[ev.TruthSrc[k]].Particle == -1 || ev.Hits[ev.TruthDst[k]].Particle == -1 {
			t.Fatal("noise hit in truth edge")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := smallSpec()
	a := Generate(spec, 99)
	b := Generate(spec, 99)
	if len(a.Events) != len(b.Events) {
		t.Fatal("event counts differ")
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.NumHits() != eb.NumHits() {
			t.Fatalf("event %d hit counts differ", i)
		}
		if ea.Features.MaxAbsDiff(eb.Features) != 0 {
			t.Fatalf("event %d features differ", i)
		}
	}
}

func TestSplitProportions(t *testing.T) {
	spec := smallSpec()
	spec.NumEvents = 10
	ds := Generate(spec, 7)
	train, val, test := ds.Split(0.8, 0.1)
	if len(train) != 8 || len(val) != 1 || len(test) != 1 {
		t.Fatalf("split %d/%d/%d, want 8/1/1", len(train), len(val), len(test))
	}
}

func TestCTDLikeSpecMatchesTableI(t *testing.T) {
	s := CTDLike(1)
	if s.VertexFeatures != 14 || s.EdgeFeatures != 8 || s.MLPLayers != 3 || s.NumEvents != 80 {
		t.Fatalf("CTD spec fields wrong: %+v", s)
	}
	e := Ex3Like(1)
	if e.VertexFeatures != 6 || e.EdgeFeatures != 2 || e.MLPLayers != 2 || e.NumEvents != 80 {
		t.Fatalf("Ex3 spec fields wrong: %+v", e)
	}
}

func TestEdgeFeatureShapes(t *testing.T) {
	spec := smallSpec()
	ev := GenerateEvent(spec, rng.New(8))
	f := EdgeFeatures(spec, ev, ev.TruthSrc, ev.TruthDst)
	if f.Rows() != len(ev.TruthSrc) || f.Cols() != spec.EdgeFeatures {
		t.Fatalf("edge features %dx%d", f.Rows(), f.Cols())
	}
	// Truth edges go inner→outer, so Δr must be positive.
	for k := 0; k < f.Rows(); k++ {
		if f.At(k, 0) <= 0 {
			t.Fatalf("truth edge %d has non-positive Δr %v", k, f.At(k, 0))
		}
	}
}

func TestEdgeFeaturesCTDWidth(t *testing.T) {
	spec := CTDLike(0.002)
	spec.NumEvents = 1
	ev := GenerateEvent(spec, rng.New(9))
	f := EdgeFeatures(spec, ev, ev.TruthSrc, ev.TruthDst)
	if f.Cols() != 8 {
		t.Fatalf("CTD edge feature width %d, want 8", f.Cols())
	}
	if ev.Features.Cols() != 14 {
		t.Fatalf("CTD vertex feature width %d, want 14", ev.Features.Cols())
	}
}

func TestComputeStats(t *testing.T) {
	spec := smallSpec()
	ds := Generate(spec, 10)
	st := ds.ComputeStats()
	if st.Graphs != spec.NumEvents {
		t.Fatalf("stats graphs %d", st.Graphs)
	}
	if st.AvgVertices <= 0 || st.AvgTruthEdges <= 0 {
		t.Fatal("empty stats")
	}
	if st.AvgTruthEdges >= st.AvgVertices {
		t.Fatalf("truth edges (%v) should be < vertices (%v) for tracks", st.AvgTruthEdges, st.AvgVertices)
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi}, // wraps to +π after two additions
		{math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		got := wrapAngle(c.in)
		if math.Abs(got-c.want) > 1e-12 && math.Abs(got+c.want) > 1e-12 {
			t.Fatalf("wrapAngle(%v) = %v", c.in, got)
		}
		if got > math.Pi+1e-12 || got < -math.Pi-1e-12 {
			t.Fatalf("wrapAngle(%v) = %v outside ±π", c.in, got)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := rng.New(11)
	for _, lambda := range []float64{3, 50} {
		const trials = 5000
		sum := 0.0
		for i := 0; i < trials; i++ {
			sum += float64(poisson(r, lambda))
		}
		mean := sum / trials
		if math.Abs(mean-lambda) > 0.1*lambda {
			t.Fatalf("poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestEtaOf(t *testing.T) {
	if math.Abs(etaOf(1, 0)) > 1e-12 {
		t.Fatal("eta at z=0 should be 0")
	}
	if etaOf(1, 1) <= 0 || etaOf(1, -1) >= 0 {
		t.Fatal("eta sign wrong")
	}
}
