// Package detector simulates a barrel tracking detector and the collision
// events the Exa.TrkX pipeline consumes. It substitutes for the paper's
// CTD and Ex3 datasets (gitlab.cern.ch/gnn4itkteam/acorn), which require
// CERN data access: charged particles follow helical trajectories in a
// solenoidal magnetic field, leave smeared hits on cylindrical detector
// layers, and ground-truth edges connect consecutive hits of the same
// particle. The CTDLike and Ex3Like specs preserve the feature widths and
// structural ratios reported in Table I of the paper, with a scale knob
// for laptop-sized runs.
package detector

import (
	"math"

	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Hit is one recorded 3D measurement.
type Hit struct {
	X, Y, Z  float64
	R, Phi   float64 // cylindrical coordinates derived from X, Y
	Layer    int     // detector layer index
	Particle int     // generating particle id, -1 for noise
}

// Event is one collision event: hits, per-hit features, and truth.
type Event struct {
	Hits     []Hit
	Features *tensor.Dense // len(Hits) × Spec.VertexFeatures

	// TruthSrc/TruthDst list ground-truth edges: consecutive recorded hits
	// of the same particle, ordered inner→outer layer.
	TruthSrc, TruthDst []int

	// Particles is the number of generated (not necessarily
	// reconstructable) particles.
	Particles int

	truthSet map[[2]int]bool
}

// NumHits returns the vertex count of the event graph.
func (e *Event) NumHits() int { return len(e.Hits) }

// IsTruthEdge reports whether (a, b) — in either orientation — is a
// ground-truth track edge.
func (e *Event) IsTruthEdge(a, b int) bool {
	if e.truthSet == nil {
		e.truthSet = make(map[[2]int]bool, len(e.TruthSrc))
		for k := range e.TruthSrc {
			e.truthSet[[2]int{e.TruthSrc[k], e.TruthDst[k]}] = true
		}
	}
	return e.truthSet[[2]int{a, b}] || e.truthSet[[2]int{b, a}]
}

// TrackHits groups hit indices by particle id (noise excluded), each
// sorted inner→outer layer. Only particles with at least minHits hits are
// returned — the "reconstructable" set used by efficiency metrics.
func (e *Event) TrackHits(minHits int) map[int][]int {
	tracks := make(map[int][]int)
	for i, h := range e.Hits {
		if h.Particle >= 0 {
			tracks[h.Particle] = append(tracks[h.Particle], i)
		}
	}
	for id, hits := range tracks {
		if len(hits) < minHits {
			delete(tracks, id)
			continue
		}
		// Hits are appended in generation order (inner→outer already), but
		// sort defensively by layer.
		sortByLayer(e.Hits, hits)
	}
	return tracks
}

func sortByLayer(hits []Hit, idx []int) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && hits[idx[j]].Layer > hits[v].Layer {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}

// Spec describes a synthetic dataset family.
type Spec struct {
	Name           string
	NumEvents      int     // event graphs to generate
	AvgParticles   float64 // Poisson mean of charged particles per event
	NoiseFraction  float64 // extra noise hits as a fraction of track hits
	Layers         []float64
	ZMax           float64 // barrel half-length (m)
	BField         float64 // solenoid field (T)
	PtMin, PtMax   float64 // transverse momentum range (GeV), log-uniform
	EtaMax         float64 // pseudorapidity range ±EtaMax
	SigmaRPhi      float64 // hit smearing in r·φ (m)
	SigmaZ         float64 // hit smearing in z (m)
	HitEfficiency  float64 // probability a crossing is recorded
	VertexFeatures int     // per-hit feature width (Table I)
	EdgeFeatures   int     // per-edge feature width (Table I)
	MLPLayers      int     // hidden-layer count for the pipeline MLPs (Table I)
}

// barrelLayers returns n evenly spaced layer radii between rMin and rMax.
func barrelLayers(n int, rMin, rMax float64) []float64 {
	ls := make([]float64, n)
	for i := range ls {
		ls[i] = rMin + (rMax-rMin)*float64(i)/float64(n-1)
	}
	return ls
}

// CTDLike mirrors the paper's CTD dataset (Table I: 80 graphs, 330.7K avg
// vertices, 6.9M avg edges, 3 MLP layers, 14 vertex features, 8 edge
// features). scale=1 targets paper-size events; the default experiments
// use a much smaller scale.
func CTDLike(scale float64) Spec {
	return Spec{
		Name:           "CTD",
		NumEvents:      80,
		AvgParticles:   33000 * scale, // ≈330K hits at scale 1 with 10 layers
		NoiseFraction:  0.05,
		Layers:         barrelLayers(10, 0.03, 1.0),
		ZMax:           2.0,
		BField:         2.0,
		PtMin:          0.4,
		PtMax:          5.0,
		EtaMax:         2.0,
		SigmaRPhi:      0.0008,
		SigmaZ:         0.0012,
		HitEfficiency:  0.98,
		VertexFeatures: 14,
		EdgeFeatures:   8,
		MLPLayers:      3,
	}
}

// Ex3Like mirrors the paper's Example 3 dataset (Table I: 80 graphs,
// 13.0K avg vertices, 47.8K avg edges, 2 MLP layers, 6 vertex features,
// 2 edge features).
func Ex3Like(scale float64) Spec {
	return Spec{
		Name:           "Ex3",
		NumEvents:      80,
		AvgParticles:   1300 * scale, // ≈13K hits at scale 1 with 10 layers
		NoiseFraction:  0.03,
		Layers:         barrelLayers(10, 0.03, 1.0),
		ZMax:           2.0,
		BField:         2.0,
		PtMin:          0.5,
		PtMax:          5.0,
		EtaMax:         1.5,
		SigmaRPhi:      0.0005,
		SigmaZ:         0.001,
		HitEfficiency:  0.99,
		VertexFeatures: 6,
		EdgeFeatures:   2,
		MLPLayers:      2,
	}
}

// poisson draws a Poisson deviate with mean lambda (Knuth for small
// lambda, normal approximation above 30).
func poisson(r *rng.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// GenerateEvent simulates one collision event.
func GenerateEvent(spec Spec, r *rng.Rand) *Event {
	ev := &Event{}
	nParticles := poisson(r, spec.AvgParticles)
	if nParticles < 1 {
		nParticles = 1
	}
	ev.Particles = nParticles

	lastHitOfParticle := make(map[int]int)
	for pid := 0; pid < nParticles; pid++ {
		// Kinematics: log-uniform pT, uniform φ0 and η, ±1 charge,
		// small longitudinal vertex spread.
		pt := spec.PtMin * math.Exp(r.Float64()*math.Log(spec.PtMax/spec.PtMin))
		phi0 := 2 * math.Pi * r.Float64()
		eta := (2*r.Float64() - 1) * spec.EtaMax
		z0 := 0.01 * r.NormFloat64()
		charge := 1.0
		if r.Float64() < 0.5 {
			charge = -1
		}
		// Curvature κ (1/m): radius of curvature R = pT / (0.3 B).
		kappa := charge * 0.3 * spec.BField / pt
		cotTheta := math.Sinh(eta)

		for layer, radius := range spec.Layers {
			// The helix reaches radius ρ only if ρ ≤ 2R.
			arg := math.Abs(kappa) * radius / 2
			if arg >= 1 {
				break
			}
			// Transverse arc length to first crossing of this radius.
			s := 2 / math.Abs(kappa) * math.Asin(arg)
			x := (math.Sin(phi0+kappa*s) - math.Sin(phi0)) / kappa
			y := -(math.Cos(phi0+kappa*s) - math.Cos(phi0)) / kappa
			z := z0 + s*cotTheta
			if math.Abs(z) > spec.ZMax {
				break // exits the barrel
			}
			if r.Float64() > spec.HitEfficiency {
				continue // detector inefficiency: crossing not recorded
			}
			// Measurement smearing in r·φ and z.
			phi := math.Atan2(y, x)
			phi += spec.SigmaRPhi / radius * r.NormFloat64()
			z += spec.SigmaZ * r.NormFloat64()
			h := Hit{
				X:        radius * math.Cos(phi),
				Y:        radius * math.Sin(phi),
				Z:        z,
				R:        radius,
				Phi:      phi,
				Layer:    layer,
				Particle: pid,
			}
			idx := len(ev.Hits)
			ev.Hits = append(ev.Hits, h)
			if prev, ok := lastHitOfParticle[pid]; ok {
				ev.TruthSrc = append(ev.TruthSrc, prev)
				ev.TruthDst = append(ev.TruthDst, idx)
			}
			lastHitOfParticle[pid] = idx
		}
	}

	// Noise hits uniform over layers, φ, and z.
	nNoise := int(float64(len(ev.Hits)) * spec.NoiseFraction)
	for i := 0; i < nNoise; i++ {
		layer := r.Intn(len(spec.Layers))
		radius := spec.Layers[layer]
		phi := 2 * math.Pi * r.Float64()
		z := (2*r.Float64() - 1) * spec.ZMax
		ev.Hits = append(ev.Hits, Hit{
			X:        radius * math.Cos(phi),
			Y:        radius * math.Sin(phi),
			Z:        z,
			R:        radius,
			Phi:      phi,
			Layer:    layer,
			Particle: -1,
		})
	}

	ev.Features = HitFeatures(spec, ev.Hits, r)
	return ev
}

// HitFeatures computes the per-hit feature matrix. The first six columns
// are geometric: r, cosφ, sinφ, z (scaled), pseudorapidity of the hit
// position, and layer fraction. CTD-like specs append synthetic
// cluster-shape columns (charge deposits and widths correlated with the
// incidence geometry plus noise), standing in for the cell features the
// real dataset carries.
func HitFeatures(spec Spec, hits []Hit, r *rng.Rand) *tensor.Dense {
	f := tensor.New(len(hits), spec.VertexFeatures)
	rMax := spec.Layers[len(spec.Layers)-1]
	nLayers := float64(len(spec.Layers))
	for i, h := range hits {
		row := f.Row(i)
		hitEta := etaOf(h.R, h.Z)
		base := []float64{
			h.R / rMax,
			math.Cos(h.Phi),
			math.Sin(h.Phi),
			h.Z / spec.ZMax,
			hitEta / 3.0,
			float64(h.Layer) / nLayers,
		}
		for j := 0; j < len(base) && j < len(row); j++ {
			row[j] = base[j]
		}
		// Synthetic cluster-shape features beyond the geometric six.
		for j := 6; j < len(row); j++ {
			// Correlate with incidence angle so they carry signal, plus noise.
			row[j] = 0.5*math.Tanh(hitEta*float64(j-5)/4) + 0.2*r.NormFloat64()
		}
	}
	return f
}

func etaOf(radius, z float64) float64 {
	if radius == 0 {
		return 0
	}
	theta := math.Atan2(radius, z)
	return -math.Log(math.Tan(theta / 2))
}

// EdgeFeatures computes the per-edge feature matrix for edges (src, dst)
// over the event's hits: Δr, Δφ (wrapped), and for wider specs Δz, Δη,
// 3D distance, mean radius, φ-slope, and a curvature proxy.
func EdgeFeatures(spec Spec, ev *Event, src, dst []int) *tensor.Dense {
	return EdgeFeaturesWith(nil, spec, ev, src, dst)
}

// EdgeFeaturesWith is EdgeFeatures with the feature matrix borrowed from
// the arena's workspace pools: valid only until the arena resets past
// it. A nil arena falls back to the heap.
func EdgeFeaturesWith(a *workspace.Arena, spec Spec, ev *Event, src, dst []int) *tensor.Dense {
	f := tensor.NewFrom(a, len(src), spec.EdgeFeatures)
	rMax := spec.Layers[len(spec.Layers)-1]
	for k := range src {
		a, b := ev.Hits[src[k]], ev.Hits[dst[k]]
		dr := (b.R - a.R) / rMax
		dphi := wrapAngle(b.Phi - a.Phi)
		row := f.Row(k)
		all := []float64{
			dr,
			dphi,
			(b.Z - a.Z) / spec.ZMax,
			(etaOf(b.R, b.Z) - etaOf(a.R, a.Z)) / 3.0,
			dist3(a, b) / rMax,
			(a.R + b.R) / (2 * rMax),
			phiSlope(a, b),
			curvatureProxy(a, b),
		}
		for j := 0; j < len(row) && j < len(all); j++ {
			row[j] = all[j]
		}
	}
	return f
}

func wrapAngle(d float64) float64 {
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

func dist3(a, b Hit) float64 {
	dx, dy, dz := b.X-a.X, b.Y-a.Y, b.Z-a.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// phiSlope is Δφ/Δr, a standard hand-engineered tracking feature.
func phiSlope(a, b Hit) float64 {
	dr := b.R - a.R
	if math.Abs(dr) < 1e-9 {
		return 0
	}
	return wrapAngle(b.Phi-a.Phi) / dr * 0.1
}

// curvatureProxy approximates the transverse curvature implied by the
// doublet under a beamline origin constraint.
func curvatureProxy(a, b Hit) float64 {
	d := math.Hypot(b.X-a.X, b.Y-a.Y)
	if d < 1e-9 {
		return 0
	}
	cross := a.X*b.Y - a.Y*b.X
	return cross / (d * math.Max(a.R, 1e-6) * math.Max(b.R, 1e-6)) * 0.1
}

// Dataset is a generated set of events split into train/validation/test.
type Dataset struct {
	Spec   Spec
	Events []*Event
}

// Generate produces spec.NumEvents events deterministically from seed.
func Generate(spec Spec, seed uint64) *Dataset {
	r := rng.New(seed)
	ds := &Dataset{Spec: spec, Events: make([]*Event, spec.NumEvents)}
	for i := range ds.Events {
		ds.Events[i] = GenerateEvent(spec, r.Split())
	}
	return ds
}

// Split returns the paper's 80/10/10-style split by proportion (train,
// val, test sum to ≤ 1; remainders go to test).
func (d *Dataset) Split(trainFrac, valFrac float64) (train, val, test []*Event) {
	n := len(d.Events)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	if nTrain+nVal > n {
		nVal = n - nTrain
	}
	return d.Events[:nTrain], d.Events[nTrain : nTrain+nVal], d.Events[nTrain+nVal:]
}

// Stats summarizes a dataset for Table I.
type Stats struct {
	Name                       string
	Graphs                     int
	AvgVertices, AvgTruthEdges float64
	MLPLayers                  int
	VertexFeatures             int
	EdgeFeatures               int
}

// ComputeStats measures Table I quantities over the dataset.
func (d *Dataset) ComputeStats() Stats {
	s := Stats{
		Name:           d.Spec.Name,
		Graphs:         len(d.Events),
		MLPLayers:      d.Spec.MLPLayers,
		VertexFeatures: d.Spec.VertexFeatures,
		EdgeFeatures:   d.Spec.EdgeFeatures,
	}
	for _, ev := range d.Events {
		s.AvgVertices += float64(ev.NumHits())
		s.AvgTruthEdges += float64(len(ev.TruthSrc))
	}
	if len(d.Events) > 0 {
		s.AvgVertices /= float64(len(d.Events))
		s.AvgTruthEdges /= float64(len(d.Events))
	}
	return s
}
