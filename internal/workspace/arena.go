package workspace

// Arena hands out pooled scratch slices and releases them in groups: a
// trainer keeps one arena per rank, takes a checkpoint before each step,
// and resets to it afterwards, returning every slice the step's forward,
// backward, and optimizer phases borrowed. Allocation through an arena is
// O(1) amortized and steady-state allocation-free once the underlying
// pools are warm.
//
// An Arena is NOT goroutine-safe: each goroutine (trainer rank) must own
// its own. The backing pools are shared and goroutine-safe.
type Arena struct {
	f64s  [][]float64
	ints  [][]int
	bools [][]bool
}

// Mark is a checkpoint in an arena's allocation history.
type Mark struct {
	f64s, ints, bools int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// F64 returns a zeroed []float64 of length n owned by the arena.
func (a *Arena) F64(n int) []float64 {
	s := GetF64(n)
	a.f64s = append(a.f64s, s)
	return s
}

// Int returns a zeroed []int of length n owned by the arena.
func (a *Arena) Int(n int) []int {
	s := GetInt(n)
	a.ints = append(a.ints, s)
	return s
}

// Bool returns a zeroed []bool of length n owned by the arena.
func (a *Arena) Bool(n int) []bool {
	s := GetBool(n)
	a.bools = append(a.bools, s)
	return s
}

// Checkpoint records the current allocation state. A later ResetTo
// releases only what was allocated after this point.
func (a *Arena) Checkpoint() Mark {
	return Mark{f64s: len(a.f64s), ints: len(a.ints), bools: len(a.bools)}
}

// ResetTo releases every slice allocated after the mark back to the
// pools. The caller must not use those slices afterwards.
func (a *Arena) ResetTo(m Mark) {
	for i := m.f64s; i < len(a.f64s); i++ {
		PutF64(a.f64s[i])
		a.f64s[i] = nil
	}
	a.f64s = a.f64s[:m.f64s]
	for i := m.ints; i < len(a.ints); i++ {
		PutInt(a.ints[i])
		a.ints[i] = nil
	}
	a.ints = a.ints[:m.ints]
	for i := m.bools; i < len(a.bools); i++ {
		PutBool(a.bools[i])
		a.bools[i] = nil
	}
	a.bools = a.bools[:m.bools]
}

// Reset releases everything the arena holds back to the pools.
func (a *Arena) Reset() { a.ResetTo(Mark{}) }

// Live reports how many slices the arena currently holds.
func (a *Arena) Live() int { return len(a.f64s) + len(a.ints) + len(a.bools) }
