package workspace

import "repro/internal/fp"

// Arena hands out pooled scratch slices and releases them in groups: a
// trainer keeps one arena per rank, takes a checkpoint before each step,
// and resets to it afterwards, returning every slice the step's forward,
// backward, and optimizer phases borrowed. Allocation through an arena is
// O(1) amortized and steady-state allocation-free once the underlying
// pools are warm.
//
// An Arena is NOT goroutine-safe: each goroutine (trainer rank) must own
// its own. The backing pools are shared and goroutine-safe.
type Arena struct {
	f64s  [][]float64
	f32s  [][]float32
	ints  [][]int
	bools [][]bool
	i8s   [][]int8
}

// Mark is a checkpoint in an arena's allocation history.
type Mark struct {
	f64s, f32s, ints, bools, i8s int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// F64 returns a zeroed []float64 of length n owned by the arena.
func (a *Arena) F64(n int) []float64 {
	s := GetF64(n)
	a.f64s = append(a.f64s, s)
	return s
}

// F32 returns a zeroed []float32 of length n owned by the arena.
func (a *Arena) F32(n int) []float32 {
	s := GetF32(n)
	a.f32s = append(a.f32s, s)
	return s
}

// Float returns a zeroed []T of length n owned by the arena — the
// precision-generic entry used by tensor.NewFromOf and the generic
// inference forwards.
func Float[T fp.Float](a *Arena, n int) []T {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(a.F32(n)).([]T)
	}
	return any(a.F64(n)).([]T)
}

// Int returns a zeroed []int of length n owned by the arena.
func (a *Arena) Int(n int) []int {
	s := GetInt(n)
	a.ints = append(a.ints, s)
	return s
}

// Bool returns a zeroed []bool of length n owned by the arena.
func (a *Arena) Bool(n int) []bool {
	s := GetBool(n)
	a.bools = append(a.bools, s)
	return s
}

// I8 returns a zeroed []int8 of length n owned by the arena — the
// backing storage of quantized activation matrices on the int8
// inference path.
func (a *Arena) I8(n int) []int8 {
	s := GetI8(n)
	a.i8s = append(a.i8s, s)
	return s
}

// Checkpoint records the current allocation state. A later ResetTo
// releases only what was allocated after this point.
func (a *Arena) Checkpoint() Mark {
	return Mark{f64s: len(a.f64s), f32s: len(a.f32s), ints: len(a.ints), bools: len(a.bools), i8s: len(a.i8s)}
}

// ResetTo releases every slice allocated after the mark back to the
// pools. The caller must not use those slices afterwards.
func (a *Arena) ResetTo(m Mark) {
	for i := m.f64s; i < len(a.f64s); i++ {
		PutF64(a.f64s[i])
		a.f64s[i] = nil
	}
	a.f64s = a.f64s[:m.f64s]
	for i := m.f32s; i < len(a.f32s); i++ {
		PutF32(a.f32s[i])
		a.f32s[i] = nil
	}
	a.f32s = a.f32s[:m.f32s]
	for i := m.ints; i < len(a.ints); i++ {
		PutInt(a.ints[i])
		a.ints[i] = nil
	}
	a.ints = a.ints[:m.ints]
	for i := m.bools; i < len(a.bools); i++ {
		PutBool(a.bools[i])
		a.bools[i] = nil
	}
	a.bools = a.bools[:m.bools]
	for i := m.i8s; i < len(a.i8s); i++ {
		PutI8(a.i8s[i])
		a.i8s[i] = nil
	}
	a.i8s = a.i8s[:m.i8s]
}

// Reset releases everything the arena holds back to the pools.
func (a *Arena) Reset() { a.ResetTo(Mark{}) }

// Live reports how many slices the arena currently holds.
func (a *Arena) Live() int {
	return len(a.f64s) + len(a.f32s) + len(a.ints) + len(a.bools) + len(a.i8s)
}
