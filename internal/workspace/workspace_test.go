package workspace

import (
	"sync"
	"testing"
)

func TestBucketFor(t *testing.T) {
	cases := []struct{ n, idx, size int }{
		{0, 0, 64},
		{1, 0, 64},
		{64, 0, 64},
		{65, 1, 128},
		{128, 1, 128},
		{129, 2, 256},
		{1 << 26, numBuckets - 1, 1 << 26},
		{1<<26 + 1, -1, 1<<26 + 1},
	}
	for _, c := range cases {
		idx, size := bucketFor(c.n)
		if idx != c.idx || size != c.size {
			t.Fatalf("bucketFor(%d) = (%d, %d), want (%d, %d)", c.n, idx, size, c.idx, c.size)
		}
	}
}

func TestGetReturnsZeroed(t *testing.T) {
	s := GetF64(100)
	if len(s) != 100 {
		t.Fatalf("len %d", len(s))
	}
	for i := range s {
		s[i] = float64(i) + 1
	}
	PutF64(s)
	// Re-acquire until we observe the recycled buffer; either way the
	// contract is that contents are zero.
	for trial := 0; trial < 4; trial++ {
		s2 := GetF64(100)
		for i, v := range s2 {
			if v != 0 {
				t.Fatalf("trial %d: recycled slice not zeroed at %d: %v", trial, i, v)
			}
		}
		PutF64(s2)
	}
}

func TestIntAndBoolPools(t *testing.T) {
	is := GetInt(33)
	bs := GetBool(500)
	if len(is) != 33 || len(bs) != 500 {
		t.Fatal("wrong lengths")
	}
	is[0], bs[0] = 7, true
	PutInt(is)
	PutBool(bs)
	is2, bs2 := GetInt(33), GetBool(500)
	if is2[0] != 0 || bs2[0] {
		t.Fatal("recycled slices not zeroed")
	}
	PutInt(is2)
	PutBool(bs2)
}

func TestOversizeRequestsFallThrough(t *testing.T) {
	n := (1 << 26) + 1
	s := GetF64(n)
	if len(s) != n {
		t.Fatalf("len %d", len(s))
	}
	PutF64(s) // must not panic, silently dropped
}

func TestGrowReusesCapacity(t *testing.T) {
	s := GetF64(100) // capacity 128
	grown := GrowF64(s, 120)
	if len(grown) != 120 || cap(grown) != cap(s) {
		t.Fatalf("grow within cap should reuse storage: len=%d cap=%d", len(grown), cap(grown))
	}
	bigger := GrowF64(grown, 1000)
	if len(bigger) != 1000 {
		t.Fatalf("grow beyond cap: len=%d", len(bigger))
	}
	PutF64(bigger)
}

func TestArenaResetReturnsSlices(t *testing.T) {
	a := NewArena()
	f := a.F64(256)
	i := a.Int(64)
	b := a.Bool(64)
	if len(f) != 256 || len(i) != 64 || len(b) != 64 {
		t.Fatal("arena allocation lengths wrong")
	}
	if a.Live() != 3 {
		t.Fatalf("Live = %d, want 3", a.Live())
	}
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("Live after Reset = %d", a.Live())
	}
}

func TestArenaCheckpointResetTo(t *testing.T) {
	a := NewArena()
	keep := a.F64(64)
	keep[0] = 42
	m := a.Checkpoint()
	a.F64(128)
	a.Int(64)
	a.ResetTo(m)
	if a.Live() != 1 {
		t.Fatalf("Live after ResetTo = %d, want 1", a.Live())
	}
	if keep[0] != 42 {
		t.Fatal("slice allocated before checkpoint was disturbed")
	}
	a.Reset()
}

func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	a := NewArena()
	// Warm the pools and the arena's record slices.
	for i := 0; i < 3; i++ {
		a.F64(512)
		a.Int(512)
		a.Bool(512)
		a.Reset()
	}
	allocs := testing.AllocsPerRun(50, func() {
		a.F64(512)
		a.Int(512)
		a.Bool(512)
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("warm arena cycle allocated %.1f times per run, want 0", allocs)
	}
}

func TestPoolsConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (w*37+i*13)%5000
				f := GetF64(n)
				f[0] = 1
				ii := GetInt(n)
				ii[n-1] = 2
				PutF64(f)
				PutInt(ii)
			}
		}(w)
	}
	wg.Wait()
}

func TestStatsInUseBytes(t *testing.T) {
	before := InUseBytes()
	s := GetF64(1000) // bucket 1024 → 8192 bytes
	if got := InUseBytes() - before; got != 1024*8 {
		t.Fatalf("InUseBytes delta %d, want %d", got, 1024*8)
	}
	PutF64(s)
	if got := InUseBytes() - before; got != 0 {
		t.Fatalf("InUseBytes not restored: delta %d", got)
	}
}

func TestGrowNilStaysOffPools(t *testing.T) {
	before := ReadStats()
	s := GrowF64(nil, 100)
	if len(s) != 100 {
		t.Fatalf("len %d", len(s))
	}
	i := GrowInt(nil, 10)
	b := GrowBool(nil, 10)
	if len(i) != 10 || len(b) != 10 {
		t.Fatal("nil grow lengths wrong")
	}
	after := ReadStats()
	if after.Gets != before.Gets || after.InUseBytes != before.InUseBytes {
		t.Fatalf("nil Grow touched the pools: %+v -> %+v", before, after)
	}
}
