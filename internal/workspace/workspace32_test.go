package workspace

import "testing"

func TestF32PoolRecycles(t *testing.T) {
	s := GetF32(100)
	if len(s) != 100 {
		t.Fatalf("len %d", len(s))
	}
	for i := range s {
		s[i] = float32(i)
	}
	PutF32(s)
	s2 := GetF32(90) // same bucket (128), must come back zeroed
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled f32 slice not zeroed at %d", i)
		}
	}
	PutF32(s2)
}

// TestFloatPoolsAreDistinct pins the dispatch: the generic entry must
// route f32 and f64 requests to different buckets — recycling an f64
// slice must never hand its storage to an f32 caller.
func TestFloatPoolsAreDistinct(t *testing.T) {
	if got := len(GetFloat[float32](64)); got != 64 {
		t.Fatalf("GetFloat[float32] len %d", got)
	}
	f64s := GetFloat[float64](64)
	PutFloat(f64s)
	f32s := GetFloat[float32](64)
	PutFloat(f32s)
	// Grow through the generic entry.
	g := GrowFloat[float32](nil, 10)
	if len(g) != 10 {
		t.Fatalf("GrowFloat len %d", len(g))
	}
	g = GrowFloat(g, 8)
	if len(g) != 8 {
		t.Fatalf("GrowFloat shrink len %d", len(g))
	}
	g2 := GrowFloat(g, 4096)
	if len(g2) != 4096 {
		t.Fatalf("GrowFloat grow len %d", len(g2))
	}
	PutFloat(g2)
}

func TestArenaF32CheckpointReset(t *testing.T) {
	a := NewArena()
	a.F64(10)
	mark := a.Checkpoint()
	a.F32(20)
	a.F32(30)
	if got := a.Live(); got != 3 {
		t.Fatalf("live %d, want 3", got)
	}
	a.ResetTo(mark)
	if got := a.Live(); got != 1 {
		t.Fatalf("live after reset %d, want 1", got)
	}
	// The generic accessor routes to the right list.
	s := Float[float32](a, 40)
	if len(s) != 40 {
		t.Fatalf("Float[float32] len %d", len(s))
	}
	d := Float[float64](a, 50)
	if len(d) != 50 {
		t.Fatalf("Float[float64] len %d", len(d))
	}
	a.Reset()
	if a.Live() != 0 {
		t.Fatal("arena not empty after Reset")
	}
}
