// Package workspace provides reusable host-memory scratch buffers for the
// hot kernels of the pipeline: size-bucketed, goroutine-safe pools of
// []float64, []int, and []bool slices, plus an Arena that checkpoints and
// releases groups of allocations together (one arena per trainer rank,
// reset between optimizer steps).
//
// The pools exist because every stage of the paper's pipeline — SpGEMM
// neighborhood expansion, SpMM aggregation, dense GEMM in the MLPs, and
// the autograd tape built for every training step — otherwise allocates
// fresh output buffers per call, and at bulk-sampling scale the garbage
// collector becomes a serial bottleneck. Steady-state training with warm
// pools performs no heap allocation in these kernels (asserted by
// testing.AllocsPerRun tests in the kernel packages).
//
// The free lists are mutex-guarded stacks rather than sync.Pool: storing a
// slice in a sync.Pool boxes the slice header (one heap allocation per
// Put), which would defeat the zero-allocation contract the kernels are
// tested against. Retention per bucket is byte-capped so warm pools hold a
// bounded working set instead of the high-water mark forever.
package workspace

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/fp"
)

// minBucketLen is the smallest pooled slice length; requests below it are
// rounded up so tiny buffers still recycle.
const minBucketLen = 64

// maxBucketShift caps the largest pooled bucket at 1<<maxBucketShift
// elements (64 Mi elements = 512 MiB of float64); larger requests fall
// through to the allocator and are dropped on Put.
const maxBucketShift = 26

// numBuckets is the bucket count: lengths 2^6 .. 2^26.
const numBuckets = maxBucketShift - 5

// maxRetainedBytesPerBucket bounds how much memory one bucket keeps
// parked; slices returned beyond the cap are released to the GC.
const maxRetainedBytesPerBucket = 128 << 20

// maxRetainedSlicesPerBucket bounds the stack depth of the small buckets.
const maxRetainedSlicesPerBucket = 1024

// bucketFor returns the bucket index for a request of n elements and the
// capacity slices in that bucket have, or (-1, n) if n is unpooled.
func bucketFor(n int) (idx, size int) {
	if n <= minBucketLen {
		return 0, minBucketLen
	}
	shift := bits.Len(uint(n - 1)) // ceil(log2(n))
	if shift > maxBucketShift {
		return -1, n
	}
	return shift - 6, 1 << shift
}

// stats counters (monotonic; read via ReadStats).
var (
	statGets   atomic.Int64
	statPuts   atomic.Int64
	statMisses atomic.Int64 // Gets that had to allocate
	inUseBytes atomic.Int64 // bytes handed out and not yet returned
)

// Stats is a snapshot of pool activity, used by the gpumem workspace
// accounting and by cmd/bench reports.
type Stats struct {
	Gets       int64 // total pooled Get calls (all element types)
	Puts       int64 // total Put calls
	Misses     int64 // Gets that allocated because the bucket was empty
	InUseBytes int64 // bytes currently checked out of the pools
}

// ReadStats returns a snapshot of the global pool counters.
func ReadStats() Stats {
	return Stats{
		Gets:       statGets.Load(),
		Puts:       statPuts.Load(),
		Misses:     statMisses.Load(),
		InUseBytes: inUseBytes.Load(),
	}
}

// InUseBytes returns the bytes currently checked out across all pools.
func InUseBytes() int64 { return inUseBytes.Load() }

// typedPools is a bucketed free-list set for one element type.
type typedPools[T any] struct {
	mu        sync.Mutex
	buckets   [numBuckets][][]T
	elemBytes int64
}

// get returns a zeroed slice of length n.
func (p *typedPools[T]) get(n int) []T {
	if n < 0 {
		panic("workspace: negative length")
	}
	statGets.Add(1)
	idx, size := bucketFor(n)
	if idx < 0 {
		// Over the pooling cap: plain allocation, untracked.
		statMisses.Add(1)
		return make([]T, n)
	}
	inUseBytes.Add(int64(size) * p.elemBytes)
	p.mu.Lock()
	stack := p.buckets[idx]
	if len(stack) > 0 {
		s := stack[len(stack)-1]
		stack[len(stack)-1] = nil
		p.buckets[idx] = stack[:len(stack)-1]
		p.mu.Unlock()
		s = s[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		return s
	}
	p.mu.Unlock()
	statMisses.Add(1)
	return make([]T, n, size)
}

// put returns a slice to its bucket. Slices whose capacity is not an
// exact bucket size (allocated outside the pools, or over the cap) are
// dropped and leave the accounting untouched — only pooled buckets are
// tracked, so InUseBytes stays exact. Slices beyond the bucket's
// retention budget are also dropped (but were tracked, so decremented).
func (p *typedPools[T]) put(s []T) {
	if s == nil {
		return
	}
	statPuts.Add(1)
	c := cap(s)
	idx, size := bucketFor(c)
	if idx < 0 || size != c {
		return
	}
	inUseBytes.Add(-int64(size) * p.elemBytes)
	sliceBytes := int64(size) * p.elemBytes
	maxSlices := int64(maxRetainedSlicesPerBucket)
	if byBytes := maxRetainedBytesPerBucket / sliceBytes; byBytes < maxSlices {
		maxSlices = byBytes
	}
	p.mu.Lock()
	if int64(len(p.buckets[idx])) < maxSlices {
		p.buckets[idx] = append(p.buckets[idx], s[:0:c])
	}
	p.mu.Unlock()
}

var (
	f64Pools  = &typedPools[float64]{elemBytes: 8}
	f32Pools  = &typedPools[float32]{elemBytes: 4}
	intPools  = &typedPools[int]{elemBytes: 8}
	boolPools = &typedPools[bool]{elemBytes: 1}
	i8Pools   = &typedPools[int8]{elemBytes: 1}
	i32Pools  = &typedPools[int32]{elemBytes: 4}
)

// floatPool returns the shared bucketed pool set for the float element
// type T. The type switch is the single precision-dispatch point of the
// package: every float-typed Get/Put/Grow entry — f32 and f64 alike —
// resolves through it, so the size-bucket logic exists exactly once in
// typedPools regardless of how many dtypes the pools serve.
func floatPool[T fp.Float]() *typedPools[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(f32Pools).(*typedPools[T])
	}
	return any(f64Pools).(*typedPools[T])
}

// GetFloat returns a zeroed []T of length n from the pools — the
// precision-generic entry the generic kernels allocate through.
func GetFloat[T fp.Float](n int) []T { return floatPool[T]().get(n) }

// PutFloat returns a slice obtained from GetFloat to the pools. The
// caller must not retain any reference to it afterwards.
func PutFloat[T fp.Float](s []T) { floatPool[T]().put(s) }

// GetF64 returns a zeroed []float64 of length n from the pools.
func GetF64(n int) []float64 { return f64Pools.get(n) }

// PutF64 returns a slice obtained from GetF64 to the pools. The caller
// must not retain any reference to it afterwards.
func PutF64(s []float64) { f64Pools.put(s) }

// GetF32 returns a zeroed []float32 of length n from the pools.
func GetF32(n int) []float32 { return f32Pools.get(n) }

// PutF32 returns a slice obtained from GetF32 to the pools.
func PutF32(s []float32) { f32Pools.put(s) }

// GetInt returns a zeroed []int of length n from the pools.
func GetInt(n int) []int { return intPools.get(n) }

// PutInt returns a slice obtained from GetInt to the pools.
func PutInt(s []int) { intPools.put(s) }

// GetBool returns a zeroed []bool of length n from the pools.
func GetBool(n int) []bool { return boolPools.get(n) }

// PutBool returns a slice obtained from GetBool to the pools.
func PutBool(s []bool) { boolPools.put(s) }

// GetI8 returns a zeroed []int8 of length n from the pools — the
// storage of the quantized inference path's activation matrices.
func GetI8(n int) []int8 { return i8Pools.get(n) }

// PutI8 returns a slice obtained from GetI8 to the pools.
func PutI8(s []int8) { i8Pools.put(s) }

// GetI32 returns a zeroed []int32 of length n from the pools — the
// int8 kernels' accumulator scratch rows.
func GetI32(n int) []int32 { return i32Pools.get(n) }

// PutI32 returns a slice obtained from GetI32 to the pools.
func PutI32(s []int32) { i32Pools.put(s) }

// grow returns a slice of length n reusing s's storage when cap(s)
// suffices; otherwise s goes back to its bucket and a fresh pooled
// slice is drawn. A nil s allocates plain heap storage instead: growth
// paths reached through value-returning wrappers (whose results escape
// to callers that never Release) must not drain the pools — only
// storage a caller actually recycles graduates to pooled backing on its
// first regrow. Contents are unspecified either way — this is scratch
// growth for buffers the caller fully overwrites, not append. One
// implementation serves every element type; the exported Grow* entries
// below only bind the pool.
func grow[T any](p *typedPools[T], s []T, n int) []T {
	if s == nil {
		return make([]T, n)
	}
	if cap(s) >= n {
		return s[:n]
	}
	p.put(s)
	return p.get(n)
}

// GrowFloat is the precision-generic grow for float slices.
func GrowFloat[T fp.Float](s []T, n int) []T { return grow(floatPool[T](), s, n) }

// GrowF64 grows a []float64 through the pools (see grow).
func GrowF64(s []float64, n int) []float64 { return grow(f64Pools, s, n) }

// GrowF32 grows a []float32 through the pools (see grow).
func GrowF32(s []float32, n int) []float32 { return grow(f32Pools, s, n) }

// GrowInt grows a []int through the pools (see grow).
func GrowInt(s []int, n int) []int { return grow(intPools, s, n) }

// GrowBool grows a []bool through the pools (see grow).
func GrowBool(s []bool, n int) []bool { return grow(boolPools, s, n) }

// GrowI8 grows a []int8 through the pools (see grow).
func GrowI8(s []int8, n int) []int8 { return grow(i8Pools, s, n) }

// GrowI32 grows a []int32 through the pools (see grow).
func GrowI32(s []int32, n int) []int32 { return grow(i32Pools, s, n) }
