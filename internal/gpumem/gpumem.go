// Package gpumem models the device-memory constraint that drives two of
// the paper's behaviors:
//
//   - Full-graph training skips event graphs whose stored activations
//     would exceed GPU memory ("Exa.TrkX will skip particle graphs that
//     are too large to be trained").
//   - Bulk sampling chooses how many minibatches k to sample at once from
//     the aggregate memory across P devices ("our approach is able to
//     sample more minibatches in bulk as we increase the number of GPUs
//     due to increased aggregate memory").
//
// The model counts float64 activation elements (8 bytes each) against a
// per-device byte capacity, reserving a fraction for weights, optimizer
// state, and workspace. The workspace share of that reserve is now a real
// quantity: the host-side kernel scratch pools (internal/workspace) report
// their outstanding bytes, and WorkspaceUsage checks them against the
// device reserve so simulated runs can detect a scratch footprint that
// would not have fit next to the activations on the modeled hardware.
package gpumem

import "repro/internal/workspace"

// BytesPerElement is the storage cost of one activation element.
const BytesPerElement = 8

// Device describes one simulated accelerator.
type Device struct {
	// CapacityBytes is total device memory (A100: 40 GiB).
	CapacityBytes int64
	// ActivationFraction is the share of capacity available for stored
	// activations after weights/optimizer/workspace.
	ActivationFraction float64
}

// A100 returns the configuration of the paper's hardware.
func A100() Device {
	return Device{CapacityBytes: 40 << 30, ActivationFraction: 0.8}
}

// ScaledDevice returns a device with the given activation budget in
// bytes — experiments use small budgets so the skip behaviour manifests
// at laptop scale.
func ScaledDevice(activationBytes int64) Device {
	return Device{CapacityBytes: activationBytes, ActivationFraction: 1.0}
}

// ActivationBudgetBytes returns the bytes available for activations.
func (d Device) ActivationBudgetBytes() int64 {
	return int64(float64(d.CapacityBytes) * d.ActivationFraction)
}

// FitsActivations reports whether a training step storing elements
// float64 activations fits on the device.
func (d Device) FitsActivations(elements int) bool {
	return int64(elements)*BytesPerElement <= d.ActivationBudgetBytes()
}

// WorkspaceBudgetBytes returns the reserve left after activations —
// the share of device memory the model earmarks for weights, optimizer
// state, and kernel workspace.
func (d Device) WorkspaceBudgetBytes() int64 {
	return d.CapacityBytes - d.ActivationBudgetBytes()
}

// WorkspaceUsage is a snapshot of the host-side workspace pools measured
// against the device's non-activation reserve.
type WorkspaceUsage struct {
	InUseBytes  int64 // bytes currently checked out of the workspace pools
	BudgetBytes int64 // the device's non-activation reserve
	Fits        bool  // InUseBytes <= BudgetBytes
}

// WorkspaceUsage reports whether the current global workspace footprint
// would fit in the device's reserve.
func (d Device) WorkspaceUsage() WorkspaceUsage {
	in := workspace.InUseBytes()
	budget := d.WorkspaceBudgetBytes()
	return WorkspaceUsage{InUseBytes: in, BudgetBytes: budget, Fits: in <= budget}
}

// BulkBatchCount returns how many minibatches can be sampled in one bulk
// invocation given P devices and the activation footprint of a single
// sampled minibatch. At least 1, at most maxBatches (the number of
// batches remaining). The aggregate across devices grows linearly with P,
// which is what makes k rise superlinearly useful in Figure 3.
func BulkBatchCount(d Device, devices int, perBatchElements int, maxBatches int) int {
	if maxBatches < 1 {
		return 0
	}
	if perBatchElements <= 0 {
		return maxBatches
	}
	aggregate := d.ActivationBudgetBytes() * int64(devices)
	k := int(aggregate / (int64(perBatchElements) * BytesPerElement))
	if k < 1 {
		k = 1
	}
	if k > maxBatches {
		k = maxBatches
	}
	return k
}
