package gpumem

import (
	"testing"

	"repro/internal/workspace"
)

func TestFitsActivations(t *testing.T) {
	d := ScaledDevice(800) // 100 elements
	if !d.FitsActivations(100) {
		t.Fatal("100 elements should fit in 800 bytes")
	}
	if d.FitsActivations(101) {
		t.Fatal("101 elements should not fit in 800 bytes")
	}
}

func TestActivationFraction(t *testing.T) {
	d := Device{CapacityBytes: 1000, ActivationFraction: 0.5}
	if got := d.ActivationBudgetBytes(); got != 500 {
		t.Fatalf("budget %d, want 500", got)
	}
}

func TestA100Budget(t *testing.T) {
	d := A100()
	if d.CapacityBytes != 40<<30 {
		t.Fatalf("A100 capacity %d", d.CapacityBytes)
	}
	if !d.FitsActivations(1 << 30) { // 8 GiB of activations
		t.Fatal("A100 should fit 2^30 elements")
	}
}

func TestBulkBatchCountScalesWithDevices(t *testing.T) {
	d := ScaledDevice(8000) // 1000 elements per device
	perBatch := 100
	k1 := BulkBatchCount(d, 1, perBatch, 1000000)
	k4 := BulkBatchCount(d, 4, perBatch, 1000000)
	if k1 != 10 || k4 != 40 {
		t.Fatalf("k1=%d k4=%d, want 10/40", k1, k4)
	}
}

func TestBulkBatchCountClamps(t *testing.T) {
	d := ScaledDevice(80)
	if k := BulkBatchCount(d, 1, 1000000, 50); k != 1 {
		t.Fatalf("tiny memory should clamp to 1, got %d", k)
	}
	if k := BulkBatchCount(d, 64, 1, 5); k != 5 {
		t.Fatalf("k should clamp to maxBatches, got %d", k)
	}
	if k := BulkBatchCount(d, 1, 1, 0); k != 0 {
		t.Fatalf("zero batches should return 0, got %d", k)
	}
	if k := BulkBatchCount(d, 1, 0, 7); k != 7 {
		t.Fatalf("zero footprint should return all batches, got %d", k)
	}
}

func TestWorkspaceUsageAgainstReserve(t *testing.T) {
	d := A100()
	if got, want := d.WorkspaceBudgetBytes(), d.CapacityBytes-d.ActivationBudgetBytes(); got != want {
		t.Fatalf("WorkspaceBudgetBytes = %d, want %d", got, want)
	}
	s := workspace.GetF64(1 << 10)
	u := d.WorkspaceUsage()
	workspace.PutF64(s)
	if u.BudgetBytes != d.WorkspaceBudgetBytes() {
		t.Fatalf("usage budget %d != device budget %d", u.BudgetBytes, d.WorkspaceBudgetBytes())
	}
	if !u.Fits {
		t.Fatalf("a few KiB of scratch should fit the A100 reserve, usage=%+v", u)
	}
	// A 1-byte reserve cannot fit any outstanding scratch.
	tiny := Device{CapacityBytes: 8, ActivationFraction: 0.875}
	s2 := workspace.GetF64(1 << 10)
	u2 := tiny.WorkspaceUsage()
	workspace.PutF64(s2)
	if u2.Fits {
		t.Fatalf("8 KiB of scratch reported as fitting a 1-byte reserve: %+v", u2)
	}
}
