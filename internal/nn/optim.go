package nn

import (
	"math"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and zeroes
// the gradients afterwards.
type Optimizer interface {
	Step(params []*autograd.Param)
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*autograd.Param]*tensor.Dense
}

// NewSGD returns a plain SGD optimizer.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step applies one SGD update to each parameter and zeroes gradients.
func (o *SGD) Step(params []*autograd.Param) {
	for _, p := range params {
		g := p.Grad
		if o.WeightDecay != 0 {
			g.AXPY(o.WeightDecay, p.Value)
		}
		if o.Momentum != 0 {
			if o.velocity == nil {
				o.velocity = make(map[*autograd.Param]*tensor.Dense)
			}
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(g.Rows(), g.Cols())
				o.velocity[p] = v
			}
			v.ScaleInPlace(o.Momentum)
			v.AddInPlace(g)
			g = v
		}
		p.Value.AXPY(-o.LR, g)
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the optimizer used by the
// acorn training configs.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*autograd.Param]*tensor.Dense
	v map[*autograd.Param]*tensor.Dense
}

// NewAdam returns Adam with the standard β/ε defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to each parameter and zeroes gradients.
func (o *Adam) Step(params []*autograd.Param) {
	if o.m == nil {
		o.m = make(map[*autograd.Param]*tensor.Dense)
		o.v = make(map[*autograd.Param]*tensor.Dense)
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		g := p.Grad
		if o.WeightDecay != 0 {
			g.AXPY(o.WeightDecay, p.Value)
		}
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(g.Rows(), g.Cols())
			o.m[p] = m
			o.v[p] = tensor.New(g.Rows(), g.Cols())
		}
		v := o.v[p]
		md, vd, gd, pd := m.Data(), v.Data(), g.Data(), p.Value.Data()
		for i := range gd {
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*gd[i]
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*gd[i]*gd[i]
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			pd[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// ZeroGrads clears the gradients of all parameters.
func ZeroGrads(params []*autograd.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// GradElements returns the total number of gradient elements across
// params — the size of the coalesced all-reduce buffer.
func GradElements(params []*autograd.Param) int {
	n := 0
	for _, p := range params {
		n += p.Grad.Size()
	}
	return n
}

// FlattenGrads copies every parameter gradient into buf in order.
// buf must have GradElements(params) capacity.
func FlattenGrads(params []*autograd.Param, buf []float64) {
	off := 0
	for _, p := range params {
		copy(buf[off:off+p.Grad.Size()], p.Grad.Data())
		off += p.Grad.Size()
	}
}

// UnflattenGrads copies buf back into the parameter gradients in order.
func UnflattenGrads(params []*autograd.Param, buf []float64) {
	off := 0
	for _, p := range params {
		copy(p.Grad.Data(), buf[off:off+p.Grad.Size()])
		off += p.Grad.Size()
	}
}

// ScaleGrads multiplies every gradient by s (used to average after an
// all-reduce sum across P ranks).
func ScaleGrads(params []*autograd.Param, s float64) {
	for _, p := range params {
		p.Grad.ScaleInPlace(s)
	}
}

// ParamElements returns the total number of value elements across params
// — the size of a flattened weight buffer (equals GradElements for
// well-formed params; spelled separately because weight replication and
// gradient reduction are different wires).
func ParamElements(params []*autograd.Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Size()
	}
	return n
}

// FlattenParams copies every parameter value into buf in order — the
// payload of an initial-weight broadcast. buf must have
// ParamElements(params) capacity.
func FlattenParams(params []*autograd.Param, buf []float64) {
	off := 0
	for _, p := range params {
		copy(buf[off:off+p.Value.Size()], p.Value.Data())
		off += p.Value.Size()
	}
}

// UnflattenParams copies buf back into the parameter values in order.
func UnflattenParams(params []*autograd.Param, buf []float64) {
	off := 0
	for _, p := range params {
		copy(p.Value.Data(), buf[off:off+p.Value.Size()])
		off += p.Value.Size()
	}
}

// CloneParams deep-copies parameters (values only, zeroed gradients) —
// used to create per-rank model replicas in DDP.
func CloneParams(params []*autograd.Param) []*autograd.Param {
	out := make([]*autograd.Param, len(params))
	for i, p := range params {
		out[i] = autograd.NewParam(p.Name, p.Value.Clone())
	}
	return out
}

// CopyParamValues copies values from src into dst (shape- and
// order-aligned parameter lists).
func CopyParamValues(dst, src []*autograd.Param) {
	if len(dst) != len(src) {
		panic("nn: CopyParamValues length mismatch")
	}
	for i := range dst {
		dst[i].Value.CopyFrom(src[i].Value)
	}
}
