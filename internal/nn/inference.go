package nn

import (
	"math"

	"repro/internal/autograd"
	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// MLPInference is a precision-generic, tape-free forward pass over an
// MLP's trained weights. Construction converts the float64 training
// parameters to T once; Forward then runs entirely in T with no
// autograd bookkeeping — the serving path of the paper's pipeline,
// where float32 halves the bytes every GEMM and bias kernel moves.
//
// For T = float64 the forward pass performs exactly the arithmetic of
// MLP.Forward on a tape, in the same kernel order, so its output is
// bitwise identical to the training-path forward (asserted by the
// parity tests). An MLPInference is immutable after construction and
// safe for concurrent use.
type MLPInference[T fp.Float] struct {
	cfg   MLPConfig
	w, b  []*tensor.Matrix[T] // per linear layer (hidden... , output)
	gain  []*tensor.Matrix[T] // per LayerNorm, when cfg.LayerNorm
	shift []*tensor.Matrix[T]
}

// NewMLPInference snapshots m's weights converted to T. The conversion
// (float64→float32 rounds to nearest even) happens here, once — not
// per event.
func NewMLPInference[T fp.Float](m *MLP) *MLPInference[T] {
	mi := &MLPInference[T]{cfg: m.cfg}
	for _, l := range m.layers {
		mi.w = append(mi.w, convertParam[T](l.W))
		mi.b = append(mi.b, convertParam[T](l.B))
	}
	for _, n := range m.norms {
		mi.gain = append(mi.gain, convertParam[T](n.Gain))
		mi.shift = append(mi.shift, convertParam[T](n.Bias))
	}
	return mi
}

func convertParam[T fp.Float](p *autograd.Param) *tensor.Matrix[T] {
	return tensor.ConvertFrom[T](nil, p.Value)
}

// Config returns the configuration of the underlying MLP.
func (mi *MLPInference[T]) Config() MLPConfig { return mi.cfg }

// Forward runs the MLP on x under the given intra-op worker budget,
// borrowing every activation from the arena (heap fallback when nil).
// The caller owns the arena lifecycle: the returned matrix is valid
// until the arena resets past it.
func (mi *MLPInference[T]) Forward(kc kernels.Context, a *workspace.Arena, x *tensor.Matrix[T]) *tensor.Matrix[T] {
	h := x
	last := len(mi.w) - 1
	for i := 0; i < last; i++ {
		z := tensor.NewFromOf[T](a, h.Rows(), mi.w[i].Cols())
		tensor.MatMulIntoCtx(kc, z, h, mi.w[i])
		if mi.cfg.Activation == ReLU {
			tensor.AddBiasReLUIntoCtx(kc, z, z, mi.b[i])
		} else {
			tensor.AddBiasIntoCtx(kc, z, z, mi.b[i])
			applyActivation(mi.cfg.Activation, z)
		}
		if mi.cfg.LayerNorm {
			layerNormInto(z, mi.gain[i], mi.shift[i], 1e-5)
		}
		h = z
	}
	out := tensor.NewFromOf[T](a, h.Rows(), mi.w[last].Cols())
	tensor.MatMulIntoCtx(kc, out, h, mi.w[last])
	tensor.AddBiasIntoCtx(kc, out, out, mi.b[last])
	return out
}

// applyActivation applies the nonlinearity in place. ReLU is handled by
// the fused bias kernel and never reaches here.
func applyActivation[T fp.Float](act Activation, m *tensor.Matrix[T]) {
	switch act {
	case Tanh:
		tensor.ApplyInto(m, m, func(v T) T { return T(math.Tanh(float64(v))) })
	case Sigmoid:
		tensor.ApplyInto(m, m, func(v T) T { return T(sigmoidStable(float64(v))) })
	case None:
	default:
		panic("nn: unsupported inference activation")
	}
}

// sigmoidStable is the numerically stable logistic function (the same
// form the autograd tape and the stage packages use).
func sigmoidStable(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// SigmoidScore converts one logit to a float64 score — the boundary
// where the f32 inference path returns to the float64 metric/threshold
// domain.
func SigmoidScore[T fp.Float](logit T) float64 { return sigmoidStable(float64(logit)) }

// layerNormInto normalizes each row of m in place and applies the
// gain/shift pair — exactly the forward arithmetic of the tape's
// LayerNorm op (mean and variance accumulate in T, the reciprocal
// square root is taken in float64), so the float64 instantiation is
// bitwise identical to training-path inference.
func layerNormInto[T fp.Float](m, gain, shift *tensor.Matrix[T], eps float64) {
	rows, cols := m.Rows(), m.Cols()
	cf := T(cols)
	gd, bd := gain.Data(), shift.Data()
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		var mean T
		for _, x := range row {
			mean += x
		}
		mean /= cf
		var variance T
		for _, x := range row {
			d := x - mean
			variance += d * d
		}
		variance /= cf
		is := T(1) / T(math.Sqrt(float64(variance)+eps))
		for j, x := range row {
			row[j] = (x-mean)*is*gd[j] + bd[j]
		}
	}
}
