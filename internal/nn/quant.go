package nn

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// MLPQuant is the int8 quantized, tape-free forward pass over an MLP's
// trained weights — the third precision tier below MLPInference's
// float64/float32. Weights are quantized once at construction
// (per-output-column symmetric scales); activations are quantized at
// static per-tensor scales captured by an MLPCalibrator over
// representative inputs. Hidden ReLU layers run fully fused — int8
// GEMM, int32 accumulation, dequantize+bias+ReLU+requantize in one
// epilogue — so layer-to-layer activations stay int8 end to end; the
// output layer dequantizes to float32. All integer arithmetic is exact,
// so the forward is bitwise identical at any kernel-worker count.
// Immutable after construction and safe for concurrent use.
type MLPQuant struct {
	cfg    MLPConfig
	w      []*tensor.QWeights
	b      [][]float32
	gain   []*tensor.Matrix[float32]
	shift  []*tensor.Matrix[float32]
	scales []float32 // static input scale of each linear layer
}

// NewMLPQuant quantizes m's weights per output column and adopts the
// calibrated activation scales: scales[i] is the static quantization
// scale of linear layer i's input (so scales[i+1] is also hidden layer
// i's requantization target). len(scales) must equal the linear layer
// count and every scale must be positive and finite.
func NewMLPQuant(m *MLP, scales []float32) (*MLPQuant, error) {
	if len(scales) != len(m.layers) {
		return nil, fmt.Errorf("nn: MLPQuant got %d activation scales for %d linear layers", len(scales), len(m.layers))
	}
	for i, s := range scales {
		if !(s > 0) || math.IsInf(float64(s), 0) {
			return nil, fmt.Errorf("nn: MLPQuant activation scale %d is %v", i, s)
		}
	}
	q := &MLPQuant{cfg: m.cfg, scales: append([]float32(nil), scales...)}
	for _, l := range m.layers {
		q.w = append(q.w, tensor.QuantizeWeights(l.W.Value))
		bias := make([]float32, l.B.Value.Cols())
		for j, v := range l.B.Value.Data() {
			bias[j] = float32(v)
		}
		q.b = append(q.b, bias)
	}
	for _, n := range m.norms {
		q.gain = append(q.gain, convertParam[float32](n.Gain))
		q.shift = append(q.shift, convertParam[float32](n.Bias))
	}
	return q, nil
}

// Config returns the configuration of the underlying MLP.
func (q *MLPQuant) Config() MLPConfig { return q.cfg }

// ActScales returns the calibrated per-layer input scales (a copy) —
// what checkpoint v4 persists so a load skips recalibration.
func (q *MLPQuant) ActScales() []float32 { return append([]float32(nil), q.scales...) }

// InScale returns the static quantization scale of the first layer's
// input — the scale a caller must quantize at before ForwardQ.
func (q *MLPQuant) InScale() float32 { return q.scales[0] }

// Forward quantizes x at the calibrated input scale and runs the int8
// forward pass. Activations borrow from the arena (heap fallback when
// nil); the returned float32 matrix is valid until the arena resets
// past it.
func (q *MLPQuant) Forward(kc kernels.Context, a *workspace.Arena, x *tensor.Matrix[float32]) *tensor.Matrix[float32] {
	in := tensor.NewQMatFrom(a, x.Rows(), x.Cols(), q.scales[0])
	tensor.QuantizeInto(kc, in, x, q.scales[0])
	return q.ForwardQ(kc, a, in)
}

// ForwardQ is Forward on an input already quantized at InScale() — the
// entry the GNN node update uses after assembling its input directly in
// int8 (requantizing aggregation + int8 concat, no float32
// intermediate).
func (q *MLPQuant) ForwardQ(kc kernels.Context, a *workspace.Arena, in *tensor.QMat) *tensor.Matrix[float32] {
	if in.Scale != q.scales[0] {
		panic(fmt.Sprintf("nn: MLPQuant input quantized at %v, calibrated for %v", in.Scale, q.scales[0]))
	}
	h := in
	last := len(q.w) - 1
	for i := 0; i < last; i++ {
		if q.cfg.Activation == ReLU && !q.cfg.LayerNorm {
			// The hot path: everything between two GEMMs happens inside one
			// fused epilogue and the activation never exists in float32.
			z := tensor.NewQMatFrom(a, h.Rows(), q.w[i].Cols(), q.scales[i+1])
			tensor.QMatMulBiasReLUQuantInto(kc, z, h, q.w[i], q.b[i], q.scales[i+1])
			h = z
			continue
		}
		// LayerNorm (or a non-ReLU activation) needs the float32 value:
		// dequantize+bias(+ReLU) fused, then the float32 tail, then
		// requantize for the next layer.
		zf := tensor.NewFromOf[float32](a, h.Rows(), q.w[i].Cols())
		tensor.QMatMulBiasInto(kc, zf, h, q.w[i], q.b[i], q.cfg.Activation == ReLU)
		if q.cfg.Activation != ReLU {
			applyActivation(q.cfg.Activation, zf)
		}
		if q.cfg.LayerNorm {
			layerNormInto(zf, q.gain[i], q.shift[i], 1e-5)
		}
		z := tensor.NewQMatFrom(a, zf.Rows(), zf.Cols(), q.scales[i+1])
		tensor.QuantizeInto(kc, z, zf, q.scales[i+1])
		h = z
	}
	out := tensor.NewFromOf[float32](a, h.Rows(), q.w[last].Cols())
	tensor.QMatMulBiasInto(kc, out, h, q.w[last], q.b[last], false)
	return out
}

// MLPCalibrator records the activation ranges an MLPQuant needs: it
// runs the float32 inference forward over representative inputs and
// tracks the max absolute value entering each linear layer. Observe as
// many inputs as are representative, then Scales()/Quantize(). Not
// goroutine-safe — calibration is a single-threaded export-time pass.
type MLPCalibrator struct {
	mlp    *MLP
	inf    *MLPInference[float32]
	maxAbs []float64
}

// NewMLPCalibrator builds a calibrator over m's current weights.
func NewMLPCalibrator(m *MLP) *MLPCalibrator {
	return &MLPCalibrator{
		mlp:    m,
		inf:    NewMLPInference[float32](m),
		maxAbs: make([]float64, len(m.layers)),
	}
}

// Observe runs the float32 forward on x, recording the range entering
// every linear layer, and returns the output so calibration passes can
// keep flowing through a multi-stage pipeline. Activations borrow from
// the arena exactly as MLPInference.Forward does.
func (c *MLPCalibrator) Observe(kc kernels.Context, a *workspace.Arena, x *tensor.Matrix[float32]) *tensor.Matrix[float32] {
	mi := c.inf
	h := x
	last := len(mi.w) - 1
	c.observe(0, h)
	for i := 0; i < last; i++ {
		z := tensor.NewFromOf[float32](a, h.Rows(), mi.w[i].Cols())
		tensor.MatMulIntoCtx(kc, z, h, mi.w[i])
		if mi.cfg.Activation == ReLU {
			tensor.AddBiasReLUIntoCtx(kc, z, z, mi.b[i])
		} else {
			tensor.AddBiasIntoCtx(kc, z, z, mi.b[i])
			applyActivation(mi.cfg.Activation, z)
		}
		if mi.cfg.LayerNorm {
			layerNormInto(z, mi.gain[i], mi.shift[i], 1e-5)
		}
		h = z
		c.observe(i+1, h)
	}
	out := tensor.NewFromOf[float32](a, h.Rows(), mi.w[last].Cols())
	tensor.MatMulIntoCtx(kc, out, h, mi.w[last])
	tensor.AddBiasIntoCtx(kc, out, out, mi.b[last])
	return out
}

func (c *MLPCalibrator) observe(layer int, m *tensor.Matrix[float32]) {
	worst := c.maxAbs[layer]
	for _, v := range m.Data() {
		if a := math.Abs(float64(v)); a > worst {
			worst = a
		}
	}
	c.maxAbs[layer] = worst
}

// Scales converts the observed ranges to symmetric scales (maxabs/127;
// 1 for a layer that never saw a nonzero input).
func (c *MLPCalibrator) Scales() []float32 {
	scales := make([]float32, len(c.maxAbs))
	for i, m := range c.maxAbs {
		if m == 0 {
			scales[i] = 1
			continue
		}
		scales[i] = float32(m / 127)
	}
	return scales
}

// Quantize finalizes the calibration into an immutable MLPQuant.
func (c *MLPCalibrator) Quantize() (*MLPQuant, error) {
	return NewMLPQuant(c.mlp, c.Scales())
}
