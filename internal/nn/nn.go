// Package nn provides the neural-network building blocks of the pipeline:
// linear layers, multi-layer perceptrons with optional layer norm (the MLP
// block used throughout Exa.TrkX/acorn), optimizers, and parameter
// utilities used by distributed data parallelism (gradient flattening for
// the coalesced all-reduce, replica cloning, and averaging).
package nn

import (
	"fmt"

	"repro/internal/autograd"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Activation selects the nonlinearity used between MLP layers.
type Activation int

const (
	// ReLU is max(0,x) — the default in the acorn MLP blocks.
	ReLU Activation = iota
	// Tanh is the hyperbolic tangent.
	Tanh
	// Sigmoid is the logistic function.
	Sigmoid
	// None applies no nonlinearity.
	None
)

func (a Activation) apply(t *autograd.Tape, x *autograd.Node) *autograd.Node {
	switch a {
	case ReLU:
		return t.ReLU(x)
	case Tanh:
		return t.Tanh(x)
	case Sigmoid:
		return t.Sigmoid(x)
	case None:
		return x
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*autograd.Param
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W, B *autograd.Param
}

// NewLinear creates a Xavier-initialized linear layer.
func NewLinear(r *rng.Rand, name string, in, out int) *Linear {
	return &Linear{
		W: autograd.NewParam(name+".W", tensor.XavierInit(r, in, out)),
		B: autograd.NewParam(name+".b", tensor.New(1, out)),
	}
}

// Forward applies the layer on the tape.
func (l *Linear) Forward(t *autograd.Tape, x *autograd.Node) *autograd.Node {
	return t.AddBias(t.MatMul(x, t.Use(l.W)), t.Use(l.B))
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*autograd.Param { return []*autograd.Param{l.W, l.B} }

// In returns the input width.
func (l *Linear) In() int { return l.W.Value.Rows() }

// Out returns the output width.
func (l *Linear) Out() int { return l.W.Value.Cols() }

// MLPConfig describes an MLP block.
type MLPConfig struct {
	In         int   // input feature width
	Hidden     []int // hidden layer widths (one entry per hidden layer)
	Out        int   // output width
	Activation Activation
	LayerNorm  bool // layer norm after each hidden activation (acorn style)
}

// layerNormParams holds the gain/bias pair for one LayerNorm.
type layerNormParams struct {
	Gain, Bias *autograd.Param
}

// MLP is a multi-layer perceptron: Linear (+Act (+LayerNorm)) per hidden
// layer, then a final Linear with no activation.
type MLP struct {
	cfg    MLPConfig
	layers []*Linear
	norms  []*layerNormParams
}

// NewMLP builds an MLP from cfg with deterministic initialization from r.
func NewMLP(r *rng.Rand, name string, cfg MLPConfig) *MLP {
	if cfg.In <= 0 || cfg.Out <= 0 {
		panic(fmt.Sprintf("nn: MLP %q needs positive In/Out, got %d/%d", name, cfg.In, cfg.Out))
	}
	m := &MLP{cfg: cfg}
	prev := cfg.In
	for i, h := range cfg.Hidden {
		m.layers = append(m.layers, NewLinear(r, fmt.Sprintf("%s.l%d", name, i), prev, h))
		if cfg.LayerNorm {
			gain := tensor.New(1, h)
			gain.Fill(1)
			m.norms = append(m.norms, &layerNormParams{
				Gain: autograd.NewParam(fmt.Sprintf("%s.ln%d.g", name, i), gain),
				Bias: autograd.NewParam(fmt.Sprintf("%s.ln%d.b", name, i), tensor.New(1, h)),
			})
		}
		prev = h
	}
	m.layers = append(m.layers, NewLinear(r, fmt.Sprintf("%s.out", name), prev, cfg.Out))
	return m
}

// Forward runs the MLP on the tape. Hidden layers with the (default)
// ReLU activation run the fused bias+ReLU kernel — one pass instead of
// an AddBias followed by a ReLU over the full activation matrix; the
// result is bitwise identical to the unfused chain.
func (m *MLP) Forward(t *autograd.Tape, x *autograd.Node) *autograd.Node {
	h := x
	for i := 0; i < len(m.layers)-1; i++ {
		if m.cfg.Activation == ReLU {
			l := m.layers[i]
			h = t.AddBiasReLU(t.MatMul(h, t.Use(l.W)), t.Use(l.B))
		} else {
			h = m.cfg.Activation.apply(t, m.layers[i].Forward(t, h))
		}
		if m.cfg.LayerNorm {
			ln := m.norms[i]
			h = t.LayerNorm(h, t.Use(ln.Gain), t.Use(ln.Bias), 1e-5)
		}
	}
	return m.layers[len(m.layers)-1].Forward(t, h)
}

// Params returns all trainable parameters in a stable order.
func (m *MLP) Params() []*autograd.Param {
	var ps []*autograd.Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	for _, n := range m.norms {
		ps = append(ps, n.Gain, n.Bias)
	}
	return ps
}

// Config returns the configuration the MLP was built with.
func (m *MLP) Config() MLPConfig { return m.cfg }

// NumLayers returns the count of linear layers (hidden + output).
func (m *MLP) NumLayers() int { return len(m.layers) }
