package nn

import (
	"math"

	"repro/internal/autograd"
)

// LRScheduler adjusts an optimizer's learning rate across epochs. The
// acorn training configs use step decay; cosine and warmup schedules are
// provided for the ablation harness.
type LRScheduler interface {
	// LR returns the learning rate for the given zero-based epoch.
	LR(epoch int) float64
}

// ConstantLR keeps the base rate.
type ConstantLR struct{ Base float64 }

// LR implements LRScheduler.
func (s ConstantLR) LR(int) float64 { return s.Base }

// StepLR multiplies the rate by Gamma every StepSize epochs.
type StepLR struct {
	Base     float64
	StepSize int
	Gamma    float64
}

// LR implements LRScheduler.
func (s StepLR) LR(epoch int) float64 {
	if s.StepSize <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.StepSize))
}

// CosineLR anneals from Base to Min over Total epochs.
type CosineLR struct {
	Base, Min float64
	Total     int
}

// LR implements LRScheduler.
func (s CosineLR) LR(epoch int) float64 {
	if s.Total <= 1 {
		return s.Base
	}
	if epoch >= s.Total {
		return s.Min
	}
	frac := float64(epoch) / float64(s.Total-1)
	return s.Min + (s.Base-s.Min)*(1+math.Cos(math.Pi*frac))/2
}

// WarmupLR linearly ramps from 0 to the inner schedule's rate over Warmup
// epochs, then follows the inner schedule.
type WarmupLR struct {
	Warmup int
	Inner  LRScheduler
}

// LR implements LRScheduler.
func (s WarmupLR) LR(epoch int) float64 {
	base := s.Inner.LR(epoch)
	if s.Warmup <= 0 || epoch >= s.Warmup {
		return base
	}
	return base * float64(epoch+1) / float64(s.Warmup)
}

// SetLR updates the learning rate of a supported optimizer.
func SetLR(opt Optimizer, lr float64) {
	switch o := opt.(type) {
	case *SGD:
		o.LR = lr
	case *Adam:
		o.LR = lr
	}
}

// ClipGradNorm scales gradients down so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm. A no-op for maxNorm <= 0.
func ClipGradNorm(params []*autograd.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		n := p.Grad.Norm2()
		total += n * n
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
