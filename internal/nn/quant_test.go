package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/autograd"
	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// MLPQuant coverage: bitwise parity with a step-by-step reference built
// from the exported int8 kernels, quantization-noise bounds against the
// float forward, worker-count determinism, and the fallback (LayerNorm)
// branch. Checkpoint v4 coverage: round trip with activation tables,
// the requantization identity, hostile-input rejection, and the
// no-partial-mutation guarantee.

func randInputs32(r *rng.Rand, rows, cols int) *tensor.Matrix[float32] {
	m := tensor.NewOf[float32](rows, cols)
	for i := range m.Data() {
		m.Data()[i] = float32(r.NormFloat64())
	}
	return m
}

func calibratedQuant(t *testing.T, m *MLP, inputs []*tensor.Matrix[float32]) *MLPQuant {
	t.Helper()
	cal := NewMLPCalibrator(m)
	kc := kernels.Context{Workers: 1}
	for _, x := range inputs {
		cal.Observe(kc, nil, x)
	}
	q, err := cal.Quantize()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestMLPQuantMatchesUnfusedReference: the fused hidden-layer kernel
// (GEMM+bias+ReLU+requantize in one epilogue) must be bitwise identical
// to the unfused composition of the same exported primitives — the
// float32 epilogue followed by QuantizeInto shares every intermediate
// rounding with the fused path by construction.
func TestMLPQuantMatchesUnfusedReference(t *testing.T) {
	r := rng.New(21)
	m := NewMLP(r, "m", MLPConfig{In: 6, Hidden: []int{16, 8}, Out: 3, Activation: ReLU})
	x := randInputs32(r, 11, 6)
	q := calibratedQuant(t, m, []*tensor.Matrix[float32]{x})
	kc := kernels.Context{Workers: 1}

	got := q.Forward(kc, nil, x)

	scales := q.ActScales()
	in := tensor.NewQMat(11, 6, 0)
	tensor.QuantizeInto(kc, in, x, scales[0])
	h := in
	for i := 0; i < len(q.w)-1; i++ {
		zf := tensor.NewOf[float32](h.Rows(), q.w[i].Cols())
		tensor.QMatMulBiasInto(kc, zf, h, q.w[i], q.b[i], true)
		z := tensor.NewQMat(zf.Rows(), zf.Cols(), 0)
		tensor.QuantizeInto(kc, z, zf, scales[i+1])
		h = z
	}
	want := tensor.NewOf[float32](h.Rows(), q.w[len(q.w)-1].Cols())
	tensor.QMatMulBiasInto(kc, want, h, q.w[len(q.w)-1], q.b[len(q.w)-1], false)

	for i, v := range want.Data() {
		if got.Data()[i] != v {
			t.Fatalf("element %d: fused %v vs unfused %v", i, got.Data()[i], v)
		}
	}
}

// TestMLPQuantTracksFloatForward bounds the quantization noise of the
// full int8 forward against the float32 inference on calibrated inputs.
func TestMLPQuantTracksFloatForward(t *testing.T) {
	r := rng.New(22)
	for _, cfg := range []MLPConfig{
		{In: 5, Hidden: []int{32, 32}, Out: 2, Activation: ReLU},
		{In: 5, Hidden: []int{32}, Out: 2, Activation: ReLU, LayerNorm: true},
		{In: 5, Hidden: []int{16}, Out: 2, Activation: Tanh},
	} {
		m := NewMLP(r, "m", cfg)
		inputs := make([]*tensor.Matrix[float32], 4)
		for i := range inputs {
			inputs[i] = randInputs32(r, 20, 5)
		}
		q := calibratedQuant(t, m, inputs)
		inf := NewMLPInference[float32](m)
		kc := kernels.Context{Workers: 1}
		worst := 0.0
		for _, x := range inputs {
			want := inf.Forward(kc, nil, x)
			got := q.Forward(kc, nil, x)
			for i, v := range want.Data() {
				if d := math.Abs(float64(v - got.Data()[i])); d > worst {
					worst = d
				}
			}
		}
		// Small calibrated nets keep end-to-end int8 noise well under
		// this; a scale-composition bug shows up orders of magnitude
		// above it.
		if worst > 0.25 {
			t.Fatalf("cfg %+v: int8 forward drifts %v from float", cfg, worst)
		}
	}
}

func TestMLPQuantWorkerCountParity(t *testing.T) {
	r := rng.New(23)
	m := NewMLP(r, "m", MLPConfig{In: 8, Hidden: []int{24, 24}, Out: 4, Activation: ReLU})
	x := randInputs32(r, 130, 8)
	q := calibratedQuant(t, m, []*tensor.Matrix[float32]{x})
	ref := q.Forward(kernels.Context{Workers: 1}, nil, x)
	for _, w := range []int{2, 4, 7} {
		got := q.Forward(kernels.Context{Workers: w}, nil, x)
		for i, v := range ref.Data() {
			if got.Data()[i] != v {
				t.Fatalf("element %d differs at %d workers: %v vs %v", i, w, got.Data()[i], v)
			}
		}
	}
}

func TestMLPQuantRejectsBadScales(t *testing.T) {
	m := NewMLP(rng.New(24), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	if _, err := NewMLPQuant(m, []float32{1}); err == nil {
		t.Fatal("wrong scale count accepted")
	}
	if _, err := NewMLPQuant(m, []float32{1, 0}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := NewMLPQuant(m, []float32{1, float32(math.Inf(1))}); err == nil {
		t.Fatal("infinite scale accepted")
	}
	if _, err := NewMLPQuant(m, []float32{-1, 1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestMLPQuantForwardQScaleMismatchPanics(t *testing.T) {
	m := NewMLP(rng.New(25), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	q, err := NewMLPQuant(m, []float32{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardQ accepted an input at the wrong scale")
		}
	}()
	q.ForwardQ(kernels.Context{Workers: 1}, nil, tensor.NewQMat(1, 2, 0.125))
}

// ---- checkpoint v4 ----

func v4Fixture(t *testing.T, seed uint64) ([]*autograd.Param, []ActScales) {
	t.Helper()
	m := NewMLP(rng.New(seed), "m", MLPConfig{In: 3, Hidden: []int{8}, Out: 2, Activation: ReLU, LayerNorm: true})
	act := []ActScales{
		{Name: "stage.a", Scales: []float32{0.5, 0.25}},
		{Name: "stage.b", Scales: []float32{1, 2, 3}},
	}
	return m.Params(), act
}

func TestCheckpointV4RoundTrip(t *testing.T) {
	params, act := v4Fixture(t, 31)
	var buf bytes.Buffer
	if err := SaveParamsInt8(&buf, params, act); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), checkpointMagicV4[:]) {
		t.Fatal("v4 checkpoint does not open with the v4 magic")
	}

	dst, _ := v4Fixture(t, 99)
	gotAct, err := LoadParamsExt(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAct) != len(act) {
		t.Fatalf("activation tables: %d vs %d", len(gotAct), len(act))
	}
	for i, a := range act {
		if gotAct[i].Name != a.Name || len(gotAct[i].Scales) != len(a.Scales) {
			t.Fatalf("activation table %d did not round-trip", i)
		}
		for j, s := range a.Scales {
			if gotAct[i].Scales[j] != s {
				t.Fatalf("activation table %q scale %d: %v vs %v", a.Name, j, gotAct[i].Scales[j], s)
			}
		}
	}

	// The requantization identity: re-quantizing the dequantized matrix
	// weights reproduces the exported payload bitwise, and row-vector
	// parameters round-trip through float32 exactly.
	for i, p := range params {
		d := dst[i]
		if p.Value.Rows() == 1 {
			for k, v := range p.Value.Data() {
				if d.Value.Data()[k] != float64(float32(v)) {
					t.Fatalf("param %q: f32 row vector did not round-trip", p.Name)
				}
			}
			continue
		}
		q1 := tensor.QuantizeWeights(p.Value)
		q2 := tensor.QuantizeWeights(d.Value)
		for j, s := range q1.ColScale {
			if q2.ColScale[j] != s {
				t.Fatalf("param %q column %d scale drifted on reload", p.Name, j)
			}
		}
		for k, v := range q1.Data() {
			if q2.Data()[k] != v {
				t.Fatalf("param %q element %d drifted on reload", p.Name, k)
			}
		}
	}
}

func TestCheckpointV4FileRoundTrip(t *testing.T) {
	params, act := v4Fixture(t, 32)
	path := filepath.Join(t.TempDir(), "model.i8.ckpt.gz")
	if err := SaveParamsFileInt8(path, params, act); err != nil {
		t.Fatal(err)
	}
	dst, _ := v4Fixture(t, 98)
	gotAct, err := LoadParamsFileExt(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAct) != len(act) {
		t.Fatal("file round trip lost activation tables")
	}
	// And the plain loader accepts the file too, discarding the tables.
	dst2, _ := v4Fixture(t, 97)
	if err := LoadParamsFile(path, dst2); err != nil {
		t.Fatal(err)
	}
}

func TestSaveParamsInt8RejectsBadActTables(t *testing.T) {
	params, _ := v4Fixture(t, 33)
	bad := [][]ActScales{
		{{Name: "", Scales: []float32{1}}},
		{{Name: "a", Scales: []float32{1}}, {Name: "a", Scales: []float32{2}}},
		{{Name: "a", Scales: nil}},
		{{Name: "a", Scales: []float32{0}}},
		{{Name: "a", Scales: []float32{-1}}},
		{{Name: "a", Scales: []float32{float32(math.Inf(1))}}},
	}
	for i, act := range bad {
		var buf bytes.Buffer
		if err := SaveParamsInt8(&buf, params, act); err == nil {
			t.Fatalf("case %d: invalid activation tables accepted", i)
		}
	}
}

// saveV4Mutated writes a v4 checkpoint and lets the caller corrupt the
// header/file structs before encoding — the hostile-file generator.
func saveV4Mutated(t *testing.T, params []*autograd.Param, act []ActScales, mutate func(*checkpointHeader, *checkpointFile)) *bytes.Buffer {
	t.Helper()
	buf, err := encodeV4Mutated(params, act, mutate)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// encodeV4Mutated is saveV4Mutated's core, shared with the fuzz seed
// corpus (which has no *testing.T at generation time).
func encodeV4Mutated(params []*autograd.Param, act []ActScales, mutate func(*checkpointHeader, *checkpointFile)) (*bytes.Buffer, error) {
	hdr := checkpointHeader{NumParams: len(params)}
	file := checkpointFile{Version: checkpointVersionV4, Act: act}
	for _, p := range params {
		rows, cols := p.Value.Rows(), p.Value.Cols()
		dtype := DtypeI8
		if rows == 1 {
			dtype = DtypeF32
		}
		hdr.Names = append(hdr.Names, p.Name)
		hdr.Rows = append(hdr.Rows, rows)
		hdr.Cols = append(hdr.Cols, cols)
		hdr.Counts = append(hdr.Counts, rows*cols)
		hdr.Dtypes = append(hdr.Dtypes, dtype)
		rec := checkpointRecord{Name: p.Name, Rows: rows, Cols: cols, Count: rows * cols, Dtype: dtype}
		if dtype == DtypeI8 {
			q := tensor.QuantizeWeights(p.Value)
			rec.Data8 = append([]int8(nil), q.Data()...)
			rec.ColScales = append([]float32(nil), q.ColScale...)
		} else {
			rec.Data32 = make([]float32, rows*cols)
			for i, v := range p.Value.Data() {
				rec.Data32[i] = float32(v)
			}
		}
		file.Params = append(file.Params, rec)
	}
	mutate(&hdr, &file)
	var buf bytes.Buffer
	if _, err := buf.Write(checkpointMagicV4[:]); err != nil {
		return nil, err
	}
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&hdr); err != nil {
		return nil, err
	}
	if err := enc.Encode(&file); err != nil {
		return nil, err
	}
	return &buf, nil
}

// i8RecIndex returns the index of the first i8-dtype record.
func i8RecIndex(file *checkpointFile) int {
	for i, rec := range file.Params {
		if rec.Dtype == DtypeI8 {
			return i
		}
	}
	return -1
}

// TestCheckpointV4HostileRejected: every corruption an attacker (or a
// bad disk) can introduce into a v4 file is rejected before any weight
// is copied — the model is never partially mutated.
func TestCheckpointV4HostileRejected(t *testing.T) {
	params, act := v4Fixture(t, 34)
	cases := []struct {
		name   string
		mutate func(*checkpointHeader, *checkpointFile)
	}{
		{"minus-128 weight", func(h *checkpointHeader, f *checkpointFile) {
			f.Params[i8RecIndex(f)].Data8[0] = -128
		}},
		{"truncated int8 payload", func(h *checkpointHeader, f *checkpointFile) {
			i := i8RecIndex(f)
			f.Params[i].Data8 = f.Params[i].Data8[:len(f.Params[i].Data8)-1]
		}},
		{"truncated column scales", func(h *checkpointHeader, f *checkpointFile) {
			i := i8RecIndex(f)
			f.Params[i].ColScales = f.Params[i].ColScales[:1]
		}},
		{"zero column scale", func(h *checkpointHeader, f *checkpointFile) {
			f.Params[i8RecIndex(f)].ColScales[0] = 0
		}},
		{"negative column scale", func(h *checkpointHeader, f *checkpointFile) {
			f.Params[i8RecIndex(f)].ColScales[0] = -0.5
		}},
		{"infinite column scale", func(h *checkpointHeader, f *checkpointFile) {
			f.Params[i8RecIndex(f)].ColScales[0] = float32(math.Inf(1))
		}},
		{"i8 record smuggles f64 payload", func(h *checkpointHeader, f *checkpointFile) {
			f.Params[i8RecIndex(f)].Data = []float64{1e300}
		}},
		{"i8 record smuggles f32 payload", func(h *checkpointHeader, f *checkpointFile) {
			f.Params[i8RecIndex(f)].Data32 = []float32{1}
		}},
		{"f32 record smuggles i8 payload", func(h *checkpointHeader, f *checkpointFile) {
			for i := range f.Params {
				if f.Params[i].Dtype == DtypeF32 {
					f.Params[i].Data8 = []int8{1}
					return
				}
			}
			t.Fatal("fixture has no f32 record")
		}},
		{"dtype disagrees with header", func(h *checkpointHeader, f *checkpointFile) {
			f.Params[i8RecIndex(f)].Dtype = DtypeF32
		}},
		{"empty act table", func(h *checkpointHeader, f *checkpointFile) {
			f.Act = append(f.Act, ActScales{Name: "extra", Scales: nil})
		}},
		{"duplicate act table", func(h *checkpointHeader, f *checkpointFile) {
			f.Act = append(f.Act, ActScales{Name: f.Act[0].Name, Scales: []float32{1}})
		}},
		{"hostile act scale", func(h *checkpointHeader, f *checkpointFile) {
			f.Act[0].Scales[0] = 0
		}},
		{"oversized act section", func(h *checkpointHeader, f *checkpointFile) {
			f.Act = f.Act[:0]
			for i := 0; i <= maxActScaleEntries; i++ {
				f.Act = append(f.Act, ActScales{Name: string(rune('a'+i%26)) + string(rune('0'+i%10)) + "-" + string(rune('a'+(i/260)%26)) + string(rune('a'+(i/10)%26)), Scales: []float32{1}})
			}
		}},
	}
	for _, tc := range cases {
		dst, _ := v4Fixture(t, 77)
		before := make([]*tensor.Dense, len(dst))
		for i, p := range dst {
			before[i] = p.Value.Clone()
		}
		buf := saveV4Mutated(t, params, act, tc.mutate)
		if _, err := LoadParamsExt(buf, dst); err == nil {
			t.Fatalf("%s: hostile checkpoint accepted", tc.name)
		}
		for i, p := range dst {
			if p.Value.MaxAbsDiff(before[i]) != 0 {
				t.Fatalf("%s: param %d mutated by a rejected checkpoint", tc.name, i)
			}
		}
	}
}

// TestCheckpointPreV4RejectsActTables: the Act section is a v4-only
// feature; a pre-v4 file carrying one is corrupt by definition.
func TestCheckpointPreV4RejectsActTables(t *testing.T) {
	params, _ := v4Fixture(t, 35)
	file := checkpointFile{Version: checkpointVersionLegacy, Act: []ActScales{{Name: "a", Scales: []float32{1}}}}
	for _, p := range params {
		file.Params = append(file.Params, checkpointRecord{
			Name: p.Name, Rows: p.Value.Rows(), Cols: p.Value.Cols(), Data: p.Value.Data(),
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&file); err != nil {
		t.Fatal(err)
	}
	dst, _ := v4Fixture(t, 76)
	if _, err := LoadParamsExt(&buf, dst); err == nil {
		t.Fatal("legacy checkpoint with activation tables accepted")
	}
}
