package nn

import (
	"bytes"
	"testing"

	"repro/internal/autograd"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// fuzzModel builds the small fixed model every fuzz iteration loads into.
func fuzzModel() []*autograd.Param {
	m := NewMLP(rng.New(11), "fz", MLPConfig{In: 3, Hidden: []int{4}, Out: 2, Activation: ReLU, LayerNorm: true})
	return m.Params()
}

func snapshotParams(params []*autograd.Param) []*tensor.Dense {
	out := make([]*tensor.Dense, len(params))
	for i, p := range params {
		out[i] = p.Value.Clone()
	}
	return out
}

func paramsEqual(params []*autograd.Param, snap []*tensor.Dense) bool {
	for i, p := range params {
		a, b := p.Value.Data(), snap[i].Data()
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
	}
	return true
}

// FuzzLoadParams hammers the checkpoint loader with corrupt input. The
// contract under attack: LoadParams must never panic, and on ANY error
// the model's weights must be byte-for-byte untouched (validate all
// before copying any — no partial writes).
func FuzzLoadParams(f *testing.F) {
	// Seeds: a valid v2 checkpoint, a truncated one, a magic-only stub,
	// a bit-flipped header, and plain garbage. More cases live in
	// testdata/fuzz/FuzzLoadParams.
	var valid bytes.Buffer
	if err := SaveParams(&valid, fuzzModel()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(valid.Bytes()[:8])
	flipped := append([]byte(nil), valid.Bytes()...)
	if len(flipped) > 20 {
		flipped[20] ^= 0xFF
	}
	f.Add(flipped)
	f.Add([]byte("not a checkpoint at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		params := fuzzModel()
		snap := snapshotParams(params)
		err := LoadParams(bytes.NewReader(data), params)
		if err != nil && !paramsEqual(params, snap) {
			t.Fatalf("LoadParams returned %v but modified the model — partial write on corrupt input", err)
		}
	})
}

// FuzzLoadParamsMismatchedModel loads fuzzed bytes into a DIFFERENT
// model than the seeds were saved from, so even structurally valid
// checkpoints must be rejected whole.
func FuzzLoadParamsMismatchedModel(f *testing.F) {
	var valid bytes.Buffer
	if err := SaveParams(&valid, fuzzModel()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		other := NewMLP(rng.New(12), "other", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: Tanh}).Params()
		snap := snapshotParams(other)
		err := LoadParams(bytes.NewReader(data), other)
		if err == nil {
			// The only way a load into the wrong model succeeds is a
			// checkpoint that exactly matches its shape AND names — the
			// fuzzer would have to forge "other.l0.W" etc.; allow it but
			// keep the no-partial-write check meaningful on errors.
			return
		}
		if !paramsEqual(other, snap) {
			t.Fatalf("rejected checkpoint (%v) still modified the model", err)
		}
	})
}
