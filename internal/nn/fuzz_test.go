package nn

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/autograd"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// fuzzModel builds the small fixed model every fuzz iteration loads into.
func fuzzModel() []*autograd.Param {
	m := NewMLP(rng.New(11), "fz", MLPConfig{In: 3, Hidden: []int{4}, Out: 2, Activation: ReLU, LayerNorm: true})
	return m.Params()
}

func snapshotParams(params []*autograd.Param) []*tensor.Dense {
	out := make([]*tensor.Dense, len(params))
	for i, p := range params {
		out[i] = p.Value.Clone()
	}
	return out
}

func paramsEqual(params []*autograd.Param, snap []*tensor.Dense) bool {
	for i, p := range params {
		a, b := p.Value.Data(), snap[i].Data()
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
	}
	return true
}

// fuzzSeeds builds the seed corpus shared by FuzzLoadParams and the
// corpus regenerator: valid v3 checkpoints at both dtypes, the
// historical v2 format, truncations (including mid-dtype-tag), a
// bit-flipped header, dtype-region bit flips, and plain garbage. More
// cases live in testdata/fuzz/FuzzLoadParams.
func fuzzSeeds(fatal func(error)) [][]byte {
	var valid bytes.Buffer
	if err := SaveParams(&valid, fuzzModel()); err != nil {
		fatal(err)
	}
	var valid32 bytes.Buffer
	if err := SaveParamsDtype(&valid32, fuzzModel(), DtypeF32); err != nil {
		fatal(err)
	}
	var validV2 bytes.Buffer
	if err := v2SaveParams(&validV2, fuzzModel()); err != nil {
		fatal(err)
	}
	seeds := [][]byte{
		valid.Bytes(),
		valid.Bytes()[:len(valid.Bytes())/2],
		valid.Bytes()[:8],
		valid32.Bytes(),
		validV2.Bytes(),
		// Truncate the f32 file mid-payload so dtype says f32 but the
		// Data32 array is cut short.
		valid32.Bytes()[:len(valid32.Bytes())*3/4],
		[]byte("not a checkpoint at all"),
		{},
	}
	flipped := append([]byte(nil), valid.Bytes()...)
	if len(flipped) > 20 {
		flipped[20] ^= 0xFF
	}
	seeds = append(seeds, flipped)
	// Flip bytes where the gob-encoded dtype tags live ("f64"/"f32"
	// strings) to forge garbage dtypes and f32↔f64 cross-wiring.
	for _, src := range [][]byte{valid.Bytes(), valid32.Bytes()} {
		mut := append([]byte(nil), src...)
		if i := bytes.Index(mut, []byte("f64")); i >= 0 {
			copy(mut[i:], "f32") // tag says f32, payload stays f64
			seeds = append(seeds, mut)
		}
		mut2 := append([]byte(nil), src...)
		if i := bytes.Index(mut2, []byte("f32")); i >= 0 {
			copy(mut2[i:], "fXX") // garbage dtype bytes
			seeds = append(seeds, mut2)
		}
	}
	return seeds
}

// fuzzSeedsV4 builds the quantized-checkpoint seed corpus: a valid v4
// file (i8 payloads, column scales, activation tables), truncations,
// a forged dtype tag, and structurally valid files carrying each class
// of hostile v4 content — out-of-range weights, broken scale tables,
// poisoned activation sections.
func fuzzSeedsV4(fatal func(error)) [][]byte {
	act := []ActScales{
		{Name: "embed", Scales: []float32{0.5, 0.25}},
		{Name: "filter", Scales: []float32{1, 2}},
	}
	var valid bytes.Buffer
	if err := SaveParamsInt8(&valid, fuzzModel(), act); err != nil {
		fatal(err)
	}
	seeds := [][]byte{
		valid.Bytes(),
		valid.Bytes()[:len(valid.Bytes())/2],
		valid.Bytes()[:9], // v4 magic + one byte
	}
	// Forge the gob-encoded "i8" dtype tag into garbage.
	mut := append([]byte(nil), valid.Bytes()...)
	if i := bytes.Index(mut, []byte("i8")); i >= 0 {
		copy(mut[i:], "iX")
		seeds = append(seeds, mut)
	}
	// Structurally valid gob, hostile content: the loader must reject
	// each whole-file, never partially copying weights.
	hostile := []func(*checkpointHeader, *checkpointFile){
		func(h *checkpointHeader, f *checkpointFile) { f.Params[i8RecIndex(f)].Data8[0] = -128 },
		func(h *checkpointHeader, f *checkpointFile) {
			i := i8RecIndex(f)
			f.Params[i].ColScales = f.Params[i].ColScales[:1]
		},
		func(h *checkpointHeader, f *checkpointFile) { f.Params[i8RecIndex(f)].ColScales[0] = 0 },
		func(h *checkpointHeader, f *checkpointFile) {
			i := i8RecIndex(f)
			f.Params[i].Data8 = f.Params[i].Data8[:len(f.Params[i].Data8)-1]
		},
		func(h *checkpointHeader, f *checkpointFile) { f.Act[0].Scales = nil },
		func(h *checkpointHeader, f *checkpointFile) { f.Act[1].Name = f.Act[0].Name },
	}
	for _, mutate := range hostile {
		buf, err := encodeV4Mutated(fuzzModel(), act, mutate)
		if err != nil {
			fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// FuzzLoadParams hammers the checkpoint loader with corrupt input. The
// contract under attack: LoadParams must never panic, and on ANY error
// the model's weights must be byte-for-byte untouched (validate all
// before copying any — no partial writes).
func FuzzLoadParams(f *testing.F) {
	for _, seed := range fuzzSeeds(func(err error) { f.Fatal(err) }) {
		f.Add(seed)
	}
	for _, seed := range fuzzSeedsV4(func(err error) { f.Fatal(err) }) {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		params := fuzzModel()
		snap := snapshotParams(params)
		err := LoadParams(bytes.NewReader(data), params)
		if err != nil && !paramsEqual(params, snap) {
			t.Fatalf("LoadParams returned %v but modified the model — partial write on corrupt input", err)
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus when
// REGEN_FUZZ_CORPUS=1 (e.g. after a checkpoint-format change) and
// otherwise verifies every checked-in seed still satisfies the
// no-partial-write contract under direct replay.
func TestRegenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzLoadParams")
	if os.Getenv("REGEN_FUZZ_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		// v3-seed-* / v4-seed-* names never collide with fuzzer-found
		// seed-* entries, so regeneration cannot clobber crash-regression
		// cases.
		write := func(prefix string, seeds [][]byte) {
			for i, seed := range seeds {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
				if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%s-%d", prefix, i)), []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		write("v3-seed", fuzzSeeds(func(err error) { t.Fatal(err) }))
		write("v4-seed", fuzzSeedsV4(func(err error) { t.Fatal(err) }))
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no checked-in corpus: %v", err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(raw), "\n", 2)
		if len(lines) != 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a fuzz corpus file", e.Name())
		}
		var data []byte
		if _, err := fmt.Sscanf(strings.TrimSpace(lines[1]), "[]byte(%q)", &data); err != nil {
			t.Fatalf("%s: cannot parse corpus entry: %v", e.Name(), err)
		}
		params := fuzzModel()
		snap := snapshotParams(params)
		if err := LoadParams(bytes.NewReader(data), params); err != nil && !paramsEqual(params, snap) {
			t.Fatalf("%s: partial write on corrupt input", e.Name())
		}
	}
}

// FuzzLoadParamsMismatchedModel loads fuzzed bytes into a DIFFERENT
// model than the seeds were saved from, so even structurally valid
// checkpoints must be rejected whole.
func FuzzLoadParamsMismatchedModel(f *testing.F) {
	var valid bytes.Buffer
	if err := SaveParams(&valid, fuzzModel()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		other := NewMLP(rng.New(12), "other", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: Tanh}).Params()
		snap := snapshotParams(other)
		err := LoadParams(bytes.NewReader(data), other)
		if err == nil {
			// The only way a load into the wrong model succeeds is a
			// checkpoint that exactly matches its shape AND names — the
			// fuzzer would have to forge "other.l0.W" etc.; allow it but
			// keep the no-partial-write check meaningful on errors.
			return
		}
		if !paramsEqual(other, snap) {
			t.Fatalf("rejected checkpoint (%v) still modified the model", err)
		}
	})
}
