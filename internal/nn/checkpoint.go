package nn

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// The on-disk format. Version 3 files open with an 8-byte magic and a
// gob-encoded header declaring the parameter count and every
// parameter's name, shape, element count, and element dtype — so
// loading a checkpoint into a mismatched model configuration fails
// loudly before a single weight is touched, and each parameter's
// payload may be stored as float64 ("f64") or float32 ("f32", half the
// bytes — the serving-checkpoint format for the float32 inference
// path). Version 2 files (same layout, no dtype tags, f64 payloads)
// and version 1 files (headerless: the gob stream starts immediately)
// remain readable; both load as float64.
//
// Version 4 is the quantized-inference export: matrix parameters are
// stored as int8 payloads with per-output-column float32 scales (dtype
// "i8"; row-vector parameters — biases, gains, shifts — stay f32), and
// the file additionally carries the calibrated activation-scale tables
// the int8 forward pass needs, so a loaded v4 checkpoint serves at int8
// without recalibration. Every older version still loads.
const (
	checkpointVersionLegacy = 1
	checkpointVersionV2     = 2
	checkpointVersion       = 3
	checkpointVersionV4     = 4
)

// Dtype tags carried per parameter by v3+ checkpoints.
const (
	DtypeF64 = "f64"
	DtypeF32 = "f32"
	DtypeI8  = "i8" // v4 only: int8 payload + per-column scales
)

// checkpointMagic opens every v3 checkpoint; checkpointMagicV2 opened
// v2 files and checkpointMagicV4 opens quantized v4 files. Legacy gob
// streams cannot start with these bytes (gob type definitions begin
// differently), so the formats are distinguishable from the first read.
var (
	checkpointMagic   = [8]byte{'R', 'P', 'R', 'O', 'C', 'K', 'P', checkpointVersion}
	checkpointMagicV2 = [8]byte{'R', 'P', 'R', 'O', 'C', 'K', 'P', checkpointVersionV2}
	checkpointMagicV4 = [8]byte{'R', 'P', 'R', 'O', 'C', 'K', 'P', checkpointVersionV4}
)

// ActScales is one named activation-scale table persisted by a v4
// checkpoint: the static per-linear-layer input scales calibration
// produced for one MLP (or, for the GNN, one of its sub-networks /
// aggregation stages). Names are assigned by the exporting pipeline and
// must round-trip verbatim.
type ActScales struct {
	Name   string
	Scales []float32
}

// maxActScaleEntries bounds how many activation-scale tables (and how
// many scales per table) a v4 file may declare — far above anything the
// pipeline writes, low enough that a hostile header cannot demand
// unbounded work.
const maxActScaleEntries = 4096

// checkpointRecord is the serialized form of one parameter. Count is
// redundant with Rows×Cols and with the payload length; the redundancy
// is the point — any disagreement means corruption and is rejected.
// Exactly one of Data (dtype f64), Data32 (dtype f32), and Data8
// (dtype i8, v4) carries the payload; v1/v2 files predate Dtype and the
// narrower payloads and always use Data. An i8 record additionally
// carries one float32 scale per output column (ColScales, length Cols).
type checkpointRecord struct {
	Name       string
	Rows, Cols int
	Count      int    // v2+: expected payload length
	Dtype      string // v3+: DtypeF64, DtypeF32, or DtypeI8; empty in v1/v2 files
	Data       []float64
	Data32     []float32
	Data8      []int8    // v4, dtype i8: quantized payload
	ColScales  []float32 // v4, dtype i8: per-output-column scales
}

// checkpointHeader declares the file's contents ahead of the payload:
// per-param shapes, counts, and (v3) dtypes, so validation never has to
// trust Data.
type checkpointHeader struct {
	NumParams int
	Names     []string
	Rows      []int
	Cols      []int
	Counts    []int
	Dtypes    []string // v3 only; empty in v2 files
}

type checkpointFile struct {
	Version int
	Params  []checkpointRecord
	Act     []ActScales // v4 only: calibrated activation-scale tables
}

// SaveParams writes parameter values to w: magic, versioned header with
// per-param shape + count + dtype, then the payload (gob), all at
// dtype f64. Gradients and optimizer state are not persisted —
// checkpoints capture the model, not the training run.
func SaveParams(w io.Writer, params []*autograd.Param) error {
	return SaveParamsDtype(w, params, DtypeF64)
}

// SaveParamsDtype is SaveParams with an explicit element dtype for
// every parameter payload. DtypeF32 rounds each float64 weight to the
// nearest float32 (half the checkpoint bytes) — the demotion the
// float32 serving path applies at construction anyway, so an f32
// checkpoint loaded into an f64 model and served at f32 is
// score-identical to an f64 checkpoint served at f32.
func SaveParamsDtype(w io.Writer, params []*autograd.Param, dtype string) error {
	if dtype != DtypeF64 && dtype != DtypeF32 {
		return fmt.Errorf("nn: unknown checkpoint dtype %q", dtype)
	}
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint magic: %w", err)
	}
	hdr := checkpointHeader{NumParams: len(params)}
	file := checkpointFile{Version: checkpointVersion}
	for _, p := range params {
		rows, cols := p.Value.Rows(), p.Value.Cols()
		hdr.Names = append(hdr.Names, p.Name)
		hdr.Rows = append(hdr.Rows, rows)
		hdr.Cols = append(hdr.Cols, cols)
		hdr.Counts = append(hdr.Counts, rows*cols)
		hdr.Dtypes = append(hdr.Dtypes, dtype)
		rec := checkpointRecord{
			Name:  p.Name,
			Rows:  rows,
			Cols:  cols,
			Count: rows * cols,
			Dtype: dtype,
		}
		if dtype == DtypeF32 {
			rec.Data32 = make([]float32, rows*cols)
			for i, v := range p.Value.Data() {
				rec.Data32[i] = float32(v)
			}
		} else {
			rec.Data = p.Value.Data()
		}
		file.Params = append(file.Params, rec)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&hdr); err != nil {
		return fmt.Errorf("nn: encode checkpoint header: %w", err)
	}
	if err := enc.Encode(&file); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return nil
}

// SaveParamsInt8 writes a v4 quantized checkpoint: every matrix
// parameter is quantized per output column to int8 + float32 scales
// (via the same tensor.QuantizeWeights the runtime int8 snapshot uses,
// so a load/requantize round trip is bitwise exact), row-vector
// parameters (biases, LayerNorm gains/shifts) stay float32, and act
// carries the calibrated activation-scale tables the quantized forward
// needs. act entries must have non-empty unique names and positive
// finite scales.
func SaveParamsInt8(w io.Writer, params []*autograd.Param, act []ActScales) error {
	if err := validateActScales(act); err != nil {
		return err
	}
	if _, err := w.Write(checkpointMagicV4[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint magic: %w", err)
	}
	hdr := checkpointHeader{NumParams: len(params)}
	file := checkpointFile{Version: checkpointVersionV4}
	for _, a := range act {
		file.Act = append(file.Act, ActScales{Name: a.Name, Scales: append([]float32(nil), a.Scales...)})
	}
	for _, p := range params {
		rows, cols := p.Value.Rows(), p.Value.Cols()
		dtype := DtypeI8
		if rows == 1 {
			// Biases and norm parameters are a vanishing fraction of the
			// bytes and add directly into the epilogue in float — quantizing
			// them buys nothing and costs accuracy.
			dtype = DtypeF32
		}
		hdr.Names = append(hdr.Names, p.Name)
		hdr.Rows = append(hdr.Rows, rows)
		hdr.Cols = append(hdr.Cols, cols)
		hdr.Counts = append(hdr.Counts, rows*cols)
		hdr.Dtypes = append(hdr.Dtypes, dtype)
		rec := checkpointRecord{
			Name:  p.Name,
			Rows:  rows,
			Cols:  cols,
			Count: rows * cols,
			Dtype: dtype,
		}
		if dtype == DtypeI8 {
			q := tensor.QuantizeWeights(p.Value)
			rec.Data8 = q.Data()
			rec.ColScales = q.ColScale
		} else {
			rec.Data32 = make([]float32, rows*cols)
			for i, v := range p.Value.Data() {
				rec.Data32[i] = float32(v)
			}
		}
		file.Params = append(file.Params, rec)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&hdr); err != nil {
		return fmt.Errorf("nn: encode checkpoint header: %w", err)
	}
	if err := enc.Encode(&file); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return nil
}

// validateActScales rejects activation-scale tables a v4 file may not
// carry: unbounded counts, empty or duplicate names, non-positive or
// non-finite scales.
func validateActScales(act []ActScales) error {
	if len(act) > maxActScaleEntries {
		return fmt.Errorf("nn: checkpoint declares %d activation-scale tables (max %d)", len(act), maxActScaleEntries)
	}
	seen := make(map[string]bool, len(act))
	for _, a := range act {
		if a.Name == "" {
			return fmt.Errorf("nn: checkpoint activation-scale table with empty name")
		}
		if seen[a.Name] {
			return fmt.Errorf("nn: duplicate checkpoint activation-scale table %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Scales) == 0 || len(a.Scales) > maxActScaleEntries {
			return fmt.Errorf("nn: activation-scale table %q has %d scales", a.Name, len(a.Scales))
		}
		for i, s := range a.Scales {
			if !(s > 0) || math.IsInf(float64(s), 0) {
				return fmt.Errorf("nn: activation-scale table %q scale %d is %v", a.Name, i, s)
			}
		}
	}
	return nil
}

// LoadParams restores parameter values from r into params. The header
// (or, for legacy headerless files, the decoded records) is validated
// in full — count, names, shapes, element counts, dtype consistency —
// before any parameter is modified, so a mismatched checkpoint can
// never partially corrupt a model's weights. Float32 payloads widen
// exactly to float64; int8 payloads (v4) dequantize through their
// per-column scales. Activation-scale tables, if present, are
// discarded — use LoadParamsExt to receive them.
func LoadParams(r io.Reader, params []*autograd.Param) error {
	_, err := LoadParamsExt(r, params)
	return err
}

// LoadParamsExt is LoadParams returning the v4 activation-scale tables
// alongside the weights (nil for pre-v4 files) — the entry the int8
// serving path loads through so calibration survives the round trip.
func LoadParamsExt(r io.Reader, params []*autograd.Param) ([]ActScales, error) {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(checkpointMagic))
	isV4 := err == nil && bytes.Equal(peek, checkpointMagicV4[:])
	isV3 := err == nil && bytes.Equal(peek, checkpointMagic[:])
	isV2 := err == nil && bytes.Equal(peek, checkpointMagicV2[:])

	var file checkpointFile
	var hdr checkpointHeader
	switch {
	case isV4, isV3, isV2:
		if _, err := br.Discard(len(checkpointMagic)); err != nil {
			return nil, fmt.Errorf("nn: read checkpoint magic: %w", err)
		}
		want := checkpointVersion
		switch {
		case isV4:
			want = checkpointVersionV4
		case isV2:
			want = checkpointVersionV2
		}
		dec := gob.NewDecoder(br)
		if err := dec.Decode(&hdr); err != nil {
			return nil, fmt.Errorf("nn: decode checkpoint header: %w", err)
		}
		if err := validateHeader(hdr, params, want); err != nil {
			return nil, err
		}
		if err := dec.Decode(&file); err != nil {
			return nil, fmt.Errorf("nn: decode checkpoint: %w", err)
		}
		if file.Version != want {
			return nil, fmt.Errorf("nn: checkpoint version %d, want %d", file.Version, want)
		}
	default:
		// Legacy headerless file: the gob stream starts immediately.
		if err := gob.NewDecoder(br).Decode(&file); err != nil {
			return nil, fmt.Errorf("nn: decode checkpoint (not a checkpoint file?): %w", err)
		}
		if file.Version != checkpointVersionLegacy {
			return nil, fmt.Errorf("nn: headerless checkpoint version %d, want %d", file.Version, checkpointVersionLegacy)
		}
	}

	// Validate every record — payloads, scale tables, the activation
	// section — against every parameter before copying any.
	if len(file.Params) != len(params) {
		return nil, fmt.Errorf("nn: checkpoint has %d params, model has %d", len(file.Params), len(params))
	}
	if !isV4 && len(file.Act) != 0 {
		return nil, fmt.Errorf("nn: pre-v4 checkpoint carries %d activation-scale tables", len(file.Act))
	}
	if isV4 {
		if err := validateActScales(file.Act); err != nil {
			return nil, err
		}
	}
	for i, rec := range file.Params {
		p := params[i]
		if rec.Name != p.Name {
			return nil, fmt.Errorf("nn: checkpoint param %d is %q, model expects %q", i, rec.Name, p.Name)
		}
		if rec.Rows != p.Value.Rows() || rec.Cols != p.Value.Cols() {
			return nil, fmt.Errorf("nn: checkpoint param %q is %dx%d, model expects %dx%d",
				rec.Name, rec.Rows, rec.Cols, p.Value.Rows(), p.Value.Cols())
		}
		if isV3 || isV4 {
			if rec.Dtype != hdr.Dtypes[i] {
				return nil, fmt.Errorf("nn: checkpoint param %q is dtype %q but the header declares %q",
					rec.Name, rec.Dtype, hdr.Dtypes[i])
			}
			switch rec.Dtype {
			case DtypeF64:
				if len(rec.Data32) != 0 {
					return nil, fmt.Errorf("nn: checkpoint param %q is dtype f64 but carries %d f32 values", rec.Name, len(rec.Data32))
				}
			case DtypeF32:
				if len(rec.Data) != 0 {
					return nil, fmt.Errorf("nn: checkpoint param %q is dtype f32 but carries %d f64 values", rec.Name, len(rec.Data))
				}
				if len(rec.Data32) != rec.Rows*rec.Cols {
					return nil, fmt.Errorf("nn: checkpoint param %q has %d f32 values for a %dx%d shape",
						rec.Name, len(rec.Data32), rec.Rows, rec.Cols)
				}
			case DtypeI8:
				if !isV4 {
					return nil, fmt.Errorf("nn: checkpoint param %q has unknown dtype %q", rec.Name, rec.Dtype)
				}
				if err := validateI8Record(rec); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("nn: checkpoint param %q has unknown dtype %q", rec.Name, rec.Dtype)
			}
			if rec.Dtype != DtypeI8 && (len(rec.Data8) != 0 || len(rec.ColScales) != 0) {
				return nil, fmt.Errorf("nn: checkpoint param %q is dtype %q but carries int8 payload data", rec.Name, rec.Dtype)
			}
		} else if rec.Dtype != "" || len(rec.Data32) != 0 || len(rec.Data8) != 0 || len(rec.ColScales) != 0 {
			return nil, fmt.Errorf("nn: pre-v3 checkpoint param %q carries dtype metadata", rec.Name)
		}
		if rec.Dtype != DtypeF32 && rec.Dtype != DtypeI8 && len(rec.Data) != rec.Rows*rec.Cols {
			return nil, fmt.Errorf("nn: checkpoint param %q has %d values for a %dx%d shape",
				rec.Name, len(rec.Data), rec.Rows, rec.Cols)
		}
		if (isV4 || isV3 || isV2) && rec.Count != rec.Rows*rec.Cols {
			return nil, fmt.Errorf("nn: checkpoint param %q declares %d values but shape is %dx%d",
				rec.Name, rec.Count, rec.Rows, rec.Cols)
		}
	}
	for i, rec := range file.Params {
		dst := params[i].Value
		switch rec.Dtype {
		case DtypeF32:
			d := dst.Data()
			for k, v := range rec.Data32 {
				d[k] = float64(v)
			}
		case DtypeI8:
			d := dst.Data()
			for r := 0; r < rec.Rows; r++ {
				for c := 0; c < rec.Cols; c++ {
					d[r*rec.Cols+c] = float64(rec.Data8[r*rec.Cols+c]) * float64(rec.ColScales[c])
				}
			}
		default:
			dst.CopyFrom(tensor.FromSlice(rec.Rows, rec.Cols, rec.Data))
		}
	}
	return file.Act, nil
}

// validateI8Record checks one v4 int8 record: exact payload length, one
// positive finite scale per column, values inside the symmetric ±127
// range (−128 is never written by the exporter, so its presence means
// the file is corrupt or hostile).
func validateI8Record(rec checkpointRecord) error {
	if len(rec.Data) != 0 || len(rec.Data32) != 0 {
		return fmt.Errorf("nn: checkpoint param %q is dtype i8 but carries float payload data", rec.Name)
	}
	if len(rec.Data8) != rec.Rows*rec.Cols {
		return fmt.Errorf("nn: checkpoint param %q has %d int8 values for a %dx%d shape",
			rec.Name, len(rec.Data8), rec.Rows, rec.Cols)
	}
	if len(rec.ColScales) != rec.Cols {
		return fmt.Errorf("nn: checkpoint param %q has %d column scales for %d columns",
			rec.Name, len(rec.ColScales), rec.Cols)
	}
	for j, s := range rec.ColScales {
		if !(s > 0) || math.IsInf(float64(s), 0) {
			return fmt.Errorf("nn: checkpoint param %q column %d scale is %v", rec.Name, j, s)
		}
	}
	for k, q := range rec.Data8 {
		if q == -128 {
			return fmt.Errorf("nn: checkpoint param %q value %d is -128, outside the symmetric range", rec.Name, k)
		}
	}
	return nil
}

// validateHeader checks the v2+ header against the model's
// parameters — the loud, early failure for mismatched configurations.
func validateHeader(hdr checkpointHeader, params []*autograd.Param, version int) error {
	if hdr.NumParams != len(params) {
		return fmt.Errorf("nn: checkpoint header declares %d params, model has %d", hdr.NumParams, len(params))
	}
	if len(hdr.Names) != hdr.NumParams || len(hdr.Rows) != hdr.NumParams ||
		len(hdr.Cols) != hdr.NumParams || len(hdr.Counts) != hdr.NumParams {
		return fmt.Errorf("nn: checkpoint header is internally inconsistent")
	}
	if version >= checkpointVersion && len(hdr.Dtypes) != hdr.NumParams {
		return fmt.Errorf("nn: checkpoint header has %d dtype tags for %d params", len(hdr.Dtypes), hdr.NumParams)
	}
	if version < checkpointVersion && len(hdr.Dtypes) != 0 {
		return fmt.Errorf("nn: v2 checkpoint header carries dtype tags")
	}
	for i, p := range params {
		if hdr.Names[i] != p.Name {
			return fmt.Errorf("nn: checkpoint header param %d is %q, model expects %q", i, hdr.Names[i], p.Name)
		}
		if hdr.Rows[i] != p.Value.Rows() || hdr.Cols[i] != p.Value.Cols() {
			return fmt.Errorf("nn: checkpoint header param %q is %dx%d, model expects %dx%d",
				hdr.Names[i], hdr.Rows[i], hdr.Cols[i], p.Value.Rows(), p.Value.Cols())
		}
		if hdr.Counts[i] != hdr.Rows[i]*hdr.Cols[i] {
			return fmt.Errorf("nn: checkpoint header param %q count %d disagrees with shape %dx%d",
				hdr.Names[i], hdr.Counts[i], hdr.Rows[i], hdr.Cols[i])
		}
		if version >= checkpointVersion {
			ok := hdr.Dtypes[i] == DtypeF64 || hdr.Dtypes[i] == DtypeF32 ||
				(version == checkpointVersionV4 && hdr.Dtypes[i] == DtypeI8)
			if !ok {
				return fmt.Errorf("nn: checkpoint header param %q has unknown dtype %q", hdr.Names[i], hdr.Dtypes[i])
			}
		}
	}
	return nil
}

// SaveParamsFile writes a gzip-compressed checkpoint to path.
func SaveParamsFile(path string, params []*autograd.Param) error {
	return SaveParamsFileDtype(path, params, DtypeF64)
}

// SaveParamsFileDtype is SaveParamsFile with an explicit payload dtype
// (see SaveParamsDtype).
func SaveParamsFileDtype(path string, params []*autograd.Param, dtype string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create checkpoint: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := SaveParamsDtype(zw, params, dtype); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("nn: close checkpoint gzip: %w", err)
	}
	return f.Close()
}

// SaveParamsFileInt8 writes a gzip-compressed v4 quantized checkpoint
// to path (see SaveParamsInt8).
func SaveParamsFileInt8(path string, params []*autograd.Param, act []ActScales) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create checkpoint: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := SaveParamsInt8(zw, params, act); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("nn: close checkpoint gzip: %w", err)
	}
	return f.Close()
}

// LoadParamsFile restores a checkpoint written by SaveParamsFile.
func LoadParamsFile(path string, params []*autograd.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: open checkpoint: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("nn: checkpoint gzip: %w", err)
	}
	defer zr.Close()
	return LoadParams(zr, params)
}

// LoadParamsFileExt restores a checkpoint from path and returns its
// activation-scale tables (nil for pre-v4 files).
func LoadParamsFileExt(path string, params []*autograd.Param) ([]ActScales, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open checkpoint: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("nn: checkpoint gzip: %w", err)
	}
	defer zr.Close()
	return LoadParamsExt(zr, params)
}
