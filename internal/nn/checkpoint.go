package nn

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// The on-disk format. Version 3 files open with an 8-byte magic and a
// gob-encoded header declaring the parameter count and every
// parameter's name, shape, element count, and element dtype — so
// loading a checkpoint into a mismatched model configuration fails
// loudly before a single weight is touched, and each parameter's
// payload may be stored as float64 ("f64") or float32 ("f32", half the
// bytes — the serving-checkpoint format for the float32 inference
// path). Version 2 files (same layout, no dtype tags, f64 payloads)
// and version 1 files (headerless: the gob stream starts immediately)
// remain readable; both load as float64.
const (
	checkpointVersionLegacy = 1
	checkpointVersionV2     = 2
	checkpointVersion       = 3
)

// Dtype tags carried per parameter by v3 checkpoints.
const (
	DtypeF64 = "f64"
	DtypeF32 = "f32"
)

// checkpointMagic opens every v3 checkpoint; checkpointMagicV2 opened
// v2 files. Legacy gob streams cannot start with these bytes (gob type
// definitions begin differently), so the formats are distinguishable
// from the first read.
var (
	checkpointMagic   = [8]byte{'R', 'P', 'R', 'O', 'C', 'K', 'P', checkpointVersion}
	checkpointMagicV2 = [8]byte{'R', 'P', 'R', 'O', 'C', 'K', 'P', checkpointVersionV2}
)

// checkpointRecord is the serialized form of one parameter. Count is
// redundant with Rows×Cols and with the payload length; the redundancy
// is the point — any disagreement means corruption and is rejected.
// Exactly one of Data (dtype f64) and Data32 (dtype f32) carries the
// payload; v1/v2 files predate Dtype and Data32 and always use Data.
type checkpointRecord struct {
	Name       string
	Rows, Cols int
	Count      int    // v2+: expected payload length
	Dtype      string // v3: DtypeF64 or DtypeF32; empty in v1/v2 files
	Data       []float64
	Data32     []float32
}

// checkpointHeader declares the file's contents ahead of the payload:
// per-param shapes, counts, and (v3) dtypes, so validation never has to
// trust Data.
type checkpointHeader struct {
	NumParams int
	Names     []string
	Rows      []int
	Cols      []int
	Counts    []int
	Dtypes    []string // v3 only; empty in v2 files
}

type checkpointFile struct {
	Version int
	Params  []checkpointRecord
}

// SaveParams writes parameter values to w: magic, versioned header with
// per-param shape + count + dtype, then the payload (gob), all at
// dtype f64. Gradients and optimizer state are not persisted —
// checkpoints capture the model, not the training run.
func SaveParams(w io.Writer, params []*autograd.Param) error {
	return SaveParamsDtype(w, params, DtypeF64)
}

// SaveParamsDtype is SaveParams with an explicit element dtype for
// every parameter payload. DtypeF32 rounds each float64 weight to the
// nearest float32 (half the checkpoint bytes) — the demotion the
// float32 serving path applies at construction anyway, so an f32
// checkpoint loaded into an f64 model and served at f32 is
// score-identical to an f64 checkpoint served at f32.
func SaveParamsDtype(w io.Writer, params []*autograd.Param, dtype string) error {
	if dtype != DtypeF64 && dtype != DtypeF32 {
		return fmt.Errorf("nn: unknown checkpoint dtype %q", dtype)
	}
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint magic: %w", err)
	}
	hdr := checkpointHeader{NumParams: len(params)}
	file := checkpointFile{Version: checkpointVersion}
	for _, p := range params {
		rows, cols := p.Value.Rows(), p.Value.Cols()
		hdr.Names = append(hdr.Names, p.Name)
		hdr.Rows = append(hdr.Rows, rows)
		hdr.Cols = append(hdr.Cols, cols)
		hdr.Counts = append(hdr.Counts, rows*cols)
		hdr.Dtypes = append(hdr.Dtypes, dtype)
		rec := checkpointRecord{
			Name:  p.Name,
			Rows:  rows,
			Cols:  cols,
			Count: rows * cols,
			Dtype: dtype,
		}
		if dtype == DtypeF32 {
			rec.Data32 = make([]float32, rows*cols)
			for i, v := range p.Value.Data() {
				rec.Data32[i] = float32(v)
			}
		} else {
			rec.Data = p.Value.Data()
		}
		file.Params = append(file.Params, rec)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&hdr); err != nil {
		return fmt.Errorf("nn: encode checkpoint header: %w", err)
	}
	if err := enc.Encode(&file); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return nil
}

// LoadParams restores parameter values from r into params. The header
// (or, for legacy headerless files, the decoded records) is validated
// in full — count, names, shapes, element counts, dtype consistency —
// before any parameter is modified, so a mismatched checkpoint can
// never partially corrupt a model's weights. Float32 payloads widen
// exactly to float64.
func LoadParams(r io.Reader, params []*autograd.Param) error {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(checkpointMagic))
	isV3 := err == nil && bytes.Equal(peek, checkpointMagic[:])
	isV2 := err == nil && bytes.Equal(peek, checkpointMagicV2[:])

	var file checkpointFile
	var hdr checkpointHeader
	switch {
	case isV3, isV2:
		if _, err := br.Discard(len(checkpointMagic)); err != nil {
			return fmt.Errorf("nn: read checkpoint magic: %w", err)
		}
		dec := gob.NewDecoder(br)
		if err := dec.Decode(&hdr); err != nil {
			return fmt.Errorf("nn: decode checkpoint header: %w", err)
		}
		if err := validateHeader(hdr, params, isV3); err != nil {
			return err
		}
		if err := dec.Decode(&file); err != nil {
			return fmt.Errorf("nn: decode checkpoint: %w", err)
		}
		want := checkpointVersion
		if isV2 {
			want = checkpointVersionV2
		}
		if file.Version != want {
			return fmt.Errorf("nn: checkpoint version %d, want %d", file.Version, want)
		}
	default:
		// Legacy headerless file: the gob stream starts immediately.
		if err := gob.NewDecoder(br).Decode(&file); err != nil {
			return fmt.Errorf("nn: decode checkpoint (not a checkpoint file?): %w", err)
		}
		if file.Version != checkpointVersionLegacy {
			return fmt.Errorf("nn: headerless checkpoint version %d, want %d", file.Version, checkpointVersionLegacy)
		}
	}

	// Validate every record against every parameter before copying any.
	if len(file.Params) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(file.Params), len(params))
	}
	for i, rec := range file.Params {
		p := params[i]
		if rec.Name != p.Name {
			return fmt.Errorf("nn: checkpoint param %d is %q, model expects %q", i, rec.Name, p.Name)
		}
		if rec.Rows != p.Value.Rows() || rec.Cols != p.Value.Cols() {
			return fmt.Errorf("nn: checkpoint param %q is %dx%d, model expects %dx%d",
				rec.Name, rec.Rows, rec.Cols, p.Value.Rows(), p.Value.Cols())
		}
		if isV3 {
			if rec.Dtype != hdr.Dtypes[i] {
				return fmt.Errorf("nn: checkpoint param %q is dtype %q but the header declares %q",
					rec.Name, rec.Dtype, hdr.Dtypes[i])
			}
			switch rec.Dtype {
			case DtypeF64:
				if len(rec.Data32) != 0 {
					return fmt.Errorf("nn: checkpoint param %q is dtype f64 but carries %d f32 values", rec.Name, len(rec.Data32))
				}
			case DtypeF32:
				if len(rec.Data) != 0 {
					return fmt.Errorf("nn: checkpoint param %q is dtype f32 but carries %d f64 values", rec.Name, len(rec.Data))
				}
				if len(rec.Data32) != rec.Rows*rec.Cols {
					return fmt.Errorf("nn: checkpoint param %q has %d f32 values for a %dx%d shape",
						rec.Name, len(rec.Data32), rec.Rows, rec.Cols)
				}
			default:
				return fmt.Errorf("nn: checkpoint param %q has unknown dtype %q", rec.Name, rec.Dtype)
			}
		} else if rec.Dtype != "" || len(rec.Data32) != 0 {
			return fmt.Errorf("nn: pre-v3 checkpoint param %q carries dtype metadata", rec.Name)
		}
		if rec.Dtype != DtypeF32 && len(rec.Data) != rec.Rows*rec.Cols {
			return fmt.Errorf("nn: checkpoint param %q has %d values for a %dx%d shape",
				rec.Name, len(rec.Data), rec.Rows, rec.Cols)
		}
		if (isV3 || isV2) && rec.Count != rec.Rows*rec.Cols {
			return fmt.Errorf("nn: checkpoint param %q declares %d values but shape is %dx%d",
				rec.Name, rec.Count, rec.Rows, rec.Cols)
		}
	}
	for i, rec := range file.Params {
		dst := params[i].Value
		if rec.Dtype == DtypeF32 {
			d := dst.Data()
			for k, v := range rec.Data32 {
				d[k] = float64(v)
			}
			continue
		}
		dst.CopyFrom(tensor.FromSlice(rec.Rows, rec.Cols, rec.Data))
	}
	return nil
}

// validateHeader checks the v2/v3 header against the model's
// parameters — the loud, early failure for mismatched configurations.
func validateHeader(hdr checkpointHeader, params []*autograd.Param, isV3 bool) error {
	if hdr.NumParams != len(params) {
		return fmt.Errorf("nn: checkpoint header declares %d params, model has %d", hdr.NumParams, len(params))
	}
	if len(hdr.Names) != hdr.NumParams || len(hdr.Rows) != hdr.NumParams ||
		len(hdr.Cols) != hdr.NumParams || len(hdr.Counts) != hdr.NumParams {
		return fmt.Errorf("nn: checkpoint header is internally inconsistent")
	}
	if isV3 && len(hdr.Dtypes) != hdr.NumParams {
		return fmt.Errorf("nn: checkpoint header has %d dtype tags for %d params", len(hdr.Dtypes), hdr.NumParams)
	}
	if !isV3 && len(hdr.Dtypes) != 0 {
		return fmt.Errorf("nn: v2 checkpoint header carries dtype tags")
	}
	for i, p := range params {
		if hdr.Names[i] != p.Name {
			return fmt.Errorf("nn: checkpoint header param %d is %q, model expects %q", i, hdr.Names[i], p.Name)
		}
		if hdr.Rows[i] != p.Value.Rows() || hdr.Cols[i] != p.Value.Cols() {
			return fmt.Errorf("nn: checkpoint header param %q is %dx%d, model expects %dx%d",
				hdr.Names[i], hdr.Rows[i], hdr.Cols[i], p.Value.Rows(), p.Value.Cols())
		}
		if hdr.Counts[i] != hdr.Rows[i]*hdr.Cols[i] {
			return fmt.Errorf("nn: checkpoint header param %q count %d disagrees with shape %dx%d",
				hdr.Names[i], hdr.Counts[i], hdr.Rows[i], hdr.Cols[i])
		}
		if isV3 && hdr.Dtypes[i] != DtypeF64 && hdr.Dtypes[i] != DtypeF32 {
			return fmt.Errorf("nn: checkpoint header param %q has unknown dtype %q", hdr.Names[i], hdr.Dtypes[i])
		}
	}
	return nil
}

// SaveParamsFile writes a gzip-compressed checkpoint to path.
func SaveParamsFile(path string, params []*autograd.Param) error {
	return SaveParamsFileDtype(path, params, DtypeF64)
}

// SaveParamsFileDtype is SaveParamsFile with an explicit payload dtype
// (see SaveParamsDtype).
func SaveParamsFileDtype(path string, params []*autograd.Param, dtype string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create checkpoint: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := SaveParamsDtype(zw, params, dtype); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("nn: close checkpoint gzip: %w", err)
	}
	return f.Close()
}

// LoadParamsFile restores a checkpoint written by SaveParamsFile.
func LoadParamsFile(path string, params []*autograd.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: open checkpoint: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("nn: checkpoint gzip: %w", err)
	}
	defer zr.Close()
	return LoadParams(zr, params)
}
