package nn

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// checkpointRecord is the serialized form of one parameter.
type checkpointRecord struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

type checkpointFile struct {
	Version int
	Params  []checkpointRecord
}

// SaveParams writes parameter values to w (gob). Gradients and optimizer
// state are not persisted — checkpoints capture the model, not the
// training run.
func SaveParams(w io.Writer, params []*autograd.Param) error {
	file := checkpointFile{Version: checkpointVersion}
	for _, p := range params {
		file.Params = append(file.Params, checkpointRecord{
			Name: p.Name,
			Rows: p.Value.Rows(),
			Cols: p.Value.Cols(),
			Data: p.Value.Data(),
		})
	}
	if err := gob.NewEncoder(w).Encode(&file); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return nil
}

// LoadParams restores parameter values from r into params, matching by
// position and validating names and shapes.
func LoadParams(r io.Reader, params []*autograd.Param) error {
	var file checkpointFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if file.Version != checkpointVersion {
		return fmt.Errorf("nn: checkpoint version %d, want %d", file.Version, checkpointVersion)
	}
	if len(file.Params) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(file.Params), len(params))
	}
	for i, rec := range file.Params {
		p := params[i]
		if rec.Name != p.Name {
			return fmt.Errorf("nn: checkpoint param %d is %q, model expects %q", i, rec.Name, p.Name)
		}
		if rec.Rows != p.Value.Rows() || rec.Cols != p.Value.Cols() {
			return fmt.Errorf("nn: checkpoint param %q is %dx%d, model expects %dx%d",
				rec.Name, rec.Rows, rec.Cols, p.Value.Rows(), p.Value.Cols())
		}
		p.Value.CopyFrom(tensor.FromSlice(rec.Rows, rec.Cols, rec.Data))
	}
	return nil
}

// SaveParamsFile writes a gzip-compressed checkpoint to path.
func SaveParamsFile(path string, params []*autograd.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create checkpoint: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := SaveParams(zw, params); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("nn: close checkpoint gzip: %w", err)
	}
	return f.Close()
}

// LoadParamsFile restores a checkpoint written by SaveParamsFile.
func LoadParamsFile(path string, params []*autograd.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: open checkpoint: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("nn: checkpoint gzip: %w", err)
	}
	defer zr.Close()
	return LoadParams(zr, params)
}
