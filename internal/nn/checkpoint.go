package nn

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// The on-disk format. Version 2 files open with an 8-byte magic and a
// gob-encoded header declaring the parameter count and every
// parameter's name, shape, and element count — so loading a checkpoint
// into a mismatched model configuration fails loudly before a single
// weight is touched. Version 1 files (headerless: the gob stream starts
// immediately) remain readable.
const (
	checkpointVersionLegacy = 1
	checkpointVersion       = 2
)

// checkpointMagic opens every v2 checkpoint. Legacy gob streams cannot
// start with these bytes (gob type definitions begin differently), so
// the formats are distinguishable from the first read.
var checkpointMagic = [8]byte{'R', 'P', 'R', 'O', 'C', 'K', 'P', checkpointVersion}

// checkpointRecord is the serialized form of one parameter. Count is
// redundant with Rows×Cols and with len(Data); the redundancy is the
// point — any disagreement means corruption and is rejected.
type checkpointRecord struct {
	Name       string
	Rows, Cols int
	Count      int // v2 only: expected len(Data)
	Data       []float64
}

// checkpointHeader declares the file's contents ahead of the payload:
// per-param shapes and counts, so validation never has to trust Data.
type checkpointHeader struct {
	NumParams int
	Names     []string
	Rows      []int
	Cols      []int
	Counts    []int
}

type checkpointFile struct {
	Version int
	Params  []checkpointRecord
}

// SaveParams writes parameter values to w: magic, versioned header with
// per-param shape + count, then the payload (gob). Gradients and
// optimizer state are not persisted — checkpoints capture the model,
// not the training run.
func SaveParams(w io.Writer, params []*autograd.Param) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return fmt.Errorf("nn: write checkpoint magic: %w", err)
	}
	hdr := checkpointHeader{NumParams: len(params)}
	file := checkpointFile{Version: checkpointVersion}
	for _, p := range params {
		rows, cols := p.Value.Rows(), p.Value.Cols()
		hdr.Names = append(hdr.Names, p.Name)
		hdr.Rows = append(hdr.Rows, rows)
		hdr.Cols = append(hdr.Cols, cols)
		hdr.Counts = append(hdr.Counts, rows*cols)
		file.Params = append(file.Params, checkpointRecord{
			Name:  p.Name,
			Rows:  rows,
			Cols:  cols,
			Count: rows * cols,
			Data:  p.Value.Data(),
		})
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(&hdr); err != nil {
		return fmt.Errorf("nn: encode checkpoint header: %w", err)
	}
	if err := enc.Encode(&file); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return nil
}

// LoadParams restores parameter values from r into params. The header
// (or, for legacy headerless files, the decoded records) is validated
// in full — count, names, shapes, element counts — before any parameter
// is modified, so a mismatched checkpoint can never partially corrupt a
// model's weights.
func LoadParams(r io.Reader, params []*autograd.Param) error {
	br := bufio.NewReader(r)
	peek, err := br.Peek(len(checkpointMagic))
	isV2 := err == nil && bytes.Equal(peek, checkpointMagic[:])

	var file checkpointFile
	if isV2 {
		if _, err := br.Discard(len(checkpointMagic)); err != nil {
			return fmt.Errorf("nn: read checkpoint magic: %w", err)
		}
		dec := gob.NewDecoder(br)
		var hdr checkpointHeader
		if err := dec.Decode(&hdr); err != nil {
			return fmt.Errorf("nn: decode checkpoint header: %w", err)
		}
		if err := validateHeader(hdr, params); err != nil {
			return err
		}
		if err := dec.Decode(&file); err != nil {
			return fmt.Errorf("nn: decode checkpoint: %w", err)
		}
		if file.Version != checkpointVersion {
			return fmt.Errorf("nn: checkpoint version %d, want %d", file.Version, checkpointVersion)
		}
	} else {
		// Legacy headerless file: the gob stream starts immediately.
		if err := gob.NewDecoder(br).Decode(&file); err != nil {
			return fmt.Errorf("nn: decode checkpoint (not a checkpoint file?): %w", err)
		}
		if file.Version != checkpointVersionLegacy {
			return fmt.Errorf("nn: headerless checkpoint version %d, want %d", file.Version, checkpointVersionLegacy)
		}
	}

	// Validate every record against every parameter before copying any.
	if len(file.Params) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(file.Params), len(params))
	}
	for i, rec := range file.Params {
		p := params[i]
		if rec.Name != p.Name {
			return fmt.Errorf("nn: checkpoint param %d is %q, model expects %q", i, rec.Name, p.Name)
		}
		if rec.Rows != p.Value.Rows() || rec.Cols != p.Value.Cols() {
			return fmt.Errorf("nn: checkpoint param %q is %dx%d, model expects %dx%d",
				rec.Name, rec.Rows, rec.Cols, p.Value.Rows(), p.Value.Cols())
		}
		if len(rec.Data) != rec.Rows*rec.Cols {
			return fmt.Errorf("nn: checkpoint param %q has %d values for a %dx%d shape",
				rec.Name, len(rec.Data), rec.Rows, rec.Cols)
		}
		if isV2 && rec.Count != len(rec.Data) {
			return fmt.Errorf("nn: checkpoint param %q declares %d values but carries %d",
				rec.Name, rec.Count, len(rec.Data))
		}
	}
	for i, rec := range file.Params {
		params[i].Value.CopyFrom(tensor.FromSlice(rec.Rows, rec.Cols, rec.Data))
	}
	return nil
}

// validateHeader checks the v2 header against the model's parameters —
// the loud, early failure for mismatched configurations.
func validateHeader(hdr checkpointHeader, params []*autograd.Param) error {
	if hdr.NumParams != len(params) {
		return fmt.Errorf("nn: checkpoint header declares %d params, model has %d", hdr.NumParams, len(params))
	}
	if len(hdr.Names) != hdr.NumParams || len(hdr.Rows) != hdr.NumParams ||
		len(hdr.Cols) != hdr.NumParams || len(hdr.Counts) != hdr.NumParams {
		return fmt.Errorf("nn: checkpoint header is internally inconsistent")
	}
	for i, p := range params {
		if hdr.Names[i] != p.Name {
			return fmt.Errorf("nn: checkpoint header param %d is %q, model expects %q", i, hdr.Names[i], p.Name)
		}
		if hdr.Rows[i] != p.Value.Rows() || hdr.Cols[i] != p.Value.Cols() {
			return fmt.Errorf("nn: checkpoint header param %q is %dx%d, model expects %dx%d",
				hdr.Names[i], hdr.Rows[i], hdr.Cols[i], p.Value.Rows(), p.Value.Cols())
		}
		if hdr.Counts[i] != hdr.Rows[i]*hdr.Cols[i] {
			return fmt.Errorf("nn: checkpoint header param %q count %d disagrees with shape %dx%d",
				hdr.Names[i], hdr.Counts[i], hdr.Rows[i], hdr.Cols[i])
		}
	}
	return nil
}

// SaveParamsFile writes a gzip-compressed checkpoint to path.
func SaveParamsFile(path string, params []*autograd.Param) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create checkpoint: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := SaveParams(zw, params); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("nn: close checkpoint gzip: %w", err)
	}
	return f.Close()
}

// LoadParamsFile restores a checkpoint written by SaveParamsFile.
func LoadParamsFile(path string, params []*autograd.Param) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("nn: open checkpoint: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("nn: checkpoint gzip: %w", err)
	}
	defer zr.Close()
	return LoadParams(zr, params)
}
