package nn

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/autograd"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// v2SaveParams writes the historical v2 format — v2 magic, header
// without dtype tags, f64 payloads, file version 2 — so read
// compatibility with pre-dtype checkpoints stays pinned now that the
// writer emits v3.
func v2SaveParams(buf *bytes.Buffer, params []*autograd.Param) error {
	if _, err := buf.Write(checkpointMagicV2[:]); err != nil {
		return err
	}
	hdr := checkpointHeader{NumParams: len(params)}
	file := checkpointFile{Version: checkpointVersionV2}
	for _, p := range params {
		rows, cols := p.Value.Rows(), p.Value.Cols()
		hdr.Names = append(hdr.Names, p.Name)
		hdr.Rows = append(hdr.Rows, rows)
		hdr.Cols = append(hdr.Cols, cols)
		hdr.Counts = append(hdr.Counts, rows*cols)
		file.Params = append(file.Params, checkpointRecord{
			Name: p.Name, Rows: rows, Cols: cols, Count: rows * cols, Data: p.Value.Data(),
		})
	}
	enc := gob.NewEncoder(buf)
	if err := enc.Encode(&hdr); err != nil {
		return err
	}
	return enc.Encode(&file)
}

func TestCheckpointV2ReadCompat(t *testing.T) {
	m := NewMLP(rng.New(31), "m", MLPConfig{In: 3, Hidden: []int{4}, Out: 2, Activation: ReLU, LayerNorm: true})
	var buf bytes.Buffer
	if err := v2SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(rng.New(32), "m", MLPConfig{In: 3, Hidden: []int{4}, Out: 2, Activation: ReLU, LayerNorm: true})
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatalf("v2 checkpoint rejected: %v", err)
	}
	for i, p := range m2.Params() {
		if p.Value.MaxAbsDiff(m.Params()[i].Value) != 0 {
			t.Fatalf("param %d differs after v2 restore", i)
		}
	}
}

func TestCheckpointV3Magic(t *testing.T) {
	m := NewMLP(rng.New(33), "m", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: ReLU})
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), checkpointMagic[:]) {
		t.Fatal("v3 checkpoint does not open with the v3 magic")
	}
	if bytes.HasPrefix(buf.Bytes(), checkpointMagicV2[:]) {
		t.Fatal("v3 magic collides with v2")
	}
}

// TestCheckpointF32RoundTrip: an f32-dtype checkpoint loads with every
// weight equal to the one-step f64→f32→f64 rounding of the original —
// exactly the demotion the float32 serving path applies, so serving an
// f32 checkpoint at f32 is score-identical to serving the f64 original.
func TestCheckpointF32RoundTrip(t *testing.T) {
	m := NewMLP(rng.New(34), "m", MLPConfig{In: 3, Hidden: []int{5}, Out: 2, Activation: Tanh, LayerNorm: true})
	var buf bytes.Buffer
	if err := SaveParamsDtype(&buf, m.Params(), DtypeF32); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(rng.New(35), "m", MLPConfig{In: 3, Hidden: []int{5}, Out: 2, Activation: Tanh, LayerNorm: true})
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatalf("f32 checkpoint rejected: %v", err)
	}
	for i, p := range m2.Params() {
		orig := m.Params()[i].Value.Data()
		for k, v := range p.Value.Data() {
			if v != float64(float32(orig[k])) {
				t.Fatalf("param %d elem %d: %v, want rounded %v", i, k, v, float64(float32(orig[k])))
			}
		}
	}
}

// TestCheckpointF32Smaller sanity-checks the point of the f32 dtype:
// the serialized payload shrinks (roughly halves for weight-dominated
// files).
func TestCheckpointF32Smaller(t *testing.T) {
	m := NewMLP(rng.New(36), "m", MLPConfig{In: 32, Hidden: []int{64}, Out: 32, Activation: ReLU})
	var f64buf, f32buf bytes.Buffer
	if err := SaveParams(&f64buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	if err := SaveParamsDtype(&f32buf, m.Params(), DtypeF32); err != nil {
		t.Fatal(err)
	}
	if f32buf.Len() >= f64buf.Len()*3/4 {
		t.Fatalf("f32 checkpoint %dB not meaningfully smaller than f64 %dB", f32buf.Len(), f64buf.Len())
	}
}

func TestCheckpointUnknownDtypeRejected(t *testing.T) {
	if err := SaveParamsDtype(&bytes.Buffer{}, nil, "f16"); err == nil {
		t.Fatal("unknown save dtype accepted")
	}

	// Hand-craft a v3 file whose dtype tag is garbage; it must be
	// rejected with no parameter modified.
	m := NewMLP(rng.New(37), "m", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: ReLU})
	params := m.Params()
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	hdr := checkpointHeader{NumParams: len(params)}
	file := checkpointFile{Version: checkpointVersion}
	for _, p := range params {
		rows, cols := p.Value.Rows(), p.Value.Cols()
		hdr.Names = append(hdr.Names, p.Name)
		hdr.Rows = append(hdr.Rows, rows)
		hdr.Cols = append(hdr.Cols, cols)
		hdr.Counts = append(hdr.Counts, rows*cols)
		hdr.Dtypes = append(hdr.Dtypes, "f16") // not a real dtype
		file.Params = append(file.Params, checkpointRecord{
			Name: p.Name, Rows: rows, Cols: cols, Count: rows * cols, Dtype: "f16", Data: p.Value.Data(),
		})
	}
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(&hdr); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(&file); err != nil {
		t.Fatal(err)
	}

	load := NewMLP(rng.New(38), "m", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: ReLU})
	before := make([]*tensor.Dense, len(load.Params()))
	for i, p := range load.Params() {
		before[i] = p.Value.Clone()
	}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), load.Params()); err == nil {
		t.Fatal("garbage dtype accepted")
	}
	for i, p := range load.Params() {
		if p.Value.MaxAbsDiff(before[i]) != 0 {
			t.Fatalf("param %d mutated by rejected dtype", i)
		}
	}
}

// TestCheckpointDtypePayloadMismatchRejected covers the f32↔f64
// cross-wiring cases: a record whose dtype tag disagrees with which
// payload array it carries must be rejected before any copy.
func TestCheckpointDtypePayloadMismatchRejected(t *testing.T) {
	m := NewMLP(rng.New(39), "m", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: ReLU})
	params := m.Params()

	build := func(mut func(rec *checkpointRecord)) []byte {
		var buf bytes.Buffer
		buf.Write(checkpointMagic[:])
		hdr := checkpointHeader{NumParams: len(params)}
		file := checkpointFile{Version: checkpointVersion}
		for _, p := range params {
			rows, cols := p.Value.Rows(), p.Value.Cols()
			hdr.Names = append(hdr.Names, p.Name)
			hdr.Rows = append(hdr.Rows, rows)
			hdr.Cols = append(hdr.Cols, cols)
			hdr.Counts = append(hdr.Counts, rows*cols)
			hdr.Dtypes = append(hdr.Dtypes, DtypeF64)
			rec := checkpointRecord{
				Name: p.Name, Rows: rows, Cols: cols, Count: rows * cols, Dtype: DtypeF64, Data: p.Value.Data(),
			}
			mut(&rec)
			file.Params = append(file.Params, rec)
		}
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(&hdr); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&file); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := map[string]func(rec *checkpointRecord){
		"record dtype disagrees with header tag": func(rec *checkpointRecord) {
			// Header keeps f64; record claims f32 with a matching f32
			// payload — internally consistent but contradicting the
			// validated header, which must win.
			rec.Dtype = DtypeF32
			rec.Data32 = make([]float32, len(rec.Data))
			rec.Data = nil
		},
		"f64 tag with f32 payload attached": func(rec *checkpointRecord) {
			rec.Data32 = make([]float32, len(rec.Data))
		},
		"f32 tag with f64 payload": func(rec *checkpointRecord) {
			rec.Dtype = DtypeF32 // Data still set, Data32 missing
		},
		"f32 tag with truncated f32 payload": func(rec *checkpointRecord) {
			rec.Dtype = DtypeF32
			rec.Data = nil
			rec.Data32 = make([]float32, 1) // wrong length
		},
	}
	for name, mut := range cases {
		load := NewMLP(rng.New(40), "m", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: ReLU})
		before := make([]*tensor.Dense, len(load.Params()))
		for i, p := range load.Params() {
			before[i] = p.Value.Clone()
		}
		if err := LoadParams(bytes.NewReader(build(mut)), load.Params()); err == nil {
			t.Fatalf("%s: accepted", name)
		}
		for i, p := range load.Params() {
			if p.Value.MaxAbsDiff(before[i]) != 0 {
				t.Fatalf("%s: param %d mutated", name, i)
			}
		}
	}
}
