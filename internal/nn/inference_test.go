package nn

import (
	"testing"

	"repro/internal/autograd"
	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// inferenceConfigs spans the MLP shapes the pipeline instantiates:
// fused ReLU hidden layers, LayerNorm, and each alternate activation.
var inferenceConfigs = []MLPConfig{
	{In: 5, Hidden: []int{8, 8}, Out: 3, Activation: ReLU},
	{In: 5, Hidden: []int{8}, Out: 1, Activation: ReLU, LayerNorm: true},
	{In: 4, Hidden: []int{6}, Out: 2, Activation: Tanh, LayerNorm: true},
	{In: 4, Hidden: []int{6}, Out: 2, Activation: Sigmoid},
	{In: 3, Hidden: []int{4}, Out: 2, Activation: None},
}

// TestMLPInferenceF64MatchesTapeForward is the load-bearing refactor
// guarantee: the tape-free float64 inference forward is bitwise
// identical to MLP.Forward on an autograd tape — same kernels, same
// order, no tape bookkeeping.
func TestMLPInferenceF64MatchesTapeForward(t *testing.T) {
	for ci, cfg := range inferenceConfigs {
		m := NewMLP(rng.New(uint64(40+ci)), "m", cfg)
		x := tensor.RandN(rng.New(uint64(90+ci)), 17, cfg.In, 1)

		tape := autograd.NewTape()
		want := m.Forward(tape, tape.Constant(x)).Value

		inf := NewMLPInference[float64](m)
		arena := workspace.NewArena()
		defer arena.Reset()
		got := inf.Forward(kernels.Context{}, arena, x)
		if want.MaxAbsDiff(got) != 0 {
			t.Fatalf("config %d: inference forward differs from tape forward by %v",
				ci, want.MaxAbsDiff(got))
		}
		// And at an explicit worker budget.
		got2 := inf.Forward(kernels.Context{Workers: 3}, arena, x)
		if want.MaxAbsDiff(got2) != 0 {
			t.Fatalf("config %d: inference forward differs at 3 workers", ci)
		}
	}
}

// TestMLPInferenceF32WithinTolerance bounds the rounding drift of the
// float32 forward against float64 on small unit-scale networks.
func TestMLPInferenceF32WithinTolerance(t *testing.T) {
	for ci, cfg := range inferenceConfigs {
		m := NewMLP(rng.New(uint64(140+ci)), "m", cfg)
		x64 := tensor.RandN(rng.New(uint64(190+ci)), 17, cfg.In, 1)

		inf64 := NewMLPInference[float64](m)
		want := inf64.Forward(kernels.Context{}, nil, x64)

		inf32 := NewMLPInference[float32](m)
		x32 := tensor.ConvertFrom[float32](nil, x64)
		got := tensor.ConvertFrom[float64](nil, inf32.Forward(kernels.Context{}, nil, x32))
		if d := want.MaxAbsDiff(got); d > 1e-4 {
			t.Fatalf("config %d: f32 forward drifts %v from f64", ci, d)
		}
	}
}

// TestMLPInferenceImmutableUnderForward guards the concurrency
// contract: Forward must not touch the converted weights.
func TestMLPInferenceImmutableUnderForward(t *testing.T) {
	cfg := MLPConfig{In: 4, Hidden: []int{6}, Out: 2, Activation: ReLU, LayerNorm: true}
	m := NewMLP(rng.New(7), "m", cfg)
	inf := NewMLPInference[float32](m)
	before := make([]*tensor.Dense32, len(inf.w))
	for i, w := range inf.w {
		before[i] = w.Clone()
	}
	x := tensor.ConvertFrom[float32](nil, tensor.RandN(rng.New(8), 9, cfg.In, 1))
	inf.Forward(kernels.Context{}, nil, x)
	for i, w := range inf.w {
		if w.MaxAbsDiff(before[i]) != 0 {
			t.Fatalf("weight %d mutated by Forward", i)
		}
	}
}

// TestMLPInferenceConversionRoundsOnce pins the conversion semantics:
// each f32 weight is the one-step rounding of the trained f64 weight.
func TestMLPInferenceConversionRoundsOnce(t *testing.T) {
	m := NewMLP(rng.New(17), "m", MLPConfig{In: 3, Hidden: []int{5}, Out: 2, Activation: ReLU})
	inf := NewMLPInference[float32](m)
	params := m.Params()
	// Layer weights come first in Params order (W, b per layer).
	if got, want := inf.w[0].At(1, 2), float32(params[0].Value.At(1, 2)); got != want {
		t.Fatalf("converted weight %v, want %v", got, want)
	}
	if got, want := inf.b[0].At(0, 1), float32(params[1].Value.At(0, 1)); got != want {
		t.Fatalf("converted bias %v, want %v", got, want)
	}
}
