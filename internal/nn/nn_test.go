package nn

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	r := rng.New(1)
	l := NewLinear(r, "lin", 4, 7)
	tp := autograd.NewTape()
	x := tp.Constant(tensor.RandN(r, 10, 4, 1))
	y := l.Forward(tp, x)
	if y.Value.Rows() != 10 || y.Value.Cols() != 7 {
		t.Fatalf("Linear output %dx%d, want 10x7", y.Value.Rows(), y.Value.Cols())
	}
	if l.In() != 4 || l.Out() != 7 {
		t.Fatalf("In/Out = %d/%d", l.In(), l.Out())
	}
}

func TestMLPParamCount(t *testing.T) {
	r := rng.New(2)
	m := NewMLP(r, "mlp", MLPConfig{In: 6, Hidden: []int{16, 16}, Out: 1, Activation: ReLU})
	// 3 linear layers × (W, b) = 6 params.
	if got := len(m.Params()); got != 6 {
		t.Fatalf("param count %d, want 6", got)
	}
	mn := NewMLP(r, "mlpn", MLPConfig{In: 6, Hidden: []int{16, 16}, Out: 1, Activation: ReLU, LayerNorm: true})
	// + 2 layer norms × (gain, bias) = 10.
	if got := len(mn.Params()); got != 10 {
		t.Fatalf("layernorm param count %d, want 10", got)
	}
	if m.NumLayers() != 3 {
		t.Fatalf("NumLayers = %d, want 3", m.NumLayers())
	}
}

// trainXOR trains an MLP on XOR and returns final accuracy — the smoke
// test that forward, backward, and the optimizer compose correctly.
func trainXOR(t *testing.T, opt Optimizer, layerNorm bool) float64 {
	t.Helper()
	r := rng.New(42)
	m := NewMLP(r, "xor", MLPConfig{In: 2, Hidden: []int{16}, Out: 1, Activation: Tanh, LayerNorm: layerNorm})
	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 800; epoch++ {
		tp := autograd.NewTape()
		out := m.Forward(tp, tp.Constant(x))
		loss := tp.BCEWithLogits(out, y, 1)
		tp.Backward(loss)
		opt.Step(m.Params())
	}
	tp := autograd.NewTape()
	out := m.Forward(tp, tp.Constant(x))
	correct := 0
	for i, target := range y {
		pred := 0.0
		if out.Value.At(i, 0) > 0 {
			pred = 1
		}
		if pred == target {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

func TestMLPLearnsXORWithSGD(t *testing.T) {
	if acc := trainXOR(t, &SGD{LR: 0.5, Momentum: 0.9}, false); acc < 1.0 {
		t.Fatalf("SGD XOR accuracy %v, want 1.0", acc)
	}
}

func TestMLPLearnsXORWithAdam(t *testing.T) {
	if acc := trainXOR(t, NewAdam(0.01), false); acc < 1.0 {
		t.Fatalf("Adam XOR accuracy %v, want 1.0", acc)
	}
}

func TestMLPLearnsXORWithLayerNorm(t *testing.T) {
	if acc := trainXOR(t, NewAdam(0.01), true); acc < 1.0 {
		t.Fatalf("LayerNorm XOR accuracy %v, want 1.0", acc)
	}
}

func TestSGDStepDirection(t *testing.T) {
	p := autograd.NewParam("p", tensor.FromRows([][]float64{{1.0}}))
	p.Grad.Set(0, 0, 2.0)
	NewSGD(0.1).Step([]*autograd.Param{p})
	if got := p.Value.At(0, 0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("SGD step got %v, want 0.8", got)
	}
	if p.Grad.At(0, 0) != 0 {
		t.Fatal("SGD did not zero grad")
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := autograd.NewParam("p", tensor.FromRows([][]float64{{1.0}}))
	o := &SGD{LR: 0.1, WeightDecay: 0.5}
	o.Step([]*autograd.Param{p}) // grad 0 + decay 0.5*1 = 0.5 → p -= 0.05
	if got := p.Value.At(0, 0); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("weight decay step got %v, want 0.95", got)
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// On the first step Adam moves by ≈ lr * sign(grad).
	p := autograd.NewParam("p", tensor.FromRows([][]float64{{0.0}}))
	p.Grad.Set(0, 0, 3.0)
	NewAdam(0.01).Step([]*autograd.Param{p})
	if got := p.Value.At(0, 0); math.Abs(got+0.01) > 1e-6 {
		t.Fatalf("Adam first step got %v, want ≈ -0.01", got)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	r := rng.New(3)
	m := NewMLP(r, "m", MLPConfig{In: 3, Hidden: []int{5}, Out: 2, Activation: ReLU})
	params := m.Params()
	for _, p := range params {
		p.Grad.CopyFrom(tensor.RandN(r, p.Grad.Rows(), p.Grad.Cols(), 1))
	}
	buf := make([]float64, GradElements(params))
	FlattenGrads(params, buf)
	saved := make([][]float64, len(params))
	for i, p := range params {
		saved[i] = append([]float64(nil), p.Grad.Data()...)
	}
	ZeroGrads(params)
	UnflattenGrads(params, buf)
	for i, p := range params {
		for j, v := range p.Grad.Data() {
			if v != saved[i][j] {
				t.Fatalf("param %d elem %d: %v != %v after round trip", i, j, v, saved[i][j])
			}
		}
	}
}

func TestCloneParamsIndependent(t *testing.T) {
	r := rng.New(4)
	m := NewMLP(r, "m", MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: ReLU})
	orig := m.Params()
	clone := CloneParams(orig)
	clone[0].Value.Set(0, 0, 999)
	if orig[0].Value.At(0, 0) == 999 {
		t.Fatal("clone shares storage with original")
	}
	CopyParamValues(clone, orig)
	if clone[0].Value.At(0, 0) == 999 {
		t.Fatal("CopyParamValues did not restore")
	}
}

func TestScaleGrads(t *testing.T) {
	p := autograd.NewParam("p", tensor.New(2, 2))
	p.Grad.Fill(4)
	ScaleGrads([]*autograd.Param{p}, 0.25)
	if p.Grad.At(1, 1) != 1 {
		t.Fatalf("ScaleGrads got %v", p.Grad.At(1, 1))
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewMLP(rng.New(7), "a", MLPConfig{In: 4, Hidden: []int{8}, Out: 2, Activation: ReLU})
	b := NewMLP(rng.New(7), "a", MLPConfig{In: 4, Hidden: []int{8}, Out: 2, Activation: ReLU})
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i].Value.MaxAbsDiff(pb[i].Value) != 0 {
			t.Fatalf("same-seed init differs at param %d", i)
		}
	}
}
