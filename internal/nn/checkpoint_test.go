package nn

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/autograd"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	r := rng.New(1)
	m := NewMLP(r, "m", MLPConfig{In: 3, Hidden: []int{8}, Out: 2, Activation: ReLU, LayerNorm: true})
	params := m.Params()
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	// Restore into a differently initialized twin.
	m2 := NewMLP(rng.New(99), "m", MLPConfig{In: 3, Hidden: []int{8}, Out: 2, Activation: ReLU, LayerNorm: true})
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range m2.Params() {
		if p.Value.MaxAbsDiff(params[i].Value) != 0 {
			t.Fatalf("param %d differs after restore", i)
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	r := rng.New(2)
	m := NewMLP(r, "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: Tanh})
	path := filepath.Join(t.TempDir(), "model.ckpt.gz")
	if err := SaveParamsFile(path, m.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(rng.New(3), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: Tanh})
	if err := LoadParamsFile(path, m2.Params()); err != nil {
		t.Fatal(err)
	}
	if m2.Params()[0].Value.MaxAbsDiff(m.Params()[0].Value) != 0 {
		t.Fatal("file round trip lost values")
	}
}

func TestCheckpointValidation(t *testing.T) {
	r := rng.New(4)
	m := NewMLP(r, "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	other := NewMLP(r, "m", MLPConfig{In: 3, Hidden: []int{4}, Out: 1, Activation: ReLU})
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Fatal("shape mismatch not detected")
	}
	// Wrong name.
	renamed := NewMLP(r, "other", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	if err := LoadParams(bytes.NewReader(buf.Bytes()), renamed.Params()); err == nil {
		t.Fatal("name mismatch not detected")
	}
	// Wrong count.
	short := []*autograd.Param{m.Params()[0]}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), short); err == nil {
		t.Fatal("count mismatch not detected")
	}
}

func TestStepLRSchedule(t *testing.T) {
	s := StepLR{Base: 1.0, StepSize: 2, Gamma: 0.1}
	want := []float64{1, 1, 0.1, 0.1, 0.01}
	for epoch, w := range want {
		if got := s.LR(epoch); math.Abs(got-w) > 1e-12 {
			t.Fatalf("epoch %d lr %v, want %v", epoch, got, w)
		}
	}
}

func TestCosineLRSchedule(t *testing.T) {
	s := CosineLR{Base: 1.0, Min: 0.1, Total: 5}
	if got := s.LR(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("first epoch lr %v", got)
	}
	if got := s.LR(4); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("last epoch lr %v", got)
	}
	if got := s.LR(100); got != 0.1 {
		t.Fatalf("beyond total lr %v", got)
	}
	// Monotone decreasing.
	prev := s.LR(0)
	for e := 1; e < 5; e++ {
		cur := s.LR(e)
		if cur >= prev {
			t.Fatalf("cosine not decreasing at %d", e)
		}
		prev = cur
	}
}

func TestWarmupLR(t *testing.T) {
	s := WarmupLR{Warmup: 4, Inner: ConstantLR{Base: 1.0}}
	if got := s.LR(0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("warmup epoch 0 lr %v", got)
	}
	if got := s.LR(3); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("warmup epoch 3 lr %v", got)
	}
	if got := s.LR(10); got != 1.0 {
		t.Fatalf("post-warmup lr %v", got)
	}
}

func TestSetLR(t *testing.T) {
	sgd := NewSGD(0.1)
	SetLR(sgd, 0.5)
	if sgd.LR != 0.5 {
		t.Fatal("SetLR failed for SGD")
	}
	adam := NewAdam(0.01)
	SetLR(adam, 0.002)
	if adam.LR != 0.002 {
		t.Fatal("SetLR failed for Adam")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := autograd.NewParam("p", tensor.New(1, 2))
	p.Grad.Set(0, 0, 3)
	p.Grad.Set(0, 1, 4) // norm 5
	norm := ClipGradNorm([]*autograd.Param{p}, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	if after := p.Grad.Norm2(); math.Abs(after-1.0) > 1e-9 {
		t.Fatalf("post-clip norm %v", after)
	}
	// No-op below the bound or with maxNorm<=0.
	before := p.Grad.Clone()
	ClipGradNorm([]*autograd.Param{p}, 10)
	if p.Grad.MaxAbsDiff(before) != 0 {
		t.Fatal("clip modified in-bound gradient")
	}
	ClipGradNorm([]*autograd.Param{p}, 0)
	if p.Grad.MaxAbsDiff(before) != 0 {
		t.Fatal("maxNorm=0 should be a no-op")
	}
}
