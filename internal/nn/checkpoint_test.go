package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/autograd"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	r := rng.New(1)
	m := NewMLP(r, "m", MLPConfig{In: 3, Hidden: []int{8}, Out: 2, Activation: ReLU, LayerNorm: true})
	params := m.Params()
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	// Restore into a differently initialized twin.
	m2 := NewMLP(rng.New(99), "m", MLPConfig{In: 3, Hidden: []int{8}, Out: 2, Activation: ReLU, LayerNorm: true})
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range m2.Params() {
		if p.Value.MaxAbsDiff(params[i].Value) != 0 {
			t.Fatalf("param %d differs after restore", i)
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	r := rng.New(2)
	m := NewMLP(r, "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: Tanh})
	path := filepath.Join(t.TempDir(), "model.ckpt.gz")
	if err := SaveParamsFile(path, m.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(rng.New(3), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: Tanh})
	if err := LoadParamsFile(path, m2.Params()); err != nil {
		t.Fatal(err)
	}
	if m2.Params()[0].Value.MaxAbsDiff(m.Params()[0].Value) != 0 {
		t.Fatal("file round trip lost values")
	}
}

func TestCheckpointValidation(t *testing.T) {
	r := rng.New(4)
	m := NewMLP(r, "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	other := NewMLP(r, "m", MLPConfig{In: 3, Hidden: []int{4}, Out: 1, Activation: ReLU})
	if err := LoadParams(bytes.NewReader(buf.Bytes()), other.Params()); err == nil {
		t.Fatal("shape mismatch not detected")
	}
	// Wrong name.
	renamed := NewMLP(r, "other", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	if err := LoadParams(bytes.NewReader(buf.Bytes()), renamed.Params()); err == nil {
		t.Fatal("name mismatch not detected")
	}
	// Wrong count.
	short := []*autograd.Param{m.Params()[0]}
	if err := LoadParams(bytes.NewReader(buf.Bytes()), short); err == nil {
		t.Fatal("count mismatch not detected")
	}
}

// legacySaveParams writes the headerless v1 format: a bare gob stream.
func legacySaveParams(buf *bytes.Buffer, params []*autograd.Param) error {
	file := checkpointFile{Version: checkpointVersionLegacy}
	for _, p := range params {
		file.Params = append(file.Params, checkpointRecord{
			Name: p.Name,
			Rows: p.Value.Rows(),
			Cols: p.Value.Cols(),
			Data: p.Value.Data(),
		})
	}
	return gob.NewEncoder(buf).Encode(&file)
}

func TestCheckpointMagicHeader(t *testing.T) {
	m := NewMLP(rng.New(5), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	var buf bytes.Buffer
	if err := SaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), checkpointMagic[:]) {
		t.Fatal("v2 checkpoint does not open with the magic header")
	}
}

func TestCheckpointLegacyReadCompat(t *testing.T) {
	m := NewMLP(rng.New(6), "m", MLPConfig{In: 3, Hidden: []int{4}, Out: 2, Activation: Tanh})
	var buf bytes.Buffer
	if err := legacySaveParams(&buf, m.Params()); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP(rng.New(66), "m", MLPConfig{In: 3, Hidden: []int{4}, Out: 2, Activation: Tanh})
	if err := LoadParams(&buf, m2.Params()); err != nil {
		t.Fatalf("headerless v1 checkpoint rejected: %v", err)
	}
	for i, p := range m2.Params() {
		if p.Value.MaxAbsDiff(m.Params()[i].Value) != 0 {
			t.Fatalf("param %d differs after legacy restore", i)
		}
	}
}

// TestCheckpointNoPartialMutation is the point of the header: loading a
// mismatched checkpoint must not modify ANY parameter, not fail halfway
// through with the early parameters already overwritten.
func TestCheckpointNoPartialMutation(t *testing.T) {
	save := NewMLP(rng.New(7), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	// Mismatch only in the LAST parameter's shape: same layer count,
	// different output width — earlier params agree in name and shape.
	load := NewMLP(rng.New(77), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 3, Activation: ReLU})
	before := make([]*tensor.Dense, len(load.Params()))
	for i, p := range load.Params() {
		before[i] = p.Value.Clone()
	}
	for _, format := range []struct {
		name string
		save func(*bytes.Buffer) error
	}{
		{"v2", func(b *bytes.Buffer) error { return SaveParams(b, save.Params()) }},
		{"legacy", func(b *bytes.Buffer) error { return legacySaveParams(b, save.Params()) }},
	} {
		var buf bytes.Buffer
		if err := format.save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := LoadParams(&buf, load.Params()); err == nil {
			t.Fatalf("%s: mismatched checkpoint accepted", format.name)
		}
		for i, p := range load.Params() {
			if p.Value.MaxAbsDiff(before[i]) != 0 {
				t.Fatalf("%s: param %d mutated by a rejected checkpoint", format.name, i)
			}
		}
	}
}

func TestCheckpointGarbageRejected(t *testing.T) {
	m := NewMLP(rng.New(8), "m", MLPConfig{In: 2, Hidden: []int{4}, Out: 1, Activation: ReLU})
	garbage := []byte("definitely not a checkpoint file, not even close")
	if err := LoadParams(bytes.NewReader(garbage), m.Params()); err == nil {
		t.Fatal("garbage accepted as checkpoint")
	}
}

func TestStepLRSchedule(t *testing.T) {
	s := StepLR{Base: 1.0, StepSize: 2, Gamma: 0.1}
	want := []float64{1, 1, 0.1, 0.1, 0.01}
	for epoch, w := range want {
		if got := s.LR(epoch); math.Abs(got-w) > 1e-12 {
			t.Fatalf("epoch %d lr %v, want %v", epoch, got, w)
		}
	}
}

func TestCosineLRSchedule(t *testing.T) {
	s := CosineLR{Base: 1.0, Min: 0.1, Total: 5}
	if got := s.LR(0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("first epoch lr %v", got)
	}
	if got := s.LR(4); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("last epoch lr %v", got)
	}
	if got := s.LR(100); got != 0.1 {
		t.Fatalf("beyond total lr %v", got)
	}
	// Monotone decreasing.
	prev := s.LR(0)
	for e := 1; e < 5; e++ {
		cur := s.LR(e)
		if cur >= prev {
			t.Fatalf("cosine not decreasing at %d", e)
		}
		prev = cur
	}
}

func TestWarmupLR(t *testing.T) {
	s := WarmupLR{Warmup: 4, Inner: ConstantLR{Base: 1.0}}
	if got := s.LR(0); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("warmup epoch 0 lr %v", got)
	}
	if got := s.LR(3); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("warmup epoch 3 lr %v", got)
	}
	if got := s.LR(10); got != 1.0 {
		t.Fatalf("post-warmup lr %v", got)
	}
}

func TestSetLR(t *testing.T) {
	sgd := NewSGD(0.1)
	SetLR(sgd, 0.5)
	if sgd.LR != 0.5 {
		t.Fatal("SetLR failed for SGD")
	}
	adam := NewAdam(0.01)
	SetLR(adam, 0.002)
	if adam.LR != 0.002 {
		t.Fatal("SetLR failed for Adam")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := autograd.NewParam("p", tensor.New(1, 2))
	p.Grad.Set(0, 0, 3)
	p.Grad.Set(0, 1, 4) // norm 5
	norm := ClipGradNorm([]*autograd.Param{p}, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	if after := p.Grad.Norm2(); math.Abs(after-1.0) > 1e-9 {
		t.Fatalf("post-clip norm %v", after)
	}
	// No-op below the bound or with maxNorm<=0.
	before := p.Grad.Clone()
	ClipGradNorm([]*autograd.Param{p}, 10)
	if p.Grad.MaxAbsDiff(before) != 0 {
		t.Fatal("clip modified in-bound gradient")
	}
	ClipGradNorm([]*autograd.Param{p}, 0)
	if p.Grad.MaxAbsDiff(before) != 0 {
		t.Fatal("maxNorm=0 should be a no-op")
	}
}
