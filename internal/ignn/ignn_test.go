package ignn

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func tinyConfig() Config {
	return Config{NodeFeatures: 3, EdgeFeatures: 2, Hidden: 8, Steps: 2}
}

// ring builds a ring graph with n vertices and random features.
func ring(r *rng.Rand, n int, cfg Config) (src, dst []int, x, y *tensor.Dense) {
	for i := 0; i < n; i++ {
		src = append(src, i)
		dst = append(dst, (i+1)%n)
	}
	return src, dst, tensor.RandN(r, n, cfg.NodeFeatures, 1), tensor.RandN(r, n, cfg.EdgeFeatures, 1)
}

func TestForwardShapes(t *testing.T) {
	cfg := tinyConfig()
	r := rng.New(1)
	m := New(cfg, r)
	src, dst, x, y := ring(r, 6, cfg)
	tp := autograd.NewTape()
	out := m.Forward(tp, src, dst, x, y)
	if out.Value.Rows() != 6 || out.Value.Cols() != 1 {
		t.Fatalf("logits %dx%d, want 6x1", out.Value.Rows(), out.Value.Cols())
	}
}

func TestAllParamsReceiveGradient(t *testing.T) {
	cfg := tinyConfig()
	r := rng.New(2)
	m := New(cfg, r)
	src, dst, x, y := ring(r, 8, cfg)
	labels := make([]float64, len(src))
	for i := range labels {
		labels[i] = float64(i % 2)
	}
	tp := autograd.NewTape()
	loss := tp.BCEWithLogits(m.Forward(tp, src, dst, x, y), labels, 1)
	tp.Backward(loss)
	for _, p := range m.Params() {
		if p.Grad.Norm2() == 0 {
			t.Fatalf("param %s received zero gradient", p.Name)
		}
	}
}

func TestParamCountScalesWithSteps(t *testing.T) {
	r := rng.New(3)
	cfg := tinyConfig()
	m2 := New(cfg, r)
	cfg.Steps = 4
	m4 := New(cfg, r)
	// Each extra step adds an edge MLP + node MLP (4 params each without
	// layer norm: two linear layers ×(W,b)).
	extra := len(m4.Params()) - len(m2.Params())
	if extra != 2*2*4 {
		t.Fatalf("extra params for 2 extra steps: %d, want 16", extra)
	}
}

func TestDeterministicForward(t *testing.T) {
	cfg := tinyConfig()
	a := New(cfg, rng.New(7))
	b := New(cfg, rng.New(7))
	r := rng.New(8)
	src, dst, x, y := ring(r, 5, cfg)
	sa := a.EdgeScores(src, dst, x, y)
	sb := b.EdgeScores(src, dst, x, y)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same-seed models disagree at edge %d", i)
		}
	}
}

func TestPermutationEquivariance(t *testing.T) {
	// Relabeling vertices (and permuting features consistently) must leave
	// per-edge scores unchanged.
	cfg := tinyConfig()
	r := rng.New(4)
	m := New(cfg, r)
	src, dst, x, y := ring(r, 7, cfg)
	base := m.EdgeScores(src, dst, x, y)

	perm := rng.New(5).Perm(7)
	inv := make([]int, 7)
	for i, p := range perm {
		inv[p] = i
	}
	px := tensor.GatherRows(x, inv) // row perm[i] of px = row i of x ⇔ px[j] = x[inv[j]]
	psrc := make([]int, len(src))
	pdst := make([]int, len(dst))
	for k := range src {
		psrc[k] = perm[src[k]]
		pdst[k] = perm[dst[k]]
	}
	got := m.EdgeScores(psrc, pdst, px, y)
	for k := range base {
		if math.Abs(base[k]-got[k]) > 1e-9 {
			t.Fatalf("edge %d score changed under relabeling: %v vs %v", k, base[k], got[k])
		}
	}
}

func TestLearnsEdgeParity(t *testing.T) {
	// Edges whose feature sign is positive are labeled 1: the GNN must
	// learn a separable rule through message passing.
	cfg := Config{NodeFeatures: 2, EdgeFeatures: 2, Hidden: 12, Steps: 2}
	r := rng.New(6)
	m := New(cfg, r)
	src, dst, x, y := ring(r, 24, cfg)
	labels := make([]float64, len(src))
	for i := range labels {
		if y.At(i, 0) > 0 {
			labels[i] = 1
		}
	}
	opt := nn.NewAdam(5e-3)
	for step := 0; step < 150; step++ {
		tp := autograd.NewTape()
		loss := tp.BCEWithLogits(m.Forward(tp, src, dst, x, y), labels, 1)
		tp.Backward(loss)
		opt.Step(m.Params())
	}
	scores := m.EdgeScores(src, dst, x, y)
	correct := 0
	for i, s := range scores {
		if (s > 0.5) == (labels[i] > 0.5) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(scores)); acc < 0.95 {
		t.Fatalf("edge classification accuracy %v after training", acc)
	}
}

func TestEstimateActivationElementsTracksTape(t *testing.T) {
	cfg := Config{NodeFeatures: 3, EdgeFeatures: 2, Hidden: 16, Steps: 3}
	r := rng.New(9)
	m := New(cfg, r)
	src, dst, x, y := ring(r, 40, cfg)
	tp := autograd.NewTape()
	m.Forward(tp, src, dst, x, y)
	actual := tp.ActivationElements()
	est := EstimateActivationElements(cfg, 40, len(src))
	ratio := float64(est) / float64(actual)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("estimate %d vs actual %d (ratio %v) outside [0.5, 2]", est, actual, ratio)
	}
}

func TestEstimateMonotoneInSize(t *testing.T) {
	cfg := tinyConfig()
	small := EstimateActivationElements(cfg, 100, 300)
	big := EstimateActivationElements(cfg, 1000, 3000)
	if big <= small {
		t.Fatal("activation estimate not monotone in graph size")
	}
	cfg.Steps = 8
	deeper := EstimateActivationElements(cfg, 100, 300)
	if deeper <= small {
		t.Fatal("activation estimate not monotone in depth")
	}
}

func TestForwardValidation(t *testing.T) {
	cfg := tinyConfig()
	r := rng.New(10)
	m := New(cfg, r)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched edge features did not panic")
		}
	}()
	tp := autograd.NewTape()
	m.Forward(tp, []int{0, 1}, []int{1, 0}, tensor.New(2, 3), tensor.New(5, 2))
}
