package ignn

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// QuantScales bundles every calibrated activation scale the quantized
// Interaction GNN needs: one table per sub-network (input scale per
// linear layer) plus, per non-final message-passing step, the scale the
// edge messages are quantized at before the incidence-SpMM aggregation.
// Produced by a Calibrator; persisted in checkpoint v4.
type QuantScales struct {
	NodeEnc  []float32
	EdgeEnc  []float32
	EdgeNets [][]float32 // Steps entries
	NodeNets [][]float32 // Steps-1 entries
	Head     []float32
	Agg      []float32 // Steps-1 entries: message scale into aggregation
}

// Quantized is the int8 forward pass of a trained Interaction GNN. The
// encoders, edge networks, and head quantize internally (float32 in,
// float32 out); the node-update input never exists in float32 — the
// aggregation requantizes directly to the node network's input scale
// and the [Msrc ‖ Mdst ‖ X'] assembly concatenates int8 payloads.
// Immutable and safe for concurrent use.
type Quantized struct {
	cfg         Config
	nodeEncoder *nn.MLPQuant
	edgeEncoder *nn.MLPQuant
	edgeNets    []*nn.MLPQuant
	nodeNets    []*nn.MLPQuant
	head        *nn.MLPQuant
	agg         []float32
}

// NewQuantized snapshots m's trained weights at int8 under the given
// calibrated scales. Table counts must match the configuration.
func NewQuantized(m *Model, sc QuantScales) (*Quantized, error) {
	steps := m.cfg.Steps
	if len(sc.EdgeNets) != steps || len(sc.NodeNets) != steps-1 || len(sc.Agg) != steps-1 {
		return nil, fmt.Errorf("ignn: quant scales for %d/%d edge nets, %d/%d node nets, %d/%d aggregations",
			len(sc.EdgeNets), steps, len(sc.NodeNets), steps-1, len(sc.Agg), steps-1)
	}
	for l, s := range sc.Agg {
		if !(s > 0) || math.IsInf(float64(s), 0) {
			return nil, fmt.Errorf("ignn: aggregation scale %d is %v", l, s)
		}
	}
	q := &Quantized{cfg: m.cfg, agg: append([]float32(nil), sc.Agg...)}
	var err error
	if q.nodeEncoder, err = nn.NewMLPQuant(m.nodeEncoder, sc.NodeEnc); err != nil {
		return nil, fmt.Errorf("ignn: node encoder: %w", err)
	}
	if q.edgeEncoder, err = nn.NewMLPQuant(m.edgeEncoder, sc.EdgeEnc); err != nil {
		return nil, fmt.Errorf("ignn: edge encoder: %w", err)
	}
	for l, e := range m.edgeNets {
		mq, err := nn.NewMLPQuant(e, sc.EdgeNets[l])
		if err != nil {
			return nil, fmt.Errorf("ignn: edge net %d: %w", l, err)
		}
		q.edgeNets = append(q.edgeNets, mq)
	}
	for l, nnet := range m.nodeNets {
		mq, err := nn.NewMLPQuant(nnet, sc.NodeNets[l])
		if err != nil {
			return nil, fmt.Errorf("ignn: node net %d: %w", l, err)
		}
		q.nodeNets = append(q.nodeNets, mq)
	}
	if q.head, err = nn.NewMLPQuant(m.head, sc.Head); err != nil {
		return nil, fmt.Errorf("ignn: head: %w", err)
	}
	return q, nil
}

// Config returns the model configuration.
func (q *Quantized) Config() Config { return q.cfg }

// Scales returns the calibrated scale tables (copies) for export.
func (q *Quantized) Scales() QuantScales {
	sc := QuantScales{
		NodeEnc: q.nodeEncoder.ActScales(),
		EdgeEnc: q.edgeEncoder.ActScales(),
		Head:    q.head.ActScales(),
		Agg:     append([]float32(nil), q.agg...),
	}
	for _, e := range q.edgeNets {
		sc.EdgeNets = append(sc.EdgeNets, e.ActScales())
	}
	for _, n := range q.nodeNets {
		sc.NodeNets = append(sc.NodeNets, n.ActScales())
	}
	return sc
}

// EdgeScoresCtx runs quantized inference on graph (src, dst) with
// float32 node features x and edge features y, returning per-edge
// sigmoid scores as float64. Same dataflow as Inference.EdgeScoresCtx;
// the AGG→node-update stretch runs entirely in int8: messages quantize
// once at the calibrated aggregation scale, the incidence-SpMM
// requantizes straight to the node network's input scale, and the
// network consumes the int8 concat without a float32 intermediate.
func (q *Quantized) EdgeScoresCtx(kc kernels.Context, arena *workspace.Arena, src, dst []int, x, y *tensor.Matrix[float32]) []float64 {
	if len(src) != len(dst) {
		panic("ignn: src/dst length mismatch")
	}
	if y.Rows() != len(src) {
		panic(fmt.Sprintf("ignn: %d edges but %d edge-feature rows", len(src), y.Rows()))
	}
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	n := x.Rows()
	h := q.cfg.Hidden

	x0 := q.nodeEncoder.Forward(kc, arena, x)
	y0 := q.edgeEncoder.Forward(kc, arena, y)
	xl, yl := x0, y0
	for l := 0; l < q.cfg.Steps; l++ {
		xc := tensor.NewFromOf[float32](arena, n, 2*h)
		tensor.ConcatColsIntoCtx(kc, xc, xl, x0)
		yc := tensor.NewFromOf[float32](arena, len(src), 2*h)
		tensor.ConcatColsIntoCtx(kc, yc, yl, y0)
		msgIn := tensor.NewFromOf[float32](arena, len(src), 6*h)
		tensor.GatherConcat3IntoCtx(kc, msgIn, yc, nil, xc, src, xc, dst)
		yl = q.edgeNets[l].Forward(kc, arena, msgIn)
		if l == q.cfg.Steps-1 {
			break // final X update is unused by the edge head
		}
		ylq := tensor.NewQMatFrom(arena, len(src), h, q.agg[l])
		tensor.QuantizeInto(kc, ylq, yl, q.agg[l])
		nodeScale := q.nodeNets[l].InScale()
		msrc := q.aggregateQ(kc, arena, ylq, src, n, nodeScale)
		mdst := q.aggregateQ(kc, arena, ylq, dst, n, nodeScale)
		xcq := tensor.NewQMatFrom(arena, n, 2*h, nodeScale)
		tensor.QuantizeInto(kc, xcq, xc, nodeScale)
		nodeIn := tensor.NewQMatFrom(arena, n, 4*h, nodeScale)
		tensor.QConcatColsInto(kc, nodeIn, msrc, mdst, xcq)
		xl = q.nodeNets[l].ForwardQ(kc, arena, nodeIn)
	}
	logits := q.head.Forward(kc, arena, yl)
	out := make([]float64, len(src))
	for i := range out {
		out[i] = nn.SigmoidScore(logits.At(i, 0))
	}
	return out
}

// aggregateQ is aggregateRows in int8: the implicit-ones incidence
// matrix never materializes a value stream, products accumulate in
// int32, and the epilogue requantizes directly to outScale. Under a
// tile shape with column banding (the default) the incidence builds in
// blocked form — integer accumulation makes banding exactly neutral.
func (q *Quantized) aggregateQ(kc kernels.Context, arena *workspace.Arena, x *tensor.QMat, idx []int, outRows int, outScale float32) *tensor.QMat {
	m := len(idx)
	if band := kc.ShapeI8().Band; band > 0 && m > 0 {
		if band > m {
			band = m
		}
		nb := (m + band - 1) / band
		s := &sparse.QBlockedCSR{
			RowPtr: arenaInt(arena, nb*(outRows+1)),
			ColIdx: arenaInt(arena, m),
		}
		sparse.QBlockedIncidenceInto(s, outRows, idx, band)
		v := tensor.NewQMatFrom(arena, outRows, x.Cols(), outScale)
		sparse.QBlockedSpMMQuantInto(kc, v, s, x, outScale)
		return v
	}
	s := &sparse.QCSR{
		RowPtr: arenaInt(arena, outRows+1),
		ColIdx: arenaInt(arena, m),
	}
	sparse.QIncidenceInto(s, outRows, idx)
	v := tensor.NewQMatFrom(arena, outRows, x.Cols(), outScale)
	sparse.QSpMMQuantInto(kc, v, s, x, outScale)
	return v
}

// Calibrator records the activation ranges the quantized GNN needs: it
// replays the float32 inference dataflow over representative graphs,
// tracking per-linear-layer input ranges in every sub-network plus the
// message range entering each aggregation.
type Calibrator struct {
	m           *Model
	nodeEncoder *nn.MLPCalibrator
	edgeEncoder *nn.MLPCalibrator
	edgeNets    []*nn.MLPCalibrator
	nodeNets    []*nn.MLPCalibrator
	head        *nn.MLPCalibrator
	aggMax      []float64
}

// NewCalibrator builds a calibrator over m's current weights.
func NewCalibrator(m *Model) *Calibrator {
	c := &Calibrator{
		m:           m,
		nodeEncoder: nn.NewMLPCalibrator(m.nodeEncoder),
		edgeEncoder: nn.NewMLPCalibrator(m.edgeEncoder),
		head:        nn.NewMLPCalibrator(m.head),
		aggMax:      make([]float64, m.cfg.Steps-1),
	}
	for _, e := range m.edgeNets {
		c.edgeNets = append(c.edgeNets, nn.NewMLPCalibrator(e))
	}
	for _, n := range m.nodeNets {
		c.nodeNets = append(c.nodeNets, nn.NewMLPCalibrator(n))
	}
	return c
}

// Observe runs the float32 forward on one graph, recording ranges, and
// returns the per-edge scores.
func (c *Calibrator) Observe(kc kernels.Context, arena *workspace.Arena, src, dst []int, x, y *tensor.Matrix[float32]) []float64 {
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	n := x.Rows()
	h := c.m.cfg.Hidden
	x0 := c.nodeEncoder.Observe(kc, arena, x)
	y0 := c.edgeEncoder.Observe(kc, arena, y)
	xl, yl := x0, y0
	for l := 0; l < c.m.cfg.Steps; l++ {
		xc := tensor.NewFromOf[float32](arena, n, 2*h)
		tensor.ConcatColsIntoCtx(kc, xc, xl, x0)
		yc := tensor.NewFromOf[float32](arena, len(src), 2*h)
		tensor.ConcatColsIntoCtx(kc, yc, yl, y0)
		msgIn := tensor.NewFromOf[float32](arena, len(src), 6*h)
		tensor.GatherConcat3IntoCtx(kc, msgIn, yc, nil, xc, src, xc, dst)
		yl = c.edgeNets[l].Observe(kc, arena, msgIn)
		if l == c.m.cfg.Steps-1 {
			break
		}
		worst := c.aggMax[l]
		for _, v := range yl.Data() {
			if a := math.Abs(float64(v)); a > worst {
				worst = a
			}
		}
		c.aggMax[l] = worst
		msrc := aggregateRows(kc, arena, yl, src, n)
		mdst := aggregateRows(kc, arena, yl, dst, n)
		nodeIn := tensor.NewFromOf[float32](arena, n, 4*h)
		tensor.ConcatColsIntoCtx(kc, nodeIn, msrc, mdst, xc)
		xl = c.nodeNets[l].Observe(kc, arena, nodeIn)
	}
	logits := c.head.Observe(kc, arena, yl)
	out := make([]float64, len(src))
	for i := range out {
		out[i] = nn.SigmoidScore(logits.At(i, 0))
	}
	return out
}

// Scales returns the calibrated scale tables.
func (c *Calibrator) Scales() QuantScales {
	sc := QuantScales{
		NodeEnc: c.nodeEncoder.Scales(),
		EdgeEnc: c.edgeEncoder.Scales(),
		Head:    c.head.Scales(),
		Agg:     make([]float32, len(c.aggMax)),
	}
	for l, m := range c.aggMax {
		if m == 0 {
			sc.Agg[l] = 1
			continue
		}
		sc.Agg[l] = float32(m / 127)
	}
	for _, e := range c.edgeNets {
		sc.EdgeNets = append(sc.EdgeNets, e.Scales())
	}
	for _, n := range c.nodeNets {
		sc.NodeNets = append(sc.NodeNets, n.Scales())
	}
	return sc
}

// Quantize finalizes the calibration into a Quantized model.
func (c *Calibrator) Quantize() (*Quantized, error) {
	return NewQuantized(c.m, c.Scales())
}
