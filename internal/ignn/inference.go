package ignn

import (
	"fmt"

	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Inference is the precision-generic, tape-free forward pass of a
// trained Interaction GNN — the stage-4 serving path. Construction
// converts every MLP's float64 weights to T once; EdgeScoresCtx then
// runs Algorithm 1 (encoders, L message-passing steps with
// concatenation residuals, incidence-SpMM aggregation, edge head)
// entirely in T, touching half the bytes at float32. The float64
// instantiation performs exactly the arithmetic of Model.EdgeScoresCtx
// in the same kernel order, so its scores are bitwise identical.
// Immutable and safe for concurrent use.
type Inference[T fp.Float] struct {
	cfg         Config
	nodeEncoder *nn.MLPInference[T]
	edgeEncoder *nn.MLPInference[T]
	edgeNets    []*nn.MLPInference[T]
	nodeNets    []*nn.MLPInference[T]
	head        *nn.MLPInference[T]
}

// NewInference snapshots m's trained weights at precision T.
func NewInference[T fp.Float](m *Model) *Inference[T] {
	inf := &Inference[T]{
		cfg:         m.cfg,
		nodeEncoder: nn.NewMLPInference[T](m.nodeEncoder),
		edgeEncoder: nn.NewMLPInference[T](m.edgeEncoder),
		head:        nn.NewMLPInference[T](m.head),
	}
	for _, e := range m.edgeNets {
		inf.edgeNets = append(inf.edgeNets, nn.NewMLPInference[T](e))
	}
	for _, n := range m.nodeNets {
		inf.nodeNets = append(inf.nodeNets, nn.NewMLPInference[T](n))
	}
	return inf
}

// Config returns the model configuration.
func (inf *Inference[T]) Config() Config { return inf.cfg }

// EdgeScoresCtx runs inference on graph (src, dst) with node features x
// and edge features y (already in T) and returns the per-edge sigmoid
// scores as float64 — the boundary back into the threshold/metric
// domain. Activations borrow from the arena and are released before
// returning; a nil arena falls back to the heap.
func (inf *Inference[T]) EdgeScoresCtx(kc kernels.Context, arena *workspace.Arena, src, dst []int, x, y *tensor.Matrix[T]) []float64 {
	if len(src) != len(dst) {
		panic("ignn: src/dst length mismatch")
	}
	if y.Rows() != len(src) {
		panic(fmt.Sprintf("ignn: %d edges but %d edge-feature rows", len(src), y.Rows()))
	}
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	n := x.Rows()
	h := inf.cfg.Hidden

	x0 := inf.nodeEncoder.Forward(kc, arena, x)
	y0 := inf.edgeEncoder.Forward(kc, arena, y)
	xl, yl := x0, y0
	for l := 0; l < inf.cfg.Steps; l++ {
		// Concatenation residuals with the initial encodings.
		xc := tensor.NewFromOf[T](arena, n, 2*h)
		tensor.ConcatColsIntoCtx(kc, xc, xl, x0)
		yc := tensor.NewFromOf[T](arena, len(src), 2*h)
		tensor.ConcatColsIntoCtx(kc, yc, yl, y0)
		// MSG: one fused gather+concat builds [Y' ‖ X'src ‖ X'dst].
		msgIn := tensor.NewFromOf[T](arena, len(src), 6*h)
		tensor.GatherConcat3IntoCtx(kc, msgIn, yc, nil, xc, src, xc, dst)
		yl = inf.edgeNets[l].Forward(kc, arena, msgIn)
		if l == inf.cfg.Steps-1 {
			break // final X update is unused by the edge head
		}
		// AGG: incidence-SpMM aggregation at both endpoints (bitwise
		// equal to the serial scatter-add; see sparse.IncidenceInto).
		msrc := aggregateRows(kc, arena, yl, src, n)
		mdst := aggregateRows(kc, arena, yl, dst, n)
		nodeIn := tensor.NewFromOf[T](arena, n, 4*h)
		tensor.ConcatColsIntoCtx(kc, nodeIn, msrc, mdst, xc)
		xl = inf.nodeNets[l].Forward(kc, arena, nodeIn)
	}
	logits := inf.head.Forward(kc, arena, yl)
	out := make([]float64, len(src))
	for i := range out {
		out[i] = nn.SigmoidScore(logits.At(i, 0))
	}
	return out
}

// aggregateRows computes out[v] = Σ_{e: idx[e]=v} x[e] as an incidence
// SpMM — the same forward the autograd tape's AggregateRows runs. When
// the Context's tile shape enables column banding (the default), the
// incidence matrix builds directly in blocked-CSR form and the SpMM
// runs band-by-band — bitwise identical to the flat path (see
// sparse/blocked.go), with the x rows of one band kept cache-resident.
func aggregateRows[T fp.Float](kc kernels.Context, arena *workspace.Arena, x *tensor.Matrix[T], idx []int, outRows int) *tensor.Matrix[T] {
	m := len(idx)
	if band := kernels.ShapeFor[T](kc).Band; band > 0 && m > 0 {
		if band > m {
			band = m
		}
		nb := (m + band - 1) / band
		s := &sparse.BlockedCSROf[T]{
			RowPtr: arenaInt(arena, nb*(outRows+1)),
			ColIdx: arenaInt(arena, m),
			Vals:   arenaFloat[T](arena, m),
		}
		sparse.BlockedIncidenceInto(s, outRows, idx, band)
		v := tensor.NewFromOf[T](arena, outRows, x.Cols())
		sparse.BlockedSpMMIntoCtx(kc, v, s, x)
		return v
	}
	s := &sparse.CSROf[T]{
		RowPtr: arenaInt(arena, outRows+1),
		ColIdx: arenaInt(arena, m),
		Vals:   arenaFloat[T](arena, m),
	}
	sparse.IncidenceInto(s, outRows, idx)
	v := tensor.NewFromOf[T](arena, outRows, x.Cols())
	sparse.SpMMIntoCtx(kc, v, s, x)
	return v
}

func arenaInt(a *workspace.Arena, n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.Int(n)
}

func arenaFloat[T fp.Float](a *workspace.Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	return workspace.Float[T](a, n)
}
