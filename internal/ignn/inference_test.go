package ignn

import (
	"math"
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// TestInferenceF64MatchesTapeScores is the refactor guarantee for the
// GNN stage: the tape-free float64 inference path reproduces
// EdgeScoresCtx bit for bit — same kernels in the same order.
func TestInferenceF64MatchesTapeScores(t *testing.T) {
	for _, layerNorm := range []bool{false, true} {
		cfg := tinyConfig()
		cfg.LayerNorm = layerNorm
		m := New(cfg, rng.New(3))
		src, dst, x, y := ring(rng.New(4), 24, cfg)

		want := m.EdgeScores(src, dst, x, y)
		inf := NewInference[float64](m)
		arena := workspace.NewArena()
		defer arena.Reset()
		got := inf.EdgeScoresCtx(kernels.Context{}, arena, src, dst, x, y)
		if len(got) != len(want) {
			t.Fatalf("layerNorm=%v: %d scores, want %d", layerNorm, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("layerNorm=%v: score %d differs: %v vs %v", layerNorm, i, want[i], got[i])
			}
		}
		// Worker budgets must not change the scores either.
		got2 := inf.EdgeScoresCtx(kernels.Context{Workers: 3}, arena, src, dst, x, y)
		for i := range want {
			if want[i] != got2[i] {
				t.Fatalf("layerNorm=%v: score %d differs at 3 workers", layerNorm, i)
			}
		}
	}
}

// TestInferenceF32WithinTolerance bounds the f32 score drift on the
// small ring fixture. Scores are sigmoids in [0,1]; the deep (Steps=2)
// unit-scale network keeps the drift orders of magnitude below the 0.5
// decision threshold's neighborhood.
func TestInferenceF32WithinTolerance(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg, rng.New(5))
	src, dst, x, y := ring(rng.New(6), 24, cfg)

	want := NewInference[float64](m).EdgeScoresCtx(kernels.Context{}, nil, src, dst, x, y)
	inf32 := NewInference[float32](m)
	got := inf32.EdgeScoresCtx(kernels.Context{}, nil, src, dst,
		tensor.ConvertFrom[float32](nil, x), tensor.ConvertFrom[float32](nil, y))
	worst := 0.0
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-4 {
		t.Fatalf("f32 scores drift %v from f64", worst)
	}
}

// TestInferenceArenaReleased verifies the inference pass returns every
// arena slice it borrowed.
func TestInferenceArenaReleased(t *testing.T) {
	cfg := tinyConfig()
	m := New(cfg, rng.New(7))
	src, dst, x, y := ring(rng.New(8), 16, cfg)
	inf := NewInference[float32](m)
	arena := workspace.NewArena()
	defer arena.Reset()
	x32 := tensor.ConvertFrom[float32](nil, x)
	y32 := tensor.ConvertFrom[float32](nil, y)
	before := arena.Live()
	inf.EdgeScoresCtx(kernels.Context{}, arena, src, dst, x32, y32)
	if arena.Live() != before {
		t.Fatalf("inference leaked %d arena slices", arena.Live()-before)
	}
}
