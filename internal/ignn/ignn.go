// Package ignn implements the Interaction GNN (Battaglia et al. 2016) as
// used by the Exa.TrkX pipeline and specified in Algorithm 1 of the paper:
// node/edge encoders, L message-passing layers with concatenation
// residuals to the initial encodings, sum aggregation of edge messages to
// both endpoints, and an edge-classification head. Every MLP is distinct
// per layer, as the paper notes.
package ignn

import (
	"fmt"
	"math"

	"repro/internal/autograd"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Config describes the model.
type Config struct {
	NodeFeatures int // input per-node feature width
	EdgeFeatures int // input per-edge feature width
	Hidden       int // hidden width f (paper: 64)
	Steps        int // message-passing iterations L (paper: 8)
	LayerNorm    bool
}

// Model is an Interaction GNN for binary edge classification.
type Model struct {
	cfg         Config
	nodeEncoder *nn.MLP   // X → X0
	edgeEncoder *nn.MLP   // Y → Y0
	edgeNets    []*nn.MLP // per step: [Y' X'src X'dst] → Y_{l+1}
	nodeNets    []*nn.MLP // per step: [Msrc Mdst X'] → X_{l+1}
	head        *nn.MLP   // Y_L → logit
}

// New builds a model with deterministic initialization.
func New(cfg Config, r *rng.Rand) *Model {
	if cfg.Steps < 1 {
		panic(fmt.Sprintf("ignn: Steps must be ≥1, got %d", cfg.Steps))
	}
	h := cfg.Hidden
	m := &Model{cfg: cfg}
	m.nodeEncoder = nn.NewMLP(r, "ignn.nodeEnc", nn.MLPConfig{
		In: cfg.NodeFeatures, Hidden: []int{h}, Out: h, Activation: nn.ReLU, LayerNorm: cfg.LayerNorm,
	})
	m.edgeEncoder = nn.NewMLP(r, "ignn.edgeEnc", nn.MLPConfig{
		In: cfg.EdgeFeatures, Hidden: []int{h}, Out: h, Activation: nn.ReLU, LayerNorm: cfg.LayerNorm,
	})
	for l := 0; l < cfg.Steps; l++ {
		// X' and Y' are [current ‖ initial] → width 2h each.
		m.edgeNets = append(m.edgeNets, nn.NewMLP(r, fmt.Sprintf("ignn.edge%d", l), nn.MLPConfig{
			In: 6 * h, Hidden: []int{h}, Out: h, Activation: nn.ReLU, LayerNorm: cfg.LayerNorm,
		}))
		if l < cfg.Steps-1 {
			// Algorithm 1 computes X_{l+1} on the final iteration too, but
			// the classifier consumes only Y_L, so that update is dead
			// weight; we omit it and save its compute and activations.
			m.nodeNets = append(m.nodeNets, nn.NewMLP(r, fmt.Sprintf("ignn.node%d", l), nn.MLPConfig{
				In: 4 * h, Hidden: []int{h}, Out: h, Activation: nn.ReLU, LayerNorm: cfg.LayerNorm,
			}))
		}
	}
	m.head = nn.NewMLP(r, "ignn.head", nn.MLPConfig{
		In: h, Hidden: []int{h}, Out: 1, Activation: nn.ReLU,
	})
	return m
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Replicas builds p identically initialized models — one replica per DDP
// rank. Every replica is constructed from the same derived seed, so their
// parameters agree bit-for-bit before the first broadcast.
func Replicas(cfg Config, seed uint64, p int) []*Model {
	out := make([]*Model, p)
	for i := range out {
		out[i] = New(cfg, rng.New(seed))
	}
	return out
}

// Params returns every trainable parameter in a stable order — the order
// matters for DDP gradient synchronization across replicas.
func (m *Model) Params() []*autograd.Param {
	var ps []*autograd.Param
	ps = append(ps, m.nodeEncoder.Params()...)
	ps = append(ps, m.edgeEncoder.Params()...)
	for l := range m.edgeNets {
		ps = append(ps, m.edgeNets[l].Params()...)
		if l < len(m.nodeNets) {
			ps = append(ps, m.nodeNets[l].Params()...)
		}
	}
	ps = append(ps, m.head.Params()...)
	return ps
}

// Forward runs Algorithm 1 on the tape: graph edges (src, dst), node
// features X (n×NodeFeatures), edge features Y (m×EdgeFeatures). Returns
// per-edge logits (m×1). Message passing treats edges as directed
// src→dst but aggregates messages at both endpoints, matching the
// REDUCTION over A.rows and A.cols in the paper.
func (m *Model) Forward(t *autograd.Tape, src, dst []int, x, y *tensor.Dense) *autograd.Node {
	if len(src) != len(dst) {
		panic("ignn: src/dst length mismatch")
	}
	if y.Rows() != len(src) {
		panic(fmt.Sprintf("ignn: %d edges but %d edge-feature rows", len(src), y.Rows()))
	}
	n := x.Rows()

	x0 := m.nodeEncoder.Forward(t, t.Constant(x))
	y0 := m.edgeEncoder.Forward(t, t.Constant(y))
	xl, yl := x0, y0
	for l := 0; l < m.cfg.Steps; l++ {
		// Concatenation residuals with the initial encodings.
		xc := t.ConcatCols(xl, x0) // n × 2h
		yc := t.ConcatCols(yl, y0) // m × 2h
		// MSG: per-edge update from the edge state and both endpoints —
		// one fused gather+concat pass builds [Y' ‖ X'src ‖ X'dst].
		msgIn := t.GatherConcat3(yc, nil, xc, src, xc, dst)
		yl = m.edgeNets[l].Forward(t, msgIn) // m × h
		if l == m.cfg.Steps-1 {
			break // final X update is unused by the edge head
		}
		// AGG: sum messages into rows (sources) and cols (destinations),
		// as row-parallel incidence SpMMs (bitwise equal to the serial
		// scatter-add, see autograd.AggregateRows).
		msrc := t.AggregateRows(yl, src, n)
		mdst := t.AggregateRows(yl, dst, n)
		// Node update.
		xl = m.nodeNets[l].Forward(t, t.ConcatCols(msrc, mdst, xc)) // n × h
	}
	return m.head.Forward(t, yl)
}

// EdgeScores runs inference and returns the per-edge sigmoid scores.
func (m *Model) EdgeScores(src, dst []int, x, y *tensor.Dense) []float64 {
	return m.EdgeScoresWith(nil, src, dst, x, y)
}

// EdgeScoresWith is EdgeScores with the forward pass's activations
// borrowed from the arena's workspace pools; everything taken is
// returned before the call completes, so steady-state inference reuses
// one warm buffer set instead of allocating per event. A nil arena falls
// back to heap allocation.
func (m *Model) EdgeScoresWith(arena *workspace.Arena, src, dst []int, x, y *tensor.Dense) []float64 {
	return m.EdgeScoresCtx(kernels.Context{}, arena, src, dst, x, y)
}

// EdgeScoresCtx is EdgeScoresWith under an explicit intra-op worker
// budget for the forward kernels. Scores are bitwise identical at every
// budget; the engine passes each worker its share of the host so
// event-level and kernel-level parallelism compose.
func (m *Model) EdgeScoresCtx(kc kernels.Context, arena *workspace.Arena, src, dst []int, x, y *tensor.Dense) []float64 {
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	t := autograd.NewTapeArena(arena)
	t.SetKernels(kc)
	logits := m.Forward(t, src, dst, x, y)
	out := make([]float64, len(src))
	for i := range out {
		out[i] = sigmoid(logits.Value.At(i, 0))
	}
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// EstimateActivationElements predicts the number of float64 elements the
// tape must keep resident to train a graph with n vertices and mEdges
// edges — the quantity the paper's full-graph trainer compares against
// GPU memory before deciding to skip a graph. It follows Algorithm 1's
// stored outputs per step: Y_{l+1} (m×h), Msrc and Mdst (n×h each),
// X_{l+1} (n×h), plus the 2h-wide concatenations and MLP hidden
// activations that autograd retains.
func EstimateActivationElements(cfg Config, n, mEdges int) int {
	h := cfg.Hidden
	// Encoders: hidden + output for nodes and edges.
	enc := 2*n*h + 2*mEdges*h
	// Per step: xc (2nh) + yc (2mh) + msgIn (6mh) + edge hidden/out (2mh)
	// + msrc/mdst (2nh) + node in-concat (4nh) + node hidden/out (2nh).
	perStep := 10*n*h + 10*mEdges*h
	// Head: hidden + logits.
	head := mEdges*h + mEdges
	return enc + cfg.Steps*perStep + head
}
