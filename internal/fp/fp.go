// Package fp defines the floating-point element-type constraint shared
// by the precision-generic numeric core (tensor, sparse, workspace, nn,
// and the stage inference paths). It is a leaf package (no imports) so
// every layer can depend on it without cycles.
//
// The constraint is deliberately exact (no ~): the workspace pools and
// checkpoint dtype tags dispatch on the concrete element type, and a
// defined type with a float underlying type would silently bypass them.
package fp

// Float is the element-type constraint of the numeric core: exactly
// float32 or float64.
type Float interface {
	float32 | float64
}

// Bytes returns the size of one element of type T in bytes.
func Bytes[T Float]() int {
	var z T
	if _, ok := any(z).(float32); ok {
		return 4
	}
	return 8
}

// Is32 reports whether T is float32.
func Is32[T Float]() bool {
	var z T
	_, ok := any(z).(float32)
	return ok
}

// Pick selects between two precision-specialized values by T and
// asserts the winner to F. It exists for the zero-allocation contract
// of the generic parallel kernels: a func literal (or generic func
// value) materialized inside a generic function carries its dictionary
// and allocates a closure per call, so the kernel packages instead bind
// both concrete instantiations of each parallel body once at package
// init (boxed as any) and route through Pick — a branch and an
// interface assertion, no allocation.
func Pick[T Float, F any](v64, v32 any) F {
	if Is32[T]() {
		return v32.(F)
	}
	return v64.(F)
}
