package fp

import "testing"

func TestBytes(t *testing.T) {
	if Bytes[float32]() != 4 || Bytes[float64]() != 8 {
		t.Fatalf("Bytes: f32=%d f64=%d", Bytes[float32](), Bytes[float64]())
	}
}

func TestIs32(t *testing.T) {
	if !Is32[float32]() || Is32[float64]() {
		t.Fatal("Is32 misidentifies precision")
	}
}

func TestPick(t *testing.T) {
	f64v := func() int { return 64 }
	f32v := func() int { return 32 }
	if got := Pick[float64, func() int](f64v, f32v)(); got != 64 {
		t.Fatalf("Pick[float64] = %d", got)
	}
	if got := Pick[float32, func() int](f64v, f32v)(); got != 32 {
		t.Fatalf("Pick[float32] = %d", got)
	}
}
