// Package filter implements stage 3 of the Exa.TrkX pipeline: a cheap
// edge-classifier MLP that prunes the radius graph before the memory-
// intensive GNN stage ("Shrink Graph to GPU size" in Figure 1 of the
// paper). Edges scored below the threshold are removed.
package filter

import (
	"math"

	"repro/internal/autograd"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Config controls the filter model and training.
type Config struct {
	NodeFeatures int
	EdgeFeatures int
	Hidden       int
	HiddenLayers int
	LR           float64
	Epochs       int
	PosWeight    float64 // reweighting for the rare positive class
	Threshold    float64 // keep edges with sigmoid(logit) ≥ Threshold
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(nodeFeatures, edgeFeatures, mlpLayers int) Config {
	return Config{
		NodeFeatures: nodeFeatures,
		EdgeFeatures: edgeFeatures,
		Hidden:       32,
		HiddenLayers: mlpLayers,
		LR:           1e-3,
		Epochs:       12,
		PosWeight:    2.0,
		Threshold:    0.1, // permissive: stage 3 favors recall, the GNN decides
	}
}

// EdgeFilter is the trained stage-3 model.
type EdgeFilter struct {
	cfg Config
	mlp *nn.MLP
}

// New creates an untrained filter.
func New(cfg Config, r *rng.Rand) *EdgeFilter {
	hidden := make([]int, cfg.HiddenLayers)
	for i := range hidden {
		hidden[i] = cfg.Hidden
	}
	return &EdgeFilter{
		cfg: cfg,
		mlp: nn.NewMLP(r, "filter", nn.MLPConfig{
			In:         2*cfg.NodeFeatures + cfg.EdgeFeatures,
			Hidden:     hidden,
			Out:        1,
			Activation: nn.ReLU,
		}),
	}
}

// Params exposes the trainable parameters.
func (f *EdgeFilter) Params() []*autograd.Param { return f.mlp.Params() }

// Threshold returns the keep threshold on the sigmoid score.
func (f *EdgeFilter) Threshold() float64 { return f.cfg.Threshold }

// forward builds the logits node for edges (src, dst) with one fused
// gather+concat pass assembling [X[src] ‖ X[dst] ‖ E].
func (f *EdgeFilter) forward(t *autograd.Tape, nodeFeat, edgeFeat *tensor.Dense, src, dst []int) *autograd.Node {
	nodes := t.Constant(nodeFeat)
	in := t.GatherConcat3(nodes, src, nodes, dst, t.Constant(edgeFeat), nil)
	return f.mlp.Forward(t, in)
}

// Scores returns the sigmoid score per edge.
func (f *EdgeFilter) Scores(nodeFeat, edgeFeat *tensor.Dense, src, dst []int) []float64 {
	return f.ScoresWith(nil, nodeFeat, edgeFeat, src, dst)
}

// ScoresWith is Scores with forward-pass activations borrowed from the
// arena's workspace pools (released before returning). A nil arena
// falls back to the heap.
func (f *EdgeFilter) ScoresWith(arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Dense, src, dst []int) []float64 {
	return f.ScoresCtx(kernels.Context{}, arena, nodeFeat, edgeFeat, src, dst)
}

// ScoresCtx is ScoresWith under an explicit intra-op worker budget;
// scores are bitwise identical at every budget.
func (f *EdgeFilter) ScoresCtx(kc kernels.Context, arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Dense, src, dst []int) []float64 {
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	t := autograd.NewTapeArena(arena)
	t.SetKernels(kc)
	logits := f.forward(t, nodeFeat, edgeFeat, src, dst)
	scores := make([]float64, len(src))
	for i := range scores {
		scores[i] = sigmoid(logits.Value.At(i, 0))
	}
	return scores
}

// Keep returns the boolean keep mask at the configured threshold.
func (f *EdgeFilter) Keep(nodeFeat, edgeFeat *tensor.Dense, src, dst []int) []bool {
	return f.KeepWith(nil, nodeFeat, edgeFeat, src, dst)
}

// KeepWith is Keep with workspace-pooled forward activations.
func (f *EdgeFilter) KeepWith(arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Dense, src, dst []int) []bool {
	return f.KeepCtx(kernels.Context{}, arena, nodeFeat, edgeFeat, src, dst)
}

// KeepCtx is KeepWith under an explicit intra-op worker budget.
func (f *EdgeFilter) KeepCtx(kc kernels.Context, arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Dense, src, dst []int) []bool {
	scores := f.ScoresCtx(kc, arena, nodeFeat, edgeFeat, src, dst)
	keep := make([]bool, len(scores))
	for i, s := range scores {
		keep[i] = s >= f.cfg.Threshold
	}
	return keep
}

// TrainStep runs one optimization step on one graph's edges.
func (f *EdgeFilter) TrainStep(nodeFeat, edgeFeat *tensor.Dense, src, dst []int, labels []float64, opt nn.Optimizer) float64 {
	return f.TrainStepWith(nil, nodeFeat, edgeFeat, src, dst, labels, opt)
}

// TrainStepWith is TrainStep with forward/backward activations borrowed
// from the given arena (checkpointed around the step). A nil arena uses
// a private one.
func (f *EdgeFilter) TrainStepWith(arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Dense, src, dst []int, labels []float64, opt nn.Optimizer) float64 {
	if len(src) == 0 {
		return 0
	}
	if arena == nil {
		arena = workspace.NewArena()
		defer arena.Reset()
	} else {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	t := autograd.NewTapeArena(arena)
	logits := f.forward(t, nodeFeat, edgeFeat, src, dst)
	loss := t.BCEWithLogits(logits, labels, f.cfg.PosWeight)
	t.Backward(loss)
	opt.Step(f.mlp.Params())
	return loss.Value.At(0, 0)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
