package filter

import (
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Quantized is the int8 forward pass of a trained EdgeFilter: the fused
// gather+concat assembles the per-edge input in float32, the MLP runs
// quantized, and scores plus the keep threshold stay float64 — the
// precision boundary sits at the logit exactly as in the float paths.
// Immutable and safe for concurrent use.
type Quantized struct {
	cfg Config
	mlp *nn.MLPQuant
}

// NewQuantized snapshots f's trained weights at int8 under the given
// calibrated activation scales (one per linear layer of the MLP).
func NewQuantized(f *EdgeFilter, scales []float32) (*Quantized, error) {
	mlp, err := nn.NewMLPQuant(f.mlp, scales)
	if err != nil {
		return nil, err
	}
	return &Quantized{cfg: f.cfg, mlp: mlp}, nil
}

// Threshold returns the keep threshold on the sigmoid score.
func (q *Quantized) Threshold() float64 { return q.cfg.Threshold }

// ActScales returns the calibrated activation scales (a copy).
func (q *Quantized) ActScales() []float32 { return q.mlp.ActScales() }

// ScoresCtx returns the sigmoid score per edge (src, dst) with all
// activations borrowed from the arena (released before returning).
func (q *Quantized) ScoresCtx(kc kernels.Context, arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Matrix[float32], src, dst []int) []float64 {
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	in := tensor.NewFromOf[float32](arena, len(src), 2*nodeFeat.Cols()+edgeFeat.Cols())
	tensor.GatherConcat3IntoCtx(kc, in, nodeFeat, src, nodeFeat, dst, edgeFeat, nil)
	logits := q.mlp.Forward(kc, arena, in)
	scores := make([]float64, len(src))
	for i := range scores {
		scores[i] = nn.SigmoidScore(logits.At(i, 0))
	}
	return scores
}

// KeepCtx returns the boolean keep mask at the configured threshold.
func (q *Quantized) KeepCtx(kc kernels.Context, arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Matrix[float32], src, dst []int) []bool {
	scores := q.ScoresCtx(kc, arena, nodeFeat, edgeFeat, src, dst)
	keep := make([]bool, len(scores))
	for i, s := range scores {
		keep[i] = s >= q.cfg.Threshold
	}
	return keep
}

// Calibrator records the activation ranges the filter's quantized path
// needs. Feed Observe the same (nodeFeat, edgeFeat, src, dst) tuples
// inference will see.
type Calibrator struct {
	f   *EdgeFilter
	cal *nn.MLPCalibrator
}

// NewCalibrator builds a calibrator over f's current weights.
func NewCalibrator(f *EdgeFilter) *Calibrator {
	return &Calibrator{f: f, cal: nn.NewMLPCalibrator(f.mlp)}
}

// Threshold returns the keep threshold of the filter being calibrated.
func (c *Calibrator) Threshold() float64 { return c.f.cfg.Threshold }

// Observe runs the float32 scoring forward on one event's graph,
// recording activation ranges, and returns the per-edge scores.
func (c *Calibrator) Observe(kc kernels.Context, arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Matrix[float32], src, dst []int) []float64 {
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	in := tensor.NewFromOf[float32](arena, len(src), 2*nodeFeat.Cols()+edgeFeat.Cols())
	tensor.GatherConcat3IntoCtx(kc, in, nodeFeat, src, nodeFeat, dst, edgeFeat, nil)
	logits := c.cal.Observe(kc, arena, in)
	scores := make([]float64, len(src))
	for i := range scores {
		scores[i] = nn.SigmoidScore(logits.At(i, 0))
	}
	return scores
}

// Scales returns the calibrated per-layer activation scales.
func (c *Calibrator) Scales() []float32 { return c.cal.Scales() }

// Quantize finalizes the calibration into a Quantized filter.
func (c *Calibrator) Quantize() (*Quantized, error) {
	return NewQuantized(c.f, c.Scales())
}
