package filter

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// buildTrainingGraph creates a candidate graph from truth edges plus
// random fakes, with labels.
func buildTrainingGraph(ev *detector.Event, fakeRatio float64, r *rng.Rand) (src, dst []int, labels []float64) {
	src = append(src, ev.TruthSrc...)
	dst = append(dst, ev.TruthDst...)
	labels = make([]float64, len(src))
	for i := range labels {
		labels[i] = 1
	}
	n := ev.NumHits()
	for i := 0; i < int(float64(len(ev.TruthSrc))*fakeRatio); i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || ev.IsTruthEdge(a, b) {
			continue
		}
		src = append(src, a)
		dst = append(dst, b)
		labels = append(labels, 0)
	}
	return src, dst, labels
}

func TestFilterLearnsToSeparate(t *testing.T) {
	spec := detector.Ex3Like(0.04)
	spec.NumEvents = 2
	ds := detector.Generate(spec, 11)
	cfg := DefaultConfig(spec.VertexFeatures, spec.EdgeFeatures, spec.MLPLayers)
	f := New(cfg, rng.New(1))
	r := rng.New(2)

	ev := ds.Events[0]
	src, dst, labels := buildTrainingGraph(ev, 2, r)
	edgeFeat := detector.EdgeFeatures(spec, ev, src, dst)

	before := metrics.AUC(f.Scores(ev.Features, edgeFeat, src, dst), labels)
	opt := nn.NewAdam(cfg.LR)
	for epoch := 0; epoch < 40; epoch++ {
		f.TrainStep(ev.Features, edgeFeat, src, dst, labels, opt)
	}
	after := metrics.AUC(f.Scores(ev.Features, edgeFeat, src, dst), labels)
	if after < 0.9 {
		t.Fatalf("filter AUC %v after training (before %v)", after, before)
	}
	if after <= before {
		t.Fatalf("training did not improve AUC: %v -> %v", before, after)
	}
}

func TestKeepMaskMatchesThreshold(t *testing.T) {
	spec := detector.Ex3Like(0.03)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 12)
	ev := ds.Events[0]
	cfg := DefaultConfig(spec.VertexFeatures, spec.EdgeFeatures, spec.MLPLayers)
	cfg.Threshold = 0.5
	f := New(cfg, rng.New(3))
	src, dst := ev.TruthSrc, ev.TruthDst
	edgeFeat := detector.EdgeFeatures(spec, ev, src, dst)
	scores := f.Scores(ev.Features, edgeFeat, src, dst)
	keep := f.Keep(ev.Features, edgeFeat, src, dst)
	for i := range scores {
		if keep[i] != (scores[i] >= 0.5) {
			t.Fatalf("keep[%d]=%v but score %v", i, keep[i], scores[i])
		}
	}
}

func TestTrainStepEmptyEdges(t *testing.T) {
	spec := detector.Ex3Like(0.03)
	cfg := DefaultConfig(spec.VertexFeatures, spec.EdgeFeatures, spec.MLPLayers)
	f := New(cfg, rng.New(4))
	spec.NumEvents = 1
	ds := detector.Generate(spec, 13)
	ev := ds.Events[0]
	loss := f.TrainStep(ev.Features, detector.EdgeFeatures(spec, ev, nil, nil), nil, nil, nil, nn.NewSGD(0.1))
	if loss != 0 {
		t.Fatalf("empty edge train step returned %v", loss)
	}
}

func TestPosWeightShiftsScores(t *testing.T) {
	// With a high positive weight the classifier should push scores up on
	// an all-positive training set faster than with weight 1.
	spec := detector.Ex3Like(0.03)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 14)
	ev := ds.Events[0]
	src, dst := ev.TruthSrc, ev.TruthDst
	edgeFeat := detector.EdgeFeatures(spec, ev, src, dst)
	labels := make([]float64, len(src))
	for i := range labels {
		labels[i] = 1
	}
	mean := func(posWeight float64) float64 {
		cfg := DefaultConfig(spec.VertexFeatures, spec.EdgeFeatures, spec.MLPLayers)
		cfg.PosWeight = posWeight
		f := New(cfg, rng.New(5))
		opt := nn.NewSGD(0.05)
		for i := 0; i < 10; i++ {
			f.TrainStep(ev.Features, edgeFeat, src, dst, labels, opt)
		}
		s := f.Scores(ev.Features, edgeFeat, src, dst)
		total := 0.0
		for _, v := range s {
			total += v
		}
		return total / float64(len(s))
	}
	if mean(5) <= mean(1) {
		t.Fatal("higher posWeight did not increase positive scores")
	}
}
