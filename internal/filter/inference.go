package filter

import (
	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Inference is the precision-generic, tape-free stage-3 forward pass:
// weights convert to T once at construction, and per-event scoring runs
// the fused gather+concat and the MLP entirely in T. Scores and the
// keep threshold stay float64 — the precision boundary sits at the
// logit. The float64 instantiation is bitwise identical to ScoresCtx.
// Immutable and safe for concurrent use.
type Inference[T fp.Float] struct {
	cfg Config
	mlp *nn.MLPInference[T]
}

// NewInference snapshots f's trained weights at precision T.
func NewInference[T fp.Float](f *EdgeFilter) *Inference[T] {
	return &Inference[T]{cfg: f.cfg, mlp: nn.NewMLPInference[T](f.mlp)}
}

// Threshold returns the keep threshold on the sigmoid score.
func (inf *Inference[T]) Threshold() float64 { return inf.cfg.Threshold }

// ScoresCtx returns the sigmoid score per edge (src, dst) with all
// activations borrowed from the arena (released before returning).
func (inf *Inference[T]) ScoresCtx(kc kernels.Context, arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Matrix[T], src, dst []int) []float64 {
	if arena != nil {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	in := tensor.NewFromOf[T](arena, len(src), 2*nodeFeat.Cols()+edgeFeat.Cols())
	tensor.GatherConcat3IntoCtx(kc, in, nodeFeat, src, nodeFeat, dst, edgeFeat, nil)
	logits := inf.mlp.Forward(kc, arena, in)
	scores := make([]float64, len(src))
	for i := range scores {
		scores[i] = nn.SigmoidScore(logits.At(i, 0))
	}
	return scores
}

// KeepCtx returns the boolean keep mask at the configured threshold.
func (inf *Inference[T]) KeepCtx(kc kernels.Context, arena *workspace.Arena, nodeFeat, edgeFeat *tensor.Matrix[T], src, dst []int) []bool {
	scores := inf.ScoresCtx(kc, arena, nodeFeat, edgeFeat, src, dst)
	keep := make([]bool, len(scores))
	for i, s := range scores {
		keep[i] = s >= inf.cfg.Threshold
	}
	return keep
}
