package filter

import (
	"math"
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func inferenceFixture(seed uint64) (*EdgeFilter, *tensor.Dense, *tensor.Dense, []int, []int) {
	cfg := DefaultConfig(5, 2, 2)
	f := New(cfg, rng.New(seed))
	r := rng.New(seed + 1)
	nodeFeat := tensor.RandN(r, 30, cfg.NodeFeatures, 1)
	src := make([]int, 64)
	dst := make([]int, 64)
	for i := range src {
		src[i] = r.Intn(30)
		dst[i] = r.Intn(30)
	}
	edgeFeat := tensor.RandN(r, len(src), cfg.EdgeFeatures, 1)
	return f, nodeFeat, edgeFeat, src, dst
}

func TestInferenceF64MatchesTapeScores(t *testing.T) {
	f, nodeFeat, edgeFeat, src, dst := inferenceFixture(11)
	want := f.Scores(nodeFeat, edgeFeat, src, dst)
	inf := NewInference[float64](f)
	got := inf.ScoresCtx(kernels.Context{}, nil, nodeFeat, edgeFeat, src, dst)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("score %d differs: %v vs %v", i, want[i], got[i])
		}
	}
	// The keep mask must agree exactly at f64 (same scores, same threshold).
	wantKeep := f.Keep(nodeFeat, edgeFeat, src, dst)
	gotKeep := inf.KeepCtx(kernels.Context{}, nil, nodeFeat, edgeFeat, src, dst)
	for i := range wantKeep {
		if wantKeep[i] != gotKeep[i] {
			t.Fatalf("keep %d differs", i)
		}
	}
}

func TestInferenceF32WithinTolerance(t *testing.T) {
	f, nodeFeat, edgeFeat, src, dst := inferenceFixture(13)
	want := f.Scores(nodeFeat, edgeFeat, src, dst)
	inf := NewInference[float32](f)
	got := inf.ScoresCtx(kernels.Context{}, nil,
		tensor.ConvertFrom[float32](nil, nodeFeat), tensor.ConvertFrom[float32](nil, edgeFeat), src, dst)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-4 {
			t.Fatalf("f32 score %d drifts %v", i, math.Abs(want[i]-got[i]))
		}
	}
}
