// Package graph provides the graph representation and algorithms the
// pipeline needs: CSR adjacency built from edge lists, union-find
// connected components (the paper's final track-building stage), induced
// subgraphs, and block-diagonal composition of sampled subgraphs.
package graph

import (
	"fmt"

	"repro/internal/sparse"
)

// Graph is an undirected graph stored both as an edge list (the GNN
// consumes edges in COO order: Src[k] → Dst[k]) and as a symmetric CSR
// adjacency for traversal and sampling.
type Graph struct {
	N   int   // number of vertices
	Src []int // edge source endpoints, one per (undirected) edge
	Dst []int // edge destination endpoints

	adj *sparse.CSR // symmetric adjacency, built lazily
}

// New creates a graph with n vertices and the given undirected edge list.
func New(n int, src, dst []int) *Graph {
	if len(src) != len(dst) {
		panic("graph: src/dst length mismatch")
	}
	for k := range src {
		if src[k] < 0 || src[k] >= n || dst[k] < 0 || dst[k] >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) outside %d vertices", src[k], dst[k], n))
		}
	}
	return &Graph{N: n, Src: src, Dst: dst}
}

// NumEdges returns the number of stored (undirected) edges.
func (g *Graph) NumEdges() int { return len(g.Src) }

// Adjacency returns the symmetric CSR adjacency matrix, building and
// caching it on first use.
func (g *Graph) Adjacency() *sparse.CSR {
	if g.adj == nil {
		g.adj = sparse.FromEdges(g.N, g.Src, g.Dst, true)
	}
	return g.adj
}

// Degrees returns the degree of every vertex (counting each undirected
// edge once per endpoint, self-loops once).
func (g *Graph) Degrees() []int {
	deg := make([]int, g.N)
	for k := range g.Src {
		deg[g.Src[k]]++
		if g.Dst[k] != g.Src[k] {
			deg[g.Dst[k]]++
		}
	}
	return deg
}

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int
	rank   []int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; returns true if they were distinct.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// ConnectedComponents labels every vertex with a component id in
// [0, #components) using union-find over the edge list. Ids are assigned
// in order of first appearance by vertex index.
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	u := NewUnionFind(g.N)
	for k := range g.Src {
		u.Union(g.Src[k], g.Dst[k])
	}
	labels = make([]int, g.N)
	idOf := make(map[int]int, g.N)
	for v := 0; v < g.N; v++ {
		root := u.Find(v)
		id, ok := idOf[root]
		if !ok {
			id = len(idOf)
			idOf[root] = id
		}
		labels[v] = id
	}
	return labels, len(idOf)
}

// ComponentsBFS computes component labels by breadth-first search — an
// independent oracle used by property tests against union-find.
func (g *Graph) ComponentsBFS() (labels []int, count int) {
	adj := g.Adjacency()
	labels = make([]int, g.N)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	for start := 0; start < g.N; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			cols, _ := adj.Row(v)
			for _, w := range cols {
				if labels[w] == -1 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// ComponentMembers groups vertices by component label.
func ComponentMembers(labels []int, count int) [][]int {
	members := make([][]int, count)
	for v, c := range labels {
		members[c] = append(members[c], v)
	}
	return members
}

// InducedSubgraph returns the subgraph on the given vertices (relabeled
// 0..len(vertices)-1 in input order) and keeps only edges with both
// endpoints inside.
func (g *Graph) InducedSubgraph(vertices []int) *Graph {
	pos := make(map[int]int, len(vertices))
	for i, v := range vertices {
		pos[v] = i
	}
	var src, dst []int
	for k := range g.Src {
		a, okA := pos[g.Src[k]]
		b, okB := pos[g.Dst[k]]
		if okA && okB {
			src = append(src, a)
			dst = append(dst, b)
		}
	}
	return New(len(vertices), src, dst)
}

// BlockDiag composes disjoint graphs into one graph whose vertex ids are
// offset block by block. Offsets[i] is the id shift applied to graph i.
func BlockDiag(gs ...*Graph) (merged *Graph, offsets []int) {
	n := 0
	offsets = make([]int, len(gs))
	var src, dst []int
	for i, g := range gs {
		offsets[i] = n
		for k := range g.Src {
			src = append(src, g.Src[k]+n)
			dst = append(dst, g.Dst[k]+n)
		}
		n += g.N
	}
	return New(n, src, dst), offsets
}

// FilterEdges returns a new graph keeping edge k iff keep[k].
func (g *Graph) FilterEdges(keep []bool) *Graph {
	if len(keep) != len(g.Src) {
		panic("graph: FilterEdges mask length mismatch")
	}
	var src, dst []int
	for k := range g.Src {
		if keep[k] {
			src = append(src, g.Src[k])
			dst = append(dst, g.Dst[k])
		}
	}
	return New(g.N, src, dst)
}
