package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randomGraph(r *rng.Rand, n, m int) *Graph {
	src := make([]int, m)
	dst := make([]int, m)
	for k := 0; k < m; k++ {
		src[k] = r.Intn(n)
		dst[k] = r.Intn(n)
	}
	return New(n, src, dst)
}

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if !u.Union(0, 1) {
		t.Fatal("first union should merge")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union should not merge")
	}
	u.Union(2, 3)
	if u.Find(0) != u.Find(1) || u.Find(2) != u.Find(3) {
		t.Fatal("merged elements have different roots")
	}
	if u.Find(0) == u.Find(2) || u.Find(4) == u.Find(0) {
		t.Fatal("separate sets share a root")
	}
}

func TestConnectedComponentsPath(t *testing.T) {
	// Two paths: 0-1-2 and 3-4; vertex 5 isolated.
	g := New(6, []int{0, 1, 3}, []int{1, 2, 4})
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("path 0-1-2 split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("path 3-4 wrong")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated vertex merged")
	}
}

func TestUnionFindMatchesBFS(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(40) + 1
		m := r.Intn(80)
		g := randomGraph(r, n, m)
		ufLabels, ufCount := g.ConnectedComponents()
		bfsLabels, bfsCount := g.ComponentsBFS()
		if ufCount != bfsCount {
			return false
		}
		// Labels must induce the same partition (they may be permuted).
		mapping := make(map[int]int)
		for v := range ufLabels {
			if mapped, ok := mapping[ufLabels[v]]; ok {
				if mapped != bfsLabels[v] {
					return false
				}
			} else {
				mapping[ufLabels[v]] = bfsLabels[v]
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentMembers(t *testing.T) {
	g := New(5, []int{0, 2}, []int{1, 3})
	labels, count := g.ConnectedComponents()
	members := ComponentMembers(labels, count)
	total := 0
	for _, ms := range members {
		total += len(ms)
	}
	if total != 5 {
		t.Fatalf("members cover %d of 5 vertices", total)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Triangle 0-1-2 plus pendant 3.
	g := New(4, []int{0, 1, 2, 2}, []int{1, 2, 0, 3})
	sub := g.InducedSubgraph([]int{2, 0, 1})
	if sub.N != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle has %d vertices, %d edges", sub.N, sub.NumEdges())
	}
	sub2 := g.InducedSubgraph([]int{0, 3})
	if sub2.NumEdges() != 0 {
		t.Fatal("non-adjacent pair should induce no edges")
	}
}

func TestBlockDiag(t *testing.T) {
	a := New(2, []int{0}, []int{1})
	b := New(3, []int{0, 1}, []int{1, 2})
	merged, offsets := BlockDiag(a, b)
	if merged.N != 5 || merged.NumEdges() != 3 {
		t.Fatalf("merged has %d vertices, %d edges", merged.N, merged.NumEdges())
	}
	if offsets[0] != 0 || offsets[1] != 2 {
		t.Fatalf("offsets %v", offsets)
	}
	_, count := merged.ConnectedComponents()
	if count != 2 {
		t.Fatalf("block diag of two connected graphs has %d components, want 2", count)
	}
}

func TestBlockDiagPreservesComponentCount(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		var gs []*Graph
		wantTotal := 0
		for i := 0; i < int(seed%4)+1; i++ {
			g := randomGraph(r, r.Intn(15)+1, r.Intn(20))
			_, c := g.ConnectedComponents()
			wantTotal += c
			gs = append(gs, g)
		}
		merged, _ := BlockDiag(gs...)
		_, got := merged.ConnectedComponents()
		return got == wantTotal
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterEdges(t *testing.T) {
	g := New(4, []int{0, 1, 2}, []int{1, 2, 3})
	f := g.FilterEdges([]bool{true, false, true})
	if f.NumEdges() != 2 || f.Src[0] != 0 || f.Src[1] != 2 {
		t.Fatalf("filtered edges wrong: %v -> %v", f.Src, f.Dst)
	}
	_, count := f.ConnectedComponents()
	if count != 2 { // {0,1}, {2,3}
		t.Fatalf("filtered component count %d, want 2", count)
	}
}

func TestDegrees(t *testing.T) {
	g := New(3, []int{0, 0, 1}, []int{1, 2, 1}) // self-loop at 1
	deg := g.Degrees()
	if deg[0] != 2 || deg[1] != 2 || deg[2] != 1 {
		t.Fatalf("degrees %v", deg)
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	g := New(4, []int{0, 1}, []int{1, 3})
	adj := g.Adjacency()
	if adj.At(0, 1) != 1 || adj.At(1, 0) != 1 || adj.At(3, 1) != 1 {
		t.Fatal("adjacency not symmetric")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New(2, []int{0}, []int{5})
}
