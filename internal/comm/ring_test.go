package comm

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestConnectRing wires a ring the way separate processes would — every
// rank calls ConnectRing concurrently against shared addresses — and
// runs a real all-reduce over it.
func TestConnectRing(t *testing.T) {
	nets := map[string]transport.Network{
		"loopback": transport.NewLoopback(),
		"tcp":      &transport.TCP{},
	}
	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			const p = 3
			addrs := make([]string, p)
			for i := range addrs {
				if name == "tcp" {
					addrs[i] = "127.0.0.1:0"
				} else {
					addrs[i] = fmt.Sprintf("ring-%d", i)
				}
			}
			if name == "tcp" {
				// Real sockets need concrete ports known before anyone
				// dials; reserve them by listening and closing.
				for i := range addrs {
					ln, err := net.Listen(addrs[i])
					if err != nil {
						t.Fatal(err)
					}
					addrs[i] = ln.Addr()
					ln.Close()
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			peers := make([]*Peer, p)
			var wg sync.WaitGroup
			errs := make([]error, p)
			wg.Add(p)
			for r := 0; r < p; r++ {
				go func(r int) {
					defer wg.Done()
					peers[r], errs[r] = ConnectRing(ctx, net, r, addrs, NVLink3())
				}(r)
			}
			wg.Wait()
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			defer func() {
				for _, pe := range peers {
					pe.Close()
				}
			}()

			bufs := make([][]float64, p)
			for r := range bufs {
				bufs[r] = []float64{float64(r + 1), float64(10 * (r + 1))}
			}
			runRanks(p, func(rank int) {
				if err := peers[rank].AllReduceSum(ctx, bufs[rank]); err != nil {
					t.Errorf("rank %d all-reduce: %v", rank, err)
				}
			})
			for r := range bufs {
				if bufs[r][0] != 6 || bufs[r][1] != 60 {
					t.Fatalf("rank %d: got %v, want [6 60]", r, bufs[r])
				}
			}
			// Collectives charge group-level stats on rank 0 only; real
			// bytes are counted send-side on every rank.
			if peers[0].Calls() != 1 {
				t.Fatalf("rank 0: %d calls, want 1", peers[0].Calls())
			}
			if peers[0].ModeledTime() <= 0 {
				t.Fatal("rank 0: no modeled time charged")
			}
			for r, pe := range peers {
				if pe.BytesMoved() == 0 {
					t.Fatalf("rank %d: no bytes charged", r)
				}
			}
		})
	}
}

func TestConnectRingSingleton(t *testing.T) {
	pe, err := ConnectRing(context.Background(), transport.NewLoopback(), 0, []string{"solo"}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	buf := []float64{3, 4}
	if err := pe.AllReduceSum(context.Background(), buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 3 || buf[1] != 4 {
		t.Fatalf("singleton all-reduce changed the buffer: %v", buf)
	}
}

func TestConnectRingBadRank(t *testing.T) {
	if _, err := ConnectRing(context.Background(), transport.NewLoopback(), 2, []string{"a", "b"}, CostModel{}); err == nil {
		t.Fatal("rank out of range accepted")
	}
	if _, err := ConnectRing(context.Background(), transport.NewLoopback(), 0, nil, CostModel{}); err == nil {
		t.Fatal("empty address list accepted")
	}
}

// TestGroupPeerHandle exercises the ctx-and-error Peer surface obtained
// from an in-process group.
func TestGroupPeerHandle(t *testing.T) {
	g := NewGroup(2, CostModel{})
	defer g.Close()
	bufs := [][]float64{{1}, {2}}
	runRanks(2, func(rank int) {
		if err := g.Peer(rank).AllReduceSum(context.Background(), bufs[rank]); err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
	if bufs[0][0] != 3 || bufs[1][0] != 3 {
		t.Fatalf("got %v, want sums of 3", bufs)
	}
}
