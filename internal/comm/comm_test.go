package comm

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

// runRanks executes f concurrently for each rank and waits.
func runRanks(p int, f func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			f(r)
		}(r)
	}
	wg.Wait()
}

func TestAllReduceSumCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{1, 3, 7, 64, 1000} {
			g := NewGroup(p, NVLink3())
			r := rng.New(uint64(p*1000 + n))
			bufs := make([][]float64, p)
			want := make([]float64, n)
			for rank := range bufs {
				bufs[rank] = make([]float64, n)
				for i := range bufs[rank] {
					bufs[rank][i] = r.NormFloat64()
					want[i] += bufs[rank][i]
				}
			}
			runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
			for rank := range bufs {
				for i := range want {
					if math.Abs(bufs[rank][i]-want[i]) > 1e-9 {
						t.Fatalf("p=%d n=%d rank %d elem %d: %v != %v",
							p, n, rank, i, bufs[rank][i], want[i])
					}
				}
			}
		}
	}
}

func TestAllReduceQuick(t *testing.T) {
	check := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw%6) + 1
		n := int(nRaw%50) + 1
		g := NewGroup(p, NVLink3())
		r := rng.New(seed)
		bufs := make([][]float64, p)
		want := make([]float64, n)
		for rank := range bufs {
			bufs[rank] = make([]float64, n)
			for i := range bufs[rank] {
				bufs[rank][i] = math.Floor(r.Float64() * 10)
				want[i] += bufs[rank][i]
			}
		}
		runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
		for rank := range bufs {
			for i := range want {
				if math.Abs(bufs[rank][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceRepeatedCalls(t *testing.T) {
	// The group must be reusable across many sequential collectives.
	const p = 4
	g := NewGroup(p, NVLink3())
	for iter := 0; iter < 20; iter++ {
		bufs := make([][]float64, p)
		for rank := range bufs {
			bufs[rank] = []float64{float64(rank + iter)}
		}
		want := 0.0
		for rank := 0; rank < p; rank++ {
			want += float64(rank + iter)
		}
		runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
		for rank := range bufs {
			if bufs[rank][0] != want {
				t.Fatalf("iter %d rank %d: %v != %v", iter, rank, bufs[rank][0], want)
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		for root := 0; root < p; root++ {
			g := NewGroup(p, NVLink3())
			bufs := make([][]float64, p)
			for rank := range bufs {
				bufs[rank] = []float64{float64(rank), float64(rank * 2)}
			}
			runRanks(p, func(rank int) { g.Broadcast(rank, bufs[rank], root) })
			for rank := range bufs {
				if bufs[rank][0] != float64(root) || bufs[rank][1] != float64(root*2) {
					t.Fatalf("p=%d root=%d rank=%d buf=%v", p, root, rank, bufs[rank])
				}
			}
		}
	}
}

func TestModeledTimeCoalescingAdvantage(t *testing.T) {
	// k separate reductions of n elements must model strictly more time
	// than one reduction of k·n elements — the §III-D claim.
	model := NVLink3()
	const p, k, n = 4, 20, 1000
	separate := time.Duration(k) * model.RingAllReduceTime(n*8, p)
	coalesced := model.RingAllReduceTime(k*n*8, p)
	if coalesced >= separate {
		t.Fatalf("coalesced %v not faster than %v", coalesced, separate)
	}
	// The entire advantage is latency: wire terms are equal up to Duration
	// rounding of the per-call wire times.
	latencyGap := time.Duration(k-1) * time.Duration(2*(p-1)) * model.Alpha
	if diff := separate - coalesced; diff < latencyGap-time.Microsecond || diff > latencyGap+time.Microsecond {
		t.Fatalf("advantage %v, want ≈ pure latency gap %v", diff, latencyGap)
	}
}

func TestStatsAccumulate(t *testing.T) {
	const p = 2
	g := NewGroup(p, NVLink3())
	bufs := [][]float64{make([]float64, 10), make([]float64, 10)}
	runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
	if g.Calls() != 1 {
		t.Fatalf("calls %d, want 1", g.Calls())
	}
	if g.BytesMoved() == 0 || g.ModeledTime() == 0 {
		t.Fatal("stats not accumulated")
	}
	g.ResetStats()
	if g.Calls() != 0 || g.BytesMoved() != 0 || g.ModeledTime() != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestRingAllReduceTimeFormula(t *testing.T) {
	m := CostModel{Alpha: time.Microsecond, BetaBytesPerSecond: 1e9}
	if m.RingAllReduceTime(1000, 1) != 0 {
		t.Fatal("P=1 should cost nothing")
	}
	got := m.RingAllReduceTime(1e9, 4)
	// 2·3 hops = 6 µs; wire = 2·1e9·(3/4)/1e9 = 1.5 s.
	want := 6*time.Microsecond + 1500*time.Millisecond
	if got != want {
		t.Fatalf("modeled %v, want %v", got, want)
	}
}

func TestBarrier(t *testing.T) {
	const p = 5
	b := NewBarrier(p)
	var phase1 int32
	var mu sync.Mutex
	counts := make([]int, 0, p)
	runRanks(p, func(rank int) {
		mu.Lock()
		phase1++
		mu.Unlock()
		b.Wait()
		// After the barrier all p increments must be visible.
		mu.Lock()
		counts = append(counts, int(phase1))
		mu.Unlock()
	})
	for _, c := range counts {
		if c != p {
			t.Fatalf("rank saw %d arrivals after barrier, want %d", c, p)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	const p = 3
	b := NewBarrier(p)
	for round := 0; round < 10; round++ {
		runRanks(p, func(rank int) { b.Wait() })
	}
}

func TestReduceScatterSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{1, 5, 64, 257} {
			g := NewGroup(p, NVLink3())
			r := rng.New(uint64(p*7919 + n))
			bufs := make([][]float64, p)
			want := make([]float64, n)
			for rank := range bufs {
				bufs[rank] = make([]float64, n)
				for i := range bufs[rank] {
					bufs[rank][i] = r.NormFloat64()
					want[i] += bufs[rank][i]
				}
			}
			los, his := make([]int, p), make([]int, p)
			runRanks(p, func(rank int) {
				los[rank], his[rank] = g.ReduceScatterSum(rank, bufs[rank])
			})
			// Every element must be fully reduced in exactly one rank's
			// owned chunk, and the chunks must tile [0, n).
			covered := make([]bool, n)
			for rank := 0; rank < p; rank++ {
				for i := los[rank]; i < his[rank]; i++ {
					if covered[i] {
						t.Fatalf("p=%d n=%d: element %d owned twice", p, n, i)
					}
					covered[i] = true
					if math.Abs(bufs[rank][i]-want[i]) > 1e-9 {
						t.Fatalf("p=%d n=%d rank %d elem %d: %v != %v",
							p, n, rank, i, bufs[rank][i], want[i])
					}
				}
			}
			for i, c := range covered {
				if !c {
					t.Fatalf("p=%d n=%d: element %d unowned", p, n, i)
				}
			}
		}
	}
}

func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	for _, p := range []int{2, 3, 4} {
		n := 97
		g := NewGroup(p, NVLink3())
		g2 := NewGroup(p, NVLink3())
		r := rng.New(uint64(p))
		composed := make([][]float64, p)
		direct := make([][]float64, p)
		for rank := 0; rank < p; rank++ {
			composed[rank] = make([]float64, n)
			direct[rank] = make([]float64, n)
			for i := range composed[rank] {
				v := r.NormFloat64()
				composed[rank][i], direct[rank][i] = v, v
			}
		}
		runRanks(p, func(rank int) {
			g.ReduceScatterSum(rank, composed[rank])
			g.AllGather(rank, composed[rank])
			g2.AllReduceSum(rank, direct[rank])
		})
		for rank := 0; rank < p; rank++ {
			for i := range composed[rank] {
				if composed[rank][i] != direct[rank][i] {
					t.Fatalf("p=%d rank %d elem %d: composed %v != direct %v",
						p, rank, i, composed[rank][i], direct[rank][i])
				}
			}
		}
		// Two collectives charged vs one, identical modeled time and bytes.
		if g.Calls() != 2 || g2.Calls() != 1 {
			t.Fatalf("calls: composed %d (want 2), direct %d (want 1)", g.Calls(), g2.Calls())
		}
		if g.ModeledTime() != g2.ModeledTime() {
			t.Fatalf("modeled time: composed %v != direct %v", g.ModeledTime(), g2.ModeledTime())
		}
		if g.BytesMoved() != g2.BytesMoved() {
			t.Fatalf("bytes: composed %d != direct %d", g.BytesMoved(), g2.BytesMoved())
		}
	}
}

func TestPhaseCostsSumToAllReduce(t *testing.T) {
	m := NVLink3()
	for _, p := range []int{2, 3, 8} {
		n := int64(1 << 20)
		if got, want := m.RingReduceScatterTime(n, p)+m.RingAllGatherTime(n, p), m.RingAllReduceTime(n, p); got != want {
			t.Fatalf("p=%d: phases %v != all-reduce %v", p, got, want)
		}
	}
	if m.RingReduceScatterTime(1<<20, 1) != 0 || m.RingAllGatherTime(1<<20, 1) != 0 || m.BroadcastTime(1<<20, 1) != 0 {
		t.Fatal("single-rank collectives must be free")
	}
}

func TestZeroCostModelChargesNothing(t *testing.T) {
	var zero CostModel
	if zero.RingAllReduceTime(1<<30, 8) != 0 {
		t.Fatal("zero model must charge no time")
	}
	g := NewGroup(4, zero)
	bufs := make([][]float64, 4)
	for rank := range bufs {
		bufs[rank] = []float64{float64(rank), 1, 2, 3, 4}
	}
	runRanks(4, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
	if g.ModeledTime() != 0 {
		t.Fatalf("zero model charged %v", g.ModeledTime())
	}
	if g.BytesMoved() == 0 {
		t.Fatal("real bytes should still be counted")
	}
	if bufs[0][0] != 0+1+2+3 {
		t.Fatalf("sum wrong: %v", bufs[0][0])
	}
}
