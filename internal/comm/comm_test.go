package comm

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

// runRanks executes f concurrently for each rank and waits.
func runRanks(p int, f func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			f(r)
		}(r)
	}
	wg.Wait()
}

func TestAllReduceSumCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		for _, n := range []int{1, 3, 7, 64, 1000} {
			g := NewGroup(p, NVLink3())
			r := rng.New(uint64(p*1000 + n))
			bufs := make([][]float64, p)
			want := make([]float64, n)
			for rank := range bufs {
				bufs[rank] = make([]float64, n)
				for i := range bufs[rank] {
					bufs[rank][i] = r.NormFloat64()
					want[i] += bufs[rank][i]
				}
			}
			runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
			for rank := range bufs {
				for i := range want {
					if math.Abs(bufs[rank][i]-want[i]) > 1e-9 {
						t.Fatalf("p=%d n=%d rank %d elem %d: %v != %v",
							p, n, rank, i, bufs[rank][i], want[i])
					}
				}
			}
		}
	}
}

func TestAllReduceQuick(t *testing.T) {
	check := func(seed uint64, pRaw, nRaw uint8) bool {
		p := int(pRaw%6) + 1
		n := int(nRaw%50) + 1
		g := NewGroup(p, NVLink3())
		r := rng.New(seed)
		bufs := make([][]float64, p)
		want := make([]float64, n)
		for rank := range bufs {
			bufs[rank] = make([]float64, n)
			for i := range bufs[rank] {
				bufs[rank][i] = math.Floor(r.Float64() * 10)
				want[i] += bufs[rank][i]
			}
		}
		runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
		for rank := range bufs {
			for i := range want {
				if math.Abs(bufs[rank][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceRepeatedCalls(t *testing.T) {
	// The group must be reusable across many sequential collectives.
	const p = 4
	g := NewGroup(p, NVLink3())
	for iter := 0; iter < 20; iter++ {
		bufs := make([][]float64, p)
		for rank := range bufs {
			bufs[rank] = []float64{float64(rank + iter)}
		}
		want := 0.0
		for rank := 0; rank < p; rank++ {
			want += float64(rank + iter)
		}
		runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
		for rank := range bufs {
			if bufs[rank][0] != want {
				t.Fatalf("iter %d rank %d: %v != %v", iter, rank, bufs[rank][0], want)
			}
		}
	}
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		for root := 0; root < p; root++ {
			g := NewGroup(p, NVLink3())
			bufs := make([][]float64, p)
			for rank := range bufs {
				bufs[rank] = []float64{float64(rank), float64(rank * 2)}
			}
			runRanks(p, func(rank int) { g.Broadcast(rank, bufs[rank], root) })
			for rank := range bufs {
				if bufs[rank][0] != float64(root) || bufs[rank][1] != float64(root*2) {
					t.Fatalf("p=%d root=%d rank=%d buf=%v", p, root, rank, bufs[rank])
				}
			}
		}
	}
}

func TestModeledTimeCoalescingAdvantage(t *testing.T) {
	// k separate reductions of n elements must model strictly more time
	// than one reduction of k·n elements — the §III-D claim.
	model := NVLink3()
	const p, k, n = 4, 20, 1000
	separate := time.Duration(k) * model.RingAllReduceTime(n*8, p)
	coalesced := model.RingAllReduceTime(k*n*8, p)
	if coalesced >= separate {
		t.Fatalf("coalesced %v not faster than %v", coalesced, separate)
	}
	// The entire advantage is latency: wire terms are equal up to Duration
	// rounding of the per-call wire times.
	latencyGap := time.Duration(k-1) * time.Duration(2*(p-1)) * model.Alpha
	if diff := separate - coalesced; diff < latencyGap-time.Microsecond || diff > latencyGap+time.Microsecond {
		t.Fatalf("advantage %v, want ≈ pure latency gap %v", diff, latencyGap)
	}
}

func TestStatsAccumulate(t *testing.T) {
	const p = 2
	g := NewGroup(p, NVLink3())
	bufs := [][]float64{make([]float64, 10), make([]float64, 10)}
	runRanks(p, func(rank int) { g.AllReduceSum(rank, bufs[rank]) })
	if g.Calls() != 1 {
		t.Fatalf("calls %d, want 1", g.Calls())
	}
	if g.BytesMoved() == 0 || g.ModeledTime() == 0 {
		t.Fatal("stats not accumulated")
	}
	g.ResetStats()
	if g.Calls() != 0 || g.BytesMoved() != 0 || g.ModeledTime() != 0 {
		t.Fatal("reset did not clear stats")
	}
}

func TestRingAllReduceTimeFormula(t *testing.T) {
	m := CostModel{Alpha: time.Microsecond, BetaBytesPerSecond: 1e9}
	if m.RingAllReduceTime(1000, 1) != 0 {
		t.Fatal("P=1 should cost nothing")
	}
	got := m.RingAllReduceTime(1e9, 4)
	// 2·3 hops = 6 µs; wire = 2·1e9·(3/4)/1e9 = 1.5 s.
	want := 6*time.Microsecond + 1500*time.Millisecond
	if got != want {
		t.Fatalf("modeled %v, want %v", got, want)
	}
}

func TestBarrier(t *testing.T) {
	const p = 5
	b := NewBarrier(p)
	var phase1 int32
	var mu sync.Mutex
	counts := make([]int, 0, p)
	runRanks(p, func(rank int) {
		mu.Lock()
		phase1++
		mu.Unlock()
		b.Wait()
		// After the barrier all p increments must be visible.
		mu.Lock()
		counts = append(counts, int(phase1))
		mu.Unlock()
	})
	for _, c := range counts {
		if c != p {
			t.Fatalf("rank saw %d arrivals after barrier, want %d", c, p)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	const p = 3
	b := NewBarrier(p)
	for round := 0; round < 10; round++ {
		runRanks(p, func(rank int) { b.Wait() })
	}
}
