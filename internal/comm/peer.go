package comm

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// ringStats aggregates a ring's collective traffic. A Group's peers
// share one instance; a standalone Peer (one rank of a multi-process
// ring) owns its own.
type ringStats struct {
	calls       int64 // collective invocations (counted once, by rank 0)
	bytesMoved  int64 // payload bytes summed over ranks and steps
	modeledTime int64 // nanoseconds under the cost model
}

// Peer is one rank's endpoint of a ring built over a transport: next is
// the connection toward rank+1 mod P, prev the one from rank−1 mod P.
// All of comm's ring collectives are implemented here, so the identical
// arithmetic runs whether the ring is in-process pipes (Group), TCP
// sockets between processes (ConnectRing), or any other
// transport.Network.
//
// Determinism: the reduction order of every collective is a function of
// (P, rank, len(buf)) only — never of the transport — so results are
// bitwise identical across transports.
type Peer struct {
	Rank int
	P    int

	next, prev transport.Conn
	model      CostModel
	stats      *ringStats
}

// NewPeer wraps one rank's ring connections. next carries messages to
// rank+1 mod P, prev delivers messages from rank−1 mod P. Either may be
// nil when P == 1 (a singleton ring never communicates).
func NewPeer(rank, p int, next, prev transport.Conn, model CostModel) *Peer {
	if p < 1 || rank < 0 || rank >= p {
		panic(fmt.Sprintf("comm: rank %d of %d", rank, p))
	}
	return &Peer{Rank: rank, P: p, next: next, prev: prev, model: model, stats: &ringStats{}}
}

// ConnectRing builds rank's ring endpoint over a Network: it listens on
// addrs[rank], dials addrs[(rank+1)%p], accepts the connection from
// rank−1, and returns the wired Peer. Every rank of the ring must call
// it concurrently (in its own process, typically). The listener is
// closed once the ring link is accepted.
func ConnectRing(ctx context.Context, net transport.Network, rank int, addrs []string, model CostModel) (*Peer, error) {
	p := len(addrs)
	if p < 1 || rank < 0 || rank >= p {
		return nil, fmt.Errorf("comm: ConnectRing rank %d of %d addrs", rank, p)
	}
	if p == 1 {
		return NewPeer(0, 1, nil, nil, model), nil
	}
	ln, err := net.Listen(addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: ring listen %q: %w", addrs[rank], err)
	}
	defer ln.Close()

	nextAddr := addrs[(rank+1)%p]
	type dialResult struct {
		c   transport.Conn
		err error
	}
	dialed := make(chan dialResult, 1)
	go func() {
		// The neighbor's listener may not be up yet; retry until ctx
		// gives up — ring formation is a one-time rendezvous.
		for {
			c, err := net.Dial(ctx, nextAddr)
			if err == nil || ctx.Err() != nil {
				dialed <- dialResult{c, err}
				return
			}
			select {
			case <-ctx.Done():
				dialed <- dialResult{nil, ctx.Err()}
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	prev, err := ln.Accept(ctx)
	if err != nil {
		return nil, fmt.Errorf("comm: ring accept on %q: %w", addrs[rank], err)
	}
	res := <-dialed
	if res.err != nil {
		prev.Close()
		return nil, fmt.Errorf("comm: ring dial %q: %w", nextAddr, res.err)
	}
	return NewPeer(rank, p, res.c, prev, model), nil
}

// Close tears down the peer's ring connections.
func (pe *Peer) Close() error {
	var first error
	for _, c := range []transport.Conn{pe.next, pe.prev} {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Calls returns how many collectives this peer has charged.
func (pe *Peer) Calls() int64 { return atomic.LoadInt64(&pe.stats.calls) }

// BytesMoved returns total payload bytes this peer sent.
func (pe *Peer) BytesMoved() int64 { return atomic.LoadInt64(&pe.stats.bytesMoved) }

// ModeledTime returns the accumulated α–β model time.
func (pe *Peer) ModeledTime() time.Duration {
	return time.Duration(atomic.LoadInt64(&pe.stats.modeledTime))
}

// sendFloats ships one chunk to the next hop as little-endian float64
// bits — the transport's length-prefix frames the message.
func (pe *Peer) sendFloats(ctx context.Context, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if err := pe.next.Send(ctx, buf); err != nil {
		return err
	}
	atomic.AddInt64(&pe.stats.bytesMoved, int64(len(buf)))
	return nil
}

// recvFloats receives the previous hop's chunk into want values.
func (pe *Peer) recvFloats(ctx context.Context, want int) ([]float64, error) {
	buf, err := pe.prev.Recv(ctx)
	if err != nil {
		return nil, err
	}
	if len(buf) != 8*want {
		return nil, fmt.Errorf("comm: ring chunk %d bytes, want %d", len(buf), 8*want)
	}
	out := make([]float64, want)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// AllReduceSum performs an in-place ring all-reduce (sum) of buf across
// the ring: reduce-scatter followed by all-gather, NCCL's algorithm.
// Every rank must call it concurrently with equal-length buffers; on
// return each holds the elementwise sum.
func (pe *Peer) AllReduceSum(ctx context.Context, buf []float64) error {
	if pe.P == 1 {
		return nil
	}
	if pe.Rank == 0 {
		// One charged collective: the composition of the two phases is
		// the all-reduce, and RingAllReduceTime is exactly their sum.
		atomic.AddInt64(&pe.stats.calls, 1)
		atomic.AddInt64(&pe.stats.modeledTime, int64(pe.model.RingAllReduceTime(int64(len(buf)*8), pe.P)))
	}
	if _, _, err := pe.reduceScatterSum(ctx, buf, false); err != nil {
		return err
	}
	return pe.allGather(ctx, buf, false)
}

// ReduceScatterSum performs an in-place ring reduce-scatter (sum): after
// the call, rank r's buffer holds the fully reduced elements of its
// owned chunk (returned as [lo, hi)); other regions hold partial sums.
func (pe *Peer) ReduceScatterSum(ctx context.Context, buf []float64) (lo, hi int, err error) {
	if pe.P == 1 {
		return 0, len(buf), nil
	}
	return pe.reduceScatterSum(ctx, buf, true)
}

func (pe *Peer) reduceScatterSum(ctx context.Context, buf []float64, charge bool) (lo, hi int, err error) {
	if pe.Rank == 0 && charge {
		atomic.AddInt64(&pe.stats.calls, 1)
		atomic.AddInt64(&pe.stats.modeledTime, int64(pe.model.RingReduceScatterTime(int64(len(buf)*8), pe.P)))
	}
	p, rank := pe.P, pe.Rank
	// After P−1 steps rank r holds the fully reduced chunk (r+1) mod P.
	for s := 0; s < p-1; s++ {
		sendIdx := ((rank-s)%p + p) % p
		recvIdx := ((rank-s-1)%p + p) % p
		clo, chi := chunkBounds(len(buf), p, sendIdx)
		if err := pe.sendFloats(ctx, buf[clo:chi]); err != nil {
			return 0, 0, err
		}
		rlo, rhi := chunkBounds(len(buf), p, recvIdx)
		in, err := pe.recvFloats(ctx, rhi-rlo)
		if err != nil {
			return 0, 0, err
		}
		for i, v := range in {
			buf[rlo+i] += v
		}
	}
	lo, hi = chunkBounds(len(buf), p, (rank+1)%p)
	return lo, hi, nil
}

// AllGather circulates each rank's owned chunk (the chunk
// ReduceScatterSum leaves reduced: (rank+1) mod P) so every rank's
// buffer ends complete.
func (pe *Peer) AllGather(ctx context.Context, buf []float64) error {
	if pe.P == 1 {
		return nil
	}
	return pe.allGather(ctx, buf, true)
}

func (pe *Peer) allGather(ctx context.Context, buf []float64, charge bool) error {
	if pe.Rank == 0 && charge {
		atomic.AddInt64(&pe.stats.calls, 1)
		atomic.AddInt64(&pe.stats.modeledTime, int64(pe.model.RingAllGatherTime(int64(len(buf)*8), pe.P)))
	}
	p, rank := pe.P, pe.Rank
	for s := 0; s < p-1; s++ {
		sendIdx := ((rank-s+1)%p + p) % p
		recvIdx := ((rank-s)%p + p) % p
		lo, hi := chunkBounds(len(buf), p, sendIdx)
		if err := pe.sendFloats(ctx, buf[lo:hi]); err != nil {
			return err
		}
		rlo, rhi := chunkBounds(len(buf), p, recvIdx)
		in, err := pe.recvFloats(ctx, rhi-rlo)
		if err != nil {
			return err
		}
		copy(buf[rlo:rlo+len(in)], in)
	}
	return nil
}

// Broadcast copies root's buffer to every rank (ring pipeline). All
// ranks call it concurrently; on return every buf equals root's.
func (pe *Peer) Broadcast(ctx context.Context, buf []float64, root int) error {
	if pe.P == 1 {
		return nil
	}
	if pe.Rank == 0 {
		atomic.AddInt64(&pe.stats.calls, 1)
		atomic.AddInt64(&pe.stats.modeledTime, int64(pe.model.BroadcastTime(int64(len(buf)*8), pe.P)))
	}
	p := pe.P
	pos := ((pe.Rank-root)%p + p) % p // distance from root along the ring
	if pos != 0 {
		in, err := pe.recvFloats(ctx, len(buf))
		if err != nil {
			return err
		}
		copy(buf, in)
	}
	if pos != p-1 { // everyone but the last forwards
		if err := pe.sendFloats(ctx, buf); err != nil {
			return err
		}
	}
	return nil
}
