// Package comm implements the NCCL-style ring collectives the paper's
// DDP training uses, over a pluggable point-to-point transport
// (internal/transport). The ring all-reduce moves real data link by link
// (reduce-scatter followed by all-gather, NCCL's algorithm), so
// synchronization costs are physically incurred, and an α–β cost model
// calibrated to the paper's hardware (NVLink 3.0) tracks the modeled
// wire time of every call.
//
// Two deployment shapes share the same collective arithmetic:
//
//   - Group: P rank goroutines in one process, ring links as in-process
//     transport pipes (NewGroup) or over any transport.Network, TCP
//     included (NewGroupNetwork).
//   - Peer: one rank's endpoint in a multi-process ring, wired by
//     ConnectRing over real sockets.
//
// Because the reduction order is a function of (P, rank, buffer length)
// only, results are bitwise identical across transports and deployment
// shapes.
//
// The coalesced all-reduce optimization (§III-D of the paper) follows
// directly from this model: reducing k parameter matrices separately pays
// k·2(P−1)·α in ring latency, while one reduction of the stacked buffer
// pays it once.
package comm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// CostModel is an α–β (latency–bandwidth) communication model.
type CostModel struct {
	// Alpha is the per-message link latency.
	Alpha time.Duration
	// BetaBytesPerSecond is the link bandwidth.
	BetaBytesPerSecond float64
}

// NVLink3 models the paper's Perlmutter nodes: NVLink 3.0 at 100 GB/s
// unidirectional with ~10 µs effective collective launch latency.
func NVLink3() CostModel {
	return CostModel{Alpha: 10 * time.Microsecond, BetaBytesPerSecond: 100e9}
}

// wireTime is the β term for moving n bytes, zero when the model has no
// bandwidth configured (a zero CostModel charges nothing — used by groups
// whose transport is bookkept elsewhere).
func (m CostModel) wireTime(nBytes float64) time.Duration {
	if m.BetaBytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(nBytes / m.BetaBytesPerSecond * float64(time.Second))
}

// RingAllReduceTime returns the modeled wall time of a ring all-reduce of
// n bytes across p ranks: 2(p−1) latency hops plus 2n(p−1)/p bytes moved
// per rank at bandwidth β. It is exactly the reduce-scatter time plus the
// all-gather time, NCCL's decomposition.
func (m CostModel) RingAllReduceTime(nBytes int64, p int) time.Duration {
	return m.RingReduceScatterTime(nBytes, p) + m.RingAllGatherTime(nBytes, p)
}

// RingReduceScatterTime returns the modeled wall time of a ring
// reduce-scatter of n bytes across p ranks: (p−1) latency hops plus
// n(p−1)/p bytes moved per rank.
func (m CostModel) RingReduceScatterTime(nBytes int64, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	return time.Duration(p-1)*m.Alpha + m.wireTime(float64(nBytes)*float64(p-1)/float64(p))
}

// RingAllGatherTime returns the modeled wall time of a ring all-gather of
// n total bytes across p ranks: (p−1) latency hops plus n(p−1)/p bytes
// moved per rank.
func (m CostModel) RingAllGatherTime(nBytes int64, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	return time.Duration(p-1)*m.Alpha + m.wireTime(float64(nBytes)*float64(p-1)/float64(p))
}

// BroadcastTime returns the modeled wall time of a ring-pipeline
// broadcast of n bytes across p ranks.
func (m CostModel) BroadcastTime(nBytes int64, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	return time.Duration(p-1)*m.Alpha + m.wireTime(float64(nBytes))
}

// Group is a fixed set of P ranks with a ring topology. Since the
// transport rebase it is a thin shell over P Peers: NewGroup wires the
// ring with in-process transport.Pipe links, NewGroupNetwork wires it
// over any transport.Network (real TCP sockets included), and every
// collective runs the identical Peer arithmetic either way — so results
// are bitwise independent of the transport.
type Group struct {
	P     int
	model CostModel

	peers []*Peer
	stats *ringStats
}

// NewGroup creates a process group of p ranks over in-process pipes.
func NewGroup(p int, model CostModel) *Group {
	if p < 1 {
		panic(fmt.Sprintf("comm: group size %d", p))
	}
	g := &Group{P: p, model: model, stats: &ringStats{}}
	g.peers = make([]*Peer, p)
	for rank := range g.peers {
		g.peers[rank] = &Peer{Rank: rank, P: p, model: model, stats: g.stats}
	}
	// links[i] carries messages rank i → rank (i+1)%P.
	for i := 0; i < p; i++ {
		a, b := transport.Pipe()
		g.peers[i].next = a
		g.peers[(i+1)%p].prev = b
	}
	return g
}

// NewGroupNetwork creates a process group of p ranks whose ring links
// run over net — with a TCP network the collectives move through real
// sockets, byte-identical to what p separate processes using
// ConnectRing would exchange. addrs lists each rank's listen address;
// nil requests p ephemeral addresses. The caller should Close the group
// to release the connections.
func NewGroupNetwork(p int, model CostModel, net transport.Network, addrs []string) (*Group, error) {
	if p < 1 {
		return nil, fmt.Errorf("comm: group size %d", p)
	}
	if addrs == nil {
		addrs = make([]string, p)
	}
	if len(addrs) != p {
		return nil, fmt.Errorf("comm: %d addrs for %d ranks", len(addrs), p)
	}
	g := &Group{P: p, model: model, stats: &ringStats{}}
	if p == 1 {
		g.peers = []*Peer{{Rank: 0, P: 1, model: model, stats: g.stats}}
		return g, nil
	}
	// Bind every rank's listener first so ring dials cannot race an
	// unbound neighbor, resolving ephemeral addresses as we go.
	listeners := make([]transport.Listener, p)
	for rank := 0; rank < p; rank++ {
		ln, err := net.Listen(addrs[rank])
		if err != nil {
			for _, l := range listeners[:rank] {
				l.Close()
			}
			return nil, fmt.Errorf("comm: ring listen %q: %w", addrs[rank], err)
		}
		listeners[rank] = ln
		addrs[rank] = ln.Addr()
	}
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	next := make([]transport.Conn, p)
	prev := make([]transport.Conn, p)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := net.Dial(ctx, addrs[(rank+1)%p])
			if err == nil {
				next[rank] = c
				return
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("comm: ring dial %q: %w", addrs[(rank+1)%p], err)
			}
			mu.Unlock()
			cancel()
		}(rank)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := listeners[rank].Accept(ctx)
			if err == nil {
				prev[rank] = c
				return
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("comm: ring accept on %q: %w", addrs[rank], err)
			}
			mu.Unlock()
			cancel()
		}(rank)
	}
	wg.Wait()
	if firstErr != nil {
		for _, c := range append(next, prev...) {
			if c != nil {
				c.Close()
			}
		}
		return nil, firstErr
	}
	g.peers = make([]*Peer, p)
	for rank := 0; rank < p; rank++ {
		g.peers[rank] = &Peer{Rank: rank, P: p, next: next[rank], prev: prev[rank], model: model, stats: g.stats}
	}
	return g, nil
}

// Peer returns rank's endpoint — the handle a rank goroutine uses
// directly when it wants contexts and errors instead of the legacy
// panic-on-failure Group surface.
func (g *Group) Peer(rank int) *Peer { return g.peers[rank] }

// Close tears down the ring links. Collectives in flight fail.
func (g *Group) Close() error {
	var first error
	for _, pe := range g.peers {
		if err := pe.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Calls returns how many collectives the group has executed.
func (g *Group) Calls() int64 { return atomic.LoadInt64(&g.stats.calls) }

// BytesMoved returns total payload bytes transferred across all links.
func (g *Group) BytesMoved() int64 { return atomic.LoadInt64(&g.stats.bytesMoved) }

// ModeledTime returns the accumulated α–β model time across collectives.
func (g *Group) ModeledTime() time.Duration {
	return time.Duration(atomic.LoadInt64(&g.stats.modeledTime))
}

// ResetStats zeroes the accumulated statistics.
func (g *Group) ResetStats() {
	atomic.StoreInt64(&g.stats.calls, 0)
	atomic.StoreInt64(&g.stats.bytesMoved, 0)
	atomic.StoreInt64(&g.stats.modeledTime, 0)
}

// chunkBounds splits n elements into P contiguous chunks.
func chunkBounds(n, p, idx int) (lo, hi int) {
	size := (n + p - 1) / p
	lo = idx * size
	hi = lo + size
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ringErr surfaces a transport failure through the legacy no-error Group
// surface. In-process pipes cannot fail unless the group was closed;
// network-backed groups propagate real wire errors the same way.
func ringErr(op string, err error) {
	if err != nil {
		panic(fmt.Sprintf("comm: %s over transport: %v", op, err))
	}
}

// AllReduceSum performs an in-place ring all-reduce (sum) of buf across
// the group: a reduce-scatter followed by an all-gather, NCCL's
// algorithm. Every rank must call it concurrently with its own buffer of
// identical length; on return each buffer holds the elementwise sum.
func (g *Group) AllReduceSum(rank int, buf []float64) {
	ringErr("all-reduce", g.peers[rank].AllReduceSum(context.Background(), buf))
}

// ReduceScatterSum performs an in-place ring reduce-scatter (sum): after
// the call, rank r's buffer holds the fully reduced elements of its owned
// chunk (returned as [lo, hi)); other regions hold partial sums. Every
// rank must call it concurrently with equal-length buffers.
func (g *Group) ReduceScatterSum(rank int, buf []float64) (lo, hi int) {
	lo, hi, err := g.peers[rank].ReduceScatterSum(context.Background(), buf)
	ringErr("reduce-scatter", err)
	return lo, hi
}

// AllGather circulates each rank's owned chunk (the chunk ReduceScatterSum
// leaves reduced: (rank+1) mod P) so every rank's buffer ends complete.
// Every rank must call it concurrently with equal-length buffers.
func (g *Group) AllGather(rank int, buf []float64) {
	ringErr("all-gather", g.peers[rank].AllGather(context.Background(), buf))
}

// Broadcast copies root's buffer to every rank (ring pipeline). All ranks
// call it concurrently; on return every buf equals root's.
func (g *Group) Broadcast(rank int, buf []float64, root int) {
	ringErr("broadcast", g.peers[rank].Broadcast(context.Background(), buf, root))
}

// Barrier blocks until every rank has reached it.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	p     int
	count int
	phase int
}

// NewBarrier creates a reusable barrier for p ranks.
func NewBarrier(p int) *Barrier {
	b := &Barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all p ranks have called Wait.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.p {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}
