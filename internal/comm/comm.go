// Package comm simulates the NCCL collectives the paper's DDP training
// uses. Ranks are goroutines; the ring all-reduce moves real data through
// buffered channels (reduce-scatter followed by all-gather, NCCL's
// algorithm), so synchronization costs are physically incurred, and an
// α–β cost model calibrated to the paper's hardware (NVLink 3.0) tracks
// the modeled wire time of every call.
//
// The coalesced all-reduce optimization (§III-D of the paper) follows
// directly from this model: reducing k parameter matrices separately pays
// k·2(P−1)·α in ring latency, while one reduction of the stacked buffer
// pays it once.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel is an α–β (latency–bandwidth) communication model.
type CostModel struct {
	// Alpha is the per-message link latency.
	Alpha time.Duration
	// BetaBytesPerSecond is the link bandwidth.
	BetaBytesPerSecond float64
}

// NVLink3 models the paper's Perlmutter nodes: NVLink 3.0 at 100 GB/s
// unidirectional with ~10 µs effective collective launch latency.
func NVLink3() CostModel {
	return CostModel{Alpha: 10 * time.Microsecond, BetaBytesPerSecond: 100e9}
}

// wireTime is the β term for moving n bytes, zero when the model has no
// bandwidth configured (a zero CostModel charges nothing — used by groups
// whose transport is bookkept elsewhere).
func (m CostModel) wireTime(nBytes float64) time.Duration {
	if m.BetaBytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(nBytes / m.BetaBytesPerSecond * float64(time.Second))
}

// RingAllReduceTime returns the modeled wall time of a ring all-reduce of
// n bytes across p ranks: 2(p−1) latency hops plus 2n(p−1)/p bytes moved
// per rank at bandwidth β. It is exactly the reduce-scatter time plus the
// all-gather time, NCCL's decomposition.
func (m CostModel) RingAllReduceTime(nBytes int64, p int) time.Duration {
	return m.RingReduceScatterTime(nBytes, p) + m.RingAllGatherTime(nBytes, p)
}

// RingReduceScatterTime returns the modeled wall time of a ring
// reduce-scatter of n bytes across p ranks: (p−1) latency hops plus
// n(p−1)/p bytes moved per rank.
func (m CostModel) RingReduceScatterTime(nBytes int64, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	return time.Duration(p-1)*m.Alpha + m.wireTime(float64(nBytes)*float64(p-1)/float64(p))
}

// RingAllGatherTime returns the modeled wall time of a ring all-gather of
// n total bytes across p ranks: (p−1) latency hops plus n(p−1)/p bytes
// moved per rank.
func (m CostModel) RingAllGatherTime(nBytes int64, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	return time.Duration(p-1)*m.Alpha + m.wireTime(float64(nBytes)*float64(p-1)/float64(p))
}

// BroadcastTime returns the modeled wall time of a ring-pipeline
// broadcast of n bytes across p ranks.
func (m CostModel) BroadcastTime(nBytes int64, p int) time.Duration {
	if p <= 1 {
		return 0
	}
	return time.Duration(p-1)*m.Alpha + m.wireTime(float64(nBytes))
}

// Group is a fixed set of P ranks with a ring topology.
type Group struct {
	P     int
	model CostModel

	// links[i] carries messages rank i → rank (i+1)%P.
	links []chan []float64

	calls       int64 // collective invocations (counted once per group)
	bytesMoved  int64 // payload bytes summed over ranks and steps
	modeledTime int64 // nanoseconds under the cost model
}

// NewGroup creates a process group of p ranks.
func NewGroup(p int, model CostModel) *Group {
	if p < 1 {
		panic(fmt.Sprintf("comm: group size %d", p))
	}
	g := &Group{P: p, model: model, links: make([]chan []float64, p)}
	for i := range g.links {
		g.links[i] = make(chan []float64, 1)
	}
	return g
}

// Calls returns how many collectives the group has executed.
func (g *Group) Calls() int64 { return atomic.LoadInt64(&g.calls) }

// BytesMoved returns total payload bytes transferred across all links.
func (g *Group) BytesMoved() int64 { return atomic.LoadInt64(&g.bytesMoved) }

// ModeledTime returns the accumulated α–β model time across collectives.
func (g *Group) ModeledTime() time.Duration {
	return time.Duration(atomic.LoadInt64(&g.modeledTime))
}

// ResetStats zeroes the accumulated statistics.
func (g *Group) ResetStats() {
	atomic.StoreInt64(&g.calls, 0)
	atomic.StoreInt64(&g.bytesMoved, 0)
	atomic.StoreInt64(&g.modeledTime, 0)
}

// chunkBounds splits n elements into P contiguous chunks.
func chunkBounds(n, p, idx int) (lo, hi int) {
	size := (n + p - 1) / p
	lo = idx * size
	hi = lo + size
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// AllReduceSum performs an in-place ring all-reduce (sum) of buf across
// the group: a reduce-scatter followed by an all-gather, NCCL's
// algorithm. Every rank must call it concurrently with its own buffer of
// identical length; on return each buffer holds the elementwise sum.
func (g *Group) AllReduceSum(rank int, buf []float64) {
	if g.P == 1 {
		return
	}
	if rank == 0 {
		// Counted and charged as one collective: the composition of the
		// two phases is the all-reduce, and RingAllReduceTime is exactly
		// the sum of the phase times.
		atomic.AddInt64(&g.calls, 1)
		atomic.AddInt64(&g.modeledTime, int64(g.model.RingAllReduceTime(int64(len(buf)*8), g.P)))
	}
	g.reduceScatterSum(rank, buf, false)
	g.allGather(rank, buf, false)
}

// ReduceScatterSum performs an in-place ring reduce-scatter (sum): after
// the call, rank r's buffer holds the fully reduced elements of its owned
// chunk (returned as [lo, hi)); other regions hold partial sums. Every
// rank must call it concurrently with equal-length buffers.
func (g *Group) ReduceScatterSum(rank int, buf []float64) (lo, hi int) {
	if g.P == 1 {
		return 0, len(buf)
	}
	return g.reduceScatterSum(rank, buf, true)
}

func (g *Group) reduceScatterSum(rank int, buf []float64, charge bool) (lo, hi int) {
	if rank == 0 && charge {
		atomic.AddInt64(&g.calls, 1)
		atomic.AddInt64(&g.modeledTime, int64(g.model.RingReduceScatterTime(int64(len(buf)*8), g.P)))
	}
	p := g.P
	prev := (rank - 1 + p) % p
	// After P−1 steps rank r holds the fully reduced chunk (r+1) mod P.
	for s := 0; s < p-1; s++ {
		sendIdx := ((rank-s)%p + p) % p
		recvIdx := ((rank-s-1)%p + p) % p
		clo, chi := chunkBounds(len(buf), p, sendIdx)
		out := make([]float64, chi-clo)
		copy(out, buf[clo:chi])
		g.links[rank] <- out
		in := <-g.links[prev]
		rlo, _ := chunkBounds(len(buf), p, recvIdx)
		for i, v := range in {
			buf[rlo+i] += v
		}
		atomic.AddInt64(&g.bytesMoved, int64(len(out)*8))
	}
	return chunkBounds(len(buf), p, (rank+1)%p)
}

// AllGather circulates each rank's owned chunk (the chunk ReduceScatterSum
// leaves reduced: (rank+1) mod P) so every rank's buffer ends complete.
// Every rank must call it concurrently with equal-length buffers.
func (g *Group) AllGather(rank int, buf []float64) {
	if g.P == 1 {
		return
	}
	g.allGather(rank, buf, true)
}

func (g *Group) allGather(rank int, buf []float64, charge bool) {
	if rank == 0 && charge {
		atomic.AddInt64(&g.calls, 1)
		atomic.AddInt64(&g.modeledTime, int64(g.model.RingAllGatherTime(int64(len(buf)*8), g.P)))
	}
	p := g.P
	prev := (rank - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendIdx := ((rank-s+1)%p + p) % p
		recvIdx := ((rank-s)%p + p) % p
		lo, hi := chunkBounds(len(buf), p, sendIdx)
		out := make([]float64, hi-lo)
		copy(out, buf[lo:hi])
		g.links[rank] <- out
		in := <-g.links[prev]
		rlo, _ := chunkBounds(len(buf), p, recvIdx)
		copy(buf[rlo:rlo+len(in)], in)
		atomic.AddInt64(&g.bytesMoved, int64(len(out)*8))
	}
}

// Broadcast copies root's buffer to every rank (ring pipeline). All ranks
// call it concurrently; on return every buf equals root's.
func (g *Group) Broadcast(rank int, buf []float64, root int) {
	if g.P == 1 {
		return
	}
	if rank == 0 {
		atomic.AddInt64(&g.calls, 1)
		atomic.AddInt64(&g.modeledTime, int64(g.model.BroadcastTime(int64(len(buf)*8), g.P)))
	}
	p := g.P
	pos := ((rank-root)%p + p) % p // distance from root along the ring
	prev := (rank - 1 + p) % p
	if pos != 0 {
		in := <-g.links[prev]
		copy(buf, in)
		atomic.AddInt64(&g.bytesMoved, int64(len(in)*8))
	}
	if pos != p-1 { // everyone but the last forwards
		out := make([]float64, len(buf))
		copy(out, buf)
		g.links[rank] <- out
	}
}

// Barrier blocks until every rank has reached it.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	p     int
	count int
	phase int
}

// NewBarrier creates a reusable barrier for p ranks.
func NewBarrier(p int) *Barrier {
	b := &Barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all p ranks have called Wait.
func (b *Barrier) Wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.count++
	if b.count == b.p {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}
