package parallel

import (
	"sync/atomic"
	"testing"
)

// TestForWithNCoversRangeOnce checks the static partition at awkward
// worker/grain/n combinations: every index visited exactly once, chunk
// count never exceeds the worker cap.
func TestForWithNCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 6, 7, 63, 64, 65, 1000} {
			for _, grain := range []int{1, 16, 100} {
				visits := make([]atomic.Int32, n)
				var chunks atomic.Int32
				ForWithN(workers, n, grain, visits, func(v []atomic.Int32, lo, hi int) {
					chunks.Add(1)
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: bad chunk [%d,%d)", workers, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						v[i].Add(1)
					}
				})
				for i := range visits {
					if got := visits[i].Load(); got != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, got)
					}
				}
				if int(chunks.Load()) > workers {
					t.Fatalf("workers=%d n=%d grain=%d: %d chunks exceed cap", workers, n, grain, chunks.Load())
				}
			}
		}
	}
}

// TestForWithNZeroWorkersFallsBack ensures a non-positive cap behaves
// like the default ForWith.
func TestForWithNZeroWorkersFallsBack(t *testing.T) {
	var sum atomic.Int64
	ForWithN(0, 100, 1, &sum, func(s *atomic.Int64, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.Add(int64(i))
		}
	})
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}
