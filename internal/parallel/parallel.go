// Package parallel provides shared-memory loop parallelism helpers used by
// the dense and sparse kernels. It deliberately stays tiny: a parallel-for
// with grain control and a fan-out/fan-in helper, built only on goroutines
// and sync.
package parallel

import (
	"runtime"
	"sync"
)

// MaxWorkers returns the degree of parallelism kernels should use.
func MaxWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For splits [0, n) into contiguous chunks of at least grain iterations and
// runs body(lo, hi) on each chunk, possibly concurrently. If the work is
// small (a single chunk) it runs inline to avoid goroutine overhead.
// body must be safe to call concurrently on disjoint ranges.
func For(n, grain int, body func(lo, hi int)) {
	ForWith(n, grain, body, func(b func(lo, hi int), lo, hi int) { b(lo, hi) })
}

// ForWith is For with an explicit context value instead of closure
// captures. Pass a capture-free func literal reading everything it needs
// from ctx: such literals compile to static functions, so the
// single-chunk (serial) path performs no heap allocation at all — a
// closure passed to For always escapes because of the goroutine fan-out
// path, costing one allocation per call even for tiny inputs. The hot
// kernels (GEMM, SpGEMM, SpMM, gathers) use this to honour their
// zero-allocation warm-path contract. For is a thin wrapper over this
// (with the caller's closure as the context), so the chunking policy —
// worker cap, grain floor — lives in exactly one place.
func ForWith[T any](n, grain int, ctx T, body func(ctx T, lo, hi int)) {
	ForWithN(MaxWorkers(), n, grain, ctx, body)
}

// ForWithN is ForWith with an explicit worker cap: at most workers
// chunks run concurrently (workers ≤ 0 means MaxWorkers()). This is the
// hook the kernels.Context budget plugs into — an outer layer that is
// itself parallel (engine workers, trainer ranks) passes each unit a
// reduced cap so inner × outer parallelism never oversubscribes the
// host. The chunking is static and depends only on (workers, n, grain),
// never on runtime load, and chunks are contiguous disjoint ranges —
// kernels whose per-index work is independent therefore produce bitwise
// identical results at every worker count.
func ForWithN[T any](workers, n, grain int, ctx T, body func(ctx T, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if workers <= 0 {
		workers = MaxWorkers()
	}
	chunks := (n + grain - 1) / grain
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		body(ctx, 0, n)
		return
	}
	chunkSize := (n + chunks - 1) / chunks
	if chunkSize < grain {
		chunkSize = grain
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunkSize {
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(ctx, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs each task concurrently and waits for all of them.
func Do(tasks ...func()) {
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		go func(t func()) {
			defer wg.Done()
			t()
		}(t)
	}
	wg.Wait()
}
