package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	check := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw % 5000)
		grain := int(grainRaw%200) + 1
		marks := make([]int32, n)
		For(n, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for _, m := range marks {
			if m != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for non-positive n")
	}
}

func TestForSumMatchesSerial(t *testing.T) {
	const n = 100000
	var sum int64
	For(n, 128, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum, local)
	})
	want := int64(n) * int64(n-1) / 2
	if sum != want {
		t.Fatalf("parallel sum %d != %d", sum, want)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var count int32
	Do(
		func() { atomic.AddInt32(&count, 1) },
		func() { atomic.AddInt32(&count, 1) },
		func() { atomic.AddInt32(&count, 1) },
	)
	if count != 3 {
		t.Fatalf("Do ran %d of 3 tasks", count)
	}
}

func TestDoSingleTaskInline(t *testing.T) {
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single task not run")
	}
}

func TestForRespectsGrainFloor(t *testing.T) {
	// n=9, grain=4 used to split into 3 chunks of 3 — below the grain
	// floor — once the chunk count was capped at the worker count.
	for _, c := range []struct{ n, grain int }{{9, 4}, {100, 33}, {1000, 64}, {7, 7}} {
		var chunkLens []int
		var mu sync.Mutex
		For(c.n, c.grain, func(lo, hi int) {
			mu.Lock()
			chunkLens = append(chunkLens, hi-lo)
			mu.Unlock()
		})
		total := 0
		for _, l := range chunkLens {
			total += l
		}
		if total != c.n {
			t.Fatalf("n=%d grain=%d: chunks cover %d", c.n, c.grain, total)
		}
		below := 0
		for _, l := range chunkLens {
			if l < c.grain {
				below++
			}
		}
		if below > 1 {
			t.Fatalf("n=%d grain=%d: %d chunks below grain floor (lens %v)", c.n, c.grain, below, chunkLens)
		}
	}
}

func TestForWithCoversAllIndicesOnce(t *testing.T) {
	check := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw % 5000)
		grain := int(grainRaw%200) + 1
		marks := make([]int32, n)
		ForWith(n, grain, marks, func(marks []int32, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for _, m := range marks {
			if m != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForWithSerialPathZeroAllocs(t *testing.T) {
	type ctx struct {
		dst []float64
		s   float64
	}
	c := ctx{dst: make([]float64, 32), s: 2}
	allocs := testing.AllocsPerRun(100, func() {
		// 32 iterations at grain 64 → single chunk, runs inline.
		ForWith(len(c.dst), 64, c, func(c ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.dst[i] = c.s
			}
		})
	})
	if allocs != 0 {
		t.Fatalf("serial ForWith allocated %.1f per run, want 0", allocs)
	}
}
