package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	check := func(nRaw uint16, grainRaw uint8) bool {
		n := int(nRaw % 5000)
		grain := int(grainRaw%200) + 1
		marks := make([]int32, n)
		For(n, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&marks[i], 1)
			}
		})
		for _, m := range marks {
			if m != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 1, func(lo, hi int) { called = true })
	For(-5, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for non-positive n")
	}
}

func TestForSumMatchesSerial(t *testing.T) {
	const n = 100000
	var sum int64
	For(n, 128, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&sum, local)
	})
	want := int64(n) * int64(n-1) / 2
	if sum != want {
		t.Fatalf("parallel sum %d != %d", sum, want)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	var count int32
	Do(
		func() { atomic.AddInt32(&count, 1) },
		func() { atomic.AddInt32(&count, 1) },
		func() { atomic.AddInt32(&count, 1) },
	)
	if count != 3 {
		t.Fatalf("Do ran %d of 3 tasks", count)
	}
}

func TestDoSingleTaskInline(t *testing.T) {
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("single task not run")
	}
}
