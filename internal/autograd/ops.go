package autograd

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MatMul returns a×b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows(), b.Value.Cols())
	tensor.MatMulIntoCtx(t.kc, v, a.Value, b.Value)
	need := a.needGrad || b.needGrad
	var out *Node
	out = t.newNode(v, need, func() {
		if a.needGrad {
			g := t.alloc(a.Value.Rows(), a.Value.Cols())
			tensor.MatMulTIntoCtx(t.kc, g, out.grad, b.Value)
			a.accumOwned(g)
		}
		if b.needGrad {
			g := t.alloc(b.Value.Rows(), b.Value.Cols())
			tensor.TMatMulIntoCtx(t.kc, g, a.Value, out.grad)
			b.accumOwned(g)
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

// Add returns a+b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.AddInto(v, a.Value, b.Value)
	need := a.needGrad || b.needGrad
	var out *Node
	out = t.newNode(v, need, func() {
		if a.needGrad {
			a.accum(out.grad)
		}
		if b.needGrad {
			b.accum(out.grad)
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

// AddBias adds the 1×c row vector bias to every row of a.
func (t *Tape) AddBias(a, bias *Node) *Node {
	v := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.AddBiasIntoCtx(t.kc, v, a.Value, bias.Value)
	need := a.needGrad || bias.needGrad
	var out *Node
	out = t.newNode(v, need, func() {
		if a.needGrad {
			a.accum(out.grad)
		}
		if bias.needGrad {
			g := t.alloc(1, a.Value.Cols())
			out.grad.ColSumsInto(g)
			bias.accumOwned(g)
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

// Scale returns s*a.
func (t *Tape) Scale(s float64, a *Node) *Node {
	v := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.ScaleInto(v, s, a.Value)
	var out *Node
	out = t.newNode(v, a.needGrad, func() {
		if a.needGrad {
			g := t.alloc(a.Value.Rows(), a.Value.Cols())
			tensor.ScaleInto(g, s, out.grad)
			a.accumOwned(g)
		}
	})
	if !a.needGrad {
		out.back = nil
	}
	return out
}

// Sub returns a-b.
func (t *Tape) Sub(a, b *Node) *Node {
	return t.Add(a, t.Scale(-1, b))
}

// Mul returns the elementwise product a*b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.MulInto(v, a.Value, b.Value)
	need := a.needGrad || b.needGrad
	var out *Node
	out = t.newNode(v, need, func() {
		if a.needGrad {
			g := t.alloc(a.Value.Rows(), a.Value.Cols())
			tensor.MulInto(g, out.grad, b.Value)
			a.accumOwned(g)
		}
		if b.needGrad {
			g := t.alloc(b.Value.Rows(), b.Value.Cols())
			tensor.MulInto(g, out.grad, a.Value)
			b.accumOwned(g)
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

// ConcatCols concatenates nodes horizontally; gradients split back.
func (t *Tape) ConcatCols(parts ...*Node) *Node {
	vals := make([]*tensor.Dense, len(parts))
	need := false
	rows, totalCols := 0, 0
	for i, p := range parts {
		vals[i] = p.Value
		if i == 0 {
			rows = p.Value.Rows()
		}
		totalCols += p.Value.Cols()
		need = need || p.needGrad
	}
	v := t.alloc(rows, totalCols)
	tensor.ConcatColsIntoCtx(t.kc, v, vals...)
	var out *Node
	out = t.newNode(v, need, func() {
		off := 0
		for _, p := range parts {
			w := p.Value.Cols()
			if p.needGrad {
				g := t.alloc(rows, w)
				tensor.ExtractColsInto(g, out.grad, off)
				p.accumOwned(g)
			}
			off += w
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

// GatherRows selects rows of x at idx: out[i] = x[idx[i]].
// Backward scatter-adds the incoming gradient into x's rows.
func (t *Tape) GatherRows(x *Node, idx []int) *Node {
	v := t.alloc(len(idx), x.Value.Cols())
	tensor.GatherRowsIntoCtx(t.kc, v, x.Value, idx)
	var out *Node
	out = t.newNode(v, x.needGrad, func() {
		if x.needGrad {
			g := t.alloc(x.Value.Rows(), x.Value.Cols())
			tensor.ScatterAddRows(g, out.grad, idx)
			x.accumOwned(g)
		}
	})
	if !x.needGrad {
		out.back = nil
	}
	return out
}

// ScatterAddRows aggregates rows of x into an outRows-row output:
// out[idx[i]] += x[i]. This is the AGG step of message passing.
// Backward gathers the incoming gradient back to each source row.
func (t *Tape) ScatterAddRows(x *Node, idx []int, outRows int) *Node {
	v := t.alloc(outRows, x.Value.Cols())
	tensor.ScatterAddRows(v, x.Value, idx)
	var out *Node
	out = t.newNode(v, x.needGrad, func() {
		if x.needGrad {
			g := t.alloc(len(idx), x.Value.Cols())
			tensor.GatherRowsIntoCtx(t.kc, g, out.grad, idx)
			x.accumOwned(g)
		}
	})
	if !x.needGrad {
		out.back = nil
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	v := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.ApplyInto(v, a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	var out *Node
	out = t.newNode(v, a.needGrad, func() {
		if a.needGrad {
			g := t.alloc(v.Rows(), v.Cols())
			av, gd, og := a.Value.Data(), g.Data(), out.grad.Data()
			for i := range gd {
				if av[i] > 0 {
					gd[i] = og[i]
				}
			}
			a.accumOwned(g)
		}
	})
	if !a.needGrad {
		out.back = nil
	}
	return out
}

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.ApplyInto(v, a.Value, sigmoid)
	var out *Node
	out = t.newNode(v, a.needGrad, func() {
		if a.needGrad {
			g := t.alloc(v.Rows(), v.Cols())
			vd, gd, og := v.Data(), g.Data(), out.grad.Data()
			for i := range gd {
				gd[i] = og[i] * vd[i] * (1 - vd[i])
			}
			a.accumOwned(g)
		}
	})
	if !a.needGrad {
		out.back = nil
	}
	return out
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	v := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.ApplyInto(v, a.Value, math.Tanh)
	var out *Node
	out = t.newNode(v, a.needGrad, func() {
		if a.needGrad {
			g := t.alloc(v.Rows(), v.Cols())
			vd, gd, og := v.Data(), g.Data(), out.grad.Data()
			for i := range gd {
				gd[i] = og[i] * (1 - vd[i]*vd[i])
			}
			a.accumOwned(g)
		}
	})
	if !a.needGrad {
		out.back = nil
	}
	return out
}

// RowSums reduces each row to its sum, producing an n×1 node.
func (t *Tape) RowSums(a *Node) *Node {
	v := t.alloc(a.Value.Rows(), 1)
	a.Value.RowSumsInto(v)
	var out *Node
	out = t.newNode(v, a.needGrad, func() {
		if a.needGrad {
			g := t.alloc(a.Value.Rows(), a.Value.Cols())
			og := out.grad.Data()
			for i := 0; i < g.Rows(); i++ {
				row := g.Row(i)
				for j := range row {
					row[j] = og[i]
				}
			}
			a.accumOwned(g)
		}
	})
	if !a.needGrad {
		out.back = nil
	}
	return out
}

// Mean reduces all elements to their mean as a 1×1 node.
func (t *Tape) Mean(a *Node) *Node {
	n := float64(a.Value.Size())
	v := t.alloc(1, 1)
	v.Set(0, 0, a.Value.Mean())
	var out *Node
	out = t.newNode(v, a.needGrad, func() {
		if a.needGrad {
			g := t.alloc(a.Value.Rows(), a.Value.Cols())
			g.Fill(out.grad.At(0, 0) / n)
			a.accumOwned(g)
		}
	})
	if !a.needGrad {
		out.back = nil
	}
	return out
}

// Sum reduces all elements to their sum as a 1×1 node.
func (t *Tape) Sum(a *Node) *Node {
	v := t.alloc(1, 1)
	v.Set(0, 0, a.Value.Sum())
	var out *Node
	out = t.newNode(v, a.needGrad, func() {
		if a.needGrad {
			g := t.alloc(a.Value.Rows(), a.Value.Cols())
			g.Fill(out.grad.At(0, 0))
			a.accumOwned(g)
		}
	})
	if !a.needGrad {
		out.back = nil
	}
	return out
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies the learned 1×c gain and bias, matching the LayerNorm used
// inside the acorn MLP blocks.
func (t *Tape) LayerNorm(a, gain, bias *Node, eps float64) *Node {
	rows, cols := a.Value.Rows(), a.Value.Cols()
	if gain.Value.Rows() != 1 || gain.Value.Cols() != cols || bias.Value.Rows() != 1 || bias.Value.Cols() != cols {
		panic(fmt.Sprintf("autograd: LayerNorm gain/bias must be 1x%d", cols))
	}
	norm := t.alloc(rows, cols) // xhat
	v := t.alloc(rows, cols)
	invStd := t.allocF64(rows)
	cf := float64(cols)
	gd, bd := gain.Value.Data(), bias.Value.Data()
	for i := 0; i < rows; i++ {
		row := a.Value.Row(i)
		mean := 0.0
		for _, x := range row {
			mean += x
		}
		mean /= cf
		variance := 0.0
		for _, x := range row {
			d := x - mean
			variance += d * d
		}
		variance /= cf
		is := 1 / math.Sqrt(variance+eps)
		invStd[i] = is
		nRow, vRow := norm.Row(i), v.Row(i)
		for j, x := range row {
			nRow[j] = (x - mean) * is
			vRow[j] = nRow[j]*gd[j] + bd[j]
		}
	}
	need := a.needGrad || gain.needGrad || bias.needGrad
	var out *Node
	out = t.newNode(v, need, func() {
		og := out.grad
		if gain.needGrad {
			g := t.alloc(1, cols)
			ggd := g.Data()
			for i := 0; i < rows; i++ {
				oRow, nRow := og.Row(i), norm.Row(i)
				for j := range ggd {
					ggd[j] += oRow[j] * nRow[j]
				}
			}
			gain.accumOwned(g)
		}
		if bias.needGrad {
			g := t.alloc(1, cols)
			og.ColSumsInto(g)
			bias.accumOwned(g)
		}
		if a.needGrad {
			g := t.alloc(rows, cols)
			for i := 0; i < rows; i++ {
				oRow, nRow, gRow := og.Row(i), norm.Row(i), g.Row(i)
				// dxhat = og * gain
				sumD, sumDN := 0.0, 0.0
				for j := range gRow {
					d := oRow[j] * gd[j]
					gRow[j] = d
					sumD += d
					sumDN += d * nRow[j]
				}
				is := invStd[i]
				for j := range gRow {
					gRow[j] = is * (gRow[j] - sumD/cf - nRow[j]*sumDN/cf)
				}
			}
			a.accumOwned(g)
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
