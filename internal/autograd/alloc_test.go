package autograd

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// buildStep runs one representative forward+backward (a 2-layer MLP with
// gather/scatter message passing, like a miniature GNN step) on the given
// tape and returns the parameter gradients.
func buildStep(t *Tape, w1, w2 *Param, x *tensor.Dense, idx []int, labels []float64) float64 {
	h := t.ReLU(t.MatMul(t.Constant(x), t.Use(w1)))
	gathered := t.GatherRows(h, idx)
	agg := t.ScatterAddRows(gathered, idx, x.Rows())
	cat := t.ConcatCols(h, agg)
	logits := t.MatMul(cat, t.Use(w2))
	loss := t.BCEWithLogits(logits, labels, 1.5)
	t.Backward(loss)
	return loss.Value.At(0, 0)
}

func stepFixture() (w1, w2 *Param, x *tensor.Dense, idx []int, labels []float64) {
	r := rng.New(42)
	w1 = NewParam("w1", tensor.RandN(r, 6, 8, 0.5))
	w2 = NewParam("w2", tensor.RandN(r, 16, 1, 0.5))
	x = tensor.RandN(r, 10, 6, 1)
	idx = []int{0, 3, 9, 3, 5, 1, 7, 7, 2, 4}
	labels = make([]float64, 10)
	for i := range labels {
		if r.Float64() > 0.5 {
			labels[i] = 1
		}
	}
	return
}

// TestArenaTapeMatchesHeapTape proves the pooled tape is bit-identical
// to the heap tape: same loss, same parameter gradients.
func TestArenaTapeMatchesHeapTape(t *testing.T) {
	w1a, w2a, x, idx, labels := stepFixture()
	w1b := NewParam("w1", w1a.Value.Clone())
	w2b := NewParam("w2", w2a.Value.Clone())

	lossHeap := buildStep(NewTape(), w1a, w2a, x, idx, labels)

	arena := workspace.NewArena()
	defer arena.Reset()
	lossArena := buildStep(NewTapeArena(arena), w1b, w2b, x, idx, labels)

	if lossHeap != lossArena {
		t.Fatalf("loss differs: heap %v arena %v", lossHeap, lossArena)
	}
	if w1a.Grad.MaxAbsDiff(w1b.Grad) != 0 || w2a.Grad.MaxAbsDiff(w2b.Grad) != 0 {
		t.Fatal("arena-tape gradients not bit-identical to heap-tape gradients")
	}
}

// TestArenaTapeReuseAcrossSteps proves a Reset tape + arena pair keeps
// producing correct gradients when reused (the trainer's steady state).
func TestArenaTapeReuseAcrossSteps(t *testing.T) {
	w1, w2, x, idx, labels := stepFixture()
	w1ref := NewParam("w1", w1.Value.Clone())
	w2ref := NewParam("w2", w2.Value.Clone())

	arena := workspace.NewArena()
	defer arena.Reset()
	tape := NewTapeArena(arena)
	for step := 0; step < 5; step++ {
		w1.ZeroGrad()
		w2.ZeroGrad()
		tape.Reset()
		buildStep(tape, w1, w2, x, idx, labels)
		arena.Reset()

		w1ref.ZeroGrad()
		w2ref.ZeroGrad()
		buildStep(NewTape(), w1ref, w2ref, x, idx, labels)
		if w1.Grad.MaxAbsDiff(w1ref.Grad) != 0 || w2.Grad.MaxAbsDiff(w2ref.Grad) != 0 {
			t.Fatalf("step %d: reused arena tape diverged from fresh heap tape", step)
		}
	}
}

// TestTrainStepAllocationBudget pins the steady-state allocation budget
// of a full forward+backward step on a warm arena tape. Buffer memory is
// entirely pooled; what remains is per-op bookkeeping — Dense headers
// (32 B each, pointing at pooled storage), backward closures, and one
// node-slab chunk every 128 nodes — a small constant per recorded op,
// independent of tensor sizes. The budget below is 4 allocations per
// node plus slack; the pre-workspace implementation also heap-allocated
// every activation, gradient, and scratch *buffer* (unbounded bytes:
// ~100 KiB per step at this toy size, megabytes at production size).
func TestTrainStepAllocationBudget(t *testing.T) {
	w1, w2, x, idx, labels := stepFixture()
	arena := workspace.NewArena()
	defer arena.Reset()
	tape := NewTapeArena(arena)
	// Warm pools, slab, and list capacities.
	for i := 0; i < 3; i++ {
		tape.Reset()
		buildStep(tape, w1, w2, x, idx, labels)
		arena.Reset()
	}
	nodes := 0
	allocs := testing.AllocsPerRun(50, func() {
		tape.Reset()
		buildStep(tape, w1, w2, x, idx, labels)
		nodes = tape.NumNodes()
		arena.Reset()
	})
	budget := float64(4*nodes + 10)
	if allocs > budget {
		t.Fatalf("warm train step allocated %.1f per run for %d nodes, budget %.0f", allocs, nodes, budget)
	}
}
