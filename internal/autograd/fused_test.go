package autograd

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// The fused tape ops must be bitwise interchangeable with the unfused
// chains they replace — same loss, same parameter gradients — at every
// intra-op worker count (1, 2, 4, and an odd 7 to catch partition edge
// cases).

var fusedWorkers = []int{1, 2, 4, 7}

// fusedFixture builds a miniature GNN-shaped problem: gather two
// endpoints, run a biased ReLU layer, aggregate messages back to the
// vertices (the same value feeding both aggregations, which exercises
// the fused gradient-accumulate backward), and reduce to a loss.
func fusedFixture() (w *Param, bias *Param, x *tensor.Dense, e *tensor.Dense, src, dst []int, labels []float64) {
	r := rng.New(77)
	x = tensor.RandN(r, 13, 5, 1)
	e = tensor.RandN(r, 31, 4, 1)
	src = make([]int, 31)
	dst = make([]int, 31)
	for i := range src {
		src[i] = r.Intn(13)
		dst[i] = r.Intn(13)
	}
	w = NewParam("w", tensor.RandN(r, 4+5+5, 6, 0.5))
	bias = NewParam("b", tensor.RandN(r, 1, 6, 0.5))
	labels = make([]float64, 13)
	for i := range labels {
		if r.Float64() > 0.5 {
			labels[i] = 1
		}
	}
	return
}

func runFused(t *Tape, w, bias *Param, x, e *tensor.Dense, src, dst []int, labels []float64) float64 {
	xn, en := t.Constant(x), t.Constant(e)
	in := t.GatherConcat3(en, nil, xn, src, xn, dst)
	h := t.AddBiasReLU(t.MatMul(in, t.Use(w)), t.Use(bias))
	msrc := t.AggregateRows(h, src, x.Rows())
	mdst := t.AggregateRows(h, dst, x.Rows())
	score := t.RowSums(t.Add(msrc, mdst))
	loss := t.BCEWithLogits(score, labels, 1.25)
	t.Backward(loss)
	return loss.Value.At(0, 0)
}

func runUnfused(t *Tape, w, bias *Param, x, e *tensor.Dense, src, dst []int, labels []float64) float64 {
	xn, en := t.Constant(x), t.Constant(e)
	in := t.ConcatCols(en, t.GatherRows(xn, src), t.GatherRows(xn, dst))
	h := t.ReLU(t.AddBias(t.MatMul(in, t.Use(w)), t.Use(bias)))
	msrc := t.ScatterAddRows(h, src, x.Rows())
	mdst := t.ScatterAddRows(h, dst, x.Rows())
	score := t.RowSums(t.Add(msrc, mdst))
	loss := t.BCEWithLogits(score, labels, 1.25)
	t.Backward(loss)
	return loss.Value.At(0, 0)
}

func TestFusedOpsMatchUnfusedBitwise(t *testing.T) {
	w1, b1, x, e, src, dst, labels := fusedFixture()
	lossRef := runUnfused(NewTape(), w1, b1, x, e, src, dst, labels)

	for _, workers := range fusedWorkers {
		w2 := NewParam("w", w1.Value.Clone())
		b2 := NewParam("b", b1.Value.Clone())
		arena := workspace.NewArena()
		tape := NewTapeArena(arena)
		tape.SetKernels(kernels.Context{Workers: workers})
		loss := runFused(tape, w2, b2, x, e, src, dst, labels)
		if loss != lossRef {
			t.Fatalf("workers=%d: fused loss %v != unfused %v", workers, loss, lossRef)
		}
		if w1.Grad.MaxAbsDiff(w2.Grad) != 0 || b1.Grad.MaxAbsDiff(b2.Grad) != 0 {
			t.Fatalf("workers=%d: fused gradients not bit-identical to unfused", workers)
		}
		arena.Reset()
	}
}

// TestAggregateRowsMatchesScatterAddRows isolates the AGG swap: forward
// values and input gradients must be bitwise equal to the serial
// scatter at every worker count, including when the input already holds
// a gradient (the fused SpMMAdd accumulate path).
func TestAggregateRowsMatchesScatterAddRows(t *testing.T) {
	r := rng.New(78)
	x := tensor.RandN(r, 41, 7, 1)
	idx := make([]int, 41)
	for i := range idx {
		idx[i] = r.Intn(11)
	}
	labels := make([]float64, 11)
	for i := range labels {
		if r.Float64() > 0.4 {
			labels[i] = 1
		}
	}

	wRef := NewParam("w", tensor.RandN(r, 7, 7, 0.5))
	tRef := NewTape()
	hRef := tRef.MatMul(tRef.Constant(x), tRef.Use(wRef))
	// h feeds two aggregations so backward accumulates into h twice.
	aggRef := tRef.Add(tRef.ScatterAddRows(hRef, idx, 11), tRef.ScatterAddRows(hRef, idx, 11))
	lossRef := tRef.BCEWithLogits(tRef.RowSums(aggRef), labels, 1)
	tRef.Backward(lossRef)

	for _, workers := range fusedWorkers {
		w := NewParam("w", wRef.Value.Clone())
		tape := NewTape()
		tape.SetKernels(kernels.Context{Workers: workers})
		h := tape.MatMul(tape.Constant(x), tape.Use(w))
		agg := tape.Add(tape.AggregateRows(h, idx, 11), tape.AggregateRows(h, idx, 11))
		loss := tape.BCEWithLogits(tape.RowSums(agg), labels, 1)
		tape.Backward(loss)

		if loss.Value.At(0, 0) != lossRef.Value.At(0, 0) {
			t.Fatalf("workers=%d: AggregateRows loss differs", workers)
		}
		if agg.Value.MaxAbsDiff(aggRef.Value) != 0 {
			t.Fatalf("workers=%d: AggregateRows forward differs", workers)
		}
		if w.Grad.MaxAbsDiff(wRef.Grad) != 0 {
			t.Fatalf("workers=%d: AggregateRows gradient differs", workers)
		}
	}
}

// TestFusedStepAllocationBudget extends the steady-state allocation
// budget to a warm arena tape built from the fused ops: buffer memory
// (including the incidence matrices of AggregateRows) stays entirely
// pooled, leaving only per-op bookkeeping.
func TestFusedStepAllocationBudget(t *testing.T) {
	w, bias, x, e, src, dst, labels := fusedFixture()
	arena := workspace.NewArena()
	defer arena.Reset()
	tape := NewTapeArena(arena)
	for i := 0; i < 3; i++ {
		tape.Reset()
		runFused(tape, w, bias, x, e, src, dst, labels)
		arena.Reset()
	}
	nodes := 0
	allocs := testing.AllocsPerRun(50, func() {
		tape.Reset()
		runFused(tape, w, bias, x, e, src, dst, labels)
		nodes = tape.NumNodes()
		arena.Reset()
	})
	budget := float64(4*nodes + 10)
	if allocs > budget {
		t.Fatalf("warm fused step allocated %.1f per run for %d nodes, budget %.0f", allocs, nodes, budget)
	}
}
