package autograd

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// This file records the fused tape ops. Each one computes exactly the
// arithmetic of the unfused chain it replaces, in the same order, so
// losses and gradients are bitwise identical to the composed ops — the
// fusion removes intermediate materializations (and their tape nodes)
// in both the forward and backward passes.

// AddBiasReLU computes max(0, a + bias) in one pass, fusing
// AddBias + ReLU — the hidden-layer chain of every MLP block. bias is
// a 1×cols row vector. Backward masks the incoming gradient by the
// activation sign once and feeds both parents from that single pass.
func (t *Tape) AddBiasReLU(a, bias *Node) *Node {
	rows, cols := a.Value.Rows(), a.Value.Cols()
	v := t.alloc(rows, cols)
	tensor.AddBiasReLUIntoCtx(t.kc, v, a.Value, bias.Value)
	need := a.needGrad || bias.needGrad
	var out *Node
	out = t.newNode(v, need, func() {
		og := out.grad
		if a.needGrad {
			g := t.alloc(rows, cols)
			vd, gd, ogd := v.Data(), g.Data(), og.Data()
			for i := range gd {
				if vd[i] > 0 {
					gd[i] = ogd[i]
				}
			}
			if bias.needGrad {
				gb := t.alloc(1, cols)
				g.ColSumsInto(gb)
				bias.accumOwned(gb)
			}
			a.accumOwned(g)
			return
		}
		if bias.needGrad {
			gb := t.alloc(1, cols)
			vd, ogd, gbd := v.Data(), og.Data(), gb.Data()
			for i := 0; i < rows; i++ {
				off := i * cols
				for j := 0; j < cols; j++ {
					if vd[off+j] > 0 {
						gbd[j] += ogd[off+j]
					}
				}
			}
			bias.accumOwned(gb)
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

// GatherConcat3 fuses ConcatCols over three segments, each either a
// node's rows taken directly (idx nil) or gathered at idx:
// out[i] = [A(i) ‖ B(i) ‖ C(i)]. This is the edge-feature assembly of
// the Interaction GNN ([Y' ‖ X'[src] ‖ X'[dst]]) and the edge filter
// ([X[src] ‖ X[dst] ‖ E]) — one pass instead of two gathers plus a
// concat. Backward extracts each segment's column band straight out of
// the incoming gradient: direct segments copy it, gathered segments
// scatter-add it into the parent's shape.
func (t *Tape) GatherConcat3(a *Node, aIdx []int, b *Node, bIdx []int, c *Node, cIdx []int) *Node {
	rows := len(aIdx)
	if aIdx == nil {
		rows = a.Value.Rows()
	}
	v := t.alloc(rows, a.Value.Cols()+b.Value.Cols()+c.Value.Cols())
	tensor.GatherConcat3IntoCtx(t.kc, v, a.Value, aIdx, b.Value, bIdx, c.Value, cIdx)
	need := a.needGrad || b.needGrad || c.needGrad
	var out *Node
	out = t.newNode(v, need, func() {
		og := out.grad
		off := 0
		for _, seg := range [3]struct {
			n   *Node
			idx []int
		}{{a, aIdx}, {b, bIdx}, {c, cIdx}} {
			w := seg.n.Value.Cols()
			if seg.n.needGrad {
				if seg.idx == nil {
					g := t.alloc(rows, w)
					tensor.ExtractColsInto(g, og, off)
					seg.n.accumOwned(g)
				} else {
					g := t.alloc(seg.n.Value.Rows(), w)
					tensor.ScatterAddRowsBand(g, og, off, seg.idx)
					seg.n.accumOwned(g)
				}
			}
			off += w
		}
	})
	if !need {
		out.back = nil
	}
	return out
}

// AggregateRows is ScatterAddRows with a parallel forward: it builds
// the incidence matrix S (S[idx[e], e] = 1) from the tape's arena and
// computes out = S×x as a row-partitioned SpMM, so the AGG step of
// message passing scales across cores instead of running one serial
// scatter. Per output row the SpMM accumulates in ascending e — the
// exact order ScatterAddRows adds in — so the result is bitwise
// identical to t.ScatterAddRows(x, idx, outRows) at every worker count.
//
// Backward gathers the incoming gradient back to each source row
// (parallel); when the source already holds a gradient (x feeding both
// endpoint aggregations), the gather and the accumulation fuse into one
// in-place SpMMAdd pass over a one-nonzero-per-row gather matrix.
func (t *Tape) AggregateRows(x *Node, idx []int, outRows int) *Node {
	m := len(idx)
	cols := x.Value.Cols()
	for _, v := range idx {
		if v < 0 || v >= outRows {
			panic(fmt.Sprintf("autograd: AggregateRows index %d out of %d rows", v, outRows))
		}
	}
	v := t.alloc(outRows, cols)
	if band := kernels.ShapeFor[float64](t.kc).Band; band > 0 && m > 0 {
		// Column-banded incidence SpMM: bitwise identical to the flat
		// path (see sparse/blocked.go), so the training trajectory is
		// unchanged — only the cache behaviour of the AGG step is.
		if band > m {
			band = m
		}
		nb := (m + band - 1) / band
		s := &sparse.BlockedCSROf[float64]{
			RowPtr: t.allocInt(nb * (outRows + 1)),
			ColIdx: t.allocInt(m),
			Vals:   t.allocF64(m),
		}
		sparse.BlockedIncidenceInto(s, outRows, idx, band)
		sparse.BlockedSpMMIntoCtx(t.kc, v, s, x.Value)
	} else {
		s := &sparse.CSR{
			RowPtr: t.allocInt(outRows + 1),
			ColIdx: t.allocInt(m),
			Vals:   t.allocF64(m),
		}
		sparse.IncidenceInto(s, outRows, idx)
		sparse.SpMMIntoCtx(t.kc, v, s, x.Value)
	}
	var out *Node
	out = t.newNode(v, x.needGrad, func() {
		if !x.needGrad {
			return
		}
		if x.grad == nil {
			g := t.alloc(m, cols)
			tensor.GatherRowsIntoCtx(t.kc, g, out.grad, idx)
			x.accumOwned(g)
			return
		}
		// Fused gather + accumulate: x.grad[e] += out.grad[idx[e]] in one
		// parallel pass. The gather matrix has exactly row e → (idx[e], 1),
		// and SpMMAdd may write in place over its residual.
		gather := &sparse.CSR{
			RowsN:  m,
			ColsN:  outRows,
			RowPtr: t.allocInt(m + 1),
			ColIdx: idx,
			Vals:   t.allocF64(m),
		}
		for i := range gather.RowPtr {
			gather.RowPtr[i] = i
		}
		for i := range gather.Vals {
			gather.Vals[i] = 1
		}
		sparse.SpMMAddIntoCtx(t.kc, x.grad, gather, out.grad, x.grad)
	})
	if !x.needGrad {
		out.back = nil
	}
	return out
}
