package autograd

import (
	"fmt"
	"math"
)

// BCEWithLogits computes the mean binary cross-entropy between logits
// (m×1) and targets (length m, values in {0,1}), with positive examples
// weighted by posWeight (1 for no reweighting). It is numerically stable:
// loss_i = w_i * (max(z,0) - z*y + log(1+exp(-|z|))) with
// w_i = posWeight for y=1 and 1 for y=0, matching PyTorch's
// BCEWithLogitsLoss(pos_weight=...) up to the same mean reduction.
func (t *Tape) BCEWithLogits(logits *Node, targets []float64, posWeight float64) *Node {
	return t.bceWithLogits(logits, targets, posWeight, true)
}

// BCEWithLogitsSum is BCEWithLogits with sum reduction: the per-edge
// weighted losses are added but never divided by the count. The
// distributed trainer uses it so micro-block losses can be combined and
// normalized by the GLOBAL edge count in one canonical order — the mean
// of means over unevenly sized shards is both statistically wrong and
// dependent on the shard layout, which would break cross-rank-count
// bitwise reproducibility.
func (t *Tape) BCEWithLogitsSum(logits *Node, targets []float64, posWeight float64) *Node {
	return t.bceWithLogits(logits, targets, posWeight, false)
}

func (t *Tape) bceWithLogits(logits *Node, targets []float64, posWeight float64, mean bool) *Node {
	m := logits.Value.Rows()
	if logits.Value.Cols() != 1 || len(targets) != m {
		panic(fmt.Sprintf("autograd: BCEWithLogits wants m x 1 logits and m targets, got %dx%d and %d",
			logits.Value.Rows(), logits.Value.Cols(), len(targets)))
	}
	z := logits.Value.Data()
	total := 0.0
	for i, y := range targets {
		w := 1.0
		if y > 0.5 {
			w = posWeight
		}
		zi := z[i]
		l := math.Max(zi, 0) - zi*y + math.Log1p(math.Exp(-math.Abs(zi)))
		total += w * l
	}
	norm := 1.0
	if mean {
		norm = float64(m)
	}
	v := t.alloc(1, 1)
	v.Set(0, 0, total/norm)
	var out *Node
	out = t.newNode(v, logits.needGrad, func() {
		if !logits.needGrad {
			return
		}
		g := t.alloc(m, 1)
		gd := g.Data()
		scale := out.grad.At(0, 0) / norm
		for i, y := range targets {
			w := 1.0
			if y > 0.5 {
				w = posWeight
			}
			gd[i] = scale * w * (sigmoid(z[i]) - y)
		}
		logits.accumOwned(g)
	})
	if !logits.needGrad {
		out.back = nil
	}
	return out
}

// HingePairLoss is the contrastive metric-learning loss used by the
// embedding stage, operating on squared pair distances d2 (m×1):
//
//	loss_i = y_i * d2_i + (1-y_i) * max(0, margin² - d2_i)
//
// Positive pairs (same track, y=1) are pulled together, negative pairs are
// pushed beyond the margin. Mean reduction.
func (t *Tape) HingePairLoss(d2 *Node, labels []float64, margin float64) *Node {
	m := d2.Value.Rows()
	if d2.Value.Cols() != 1 || len(labels) != m {
		panic("autograd: HingePairLoss wants m x 1 distances and m labels")
	}
	m2 := margin * margin
	d := d2.Value.Data()
	total := 0.0
	for i, y := range labels {
		if y > 0.5 {
			total += d[i]
		} else if d[i] < m2 {
			total += m2 - d[i]
		}
	}
	v := t.alloc(1, 1)
	v.Set(0, 0, total/float64(m))
	var out *Node
	out = t.newNode(v, d2.needGrad, func() {
		if !d2.needGrad {
			return
		}
		g := t.alloc(m, 1)
		gd := g.Data()
		scale := out.grad.At(0, 0) / float64(m)
		for i, y := range labels {
			if y > 0.5 {
				gd[i] = scale
			} else if d[i] < m2 {
				gd[i] = -scale
			}
		}
		d2.accumOwned(g)
	})
	if !d2.needGrad {
		out.back = nil
	}
	return out
}
