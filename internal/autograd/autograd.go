// Package autograd implements reverse-mode automatic differentiation over
// dense tensors. It replaces the role PyTorch's autograd plays in the
// paper's pipeline: every training step builds a fresh tape of operations
// whose Backward pass accumulates gradients into persistent Params.
//
// The op set is exactly what the Exa.TrkX pipeline needs: affine layers,
// activations, column concatenation (Interaction-GNN residuals), row
// gather/scatter (message passing on edges), layer normalization, and the
// losses used by the embedding, filter, and GNN stages.
package autograd

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a persistent trainable parameter. Gradients accumulate into
// Grad across a Backward pass; optimizers consume and zero them.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// NewParam allocates a parameter with a zeroed gradient buffer.
func NewParam(name string, value *tensor.Dense) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Rows(), value.Cols()),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Node is a value in the computation graph.
type Node struct {
	Value    *tensor.Dense
	grad     *tensor.Dense
	needGrad bool
	back     func() // propagates n.grad into parent grads; nil for leaves
}

// Grad returns the gradient accumulated at this node during Backward
// (nil if none flowed here).
func (n *Node) Grad() *tensor.Dense { return n.grad }

// accum adds g into the node's gradient, allocating lazily.
func (n *Node) accum(g *tensor.Dense) {
	if n.grad == nil {
		n.grad = g.Clone()
		return
	}
	n.grad.AddInPlace(g)
}

// Tape records operations for one forward pass. Tapes are single-use and
// not safe for concurrent mutation; each simulated device builds its own.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NumNodes reports how many nodes the tape recorded (activation count —
// used by the device-memory model).
func (t *Tape) NumNodes() int { return len(t.nodes) }

// ActivationElements returns the total number of float64 elements stored
// across all recorded node values. This is the quantity the paper's
// memory-skip logic reasons about: every intermediate must stay resident
// for the backward pass.
func (t *Tape) ActivationElements() int {
	total := 0
	for _, n := range t.nodes {
		total += n.Value.Size()
	}
	return total
}

func (t *Tape) newNode(v *tensor.Dense, needGrad bool, back func()) *Node {
	n := &Node{Value: v, needGrad: needGrad, back: back}
	t.nodes = append(t.nodes, n)
	return n
}

// Constant introduces a value that requires no gradient.
func (t *Tape) Constant(v *tensor.Dense) *Node {
	return t.newNode(v, false, nil)
}

// Use binds a persistent Param into this tape; Backward accumulates the
// parameter's gradient into p.Grad.
func (t *Tape) Use(p *Param) *Node {
	var n *Node
	n = t.newNode(p.Value, true, func() {
		p.Grad.AddInPlace(n.grad)
	})
	return n
}

// Backward seeds the gradient of loss (which must be 1×1) with 1 and
// propagates through the tape in reverse recording order.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		panic(fmt.Sprintf("autograd: Backward on non-scalar %dx%d", loss.Value.Rows(), loss.Value.Cols()))
	}
	seed := tensor.New(1, 1)
	seed.Set(0, 0, 1)
	loss.accum(seed)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.grad != nil && n.back != nil {
			n.back()
		}
	}
}
