// Package autograd implements reverse-mode automatic differentiation over
// dense tensors. It replaces the role PyTorch's autograd plays in the
// paper's pipeline: every training step builds a fresh tape of operations
// whose Backward pass accumulates gradients into persistent Params.
//
// The op set is exactly what the Exa.TrkX pipeline needs: affine layers,
// activations, column concatenation (Interaction-GNN residuals), row
// gather/scatter (message passing on edges), layer normalization, and the
// losses used by the embedding, filter, and GNN stages.
//
// Tapes can be bound to a workspace.Arena (NewTapeArena): every
// activation and gradient buffer the tape creates is then borrowed from
// the pooled workspace instead of the heap, and one arena reset after the
// optimizer step returns the entire step's memory. Node records
// themselves come from a chunked slab, so steady-state training allocates
// only the per-op backward closures.
package autograd

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Param is a persistent trainable parameter. Gradients accumulate into
// Grad across a Backward pass; optimizers consume and zero them.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// NewParam allocates a parameter with a zeroed gradient buffer.
func NewParam(name string, value *tensor.Dense) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Rows(), value.Cols()),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Node is a value in the computation graph.
type Node struct {
	Value    *tensor.Dense
	grad     *tensor.Dense
	needGrad bool
	back     func() // propagates n.grad into parent grads; nil for leaves
	param    *Param // set for Use nodes, for the param-grad-ready hook
	tp       *Tape
}

// Grad returns the gradient accumulated at this node during Backward
// (nil if none flowed here).
func (n *Node) Grad() *tensor.Dense { return n.grad }

// accum adds g into the node's gradient. The node does not take
// ownership of g: the first contribution is copied into a tape-owned
// buffer, so callers may pass shared tensors (e.g. a child's gradient).
func (n *Node) accum(g *tensor.Dense) {
	if n.grad == nil {
		n.grad = n.tp.alloc(g.Rows(), g.Cols())
		n.grad.CopyFrom(g)
		return
	}
	n.grad.AddInPlace(g)
}

// accumOwned is accum for freshly computed, exclusively owned buffers
// (always tape-allocated scratch): the first contribution is adopted
// without a copy. The caller must not mutate g afterwards.
func (n *Node) accumOwned(g *tensor.Dense) {
	if n.grad == nil {
		n.grad = g
		return
	}
	n.grad.AddInPlace(g)
}

// nodeChunkSize is how many Node records one slab chunk holds.
const nodeChunkSize = 128

// Tape records operations for one forward pass. Tapes are single-use and
// not safe for concurrent mutation; each simulated device builds its own.
// A tape may be Reset and reused for the next step to recycle its node
// bookkeeping (the value/grad buffers are recycled by the arena).
type Tape struct {
	nodes []*Node
	arena *workspace.Arena

	// kc is the intra-op worker budget every kernel recorded on this
	// tape runs under — forward ops and their backward closures alike.
	// The zero value means GOMAXPROCS; trainers that run several tapes
	// concurrently (DDP ranks, engine workers) set a divided budget so
	// rank-level and kernel-level parallelism compose without
	// oversubscription. Results are bitwise identical at every budget.
	kc kernels.Context

	// paramHook, when set, is invoked during Backward as soon as a
	// parameter's gradient is final — i.e. when the reverse sweep passes
	// the parameter's earliest Use node, after which no further
	// contribution can reach p.Grad. This is the signal bucketed gradient
	// synchronization overlaps communication with: a bucket's all-reduce
	// can start the moment its last parameter fires, while backward is
	// still computing earlier layers. The hook runs on the goroutine
	// executing Backward.
	paramHook func(p *Param)

	// Chunked node slab: records are handed out from chunks so Reset can
	// rewind and reuse them — a reused tape allocates no node storage at
	// steady state. Chunks are never moved once allocated, so *Node
	// pointers stay valid for the tape's (or reset cycle's) lifetime.
	chunks   [][]Node
	chunk    int // index of the chunk being filled
	chunkPos int // next free record in that chunk
}

// NewTape returns an empty tape allocating from the Go heap.
func NewTape() *Tape { return &Tape{} }

// NewTapeArena returns an empty tape whose activation and gradient
// buffers are borrowed from the arena. The caller owns the arena's
// lifecycle: values read off the tape (losses, scores) must be consumed
// before the arena is reset.
func NewTapeArena(a *workspace.Arena) *Tape { return &Tape{arena: a} }

// Arena returns the arena the tape allocates from (nil for heap tapes).
func (t *Tape) Arena() *workspace.Arena { return t.arena }

// SetKernels installs the intra-op worker budget for every subsequent
// op on this tape (forward and backward). It survives Reset, so a
// trainer configures it once per rank.
func (t *Tape) SetKernels(kc kernels.Context) { t.kc = kc }

// Kernels returns the tape's intra-op worker budget.
func (t *Tape) Kernels() kernels.Context { return t.kc }

// Reset clears the recorded operations so the tape can be reused for the
// next step, rewinding the node slab and retaining its chunks and the
// list capacity. Consumed node records are zeroed so the previous step's
// backward closures and buffer headers (whose pooled storage the arena
// has recycled) are not kept reachable. It does NOT release buffer
// memory — reset the backing arena for that.
func (t *Tape) Reset() {
	for i := range t.nodes {
		t.nodes[i] = nil
	}
	t.nodes = t.nodes[:0]
	for c := 0; c <= t.chunk && c < len(t.chunks); c++ {
		upTo := nodeChunkSize
		if c == t.chunk {
			upTo = t.chunkPos
		}
		clear(t.chunks[c][:upTo])
	}
	t.chunk, t.chunkPos = 0, 0
}

// alloc returns a zeroed tape-owned matrix, pooled when an arena is
// attached.
func (t *Tape) alloc(rows, cols int) *tensor.Dense {
	return tensor.NewFrom(t.arena, rows, cols)
}

// allocF64 returns a zeroed tape-owned scratch vector.
func (t *Tape) allocF64(n int) []float64 {
	if t.arena == nil {
		return make([]float64, n)
	}
	return t.arena.F64(n)
}

// allocInt returns a zeroed tape-owned scratch int vector.
func (t *Tape) allocInt(n int) []int {
	if t.arena == nil {
		return make([]int, n)
	}
	return t.arena.Int(n)
}

// NumNodes reports how many nodes the tape recorded (activation count —
// used by the device-memory model).
func (t *Tape) NumNodes() int { return len(t.nodes) }

// ActivationElements returns the total number of float64 elements stored
// across all recorded node values. This is the quantity the paper's
// memory-skip logic reasons about: every intermediate must stay resident
// for the backward pass.
func (t *Tape) ActivationElements() int {
	total := 0
	for _, n := range t.nodes {
		total += n.Value.Size()
	}
	return total
}

func (t *Tape) newNode(v *tensor.Dense, needGrad bool, back func()) *Node {
	if t.chunk == len(t.chunks) {
		t.chunks = append(t.chunks, make([]Node, nodeChunkSize))
	}
	n := &t.chunks[t.chunk][t.chunkPos]
	t.chunkPos++
	if t.chunkPos == nodeChunkSize {
		t.chunk++
		t.chunkPos = 0
	}
	*n = Node{Value: v, needGrad: needGrad, back: back, tp: t}
	t.nodes = append(t.nodes, n)
	return n
}

// Constant introduces a value that requires no gradient.
func (t *Tape) Constant(v *tensor.Dense) *Node {
	return t.newNode(v, false, nil)
}

// Use binds a persistent Param into this tape; Backward accumulates the
// parameter's gradient into p.Grad.
func (t *Tape) Use(p *Param) *Node {
	var n *Node
	n = t.newNode(p.Value, true, func() {
		p.Grad.AddInPlace(n.grad)
	})
	n.param = p
	return n
}

// SetParamGradHook installs (or, with nil, removes) the
// parameter-gradient-ready callback — see the paramHook field. The hook
// persists across Reset; callers arming it for one step should clear it
// afterwards.
func (t *Tape) SetParamGradHook(h func(p *Param)) { t.paramHook = h }

// Backward seeds the gradient of loss (which must be 1×1) with 1 and
// propagates through the tape in reverse recording order.
func (t *Tape) Backward(loss *Node) {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		panic(fmt.Sprintf("autograd: Backward on non-scalar %dx%d", loss.Value.Rows(), loss.Value.Cols()))
	}
	seed := t.alloc(1, 1)
	seed.Set(0, 0, 1)
	loss.accumOwned(seed)
	// With a param hook installed, count the remaining Use nodes per
	// parameter so the hook fires exactly once, at the earliest-recorded
	// use (the final gradient contribution in reverse order) — even for
	// parameters bound multiple times or left without gradient flow.
	var remaining map[*Param]int
	if t.paramHook != nil {
		remaining = make(map[*Param]int)
		for _, n := range t.nodes {
			if n.param != nil {
				remaining[n.param]++
			}
		}
	}
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.grad != nil && n.back != nil {
			n.back()
		}
		if remaining != nil && n.param != nil {
			remaining[n.param]--
			if remaining[n.param] == 0 {
				t.paramHook(n.param)
			}
		}
	}
}
