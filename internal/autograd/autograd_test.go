package autograd

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// numGrad computes a central-difference gradient of f with respect to p.
func numGrad(f func() float64, p *Param, h float64) *tensor.Dense {
	g := tensor.New(p.Value.Rows(), p.Value.Cols())
	d := p.Value.Data()
	for i := range d {
		orig := d[i]
		d[i] = orig + h
		fp := f()
		d[i] = orig - h
		fm := f()
		d[i] = orig
		g.Data()[i] = (fp - fm) / (2 * h)
	}
	return g
}

// checkGrad runs forward() once for the analytic gradient and compares it
// against the numerical gradient for every parameter.
func checkGrad(t *testing.T, name string, params []*Param, forward func() (*Tape, *Node)) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	tape, loss := forward()
	tape.Backward(loss)
	f := func() float64 {
		_, l := forward()
		return l.Value.At(0, 0)
	}
	for _, p := range params {
		want := numGrad(f, p, 1e-6)
		if diff := p.Grad.MaxAbsDiff(want); diff > 1e-4 {
			t.Fatalf("%s: param %s gradient mismatch %v\nanalytic %v\nnumeric %v",
				name, p.Name, diff, p.Grad, want)
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	r := rng.New(1)
	a := NewParam("a", tensor.RandN(r, 3, 4, 1))
	b := NewParam("b", tensor.RandN(r, 4, 2, 1))
	checkGrad(t, "matmul", []*Param{a, b}, func() (*Tape, *Node) {
		tp := NewTape()
		out := tp.MatMul(tp.Use(a), tp.Use(b))
		return tp, tp.Mean(tp.Mul(out, out))
	})
}

func TestAddBiasGrad(t *testing.T) {
	r := rng.New(2)
	w := NewParam("w", tensor.RandN(r, 5, 3, 1))
	bias := NewParam("b", tensor.RandN(r, 1, 3, 1))
	checkGrad(t, "addbias", []*Param{w, bias}, func() (*Tape, *Node) {
		tp := NewTape()
		out := tp.AddBias(tp.Use(w), tp.Use(bias))
		return tp, tp.Mean(tp.Mul(out, out))
	})
}

func TestConcatColsGrad(t *testing.T) {
	r := rng.New(3)
	a := NewParam("a", tensor.RandN(r, 4, 2, 1))
	b := NewParam("b", tensor.RandN(r, 4, 3, 1))
	mix := tensor.RandN(r, 5, 1, 1)
	checkGrad(t, "concat", []*Param{a, b}, func() (*Tape, *Node) {
		tp := NewTape()
		cat := tp.ConcatCols(tp.Use(a), tp.Use(b))
		return tp, tp.Mean(tp.Mul(tp.MatMul(cat, tp.Constant(mix)), tp.MatMul(cat, tp.Constant(mix))))
	})
}

func TestGatherScatterGrad(t *testing.T) {
	r := rng.New(4)
	x := NewParam("x", tensor.RandN(r, 6, 3, 1))
	idx := []int{0, 2, 2, 5, 1, 0, 3}
	checkGrad(t, "gather-scatter", []*Param{x}, func() (*Tape, *Node) {
		tp := NewTape()
		g := tp.GatherRows(tp.Use(x), idx)
		agg := tp.ScatterAddRows(g, []int{0, 1, 1, 2, 0, 3, 3}, 4)
		return tp, tp.Mean(tp.Mul(agg, agg))
	})
}

func TestActivationGrads(t *testing.T) {
	r := rng.New(5)
	// Keep values away from the ReLU kink for clean finite differences.
	base := tensor.RandN(r, 4, 4, 1)
	for i, v := range base.Data() {
		if math.Abs(v) < 0.05 {
			base.Data()[i] = 0.1
		}
	}
	x := NewParam("x", base)
	acts := map[string]func(*Tape, *Node) *Node{
		"relu":    func(tp *Tape, n *Node) *Node { return tp.ReLU(n) },
		"sigmoid": func(tp *Tape, n *Node) *Node { return tp.Sigmoid(n) },
		"tanh":    func(tp *Tape, n *Node) *Node { return tp.Tanh(n) },
	}
	for name, act := range acts {
		act := act
		checkGrad(t, name, []*Param{x}, func() (*Tape, *Node) {
			tp := NewTape()
			out := act(tp, tp.Use(x))
			return tp, tp.Mean(tp.Mul(out, out))
		})
	}
}

func TestReductionGrads(t *testing.T) {
	r := rng.New(6)
	x := NewParam("x", tensor.RandN(r, 5, 3, 1))
	checkGrad(t, "rowsums", []*Param{x}, func() (*Tape, *Node) {
		tp := NewTape()
		rs := tp.RowSums(tp.Use(x))
		return tp, tp.Mean(tp.Mul(rs, rs))
	})
	checkGrad(t, "sum", []*Param{x}, func() (*Tape, *Node) {
		tp := NewTape()
		n := tp.Use(x)
		return tp, tp.Sum(tp.Mul(n, n))
	})
}

func TestLayerNormGrad(t *testing.T) {
	r := rng.New(7)
	x := NewParam("x", tensor.RandN(r, 4, 6, 1))
	gain := NewParam("g", tensor.RandUniform(r, 1, 6, 0.5, 1.5))
	bias := NewParam("b", tensor.RandN(r, 1, 6, 0.5))
	checkGrad(t, "layernorm", []*Param{x, gain, bias}, func() (*Tape, *Node) {
		tp := NewTape()
		out := tp.LayerNorm(tp.Use(x), tp.Use(gain), tp.Use(bias), 1e-5)
		return tp, tp.Mean(tp.Mul(out, out))
	})
}

func TestBCEWithLogitsGrad(t *testing.T) {
	r := rng.New(8)
	x := NewParam("x", tensor.RandN(r, 8, 1, 1))
	targets := []float64{1, 0, 1, 1, 0, 0, 1, 0}
	for _, pw := range []float64{1.0, 2.5} {
		pw := pw
		checkGrad(t, "bce", []*Param{x}, func() (*Tape, *Node) {
			tp := NewTape()
			return tp, tp.BCEWithLogits(tp.Use(x), targets, pw)
		})
	}
}

func TestBCEWithLogitsValue(t *testing.T) {
	// BCE of logit 0 against any target is ln 2.
	tp := NewTape()
	logits := tp.Constant(tensor.New(3, 1))
	loss := tp.BCEWithLogits(logits, []float64{0, 1, 0}, 1)
	if math.Abs(loss.Value.At(0, 0)-math.Ln2) > 1e-12 {
		t.Fatalf("BCE(0) = %v, want ln2", loss.Value.At(0, 0))
	}
}

func TestHingePairLossGrad(t *testing.T) {
	r := rng.New(9)
	// Squared distances: keep away from the hinge kink at margin².
	d := tensor.RandUniform(r, 6, 1, 0.1, 2.0)
	for i, v := range d.Data() {
		if math.Abs(v-1.0) < 0.05 { // margin=1 → kink at 1
			d.Data()[i] = 0.5
		}
	}
	x := NewParam("d2", d)
	labels := []float64{1, 0, 1, 0, 0, 1}
	checkGrad(t, "hinge", []*Param{x}, func() (*Tape, *Node) {
		tp := NewTape()
		return tp, tp.HingePairLoss(tp.Use(x), labels, 1.0)
	})
}

func TestMLPCompositeGrad(t *testing.T) {
	// A 2-layer MLP end-to-end: the composition all higher stages rely on.
	r := rng.New(10)
	w1 := NewParam("w1", tensor.XavierInit(r, 4, 8))
	b1 := NewParam("b1", tensor.New(1, 8))
	w2 := NewParam("w2", tensor.XavierInit(r, 8, 1))
	b2 := NewParam("b2", tensor.New(1, 1))
	x := tensor.RandN(r, 10, 4, 1)
	targets := make([]float64, 10)
	for i := range targets {
		targets[i] = float64(i % 2)
	}
	checkGrad(t, "mlp", []*Param{w1, b1, w2, b2}, func() (*Tape, *Node) {
		tp := NewTape()
		h := tp.ReLU(tp.AddBias(tp.MatMul(tp.Constant(x), tp.Use(w1)), tp.Use(b1)))
		out := tp.AddBias(tp.MatMul(h, tp.Use(w2)), tp.Use(b2))
		return tp, tp.BCEWithLogits(out, targets, 1)
	})
}

func TestGradAccumulationAcrossUses(t *testing.T) {
	// Using a param twice must sum both contributions.
	r := rng.New(11)
	p := NewParam("p", tensor.RandN(r, 3, 3, 1))
	checkGrad(t, "reuse", []*Param{p}, func() (*Tape, *Node) {
		tp := NewTape()
		n := tp.Use(p)
		return tp, tp.Mean(tp.MatMul(n, n))
	})
}

func TestBackwardPanicsOnNonScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on matrix did not panic")
		}
	}()
	tp := NewTape()
	n := tp.Constant(tensor.New(2, 2))
	tp.Backward(n)
}

func TestActivationElements(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(tensor.New(10, 5)) // 50
	b := tp.ReLU(a)                     // 50
	_ = b
	if got := tp.ActivationElements(); got != 100 {
		t.Fatalf("ActivationElements = %d, want 100", got)
	}
	if tp.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", tp.NumNodes())
	}
}

func TestConstantReceivesNoGrad(t *testing.T) {
	tp := NewTape()
	c := tp.Constant(tensor.FromRows([][]float64{{1, 2}}))
	s := tp.Mean(c)
	tp.Backward(s)
	// Constant had no need for grad; its upstream node should not have
	// propagated anything into trainable state (nothing to check except
	// that no panic occurred and c's value is untouched).
	if c.Value.At(0, 1) != 2 {
		t.Fatal("constant mutated during backward")
	}
}
