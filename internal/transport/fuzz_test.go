package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzFrameDecode: the wire-framing decoder must uphold its contract for
// ANY byte stream a peer could send — truncated frames, oversized length
// headers, zero-length payloads, garbage — without panicking, without
// allocating beyond the cap, and in agreement between the in-memory
// decoder (DecodeFrame) and the streaming reader (ReadFrame). Valid
// decodes must roundtrip through AppendFrame byte-for-byte.
func FuzzFrameDecode(f *testing.F) {
	valid, _ := AppendFrame(nil, []byte("payload"), 0)
	empty, _ := AppendFrame(nil, nil, 0)
	f.Add([]byte{})                                     // no header at all
	f.Add([]byte{0, 0})                                 // truncated header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2})         // oversized length header
	f.Add(empty)                                        // zero-length payload
	f.Add(valid)                                        // one well-formed frame
	f.Add(append(append([]byte{}, valid...), empty...)) // two frames back to back
	f.Add(valid[:len(valid)-2])                         // truncated payload
	f.Add([]byte{0, 0, 0, 9, 'x'})                      // header promises more than follows

	const cap = 1 << 16 // small cap so the fuzzer can reach both sides of it

	// Boundary seeds at the cap itself (PR 8 frame-cap audit): exactly
	// cap must round-trip, one past it must classify as oversized, and a
	// cap-sized header over a short body is truncation. The two small
	// crafted headers are also checked into testdata/fuzz as
	// seed-cap-plus-one and seed-at-cap-truncated.
	atCap, _ := AppendFrame(nil, make([]byte, cap), cap)
	f.Add(atCap)
	f.Add([]byte{0x00, 0x01, 0x00, 0x01})      // header declares cap+1
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 'x'}) // declares cap, body truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, rest, err := DecodeFrame(data, cap)

		// Streaming reader over the same bytes must agree with the
		// in-memory decoder on both classification and content.
		streamed, serr := ReadFrame(bytes.NewReader(data), cap)
		switch {
		case err == nil:
			if serr != nil {
				t.Fatalf("DecodeFrame ok but ReadFrame failed: %v", serr)
			}
			if !bytes.Equal(streamed, payload) {
				t.Fatalf("decoders disagree: %q vs %q", streamed, payload)
			}
		case errors.Is(err, ErrFrameTooLarge):
			if !errors.Is(serr, ErrFrameTooLarge) {
				t.Fatalf("oversized header: DecodeFrame %v, ReadFrame %v", err, serr)
			}
		case errors.Is(err, ErrTruncatedFrame):
			// ReadFrame reports clean EOF for an empty stream and
			// truncation otherwise.
			if len(data) == 0 {
				if serr != io.EOF {
					t.Fatalf("empty stream: ReadFrame %v, want io.EOF", serr)
				}
			} else if !errors.Is(serr, ErrTruncatedFrame) {
				t.Fatalf("truncated frame: DecodeFrame %v, ReadFrame %v", err, serr)
			}
		default:
			t.Fatalf("unexpected DecodeFrame error class: %v", err)
		}

		if err != nil {
			// Failed decodes must leave the input untouched in rest.
			if !bytes.Equal(rest, data) {
				t.Fatal("failed decode consumed input")
			}
			return
		}

		// Structural postconditions of a successful decode.
		if len(payload) > cap {
			t.Fatalf("payload %d bytes exceeds cap %d", len(payload), cap)
		}
		if len(payload)+FrameHeaderBytes+len(rest) != len(data) {
			t.Fatalf("consumed bytes don't add up: %d payload + %d rest of %d",
				len(payload), len(rest), len(data))
		}

		// Roundtrip: re-encoding the decoded payload reproduces the
		// consumed prefix exactly.
		re, aerr := AppendFrame(nil, payload, cap)
		if aerr != nil {
			t.Fatalf("re-encode failed: %v", aerr)
		}
		if !bytes.Equal(re, data[:len(data)-len(rest)]) {
			t.Fatal("re-encoded frame differs from consumed input prefix")
		}

		// Chained decoding of rest must never panic and must make
		// progress or fail cleanly (bounds the loop by construction).
		for len(rest) > 0 {
			var p []byte
			p, rest2, err := DecodeFrame(rest, cap)
			if err != nil {
				break
			}
			if len(p)+FrameHeaderBytes+len(rest2) != len(rest) {
				t.Fatal("chained decode lost bytes")
			}
			rest = rest2
		}
	})
}
