package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire framing for the TCP transport. Each message is one frame:
//
//	offset 0: 4-byte big-endian payload length n
//	offset 4: n payload bytes
//
// A zero-length payload is a valid frame (4 header bytes, no body) —
// collectives never send empty chunks, but the framing layer must not
// confuse "empty message" with "no message". The length header is
// bounded by a per-connection cap so a corrupt or hostile peer cannot
// make the receiver allocate gigabytes from four bytes of input.
const (
	// FrameHeaderBytes is the fixed frame header size.
	FrameHeaderBytes = 4
	// DefaultMaxFrameBytes caps the payload length a conn will accept or
	// produce unless configured otherwise (64 MiB — far above any ring
	// chunk or gateway body this repository ships, far below an
	// allocation-of-death).
	DefaultMaxFrameBytes = 64 << 20
	// maxFrameLimit is the hard ceiling of any configured cap: the
	// length field is 32 bits.
	maxFrameLimit = 1<<32 - 1
)

// ErrFrameTooLarge reports a length header above the receiver's cap.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size cap")

// ErrTruncatedFrame reports a buffer that ends mid-header or mid-payload.
var ErrTruncatedFrame = errors.New("transport: truncated frame")

// AppendFrame appends one frame carrying payload to dst and returns the
// extended slice. It fails with ErrFrameTooLarge when the payload
// exceeds max (0 means DefaultMaxFrameBytes).
func AppendFrame(dst, payload []byte, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	if len(payload) > max || len(payload) > maxFrameLimit {
		return dst, fmt.Errorf("%w: %d bytes, cap %d", ErrFrameTooLarge, len(payload), max)
	}
	var hdr [FrameHeaderBytes]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// DecodeFrame decodes the first frame in buf, returning its payload and
// the remaining bytes. The payload aliases buf — callers that keep it
// must copy. Errors: ErrTruncatedFrame when buf ends before the frame
// does, ErrFrameTooLarge when the header declares more than max bytes
// (0 means DefaultMaxFrameBytes).
func DecodeFrame(buf []byte, max int) (payload, rest []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	if len(buf) < FrameHeaderBytes {
		return nil, buf, fmt.Errorf("%w: %d header bytes of %d", ErrTruncatedFrame, len(buf), FrameHeaderBytes)
	}
	n := binary.BigEndian.Uint32(buf)
	if uint64(n) > uint64(max) {
		return nil, buf, fmt.Errorf("%w: header declares %d bytes, cap %d", ErrFrameTooLarge, n, max)
	}
	body := buf[FrameHeaderBytes:]
	if uint64(len(body)) < uint64(n) {
		return nil, buf, fmt.Errorf("%w: %d payload bytes of %d", ErrTruncatedFrame, len(body), n)
	}
	return body[:n:n], body[n:], nil
}

// ReadFrame reads one whole frame from r and returns its payload
// (zero-length payloads yield an empty, non-nil slice). A stream that
// ends cleanly between frames reports io.EOF; one that ends mid-frame
// reports ErrTruncatedFrame.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	var hdr [FrameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: stream ended mid-header", ErrTruncatedFrame)
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if uint64(n) > uint64(max) {
		return nil, fmt.Errorf("%w: header declares %d bytes, cap %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: stream ended after %d of %d payload bytes", ErrTruncatedFrame, m, n)
	}
	return payload, nil
}

// WriteFrame writes one frame carrying payload to w as a single Write
// (header and payload coalesced into scratch, which is grown and
// returned for reuse so steady-state sends do not allocate).
func WriteFrame(w io.Writer, payload, scratch []byte, max int) ([]byte, error) {
	buf, err := AppendFrame(scratch[:0], payload, max)
	if err != nil {
		return scratch, err
	}
	_, err = w.Write(buf)
	return buf, err
}
