package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// PR 8 satellite: the frame-cap boundary audit. A payload of exactly
// the cap must round-trip through encode and both decode paths; cap+1
// must fail cleanly (typed error, input untouched) on all three. The
// table pins the audited behavior — `len(payload) > max` on encode,
// `declared > max` on decode — against off-by-one regressions.

// capFrame builds a raw frame whose header declares n bytes and whose
// body carries body bytes (allowing header/body mismatches).
func capFrame(n uint32, body int) []byte {
	buf := binary.BigEndian.AppendUint32(nil, n)
	return append(buf, make([]byte, body)...)
}

func TestFrameCapBoundaryRoundTrip(t *testing.T) {
	const max = 16 // a small cap exercises the same comparisons as 64 MiB, cheaply
	payload := bytes.Repeat([]byte{0xAB}, max)

	framed, err := AppendFrame(nil, payload, max)
	if err != nil {
		t.Fatalf("AppendFrame at cap: %v", err)
	}
	if len(framed) != FrameHeaderBytes+max {
		t.Fatalf("framed length %d, want %d", len(framed), FrameHeaderBytes+max)
	}

	got, rest, err := DecodeFrame(framed, max)
	if err != nil {
		t.Fatalf("DecodeFrame at cap: %v", err)
	}
	if !bytes.Equal(got, payload) || len(rest) != 0 {
		t.Fatalf("decode at cap: %d payload bytes, %d rest", len(got), len(rest))
	}

	read, err := ReadFrame(bytes.NewReader(framed), max)
	if err != nil {
		t.Fatalf("ReadFrame at cap: %v", err)
	}
	if !bytes.Equal(read, payload) {
		t.Fatal("ReadFrame at cap returned different payload")
	}
}

func TestFrameCapBoundaryOverflow(t *testing.T) {
	const max = 16

	// Encode: cap+1 payload must fail without growing dst.
	dst := []byte("prefix")
	out, err := AppendFrame(dst, make([]byte, max+1), max)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("AppendFrame cap+1 err = %v, want ErrFrameTooLarge", err)
	}
	if !bytes.Equal(out, dst) {
		t.Fatal("failed AppendFrame must return dst unchanged")
	}

	// Decode: a crafted header declaring cap+1 must fail even when the
	// body bytes are actually present.
	over := capFrame(max+1, max+1)
	if _, _, err := DecodeFrame(over, max); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame cap+1 err = %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader(over), max); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame cap+1 err = %v, want ErrFrameTooLarge", err)
	}

	// A header declaring exactly the cap with a short body is truncation,
	// not oversize — the cap check must not mask it.
	short := capFrame(max, max-1)
	if _, _, err := DecodeFrame(short, max); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("DecodeFrame short-at-cap err = %v, want ErrTruncatedFrame", err)
	}
	if _, err := ReadFrame(bytes.NewReader(short), max); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("ReadFrame short-at-cap err = %v, want ErrTruncatedFrame", err)
	}
}

// TestFrameCapBoundaryDefault runs the same boundary once at the real
// 64 MiB default cap, so the audit covers the production constant and
// not just a scaled-down stand-in. Only the encode side materializes
// the payload; the decode side uses a crafted header to avoid a second
// 64 MiB allocation.
func TestFrameCapBoundaryDefault(t *testing.T) {
	payload := make([]byte, DefaultMaxFrameBytes)
	framed, err := AppendFrame(nil, payload, 0)
	if err != nil {
		t.Fatalf("AppendFrame at default cap: %v", err)
	}
	if _, _, err := DecodeFrame(framed, 0); err != nil {
		t.Fatalf("DecodeFrame at default cap: %v", err)
	}
	if _, err := AppendFrame(nil, append(payload, 0), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("AppendFrame default cap+1 err = %v, want ErrFrameTooLarge", err)
	}
	overHdr := binary.BigEndian.AppendUint32(nil, DefaultMaxFrameBytes+1)
	if _, _, err := DecodeFrame(overHdr, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("DecodeFrame default cap+1 err = %v, want ErrFrameTooLarge", err)
	}
}
