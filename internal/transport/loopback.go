package transport

import (
	"context"
	"fmt"
	"sync"
)

// pipeDepth is the per-direction message buffer of a Pipe. Socket
// transports absorb tens of kilobytes in kernel buffers before a writer
// blocks; the loopback approximates that with a bounded message queue
// deep enough that protocol-level bursts (a rank posting its chunk
// before the neighbor reads, a client pipelining a handful of requests)
// never rendezvous-deadlock, while still exerting backpressure on a
// runaway sender.
const pipeDepth = 64

// Pipe returns two connected in-process Conns: what one side Sends the
// other Recvs, in order, through a pipeDepth-message buffer per
// direction.
//
// Payloads are copied on Send, matching socket transports where the
// bytes leave the caller's buffer immediately.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, pipeDepth)
	ba := make(chan []byte, pipeDepth)
	a := &pipeConn{send: ab, recv: ba, local: make(chan struct{})}
	b := &pipeConn{send: ba, recv: ab, local: make(chan struct{})}
	a.remote, b.remote = b.local, a.local
	return a, b
}

type pipeConn struct {
	send chan []byte
	recv chan []byte

	closeOnce sync.Once
	local     chan struct{} // closed by our Close
	remote    chan struct{} // closed by the peer's Close
}

func (c *pipeConn) Send(ctx context.Context, payload []byte) error {
	msg := append([]byte(nil), payload...)
	select {
	case <-c.local:
		return ErrClosed
	case <-c.remote:
		return ErrClosed
	default:
	}
	select {
	case c.send <- msg:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.local:
		return ErrClosed
	case <-c.remote:
		return ErrClosed
	}
}

func (c *pipeConn) Recv(ctx context.Context) ([]byte, error) {
	// Prefer buffered messages over a concurrent close: a peer that
	// sends then closes must not lose the send.
	select {
	case msg := <-c.recv:
		return msg, nil
	default:
	}
	select {
	case msg := <-c.recv:
		return msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.local:
		return nil, ErrClosed
	case <-c.remote:
		// Drain any message that raced with the close.
		select {
		case msg := <-c.recv:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *pipeConn) Close() error {
	c.closeOnce.Do(func() { close(c.local) })
	return nil
}

// Loopback is an in-process Network: addresses are plain strings in a
// private namespace, connections are Pipes. It is the deterministic
// test double for the TCP transport — same interface, same message
// semantics, no sockets.
type Loopback struct {
	mu        sync.Mutex
	listeners map[string]*loopListener
	autoSeq   int
}

// NewLoopback creates an empty in-process network.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*loopListener)}
}

type loopListener struct {
	net  *Loopback
	addr string

	backlog   chan Conn
	closeOnce sync.Once
	closed    chan struct{}
}

// Listen binds addr in the loopback namespace. An empty addr (or ":0",
// for symmetry with socket transports) is assigned a fresh ephemeral
// name.
func (l *Loopback) Listen(addr string) (Listener, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if addr == "" || addr == ":0" {
		l.autoSeq++
		addr = fmt.Sprintf("loopback-%d", l.autoSeq)
	}
	if _, exists := l.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: loopback address %q already bound", addr)
	}
	ln := &loopListener{
		net:     l,
		addr:    addr,
		backlog: make(chan Conn, 16),
		closed:  make(chan struct{}),
	}
	l.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a bound loopback address.
func (l *Loopback) Dial(ctx context.Context, addr string) (Conn, error) {
	l.mu.Lock()
	ln, ok := l.listeners[addr]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: loopback dial %q: no listener", addr)
	}
	local, remote := Pipe()
	select {
	case ln.backlog <- remote:
		return local, nil
	case <-ln.closed:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (ln *loopListener) Accept(ctx context.Context) (Conn, error) {
	select {
	case c := <-ln.backlog:
		return c, nil
	case <-ln.closed:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (ln *loopListener) Addr() string { return ln.addr }

func (ln *loopListener) Close() error {
	ln.closeOnce.Do(func() {
		close(ln.closed)
		ln.net.mu.Lock()
		delete(ln.net.listeners, ln.addr)
		ln.net.mu.Unlock()
	})
	return nil
}
