package transport

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// aLongTimeAgo is a non-zero past time; setting it as a deadline makes
// pending socket I/O fail immediately (the net package's own idiom for
// cancellation).
var aLongTimeAgo = time.Unix(1, 0)

// TCP is the socket-backed Network: length-prefixed binary frames (see
// frame.go) over real TCP connections, so ranks and serving shards can
// span processes and hosts. The zero value is ready to use.
type TCP struct {
	// MaxFrameBytes caps the payload size either side will send or
	// accept (DefaultMaxFrameBytes when 0). Both endpoints of a link
	// should agree.
	MaxFrameBytes int
}

func (t *TCP) max() int {
	if t.MaxFrameBytes > 0 {
		return t.MaxFrameBytes
	}
	return DefaultMaxFrameBytes
}

// Listen binds a TCP address ("host:port"; ":0" for an ephemeral port,
// reported by Addr()).
func (t *TCP) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{ln: ln.(*net.TCPListener), max: t.max()}, nil
}

// Dial connects to a TCP listener.
func (t *TCP) Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c, t.max()), nil
}

type tcpListener struct {
	ln  *net.TCPListener
	max int
}

func (l *tcpListener) Accept(ctx context.Context) (Conn, error) {
	// Cancellation: a fired context forces the pending Accept to time
	// out immediately; the deadline is cleared again afterwards so the
	// listener stays usable.
	stop := context.AfterFunc(ctx, func() { _ = l.ln.SetDeadline(aLongTimeAgo) })
	defer func() {
		if stop() {
			return
		}
		_ = l.ln.SetDeadline(time.Time{})
	}()
	c, err := l.ln.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return newTCPConn(c, l.max), nil
}

func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

func (l *tcpListener) Close() error { return l.ln.Close() }

// tcpConn frames messages over one TCP connection. Reads are buffered;
// writes coalesce header+payload into one scratch buffer reused across
// sends, so a steady-state ring step costs one syscall each way and no
// per-message allocation on the send side.
type tcpConn struct {
	c   net.Conn
	max int

	rmu sync.Mutex
	br  *bufio.Reader

	wmu  sync.Mutex
	wbuf []byte
}

func newTCPConn(c net.Conn, max int) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // collectives are latency-bound small frames
	}
	return &tcpConn{c: c, max: max, br: bufio.NewReaderSize(c, 64<<10)}
}

// withCancel arms ctx-driven cancellation around one I/O call: a fired
// context slams the relevant deadline so the blocking read or write
// returns, and the deadline is restored (or the context's own deadline
// installed) around the call.
func (c *tcpConn) withCancel(ctx context.Context, set func(time.Time) error, op func() error) error {
	if d, ok := ctx.Deadline(); ok {
		_ = set(d)
	}
	stop := context.AfterFunc(ctx, func() { _ = set(aLongTimeAgo) })
	err := op()
	if err != nil {
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			// The conn deadline (mirroring ctx's) fired first; wait out
			// the context's own timer so the caller sees ctx.Err(), not
			// a raw i/o timeout.
			<-ctx.Done()
		}
	}
	if !stop() || ctx.Err() != nil {
		// The cancel hook ran (or is about to): report the context's
		// error, not the deadline artifact it induced.
		_ = set(time.Time{})
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	_ = set(time.Time{})
	return err
}

func (c *tcpConn) Send(ctx context.Context, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.withCancel(ctx, c.c.SetWriteDeadline, func() error {
		buf, err := WriteFrame(c.c, payload, c.wbuf, c.max)
		c.wbuf = buf
		if err != nil && errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return err
	})
}

func (c *tcpConn) Recv(ctx context.Context) ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var payload []byte
	err := c.withCancel(ctx, c.c.SetReadDeadline, func() error {
		var err error
		payload, err = ReadFrame(c.br, c.max)
		if err != nil && errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return payload, nil
}

func (c *tcpConn) Close() error { return c.c.Close() }
