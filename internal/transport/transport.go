// Package transport is the pluggable point-to-point message transport
// under the distributed stack: internal/comm builds its ring collectives
// on a pair of Conns per rank, so the same collective code runs over
// in-process pipes in tests and over real sockets between hosts.
//
// A Conn is a reliable, ordered, message-oriented duplex link — the
// transport preserves message boundaries (Send/Recv move whole payloads,
// never byte streams), which is what a collective needs: one chunk per
// ring step. Two implementations ship:
//
//   - Loopback: in-process pipes behind the same Dial/Listen surface,
//     deterministic and dependency-free, for unit tests and single-host
//     rank simulation.
//   - TCP: length-prefixed binary frames over real sockets (frame.go
//     documents the wire format), for ranks and serving shards that span
//     processes or hosts.
//
// Every blocking call takes a context.Context and honors both
// cancellation and deadlines; a call that returns because its context
// fired reports ctx.Err().
package transport

import (
	"context"
	"errors"
)

// ErrClosed is returned by operations on a Conn or Listener after Close,
// and by Recv when the peer has closed the link and no buffered message
// remains.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a reliable, ordered, message-boundary-preserving duplex link
// between exactly two endpoints.
//
// Concurrency contract: one goroutine may Send while another Recvs, but
// each direction has at most one caller at a time. Close unblocks both.
type Conn interface {
	// Send transmits one message. It blocks until the transport has
	// accepted the payload, the context fires, or the conn closes. The
	// payload is copied (or serialized) before Send returns, so the
	// caller may reuse the backing array immediately.
	Send(ctx context.Context, payload []byte) error
	// Recv returns the next message in send order. It blocks until a
	// message arrives, the context fires, or the conn closes.
	Recv(ctx context.Context) ([]byte, error)
	// Close tears the link down; pending and future calls on either
	// endpoint fail with ErrClosed. Safe to call more than once.
	Close() error
}

// Listener accepts inbound connections bound to an address.
type Listener interface {
	// Accept blocks until an inbound connection arrives, the context
	// fires, or the listener closes.
	Accept(ctx context.Context) (Conn, error)
	// Addr returns the bound address in the form Dial accepts — for
	// ephemeral binds (":0", "") this is the resolved concrete address.
	Addr() string
	// Close stops accepting; blocked Accepts fail with ErrClosed.
	Close() error
}

// Network is a pluggable transport: a namespace of addresses that can be
// listened on and dialed. Implementations must be safe for concurrent
// use.
type Network interface {
	// Listen binds addr. An empty addr (or a ":0" port for socket
	// transports) requests an ephemeral address, reported by Addr().
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address, blocking until the
	// connection is established or ctx fires.
	Dial(ctx context.Context, addr string) (Conn, error)
}
