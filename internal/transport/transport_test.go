package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// networks returns every Network implementation under its display name;
// the behavioral tests run identically over each — that interchangeability
// is the transport contract.
func networks(t *testing.T) map[string]Network {
	t.Helper()
	return map[string]Network{
		"loopback": NewLoopback(),
		"tcp":      &TCP{},
	}
}

func dialAccept(t *testing.T, net Network) (client, server Conn) {
	t.Helper()
	ln, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	type acceptResult struct {
		c   Conn
		err error
	}
	acc := make(chan acceptResult, 1)
	go func() {
		c, err := ln.Accept(ctx)
		acc <- acceptResult{c, err}
	}()
	client, err = net.Dial(ctx, ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	res := <-acc
	if res.err != nil {
		t.Fatal(res.err)
	}
	t.Cleanup(func() { client.Close(); res.c.Close() })
	return client, res.c
}

func TestRoundtripAllNetworks(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := dialAccept(t, n)
			ctx := context.Background()
			payloads := [][]byte{
				[]byte("hello"),
				{},
				bytes.Repeat([]byte{0xAB}, 1<<16),
				{0},
			}
			for i, p := range payloads {
				if err := client.Send(ctx, p); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			for i, p := range payloads {
				got, err := server.Recv(ctx)
				if err != nil {
					t.Fatalf("recv %d: %v", i, err)
				}
				if !bytes.Equal(got, p) {
					t.Fatalf("message %d: got %d bytes, want %d", i, len(got), len(p))
				}
			}
			// Duplex: the server can send back on the same conn.
			if err := server.Send(ctx, []byte("pong")); err != nil {
				t.Fatal(err)
			}
			got, err := client.Recv(ctx)
			if err != nil || string(got) != "pong" {
				t.Fatalf("reverse direction: %q, %v", got, err)
			}
		})
	}
}

func TestSendCopiesPayload(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := dialAccept(t, n)
			ctx := context.Background()
			buf := []byte("original")
			if err := client.Send(ctx, buf); err != nil {
				t.Fatal(err)
			}
			copy(buf, "CLOBBER!") // caller reuses its buffer immediately
			got, err := server.Recv(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "original" {
				t.Fatalf("payload aliased the caller's buffer: %q", got)
			}
		})
	}
}

func TestRecvHonorsCancellation(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			client, _ := dialAccept(t, n)
			ctx, cancel := context.WithCancel(context.Background())
			errc := make(chan error, 1)
			go func() {
				_, err := client.Recv(ctx)
				errc <- err
			}()
			time.Sleep(10 * time.Millisecond)
			cancel()
			select {
			case err := <-errc:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("got %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv did not unblock on cancellation")
			}
		})
	}
}

func TestRecvHonorsDeadline(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			client, _ := dialAccept(t, n)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, err := client.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("got %v, want context.DeadlineExceeded", err)
			}
			// The conn must remain usable after a timed-out Recv.
			if err := client.Send(context.Background(), []byte("still alive")); err != nil {
				t.Fatalf("send after deadline: %v", err)
			}
		})
	}
}

func TestRecvAfterPeerCloseDrainsThenFails(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := dialAccept(t, n)
			ctx := context.Background()
			if err := client.Send(ctx, []byte("last words")); err != nil {
				t.Fatal(err)
			}
			client.Close()
			got, err := server.Recv(ctx)
			if err != nil || string(got) != "last words" {
				t.Fatalf("pre-close message lost: %q, %v", got, err)
			}
			if _, err := server.Recv(ctx); err == nil {
				t.Fatal("Recv after peer close succeeded")
			}
		})
	}
}

func TestAcceptCancellation(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			ln, err := n.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			if _, err := ln.Accept(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("got %v, want context.DeadlineExceeded", err)
			}
			// The listener survives: a real dial still connects.
			dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer dcancel()
			done := make(chan error, 1)
			go func() {
				c, err := ln.Accept(dctx)
				if c != nil {
					c.Close()
				}
				done <- err
			}()
			c, err := n.Dial(dctx, ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := <-done; err != nil {
				t.Fatalf("accept after cancelled accept: %v", err)
			}
		})
	}
}

func TestDialUnknownAddressFails(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := NewLoopback().Dial(ctx, "nowhere"); err == nil {
		t.Fatal("loopback dial to unbound address succeeded")
	}
}

func TestLoopbackEphemeralAddrsDistinct(t *testing.T) {
	n := NewLoopback()
	a, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() == b.Addr() {
		t.Fatalf("two ephemeral binds share address %q", a.Addr())
	}
	if _, err := n.Listen(a.Addr()); err == nil {
		t.Fatal("double bind succeeded")
	}
	a.Close()
	if _, err := n.Listen(a.Addr()); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestTCPFrameCapEnforced(t *testing.T) {
	n := &TCP{MaxFrameBytes: 128}
	client, server := dialAccept(t, n)
	ctx := context.Background()
	if err := client.Send(ctx, make([]byte, 129)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized send: got %v, want ErrFrameTooLarge", err)
	}
	// A hostile header beyond the cap must be rejected without the
	// receiver allocating the declared size.
	if err := client.Send(ctx, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	if got, err := server.Recv(ctx); err != nil || len(got) != 128 {
		t.Fatalf("at-cap frame: %d bytes, %v", len(got), err)
	}
}

func TestConcurrentPingPong(t *testing.T) {
	for name, n := range networks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := dialAccept(t, n)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			const rounds = 200
			var wg sync.WaitGroup
			wg.Add(2)
			errs := make(chan error, 2)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					if err := client.Send(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
						errs <- err
						return
					}
					if _, err := client.Recv(ctx); err != nil {
						errs <- err
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					m, err := server.Recv(ctx)
					if err != nil {
						errs <- err
						return
					}
					if want := fmt.Sprintf("m%d", i); string(m) != want {
						errs <- fmt.Errorf("round %d: got %q want %q", i, m, want)
						return
					}
					if err := server.Send(ctx, m); err != nil {
						errs <- err
						return
					}
				}
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

func TestReadFrameEOFBetweenFrames(t *testing.T) {
	var buf bytes.Buffer
	b, err := AppendFrame(nil, []byte("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(b)
	if got, err := ReadFrame(&buf, 0); err != nil || string(got) != "x" {
		t.Fatalf("frame 1: %q, %v", got, err)
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}
	buf.Write(b[:3]) // mid-header truncation
	if _, err := ReadFrame(&buf, 0); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("mid-header end: got %v, want ErrTruncatedFrame", err)
	}
}
