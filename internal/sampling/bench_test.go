package sampling

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func benchGraph(n int) (*graph.Graph, *EdgeIndex) {
	r := rng.New(1)
	var src, dst []int
	for i := 1; i < n; i++ {
		src = append(src, i-1)
		dst = append(dst, i)
	}
	for k := 0; k < 3*n; k++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			src = append(src, a)
			dst = append(dst, b)
		}
	}
	g := graph.New(n, src, dst)
	g.Adjacency()
	return g, NewEdgeIndex(g)
}

func BenchmarkStandardShaDow256(b *testing.B) {
	g, eidx := benchGraph(2000)
	r := rng.New(2)
	batch := r.SampleWithoutReplacement(2000, 256)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StandardShaDow(g, eidx, batch, cfg, r.Split())
	}
}

func BenchmarkBulkMatrixShaDow256x4(b *testing.B) {
	g, eidx := benchGraph(2000)
	r := rng.New(2)
	var batches [][]int
	for j := 0; j < 4; j++ {
		batches = append(batches, r.SampleWithoutReplacement(2000, 256))
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkMatrixShaDow(g, eidx, batches, cfg, r.Split())
	}
}
