package sampling

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

// testGraph builds a random connected-ish graph.
func testGraph(r *rng.Rand, n, extraEdges int) *graph.Graph {
	var src, dst []int
	for i := 1; i < n; i++ { // spanning path keeps it connected
		src = append(src, i-1)
		dst = append(dst, i)
	}
	for k := 0; k < extraEdges; k++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			src = append(src, a)
			dst = append(dst, b)
		}
	}
	return graph.New(n, src, dst)
}

// checkSubgraphInvariants verifies the structural properties every ShaDow
// sampler must satisfy.
func checkSubgraphInvariants(t *testing.T, g *graph.Graph, eidx *EdgeIndex, batch []int, cfg Config, sub *Subgraph) {
	t.Helper()
	if sub.Components != len(batch) {
		t.Fatalf("components %d != batch size %d", sub.Components, len(batch))
	}
	if len(sub.Roots) != len(batch) {
		t.Fatalf("roots %d != batch size %d", len(sub.Roots), len(batch))
	}
	for i, root := range sub.Roots {
		if sub.Vertices[root] != batch[i] {
			t.Fatalf("root %d maps to vertex %d, want %d", i, sub.Vertices[root], batch[i])
		}
	}
	// Edges: local endpoints valid, original ids consistent, orientation
	// preserved.
	for k := range sub.Src {
		ls, ld := sub.Src[k], sub.Dst[k]
		if ls < 0 || ls >= sub.NumVertices() || ld < 0 || ld >= sub.NumVertices() {
			t.Fatalf("edge %d endpoints (%d,%d) out of range", k, ls, ld)
		}
		os, od := sub.Vertices[ls], sub.Vertices[ld]
		id := sub.EdgeIDs[k]
		if g.Src[id] != os || g.Dst[id] != od {
			t.Fatalf("edge %d maps to original (%d,%d) but edge id %d is (%d,%d)",
				k, os, od, id, g.Src[id], g.Dst[id])
		}
	}
	// Components must be disjoint in local vertex ranges: vertex v's
	// component is determined by the roots offsets; check block structure
	// via connected components of the subgraph — every component of the
	// sampled graph must stay within one root's block.
	blockOf := make([]int, sub.NumVertices())
	for i := 0; i < len(sub.Roots); i++ {
		end := sub.NumVertices()
		if i+1 < len(sub.Roots) {
			end = sub.Roots[i+1]
		}
		for v := sub.Roots[i]; v < end; v++ {
			blockOf[v] = i
		}
	}
	for k := range sub.Src {
		if blockOf[sub.Src[k]] != blockOf[sub.Dst[k]] {
			t.Fatalf("edge %d crosses components", k)
		}
	}
	// Fanout/depth bound: a component can visit at most
	// 1 + s + s² + ... + s^d vertices.
	maxVisit := 1
	pow := 1
	for i := 0; i < cfg.Depth; i++ {
		pow *= cfg.Fanout
		maxVisit += pow
	}
	for i := 0; i < len(sub.Roots); i++ {
		end := sub.NumVertices()
		if i+1 < len(sub.Roots) {
			end = sub.Roots[i+1]
		}
		if size := end - sub.Roots[i]; size > maxVisit {
			t.Fatalf("component %d has %d vertices > bound %d", i, size, maxVisit)
		}
	}
}

func TestStandardShaDowInvariants(t *testing.T) {
	r := rng.New(1)
	g := testGraph(r, 60, 80)
	eidx := NewEdgeIndex(g)
	cfg := Config{Depth: 2, Fanout: 3}
	batch := []int{0, 10, 20, 30}
	sub := StandardShaDow(g, eidx, batch, cfg, r)
	checkSubgraphInvariants(t, g, eidx, batch, cfg, sub)
}

func TestMatrixShaDowInvariants(t *testing.T) {
	r := rng.New(2)
	g := testGraph(r, 60, 80)
	eidx := NewEdgeIndex(g)
	cfg := Config{Depth: 2, Fanout: 3}
	batch := []int{5, 15, 25, 35}
	sub := MatrixShaDow(g, eidx, batch, cfg, r)
	checkSubgraphInvariants(t, g, eidx, batch, cfg, sub)
}

func TestBulkMatrixShaDowInvariants(t *testing.T) {
	r := rng.New(3)
	g := testGraph(r, 80, 100)
	eidx := NewEdgeIndex(g)
	cfg := Config{Depth: 3, Fanout: 2}
	batches := [][]int{{0, 1, 2}, {10, 20}, {30, 40, 50, 60}}
	subs := BulkMatrixShaDow(g, eidx, batches, cfg, r)
	if len(subs) != len(batches) {
		t.Fatalf("got %d subgraphs for %d batches", len(subs), len(batches))
	}
	for i, sub := range subs {
		checkSubgraphInvariants(t, g, eidx, batches[i], cfg, sub)
	}
}

func TestShaDowQuickInvariants(t *testing.T) {
	check := func(seed uint64, nRaw, batchRaw, depthRaw, fanoutRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%50) + 5
		g := testGraph(r, n, n)
		eidx := NewEdgeIndex(g)
		cfg := Config{Depth: int(depthRaw%3) + 1, Fanout: int(fanoutRaw%4) + 1}
		batchSize := int(batchRaw%5) + 1
		batch := r.SampleWithoutReplacement(n, batchSize)
		for _, impl := range []func() *Subgraph{
			func() *Subgraph { return StandardShaDow(g, eidx, batch, cfg, r.Split()) },
			func() *Subgraph { return MatrixShaDow(g, eidx, batch, cfg, r.Split()) },
		} {
			sub := impl()
			if sub.Components != len(batch) {
				return false
			}
			for k := range sub.Src {
				id := sub.EdgeIDs[k]
				if g.Src[id] != sub.Vertices[sub.Src[k]] || g.Dst[id] != sub.Vertices[sub.Dst[k]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphIsComplete(t *testing.T) {
	// Every original edge between two visited vertices of a component must
	// appear in the sampled subgraph (induced means induced).
	r := rng.New(4)
	g := testGraph(r, 40, 60)
	eidx := NewEdgeIndex(g)
	cfg := Config{Depth: 2, Fanout: 4}
	sub := StandardShaDow(g, eidx, []int{7}, cfg, r)
	// Single component: collect visited set.
	inSub := make(map[int]int)
	for local, orig := range sub.Vertices {
		inSub[orig] = local
	}
	present := make(map[[2]int]bool)
	for k := range sub.Src {
		a, b := sub.Vertices[sub.Src[k]], sub.Vertices[sub.Dst[k]]
		present[normPair(a, b)] = true
	}
	for k := range g.Src {
		_, okA := inSub[g.Src[k]]
		_, okB := inSub[g.Dst[k]]
		if okA && okB && g.Src[k] != g.Dst[k] {
			if !present[normPair(g.Src[k], g.Dst[k])] {
				t.Fatalf("induced edge (%d,%d) missing from subgraph", g.Src[k], g.Dst[k])
			}
		}
	}
}

func TestExtractComponentsSpGEMMMatchesAdjacency(t *testing.T) {
	// The paper's SpGEMM extraction and the edge-list assembly must agree
	// on the block-diagonal sampled adjacency.
	r := rng.New(5)
	g := testGraph(r, 50, 70)
	eidx := NewEdgeIndex(g)
	cfg := Config{Depth: 2, Fanout: 3}
	batch := []int{3, 30}
	sub := StandardShaDow(g, eidx, batch, cfg, r)
	// Rebuild visited sets from the component layout.
	var sets [][]int
	for i := 0; i < len(sub.Roots); i++ {
		end := sub.NumVertices()
		if i+1 < len(sub.Roots) {
			end = sub.Roots[i+1]
		}
		sets = append(sets, sub.Vertices[sub.Roots[i]:end])
	}
	viaSpGEMM := ExtractComponentsSpGEMM(g, sets)
	viaEdges := SubgraphAdjacency(sub)
	if viaSpGEMM.Rows() != viaEdges.Rows() {
		t.Fatalf("sizes differ: %d vs %d", viaSpGEMM.Rows(), viaEdges.Rows())
	}
	if viaSpGEMM.ToDense().MaxAbsDiff(viaEdges.ToDense()) != 0 {
		t.Fatal("SpGEMM extraction disagrees with edge-list assembly")
	}
}

func TestFanoutLimitsFrontier(t *testing.T) {
	// On a star graph with fanout 1 and depth 1, the component is exactly
	// the root plus one neighbor.
	n := 20
	var src, dst []int
	for i := 1; i < n; i++ {
		src = append(src, 0)
		dst = append(dst, i)
	}
	g := graph.New(n, src, dst)
	eidx := NewEdgeIndex(g)
	r := rng.New(6)
	sub := StandardShaDow(g, eidx, []int{0}, Config{Depth: 1, Fanout: 1}, r)
	if sub.NumVertices() != 2 {
		t.Fatalf("star root with fanout 1 visited %d vertices, want 2", sub.NumVertices())
	}
	subM := MatrixShaDow(g, eidx, []int{0}, Config{Depth: 1, Fanout: 1}, r)
	if subM.NumVertices() != 2 {
		t.Fatalf("matrix version visited %d vertices, want 2", subM.NumVertices())
	}
}

func TestLowDegreeKeepsAllNeighbors(t *testing.T) {
	// Path graph with fanout ≥ degree: depth-1 walk from an interior
	// vertex must take both neighbors.
	g := graph.New(5, []int{0, 1, 2, 3}, []int{1, 2, 3, 4})
	eidx := NewEdgeIndex(g)
	r := rng.New(7)
	for _, impl := range []func() *Subgraph{
		func() *Subgraph { return StandardShaDow(g, eidx, []int{2}, Config{Depth: 1, Fanout: 6}, r) },
		func() *Subgraph { return MatrixShaDow(g, eidx, []int{2}, Config{Depth: 1, Fanout: 6}, r) },
	} {
		sub := impl()
		if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
			t.Fatalf("interior walk got %d vertices %d edges, want 3/2", sub.NumVertices(), sub.NumEdges())
		}
	}
}

func TestBulkEquivalentDistribution(t *testing.T) {
	// Bulk sampling of k batches must produce per-batch subgraphs whose
	// size distribution matches single-batch sampling (same algorithm, just
	// stacked). Compare mean component sizes over repetitions.
	r := rng.New(8)
	g := testGraph(r, 100, 150)
	eidx := NewEdgeIndex(g)
	cfg := Config{Depth: 2, Fanout: 3}
	batch := []int{1, 11, 21, 31, 41}

	meanSize := func(bulk bool) float64 {
		gen := rng.New(9)
		total, count := 0, 0
		for rep := 0; rep < 30; rep++ {
			if bulk {
				subs := BulkMatrixShaDow(g, eidx, [][]int{batch, batch}, cfg, gen.Split())
				for _, s := range subs {
					total += s.NumVertices()
					count++
				}
			} else {
				s := MatrixShaDow(g, eidx, batch, cfg, gen.Split())
				total += s.NumVertices()
				count++
			}
		}
		return float64(total) / float64(count)
	}
	single, bulk := meanSize(false), meanSize(true)
	if ratio := bulk / single; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("bulk mean size %v vs single %v (ratio %v)", bulk, single, ratio)
	}
}

func TestValidationPanics(t *testing.T) {
	g := graph.New(3, []int{0}, []int{1})
	eidx := NewEdgeIndex(g)
	r := rng.New(10)
	for _, f := range []func(){
		func() { StandardShaDow(g, eidx, []int{5}, Config{Depth: 1, Fanout: 1}, r) },
		func() { StandardShaDow(g, eidx, []int{0}, Config{Depth: 0, Fanout: 1}, r) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
