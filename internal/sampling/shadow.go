// Package sampling implements the ShaDow subgraph sampler (Zeng et al.,
// "Decoupling the depth and scope of graph neural networks") in the two
// forms the paper compares:
//
//   - StandardShaDow — Algorithm 2: a sequential per-batch-vertex random
//     walk with fanout s and depth d followed by induced-subgraph
//     extraction, standing in for PyG's sampler (the paper's baseline).
//   - BulkMatrixShaDow — the paper's contribution (Figure 2): the walk is
//     expressed as sparse-matrix operations (Q·A row sampling with a
//     frontier matrix F), and multiple minibatches are sampled in a single
//     bulk invocation by stacking their Q matrices (equation 1), which is
//     what raises device utilization.
//
// Both return the same structure: a block-diagonal subgraph with one
// component per batch vertex, plus the mapping back to original vertex
// and edge ids so features and labels can be gathered.
package sampling

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// Config holds the ShaDow hyperparameters (paper: depth 3, fanout 6).
type Config struct {
	Depth  int // random-walk depth d
	Fanout int // neighbors sampled per frontier vertex s
}

// DefaultConfig returns the paper's ShaDow setting.
func DefaultConfig() Config { return Config{Depth: 3, Fanout: 6} }

// Subgraph is a sampled block-diagonal graph for one minibatch.
type Subgraph struct {
	// Vertices maps subgraph-local vertex id → original vertex id.
	Vertices []int
	// Src/Dst are subgraph-local edges, oriented as in the original graph.
	Src, Dst []int
	// EdgeIDs maps each subgraph edge → original edge index, for gathering
	// edge features and labels.
	EdgeIDs []int
	// Components is the number of disjoint components (= batch size).
	Components int
	// Roots are the subgraph-local ids of the batch vertices.
	Roots []int
}

// NumVertices returns the sampled vertex count.
func (s *Subgraph) NumVertices() int { return len(s.Vertices) }

// NumEdges returns the sampled edge count.
func (s *Subgraph) NumEdges() int { return len(s.Src) }

// EdgeIndex resolves original undirected edges (u, v) → edge id.
type EdgeIndex struct {
	m map[[2]int]int
}

// NewEdgeIndex builds the lookup for a graph's edge list.
func NewEdgeIndex(g *graph.Graph) *EdgeIndex {
	idx := &EdgeIndex{m: make(map[[2]int]int, len(g.Src))}
	for k := range g.Src {
		idx.m[normPair(g.Src[k], g.Dst[k])] = k
	}
	return idx
}

// Lookup returns the edge id of (u, v) in either orientation.
func (e *EdgeIndex) Lookup(u, v int) (int, bool) {
	id, ok := e.m[normPair(u, v)]
	return id, ok
}

func normPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// walkOneRoot performs the Algorithm 2 random walk from a single batch
// vertex and returns the visited vertex set (root first, then discovery
// order).
func walkOneRoot(adj *sparse.CSR, root int, cfg Config, r *rng.Rand) []int {
	visited := []int{root}
	seen := map[int]bool{root: true}
	frontier := []int{root}
	for depth := 0; depth < cfg.Depth; depth++ {
		var next []int
		for _, v := range frontier {
			cols, _ := adj.Row(v)
			var picks []int
			if len(cols) <= cfg.Fanout {
				picks = cols
			} else {
				sel := r.SampleWithoutReplacement(len(cols), cfg.Fanout)
				picks = make([]int, len(sel))
				for i, p := range sel {
					picks[i] = cols[p]
				}
			}
			for _, u := range picks {
				if !seen[u] {
					seen[u] = true
					visited = append(visited, u)
					next = append(next, u)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return visited
}

// assembleComponents builds the block-diagonal Subgraph from per-root
// visited vertex sets, extracting each induced subgraph from the original
// graph's edge list.
func assembleComponents(g *graph.Graph, eidx *EdgeIndex, visitedSets [][]int) *Subgraph {
	sub := &Subgraph{Components: len(visitedSets)}
	adj := g.Adjacency()
	for _, visited := range visitedSets {
		offset := len(sub.Vertices)
		sub.Roots = append(sub.Roots, offset) // root is first in its set
		local := make(map[int]int, len(visited))
		for i, v := range visited {
			local[v] = offset + i
		}
		sub.Vertices = append(sub.Vertices, visited...)
		// Induced edges: iterate pairs present in the original edge list.
		// For each visited vertex, scan its adjacency and keep edges whose
		// other endpoint is also visited, emitting each undirected edge
		// once with its original orientation.
		for _, v := range visited {
			cols, _ := adj.Row(v)
			for _, w := range cols {
				if v >= w { // visit each unordered pair once (v < w)
					continue
				}
				lw, ok := local[w]
				if !ok {
					continue
				}
				lv := local[v]
				id, ok := eidx.Lookup(v, w)
				if !ok {
					continue // symmetric entry without a stored edge (should not happen)
				}
				// Preserve the original orientation for edge features.
				if g.Src[id] == v {
					sub.Src = append(sub.Src, lv)
					sub.Dst = append(sub.Dst, lw)
				} else {
					sub.Src = append(sub.Src, lw)
					sub.Dst = append(sub.Dst, lv)
				}
				sub.EdgeIDs = append(sub.EdgeIDs, id)
			}
		}
	}
	return sub
}

// StandardShaDow implements Algorithm 2: sample each batch vertex's
// subgraph sequentially and append the components. This is the baseline
// ("PyG") implementation the paper measures against.
func StandardShaDow(g *graph.Graph, eidx *EdgeIndex, batch []int, cfg Config, r *rng.Rand) *Subgraph {
	validate(g, batch, cfg)
	adj := g.Adjacency()
	visitedSets := make([][]int, len(batch))
	for i, root := range batch {
		visitedSets[i] = walkOneRoot(adj, root, cfg, r)
	}
	return assembleComponents(g, eidx, visitedSets)
}

// StandardShaDowStreams is StandardShaDow with one random stream per
// batch vertex: root i's walk draws only from streams[i]. With the same
// streams it produces exactly the components BulkMatrixShaDowStreams
// samples for the same roots, independent of batch composition — the
// property the distributed trainer's determinism is built on.
func StandardShaDowStreams(g *graph.Graph, eidx *EdgeIndex, batch []int, cfg Config, streams []*rng.Rand) *Subgraph {
	validate(g, batch, cfg)
	if len(streams) != len(batch) {
		panic("sampling: StandardShaDowStreams wants one stream per batch vertex")
	}
	adj := g.Adjacency()
	visitedSets := make([][]int, len(batch))
	for i, root := range batch {
		visitedSets[i] = walkOneRoot(adj, root, cfg, streams[i])
	}
	return assembleComponents(g, eidx, visitedSets)
}

func validate(g *graph.Graph, batch []int, cfg Config) {
	if cfg.Depth < 1 || cfg.Fanout < 1 {
		panic(fmt.Sprintf("sampling: invalid ShaDow config %+v", cfg))
	}
	for _, b := range batch {
		if b < 0 || b >= g.N {
			panic(fmt.Sprintf("sampling: batch vertex %d outside graph of %d", b, g.N))
		}
	}
}
