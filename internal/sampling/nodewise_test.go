package sampling

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestNodeWiseSampleStructure(t *testing.T) {
	r := rng.New(1)
	g := testGraph(r, 50, 80)
	batch := []int{0, 10, 20}
	s := NodeWiseSample(g, batch, 2, 3, r)
	if len(s.Layers) < 2 || len(s.Layers) > 3 {
		t.Fatalf("layers %d", len(s.Layers))
	}
	if len(s.Layers[0]) != len(batch) {
		t.Fatalf("hop 0 has %d vertices, want batch size %d", len(s.Layers[0]), len(batch))
	}
	adj := g.Adjacency()
	for hop, e := range s.Edges {
		srcs, dsts := e[0], e[1]
		if len(srcs) != len(dsts) {
			t.Fatalf("hop %d unbalanced edges", hop)
		}
		// Every sampled edge must exist in the graph and per-vertex fanout
		// must be bounded.
		perVertex := map[int]int{}
		for k := range srcs {
			if adj.At(dsts[k], srcs[k]) == 0 {
				t.Fatalf("hop %d sampled non-edge (%d,%d)", hop, srcs[k], dsts[k])
			}
			perVertex[dsts[k]]++
		}
		for v, c := range perVertex {
			if c > 3 {
				t.Fatalf("hop %d vertex %d has fanout %d > 3", hop, v, c)
			}
		}
	}
}

func TestNodeWiseFanoutKeepsAllSmallNeighborhoods(t *testing.T) {
	// Path graph: interior vertices have 2 neighbors < fanout 5.
	g := graph.New(5, []int{0, 1, 2, 3}, []int{1, 2, 3, 4})
	r := rng.New(2)
	s := NodeWiseSample(g, []int{2}, 1, 5, r)
	if len(s.Layers[1]) != 2 {
		t.Fatalf("hop 1 has %d vertices, want both neighbors", len(s.Layers[1]))
	}
}

func TestLayerWiseSampleBudget(t *testing.T) {
	r := rng.New(3)
	g := testGraph(r, 60, 120)
	batch := []int{1, 2, 3, 4}
	const budget = 5
	s := LayerWiseSample(g, batch, 3, budget, r)
	for hop := 1; hop < len(s.Layers); hop++ {
		if len(s.Layers[hop]) > budget {
			t.Fatalf("hop %d has %d vertices > budget %d", hop, len(s.Layers[hop]), budget)
		}
	}
}

func TestLayerWiseEdgesConnectAdjacentLayers(t *testing.T) {
	r := rng.New(4)
	g := testGraph(r, 40, 70)
	s := LayerWiseSample(g, []int{0, 5}, 2, 6, r)
	adj := g.Adjacency()
	for hop, e := range s.Edges {
		inLayer := map[int]bool{}
		for _, u := range s.Layers[hop+1] {
			inLayer[u] = true
		}
		inPrev := map[int]bool{}
		for _, v := range s.Layers[hop] {
			inPrev[v] = true
		}
		for k := range e[0] {
			if !inLayer[e[0][k]] || !inPrev[e[1][k]] {
				t.Fatalf("hop %d edge endpoints outside layers", hop)
			}
			if adj.At(e[1][k], e[0][k]) == 0 {
				t.Fatalf("hop %d edge not in graph", hop)
			}
		}
	}
}

func TestLayerWiseDistinctVertices(t *testing.T) {
	r := rng.New(5)
	g := testGraph(r, 40, 80)
	s := LayerWiseSample(g, []int{0}, 3, 4, r)
	for hop, layer := range s.Layers {
		seen := map[int]bool{}
		for _, v := range layer {
			if seen[v] {
				t.Fatalf("hop %d repeats vertex %d", hop, v)
			}
			seen[v] = true
		}
	}
}

func TestWeightedSampleWithoutReplacement(t *testing.T) {
	r := rng.New(6)
	items := []int{1, 2, 3, 4, 5}
	weights := map[int]int{1: 1, 2: 1, 3: 1, 4: 100, 5: 100}
	// Heavily weighted items must dominate selections of size 2.
	heavy := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		sel := weightedSampleWithoutReplacement(items, weights, 2, r)
		if len(sel) != 2 {
			t.Fatalf("selected %d items", len(sel))
		}
		if sel[0] == sel[1] {
			t.Fatal("duplicate selection")
		}
		for _, s := range sel {
			if s == 4 || s == 5 {
				heavy++
			}
		}
	}
	if frac := float64(heavy) / float64(2*trials); frac < 0.8 {
		t.Fatalf("heavy items selected only %.2f of the time", frac)
	}
	// k ≥ n returns everything.
	all := weightedSampleWithoutReplacement(items, weights, 10, r)
	if len(all) != 5 {
		t.Fatalf("k>n returned %d items", len(all))
	}
}

func TestNumVerticesLayered(t *testing.T) {
	s := &LayeredSample{Layers: [][]int{{1, 2}, {3}, {4, 5, 6}}}
	if s.NumVertices() != 6 {
		t.Fatalf("NumVertices %d", s.NumVertices())
	}
}
