package sampling

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// This file implements the other two sampler families the paper's §II-B
// categorizes — node-wise (GraphSAGE-style) and layer-wise (LADIES-style)
// sampling — so the ShaDow subgraph approach can be compared against them
// in ablations. Matrix-based bulk sampling was originally introduced for
// exactly these two families (Tripathy et al., MLSys'24); the paper's
// contribution is extending it to ShaDow.
//
// Both samplers return a LayeredSample: per-hop vertex frontiers plus the
// edges connecting consecutive hops, which is the structure an L-layer
// GNN consumes when trained with neighborhood sampling (in contrast to
// ShaDow's induced block-diagonal subgraph consumed by a full-depth GNN).

// LayeredSample is the output of node-wise or layer-wise sampling: hop 0
// holds the batch vertices; hop l holds the vertices needed at distance
// l. Edges[l] connects Layers[l+1] sources to Layers[l] destinations in
// original vertex ids.
type LayeredSample struct {
	Layers [][]int
	Edges  [][2][]int // Edges[l] = (srcs in Layers[l+1], dsts in Layers[l])
}

// NumVertices returns the total vertex count across hops (with
// duplicates across hops counted once per hop, as GNN implementations
// materialize them).
func (s *LayeredSample) NumVertices() int {
	n := 0
	for _, l := range s.Layers {
		n += len(l)
	}
	return n
}

// NodeWiseSample implements GraphSAGE-style node-wise sampling: each
// vertex of the current frontier independently samples up to fanout of
// its neighbors per hop, for depth hops.
func NodeWiseSample(g *graph.Graph, batch []int, depth, fanout int, r *rng.Rand) *LayeredSample {
	validate(g, batch, Config{Depth: depth, Fanout: fanout})
	adj := g.Adjacency()
	out := &LayeredSample{Layers: [][]int{append([]int(nil), batch...)}}
	frontier := batch
	for hop := 0; hop < depth; hop++ {
		var nextSet []int
		seen := make(map[int]bool)
		var srcs, dsts []int
		for _, v := range frontier {
			cols, _ := adj.Row(v)
			var picks []int
			if len(cols) <= fanout {
				picks = cols
			} else {
				sel := r.SampleWithoutReplacement(len(cols), fanout)
				picks = make([]int, len(sel))
				for i, p := range sel {
					picks[i] = cols[p]
				}
			}
			for _, u := range picks {
				srcs = append(srcs, u)
				dsts = append(dsts, v)
				if !seen[u] {
					seen[u] = true
					nextSet = append(nextSet, u)
				}
			}
		}
		out.Layers = append(out.Layers, nextSet)
		out.Edges = append(out.Edges, [2][]int{srcs, dsts})
		frontier = nextSet
		if len(frontier) == 0 {
			break
		}
	}
	return out
}

// LayerWiseSample implements LADIES-style layer-wise sampling: at each
// hop a fixed budget of vertices is drawn for the whole layer, with
// probability proportional to each candidate's connectivity into the
// current frontier, and only edges between the sampled layer and the
// frontier are kept.
func LayerWiseSample(g *graph.Graph, batch []int, depth, layerBudget int, r *rng.Rand) *LayeredSample {
	validate(g, batch, Config{Depth: depth, Fanout: layerBudget})
	adj := g.Adjacency()
	out := &LayeredSample{Layers: [][]int{append([]int(nil), batch...)}}
	frontier := batch
	for hop := 0; hop < depth; hop++ {
		// Candidate weights: number of frontier neighbors (∝ column sums
		// of the frontier-restricted adjacency, the LADIES importance).
		weight := make(map[int]int)
		for _, v := range frontier {
			cols, _ := adj.Row(v)
			for _, u := range cols {
				weight[u]++
			}
		}
		if len(weight) == 0 {
			break
		}
		candidates := make([]int, 0, len(weight))
		for u := range weight {
			candidates = append(candidates, u)
		}
		// Deterministic order before weighted sampling.
		insertionSortInts(candidates)
		layer := weightedSampleWithoutReplacement(candidates, weight, layerBudget, r)

		inLayer := make(map[int]bool, len(layer))
		for _, u := range layer {
			inLayer[u] = true
		}
		var srcs, dsts []int
		for _, v := range frontier {
			cols, _ := adj.Row(v)
			for _, u := range cols {
				if inLayer[u] {
					srcs = append(srcs, u)
					dsts = append(dsts, v)
				}
			}
		}
		out.Layers = append(out.Layers, layer)
		out.Edges = append(out.Edges, [2][]int{srcs, dsts})
		frontier = layer
	}
	return out
}

// weightedSampleWithoutReplacement draws up to k items with probability
// proportional to weight, without replacement (Efraimidis–Spirakis keys).
func weightedSampleWithoutReplacement(items []int, weight map[int]int, k int, r *rng.Rand) []int {
	if k >= len(items) {
		return append([]int(nil), items...)
	}
	type keyed struct {
		item int
		key  float64
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		// key = U^(1/w); larger keys win.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		ks[i] = keyed{it, pow(u, 1.0/float64(weight[it]))}
	}
	// Partial selection of the k largest keys.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(ks); j++ {
			if ks[j].key > ks[best].key {
				best = j
			}
		}
		ks[i], ks[best] = ks[best], ks[i]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ks[i].item
	}
	return out
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
