package sampling

import (
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// BulkMatrixShaDow samples k minibatches in one bulk invocation using the
// matrix formulation of Figure 2:
//
//  1. Q_d is the (Σ batch sizes)×n row-selection matrix of all batch
//     vertices across all k batches, stacked per equation (1).
//  2. Repeat d times: P ← Q_l·A (one SpGEMM for every walker of every
//     batch simultaneously); divide each row by its sum to get a uniform
//     distribution and sample s nonzeros (SampleRows); expand Q_{l-1} to
//     one nonzero per newly visited vertex; accumulate the visited
//     vertices of each batch vertex in the frontier matrix F.
//  3. Extract the induced subgraph per batch vertex from its F row and
//     assemble one block-diagonal subgraph per batch.
//
// Sampling all k batches in one call is the utilization optimization the
// paper introduces: the SpGEMM and row-sampling kernels run over matrices
// k× taller, amortizing per-invocation overhead exactly as bulk sampling
// amortizes kernel launches on a GPU.
func BulkMatrixShaDow(g *graph.Graph, eidx *EdgeIndex, batches [][]int, cfg Config, r *rng.Rand) []*Subgraph {
	return bulkMatrixShaDow(g, eidx, batches, cfg, func(p *sparse.CSR, rootOf []int) *sparse.SampleRowsResult {
		return sparse.SampleRows(p, cfg.Fanout, r)
	})
}

// BulkMatrixShaDowStreams is BulkMatrixShaDow with one random stream per
// batch vertex (streams parallel to batches). Every row-sampling draw for
// a batch vertex's walkers comes from that vertex's own stream, so the
// subgraph sampled for a given (vertex, stream) pair is byte-identical no
// matter how many batches are stacked into the bulk call or how the
// batch is sharded across ranks — the reproducibility contract the
// distributed trainer's cross-rank parity rests on. It equals
// StandardShaDowStreams component-by-component for the same streams.
func BulkMatrixShaDowStreams(g *graph.Graph, eidx *EdgeIndex, batches [][]int, cfg Config, streams [][]*rng.Rand) []*Subgraph {
	var rootStreams []*rng.Rand
	for bi, batch := range batches {
		if bi >= len(streams) || len(streams[bi]) != len(batch) {
			panic("sampling: BulkMatrixShaDowStreams wants one stream per batch vertex")
		}
		rootStreams = append(rootStreams, streams[bi]...)
	}
	return bulkMatrixShaDow(g, eidx, batches, cfg, func(p *sparse.CSR, rootOf []int) *sparse.SampleRowsResult {
		rowRand := make([]*rng.Rand, len(rootOf))
		for row, root := range rootOf {
			rowRand[row] = rootStreams[root]
		}
		return sparse.SampleRowsStreams(p, cfg.Fanout, rowRand)
	})
}

// bulkMatrixShaDow is the matrix-formulation core: sampleFn draws up to
// cfg.Fanout neighbors per stacked walker row (rootOf maps each row to
// its owning global root index).
func bulkMatrixShaDow(g *graph.Graph, eidx *EdgeIndex, batches [][]int, cfg Config, sampleFn func(p *sparse.CSR, rootOf []int) *sparse.SampleRowsResult) []*Subgraph {
	for _, b := range batches {
		validate(g, b, cfg)
	}
	adj := g.Adjacency()

	// Global root list across all batches.
	var roots []int
	for _, batch := range batches {
		roots = append(roots, batch...)
	}
	nRoots := len(roots)

	// Visited bookkeeping per root: ordered list (root first) + set.
	visitedList := make([][]int, nRoots)
	visitedSet := make([]map[int]bool, nRoots)
	for i, v := range roots {
		visitedList[i] = []int{v}
		visitedSet[i] = map[int]bool{v: true}
	}

	// Cursor state: one row per active walker. Row j of Q selects
	// cursorVertex[j]; rootOf[j] says which batch vertex owns the walker.
	cursorVertex := append([]int(nil), roots...)
	rootOf := make([]int, nRoots)
	for i := range rootOf {
		rootOf[i] = i
	}

	// One Q·A product matrix is reused across all walk depths (and, via
	// the workspace pools, across bulk invocations): each depth's stacked
	// expansion overwrites the same storage instead of allocating anew.
	qa := new(sparse.CSR)
	defer qa.Release()
	for depth := 0; depth < cfg.Depth && len(cursorVertex) > 0; depth++ {
		// Stacked neighborhood expansion: Q_l·A for all walkers of all k
		// batches at once. Q_l is a row-selection matrix (one unit nonzero
		// per row), so the product reduces to a bulk CSR row gather — the
		// same specialization a GPU SpGEMM exploits for selection matrices.
		p := sparse.GatherRowsInto(qa, adj, cursorVertex)
		sampled := sampleFn(p, rootOf)

		var nextVertex []int
		var nextRoot []int
		for row, picks := range sampled.Samples {
			root := rootOf[row]
			for _, u := range picks {
				if !visitedSet[root][u] {
					visitedSet[root][u] = true
					visitedList[root] = append(visitedList[root], u)
					nextVertex = append(nextVertex, u)
					nextRoot = append(nextRoot, root)
				}
			}
		}
		cursorVertex, rootOf = nextVertex, nextRoot
	}

	// Per-batch assembly: slice this bulk run's roots back into batches.
	out := make([]*Subgraph, len(batches))
	cursor := 0
	for bi, batch := range batches {
		sets := make([][]int, len(batch))
		for i := range batch {
			sets[i] = visitedList[cursor]
			cursor++
		}
		out[bi] = assembleComponents(g, eidx, sets)
	}
	return out
}

// MatrixShaDow samples a single minibatch with the matrix formulation —
// bulk sampling with k=1.
func MatrixShaDow(g *graph.Graph, eidx *EdgeIndex, batch []int, cfg Config, r *rng.Rand) *Subgraph {
	return BulkMatrixShaDow(g, eidx, [][]int{batch}, cfg, r)[0]
}

// ExtractComponentsSpGEMM reproduces the paper's extraction step
// literally: for each component's vertex set, build the induced adjacency
// with row- and column-selection SpGEMMs and assemble the block-diagonal
// sampled matrix A_S. It is used by tests and examples to demonstrate
// equivalence with the edge-list assembly the trainers use.
func ExtractComponentsSpGEMM(g *graph.Graph, visitedSets [][]int) *sparse.CSR {
	adj := g.Adjacency()
	blocks := make([]*sparse.CSR, len(visitedSets))
	for i, set := range visitedSets {
		blocks[i] = sparse.ExtractSubmatrix(adj, set)
	}
	return sparse.BlockDiag(blocks...)
}

// SubgraphAdjacency builds the block-diagonal adjacency matrix of a
// sampled Subgraph (symmetric, unit values) — the A_S of the paper.
func SubgraphAdjacency(s *Subgraph) *sparse.CSR {
	return sparse.FromEdges(s.NumVertices(), s.Src, s.Dst, true)
}
