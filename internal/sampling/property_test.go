package sampling

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// randomGraph builds a simple undirected graph: n vertices, ~m distinct
// edges, no self-loops, no duplicate pairs.
func randomGraph(r *rng.Rand, n, m int) *graph.Graph {
	seen := make(map[[2]int]bool)
	var src, dst []int
	for tries := 0; len(src) < m && tries < 4*m; tries++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		src = append(src, u)
		dst = append(dst, v)
	}
	return graph.New(n, src, dst)
}

// componentRanges returns the [lo, hi) local-vertex bounds of each
// component (components are laid out contiguously, roots first).
func componentRanges(s *Subgraph) [][2]int {
	ranges := make([][2]int, s.Components)
	for i, lo := range s.Roots {
		hi := s.NumVertices()
		if i+1 < len(s.Roots) {
			hi = s.Roots[i+1]
		}
		ranges[i] = [2]int{lo, hi}
	}
	return ranges
}

// checkInvariants verifies every structural property a ShaDow subgraph
// must satisfy with respect to its original graph and batch.
func checkInvariants(t *testing.T, g *graph.Graph, batch []int, cfg Config, s *Subgraph) {
	t.Helper()
	if s.Components != len(batch) {
		t.Fatalf("components = %d, batch size %d", s.Components, len(batch))
	}
	if len(s.Roots) != len(batch) {
		t.Fatalf("roots = %d, batch size %d", len(s.Roots), len(batch))
	}
	if len(s.Src) != len(s.Dst) || len(s.Src) != len(s.EdgeIDs) {
		t.Fatalf("edge arrays disagree: %d/%d/%d", len(s.Src), len(s.Dst), len(s.EdgeIDs))
	}
	ranges := componentRanges(s)

	// Size bound: a component holds at most sum_{i=0..d} fanout^i vertices.
	maxSize := 1
	pow := 1
	for i := 0; i < cfg.Depth; i++ {
		pow *= cfg.Fanout
		maxSize += pow
	}

	// componentOf[local] = component index.
	componentOf := make([]int, s.NumVertices())
	for ci, rg := range ranges {
		if rg[0] >= rg[1] {
			t.Fatalf("component %d empty [%d,%d)", ci, rg[0], rg[1])
		}
		if s.Vertices[rg[0]] != batch[ci] {
			t.Fatalf("component %d first vertex %d, want root %d", ci, s.Vertices[rg[0]], batch[ci])
		}
		if size := rg[1] - rg[0]; size > maxSize {
			t.Fatalf("component %d has %d vertices, fanout/depth bound is %d", ci, size, maxSize)
		}
		// Vertex ids valid and bijective into the original graph within
		// the component (no local vertex maps to the same original twice).
		inComp := make(map[int]bool, rg[1]-rg[0])
		for l := rg[0]; l < rg[1]; l++ {
			componentOf[l] = ci
			v := s.Vertices[l]
			if v < 0 || v >= g.N {
				t.Fatalf("component %d local %d maps to out-of-range vertex %d", ci, l, v)
			}
			if inComp[v] {
				t.Fatalf("component %d holds original vertex %d twice", ci, v)
			}
			inComp[v] = true
		}
	}

	// Edges: endpoints in the same component, ids valid and bijective
	// into the original edge list per component, orientation preserved.
	edgeSeen := make(map[[2]int]bool) // (component, edge id)
	adjComp := make([][]int, s.NumVertices())
	for k := range s.Src {
		ls, ld := s.Src[k], s.Dst[k]
		if ls < 0 || ls >= s.NumVertices() || ld < 0 || ld >= s.NumVertices() {
			t.Fatalf("edge %d local ids (%d,%d) out of range", k, ls, ld)
		}
		ci := componentOf[ls]
		if componentOf[ld] != ci {
			t.Fatalf("edge %d crosses components %d and %d — not block-diagonal", k, ci, componentOf[ld])
		}
		id := s.EdgeIDs[k]
		if id < 0 || id >= g.NumEdges() {
			t.Fatalf("edge %d has invalid original id %d", k, id)
		}
		if g.Src[id] != s.Vertices[ls] || g.Dst[id] != s.Vertices[ld] {
			t.Fatalf("edge %d (%d→%d) does not match original edge %d (%d→%d)",
				k, s.Vertices[ls], s.Vertices[ld], id, g.Src[id], g.Dst[id])
		}
		key := [2]int{ci, id}
		if edgeSeen[key] {
			t.Fatalf("component %d holds original edge %d twice", ci, id)
		}
		edgeSeen[key] = true
		adjComp[ls] = append(adjComp[ls], ld)
		adjComp[ld] = append(adjComp[ld], ls)
	}

	// Induced completeness: every original edge between two visited
	// vertices of a component must be present.
	for ci, rg := range ranges {
		local := make(map[int]int, rg[1]-rg[0])
		for l := rg[0]; l < rg[1]; l++ {
			local[s.Vertices[l]] = l
		}
		for id := 0; id < g.NumEdges(); id++ {
			lu, okU := local[g.Src[id]]
			lv, okV := local[g.Dst[id]]
			if okU && okV && !edgeSeen[[2]int{ci, id}] {
				t.Fatalf("component %d misses induced edge %d (%d–%d) between local %d and %d",
					ci, id, g.Src[id], g.Dst[id], lu, lv)
			}
		}
	}

	// Depth bound: every component vertex is within Depth hops of its
	// root inside the component.
	for ci, rg := range ranges {
		dist := make(map[int]int, rg[1]-rg[0])
		frontier := []int{rg[0]}
		dist[rg[0]] = 0
		for len(frontier) > 0 {
			var next []int
			for _, v := range frontier {
				for _, w := range adjComp[v] {
					if _, ok := dist[w]; !ok {
						dist[w] = dist[v] + 1
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		for l := rg[0]; l < rg[1]; l++ {
			d, ok := dist[l]
			if !ok {
				t.Fatalf("component %d vertex %d (orig %d) unreachable from root", ci, l, s.Vertices[l])
			}
			if d > cfg.Depth {
				t.Fatalf("component %d vertex %d at distance %d > depth %d", ci, l, d, cfg.Depth)
			}
		}
	}
}

func randomBatch(r *rng.Rand, n, size int) []int {
	perm := r.Perm(n)
	return perm[:size]
}

func TestStandardShaDowPropertyInvariants(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(120)
		g := randomGraph(r, n, 2*n)
		eidx := NewEdgeIndex(g)
		cfg := Config{Depth: 1 + r.Intn(3), Fanout: 1 + r.Intn(5)}
		batch := randomBatch(r, n, 1+r.Intn(min(8, n)))
		s := StandardShaDow(g, eidx, batch, cfg, r.Split())
		checkInvariants(t, g, batch, cfg, s)
	}
}

func TestBulkMatrixShaDowPropertyInvariants(t *testing.T) {
	r := rng.New(43)
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(120)
		g := randomGraph(r, n, 2*n)
		eidx := NewEdgeIndex(g)
		cfg := Config{Depth: 1 + r.Intn(3), Fanout: 1 + r.Intn(5)}
		k := 1 + r.Intn(4)
		batches := make([][]int, k)
		for b := range batches {
			batches[b] = randomBatch(r, n, 1+r.Intn(min(8, n)))
		}
		subs := BulkMatrixShaDow(g, eidx, batches, cfg, r.Split())
		if len(subs) != k {
			t.Fatalf("bulk returned %d subgraphs for %d batches", len(subs), k)
		}
		for b, s := range subs {
			checkInvariants(t, g, batches[b], cfg, s)
		}
	}
}

// makeStreams returns one deterministic stream per batch vertex.
func makeStreams(seed uint64, batch []int) []*rng.Rand {
	streams := make([]*rng.Rand, len(batch))
	for i := range batch {
		streams[i] = rng.New(seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15))
	}
	return streams
}

func subgraphsEqual(a, b *Subgraph) bool {
	if a.Components != b.Components || len(a.Vertices) != len(b.Vertices) || len(a.Src) != len(b.Src) {
		return false
	}
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			return false
		}
	}
	for i := range a.Roots {
		if a.Roots[i] != b.Roots[i] {
			return false
		}
	}
	for i := range a.Src {
		if a.Src[i] != b.Src[i] || a.Dst[i] != b.Dst[i] || a.EdgeIDs[i] != b.EdgeIDs[i] {
			return false
		}
	}
	return true
}

// TestStreamsStandardBulkEquivalence: with per-root streams the standard
// and bulk-matrix samplers are the same function.
func TestStreamsStandardBulkEquivalence(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 30; trial++ {
		n := 10 + r.Intn(120)
		g := randomGraph(r, n, 3*n)
		eidx := NewEdgeIndex(g)
		cfg := Config{Depth: 1 + r.Intn(3), Fanout: 1 + r.Intn(4)}
		batch := randomBatch(r, n, 1+r.Intn(min(10, n)))
		seed := r.Uint64()
		std := StandardShaDowStreams(g, eidx, batch, cfg, makeStreams(seed, batch))
		bulk := BulkMatrixShaDowStreams(g, eidx, [][]int{batch}, cfg, [][]*rng.Rand{makeStreams(seed, batch)})[0]
		checkInvariants(t, g, batch, cfg, std)
		if !subgraphsEqual(std, bulk) {
			t.Fatalf("trial %d: standard and bulk-matrix disagree under per-root streams", trial)
		}
	}
}

// TestStreamsStackingInvariance: a batch's subgraph does not depend on
// which other batches are stacked into the bulk call — the property that
// makes bulk batch count k a pure performance knob.
func TestStreamsStackingInvariance(t *testing.T) {
	r := rng.New(53)
	for trial := 0; trial < 20; trial++ {
		n := 20 + r.Intn(100)
		g := randomGraph(r, n, 3*n)
		eidx := NewEdgeIndex(g)
		cfg := Config{Depth: 2, Fanout: 3}
		perm := r.Perm(n)
		b1, b2, b3 := perm[0:4], perm[4:8], perm[8:12]
		seed := r.Uint64()
		streams := func(b []int, off uint64) []*rng.Rand {
			s := make([]*rng.Rand, len(b))
			for i := range b {
				s[i] = rng.New(seed ^ ((off + uint64(i+1)) * 0x9e3779b97f4a7c15))
			}
			return s
		}
		// All three stacked at once vs sampled one batch at a time.
		stacked := BulkMatrixShaDowStreams(g, eidx, [][]int{b1, b2, b3}, cfg,
			[][]*rng.Rand{streams(b1, 0), streams(b2, 100), streams(b3, 200)})
		solo1 := BulkMatrixShaDowStreams(g, eidx, [][]int{b1}, cfg, [][]*rng.Rand{streams(b1, 0)})[0]
		solo2 := BulkMatrixShaDowStreams(g, eidx, [][]int{b2}, cfg, [][]*rng.Rand{streams(b2, 100)})[0]
		solo3 := BulkMatrixShaDowStreams(g, eidx, [][]int{b3}, cfg, [][]*rng.Rand{streams(b3, 200)})[0]
		for i, pair := range [][2]*Subgraph{{stacked[0], solo1}, {stacked[1], solo2}, {stacked[2], solo3}} {
			if !subgraphsEqual(pair[0], pair[1]) {
				t.Fatalf("trial %d: batch %d differs between stacked and solo bulk calls", trial, i)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
