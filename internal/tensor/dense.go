// Package tensor implements dense row-major matrices and the parallel
// CPU kernels (blocked GEMM, elementwise ops, gather/scatter) that stand
// in for the GPU kernels used by the paper's PyTorch stack.
//
// The storage and every kernel are generic over the element type
// (Matrix[T] for T in fp.Float); Dense and Dense32 alias the float64
// and float32 instantiations. The float64 surface is unchanged from the
// pre-generic package — same names, same semantics, bitwise-identical
// results — while the float32 instantiation halves the memory traffic
// of the bandwidth-bound inference kernels.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/fp"
	"repro/internal/workspace"
)

// Matrix is a dense row-major matrix of T.
type Matrix[T fp.Float] struct {
	rows, cols int
	data       []T
}

// Dense is the float64 matrix — the training and default-precision
// type, and the element type of every historical API in this package.
type Dense = Matrix[float64]

// Dense32 is the float32 matrix used by the reduced-precision
// inference path.
type Dense32 = Matrix[float32]

// New returns a zeroed rows×cols float64 matrix.
func New(rows, cols int) *Dense { return NewOf[float64](rows, cols) }

// NewOf returns a zeroed rows×cols matrix of the given element type.
func NewOf[T fp.Float](rows, cols int) *Matrix[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix[T]{rows: rows, cols: cols, data: make([]T, rows*cols)}
}

// NewFrom returns a zeroed rows×cols float64 matrix whose backing
// storage is borrowed from the arena's workspace pools. The matrix is
// valid until the arena is reset past the allocation point; a nil arena
// falls back to New. This is how autograd tapes and trainer steps
// recycle activation and gradient buffers instead of allocating per
// step.
func NewFrom(a *workspace.Arena, rows, cols int) *Dense {
	return NewFromOf[float64](a, rows, cols)
}

// NewFromOf is NewFrom generic over the element type.
func NewFromOf[T fp.Float](a *workspace.Arena, rows, cols int) *Matrix[T] {
	if a == nil {
		return NewOf[T](rows, cols)
	}
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix[T]{rows: rows, cols: cols, data: workspace.Float[T](a, rows*cols)}
}

// FromSlice wraps data (length rows*cols, row-major) without copying.
func FromSlice[T fp.Float](rows, cols int, data []T) *Matrix[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix[T]{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows (copying).
func FromRows[T fp.Float](rows [][]T) *Matrix[T] {
	if len(rows) == 0 {
		return NewOf[T](0, 0)
	}
	c := len(rows[0])
	m := NewOf[T](len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("tensor: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix[T]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix[T]) Cols() int { return m.cols }

// Size returns rows*cols.
func (m *Matrix[T]) Size() int { return len(m.data) }

// Data returns the underlying row-major backing slice (not a copy).
func (m *Matrix[T]) Data() []T { return m.data }

// At returns element (i, j).
func (m *Matrix[T]) At(i, j int) T { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix[T]) Set(i, j int, v T) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix[T]) Row(i int) []T { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix[T]) Clone() *Matrix[T] {
	c := NewOf[T](m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix[T]) CopyFrom(src *Matrix[T]) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets all elements to 0.
func (m *Matrix[T]) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Matrix[T]) Fill(v T) {
	for i := range m.data {
		m.data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix[T]) SameShape(o *Matrix[T]) bool { return m.rows == o.rows && m.cols == o.cols }

// Reshape returns a view of the same data with new dimensions.
// rows*cols must equal the current size.
func (m *Matrix[T]) Reshape(rows, cols int) *Matrix[T] {
	if rows*cols != len(m.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.rows, m.cols, rows, cols))
	}
	return &Matrix[T]{rows: rows, cols: cols, data: m.data}
}

// SliceRows returns a view of rows [lo, hi) sharing storage with m.
func (m *Matrix[T]) SliceRows(lo, hi int) *Matrix[T] {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", lo, hi, m.rows))
	}
	return &Matrix[T]{rows: hi - lo, cols: m.cols, data: m.data[lo*m.cols : hi*m.cols]}
}

// MaxAbsDiff returns max |m[i]-o[i]|; shapes must match.
func (m *Matrix[T]) MaxAbsDiff(o *Matrix[T]) float64 {
	if !m.SameShape(o) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	worst := 0.0
	for i := range m.data {
		if d := math.Abs(float64(m.data[i]) - float64(o.data[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// EqualApprox reports whether all elements differ by at most tol.
func (m *Matrix[T]) EqualApprox(o *Matrix[T], tol float64) bool {
	return m.SameShape(o) && m.MaxAbsDiff(o) <= tol
}

// Convert copies src into dst elementwise, converting between element
// types (float64→float32 rounds to nearest; float32→float64 is exact).
// Shapes must match. This is the precision boundary of the f32
// inference path: event features cross it once per event, model weights
// once at construction.
func Convert[D, S fp.Float](dst *Matrix[D], src *Matrix[S]) {
	if dst.rows != src.rows || dst.cols != src.cols {
		panic(fmt.Sprintf("tensor: Convert shape mismatch %dx%d vs %dx%d", dst.rows, dst.cols, src.rows, src.cols))
	}
	for i, v := range src.data {
		dst.data[i] = D(v)
	}
}

// ConvertFrom returns a new arena-backed matrix with src converted to
// element type D (a nil arena allocates from the heap).
func ConvertFrom[D, S fp.Float](a *workspace.Arena, src *Matrix[S]) *Matrix[D] {
	dst := NewFromOf[D](a, src.rows, src.cols)
	Convert(dst, src)
	return dst
}

// String renders small matrices for debugging.
func (m *Matrix[T]) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Dense{%dx%d}", m.rows, m.cols)
	}
	s := fmt.Sprintf("Dense{%dx%d}[\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		s += " "
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf(" %8.4f", float64(m.At(i, j)))
		}
		s += "\n"
	}
	return s + "]"
}
