// Package tensor implements dense row-major float64 matrices and the
// parallel CPU kernels (blocked GEMM, elementwise ops, gather/scatter)
// that stand in for the GPU kernels used by the paper's PyTorch stack.
package tensor

import (
	"fmt"
	"math"

	"repro/internal/workspace"
)

// Dense is a dense row-major matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFrom returns a zeroed rows×cols matrix whose backing storage is
// borrowed from the arena's workspace pools. The matrix is valid until
// the arena is reset past the allocation point; a nil arena falls back
// to New. This is how autograd tapes and trainer steps recycle
// activation and gradient buffers instead of allocating per step.
func NewFrom(a *workspace.Arena, rows, cols int) *Dense {
	if a == nil {
		return New(rows, cols)
	}
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: a.F64(rows * cols)}
}

// FromSlice wraps data (length rows*cols, row-major) without copying.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// FromRows builds a matrix from a slice of equal-length rows (copying).
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("tensor: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Size returns rows*cols.
func (m *Dense) Size() int { return len(m.data) }

// Data returns the underlying row-major backing slice (not a copy).
func (m *Dense) Data() []float64 { return m.data }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom copies src into m. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets all elements to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets all elements to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Dense) SameShape(o *Dense) bool { return m.rows == o.rows && m.cols == o.cols }

// Reshape returns a view of the same data with new dimensions.
// rows*cols must equal the current size.
func (m *Dense) Reshape(rows, cols int) *Dense {
	if rows*cols != len(m.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", m.rows, m.cols, rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: m.data}
}

// SliceRows returns a view of rows [lo, hi) sharing storage with m.
func (m *Dense) SliceRows(lo, hi int) *Dense {
	if lo < 0 || hi < lo || hi > m.rows {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", lo, hi, m.rows))
	}
	return &Dense{rows: hi - lo, cols: m.cols, data: m.data[lo*m.cols : hi*m.cols]}
}

// MaxAbsDiff returns max |m[i]-o[i]|; shapes must match.
func (m *Dense) MaxAbsDiff(o *Dense) float64 {
	if !m.SameShape(o) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	worst := 0.0
	for i := range m.data {
		if d := math.Abs(m.data[i] - o.data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// EqualApprox reports whether all elements differ by at most tol.
func (m *Dense) EqualApprox(o *Dense, tol float64) bool {
	return m.SameShape(o) && m.MaxAbsDiff(o) <= tol
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	if m.rows*m.cols > 400 {
		return fmt.Sprintf("Dense{%dx%d}", m.rows, m.cols)
	}
	s := fmt.Sprintf("Dense{%dx%d}[\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		s += " "
		for j := 0; j < m.cols; j++ {
			s += fmt.Sprintf(" %8.4f", m.At(i, j))
		}
		s += "\n"
	}
	return s + "]"
}
