package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func naiveMatMul(a, b *Dense) *Dense {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			s := 0.0
			for p := 0; p < a.Cols(); p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomMat(r *rng.Rand, rows, cols int) *Dense {
	return RandN(r, rows, cols, 1)
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		m, k, n := r.Intn(20)+1, r.Intn(20)+1, r.Intn(20)+1
		a, b := randomMat(r, m, k), randomMat(r, k, n)
		got, want := MatMul(a, b), naiveMatMul(a, b)
		if !got.EqualApprox(want, 1e-12) {
			t.Fatalf("MatMul mismatch at %dx%dx%d: diff %v", m, k, n, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(2)
	a := randomMat(r, 7, 7)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).EqualApprox(a, 1e-14) || !MatMul(id, a).EqualApprox(a, 1e-14) {
		t.Fatal("identity multiplication altered matrix")
	}
}

func TestMatMulAssociativity(t *testing.T) {
	r := rng.New(3)
	a, b, c := randomMat(r, 5, 6), randomMat(r, 6, 4), randomMat(r, 4, 3)
	left := MatMul(MatMul(a, b), c)
	right := MatMul(a, MatMul(b, c))
	if !left.EqualApprox(right, 1e-10) {
		t.Fatalf("(AB)C != A(BC): diff %v", left.MaxAbsDiff(right))
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 20; trial++ {
		m, k, n := r.Intn(15)+1, r.Intn(15)+1, r.Intn(15)+1
		a, b := randomMat(r, m, k), randomMat(r, n, k)
		if got, want := MatMulT(a, b), MatMul(a, b.Transpose()); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("MatMulT mismatch: %v", got.MaxAbsDiff(want))
		}
		c := randomMat(r, k, n)
		a2 := randomMat(r, k, m)
		if got, want := TMatMul(a2, c), MatMul(a2.Transpose(), c); !got.EqualApprox(want, 1e-12) {
			t.Fatalf("TMatMul mismatch: %v", got.MaxAbsDiff(want))
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	check := func(seed uint64, rRaw, cRaw uint8) bool {
		rows, cols := int(rRaw%20)+1, int(cRaw%20)+1
		m := randomMat(rng.New(seed), rows, cols)
		return m.Transpose().Transpose().EqualApprox(m, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	r := rng.New(5)
	a, b := randomMat(r, 9, 4), randomMat(r, 9, 4)
	if !Sub(Add(a, b), b).EqualApprox(a, 1e-14) {
		t.Fatal("(a+b)-b != a")
	}
}

func TestMulCommutes(t *testing.T) {
	r := rng.New(6)
	a, b := randomMat(r, 6, 6), randomMat(r, 6, 6)
	if !Mul(a, b).EqualApprox(Mul(b, a), 0) {
		t.Fatal("Hadamard product not commutative")
	}
}

func TestScaleLinearity(t *testing.T) {
	r := rng.New(7)
	a := randomMat(r, 5, 5)
	if !Scale(2, a).EqualApprox(Add(a, a), 1e-14) {
		t.Fatal("2a != a+a")
	}
}

func TestAddBias(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}})
	got := AddBias(m, b)
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("AddBias got %v", got)
	}
}

func TestColRowSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if cs := m.ColSums(); !cs.EqualApprox(FromRows([][]float64{{5, 7, 9}}), 0) {
		t.Fatalf("ColSums got %v", cs)
	}
	if rs := m.RowSums(); !rs.EqualApprox(FromRows([][]float64{{6}, {15}}), 0) {
		t.Fatalf("RowSums got %v", rs)
	}
	if m.Sum() != 21 {
		t.Fatalf("Sum got %v", m.Sum())
	}
	if m.Mean() != 3.5 {
		t.Fatalf("Mean got %v", m.Mean())
	}
}

func TestConcatSplitColsRoundTrip(t *testing.T) {
	r := rng.New(8)
	a, b, c := randomMat(r, 7, 3), randomMat(r, 7, 1), randomMat(r, 7, 5)
	cat := ConcatCols(a, b, c)
	if cat.Rows() != 7 || cat.Cols() != 9 {
		t.Fatalf("ConcatCols shape %dx%d", cat.Rows(), cat.Cols())
	}
	parts := SplitCols(cat, 3, 1, 5)
	if !parts[0].EqualApprox(a, 0) || !parts[1].EqualApprox(b, 0) || !parts[2].EqualApprox(c, 0) {
		t.Fatal("SplitCols did not invert ConcatCols")
	}
}

func TestConcatRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}, {5, 6}})
	got := ConcatRows(a, b)
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("ConcatRows got %v", got)
	}
}

func TestGatherScatterAdjoint(t *testing.T) {
	// <Gather(x, idx), y> == <x, ScatterAdd(y, idx)> — the adjoint identity
	// that autograd relies on.
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		n, m, c := r.Intn(20)+2, r.Intn(30)+1, r.Intn(5)+1
		x := randomMat(r, n, c)
		y := randomMat(r, m, c)
		idx := make([]int, m)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		g := GatherRows(x, idx)
		lhs := Mul(g, y).Sum()
		sc := New(n, c)
		ScatterAddRows(sc, y, idx)
		rhs := Mul(x, sc).Sum()
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
		}
	}
}

func TestGatherRowsValues(t *testing.T) {
	m := FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}})
	g := GatherRows(m, []int{2, 0, 2})
	want := FromRows([][]float64{{2, 2}, {0, 0}, {2, 2}})
	if !g.EqualApprox(want, 0) {
		t.Fatalf("GatherRows got %v", g)
	}
}

func TestScatterAddAccumulates(t *testing.T) {
	dst := New(2, 1)
	src := FromRows([][]float64{{1}, {2}, {4}})
	ScatterAddRows(dst, src, []int{0, 0, 1})
	want := FromRows([][]float64{{3}, {4}})
	if !dst.EqualApprox(want, 0) {
		t.Fatalf("ScatterAddRows got %v", dst)
	}
}

func TestSliceRowsAliases(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := m.SliceRows(1, 3)
	v.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows does not alias parent storage")
	}
}

func TestReshapePreservesData(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.Reshape(3, 2)
	want := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !r.EqualApprox(want, 0) {
		t.Fatalf("Reshape got %v", r)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { Add(New(2, 3), New(3, 2)) },
		func() { AddBias(New(2, 3), New(1, 2)) },
		func() { ConcatCols(New(2, 3), New(3, 3)) },
		func() { FromSlice(2, 2, []float64{1}) },
		func() { New(2, 2).Reshape(3, 3) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestXavierHeInitScale(t *testing.T) {
	r := rng.New(10)
	w := XavierInit(r, 100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range w.Data() {
		if v < -limit || v > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
	h := HeInit(r, 200, 50)
	variance := 0.0
	for _, v := range h.Data() {
		variance += v * v
	}
	variance /= float64(h.Size())
	if math.Abs(variance-2.0/200.0) > 0.002 {
		t.Fatalf("He variance %v too far from %v", variance, 2.0/200.0)
	}
}

func TestNorm2(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if math.Abs(m.Norm2()-5) > 1e-14 {
		t.Fatalf("Norm2 got %v", m.Norm2())
	}
}

func TestAXPY(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 10}})
	a.AXPY(0.5, b)
	if !a.EqualApprox(FromRows([][]float64{{6, 7}}), 1e-15) {
		t.Fatalf("AXPY got %v", a)
	}
}
