package tensor

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workspace"
)

// Warm-path allocation budgets: sizes stay below the parallel grain so
// the kernels run inline and measure only their own allocations.

func TestMatMulIntoZeroAllocs(t *testing.T) {
	a, b := benchMat(6, 9, 1), benchMat(9, 7, 2)
	out := New(6, 7)
	allocs := testing.AllocsPerRun(100, func() {
		MatMulInto(out, a, b)
	})
	if allocs != 0 {
		t.Fatalf("MatMulInto allocated %.1f per run, want 0", allocs)
	}
}

func TestBackpropKernelsIntoZeroAllocs(t *testing.T) {
	g, w := benchMat(6, 8, 1), benchMat(5, 8, 2)
	a2, g2 := benchMat(6, 8, 3), benchMat(6, 5, 4)
	outT := New(6, 5)
	outTM := New(8, 5)
	allocs := testing.AllocsPerRun(100, func() {
		MatMulTInto(outT, g, w)
		TMatMulInto(outTM, a2, g2)
	})
	if allocs != 0 {
		t.Fatalf("MatMulTInto+TMatMulInto allocated %.1f per run, want 0", allocs)
	}
}

func TestElementwiseIntoZeroAllocs(t *testing.T) {
	a, b := benchMat(8, 8, 1), benchMat(8, 8, 2)
	bias := benchMat(1, 8, 3)
	out := New(8, 8)
	cs, rs := New(1, 8), New(8, 1)
	idx := []int{3, 1, 7, 0}
	gather := New(4, 8)
	band := New(8, 4)
	allocs := testing.AllocsPerRun(100, func() {
		AddInto(out, a, b)
		SubInto(out, a, b)
		MulInto(out, a, b)
		ScaleInto(out, 2.5, a)
		AddBiasInto(out, a, bias)
		a.ColSumsInto(cs)
		a.RowSumsInto(rs)
		GatherRowsInto(gather, a, idx)
		ExtractColsInto(band, a, 2)
	})
	if allocs != 0 {
		t.Fatalf("elementwise Into kernels allocated %.1f per run, want 0", allocs)
	}
}

// Parity: every Into variant must be bit-identical to its value-returning
// reference on randomized inputs.

func TestIntoVariantsMatchReference(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		m, k, n := r.Intn(12)+1, r.Intn(12)+1, r.Intn(12)+1
		a, b := RandN(r, m, k, 1), RandN(r, k, n, 1)
		out := New(m, n)
		out.Fill(777)
		MatMulInto(out, a, b)
		if MatMul(a, b).MaxAbsDiff(out) != 0 {
			t.Fatalf("trial %d: MatMulInto differs", trial)
		}

		g := RandN(r, m, n, 1)
		w := RandN(r, k, n, 1)
		outT := New(m, k)
		outT.Fill(777)
		MatMulTInto(outT, g, w)
		if MatMulT(g, w).MaxAbsDiff(outT) != 0 {
			t.Fatalf("trial %d: MatMulTInto differs", trial)
		}

		x := RandN(r, m, k, 1)
		outTM2 := New(k, k)
		outTM2.Fill(777)
		TMatMulInto(outTM2, x, x)
		if TMatMul(x, x).MaxAbsDiff(outTM2) != 0 {
			t.Fatalf("trial %d: TMatMulInto differs", trial)
		}

		c, d := RandN(r, m, k, 1), RandN(r, m, k, 1)
		out2 := New(m, k)
		AddInto(out2, c, d)
		if Add(c, d).MaxAbsDiff(out2) != 0 {
			t.Fatalf("trial %d: AddInto differs", trial)
		}
		SubInto(out2, c, d)
		if Sub(c, d).MaxAbsDiff(out2) != 0 {
			t.Fatalf("trial %d: SubInto differs", trial)
		}
		MulInto(out2, c, d)
		if Mul(c, d).MaxAbsDiff(out2) != 0 {
			t.Fatalf("trial %d: MulInto differs", trial)
		}
		ScaleInto(out2, -1.5, c)
		if Scale(-1.5, c).MaxAbsDiff(out2) != 0 {
			t.Fatalf("trial %d: ScaleInto differs", trial)
		}

		bias := RandN(r, 1, k, 1)
		AddBiasInto(out2, c, bias)
		if AddBias(c, bias).MaxAbsDiff(out2) != 0 {
			t.Fatalf("trial %d: AddBiasInto differs", trial)
		}

		cs := New(1, k)
		c.ColSumsInto(cs)
		if c.ColSums().MaxAbsDiff(cs) != 0 {
			t.Fatalf("trial %d: ColSumsInto differs", trial)
		}
		rs := New(m, 1)
		c.RowSumsInto(rs)
		if c.RowSums().MaxAbsDiff(rs) != 0 {
			t.Fatalf("trial %d: RowSumsInto differs", trial)
		}

		idx := make([]int, r.Intn(2*m)+1)
		for i := range idx {
			idx[i] = r.Intn(m)
		}
		gat := New(len(idx), k)
		GatherRowsInto(gat, c, idx)
		if GatherRows(c, idx).MaxAbsDiff(gat) != 0 {
			t.Fatalf("trial %d: GatherRowsInto differs", trial)
		}

		cc := New(m, 2*k)
		ConcatColsInto(cc, c, d)
		if ConcatCols(c, d).MaxAbsDiff(cc) != 0 {
			t.Fatalf("trial %d: ConcatColsInto differs", trial)
		}
		// ExtractColsInto inverts ConcatCols segments.
		back := New(m, k)
		ExtractColsInto(back, cc, k)
		if back.MaxAbsDiff(d) != 0 {
			t.Fatalf("trial %d: ExtractColsInto differs", trial)
		}
	}
}

func TestNewFromArenaZeroedAndRecycled(t *testing.T) {
	a := workspace.NewArena()
	m := NewFrom(a, 5, 7)
	if m.Rows() != 5 || m.Cols() != 7 {
		t.Fatal("shape wrong")
	}
	for _, v := range m.Data() {
		if v != 0 {
			t.Fatal("arena matrix not zeroed")
		}
	}
	m.Fill(3)
	a.Reset()
	m2 := NewFrom(a, 5, 7)
	for _, v := range m2.Data() {
		if v != 0 {
			t.Fatal("recycled arena matrix not zeroed")
		}
	}
	a.Reset()
	if nil2 := NewFrom(nil, 2, 2); nil2.Size() != 4 {
		t.Fatal("nil arena fallback broken")
	}
}
