package tensor

import (
	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/workspace"
)

// This file is the int8 twin of tiled.go: the weight matrix packs into
// 4-column int8 panels and an MR×4 micro-kernel accumulates MR output
// rows in int32 registers, applying the fused dequantize + bias (+ ReLU
// + requantize) epilogue per 4-column block at store time. Integer
// accumulation is exact and the epilogue is elementwise with exactly
// qEpilogue's float32 expression, so the result is bitwise identical to
// qgemmBody at any tile shape and worker count. Beyond the flat
// kernel's byte savings, the tiled layout removes the pooled int32
// accumulator row's k/4 read-modify-write passes — the "bytes into
// time" step of the int8 path.

// qtileCtx carries the packed int8 GEMM operands into capture-free
// parallel bodies.
type qtileCtx struct {
	qgemmCtx
	wp     []int8 // w packed into 4-column panels, zero-padded
	mr, jb int
}

// qgemmTiled runs the packed int8 GEMM for the fused epilogue carried
// by c. Steady-state calls perform no heap allocation.
func qgemmTiled(kc kernels.Context, ts kernels.TileShape, c qgemmCtx) {
	n, k := c.w.cols, c.a.cols
	np := (n + 3) / 4
	wp := workspace.GetI8(np * 4 * k)
	packPanelsI8(wp, c.w.data, k, n)
	parallel.ForWithN(kc.Cap(), c.a.rows, qmatmulGrain,
		qtileCtx{qgemmCtx: c, wp: wp, mr: ts.MR, jb: ts.JB}, qgemmTiledBody)
	workspace.PutI8(wp)
}

// packPanelsI8 packs the row-major k×n int8 matrix w into 4-column
// panel-major layout, zero-padding past n (see packPanels).
func packPanelsI8(wp, w []int8, k, n int) {
	for q := 0; q < n/4; q++ {
		dst := wp[q*4*k : (q+1)*4*k]
		for p := 0; p < k; p++ {
			src := w[p*n+q*4 : p*n+q*4+4]
			dst[p*4] = src[0]
			dst[p*4+1] = src[1]
			dst[p*4+2] = src[2]
			dst[p*4+3] = src[3]
		}
	}
	if rem := n % 4; rem != 0 {
		dst := wp[(n/4)*4*k:]
		base := n - rem
		for p := 0; p < k; p++ {
			for j := 0; j < 4; j++ {
				if j < rem {
					dst[p*4+j] = w[p*n+base+j]
				} else {
					dst[p*4+j] = 0
				}
			}
		}
	}
}

// qgemmTiledBody computes rows [lo, hi) of the packed int8 GEMM with
// the fused epilogue applied per (row, 4-column block).
func qgemmTiledBody(c qtileCtx, lo, hi int) {
	a := c.a
	n, k := c.w.cols, a.cols
	np := (n + 3) / 4
	jbp := c.jb / 4
	if jbp < 1 {
		jbp = 1
	}
	var acc [16]int32
	for q0 := 0; q0 < np; q0 += jbp {
		q1 := q0 + jbp
		if q1 > np {
			q1 = np
		}
		for i := lo; i < hi; {
			bs := hi - i
			switch {
			case c.mr >= 4 && bs >= 4:
				bs = 4
			case c.mr >= 2 && bs >= 2:
				bs = 2
			default:
				bs = 1
			}
			ad := a.data[i*k:]
			for q := q0; q < q1; q++ {
				w := n - q*4
				if w > 4 {
					w = 4
				}
				panel := c.wp[q*4*k : q*4*k+4*k]
				switch bs {
				case 4:
					qMicroGEMM4(&acc, ad[:k], ad[k:2*k], ad[2*k:3*k], ad[3*k:4*k], panel)
				case 2:
					qMicroGEMM2(&acc, ad[:k], ad[k:2*k], panel)
				default:
					qMicroGEMM1(&acc, ad[:k], panel)
				}
				for r := 0; r < bs; r++ {
					qStoreCols(&c.qgemmCtx, i+r, q*4, w, acc[r*4:r*4+4])
				}
			}
			i += bs
		}
	}
}

// qStoreCols applies qEpilogue's exact per-element expression to the w
// accumulated columns [j0, j0+w) of output row i.
func qStoreCols(c *qgemmCtx, i, j0, w int, acc []int32) {
	aScale := c.a.Scale
	if c.outQ != nil {
		oRow := c.outQ.data[i*c.outQ.cols : (i+1)*c.outQ.cols]
		outScale := float64(c.outQ.Scale)
		for t := 0; t < w; t++ {
			j := j0 + t
			f := float32(acc[t])*aScale*c.w.ColScale[j] + c.bias[j]
			if f < 0 {
				f = 0
			}
			oRow[j] = quantizeValue(float64(f), outScale)
		}
		return
	}
	oRow := c.outF.data[i*c.outF.cols : (i+1)*c.outF.cols]
	for t := 0; t < w; t++ {
		j := j0 + t
		f := float32(acc[t])*aScale*c.w.ColScale[j] + c.bias[j]
		if c.relu && f < 0 {
			f = 0
		}
		oRow[j] = f
	}
}

// qMicroGEMM4 accumulates a 4×4 int32 block against one packed int8
// panel — same k order and zero-skip as qgemmBody.
func qMicroGEMM4(acc *[16]int32, a0, a1, a2, a3, panel []int8) {
	k := len(a0)
	var c00, c01, c02, c03 int32
	var c10, c11, c12, c13 int32
	var c20, c21, c22, c23 int32
	var c30, c31, c32, c33 int32
	p := 0
	for ; p+4 <= k; p += 4 {
		b := panel[p*4 : p*4+16]
		if x0, x1, x2, x3 := int32(a0[p]), int32(a0[p+1]), int32(a0[p+2]), int32(a0[p+3]); x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c00 += x0*int32(b[0]) + x1*int32(b[4]) + x2*int32(b[8]) + x3*int32(b[12])
			c01 += x0*int32(b[1]) + x1*int32(b[5]) + x2*int32(b[9]) + x3*int32(b[13])
			c02 += x0*int32(b[2]) + x1*int32(b[6]) + x2*int32(b[10]) + x3*int32(b[14])
			c03 += x0*int32(b[3]) + x1*int32(b[7]) + x2*int32(b[11]) + x3*int32(b[15])
		}
		if x0, x1, x2, x3 := int32(a1[p]), int32(a1[p+1]), int32(a1[p+2]), int32(a1[p+3]); x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c10 += x0*int32(b[0]) + x1*int32(b[4]) + x2*int32(b[8]) + x3*int32(b[12])
			c11 += x0*int32(b[1]) + x1*int32(b[5]) + x2*int32(b[9]) + x3*int32(b[13])
			c12 += x0*int32(b[2]) + x1*int32(b[6]) + x2*int32(b[10]) + x3*int32(b[14])
			c13 += x0*int32(b[3]) + x1*int32(b[7]) + x2*int32(b[11]) + x3*int32(b[15])
		}
		if x0, x1, x2, x3 := int32(a2[p]), int32(a2[p+1]), int32(a2[p+2]), int32(a2[p+3]); x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c20 += x0*int32(b[0]) + x1*int32(b[4]) + x2*int32(b[8]) + x3*int32(b[12])
			c21 += x0*int32(b[1]) + x1*int32(b[5]) + x2*int32(b[9]) + x3*int32(b[13])
			c22 += x0*int32(b[2]) + x1*int32(b[6]) + x2*int32(b[10]) + x3*int32(b[14])
			c23 += x0*int32(b[3]) + x1*int32(b[7]) + x2*int32(b[11]) + x3*int32(b[15])
		}
		if x0, x1, x2, x3 := int32(a3[p]), int32(a3[p+1]), int32(a3[p+2]), int32(a3[p+3]); x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c30 += x0*int32(b[0]) + x1*int32(b[4]) + x2*int32(b[8]) + x3*int32(b[12])
			c31 += x0*int32(b[1]) + x1*int32(b[5]) + x2*int32(b[9]) + x3*int32(b[13])
			c32 += x0*int32(b[2]) + x1*int32(b[6]) + x2*int32(b[10]) + x3*int32(b[14])
			c33 += x0*int32(b[3]) + x1*int32(b[7]) + x2*int32(b[11]) + x3*int32(b[15])
		}
	}
	for ; p < k; p++ {
		b := panel[p*4 : p*4+4]
		if v := int32(a0[p]); v != 0 {
			c00 += v * int32(b[0])
			c01 += v * int32(b[1])
			c02 += v * int32(b[2])
			c03 += v * int32(b[3])
		}
		if v := int32(a1[p]); v != 0 {
			c10 += v * int32(b[0])
			c11 += v * int32(b[1])
			c12 += v * int32(b[2])
			c13 += v * int32(b[3])
		}
		if v := int32(a2[p]); v != 0 {
			c20 += v * int32(b[0])
			c21 += v * int32(b[1])
			c22 += v * int32(b[2])
			c23 += v * int32(b[3])
		}
		if v := int32(a3[p]); v != 0 {
			c30 += v * int32(b[0])
			c31 += v * int32(b[1])
			c32 += v * int32(b[2])
			c33 += v * int32(b[3])
		}
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
	acc[8], acc[9], acc[10], acc[11] = c20, c21, c22, c23
	acc[12], acc[13], acc[14], acc[15] = c30, c31, c32, c33
}

// qMicroGEMM2 is qMicroGEMM4 at height 2.
func qMicroGEMM2(acc *[16]int32, a0, a1, panel []int8) {
	k := len(a0)
	var c00, c01, c02, c03 int32
	var c10, c11, c12, c13 int32
	p := 0
	for ; p+4 <= k; p += 4 {
		b := panel[p*4 : p*4+16]
		if x0, x1, x2, x3 := int32(a0[p]), int32(a0[p+1]), int32(a0[p+2]), int32(a0[p+3]); x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c00 += x0*int32(b[0]) + x1*int32(b[4]) + x2*int32(b[8]) + x3*int32(b[12])
			c01 += x0*int32(b[1]) + x1*int32(b[5]) + x2*int32(b[9]) + x3*int32(b[13])
			c02 += x0*int32(b[2]) + x1*int32(b[6]) + x2*int32(b[10]) + x3*int32(b[14])
			c03 += x0*int32(b[3]) + x1*int32(b[7]) + x2*int32(b[11]) + x3*int32(b[15])
		}
		if x0, x1, x2, x3 := int32(a1[p]), int32(a1[p+1]), int32(a1[p+2]), int32(a1[p+3]); x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c10 += x0*int32(b[0]) + x1*int32(b[4]) + x2*int32(b[8]) + x3*int32(b[12])
			c11 += x0*int32(b[1]) + x1*int32(b[5]) + x2*int32(b[9]) + x3*int32(b[13])
			c12 += x0*int32(b[2]) + x1*int32(b[6]) + x2*int32(b[10]) + x3*int32(b[14])
			c13 += x0*int32(b[3]) + x1*int32(b[7]) + x2*int32(b[11]) + x3*int32(b[15])
		}
	}
	for ; p < k; p++ {
		b := panel[p*4 : p*4+4]
		if v := int32(a0[p]); v != 0 {
			c00 += v * int32(b[0])
			c01 += v * int32(b[1])
			c02 += v * int32(b[2])
			c03 += v * int32(b[3])
		}
		if v := int32(a1[p]); v != 0 {
			c10 += v * int32(b[0])
			c11 += v * int32(b[1])
			c12 += v * int32(b[2])
			c13 += v * int32(b[3])
		}
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
}

// qMicroGEMM1 is qMicroGEMM4 at height 1 — also the remainder-row
// kernel.
func qMicroGEMM1(acc *[16]int32, a0, panel []int8) {
	k := len(a0)
	var c00, c01, c02, c03 int32
	p := 0
	for ; p+4 <= k; p += 4 {
		b := panel[p*4 : p*4+16]
		if x0, x1, x2, x3 := int32(a0[p]), int32(a0[p+1]), int32(a0[p+2]), int32(a0[p+3]); x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c00 += x0*int32(b[0]) + x1*int32(b[4]) + x2*int32(b[8]) + x3*int32(b[12])
			c01 += x0*int32(b[1]) + x1*int32(b[5]) + x2*int32(b[9]) + x3*int32(b[13])
			c02 += x0*int32(b[2]) + x1*int32(b[6]) + x2*int32(b[10]) + x3*int32(b[14])
			c03 += x0*int32(b[3]) + x1*int32(b[7]) + x2*int32(b[11]) + x3*int32(b[15])
		}
	}
	for ; p < k; p++ {
		b := panel[p*4 : p*4+4]
		if v := int32(a0[p]); v != 0 {
			c00 += v * int32(b[0])
			c01 += v * int32(b[1])
			c02 += v * int32(b[2])
			c03 += v * int32(b[3])
		}
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
}
