package tensor

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
)

// Worker-count parity: every parallel kernel must produce bitwise
// identical output at workers ∈ {1, 2, 4, 7} — the odd count exercises
// uneven chunk boundaries — and every fused kernel must be bitwise
// identical to the unfused chain it replaces. Shapes are deliberately
// not multiples of the worker counts or grains.

var parityWorkers = []int{1, 2, 4, 7}

func bitsEqual(t *testing.T, name string, want, got *Dense) {
	t.Helper()
	if !want.SameShape(got) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, want.Rows(), want.Cols(), got.Rows(), got.Cols())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, wd[i], gd[i])
		}
	}
}

func parityIdx(r *rng.Rand, n, max int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(max)
	}
	return idx
}

func TestDenseKernelsWorkerCountParity(t *testing.T) {
	r := rng.New(11)
	a := RandN(r, 37, 23, 1)
	b := RandN(r, 23, 29, 1)
	bt := RandN(r, 29, 23, 1)
	g := RandN(r, 37, 29, 1)
	bias := RandN(r, 1, 23, 1)
	idx := parityIdx(r, 53, 37)

	type kernel struct {
		name string
		run  func(kc kernels.Context) *Dense
	}
	kernelsUnderTest := []kernel{
		{"MatMulIntoCtx", func(kc kernels.Context) *Dense {
			out := New(37, 29)
			MatMulIntoCtx(kc, out, a, b)
			return out
		}},
		{"MatMulTIntoCtx", func(kc kernels.Context) *Dense {
			out := New(37, 29)
			MatMulTIntoCtx(kc, out, a, bt)
			return out
		}},
		{"TMatMulIntoCtx", func(kc kernels.Context) *Dense {
			out := New(29, 23)
			TMatMulIntoCtx(kc, out, g, a)
			return out
		}},
		{"AddBiasIntoCtx", func(kc kernels.Context) *Dense {
			out := New(37, 23)
			AddBiasIntoCtx(kc, out, a, bias)
			return out
		}},
		{"AddBiasReLUIntoCtx", func(kc kernels.Context) *Dense {
			out := New(37, 23)
			AddBiasReLUIntoCtx(kc, out, a, bias)
			return out
		}},
		{"GatherRowsIntoCtx", func(kc kernels.Context) *Dense {
			out := New(53, 23)
			GatherRowsIntoCtx(kc, out, a, idx)
			return out
		}},
		{"ConcatColsIntoCtx", func(kc kernels.Context) *Dense {
			out := New(37, 23+29)
			ConcatColsIntoCtx(kc, out, a, g)
			return out
		}},
		{"GatherConcat3IntoCtx", func(kc kernels.Context) *Dense {
			out := New(53, 3*23)
			GatherConcat3IntoCtx(kc, out, a, idx, a, idx, a, idx)
			return out
		}},
	}
	for _, k := range kernelsUnderTest {
		ref := k.run(kernels.Context{Workers: 1})
		for _, w := range parityWorkers[1:] {
			bitsEqual(t, k.name, ref, k.run(kernels.Context{Workers: w}))
		}
	}
}

func TestAddBiasReLUMatchesUnfused(t *testing.T) {
	r := rng.New(12)
	m := RandN(r, 19, 13, 1)
	bias := RandN(r, 1, 13, 1)
	ref := New(19, 13)
	AddBiasInto(ref, m, bias)
	for i, v := range ref.Data() {
		if v < 0 {
			ref.Data()[i] = 0
		}
	}
	out := New(19, 13)
	for _, w := range parityWorkers {
		AddBiasReLUIntoCtx(kernels.Context{Workers: w}, out, m, bias)
		bitsEqual(t, "AddBiasReLU vs unfused", ref, out)
	}
}

func TestGatherConcat3MatchesUnfused(t *testing.T) {
	r := rng.New(13)
	x := RandN(r, 31, 7, 1)
	e := RandN(r, 41, 5, 1)
	src := parityIdx(r, 41, 31)
	dst := parityIdx(r, 41, 31)

	// Filter shape: [x[src] ‖ x[dst] ‖ e].
	ref := ConcatCols(GatherRows(x, src), GatherRows(x, dst), e)
	out := New(41, 7+7+5)
	for _, w := range parityWorkers {
		GatherConcat3IntoCtx(kernels.Context{Workers: w}, out, x, src, x, dst, e, nil)
		bitsEqual(t, "GatherConcat3 filter shape", ref, out)
	}

	// IGNN shape: [e ‖ x[src] ‖ x[dst]].
	ref2 := ConcatCols(e, GatherRows(x, src), GatherRows(x, dst))
	out2 := New(41, 5+7+7)
	for _, w := range parityWorkers {
		GatherConcat3IntoCtx(kernels.Context{Workers: w}, out2, e, nil, x, src, x, dst)
		bitsEqual(t, "GatherConcat3 ignn shape", ref2, out2)
	}
}

func TestScatterAddRowsBandMatchesUnfused(t *testing.T) {
	r := rng.New(14)
	src := RandN(r, 23, 17, 1)
	idx := parityIdx(r, 23, 9)
	const off, w = 4, 6

	ref := New(9, w)
	band := New(23, w)
	ExtractColsInto(band, src, off)
	ScatterAddRows(ref, band, idx)

	got := New(9, w)
	ScatterAddRowsBand(got, src, off, idx)
	bitsEqual(t, "ScatterAddRowsBand", ref, got)
}

func TestFusedKernelsZeroAllocsWarm(t *testing.T) {
	r := rng.New(15)
	m := RandN(r, 8, 8, 1)
	bias := RandN(r, 1, 8, 1)
	e := RandN(r, 6, 4, 1)
	idx := []int{3, 0, 7, 7, 2, 5}
	outRelu := New(8, 8)
	outGC := New(6, 8+8+4)
	outBand := New(8, 4)
	allocs := testing.AllocsPerRun(100, func() {
		AddBiasReLUInto(outRelu, m, bias)
		GatherConcat3Into(outGC, m, idx, m, idx, e, nil)
		ScatterAddRowsBand(outBand, outGC, 2, idx)
	})
	if allocs != 0 {
		t.Fatalf("warm fused kernels allocated %.1f per run, want 0", allocs)
	}
}
