package tensor

import (
	"testing"

	"repro/internal/rng"
)

func benchMat(rows, cols int, seed uint64) *Dense {
	r := rng.New(seed)
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = r.Float64()*2 - 1
	}
	return m
}

// BenchmarkMatMul measures the value-returning dense GEMM at GNN-layer
// shape (tall-skinny × small square).
func BenchmarkMatMul(b *testing.B) {
	a := benchMat(4096, 64, 1)
	w := benchMat(64, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, w)
	}
}

// BenchmarkMatMulInto measures the preallocated GEMM (steady-state path).
func BenchmarkMatMulInto(b *testing.B) {
	a := benchMat(4096, 64, 1)
	w := benchMat(64, 64, 2)
	out := New(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, w)
	}
}

// BenchmarkMatMulT measures the a×bᵀ backprop kernel.
func BenchmarkMatMulT(b *testing.B) {
	g := benchMat(4096, 64, 1)
	w := benchMat(64, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT(g, w)
	}
}

// BenchmarkTMatMul measures the aᵀ×b backprop kernel.
func BenchmarkTMatMul(b *testing.B) {
	a := benchMat(4096, 64, 1)
	g := benchMat(4096, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TMatMul(a, g)
	}
}

// BenchmarkGatherRows measures the edge-endpoint feature gather.
func BenchmarkGatherRows(b *testing.B) {
	x := benchMat(4096, 64, 1)
	r := rng.New(3)
	idx := make([]int, 8192)
	for i := range idx {
		idx[i] = r.Intn(4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRows(x, idx)
	}
}

// BenchmarkAddBias measures the broadcast bias add.
func BenchmarkAddBias(b *testing.B) {
	x := benchMat(4096, 64, 1)
	bias := benchMat(1, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddBias(x, bias)
	}
}

// BenchmarkAddBiasReLUInto measures the fused bias+activation kernel
// against the AddBias + ReLU chain it replaces in the MLP hidden
// layers.
func BenchmarkAddBiasReLUInto(b *testing.B) {
	x := benchMat(4096, 64, 1)
	bias := benchMat(1, 64, 2)
	out := New(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddBiasReLUInto(out, x, bias)
	}
}

// BenchmarkGatherConcat3Into measures the fused edge-feature assembly
// [E ‖ X[src] ‖ X[dst]] at IGNN message-input shape.
func BenchmarkGatherConcat3Into(b *testing.B) {
	x := benchMat(4096, 64, 1)
	e := benchMat(8192, 16, 2)
	r := rng.New(3)
	src := make([]int, 8192)
	dst := make([]int, 8192)
	for i := range src {
		src[i] = r.Intn(4096)
		dst[i] = r.Intn(4096)
	}
	out := New(8192, 16+64+64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherConcat3Into(out, e, nil, x, src, x, dst)
	}
}
