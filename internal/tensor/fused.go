package tensor

import (
	"fmt"

	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/parallel"
)

// This file holds the fused kernels that collapse the memory-bound
// chains of the pipeline's hot paths: edge-feature gather+concat in one
// pass, bias+ReLU in one pass, and banded scatter-add for their
// backward passes. Each fused kernel performs exactly the arithmetic of
// its unfused composition in the same order, so outputs are bitwise
// identical to the chain it replaces — the fusion only removes the
// intermediate materialization (one full write + read of each
// intermediate matrix).

// AddBiasReLUInto computes out = max(0, m + bias) in one pass, fusing
// AddBiasInto + ReLU: the sum never round-trips through memory. bias is
// a 1×cols row vector; out may alias m.
func AddBiasReLUInto[T fp.Float](out, m, bias *Matrix[T]) {
	AddBiasReLUIntoCtx(kernels.Context{}, out, m, bias)
}

// AddBiasReLUIntoCtx is AddBiasReLUInto under an explicit intra-op
// worker budget; bitwise identical at every worker count.
func AddBiasReLUIntoCtx[T fp.Float](kc kernels.Context, out, m, bias *Matrix[T]) {
	if bias.rows != 1 || bias.cols != m.cols {
		panic(fmt.Sprintf("tensor: AddBiasReLU bias %dx%d vs matrix cols %d", bias.rows, bias.cols, m.cols))
	}
	checkSame("AddBiasReLUInto", out, m)
	parallel.ForWithN(kc.Cap(), m.rows, 64, matCtx[T]{out, m, bias},
		pickBody[T, matCtx[T]](addBiasReLUBody64, addBiasReLUBody32))
}

// addBiasReLUBody computes rows [lo, hi) of out = max(0, m + bias).
func addBiasReLUBody[T fp.Float](c matCtx[T], lo, hi int) {
	out, m, b := c.out, c.a, c.b
	for i := lo; i < hi; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		oRow := out.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s := v + b.data[j]
			if s > 0 {
				oRow[j] = s
			} else {
				oRow[j] = 0
			}
		}
	}
}

// gcSegment is one segment of a fused gather+concat: rows of M, taken
// directly (Idx nil) or gathered at Idx.
type gcSegment[T fp.Float] struct {
	m   *Matrix[T]
	idx []int
}

func (s gcSegment[T]) rowsOut() int {
	if s.idx != nil {
		return len(s.idx)
	}
	return s.m.rows
}

// GatherConcat3Into fuses the gather+concat chain of the edge-feature
// assembly: out[i] = [rowA(i) ‖ rowB(i) ‖ rowC(i)], where each segment's
// row i is m.Row(idx[i]) when its idx is non-nil and m.Row(i) otherwise.
// One pass writes each output row in place — the per-segment gathered
// matrices and the concat intermediate are never materialized, cutting
// the chain's memory traffic roughly in half. out must not alias any
// input.
//
// This covers both hot shapes in the pipeline: the Interaction GNN's
// message input [Y' ‖ X'[src] ‖ X'[dst]] and the edge filter's
// [X[src] ‖ X[dst] ‖ EdgeFeat].
func GatherConcat3Into[T fp.Float](out, a *Matrix[T], aIdx []int, b *Matrix[T], bIdx []int, c *Matrix[T], cIdx []int) {
	GatherConcat3IntoCtx(kernels.Context{}, out, a, aIdx, b, bIdx, c, cIdx)
}

// gc3Ctx carries GatherConcat3IntoCtx operands into capture-free
// parallel bodies.
type gc3Ctx[T fp.Float] struct {
	out     *Matrix[T]
	a, b, c gcSegment[T]
}

// GatherConcat3IntoCtx is GatherConcat3Into under an explicit intra-op
// worker budget; bitwise identical at every worker count.
func GatherConcat3IntoCtx[T fp.Float](kc kernels.Context, out, a *Matrix[T], aIdx []int, b *Matrix[T], bIdx []int, c *Matrix[T], cIdx []int) {
	segA, segB, segC := gcSegment[T]{a, aIdx}, gcSegment[T]{b, bIdx}, gcSegment[T]{c, cIdx}
	rows := segA.rowsOut()
	if segB.rowsOut() != rows || segC.rowsOut() != rows {
		panic(fmt.Sprintf("tensor: GatherConcat3 row mismatch %d/%d/%d",
			rows, segB.rowsOut(), segC.rowsOut()))
	}
	if out.rows != rows || out.cols != a.cols+b.cols+c.cols {
		panic("tensor: GatherConcat3Into output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), rows, 64, gc3Ctx[T]{out, segA, segB, segC},
		pickBody[T, gc3Ctx[T]](gatherConcat3Body64, gatherConcat3Body32))
}

// gatherConcat3Body writes rows [lo, hi) of the fused gather+concat.
func gatherConcat3Body[T fp.Float](cx gc3Ctx[T], lo, hi int) {
	out := cx.out
	for i := lo; i < hi; i++ {
		off := i * out.cols
		for _, seg := range [3]gcSegment[T]{cx.a, cx.b, cx.c} {
			src := i
			if seg.idx != nil {
				src = seg.idx[i]
			}
			copy(out.data[off:off+seg.m.cols], seg.m.data[src*seg.m.cols:(src+1)*seg.m.cols])
			off += seg.m.cols
		}
	}
}

// ScatterAddRowsBand adds row i of src's column band
// [colOff, colOff+dst.cols) into row idx[i] of dst — the backward pass
// of one gathered GatherConcat3 segment, fused so the band is never
// extracted into its own matrix. Multiple sources may target one dst
// row; execution is serial in ascending i (the same order
// ScatterAddRows uses), so the accumulation is deterministic and needs
// no synchronization.
func ScatterAddRowsBand[T fp.Float](dst, src *Matrix[T], colOff int, idx []int) {
	if len(idx) != src.rows {
		panic("tensor: ScatterAddRowsBand index length mismatch")
	}
	if colOff < 0 || colOff+dst.cols > src.cols {
		panic(fmt.Sprintf("tensor: ScatterAddRowsBand band [%d,%d) of %d cols",
			colOff, colOff+dst.cols, src.cols))
	}
	for i, target := range idx {
		dRow := dst.data[target*dst.cols : (target+1)*dst.cols]
		sRow := src.data[i*src.cols+colOff : i*src.cols+colOff+dst.cols]
		for j, v := range sRow {
			dRow[j] += v
		}
	}
}
