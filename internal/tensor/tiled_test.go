package tensor

import (
	"math"
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
)

// Tiled-GEMM coverage: the packed-panel register-blocked kernels must be
// bitwise identical to the flat kernels at every tile shape, worker
// count, and precision — including shapes with k-quad remainders,
// non-multiple-of-4 column counts, and fewer rows than the register
// block — and must hold the flat kernels' zero-skip masking of Inf/NaN.

// flatF64 / flatF32 / flatI8 disable the tiled path for one precision so
// the flat kernel serves as the parity reference.
var (
	flatF64 = kernels.Tiling{F64: kernels.TileShape{MR: -1, Band: -1}}
	flatF32 = kernels.Tiling{F32: kernels.TileShape{MR: -1, Band: -1}}
	flatI8  = kernels.Tiling{I8: kernels.TileShape{MR: -1, Band: -1}}
)

// tiledShapesUnderTest sweeps every implemented micro-kernel (MR 1, 2,
// 4) and panel widths from degenerate (one panel group) to wider than
// any test matrix.
var tiledShapesUnderTest = []kernels.TileShape{
	{MR: 1, JB: 4},
	{MR: 2, JB: 8},
	{MR: 4, JB: 4},
	{MR: 4, JB: 512},
}

// gemmShapesUnderTest exercises k%4 remainders (every residue), n%4
// remainders (every residue), rows below the MR=4 block, and
// panel-boundary-straddling widths.
var gemmShapesUnderTest = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{5, 4, 3},
	{8, 16, 4},
	{37, 23, 29},
	{64, 33, 65},
	{7, 2, 6},
}

func f64BitsEqual(t *testing.T, name string, want, got *Dense) {
	t.Helper()
	if !want.SameShape(got) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, want.Rows(), want.Cols(), got.Rows(), got.Cols())
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if math.Float64bits(wd[i]) != math.Float64bits(gd[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, wd[i], gd[i])
		}
	}
}

func TestTiledMatMulMatchesFlatBitwise(t *testing.T) {
	for _, sh := range gemmShapesUnderTest {
		r := rng.New(uint64(100 + sh.m))
		a := RandN(r, sh.m, sh.k, 1)
		b := RandN(r, sh.k, sh.n, 1)
		// Sprinkle zeros so the per-quad and per-element skip paths run.
		ad := a.Data()
		for i := 0; i < len(ad); i += 3 {
			ad[i] = 0
		}
		ref := New(sh.m, sh.n)
		MatMulIntoCtx(kernels.Context{Workers: 1, Tiles: flatF64}, ref, a, b)
		for _, ts := range tiledShapesUnderTest {
			for _, w := range parityWorkers {
				kc := kernels.Context{Workers: w, Tiles: kernels.Tiling{F64: ts}}
				got := New(sh.m, sh.n)
				MatMulIntoCtx(kc, got, a, b)
				f64BitsEqual(t, "tiled MatMul", ref, got)
			}
		}
	}
}

func TestTiledMatMulMatchesFlatBitwiseF32(t *testing.T) {
	for _, sh := range gemmShapesUnderTest {
		r := rng.New(uint64(200 + sh.m))
		a := ConvertFrom[float32](nil, RandN(r, sh.m, sh.k, 1))
		b := ConvertFrom[float32](nil, RandN(r, sh.k, sh.n, 1))
		ad := a.Data()
		for i := 0; i < len(ad); i += 3 {
			ad[i] = 0
		}
		ref := NewOf[float32](sh.m, sh.n)
		MatMulIntoCtx(kernels.Context{Workers: 1, Tiles: flatF32}, ref, a, b)
		for _, ts := range tiledShapesUnderTest {
			for _, w := range parityWorkers {
				kc := kernels.Context{Workers: w, Tiles: kernels.Tiling{F32: ts}}
				got := NewOf[float32](sh.m, sh.n)
				MatMulIntoCtx(kc, got, a, b)
				wd, gd := ref.Data(), got.Data()
				for i := range wd {
					if math.Float32bits(wd[i]) != math.Float32bits(gd[i]) {
						t.Fatalf("tiled f32 MatMul: element %d differs: %v vs %v", i, wd[i], gd[i])
					}
				}
			}
		}
	}
}

// TestTiledMatMulZeroSkipMasksSpecialValues pins the skip contract: a
// zero a-quad (or zero tail element) must skip B entirely, so Inf/NaN
// in the skipped B rows never reach the accumulators — exactly as the
// flat kernel behaves.
func TestTiledMatMulZeroSkipMasksSpecialValues(t *testing.T) {
	const m, k, n = 6, 9, 10
	r := rng.New(7)
	a := RandN(r, m, k, 1)
	b := RandN(r, k, n, 1)
	// Row 0: all zero. Row 1: first quad zero. Row 2: tail element zero.
	for j := 0; j < k; j++ {
		a.Set(0, j, 0)
	}
	for j := 0; j < 4; j++ {
		a.Set(1, j, 0)
	}
	a.Set(2, 8, 0)
	// Poison the B rows those zeros hit.
	for j := 0; j < n; j++ {
		b.Set(0, j, math.Inf(1))
		b.Set(2, j, math.NaN())
		b.Set(8, j, math.Inf(-1))
	}
	ref := New(m, n)
	MatMulIntoCtx(kernels.Context{Workers: 1, Tiles: flatF64}, ref, a, b)
	for _, ts := range tiledShapesUnderTest {
		for _, w := range parityWorkers {
			kc := kernels.Context{Workers: w, Tiles: kernels.Tiling{F64: ts}}
			got := New(m, n)
			MatMulIntoCtx(kc, got, a, b)
			f64BitsEqual(t, "tiled MatMul special values", ref, got)
		}
	}
}

func TestTiledQGEMMMatchesFlatBitwise(t *testing.T) {
	shapes := []struct{ m, k, n int }{{1, 1, 1}, {3, 5, 7}, {37, 24, 29}, {8, 16, 4}, {5, 6, 3}}
	for si, sh := range shapes {
		src := ConvertFrom[float32](nil, benchMat(sh.m, sh.k, uint64(300+si)))
		a := NewQMat(sh.m, sh.k, 0)
		QuantizeInto(kernels.Context{Workers: 1}, a, src, 0.01)
		w := QuantizeWeights(benchMat(sh.k, sh.n, uint64(400+si)))
		bias := make([]float32, sh.n)
		for j := range bias {
			bias[j] = float32(j)*0.25 - 1
		}
		for _, relu := range []bool{false, true} {
			ref := NewOf[float32](sh.m, sh.n)
			QMatMulBiasInto(kernels.Context{Workers: 1, Tiles: flatI8}, ref, a, w, bias, relu)
			for _, ts := range tiledShapesUnderTest {
				for _, wk := range parityWorkers {
					kc := kernels.Context{Workers: wk, Tiles: kernels.Tiling{I8: ts}}
					got := NewOf[float32](sh.m, sh.n)
					QMatMulBiasInto(kc, got, a, w, bias, relu)
					bits32Equal(t, "tiled QMatMulBias", ref, got)
				}
			}
		}
		refQ := NewQMat(sh.m, sh.n, 0)
		QMatMulBiasReLUQuantInto(kernels.Context{Workers: 1, Tiles: flatI8}, refQ, a, w, bias, 0.02)
		for _, ts := range tiledShapesUnderTest {
			for _, wk := range parityWorkers {
				kc := kernels.Context{Workers: wk, Tiles: kernels.Tiling{I8: ts}}
				gotQ := NewQMat(sh.m, sh.n, 0)
				QMatMulBiasReLUQuantInto(kc, gotQ, a, w, bias, 0.02)
				qbitsEqual(t, "tiled QMatMulBiasReLUQuant", refQ, gotQ)
			}
		}
	}
}

// TestTiledKernelsZeroAllocsWarm pins the pooled-workspace contract of
// the default (tiled) GEMM paths: once the panel pools are warm, a call
// performs no heap allocation.
func TestTiledKernelsZeroAllocsWarm(t *testing.T) {
	a := benchMat(37, 24, 1)
	b := benchMat(24, 29, 2)
	out := New(37, 29)
	src := ConvertFrom[float32](nil, benchMat(37, 24, 3))
	qa := NewQMat(37, 24, 0)
	QuantizeInto(kernels.Context{Workers: 1}, qa, src, 0.01)
	qw := QuantizeWeights(benchMat(24, 29, 4))
	bias := make([]float32, 29)
	qoutF := NewOf[float32](37, 29)
	qoutQ := NewQMat(37, 29, 0)
	kc := kernels.Context{Workers: 1}
	if kernels.ShapeFor[float64](kc).GEMMOff() || kc.ShapeI8().GEMMOff() {
		t.Fatal("default tiling must enable the tiled GEMM paths")
	}
	MatMulIntoCtx(kc, out, a, b) // warm the panel pools
	QMatMulBiasInto(kc, qoutF, qa, qw, bias, true)
	QMatMulBiasReLUQuantInto(kc, qoutQ, qa, qw, bias, 0.02)
	allocs := testing.AllocsPerRun(100, func() {
		MatMulIntoCtx(kc, out, a, b)
		QMatMulBiasInto(kc, qoutF, qa, qw, bias, true)
		QMatMulBiasReLUQuantInto(kc, qoutQ, qa, qw, bias, 0.02)
	})
	if allocs != 0 {
		t.Fatalf("warm tiled GEMMs allocated %.1f per run, want 0", allocs)
	}
}
