package tensor

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/workspace"
)

// This file holds the int8 quantized inference kernels. The scheme is
// symmetric linear quantization: real ≈ float32(q)·scale with q clamped
// to ±127 (−128 is never produced, keeping the scheme symmetric).
// Activations carry one per-tensor scale captured by calibration;
// weights carry one scale per output column (per-channel), so a single
// badly-scaled channel cannot poison the rest of the layer. GEMM
// accumulates int8×int8 products in int32 — exact integer arithmetic,
// so the result is bitwise identical at any worker count — and the
// epilogue fuses dequantize + bias + ReLU (and optionally requantize to
// int8 for the next layer) into the same pass, mirroring the
// AddBiasReLUInto fusion of the float path.

// qmax is the symmetric int8 clamp bound.
const qmax = 127

// QMat is a dense row-major int8 matrix with one symmetric per-tensor
// quantization scale: real value ≈ float32(q)·Scale.
type QMat struct {
	rows, cols int
	data       []int8
	Scale      float32
}

// NewQMat returns a zeroed rows×cols int8 matrix with the given scale.
func NewQMat(rows, cols int, scale float32) *QMat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &QMat{rows: rows, cols: cols, data: make([]int8, rows*cols), Scale: scale}
}

// NewQMatFrom is NewQMat with storage borrowed from the arena's
// workspace pools (heap fallback when arena is nil) — how the int8
// inference path recycles activation buffers per event.
func NewQMatFrom(a *workspace.Arena, rows, cols int, scale float32) *QMat {
	if a == nil {
		return NewQMat(rows, cols, scale)
	}
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &QMat{rows: rows, cols: cols, data: a.I8(rows * cols), Scale: scale}
}

// Rows returns the number of rows.
func (m *QMat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *QMat) Cols() int { return m.cols }

// Data returns the underlying row-major backing slice (not a copy).
func (m *QMat) Data() []int8 { return m.data }

// Row returns row i as a slice aliasing the matrix storage.
func (m *QMat) Row(i int) []int8 { return m.data[i*m.cols : (i+1)*m.cols] }

// QWeights is an int8 weight matrix (in×out, row-major like Matrix)
// with one symmetric scale per output column: real W[k,j] ≈
// float32(q[k,j])·ColScale[j]. Immutable after construction.
type QWeights struct {
	rows, cols int
	data       []int8
	ColScale   []float32
}

// Rows returns the input dimension (rows of the weight matrix).
func (w *QWeights) Rows() int { return w.rows }

// Cols returns the output dimension (columns of the weight matrix).
func (w *QWeights) Cols() int { return w.cols }

// Data returns the underlying row-major int8 payload (not a copy).
func (w *QWeights) Data() []int8 { return w.data }

// QuantizeWeights quantizes a float64 weight matrix per output column:
// ColScale[j] = maxabs(column j)/127 (1 for an all-zero column) and
// q = round(v/scale) clamped to ±127. The same function quantizes
// weights at runtime (syncing the int8 inference snapshot) and at
// checkpoint-export time, so a v4 checkpoint round-trips to bitwise
// identical quantized weights.
func QuantizeWeights(w *Matrix[float64]) *QWeights {
	q := &QWeights{
		rows:     w.rows,
		cols:     w.cols,
		data:     make([]int8, w.rows*w.cols),
		ColScale: make([]float32, w.cols),
	}
	for j := 0; j < w.cols; j++ {
		maxAbs := 0.0
		for i := 0; i < w.rows; i++ {
			if a := math.Abs(w.data[i*w.cols+j]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			q.ColScale[j] = 1
			continue
		}
		q.ColScale[j] = float32(maxAbs / qmax)
	}
	for i := 0; i < w.rows; i++ {
		for j := 0; j < w.cols; j++ {
			q.data[i*w.cols+j] = quantizeValue(w.data[i*w.cols+j], float64(q.ColScale[j]))
		}
	}
	return q
}

// QWeightsFromQuantized rebuilds a QWeights from an already-quantized
// payload (the checkpoint-v4 load path). The payload and scales are
// copied; lengths must match the shape.
func QWeightsFromQuantized(rows, cols int, data []int8, colScale []float32) *QWeights {
	if len(data) != rows*cols || len(colScale) != cols {
		panic(fmt.Sprintf("tensor: QWeights payload %d/%d scales for %dx%d", len(data), len(colScale), rows, cols))
	}
	return &QWeights{
		rows:     rows,
		cols:     cols,
		data:     append([]int8(nil), data...),
		ColScale: append([]float32(nil), colScale...),
	}
}

// quantizeValue rounds v/scale to the nearest integer (half away from
// zero) and clamps to ±127.
func quantizeValue(v, scale float64) int8 {
	q := math.Round(v / scale)
	if q > qmax {
		q = qmax
	} else if q < -qmax {
		q = -qmax
	}
	return int8(q)
}

// QuantizeInto quantizes the float32 matrix src at the given per-tensor
// scale into out (same shape): out[i] = clamp(round(src[i]/scale)).
// This is the precision boundary on the way into every int8 GEMM whose
// input was produced in float32 (event features, LayerNorm outputs,
// gather/concat assemblies). Elementwise, so bitwise identical at any
// worker count; steady-state calls perform no heap allocation.
func QuantizeInto(kc kernels.Context, out *QMat, src *Matrix[float32], scale float32) {
	if out.rows != src.rows || out.cols != src.cols {
		panic(fmt.Sprintf("tensor: QuantizeInto shape mismatch %dx%d vs %dx%d", out.rows, out.cols, src.rows, src.cols))
	}
	if !(scale > 0) {
		panic(fmt.Sprintf("tensor: QuantizeInto scale %v", scale))
	}
	out.Scale = scale
	parallel.ForWithN(kc.Cap(), out.rows, 64, quantizeCtx{out, src}, quantizeBody)
}

// quantizeCtx carries QuantizeInto operands into capture-free parallel
// bodies.
type quantizeCtx struct {
	out *QMat
	src *Matrix[float32]
}

// quantizeBody quantizes rows [lo, hi) of src into out.
func quantizeBody(c quantizeCtx, lo, hi int) {
	cols, scale := c.out.cols, float64(c.out.Scale)
	for i := lo; i < hi; i++ {
		row := c.src.data[i*cols : (i+1)*cols]
		oRow := c.out.data[i*cols : (i+1)*cols]
		for j, v := range row {
			oRow[j] = quantizeValue(float64(v), scale)
		}
	}
}

// DequantizeInto widens out = float32(q)·Scale — the inverse boundary,
// used by tests and by accuracy probes; the inference path never calls
// it (dequantization is fused into the kernel epilogues).
func DequantizeInto(out *Matrix[float32], q *QMat) {
	if out.rows != q.rows || out.cols != q.cols {
		panic("tensor: DequantizeInto shape mismatch")
	}
	for i, v := range q.data {
		out.data[i] = float32(v) * q.Scale
	}
}

// qmatmulGrain mirrors matmulGrain for the int8 GEMM.
const qmatmulGrain = 8

// qgemmCtx carries the int8 GEMM operands into capture-free parallel
// bodies. Exactly one of outF (float32 epilogue) and outQ (requantizing
// epilogue) is non-nil.
type qgemmCtx struct {
	outF *Matrix[float32]
	outQ *QMat
	a    *QMat
	w    *QWeights
	bias []float32
	relu bool
}

// QMatMulBiasInto computes out = dequant(a×w) + bias, with ReLU fused
// when relu is set, in one pass: the GEMM accumulates int8×int8
// products in int32 per output element, and the epilogue applies
// out[i,j] = float32(acc)·a.Scale·w.ColScale[j] + bias[j] (then
// max(0,·)) without the integer product ever round-tripping through
// memory. This is the output-layer kernel of the quantized MLP (and the
// hidden-layer kernel when a float32 epilogue is needed, e.g. before
// LayerNorm). bias must have length w.Cols().
//
// Accumulation is exact integer arithmetic and rows partition
// statically, so the result is bitwise identical at every worker count.
// Steady-state calls perform no heap allocation (accumulator scratch
// comes from the workspace pools).
func QMatMulBiasInto(kc kernels.Context, out *Matrix[float32], a *QMat, w *QWeights, bias []float32, relu bool) {
	checkQGEMM(a, w, bias, out.rows, out.cols, "QMatMulBiasInto")
	c := qgemmCtx{outF: out, a: a, w: w, bias: bias, relu: relu}
	if ts := kc.ShapeI8(); !ts.GEMMOff() {
		qgemmTiled(kc, ts, c)
		return
	}
	parallel.ForWithN(kc.Cap(), a.rows, qmatmulGrain, c, qgemmBody)
}

// QMatMulBiasReLUQuantInto is the fully-fused hidden-layer kernel:
// int8 GEMM, dequantize, bias, ReLU, and requantization to the next
// layer's input scale in one pass — out is int8 at outScale, so the
// activation never exists in float32 and the layer-to-layer traffic is
// a quarter of the float32 path's. bias must have length w.Cols().
// Bitwise identical at every worker count; zero-alloc steady state.
func QMatMulBiasReLUQuantInto(kc kernels.Context, out *QMat, a *QMat, w *QWeights, bias []float32, outScale float32) {
	checkQGEMM(a, w, bias, out.rows, out.cols, "QMatMulBiasReLUQuantInto")
	if !(outScale > 0) {
		panic(fmt.Sprintf("tensor: QMatMulBiasReLUQuantInto scale %v", outScale))
	}
	out.Scale = outScale
	c := qgemmCtx{outQ: out, a: a, w: w, bias: bias, relu: true}
	if ts := kc.ShapeI8(); !ts.GEMMOff() {
		qgemmTiled(kc, ts, c)
		return
	}
	parallel.ForWithN(kc.Cap(), a.rows, qmatmulGrain, c, qgemmBody)
}

func checkQGEMM(a *QMat, w *QWeights, bias []float32, outRows, outCols int, op string) {
	if a.cols != w.rows {
		panic(fmt.Sprintf("tensor: %s inner dims %d vs %d", op, a.cols, w.rows))
	}
	if outRows != a.rows || outCols != w.cols {
		panic(fmt.Sprintf("tensor: %s output shape mismatch", op))
	}
	if len(bias) != w.cols {
		panic(fmt.Sprintf("tensor: %s bias length %d vs %d columns", op, len(bias), w.cols))
	}
}

// qgemmBody computes rows [lo, hi) of the int8 GEMM with the fused
// epilogue. The inner loops mirror matMulBody's i-k-j order with 4× k
// unrolling; each output row accumulates in a pooled int32 scratch row,
// and the epilogue writes float32 or requantized int8 depending on
// which output the context carries.
func qgemmBody(c qgemmCtx, lo, hi int) {
	a, w := c.a, c.w
	n, k := w.cols, a.cols
	acc := workspace.GetI32(n)
	for i := lo; i < hi; i++ {
		for j := range acc {
			acc[j] = 0
		}
		aRow := a.data[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			a0 := int32(aRow[p])
			a1 := int32(aRow[p+1])
			a2 := int32(aRow[p+2])
			a3 := int32(aRow[p+3])
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			w0 := w.data[p*n : p*n+n]
			w1 := w.data[(p+1)*n : (p+1)*n+n]
			w2 := w.data[(p+2)*n : (p+2)*n+n]
			w3 := w.data[(p+3)*n : (p+3)*n+n]
			for j, wv := range w0 {
				acc[j] += a0*int32(wv) + a1*int32(w1[j]) + a2*int32(w2[j]) + a3*int32(w3[j])
			}
		}
		for ; p < k; p++ {
			av := int32(aRow[p])
			if av == 0 {
				continue
			}
			wRow := w.data[p*n : p*n+n]
			for j, wv := range wRow {
				acc[j] += av * int32(wv)
			}
		}
		qEpilogue(c, i, acc)
	}
	workspace.PutI32(acc)
}

// qEpilogue applies dequantize + bias (+ ReLU, + requantize) to one
// accumulated output row. Every element is independent, so parallel
// partitioning cannot change the result.
func qEpilogue(c qgemmCtx, i int, acc []int32) {
	aScale := c.a.Scale
	if c.outQ != nil {
		oRow := c.outQ.data[i*c.outQ.cols : (i+1)*c.outQ.cols]
		outScale := float64(c.outQ.Scale)
		for j, s := range acc {
			f := float32(s)*aScale*c.w.ColScale[j] + c.bias[j]
			if f < 0 {
				f = 0
			}
			oRow[j] = quantizeValue(float64(f), outScale)
		}
		return
	}
	oRow := c.outF.data[i*c.outF.cols : (i+1)*c.outF.cols]
	for j, s := range acc {
		f := float32(s)*aScale*c.w.ColScale[j] + c.bias[j]
		if c.relu && f < 0 {
			f = 0
		}
		oRow[j] = f
	}
}

// QConcatColsInto concatenates int8 matrices horizontally into out.
// Every input must share out's quantization scale — concatenation of
// int8 payloads at mismatched scales would silently mix units — and
// the shapes must add up. Used to assemble the quantized GNN node-net
// input [Msrc ‖ Mdst ‖ X'] without a float32 intermediate.
func QConcatColsInto(kc kernels.Context, out *QMat, ms ...*QMat) {
	rows, totalCols := 0, 0
	for i, m := range ms {
		if i == 0 {
			rows = m.rows
		} else if m.rows != rows {
			panic(fmt.Sprintf("tensor: QConcatCols row mismatch %d vs %d", m.rows, rows))
		}
		if m.Scale != out.Scale {
			panic(fmt.Sprintf("tensor: QConcatCols scale mismatch %v vs %v", m.Scale, out.Scale))
		}
		totalCols += m.cols
	}
	if out.rows != rows || out.cols != totalCols {
		panic("tensor: QConcatColsInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), rows, 64, qconcatCtx{out, ms}, qconcatBody)
}

// qconcatCtx carries QConcatColsInto operands into capture-free
// parallel bodies.
type qconcatCtx struct {
	out *QMat
	ms  []*QMat
}

// qconcatBody copies rows [lo, hi) of the int8 horizontal concat.
func qconcatBody(c qconcatCtx, lo, hi int) {
	out := c.out
	for i := lo; i < hi; i++ {
		off := i * out.cols
		for _, m := range c.ms {
			copy(out.data[off:off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
			off += m.cols
		}
	}
}
