package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// matmulGrain is the minimum number of output rows per parallel chunk.
const matmulGrain = 8

// MatMul returns a×b. Panics on an inner-dimension mismatch.
func MatMul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b. out must be preallocated with shape
// a.rows × b.cols and must not alias a or b.
//
// The kernel uses i-k-j loop order so the innermost loop streams
// contiguously over rows of b and out, and parallelizes across row blocks.
func MatMulInto(out, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.cols, b.rows))
	}
	if out.rows != a.rows || out.cols != b.cols {
		panic("tensor: MatMulInto output shape mismatch")
	}
	n, k := b.cols, a.cols
	parallel.For(a.rows, matmulGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			oRow := out.data[i*n : (i+1)*n]
			for j := range oRow {
				oRow[j] = 0
			}
			aRow := a.data[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := aRow[p]
				if av == 0 {
					continue
				}
				bRow := b.data[p*n : (p+1)*n]
				for j, bv := range bRow {
					oRow[j] += av * bv
				}
			}
		}
	})
}

// MatMulT returns a×bᵀ, used by backprop (dA = G×Bᵀ) without forming Bᵀ.
func MatMulT(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", a.cols, b.cols))
	}
	out := New(a.rows, b.rows)
	k := a.cols
	parallel.For(a.rows, matmulGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			aRow := a.data[i*k : (i+1)*k]
			oRow := out.data[i*b.rows : (i+1)*b.rows]
			for j := 0; j < b.rows; j++ {
				bRow := b.data[j*k : (j+1)*k]
				sum := 0.0
				for p, av := range aRow {
					sum += av * bRow[p]
				}
				oRow[j] = sum
			}
		}
	})
	return out
}

// TMatMul returns aᵀ×b, used by backprop (dB = Aᵀ×G) without forming Aᵀ.
func TMatMul(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", a.rows, b.rows))
	}
	out := New(a.cols, b.cols)
	// Parallelize over output rows (columns of a) to avoid write races.
	parallel.For(a.cols, 1, func(lo, hi int) {
		for p := 0; p < a.rows; p++ {
			aRow := a.data[p*a.cols : (p+1)*a.cols]
			bRow := b.data[p*b.cols : (p+1)*b.cols]
			for i := lo; i < hi; i++ {
				av := aRow[i]
				if av == 0 {
					continue
				}
				oRow := out.data[i*b.cols : (i+1)*b.cols]
				for j, bv := range bRow {
					oRow[j] += av * bv
				}
			}
		}
	})
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Dense) *Dense {
	checkSame("Add", a, b)
	out := a.Clone()
	out.AddInPlace(b)
	return out
}

// AddInPlace computes m += o.
func (m *Dense) AddInPlace(o *Dense) {
	checkSame("AddInPlace", m, o)
	for i, v := range o.data {
		m.data[i] += v
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Dense) *Dense {
	checkSame("Sub", a, b)
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a*b.
func Mul(a, b *Dense) *Dense {
	checkSame("Mul", a, b)
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Scale returns s*m.
func Scale(s float64, m *Dense) *Dense {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = s * v
	}
	return out
}

// ScaleInPlace computes m *= s.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AXPY computes m += s*o.
func (m *Dense) AXPY(s float64, o *Dense) {
	checkSame("AXPY", m, o)
	for i, v := range o.data {
		m.data[i] += s * v
	}
}

// AddBias returns m with the 1×cols row vector b added to every row.
func AddBias(m, b *Dense) *Dense {
	if b.rows != 1 || b.cols != m.cols {
		panic(fmt.Sprintf("tensor: AddBias bias %dx%d vs matrix cols %d", b.rows, b.cols, m.cols))
	}
	out := New(m.rows, m.cols)
	parallel.For(m.rows, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.data[i*m.cols : (i+1)*m.cols]
			oRow := out.data[i*m.cols : (i+1)*m.cols]
			for j, v := range row {
				oRow[j] = v + b.data[j]
			}
		}
	})
	return out
}

// ColSums returns a 1×cols matrix with the sum of each column.
func (m *Dense) ColSums() *Dense {
	out := New(1, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// RowSums returns a rows×1 matrix with the sum of each row.
func (m *Dense) RowSums() *Dense {
	out := New(m.rows, 1)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for _, v := range row {
			s += v
		}
		out.data[i] = s
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Dense) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// Norm2 returns the Frobenius norm.
func (m *Dense) Norm2() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply returns f applied elementwise.
func Apply(m *Dense, f func(float64) float64) *Dense {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// ConcatCols concatenates matrices horizontally. All inputs must have the
// same row count.
func ConcatCols(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].rows
	totalCols := 0
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.rows, rows))
		}
		totalCols += m.cols
	}
	out := New(rows, totalCols)
	parallel.For(rows, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off := i * totalCols
			for _, m := range ms {
				copy(out.data[off:off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
				off += m.cols
			}
		}
	})
	return out
}

// ConcatRows concatenates matrices vertically. All inputs must have the
// same column count.
func ConcatRows(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].cols
	totalRows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", m.cols, cols))
		}
		totalRows += m.rows
	}
	out := New(totalRows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out
}

// SplitCols splits m into len(widths) matrices with the given column
// widths (which must sum to m.cols), undoing ConcatCols.
func SplitCols(m *Dense, widths ...int) []*Dense {
	total := 0
	for _, w := range widths {
		total += w
	}
	if total != m.cols {
		panic(fmt.Sprintf("tensor: SplitCols widths sum %d != cols %d", total, m.cols))
	}
	outs := make([]*Dense, len(widths))
	for i, w := range widths {
		outs[i] = New(m.rows, w)
	}
	for r := 0; r < m.rows; r++ {
		off := r * m.cols
		for i, w := range widths {
			copy(outs[i].data[r*w:(r+1)*w], m.data[off:off+w])
			off += w
		}
	}
	return outs
}

// GatherRows returns the matrix whose i-th row is m's row idx[i].
func GatherRows(m *Dense, idx []int) *Dense {
	out := New(len(idx), m.cols)
	parallel.For(len(idx), 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.data[i*m.cols:(i+1)*m.cols], m.Row(idx[i]))
		}
	})
	return out
}

// ScatterAddRows adds row i of src into row idx[i] of dst.
// Rows of dst may be targeted by multiple sources; execution is serial per
// destination row so no synchronization is required.
func ScatterAddRows(dst, src *Dense, idx []int) {
	if src.cols != dst.cols {
		panic("tensor: ScatterAddRows col mismatch")
	}
	if len(idx) != src.rows {
		panic("tensor: ScatterAddRows index length mismatch")
	}
	for i, target := range idx {
		dRow := dst.data[target*dst.cols : (target+1)*dst.cols]
		sRow := src.data[i*src.cols : (i+1)*src.cols]
		for j, v := range sRow {
			dRow[j] += v
		}
	}
}

func checkSame(op string, a, b *Dense) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
