package tensor

import (
	"fmt"
	"math"

	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/parallel"
)

// matmulGrain is the minimum number of output rows per parallel chunk.
const matmulGrain = 8

// gemmTileJ is the column-tile width of the blocked GEMM: when the
// output row is wider than this, the k-unrolled inner sweep runs per
// column tile so the active bands of b and out stay cache-resident.
// Tiling only regroups the j loop — each out[i,j] still accumulates
// over k in the same order — so results are bitwise unchanged.
const gemmTileJ = 512

// The parallel kernel bodies below are named top-level generic
// functions whose float64 and float32 instantiations are bound once
// into package variables: materializing a generic func value inside a
// generic kernel would allocate a dictionary-carrying closure per call
// and break the zero-allocation contract (see fp.Pick). pickBody
// selects the pre-bound instantiation with a branch and an interface
// assertion.
func pickBody[T fp.Float, C any](v64, v32 any) func(C, int, int) {
	return fp.Pick[T, func(C, int, int)](v64, v32)
}

var (
	matMulBody64        any = matMulBody[float64]
	matMulBody32        any = matMulBody[float32]
	matMulTBody64       any = matMulTBody[float64]
	matMulTBody32       any = matMulTBody[float32]
	tMatMulBody64       any = tMatMulBody[float64]
	tMatMulBody32       any = tMatMulBody[float32]
	addBiasBody64       any = addBiasBody[float64]
	addBiasBody32       any = addBiasBody[float32]
	concatColsBody64    any = concatColsBody[float64]
	concatColsBody32    any = concatColsBody[float32]
	gatherRowsBody64    any = gatherRowsBody[float64]
	gatherRowsBody32    any = gatherRowsBody[float32]
	addBiasReLUBody64   any = addBiasReLUBody[float64]
	addBiasReLUBody32   any = addBiasReLUBody[float32]
	gatherConcat3Body64 any = gatherConcat3Body[float64]
	gatherConcat3Body32 any = gatherConcat3Body[float32]
)

// MatMul returns a×b. Panics on an inner-dimension mismatch.
func MatMul[T fp.Float](a, b *Matrix[T]) *Matrix[T] {
	out := NewOf[T](a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b. out must be preallocated with shape
// a.rows × b.cols and must not alias a or b. Steady-state calls perform
// no heap allocation.
//
// The kernel uses i-k-j loop order so the innermost loop streams
// contiguously over rows of b and out, parallelizes across row blocks,
// tiles wide outputs by gemmTileJ columns, and unrolls the k dimension
// 4× so each pass over the output row does four fused accumulations per
// store.
func MatMulInto[T fp.Float](out, a, b *Matrix[T]) {
	MatMulIntoCtx(kernels.Context{}, out, a, b)
}

// MatMulIntoCtx is MatMulInto under an explicit intra-op worker budget.
// Row blocks partition statically, so the result is bitwise identical
// at every worker count. When the Context's tile shape enables the
// packed-panel layout (the default), the GEMM runs through the register
// micro-kernels of tiled.go — bitwise identical to the flat kernel (see
// the contract there), just faster.
func MatMulIntoCtx[T fp.Float](kc kernels.Context, out, a, b *Matrix[T]) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.cols, b.rows))
	}
	if out.rows != a.rows || out.cols != b.cols {
		panic("tensor: MatMulInto output shape mismatch")
	}
	if ts := kernels.ShapeFor[T](kc); !ts.GEMMOff() {
		matMulTiled(kc, ts, out, a, b)
		return
	}
	parallel.ForWithN(kc.Cap(), a.rows, matmulGrain, matCtx[T]{out, a, b},
		pickBody[T, matCtx[T]](matMulBody64, matMulBody32))
}

// matMulBody computes rows [lo, hi) of out = a×b (see MatMulIntoCtx).
func matMulBody[T fp.Float](c matCtx[T], lo, hi int) {
	out, a, b := c.out, c.a, c.b
	n, k := b.cols, a.cols
	for i := lo; i < hi; i++ {
		oRow := out.data[i*n : (i+1)*n]
		for j := range oRow {
			oRow[j] = 0
		}
		aRow := a.data[i*k : (i+1)*k]
		for jt := 0; jt < n; jt += gemmTileJ {
			jHi := jt + gemmTileJ
			if jHi > n {
				jHi = n
			}
			oTile := oRow[jt:jHi]
			p := 0
			for ; p+4 <= k; p += 4 {
				a0, a1, a2, a3 := aRow[p], aRow[p+1], aRow[p+2], aRow[p+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := b.data[p*n+jt : p*n+jHi]
				b1 := b.data[(p+1)*n+jt : (p+1)*n+jHi]
				b2 := b.data[(p+2)*n+jt : (p+2)*n+jHi]
				b3 := b.data[(p+3)*n+jt : (p+3)*n+jHi]
				for j, bv := range b0 {
					oTile[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; p < k; p++ {
				av := aRow[p]
				if av == 0 {
					continue
				}
				bRow := b.data[p*n+jt : p*n+jHi]
				for j, bv := range bRow {
					oTile[j] += av * bv
				}
			}
		}
	}
}

// matCtx carries kernel operands into capture-free parallel bodies (see
// parallel.ForWith).
type matCtx[T fp.Float] struct {
	out, a, b *Matrix[T]
}

// MatMulT returns a×bᵀ, used by backprop (dA = G×Bᵀ) without forming Bᵀ.
func MatMulT[T fp.Float](a, b *Matrix[T]) *Matrix[T] {
	out := NewOf[T](a.rows, b.rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes out = a×bᵀ without forming bᵀ. out must have
// shape a.rows × b.rows and must not alias a or b. The dot-product inner
// loop runs four independent accumulators for instruction-level
// parallelism.
func MatMulTInto[T fp.Float](out, a, b *Matrix[T]) {
	MatMulTIntoCtx(kernels.Context{}, out, a, b)
}

// MatMulTIntoCtx is MatMulTInto under an explicit intra-op worker
// budget; bitwise identical at every worker count.
func MatMulTIntoCtx[T fp.Float](kc kernels.Context, out, a, b *Matrix[T]) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", a.cols, b.cols))
	}
	if out.rows != a.rows || out.cols != b.rows {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), a.rows, matmulGrain, matCtx[T]{out, a, b},
		pickBody[T, matCtx[T]](matMulTBody64, matMulTBody32))
}

// matMulTBody computes rows [lo, hi) of out = a×bᵀ (see MatMulTIntoCtx).
func matMulTBody[T fp.Float](c matCtx[T], lo, hi int) {
	out, a, b := c.out, c.a, c.b
	k := a.cols
	for i := lo; i < hi; i++ {
		aRow := a.data[i*k : (i+1)*k]
		oRow := out.data[i*b.rows : (i+1)*b.rows]
		for j := 0; j < b.rows; j++ {
			bRow := b.data[j*k : (j+1)*k]
			var s0, s1, s2, s3 T
			p := 0
			for ; p+4 <= k; p += 4 {
				s0 += aRow[p] * bRow[p]
				s1 += aRow[p+1] * bRow[p+1]
				s2 += aRow[p+2] * bRow[p+2]
				s3 += aRow[p+3] * bRow[p+3]
			}
			sum := s0 + s1 + s2 + s3
			for ; p < k; p++ {
				sum += aRow[p] * bRow[p]
			}
			oRow[j] = sum
		}
	}
}

// TMatMul returns aᵀ×b, used by backprop (dB = Aᵀ×G) without forming Aᵀ.
func TMatMul[T fp.Float](a, b *Matrix[T]) *Matrix[T] {
	out := NewOf[T](a.cols, b.cols)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes out = aᵀ×b without forming aᵀ. out must have
// shape a.cols × b.cols and must not alias a or b.
func TMatMulInto[T fp.Float](out, a, b *Matrix[T]) {
	TMatMulIntoCtx(kernels.Context{}, out, a, b)
}

// TMatMulIntoCtx is TMatMulInto under an explicit intra-op worker
// budget; bitwise identical at every worker count.
func TMatMulIntoCtx[T fp.Float](kc kernels.Context, out, a, b *Matrix[T]) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", a.rows, b.rows))
	}
	if out.rows != a.cols || out.cols != b.cols {
		panic("tensor: TMatMulInto output shape mismatch")
	}
	// Parallelize over output rows (columns of a) to avoid write races.
	parallel.ForWithN(kc.Cap(), a.cols, 1, matCtx[T]{out, a, b},
		pickBody[T, matCtx[T]](tMatMulBody64, tMatMulBody32))
}

// tMatMulBody computes rows [lo, hi) of out = aᵀ×b (see TMatMulIntoCtx).
func tMatMulBody[T fp.Float](c matCtx[T], lo, hi int) {
	out, a, b := c.out, c.a, c.b
	for i := lo; i < hi; i++ {
		oRow := out.data[i*b.cols : (i+1)*b.cols]
		for j := range oRow {
			oRow[j] = 0
		}
	}
	for p := 0; p < a.rows; p++ {
		aRow := a.data[p*a.cols : (p+1)*a.cols]
		bRow := b.data[p*b.cols : (p+1)*b.cols]
		for i := lo; i < hi; i++ {
			av := aRow[i]
			if av == 0 {
				continue
			}
			oRow := out.data[i*b.cols : (i+1)*b.cols]
			for j, bv := range bRow {
				oRow[j] += av * bv
			}
		}
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix[T]) Transpose() *Matrix[T] {
	out := NewOf[T](m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add[T fp.Float](a, b *Matrix[T]) *Matrix[T] {
	out := NewOf[T](a.rows, a.cols)
	AddInto(out, a, b)
	return out
}

// AddInto computes out = a+b elementwise. out may alias a or b.
func AddInto[T fp.Float](out, a, b *Matrix[T]) {
	checkSame("Add", a, b)
	checkSame("AddInto", out, a)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
}

// AddInPlace computes m += o.
func (m *Matrix[T]) AddInPlace(o *Matrix[T]) {
	checkSame("AddInPlace", m, o)
	for i, v := range o.data {
		m.data[i] += v
	}
}

// Sub returns a-b elementwise.
func Sub[T fp.Float](a, b *Matrix[T]) *Matrix[T] {
	out := NewOf[T](a.rows, a.cols)
	SubInto(out, a, b)
	return out
}

// SubInto computes out = a-b elementwise. out may alias a or b.
func SubInto[T fp.Float](out, a, b *Matrix[T]) {
	checkSame("Sub", a, b)
	checkSame("SubInto", out, a)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
}

// Mul returns the elementwise (Hadamard) product a*b.
func Mul[T fp.Float](a, b *Matrix[T]) *Matrix[T] {
	out := NewOf[T](a.rows, a.cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes out = a*b elementwise. out may alias a or b.
func MulInto[T fp.Float](out, a, b *Matrix[T]) {
	checkSame("Mul", a, b)
	checkSame("MulInto", out, a)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
}

// Scale returns s*m.
func Scale[T fp.Float](s T, m *Matrix[T]) *Matrix[T] {
	out := NewOf[T](m.rows, m.cols)
	ScaleInto(out, s, m)
	return out
}

// ScaleInto computes out = s*m elementwise. out may alias m.
func ScaleInto[T fp.Float](out *Matrix[T], s T, m *Matrix[T]) {
	checkSame("ScaleInto", out, m)
	for i, v := range m.data {
		out.data[i] = s * v
	}
}

// ScaleInPlace computes m *= s.
func (m *Matrix[T]) ScaleInPlace(s T) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AXPY computes m += s*o.
func (m *Matrix[T]) AXPY(s T, o *Matrix[T]) {
	checkSame("AXPY", m, o)
	for i, v := range o.data {
		m.data[i] += s * v
	}
}

// AddBias returns m with the 1×cols row vector b added to every row.
func AddBias[T fp.Float](m, b *Matrix[T]) *Matrix[T] {
	out := NewOf[T](m.rows, m.cols)
	AddBiasInto(out, m, b)
	return out
}

// AddBiasInto computes out = m with the 1×cols row vector b added to
// every row. out may alias m.
func AddBiasInto[T fp.Float](out, m, b *Matrix[T]) {
	AddBiasIntoCtx(kernels.Context{}, out, m, b)
}

// AddBiasIntoCtx is AddBiasInto under an explicit intra-op worker
// budget.
func AddBiasIntoCtx[T fp.Float](kc kernels.Context, out, m, b *Matrix[T]) {
	if b.rows != 1 || b.cols != m.cols {
		panic(fmt.Sprintf("tensor: AddBias bias %dx%d vs matrix cols %d", b.rows, b.cols, m.cols))
	}
	checkSame("AddBiasInto", out, m)
	parallel.ForWithN(kc.Cap(), m.rows, 64, matCtx[T]{out, m, b},
		pickBody[T, matCtx[T]](addBiasBody64, addBiasBody32))
}

// addBiasBody computes rows [lo, hi) of out = m + bias (broadcast).
func addBiasBody[T fp.Float](c matCtx[T], lo, hi int) {
	out, m, b := c.out, c.a, c.b
	for i := lo; i < hi; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		oRow := out.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			oRow[j] = v + b.data[j]
		}
	}
}

// ColSums returns a 1×cols matrix with the sum of each column.
func (m *Matrix[T]) ColSums() *Matrix[T] {
	out := NewOf[T](1, m.cols)
	m.ColSumsInto(out)
	return out
}

// ColSumsInto computes the per-column sums into the 1×cols matrix out.
func (m *Matrix[T]) ColSumsInto(out *Matrix[T]) {
	if out.rows != 1 || out.cols != m.cols {
		panic("tensor: ColSumsInto output shape mismatch")
	}
	for j := range out.data {
		out.data[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j] += v
		}
	}
}

// RowSums returns a rows×1 matrix with the sum of each row.
func (m *Matrix[T]) RowSums() *Matrix[T] {
	out := NewOf[T](m.rows, 1)
	m.RowSumsInto(out)
	return out
}

// RowSumsInto computes the per-row sums into the rows×1 matrix out.
func (m *Matrix[T]) RowSumsInto(out *Matrix[T]) {
	if out.rows != m.rows || out.cols != 1 {
		panic("tensor: RowSumsInto output shape mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s T
		for _, v := range row {
			s += v
		}
		out.data[i] = s
	}
}

// Sum returns the sum of all elements (accumulated in T).
func (m *Matrix[T]) Sum() float64 {
	var s T
	for _, v := range m.data {
		s += v
	}
	return float64(s)
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Matrix[T]) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// Norm2 returns the Frobenius norm.
func (m *Matrix[T]) Norm2() float64 {
	var s T
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(float64(s))
}

// Apply returns f applied elementwise.
func Apply[T fp.Float](m *Matrix[T], f func(T) T) *Matrix[T] {
	out := NewOf[T](m.rows, m.cols)
	ApplyInto(out, m, f)
	return out
}

// ApplyInto computes out = f applied elementwise to m. out may alias m.
func ApplyInto[T fp.Float](out, m *Matrix[T], f func(T) T) {
	checkSame("ApplyInto", out, m)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
}

// ConcatCols concatenates matrices horizontally. All inputs must have the
// same row count.
func ConcatCols[T fp.Float](ms ...*Matrix[T]) *Matrix[T] {
	rows, totalCols := concatColsShape(ms)
	out := NewOf[T](rows, totalCols)
	ConcatColsInto(out, ms...)
	return out
}

func concatColsShape[T fp.Float](ms []*Matrix[T]) (rows, totalCols int) {
	if len(ms) == 0 {
		return 0, 0
	}
	rows = ms[0].rows
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.rows, rows))
		}
		totalCols += m.cols
	}
	return rows, totalCols
}

// ConcatColsInto concatenates matrices horizontally into out, which must
// have the combined shape and must not alias any input.
func ConcatColsInto[T fp.Float](out *Matrix[T], ms ...*Matrix[T]) {
	ConcatColsIntoCtx(kernels.Context{}, out, ms...)
}

// concatCtx carries ConcatColsIntoCtx operands into capture-free
// parallel bodies.
type concatCtx[T fp.Float] struct {
	out *Matrix[T]
	ms  []*Matrix[T]
}

// ConcatColsIntoCtx is ConcatColsInto under an explicit intra-op worker
// budget.
func ConcatColsIntoCtx[T fp.Float](kc kernels.Context, out *Matrix[T], ms ...*Matrix[T]) {
	rows, totalCols := concatColsShape(ms)
	if out.rows != rows || out.cols != totalCols {
		panic("tensor: ConcatColsInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), rows, 64, concatCtx[T]{out, ms},
		pickBody[T, concatCtx[T]](concatColsBody64, concatColsBody32))
}

// concatColsBody copies rows [lo, hi) of the horizontal concatenation.
func concatColsBody[T fp.Float](c concatCtx[T], lo, hi int) {
	out, totalCols := c.out, c.out.cols
	for i := lo; i < hi; i++ {
		off := i * totalCols
		for _, m := range c.ms {
			copy(out.data[off:off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
			off += m.cols
		}
	}
}

// ExtractColsInto copies the colOff..colOff+dst.cols column band of src
// into dst (the inverse of one ConcatCols segment, used by its backward
// pass without materializing every split).
func ExtractColsInto[T fp.Float](dst, src *Matrix[T], colOff int) {
	if dst.rows != src.rows || colOff < 0 || colOff+dst.cols > src.cols {
		panic(fmt.Sprintf("tensor: ExtractColsInto band [%d,%d) of %d cols, rows %d vs %d",
			colOff, colOff+dst.cols, src.cols, dst.rows, src.rows))
	}
	for i := 0; i < dst.rows; i++ {
		copy(dst.data[i*dst.cols:(i+1)*dst.cols], src.data[i*src.cols+colOff:i*src.cols+colOff+dst.cols])
	}
}

// ConcatRows concatenates matrices vertically. All inputs must have the
// same column count.
func ConcatRows[T fp.Float](ms ...*Matrix[T]) *Matrix[T] {
	if len(ms) == 0 {
		return NewOf[T](0, 0)
	}
	cols := ms[0].cols
	totalRows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", m.cols, cols))
		}
		totalRows += m.rows
	}
	out := NewOf[T](totalRows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out
}

// SplitCols splits m into len(widths) matrices with the given column
// widths (which must sum to m.cols), undoing ConcatCols.
func SplitCols[T fp.Float](m *Matrix[T], widths ...int) []*Matrix[T] {
	total := 0
	for _, w := range widths {
		total += w
	}
	if total != m.cols {
		panic(fmt.Sprintf("tensor: SplitCols widths sum %d != cols %d", total, m.cols))
	}
	outs := make([]*Matrix[T], len(widths))
	for i, w := range widths {
		outs[i] = NewOf[T](m.rows, w)
	}
	for r := 0; r < m.rows; r++ {
		off := r * m.cols
		for i, w := range widths {
			copy(outs[i].data[r*w:(r+1)*w], m.data[off:off+w])
			off += w
		}
	}
	return outs
}

// GatherRows returns the matrix whose i-th row is m's row idx[i].
func GatherRows[T fp.Float](m *Matrix[T], idx []int) *Matrix[T] {
	out := NewOf[T](len(idx), m.cols)
	GatherRowsInto(out, m, idx)
	return out
}

// GatherRowsInto computes out[i] = m[idx[i]]. out must have shape
// len(idx) × m.cols and must not alias m.
func GatherRowsInto[T fp.Float](out, m *Matrix[T], idx []int) {
	GatherRowsIntoCtx(kernels.Context{}, out, m, idx)
}

// gatherCtx carries GatherRowsIntoCtx operands into capture-free
// parallel bodies.
type gatherCtx[T fp.Float] struct {
	out, m *Matrix[T]
	idx    []int
}

// GatherRowsIntoCtx is GatherRowsInto under an explicit intra-op worker
// budget.
func GatherRowsIntoCtx[T fp.Float](kc kernels.Context, out, m *Matrix[T], idx []int) {
	if out.rows != len(idx) || out.cols != m.cols {
		panic("tensor: GatherRowsInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), len(idx), 256, gatherCtx[T]{out, m, idx},
		pickBody[T, gatherCtx[T]](gatherRowsBody64, gatherRowsBody32))
}

// gatherRowsBody copies rows [lo, hi): out[i] = m[idx[i]].
func gatherRowsBody[T fp.Float](c gatherCtx[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		copy(c.out.data[i*c.m.cols:(i+1)*c.m.cols], c.m.Row(c.idx[i]))
	}
}

// ScatterAddRows adds row i of src into row idx[i] of dst.
// Rows of dst may be targeted by multiple sources; execution is serial per
// destination row so no synchronization is required.
func ScatterAddRows[T fp.Float](dst, src *Matrix[T], idx []int) {
	if src.cols != dst.cols {
		panic("tensor: ScatterAddRows col mismatch")
	}
	if len(idx) != src.rows {
		panic("tensor: ScatterAddRows index length mismatch")
	}
	for i, target := range idx {
		dRow := dst.data[target*dst.cols : (target+1)*dst.cols]
		sRow := src.data[i*src.cols : (i+1)*src.cols]
		for j, v := range sRow {
			dRow[j] += v
		}
	}
}

func checkSame[T fp.Float](op string, a, b *Matrix[T]) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
