package tensor

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/parallel"
)

// matmulGrain is the minimum number of output rows per parallel chunk.
const matmulGrain = 8

// gemmTileJ is the column-tile width of the blocked GEMM: when the
// output row is wider than this, the k-unrolled inner sweep runs per
// column tile so the active bands of b and out stay cache-resident.
// Tiling only regroups the j loop — each out[i,j] still accumulates
// over k in the same order — so results are bitwise unchanged.
const gemmTileJ = 512

// MatMul returns a×b. Panics on an inner-dimension mismatch.
func MatMul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a×b. out must be preallocated with shape
// a.rows × b.cols and must not alias a or b. Steady-state calls perform
// no heap allocation.
//
// The kernel uses i-k-j loop order so the innermost loop streams
// contiguously over rows of b and out, parallelizes across row blocks,
// tiles wide outputs by gemmTileJ columns, and unrolls the k dimension
// 4× so each pass over the output row does four fused accumulations per
// store.
func MatMulInto(out, a, b *Dense) {
	MatMulIntoCtx(kernels.Context{}, out, a, b)
}

// MatMulIntoCtx is MatMulInto under an explicit intra-op worker budget.
// Row blocks partition statically, so the result is bitwise identical
// at every worker count.
func MatMulIntoCtx(kc kernels.Context, out, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", a.cols, b.rows))
	}
	if out.rows != a.rows || out.cols != b.cols {
		panic("tensor: MatMulInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), a.rows, matmulGrain, matCtx{out, a, b}, func(c matCtx, lo, hi int) {
		out, a, b := c.out, c.a, c.b
		n, k := b.cols, a.cols
		for i := lo; i < hi; i++ {
			oRow := out.data[i*n : (i+1)*n]
			for j := range oRow {
				oRow[j] = 0
			}
			aRow := a.data[i*k : (i+1)*k]
			for jt := 0; jt < n; jt += gemmTileJ {
				jHi := jt + gemmTileJ
				if jHi > n {
					jHi = n
				}
				oTile := oRow[jt:jHi]
				p := 0
				for ; p+4 <= k; p += 4 {
					a0, a1, a2, a3 := aRow[p], aRow[p+1], aRow[p+2], aRow[p+3]
					if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
						continue
					}
					b0 := b.data[p*n+jt : p*n+jHi]
					b1 := b.data[(p+1)*n+jt : (p+1)*n+jHi]
					b2 := b.data[(p+2)*n+jt : (p+2)*n+jHi]
					b3 := b.data[(p+3)*n+jt : (p+3)*n+jHi]
					for j, bv := range b0 {
						oTile[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; p < k; p++ {
					av := aRow[p]
					if av == 0 {
						continue
					}
					bRow := b.data[p*n+jt : p*n+jHi]
					for j, bv := range bRow {
						oTile[j] += av * bv
					}
				}
			}
		}
	})
}

// matCtx carries kernel operands into capture-free parallel bodies (see
// parallel.ForWith).
type matCtx struct {
	out, a, b *Dense
}

// MatMulT returns a×bᵀ, used by backprop (dA = G×Bᵀ) without forming Bᵀ.
func MatMulT(a, b *Dense) *Dense {
	out := New(a.rows, b.rows)
	MatMulTInto(out, a, b)
	return out
}

// MatMulTInto computes out = a×bᵀ without forming bᵀ. out must have
// shape a.rows × b.rows and must not alias a or b. The dot-product inner
// loop runs four independent accumulators for instruction-level
// parallelism.
func MatMulTInto(out, a, b *Dense) {
	MatMulTIntoCtx(kernels.Context{}, out, a, b)
}

// MatMulTIntoCtx is MatMulTInto under an explicit intra-op worker
// budget; bitwise identical at every worker count.
func MatMulTIntoCtx(kc kernels.Context, out, a, b *Dense) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %d vs %d", a.cols, b.cols))
	}
	if out.rows != a.rows || out.cols != b.rows {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), a.rows, matmulGrain, matCtx{out, a, b}, func(c matCtx, lo, hi int) {
		out, a, b := c.out, c.a, c.b
		k := a.cols
		for i := lo; i < hi; i++ {
			aRow := a.data[i*k : (i+1)*k]
			oRow := out.data[i*b.rows : (i+1)*b.rows]
			for j := 0; j < b.rows; j++ {
				bRow := b.data[j*k : (j+1)*k]
				var s0, s1, s2, s3 float64
				p := 0
				for ; p+4 <= k; p += 4 {
					s0 += aRow[p] * bRow[p]
					s1 += aRow[p+1] * bRow[p+1]
					s2 += aRow[p+2] * bRow[p+2]
					s3 += aRow[p+3] * bRow[p+3]
				}
				sum := s0 + s1 + s2 + s3
				for ; p < k; p++ {
					sum += aRow[p] * bRow[p]
				}
				oRow[j] = sum
			}
		}
	})
}

// TMatMul returns aᵀ×b, used by backprop (dB = Aᵀ×G) without forming Aᵀ.
func TMatMul(a, b *Dense) *Dense {
	out := New(a.cols, b.cols)
	TMatMulInto(out, a, b)
	return out
}

// TMatMulInto computes out = aᵀ×b without forming aᵀ. out must have
// shape a.cols × b.cols and must not alias a or b.
func TMatMulInto(out, a, b *Dense) {
	TMatMulIntoCtx(kernels.Context{}, out, a, b)
}

// TMatMulIntoCtx is TMatMulInto under an explicit intra-op worker
// budget; bitwise identical at every worker count.
func TMatMulIntoCtx(kc kernels.Context, out, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %d vs %d", a.rows, b.rows))
	}
	if out.rows != a.cols || out.cols != b.cols {
		panic("tensor: TMatMulInto output shape mismatch")
	}
	// Parallelize over output rows (columns of a) to avoid write races.
	parallel.ForWithN(kc.Cap(), a.cols, 1, matCtx{out, a, b}, func(c matCtx, lo, hi int) {
		out, a, b := c.out, c.a, c.b
		for i := lo; i < hi; i++ {
			oRow := out.data[i*b.cols : (i+1)*b.cols]
			for j := range oRow {
				oRow[j] = 0
			}
		}
		for p := 0; p < a.rows; p++ {
			aRow := a.data[p*a.cols : (p+1)*a.cols]
			bRow := b.data[p*b.cols : (p+1)*b.cols]
			for i := lo; i < hi; i++ {
				av := aRow[i]
				if av == 0 {
					continue
				}
				oRow := out.data[i*b.cols : (i+1)*b.cols]
				for j, bv := range bRow {
					oRow[j] += av * bv
				}
			}
		}
	})
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Dense) *Dense {
	out := New(a.rows, a.cols)
	AddInto(out, a, b)
	return out
}

// AddInto computes out = a+b elementwise. out may alias a or b.
func AddInto(out, a, b *Dense) {
	checkSame("Add", a, b)
	checkSame("AddInto", out, a)
	for i := range out.data {
		out.data[i] = a.data[i] + b.data[i]
	}
}

// AddInPlace computes m += o.
func (m *Dense) AddInPlace(o *Dense) {
	checkSame("AddInPlace", m, o)
	for i, v := range o.data {
		m.data[i] += v
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Dense) *Dense {
	out := New(a.rows, a.cols)
	SubInto(out, a, b)
	return out
}

// SubInto computes out = a-b elementwise. out may alias a or b.
func SubInto(out, a, b *Dense) {
	checkSame("Sub", a, b)
	checkSame("SubInto", out, a)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
}

// Mul returns the elementwise (Hadamard) product a*b.
func Mul(a, b *Dense) *Dense {
	out := New(a.rows, a.cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes out = a*b elementwise. out may alias a or b.
func MulInto(out, a, b *Dense) {
	checkSame("Mul", a, b)
	checkSame("MulInto", out, a)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
}

// Scale returns s*m.
func Scale(s float64, m *Dense) *Dense {
	out := New(m.rows, m.cols)
	ScaleInto(out, s, m)
	return out
}

// ScaleInto computes out = s*m elementwise. out may alias m.
func ScaleInto(out *Dense, s float64, m *Dense) {
	checkSame("ScaleInto", out, m)
	for i, v := range m.data {
		out.data[i] = s * v
	}
}

// ScaleInPlace computes m *= s.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AXPY computes m += s*o.
func (m *Dense) AXPY(s float64, o *Dense) {
	checkSame("AXPY", m, o)
	for i, v := range o.data {
		m.data[i] += s * v
	}
}

// AddBias returns m with the 1×cols row vector b added to every row.
func AddBias(m, b *Dense) *Dense {
	out := New(m.rows, m.cols)
	AddBiasInto(out, m, b)
	return out
}

// AddBiasInto computes out = m with the 1×cols row vector b added to
// every row. out may alias m.
func AddBiasInto(out, m, b *Dense) {
	AddBiasIntoCtx(kernels.Context{}, out, m, b)
}

// AddBiasIntoCtx is AddBiasInto under an explicit intra-op worker
// budget.
func AddBiasIntoCtx(kc kernels.Context, out, m, b *Dense) {
	if b.rows != 1 || b.cols != m.cols {
		panic(fmt.Sprintf("tensor: AddBias bias %dx%d vs matrix cols %d", b.rows, b.cols, m.cols))
	}
	checkSame("AddBiasInto", out, m)
	parallel.ForWithN(kc.Cap(), m.rows, 64, matCtx{out, m, b}, func(c matCtx, lo, hi int) {
		out, m, b := c.out, c.a, c.b
		for i := lo; i < hi; i++ {
			row := m.data[i*m.cols : (i+1)*m.cols]
			oRow := out.data[i*m.cols : (i+1)*m.cols]
			for j, v := range row {
				oRow[j] = v + b.data[j]
			}
		}
	})
}

// ColSums returns a 1×cols matrix with the sum of each column.
func (m *Dense) ColSums() *Dense {
	out := New(1, m.cols)
	m.ColSumsInto(out)
	return out
}

// ColSumsInto computes the per-column sums into the 1×cols matrix out.
func (m *Dense) ColSumsInto(out *Dense) {
	if out.rows != 1 || out.cols != m.cols {
		panic("tensor: ColSumsInto output shape mismatch")
	}
	for j := range out.data {
		out.data[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out.data[j] += v
		}
	}
}

// RowSums returns a rows×1 matrix with the sum of each row.
func (m *Dense) RowSums() *Dense {
	out := New(m.rows, 1)
	m.RowSumsInto(out)
	return out
}

// RowSumsInto computes the per-row sums into the rows×1 matrix out.
func (m *Dense) RowSumsInto(out *Dense) {
	if out.rows != m.rows || out.cols != 1 {
		panic("tensor: RowSumsInto output shape mismatch")
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for _, v := range row {
			s += v
		}
		out.data[i] = s
	}
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements (0 for an empty matrix).
func (m *Dense) Mean() float64 {
	if len(m.data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.data))
}

// Norm2 returns the Frobenius norm.
func (m *Dense) Norm2() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply returns f applied elementwise.
func Apply(m *Dense, f func(float64) float64) *Dense {
	out := New(m.rows, m.cols)
	ApplyInto(out, m, f)
	return out
}

// ApplyInto computes out = f applied elementwise to m. out may alias m.
func ApplyInto(out, m *Dense, f func(float64) float64) {
	checkSame("ApplyInto", out, m)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
}

// ConcatCols concatenates matrices horizontally. All inputs must have the
// same row count.
func ConcatCols(ms ...*Dense) *Dense {
	rows, totalCols := concatColsShape(ms)
	out := New(rows, totalCols)
	ConcatColsInto(out, ms...)
	return out
}

func concatColsShape(ms []*Dense) (rows, totalCols int) {
	if len(ms) == 0 {
		return 0, 0
	}
	rows = ms[0].rows
	for _, m := range ms {
		if m.rows != rows {
			panic(fmt.Sprintf("tensor: ConcatCols row mismatch %d vs %d", m.rows, rows))
		}
		totalCols += m.cols
	}
	return rows, totalCols
}

// ConcatColsInto concatenates matrices horizontally into out, which must
// have the combined shape and must not alias any input.
func ConcatColsInto(out *Dense, ms ...*Dense) {
	ConcatColsIntoCtx(kernels.Context{}, out, ms...)
}

// concatCtx carries ConcatColsIntoCtx operands into capture-free
// parallel bodies.
type concatCtx struct {
	out *Dense
	ms  []*Dense
}

// ConcatColsIntoCtx is ConcatColsInto under an explicit intra-op worker
// budget.
func ConcatColsIntoCtx(kc kernels.Context, out *Dense, ms ...*Dense) {
	rows, totalCols := concatColsShape(ms)
	if out.rows != rows || out.cols != totalCols {
		panic("tensor: ConcatColsInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), rows, 64, concatCtx{out, ms}, func(c concatCtx, lo, hi int) {
		out, totalCols := c.out, c.out.cols
		for i := lo; i < hi; i++ {
			off := i * totalCols
			for _, m := range c.ms {
				copy(out.data[off:off+m.cols], m.data[i*m.cols:(i+1)*m.cols])
				off += m.cols
			}
		}
	})
}

// ExtractColsInto copies the colOff..colOff+dst.cols column band of src
// into dst (the inverse of one ConcatCols segment, used by its backward
// pass without materializing every split).
func ExtractColsInto(dst, src *Dense, colOff int) {
	if dst.rows != src.rows || colOff < 0 || colOff+dst.cols > src.cols {
		panic(fmt.Sprintf("tensor: ExtractColsInto band [%d,%d) of %d cols, rows %d vs %d",
			colOff, colOff+dst.cols, src.cols, dst.rows, src.rows))
	}
	for i := 0; i < dst.rows; i++ {
		copy(dst.data[i*dst.cols:(i+1)*dst.cols], src.data[i*src.cols+colOff:i*src.cols+colOff+dst.cols])
	}
}

// ConcatRows concatenates matrices vertically. All inputs must have the
// same column count.
func ConcatRows(ms ...*Dense) *Dense {
	if len(ms) == 0 {
		return New(0, 0)
	}
	cols := ms[0].cols
	totalRows := 0
	for _, m := range ms {
		if m.cols != cols {
			panic(fmt.Sprintf("tensor: ConcatRows col mismatch %d vs %d", m.cols, cols))
		}
		totalRows += m.rows
	}
	out := New(totalRows, cols)
	off := 0
	for _, m := range ms {
		copy(out.data[off:off+len(m.data)], m.data)
		off += len(m.data)
	}
	return out
}

// SplitCols splits m into len(widths) matrices with the given column
// widths (which must sum to m.cols), undoing ConcatCols.
func SplitCols(m *Dense, widths ...int) []*Dense {
	total := 0
	for _, w := range widths {
		total += w
	}
	if total != m.cols {
		panic(fmt.Sprintf("tensor: SplitCols widths sum %d != cols %d", total, m.cols))
	}
	outs := make([]*Dense, len(widths))
	for i, w := range widths {
		outs[i] = New(m.rows, w)
	}
	for r := 0; r < m.rows; r++ {
		off := r * m.cols
		for i, w := range widths {
			copy(outs[i].data[r*w:(r+1)*w], m.data[off:off+w])
			off += w
		}
	}
	return outs
}

// GatherRows returns the matrix whose i-th row is m's row idx[i].
func GatherRows(m *Dense, idx []int) *Dense {
	out := New(len(idx), m.cols)
	GatherRowsInto(out, m, idx)
	return out
}

// GatherRowsInto computes out[i] = m[idx[i]]. out must have shape
// len(idx) × m.cols and must not alias m.
func GatherRowsInto(out, m *Dense, idx []int) {
	GatherRowsIntoCtx(kernels.Context{}, out, m, idx)
}

// GatherRowsIntoCtx is GatherRowsInto under an explicit intra-op worker
// budget.
func GatherRowsIntoCtx(kc kernels.Context, out, m *Dense, idx []int) {
	if out.rows != len(idx) || out.cols != m.cols {
		panic("tensor: GatherRowsInto output shape mismatch")
	}
	type gatherCtx struct {
		out, m *Dense
		idx    []int
	}
	parallel.ForWithN(kc.Cap(), len(idx), 256, gatherCtx{out, m, idx}, func(c gatherCtx, lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(c.out.data[i*c.m.cols:(i+1)*c.m.cols], c.m.Row(c.idx[i]))
		}
	})
}

// ScatterAddRows adds row i of src into row idx[i] of dst.
// Rows of dst may be targeted by multiple sources; execution is serial per
// destination row so no synchronization is required.
func ScatterAddRows(dst, src *Dense, idx []int) {
	if src.cols != dst.cols {
		panic("tensor: ScatterAddRows col mismatch")
	}
	if len(idx) != src.rows {
		panic("tensor: ScatterAddRows index length mismatch")
	}
	for i, target := range idx {
		dRow := dst.data[target*dst.cols : (target+1)*dst.cols]
		sRow := src.data[i*src.cols : (i+1)*src.cols]
		for j, v := range sRow {
			dRow[j] += v
		}
	}
}

func checkSame(op string, a, b *Dense) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}
