package tensor

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
)

// Float32 kernel coverage: worker-count determinism (golden: bitwise
// identical at workers ∈ {1, 2, 4, 7}), f64 parity within float32
// rounding tolerance, and the zero-allocation contract of the generic
// instantiations.

// benchMat32 mirrors benchMat at float32 (same RNG stream, rounded).
func benchMat32(rows, cols int, seed uint64) *Dense32 {
	return ConvertFrom[float32](nil, benchMat(rows, cols, seed))
}

func bits32Equal(t *testing.T, name string, want, got *Dense32) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, want.Rows(), want.Cols(), got.Rows(), got.Cols())
	}
	w, g := want.Data(), got.Data()
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, w[i], g[i])
		}
	}
}

var parityWorkers32 = []int{1, 2, 4, 7}

func TestF32KernelsWorkerCountParity(t *testing.T) {
	a := benchMat32(130, 40, 1)
	b := benchMat32(40, 50, 2)
	g := benchMat32(130, 50, 3)
	bias := benchMat32(1, 50, 4)
	r := rng.New(5)
	idx := make([]int, 200)
	for i := range idx {
		idx[i] = r.Intn(130)
	}

	ref := struct {
		mm, mmt, tmm, ab, abr, gat, cc, gc3 *Dense32
	}{
		mm:  NewOf[float32](130, 50),
		mmt: NewOf[float32](130, 130),
		tmm: NewOf[float32](40, 50),
		ab:  NewOf[float32](130, 50),
		abr: NewOf[float32](130, 50),
		gat: NewOf[float32](200, 40),
		cc:  NewOf[float32](130, 90),
		gc3: NewOf[float32](200, 120),
	}
	for wi, w := range parityWorkers32 {
		kc := kernels.Context{Workers: w}
		mm := NewOf[float32](130, 50)
		MatMulIntoCtx(kc, mm, a, b)
		mmt := NewOf[float32](130, 130)
		MatMulTIntoCtx(kc, mmt, g, g)
		tmm := NewOf[float32](40, 50)
		TMatMulIntoCtx(kc, tmm, a, g)
		ab := NewOf[float32](130, 50)
		AddBiasIntoCtx(kc, ab, g, bias)
		abr := NewOf[float32](130, 50)
		AddBiasReLUIntoCtx(kc, abr, g, bias)
		gat := NewOf[float32](200, 40)
		GatherRowsIntoCtx(kc, gat, a, idx)
		cc := NewOf[float32](130, 90)
		ConcatColsIntoCtx(kc, cc, a, g)
		gc3 := NewOf[float32](200, 120)
		GatherConcat3IntoCtx(kc, gc3, a, idx, a, idx, a, idx)
		if wi == 0 {
			ref.mm, ref.mmt, ref.tmm, ref.ab, ref.abr, ref.gat, ref.cc, ref.gc3 = mm, mmt, tmm, ab, abr, gat, cc, gc3
			continue
		}
		bits32Equal(t, "MatMul f32", ref.mm, mm)
		bits32Equal(t, "MatMulT f32", ref.mmt, mmt)
		bits32Equal(t, "TMatMul f32", ref.tmm, tmm)
		bits32Equal(t, "AddBias f32", ref.ab, ab)
		bits32Equal(t, "AddBiasReLU f32", ref.abr, abr)
		bits32Equal(t, "GatherRows f32", ref.gat, gat)
		bits32Equal(t, "ConcatCols f32", ref.cc, cc)
		bits32Equal(t, "GatherConcat3 f32", ref.gc3, gc3)
	}
}

// TestF32MatMulMatchesF64WithinTolerance bounds the rounding drift of
// the float32 GEMM against the float64 reference: inputs are exactly
// representable in both precisions, so every discrepancy is f32
// accumulation error, which for k=40 unit-scale entries stays well
// under 1e-4.
func TestF32MatMulMatchesF64WithinTolerance(t *testing.T) {
	a64 := benchMat(130, 40, 1)
	b64 := benchMat(40, 50, 2)
	// Round the f64 operands to f32-representable values so both paths
	// compute from identical inputs.
	a32 := ConvertFrom[float32](nil, a64)
	b32 := ConvertFrom[float32](nil, b64)
	Convert(a64, a32)
	Convert(b64, b32)

	got := ConvertFrom[float64](nil, MatMul(a32, b32))
	want := MatMul(a64, b64)
	if d := want.MaxAbsDiff(got); d > 1e-4 {
		t.Fatalf("f32 MatMul drifts %v from f64", d)
	}

	gotT := ConvertFrom[float64](nil, MatMulT(a32, a32))
	wantT := MatMulT(a64, a64)
	if d := wantT.MaxAbsDiff(gotT); d > 1e-4 {
		t.Fatalf("f32 MatMulT drifts %v from f64", d)
	}
}

func TestF32IntoKernelsZeroAllocs(t *testing.T) {
	a, b := benchMat32(8, 8, 1), benchMat32(8, 8, 2)
	bias := benchMat32(1, 8, 3)
	out := NewOf[float32](8, 8)
	mm := NewOf[float32](8, 8)
	idx := []int{3, 1, 7, 0}
	gather := NewOf[float32](4, 8)
	gc3 := NewOf[float32](4, 24)
	allocs := testing.AllocsPerRun(100, func() {
		MatMulInto(mm, a, b)
		MatMulTInto(mm, a, b)
		TMatMulInto(mm, a, b)
		AddInto(out, a, b)
		SubInto(out, a, b)
		MulInto(out, a, b)
		ScaleInto(out, 2.5, a)
		AddBiasInto(out, a, bias)
		AddBiasReLUInto(out, a, bias)
		GatherRowsInto(gather, a, idx)
		GatherConcat3Into(gc3, a, idx, a, idx, b, idx)
	})
	if allocs != 0 {
		t.Fatalf("f32 Into kernels allocated %.1f per run, want 0", allocs)
	}
}

// TestConvertRoundTrip pins the precision-boundary semantics: f32→f64
// widening is exact, f64→f32 rounds to nearest.
func TestConvertRoundTrip(t *testing.T) {
	m := benchMat(7, 5, 9)
	down := ConvertFrom[float32](nil, m)
	up := ConvertFrom[float64](nil, down)
	for i, v := range m.Data() {
		if up.Data()[i] != float64(float32(v)) {
			t.Fatalf("element %d: %v round-tripped to %v", i, v, up.Data()[i])
		}
	}
	// Widened values convert back down without further change.
	down2 := ConvertFrom[float32](nil, up)
	bits32Equal(t, "f32→f64→f32", down, down2)
}
