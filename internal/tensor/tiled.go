package tensor

import (
	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/workspace"
)

// This file implements the cache-blocked GEMM layout: b packs once into
// 4-column panels (panel-major, zero-padded to a multiple of 4 columns)
// and an MR×4 register micro-kernel accumulates MR output rows against
// one panel without touching the output row between k steps — the flat
// kernel's k/4 read-modify-write passes over every output row collapse
// into one store per element.
//
// Bitwise contract: for every out[i,j] the accumulation is exactly the
// flat kernel's — ascending k in quads with the quad sum associated as
// ((a0·b0 + a1·b1) + a2·b2) + a3·b3 added to the accumulator, then
// single-k tail terms, with the same per-(row, k-quad) all-zero skip —
// so the tiled path is bitwise identical to matMulBody for any tile
// shape, any worker count, and any input (including Inf/NaN in b, which
// the zero-skip masks identically). Padded panel columns accumulate
// zeros into accumulators that are never stored.

var (
	matMulTiledBody64 any = matMulTiledBody[float64]
	matMulTiledBody32 any = matMulTiledBody[float32]
)

// tileCtx carries the packed-GEMM operands into capture-free parallel
// bodies.
type tileCtx[T fp.Float] struct {
	out, a *Matrix[T]
	bp     []T // b packed into 4-column panels, zero-padded
	mr, jb int // resolved micro-kernel height and column-block width
}

// matMulTiled computes out = a×b through the packed-panel layout under
// the given (already resolved) tile shape. Steady-state calls perform
// no heap allocation: the pack buffer comes from the workspace pools.
func matMulTiled[T fp.Float](kc kernels.Context, ts kernels.TileShape, out, a, b *Matrix[T]) {
	n, k := b.cols, a.cols
	np := (n + 3) / 4
	bp := workspace.GetFloat[T](np * 4 * k)
	packPanels(bp, b)
	parallel.ForWithN(kc.Cap(), a.rows, matmulGrain, tileCtx[T]{out, a, bp, ts.MR, ts.JB},
		pickBody[T, tileCtx[T]](matMulTiledBody64, matMulTiledBody32))
	workspace.PutFloat(bp)
}

// packPanels copies b into 4-column panel-major layout: panel q holds
// columns [4q, 4q+4) contiguously as k rows of 4 elements, so the
// micro-kernel streams it sequentially whatever b's width. The last
// panel zero-pads columns past b.cols.
func packPanels[T fp.Float](bp []T, b *Matrix[T]) {
	n, k := b.cols, b.rows
	for q := 0; q < n/4; q++ {
		dst := bp[q*4*k : (q+1)*4*k]
		for p := 0; p < k; p++ {
			src := b.data[p*n+q*4 : p*n+q*4+4]
			dst[p*4] = src[0]
			dst[p*4+1] = src[1]
			dst[p*4+2] = src[2]
			dst[p*4+3] = src[3]
		}
	}
	if w := n % 4; w != 0 {
		dst := bp[(n/4)*4*k:]
		base := n - w
		for p := 0; p < k; p++ {
			for j := 0; j < 4; j++ {
				if j < w {
					dst[p*4+j] = b.data[p*n+base+j]
				} else {
					dst[p*4+j] = 0
				}
			}
		}
	}
}

// matMulTiledBody computes rows [lo, hi) of the packed GEMM: column
// blocks of jb/4 panels outermost (so a block's panels stay hot across
// row sweeps), MR-row blocks next, one micro-kernel call per
// (row-block, panel).
func matMulTiledBody[T fp.Float](c tileCtx[T], lo, hi int) {
	out, a := c.out, c.a
	n, k := out.cols, a.cols
	np := (n + 3) / 4
	jbp := c.jb / 4
	if jbp < 1 {
		jbp = 1
	}
	for q0 := 0; q0 < np; q0 += jbp {
		q1 := q0 + jbp
		if q1 > np {
			q1 = np
		}
		for i := lo; i < hi; {
			bs := hi - i
			switch {
			case c.mr >= 4 && bs >= 4:
				bs = 4
			case c.mr >= 2 && bs >= 2:
				bs = 2
			default:
				bs = 1
			}
			ad := a.data[i*k:]
			for q := q0; q < q1; q++ {
				w := n - q*4
				if w > 4 {
					w = 4
				}
				panel := c.bp[q*4*k : q*4*k+4*k]
				off := i*n + q*4
				switch bs {
				case 4:
					microGEMM4(
						out.data[off:off+w], out.data[off+n:off+n+w],
						out.data[off+2*n:off+2*n+w], out.data[off+3*n:off+3*n+w],
						ad[:k], ad[k:2*k], ad[2*k:3*k], ad[3*k:4*k], panel)
				case 2:
					microGEMM2(out.data[off:off+w], out.data[off+n:off+n+w],
						ad[:k], ad[k:2*k], panel)
				default:
					microGEMM1(out.data[off:off+w], ad[:k], panel)
				}
			}
			i += bs
		}
	}
}

// storeCols writes the first len(o) of four accumulated columns.
func storeCols[T fp.Float](o []T, c0, c1, c2, c3 T) {
	switch len(o) {
	case 4:
		o[0], o[1], o[2], o[3] = c0, c1, c2, c3
	case 3:
		o[0], o[1], o[2] = c0, c1, c2
	case 2:
		o[0], o[1] = c0, c1
	case 1:
		o[0] = c0
	}
}

// microGEMM4 accumulates a 4×4 output block in registers: rows a0..a3
// against one packed panel, k ascending in quads with the flat kernel's
// association and zero-skip, then stores each row once.
func microGEMM4[T fp.Float](o0, o1, o2, o3, a0, a1, a2, a3, panel []T) {
	k := len(a0)
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	var c20, c21, c22, c23 T
	var c30, c31, c32, c33 T
	p := 0
	for ; p+4 <= k; p += 4 {
		b := panel[p*4 : p*4+16]
		if x0, x1, x2, x3 := a0[p], a0[p+1], a0[p+2], a0[p+3]; x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c00 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
			c01 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
			c02 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
			c03 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
		}
		if x0, x1, x2, x3 := a1[p], a1[p+1], a1[p+2], a1[p+3]; x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c10 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
			c11 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
			c12 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
			c13 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
		}
		if x0, x1, x2, x3 := a2[p], a2[p+1], a2[p+2], a2[p+3]; x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c20 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
			c21 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
			c22 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
			c23 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
		}
		if x0, x1, x2, x3 := a3[p], a3[p+1], a3[p+2], a3[p+3]; x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c30 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
			c31 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
			c32 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
			c33 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
		}
	}
	for ; p < k; p++ {
		b := panel[p*4 : p*4+4]
		if v := a0[p]; v != 0 {
			c00 += v * b[0]
			c01 += v * b[1]
			c02 += v * b[2]
			c03 += v * b[3]
		}
		if v := a1[p]; v != 0 {
			c10 += v * b[0]
			c11 += v * b[1]
			c12 += v * b[2]
			c13 += v * b[3]
		}
		if v := a2[p]; v != 0 {
			c20 += v * b[0]
			c21 += v * b[1]
			c22 += v * b[2]
			c23 += v * b[3]
		}
		if v := a3[p]; v != 0 {
			c30 += v * b[0]
			c31 += v * b[1]
			c32 += v * b[2]
			c33 += v * b[3]
		}
	}
	storeCols(o0, c00, c01, c02, c03)
	storeCols(o1, c10, c11, c12, c13)
	storeCols(o2, c20, c21, c22, c23)
	storeCols(o3, c30, c31, c32, c33)
}

// microGEMM2 is microGEMM4 at height 2.
func microGEMM2[T fp.Float](o0, o1, a0, a1, panel []T) {
	k := len(a0)
	var c00, c01, c02, c03 T
	var c10, c11, c12, c13 T
	p := 0
	for ; p+4 <= k; p += 4 {
		b := panel[p*4 : p*4+16]
		if x0, x1, x2, x3 := a0[p], a0[p+1], a0[p+2], a0[p+3]; x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c00 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
			c01 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
			c02 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
			c03 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
		}
		if x0, x1, x2, x3 := a1[p], a1[p+1], a1[p+2], a1[p+3]; x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c10 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
			c11 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
			c12 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
			c13 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
		}
	}
	for ; p < k; p++ {
		b := panel[p*4 : p*4+4]
		if v := a0[p]; v != 0 {
			c00 += v * b[0]
			c01 += v * b[1]
			c02 += v * b[2]
			c03 += v * b[3]
		}
		if v := a1[p]; v != 0 {
			c10 += v * b[0]
			c11 += v * b[1]
			c12 += v * b[2]
			c13 += v * b[3]
		}
	}
	storeCols(o0, c00, c01, c02, c03)
	storeCols(o1, c10, c11, c12, c13)
}

// microGEMM1 is microGEMM4 at height 1 — also the remainder-row kernel.
func microGEMM1[T fp.Float](o0, a0, panel []T) {
	k := len(a0)
	var c00, c01, c02, c03 T
	p := 0
	for ; p+4 <= k; p += 4 {
		b := panel[p*4 : p*4+16]
		if x0, x1, x2, x3 := a0[p], a0[p+1], a0[p+2], a0[p+3]; x0 != 0 || x1 != 0 || x2 != 0 || x3 != 0 {
			c00 += x0*b[0] + x1*b[4] + x2*b[8] + x3*b[12]
			c01 += x0*b[1] + x1*b[5] + x2*b[9] + x3*b[13]
			c02 += x0*b[2] + x1*b[6] + x2*b[10] + x3*b[14]
			c03 += x0*b[3] + x1*b[7] + x2*b[11] + x3*b[15]
		}
	}
	for ; p < k; p++ {
		b := panel[p*4 : p*4+4]
		if v := a0[p]; v != 0 {
			c00 += v * b[0]
			c01 += v * b[1]
			c02 += v * b[2]
			c03 += v * b[3]
		}
	}
	storeCols(o0, c00, c01, c02, c03)
}
