package tensor

import (
	"math"

	"repro/internal/rng"
)

// RandN fills a new rows×cols matrix with N(0, std²) deviates.
func RandN(r *rng.Rand, rows, cols int, std float64) *Dense {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = r.NormFloat64() * std
	}
	return m
}

// RandUniform fills a new rows×cols matrix with U[lo, hi) deviates.
func RandUniform(r *rng.Rand, rows, cols int, lo, hi float64) *Dense {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = lo + (hi-lo)*r.Float64()
	}
	return m
}

// XavierInit returns a fanIn×fanOut weight matrix with Glorot-uniform
// initialization, the scheme PyTorch's nn.Linear approximates.
func XavierInit(r *rng.Rand, fanIn, fanOut int) *Dense {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(r, fanIn, fanOut, -limit, limit)
}

// HeInit returns a fanIn×fanOut weight matrix with Kaiming-normal
// initialization suited to ReLU networks.
func HeInit(r *rng.Rand, fanIn, fanOut int) *Dense {
	return RandN(r, fanIn, fanOut, math.Sqrt(2.0/float64(fanIn)))
}
