package tensor

import (
	"math"
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
)

// Int8 kernel coverage: quantization semantics (symmetric, ±127, no
// −128), the checkpoint-v4 requantization identity, exact int32
// reference parity for the fused GEMMs, worker-count determinism, and
// the zero-allocation contract on warm pools.

func qbitsEqual(t *testing.T, name string, want, got *QMat) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() || want.Scale != got.Scale {
		t.Fatalf("%s: shape/scale mismatch", name)
	}
	w, g := want.Data(), got.Data()
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: element %d differs: %d vs %d", name, i, w[i], g[i])
		}
	}
}

func TestQuantizeValueSymmetricClamp(t *testing.T) {
	cases := []struct {
		v, scale float64
		want     int8
	}{
		{0, 1, 0},
		{0.5, 1, 1},    // half rounds away from zero
		{-0.5, 1, -1},  // symmetric on the negative side
		{1e9, 1, 127},  // clamps high
		{-1e9, 1, -127} /* never −128 */, {126.4, 1, 126},
		{2.5, 0.5, 5},
	}
	for _, c := range cases {
		if got := quantizeValue(c.v, c.scale); got != c.want {
			t.Fatalf("quantizeValue(%v, %v) = %d, want %d", c.v, c.scale, got, c.want)
		}
	}
}

// TestQuantizeWeightsPerColumn pins the per-channel scheme: every
// nonzero column has scale maxabs/127 and hits ±127 at its extreme
// element (which is what makes the v4 round trip exact), zero columns
// get scale 1, and no element ever quantizes to −128.
func TestQuantizeWeightsPerColumn(t *testing.T) {
	w := benchMat(17, 9, 3)
	for i := 0; i < 17; i++ {
		w.Set(i, 4, 0) // an all-zero column
	}
	q := QuantizeWeights(w)
	for j := 0; j < 9; j++ {
		maxAbs := 0.0
		for i := 0; i < 17; i++ {
			if a := math.Abs(w.At(i, j)); a > maxAbs {
				maxAbs = a
			}
		}
		if j == 4 {
			if q.ColScale[j] != 1 {
				t.Fatalf("zero column scale %v, want 1", q.ColScale[j])
			}
			continue
		}
		if got, want := q.ColScale[j], float32(maxAbs/127); got != want {
			t.Fatalf("column %d scale %v, want %v", j, got, want)
		}
		peak := int8(0)
		for i := 0; i < 17; i++ {
			v := q.Data()[i*9+j]
			if v == -128 {
				t.Fatalf("column %d produced −128", j)
			}
			if v > peak {
				peak = v
			}
			if -v > peak {
				peak = -v
			}
		}
		if peak != 127 {
			t.Fatalf("column %d peaks at %d, want 127", j, peak)
		}
	}
}

// TestQuantizeWeightsRequantizeIdentity is the checkpoint-v4 exactness
// property: dequantizing an int8 weight matrix to float64 and running
// QuantizeWeights again reproduces the identical payload and scales,
// because each column's max |q| is exactly 127 so the re-derived scale
// equals the stored one.
func TestQuantizeWeightsRequantizeIdentity(t *testing.T) {
	w := benchMat(23, 11, 7)
	q := QuantizeWeights(w)
	deq := New(23, 11)
	for i := 0; i < 23; i++ {
		for j := 0; j < 11; j++ {
			deq.Set(i, j, float64(q.Data()[i*11+j])*float64(q.ColScale[j]))
		}
	}
	q2 := QuantizeWeights(deq)
	for j, s := range q.ColScale {
		if q2.ColScale[j] != s {
			t.Fatalf("column %d scale drifted: %v vs %v", j, q2.ColScale[j], s)
		}
	}
	for i, v := range q.Data() {
		if q2.Data()[i] != v {
			t.Fatalf("element %d drifted: %d vs %d", i, q2.Data()[i], v)
		}
	}
}

// refQGEMM is the naive int32 reference of the fused GEMM epilogue —
// same accumulation domain and same epilogue arithmetic, no unrolling,
// no zero skipping, no parallelism.
func refQGEMM(a *QMat, w *QWeights, bias []float32, relu bool) *Dense32 {
	out := NewOf[float32](a.Rows(), w.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < w.Cols(); j++ {
			acc := int32(0)
			for k := 0; k < a.Cols(); k++ {
				acc += int32(a.Data()[i*a.Cols()+k]) * int32(w.Data()[k*w.Cols()+j])
			}
			f := float32(acc)*a.Scale*w.ColScale[j] + bias[j]
			if relu && f < 0 {
				f = 0
			}
			out.Set(i, j, f)
		}
	}
	return out
}

func quantFixtures(rows, k, n int, seed uint64) (*QMat, *QWeights, []float32) {
	src := benchMat32(rows, k, seed)
	a := NewQMat(rows, k, 0)
	QuantizeInto(kernels.Context{Workers: 1}, a, src, 0.01)
	w := QuantizeWeights(benchMat(k, n, seed+1))
	biasM := benchMat32(1, n, seed+2)
	return a, w, biasM.Data()
}

func TestQGEMMMatchesReference(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		rows, k, n := r.Intn(30)+1, r.Intn(40)+1, r.Intn(20)+1
		a, w, bias := quantFixtures(rows, k, n, uint64(trial))
		kc := kernels.Context{Workers: 1}

		want := refQGEMM(a, w, bias, false)
		got := NewOf[float32](rows, n)
		QMatMulBiasInto(kc, got, a, w, bias, false)
		bits32Equal(t, "QMatMulBiasInto", want, got)

		wantR := refQGEMM(a, w, bias, true)
		gotR := NewOf[float32](rows, n)
		QMatMulBiasInto(kc, gotR, a, w, bias, true)
		bits32Equal(t, "QMatMulBiasInto+ReLU", wantR, gotR)

		// The requantizing epilogue is the float epilogue followed by
		// quantizeValue at the output scale.
		const outScale = 0.02
		gotQ := NewQMat(rows, n, 0)
		QMatMulBiasReLUQuantInto(kc, gotQ, a, w, bias, outScale)
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				want := quantizeValue(float64(wantR.At(i, j)), outScale)
				if got := gotQ.Data()[i*n+j]; got != want {
					t.Fatalf("trial %d: requant epilogue (%d,%d) = %d, want %d", trial, i, j, got, want)
				}
			}
		}
	}
}

// TestQGEMMDequantizeTracksFloat bounds the end-to-end quantization
// error of one fused layer against the float64 reference on the same
// weights: with unit-scale inputs and per-channel weight scales the
// fused int8 GEMM must stay within the coarse quantization-noise
// budget — a sanity check that scales compose in the right order.
func TestQGEMMDequantizeTracksFloat(t *testing.T) {
	src64 := benchMat(40, 24, 5)
	w64 := benchMat(24, 16, 6)
	bias64 := benchMat(1, 16, 7)

	src32 := ConvertFrom[float32](nil, src64)
	maxAbs := 0.0
	for _, v := range src64.Data() {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	a := NewQMat(40, 24, 0)
	QuantizeInto(kernels.Context{Workers: 1}, a, src32, float32(maxAbs/127))
	qw := QuantizeWeights(w64)

	got := NewOf[float32](40, 16)
	QMatMulBiasInto(kernels.Context{Workers: 1}, got, a, qw, ConvertFrom[float32](nil, bias64).Data(), false)

	want := AddBias(MatMul(src64, w64), bias64)
	worst := 0.0
	for i, v := range want.Data() {
		if d := math.Abs(v - float64(got.Data()[i])); d > worst {
			worst = d
		}
	}
	// k=24 products, each with ~maxAbs/254 input noise — 0.1 is ~10×
	// slack over the expected RMS for these unit-scale fixtures.
	if worst > 0.1 {
		t.Fatalf("int8 GEMM drifts %v from f64", worst)
	}
}

var quantParityWorkers = []int{1, 2, 4, 7}

func TestQuantKernelsWorkerCountParity(t *testing.T) {
	src := benchMat32(130, 40, 1)
	a, w, bias := quantFixtures(130, 40, 24, 9)
	b := NewQMat(130, 24, 0)
	QuantizeInto(kernels.Context{Workers: 1}, b, benchMat32(130, 24, 2), 0.05)

	var refQ, refH, refC *QMat
	var refF *Dense32
	for wi, workers := range quantParityWorkers {
		kc := kernels.Context{Workers: workers}
		q := NewQMat(130, 40, 0)
		QuantizeInto(kc, q, src, 0.01)
		f := NewOf[float32](130, 24)
		QMatMulBiasInto(kc, f, a, w, bias, true)
		h := NewQMat(130, 24, 0)
		QMatMulBiasReLUQuantInto(kc, h, a, w, bias, 0.05)
		c := NewQMat(130, 48, h.Scale)
		QConcatColsInto(kc, c, h, b)
		if wi == 0 {
			refQ, refF, refH, refC = q, f, h, c
			continue
		}
		qbitsEqual(t, "QuantizeInto", refQ, q)
		bits32Equal(t, "QMatMulBiasInto", refF, f)
		qbitsEqual(t, "QMatMulBiasReLUQuantInto", refH, h)
		qbitsEqual(t, "QConcatColsInto", refC, c)
	}
}

func TestQuantIntoKernelsZeroAllocs(t *testing.T) {
	src := benchMat32(6, 8, 1)
	a, w, bias := quantFixtures(6, 8, 8, 3)
	q := NewQMat(6, 8, 0)
	f := NewOf[float32](6, 8)
	h := NewQMat(6, 8, 0)
	c := NewQMat(6, 16, 0.05)
	// Spread an existing slice: a variadic literal at the call site
	// would itself allocate, which is the caller's charge, not the
	// kernel's.
	pair := []*QMat{h, h}
	kc := kernels.Context{Workers: 1}
	allocs := testing.AllocsPerRun(100, func() {
		QuantizeInto(kc, q, src, 0.01)
		QMatMulBiasInto(kc, f, a, w, bias, true)
		QMatMulBiasReLUQuantInto(kc, h, a, w, bias, 0.05)
		c.Scale = 0.05
		QConcatColsInto(kc, c, pair...)
		DequantizeInto(f, h)
	})
	if allocs != 0 {
		t.Fatalf("int8 Into kernels allocated %.1f per run, want 0", allocs)
	}
}

func TestQConcatColsScaleMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QConcatColsInto accepted mismatched scales")
		}
	}()
	out := NewQMat(2, 4, 0.5)
	QConcatColsInto(kernels.Context{Workers: 1}, out, NewQMat(2, 2, 0.5), NewQMat(2, 2, 0.25))
}

func TestQuantizeIntoRejectsBadScale(t *testing.T) {
	for _, scale := range []float32{0, -1, float32(math.NaN())} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("QuantizeInto accepted scale %v", scale)
				}
			}()
			QuantizeInto(kernels.Context{Workers: 1}, NewQMat(1, 1, 0), NewOf[float32](1, 1), scale)
		}()
	}
}
