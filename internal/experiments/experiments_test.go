package experiments

import (
	"testing"
	"time"
)

// tinyOptions keeps experiment tests fast.
func tinyOptions() Options {
	return Options{
		Scale:           0.015,
		Events:          4,
		Epochs:          3,
		BatchSize:       64,
		Hidden:          8,
		Steps:           2,
		Seed:            5,
		SamplerOverhead: time.Millisecond,
	}
}

func TestRunTable1Shapes(t *testing.T) {
	rows := RunTable1(tinyOptions())
	if len(rows) != 2 {
		t.Fatalf("Table 1 has %d rows, want 2", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	ctd, ex3 := byName["CTD"], byName["Ex3"]
	if ctd.VertexFeatures != 14 || ctd.EdgeFeatures != 8 || ctd.MLPLayers != 3 {
		t.Fatalf("CTD row %+v", ctd)
	}
	if ex3.VertexFeatures != 6 || ex3.EdgeFeatures != 2 || ex3.MLPLayers != 2 {
		t.Fatalf("Ex3 row %+v", ex3)
	}
	// CTD events are much larger than Ex3 events, as in the paper.
	if ctd.AvgVertices <= 2*ex3.AvgVertices {
		t.Fatalf("CTD avg vertices %v not ≫ Ex3 %v", ctd.AvgVertices, ex3.AvgVertices)
	}
	if ctd.AvgEdges <= ctd.AvgVertices {
		t.Fatalf("CTD edges %v should exceed vertices %v", ctd.AvgEdges, ctd.AvgVertices)
	}
}

func TestRunFigure4Shapes(t *testing.T) {
	o := tinyOptions()
	o.Epochs = 4
	res := RunFigure4(o)
	for name, h := range map[string]interface{ lenPoints() int }{} {
		_ = name
		_ = h
	}
	if len(res.FullGraph.Points) != o.Epochs || len(res.PyG.Points) != o.Epochs || len(res.Ours.Points) != o.Epochs {
		t.Fatal("curves have wrong length")
	}
	// The memory model must actually bite in the full-graph run.
	if res.Skipped == 0 {
		t.Fatal("full-graph training skipped no graphs — memory model inert")
	}
	// Minibatch (ours) must not be degraded vs the PyG implementation.
	if res.Ours.Final().Recall < res.PyG.Final().Recall-0.15 {
		t.Fatalf("ours recall %v much worse than PyG %v",
			res.Ours.Final().Recall, res.PyG.Final().Recall)
	}
}

func TestRunFigure3Shapes(t *testing.T) {
	// At this tiny scale, total wall time is dominated by 2-core training
	// jitter, so the test asserts the deterministic components of the
	// Figure 3 shape: the all-reduce advantage at P>1, the presence of a
	// memory-derived bulk k, and populated phases. The full speedup claim
	// is validated at real scale by the cmd/figure3 harness and recorded
	// in EXPERIMENTS.md.
	o := tinyOptions()
	rows := RunFigure3(o, []int{1, 2})
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	find := func(impl string, p int) EpochTimeRow {
		for _, r := range rows {
			if r.Impl == impl && r.Procs == p {
				return r
			}
		}
		t.Fatalf("row %s p=%d missing", impl, p)
		return EpochTimeRow{}
	}
	// Coalesced all-reduce must model strictly less synchronization time
	// than per-matrix at P=2.
	if pyg, ours := find("PyG", 2), find("Ours", 2); ours.AllReduce >= pyg.AllReduce {
		t.Fatalf("ours allreduce %v not < PyG %v", ours.AllReduce, pyg.AllReduce)
	}
	for _, r := range rows {
		if r.Impl == "Ours" && r.BulkK < 1 {
			t.Fatalf("ours row missing bulk k: %+v", r)
		}
		if r.Total() <= 0 || r.Sampling <= 0 || r.Training <= 0 {
			t.Fatalf("empty timing row: %+v", r)
		}
	}
	if sp := Speedups(rows); len(sp) != 2 {
		t.Fatalf("speedups %v", sp)
	}
}

func TestRunAllReduceAblation(t *testing.T) {
	rows := RunAllReduceAblation(tinyOptions(), []int{2, 4}, 5)
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Per-matrix must issue more collectives and model more time than
	// coalesced at the same P.
	byKey := map[string]AllReduceRow{}
	for _, r := range rows {
		byKey[r.Strategy+string(rune(r.Procs))] = r
	}
	for _, p := range []int{2, 4} {
		per := byKey["per-matrix"+string(rune(p))]
		coal := byKey["coalesced"+string(rune(p))]
		if per.Collectives <= coal.Collectives {
			t.Fatalf("p=%d: per-matrix %d collectives vs coalesced %d",
				p, per.Collectives, coal.Collectives)
		}
		if per.ModeledTime <= coal.ModeledTime {
			t.Fatalf("p=%d: per-matrix %v modeled vs coalesced %v",
				p, per.ModeledTime, coal.ModeledTime)
		}
	}
}

func TestRunBulkKAblation(t *testing.T) {
	rows := RunBulkKAblation(tinyOptions(), []int{1, 4})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Larger k ⇒ fewer sampler invocations. This is the deterministic
	// mechanism behind the sampling-time drop; the wall-time effect
	// itself is validated by the uncontended cmd/ablation harness run
	// (recorded in experiment_runs.txt) because measured durations under
	// full-suite CPU contention are too noisy to assert on.
	if rows[1].SamplerCalls >= rows[0].SamplerCalls {
		t.Fatalf("k=4 calls %d not < k=1 calls %d", rows[1].SamplerCalls, rows[0].SamplerCalls)
	}
	for _, r := range rows {
		if r.Sampling <= 0 || r.Training <= 0 {
			t.Fatalf("phases not timed: %+v", r)
		}
	}
}

func TestRunFanoutAblation(t *testing.T) {
	o := tinyOptions()
	o.Epochs = 2
	rows := RunFanoutAblation(o, [][2]int{{1, 2}, {2, 4}})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("metrics out of range: %+v", r)
		}
		if r.EpochTime <= 0 {
			t.Fatalf("missing epoch time: %+v", r)
		}
	}
}

func TestRunBatchSizeAblation(t *testing.T) {
	o := tinyOptions()
	o.Epochs = 2
	rows := RunBatchSizeAblation(o, []int{32, 256})
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Smaller batches take more optimizer steps per epoch.
	if rows[0].StepsPerEpoch <= rows[1].StepsPerEpoch {
		t.Fatalf("batch 32 steps %d not > batch 256 steps %d",
			rows[0].StepsPerEpoch, rows[1].StepsPerEpoch)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Dataset != "ex3" || o.Scale == 0 || o.Epochs == 0 || o.BatchSize != 256 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	spec := o.spec()
	if spec.Name != "Ex3" {
		t.Fatalf("spec %v", spec.Name)
	}
	o.Dataset = "ctd"
	if o.spec().Name != "CTD" {
		t.Fatal("ctd spec not selected")
	}
}
