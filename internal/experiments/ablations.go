package experiments

import (
	"context"

	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// BulkKRow is one point of the bulk-batch-count ablation (§IV-C): how the
// sampling share of epoch time falls as more minibatches are sampled per
// bulk invocation.
type BulkKRow struct {
	K            int
	Sampling     time.Duration
	Training     time.Duration
	SamplerCalls int // bulk invocations per epoch (approximate: steps/k)
}

// RunBulkKAblation sweeps the bulk batch count k at fixed P and measures
// the epoch-time phase split.
func RunBulkKAblation(o Options, ks []int) []BulkKRow {
	rows, _ := RunBulkKAblationContext(context.Background(), o, ks)
	return rows
}

// RunBulkKAblationContext is RunBulkKAblation with cooperative
// cancellation between sweep points.
func RunBulkKAblationContext(ctx context.Context, o Options, ks []int) ([]BulkKRow, error) {
	o = o.withDefaults()
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8}
	}
	train, _, gnn := buildGraphs(o)
	var rows []BulkKRow
	for _, k := range ks {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		cfg := core.OursConfig(gnn, 1)
		cfg.BatchSize = o.BatchSize
		cfg.BulkK = k
		cfg.Seed = o.Seed
		cfg.SamplerOverhead = o.SamplerOverhead
		tr := core.NewTrainer(cfg)
		tr.TrainEpochMinibatch(train) // warm
		stats := tr.TrainEpochMinibatch(train)
		calls := stats.Steps / k
		if stats.Steps%k != 0 {
			calls++
		}
		rows = append(rows, BulkKRow{
			K:            k,
			Sampling:     stats.Timer.Get(metrics.PhaseSampling),
			Training:     stats.Timer.Get(metrics.PhaseTraining),
			SamplerCalls: calls,
		})
	}
	return rows, nil
}

// FanoutRow is one point of the ShaDow hyperparameter ablation.
type FanoutRow struct {
	Depth, Fanout       int
	Precision, Recall   float64
	EpochTime           time.Duration
	AvgSubgraphVertices float64
}

// RunFanoutAblation sweeps ShaDow (depth, fanout) pairs and reports
// validation quality and epoch cost.
func RunFanoutAblation(o Options, pairs [][2]int) []FanoutRow {
	rows, _ := RunFanoutAblationContext(context.Background(), o, pairs)
	return rows
}

// RunFanoutAblationContext is RunFanoutAblation with cooperative
// cancellation between sweep points.
func RunFanoutAblationContext(ctx context.Context, o Options, pairs [][2]int) ([]FanoutRow, error) {
	o = o.withDefaults()
	if len(pairs) == 0 {
		pairs = [][2]int{{1, 4}, {2, 4}, {3, 6}, {2, 8}}
	}
	train, val, gnn := buildGraphs(o)
	var rows []FanoutRow
	for _, pd := range pairs {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		cfg := core.OursConfig(gnn, 1)
		cfg.BatchSize = o.BatchSize
		cfg.Shadow.Depth, cfg.Shadow.Fanout = pd[0], pd[1]
		cfg.Epochs = o.Epochs
		cfg.Seed = o.Seed
		tr := core.NewTrainer(cfg)
		start := time.Now()
		for e := 0; e < cfg.Epochs; e++ {
			tr.TrainEpochMinibatch(train)
		}
		elapsed := time.Since(start) / time.Duration(cfg.Epochs)
		counts := tr.Evaluate(val)
		rows = append(rows, FanoutRow{
			Depth:     pd[0],
			Fanout:    pd[1],
			Precision: counts.Precision(),
			Recall:    counts.Recall(),
			EpochTime: elapsed,
		})
	}
	return rows, nil
}

// BatchSizeRow is one point of the generalization-vs-batch-size ablation
// (the Keskar et al. argument the paper builds on).
type BatchSizeRow struct {
	BatchSize         int
	StepsPerEpoch     int
	Precision, Recall float64
	F1                float64
}

// RunBatchSizeAblation trains at several batch sizes for a fixed epoch
// budget and reports final validation quality.
func RunBatchSizeAblation(o Options, sizes []int) []BatchSizeRow {
	rows, _ := RunBatchSizeAblationContext(context.Background(), o, sizes)
	return rows
}

// RunBatchSizeAblationContext is RunBatchSizeAblation with cooperative
// cancellation between sweep points.
func RunBatchSizeAblationContext(ctx context.Context, o Options, sizes []int) ([]BatchSizeRow, error) {
	o = o.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{32, 128, 512}
	}
	train, val, gnn := buildGraphs(o)
	var rows []BatchSizeRow
	for _, bs := range sizes {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		cfg := core.OursConfig(gnn, 1)
		cfg.BatchSize = bs
		cfg.Epochs = o.Epochs
		cfg.Seed = o.Seed
		tr := core.NewTrainer(cfg)
		steps := 0
		for e := 0; e < cfg.Epochs; e++ {
			steps = tr.TrainEpochMinibatch(train).Steps
		}
		counts := tr.Evaluate(val)
		rows = append(rows, BatchSizeRow{
			BatchSize:     bs,
			StepsPerEpoch: steps,
			Precision:     counts.Precision(),
			Recall:        counts.Recall(),
			F1:            counts.F1(),
		})
	}
	return rows, nil
}
