// Package experiments reproduces every table and figure of the paper's
// evaluation section, plus the ablations DESIGN.md calls out. Each Run*
// function returns structured rows; cmd tools and benchmarks render them.
//
// Scaling: the paper ran CTD (330.7K vertices/graph) on A100 GPUs; these
// harnesses default to laptop-scale synthetic events with the same
// structure. The Options.Scale knob and per-run overrides reach toward
// paper scale when more compute is available.
package experiments

import (
	"context"

	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ddp"
	"repro/internal/detector"
	"repro/internal/gpumem"
	"repro/internal/ignn"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// Options configures an experiment run. Zero values select laptop-scale
// defaults.
type Options struct {
	Dataset   string  // "ex3" (default) or "ctd"
	Scale     float64 // dataset scale factor (1 = paper size); default 0.02
	Events    int     // number of event graphs; default 8
	Epochs    int     // training epochs; default 8
	BatchSize int     // global batch size; default 256 (paper)
	Hidden    int     // GNN hidden width; default 16 (paper: 64)
	Steps     int     // GNN message-passing layers; default 3 (paper: 8)
	FakeRatio float64 // fake edges per true edge in the event graphs; default 1.5
	Seed      uint64  // default 7

	// DeviceBytes is the per-device activation budget. Default sizes the
	// device so the largest training graphs exceed it, reproducing the
	// full-graph skip behaviour at laptop scale.
	DeviceBytes int64

	// SamplerOverhead is the simulated per-invocation sampler launch cost
	// (see core.Config). Default 2ms (Figure 3 uses 15ms; calibration in
	// EXPERIMENTS.md).
	SamplerOverhead time.Duration

	// ComputeSpeedup models accelerator dense-compute throughput relative
	// to this host (see core.Config). Zero means the runner's default:
	// 1 everywhere except Figure 3, which uses 25 so the paper's
	// sampling:training proportions are recovered.
	ComputeSpeedup float64
}

func (o Options) withDefaults() Options {
	if o.Dataset == "" {
		o.Dataset = "ex3"
	}
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	if o.Events == 0 {
		o.Events = 8
	}
	if o.Epochs == 0 {
		o.Epochs = 8
	}
	if o.BatchSize == 0 {
		o.BatchSize = 256
	}
	if o.Hidden == 0 {
		o.Hidden = 16
	}
	if o.Steps == 0 {
		o.Steps = 3
	}
	if o.FakeRatio == 0 {
		o.FakeRatio = 1.5
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.SamplerOverhead == 0 {
		o.SamplerOverhead = 2 * time.Millisecond
	}
	return o
}

// spec returns the detector spec for the chosen dataset family.
func (o Options) spec() detector.Spec {
	var s detector.Spec
	if o.Dataset == "ctd" {
		s = detector.CTDLike(o.Scale)
	} else {
		s = detector.Ex3Like(o.Scale)
	}
	s.NumEvents = o.Events
	return s
}

// buildGraphs generates events and assembles truth-level event graphs
// (decoupling the GNN-stage experiments from stage 1–3 training, as
// described in DESIGN.md), split into train and validation sets.
func buildGraphs(o Options) (train, val []*pipeline.EventGraph, gnn ignn.Config) {
	spec := o.spec()
	ds := detector.Generate(spec, o.Seed)
	pcfg := pipeline.DefaultConfig(spec)
	p := pipeline.New(pcfg, o.Seed+1)
	var egs []*pipeline.EventGraph
	for i, ev := range ds.Events {
		egs = append(egs, p.BuildTruthLevelGraph(ev, o.FakeRatio, o.Seed+uint64(10+i)))
	}
	nVal := len(egs) / 8
	if nVal < 1 {
		nVal = 1
	}
	train = egs[:len(egs)-nVal]
	val = egs[len(egs)-nVal:]
	gnn = ignn.Config{
		NodeFeatures: spec.VertexFeatures,
		EdgeFeatures: spec.EdgeFeatures,
		Hidden:       o.Hidden,
		Steps:        o.Steps,
	}
	return train, val, gnn
}

// defaultDeviceBytes sizes the simulated device so that the largest
// training graph exceeds the full-graph activation budget (reproducing
// the skip behaviour) while sampled subgraphs fit comfortably.
func defaultDeviceBytes(graphs []*pipeline.EventGraph, gnn ignn.Config) int64 {
	maxEst, minEst := 0, 1<<62
	for _, eg := range graphs {
		est := ignn.EstimateActivationElements(gnn, eg.NumVertices(), eg.NumEdges())
		if est > maxEst {
			maxEst = est
		}
		if est < minEst {
			minEst = est
		}
	}
	// Budget between the smallest and largest graph footprint: some
	// graphs train, the biggest are skipped.
	return int64((minEst+maxEst)/2) * gpumem.BytesPerElement
}

// Table1Row is one dataset line of Table I, with the paper's reference
// values alongside measured synthetic statistics.
type Table1Row struct {
	Name           string
	Graphs         int
	AvgVertices    float64
	AvgEdges       float64
	MLPLayers      int
	VertexFeatures int
	EdgeFeatures   int

	PaperVertices float64
	PaperEdges    float64
}

// RunTable1 generates both dataset families at the given scale and
// measures their Table I statistics. The measured edge count is the
// truth-level graph edge count at the configured fake ratio (the graphs
// the GNN consumes).
func RunTable1(o Options) []Table1Row {
	rows, _ := RunTable1Context(context.Background(), o)
	return rows
}

// RunTable1Context is RunTable1 with cooperative cancellation between
// dataset families; it returns the rows completed so far and ctx.Err().
func RunTable1Context(ctx context.Context, o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	rows := make([]Table1Row, 0, 2)
	paper := map[string][2]float64{
		"CTD": {330700, 6900000},
		"Ex3": {13000, 47800},
	}
	for _, name := range []string{"ctd", "ex3"} {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		oo := o
		oo.Dataset = name
		spec := oo.spec()
		ds := detector.Generate(spec, oo.Seed)
		st := ds.ComputeStats()
		// Edge count of the event graphs the GNN sees.
		avgEdges := st.AvgTruthEdges * (1 + oo.FakeRatio)
		rows = append(rows, Table1Row{
			Name:           st.Name,
			Graphs:         st.Graphs,
			AvgVertices:    st.AvgVertices,
			AvgEdges:       avgEdges,
			MLPLayers:      st.MLPLayers,
			VertexFeatures: st.VertexFeatures,
			EdgeFeatures:   st.EdgeFeatures,
			PaperVertices:  paper[st.Name][0],
			PaperEdges:     paper[st.Name][1],
		})
	}
	return rows, nil
}

// ConvergenceResult holds the three curves of Figure 4.
type ConvergenceResult struct {
	FullGraph *metrics.History // original Exa.TrkX full-graph training
	PyG       *metrics.History // ShaDow minibatch, PyG-style implementation
	Ours      *metrics.History // ShaDow minibatch, matrix-bulk + coalesced
	Skipped   int              // graphs skipped per epoch by full-graph
}

// RunFigure4 reproduces the convergence comparison on Ex3: full-graph
// vs ShaDow with the PyG implementation vs ShaDow with our
// implementation, precision and recall per epoch on the validation set.
func RunFigure4(o Options) *ConvergenceResult {
	res, _ := RunFigure4Context(context.Background(), o)
	return res
}

// RunFigure4Context is RunFigure4 with cooperative cancellation between
// the three training runs; the partial result holds the curves finished
// so far (later curves nil) alongside ctx.Err().
func RunFigure4Context(ctx context.Context, o Options) (*ConvergenceResult, error) {
	o = o.withDefaults()
	train, val, gnn := buildGraphs(o)
	deviceBytes := o.DeviceBytes
	if deviceBytes == 0 {
		deviceBytes = defaultDeviceBytes(train, gnn)
	}

	res := &ConvergenceResult{}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Full-graph: memory-constrained device (skips the largest graphs).
	fullCfg := core.DefaultConfig(gnn)
	fullCfg.Epochs = o.Epochs
	fullCfg.Seed = o.Seed
	fullCfg.Device = gpumem.ScaledDevice(deviceBytes)
	fullTr := core.NewTrainer(fullCfg)
	res.FullGraph = fullTr.RunConvergence(core.FullGraph, train, val)
	res.Skipped = countSkipped(fullCfg, train, gnn)
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// PyG baseline: standard per-batch ShaDow, per-matrix all-reduce.
	pygCfg := core.PyGBaselineConfig(gnn, 1)
	pygCfg.Epochs = o.Epochs
	pygCfg.BatchSize = o.BatchSize
	pygCfg.Seed = o.Seed
	res.PyG = core.NewTrainer(pygCfg).RunConvergence(core.Minibatch, train, val)
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Ours: matrix bulk sampling, coalesced all-reduce.
	oursCfg := core.OursConfig(gnn, 1)
	oursCfg.Epochs = o.Epochs
	oursCfg.BatchSize = o.BatchSize
	oursCfg.Seed = o.Seed
	res.Ours = core.NewTrainer(oursCfg).RunConvergence(core.Minibatch, train, val)

	return res, nil
}

func countSkipped(cfg core.Config, graphs []*pipeline.EventGraph, gnn ignn.Config) int {
	skipped := 0
	for _, eg := range graphs {
		est := ignn.EstimateActivationElements(gnn, eg.NumVertices(), eg.NumEdges())
		if !cfg.Device.FitsActivations(est) {
			skipped++
		}
	}
	return skipped
}

// EpochTimeRow is one bar of Figure 3: an (implementation, process count)
// pair with its stacked phase breakdown.
type EpochTimeRow struct {
	Dataset   string
	Procs     int
	Impl      string // "PyG" or "Ours"
	Sampling  time.Duration
	Training  time.Duration
	AllReduce time.Duration
	BulkK     int // minibatches sampled in bulk (Ours only)
}

// Total returns the stacked epoch time.
func (r EpochTimeRow) Total() time.Duration { return r.Sampling + r.Training + r.AllReduce }

// String renders the row like the figure's annotations.
func (r EpochTimeRow) String() string {
	k := ""
	if r.BulkK > 0 {
		k = fmt.Sprintf(" k=%d", r.BulkK)
	}
	return fmt.Sprintf("%-4s p=%-2d %-5s total=%-12v sampling=%-12v training=%-12v allreduce=%v%s",
		r.Dataset, r.Procs, r.Impl,
		r.Total().Round(time.Microsecond), r.Sampling.Round(time.Microsecond),
		r.Training.Round(time.Microsecond), r.AllReduce.Round(time.Microsecond), k)
}

// RunFigure3 measures epoch time across process counts for the PyG
// baseline and our implementation — the stacked bars of Figure 3. The
// paper sweeps P∈{4,8,16} on CTD and P∈{1,4,8} on Ex3.
//
// Defaults calibrated to the paper's hardware (see EXPERIMENTS.md):
// A100-sized devices (so bulk k is memory-derived, reaching "all" for
// small datasets exactly as the paper reports for Ex3), 15ms sampler
// launch overhead, and a 25× accelerator compute model so the
// sampling:training proportions match the published bars.
func RunFigure3(o Options, procs []int) []EpochTimeRow {
	rows, _ := RunFigure3Context(context.Background(), o, procs)
	return rows
}

// RunFigure3Context is RunFigure3 with cooperative cancellation between
// (process count, implementation) cells; it returns the rows measured
// so far and ctx.Err().
func RunFigure3Context(ctx context.Context, o Options, procs []int) ([]EpochTimeRow, error) {
	// Figure-3-specific defaults, applied before the generic ones.
	if o.SamplerOverhead == 0 {
		o.SamplerOverhead = 15 * time.Millisecond
	}
	if o.ComputeSpeedup == 0 {
		o.ComputeSpeedup = 25
	}
	o = o.withDefaults()
	if len(procs) == 0 {
		procs = []int{1, 4, 8}
	}
	train, _, gnn := buildGraphs(o)

	var rows []EpochTimeRow
	for _, p := range procs {
		for _, impl := range []string{"PyG", "Ours"} {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			var cfg core.Config
			if impl == "PyG" {
				cfg = core.PyGBaselineConfig(gnn, p)
			} else {
				cfg = core.OursConfig(gnn, p)
				// Bulk-k derives from aggregate device memory: A100-sized
				// by default, overridable to force memory-limited k.
				if o.DeviceBytes != 0 {
					cfg.Device = gpumem.ScaledDevice(o.DeviceBytes)
				}
			}
			cfg.BatchSize = o.BatchSize
			cfg.Seed = o.Seed
			cfg.SamplerOverhead = o.SamplerOverhead
			cfg.ComputeSpeedup = o.ComputeSpeedup
			tr := core.NewTrainer(cfg)
			// Warm epoch (allocators, probe), then measured epoch.
			tr.TrainEpochMinibatch(train)
			stats := tr.TrainEpochMinibatch(train)
			rows = append(rows, EpochTimeRow{
				Dataset:   o.Dataset,
				Procs:     p,
				Impl:      impl,
				Sampling:  stats.Timer.Get(metrics.PhaseSampling),
				Training:  stats.Timer.Get(metrics.PhaseTraining),
				AllReduce: stats.Timer.Get(metrics.PhaseAllReduce),
				BulkK:     stats.BulkK,
			})
		}
	}
	return rows, nil
}

// Speedups pairs PyG and Ours rows at equal P and returns Ours' speedup.
func Speedups(rows []EpochTimeRow) map[int]float64 {
	pyg := map[int]time.Duration{}
	ours := map[int]time.Duration{}
	for _, r := range rows {
		if r.Impl == "PyG" {
			pyg[r.Procs] = r.Total()
		} else {
			ours[r.Procs] = r.Total()
		}
	}
	out := map[int]float64{}
	for p, t := range pyg {
		if o, ok := ours[p]; ok && o > 0 {
			out[p] = float64(t) / float64(o)
		}
	}
	return out
}

// AllReduceRow is one point of the §III-D ablation: synchronization cost
// per strategy and process count for the full IGNN parameter set.
type AllReduceRow struct {
	Procs       int
	Strategy    string
	Collectives int64
	ModeledTime time.Duration
}

// RunAllReduceAblation measures the modeled cost of synchronizing the
// IGNN gradient set under per-matrix vs coalesced all-reduce.
func RunAllReduceAblation(o Options, procs []int, stepsPerEpoch int) []AllReduceRow {
	rows, _ := RunAllReduceAblationContext(context.Background(), o, procs, stepsPerEpoch)
	return rows
}

// RunAllReduceAblationContext is RunAllReduceAblation with cooperative
// cancellation between cells.
func RunAllReduceAblationContext(ctx context.Context, o Options, procs []int, stepsPerEpoch int) ([]AllReduceRow, error) {
	o = o.withDefaults()
	if len(procs) == 0 {
		procs = []int{2, 4, 8, 16}
	}
	if stepsPerEpoch == 0 {
		stepsPerEpoch = 10
	}
	_, _, gnn := buildGraphs(o)
	var rows []AllReduceRow
	for _, p := range procs {
		for _, sync := range []ddp.SyncStrategy{ddp.PerMatrix, ddp.Coalesced} {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			cfg := core.DefaultConfig(gnn)
			cfg.Procs = p
			cfg.Sync = sync
			tr := core.NewTrainer(cfg)
			group := tr.CommGroup()
			group.ResetStats()
			// Synchronize the real parameter set repeatedly, in isolation.
			for s := 0; s < stepsPerEpoch; s++ {
				tr.SyncGradientsOnce()
			}
			rows = append(rows, AllReduceRow{
				Procs:       p,
				Strategy:    sync.String(),
				Collectives: group.Calls(),
				ModeledTime: group.ModeledTime(),
			})
		}
	}
	return rows, nil
}
