// Package core implements the paper's contribution: minibatch training of
// the Exa.TrkX Interaction GNN with ShaDow subgraph sampling, accelerated
// by matrix-based bulk sampling and a coalesced all-reduce, next to the
// two baselines it is measured against — full-graph training (the
// original Exa.TrkX behaviour, which skips graphs exceeding device
// memory) and sequential per-batch ShaDow sampling (the PyG baseline).
//
// Timing model. Simulated ranks execute their per-step work serially so
// each rank's wall time is measured without host-core contention; the
// epoch phases then charge the maximum across ranks (the bulk-synchronous
// cost of a perfectly data-parallel step). Gradient synchronization
// really executes (ring all-reduce over channels), but its reported phase
// time is the α–β model of NVLink 3.0, since channel hops on a laptop do
// not resemble GPU interconnect latency. Sampler invocations can charge a
// fixed per-call launch overhead (SamplerOverhead) standing in for the
// kernel-launch and dataloader orchestration costs that make batch-by-
// batch GPU sampling expensive; bulk sampling pays it once per k batches.
package core

import (
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/gpumem"
	"repro/internal/ignn"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sampling"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// SamplerKind selects the ShaDow implementation.
type SamplerKind int

const (
	// SamplerStandard is Algorithm 2 run per batch — the PyG baseline.
	SamplerStandard SamplerKind = iota
	// SamplerMatrixBulk is the paper's matrix-based bulk sampler.
	SamplerMatrixBulk
)

// String names the sampler for reports.
func (s SamplerKind) String() string {
	if s == SamplerMatrixBulk {
		return "matrix-bulk"
	}
	return "standard"
}

// Config collects trainer hyperparameters. The paper's settings are batch
// size 256, hidden 64, 30 epochs, ShaDow depth 3 fanout 6, 8 GNN layers.
type Config struct {
	GNN       ignn.Config
	Epochs    int
	BatchSize int // global batch size, split across Procs ranks
	Shadow    sampling.Config
	LR        float64
	PosWeight float64
	Threshold float64 // evaluation threshold on edge scores

	// Schedule optionally overrides the learning rate per epoch; nil
	// keeps LR constant. ClipNorm > 0 clips the global gradient norm
	// before each optimizer step.
	Schedule nn.LRScheduler
	ClipNorm float64

	Procs   int
	Sync    ddp.SyncStrategy
	Sampler SamplerKind
	Device  gpumem.Device
	BulkK   int // bulk batches per sampler call; 0 = derive from memory

	// SamplerOverhead is the simulated fixed cost per sampler invocation
	// (kernel launch / dataloader orchestration). Charged to the sampling
	// phase: once per batch for the standard sampler, once per bulk call
	// for the matrix sampler.
	SamplerOverhead time.Duration

	// ComputeSpeedup models the dense-compute throughput of the simulated
	// device relative to this host: charged training time is measured
	// time divided by this factor (0 or 1 = no scaling). Sampling is a
	// sparse, host-side workload and is never scaled. EXPERIMENTS.md
	// documents the calibration; tests run unscaled.
	ComputeSpeedup float64

	// KernelWorkers bounds the intra-op parallelism of each rank's
	// kernels (0 = auto). Ranks execute serially in this trainer's
	// timing model, so each rank may use the full host: the budget is
	// kernels.Budget(1, KernelWorkers). Results are bitwise identical
	// at every value.
	KernelWorkers int

	Seed uint64
}

// scaleCompute converts a measured dense-compute duration into charged
// device time under ComputeSpeedup.
func (c Config) scaleCompute(d time.Duration) time.Duration {
	if c.ComputeSpeedup > 1 {
		return time.Duration(float64(d) / c.ComputeSpeedup)
	}
	return d
}

// DefaultConfig mirrors the paper's hyperparameters at reduced width.
func DefaultConfig(gnn ignn.Config) Config {
	return Config{
		GNN:       gnn,
		Epochs:    30,
		BatchSize: 256,
		Shadow:    sampling.DefaultConfig(),
		LR:        1e-3,
		PosWeight: 1.0,
		Threshold: 0.5,
		Procs:     1,
		Sync:      ddp.PerMatrix,
		Sampler:   SamplerStandard,
		Device:    gpumem.A100(),
		Seed:      1,
	}
}

// PyGBaselineConfig configures the paper's baseline: sequential per-batch
// ShaDow sampling and per-matrix all-reduce.
func PyGBaselineConfig(gnn ignn.Config, procs int) Config {
	cfg := DefaultConfig(gnn)
	cfg.Procs = procs
	cfg.Sampler = SamplerStandard
	cfg.Sync = ddp.PerMatrix
	return cfg
}

// OursConfig configures the paper's optimized pipeline: matrix-based bulk
// sampling with memory-derived k and coalesced all-reduce.
func OursConfig(gnn ignn.Config, procs int) Config {
	cfg := DefaultConfig(gnn)
	cfg.Procs = procs
	cfg.Sampler = SamplerMatrixBulk
	cfg.Sync = ddp.Coalesced
	return cfg
}

// Trainer trains Interaction GNN replicas under DDP.
type Trainer struct {
	Cfg Config

	replicas []*ignn.Model
	params   [][]*autograd.Param
	opts     []nn.Optimizer
	group    *comm.Group
	syncers  []*ddp.GradSyncer
	gen      *rng.Rand

	// Per-rank workspace arenas and reusable tapes: every step's
	// activations, gradients, and gathered features are borrowed from the
	// warm pools and returned after the backward pass, so steady-state
	// training allocates no per-step buffer memory.
	arenas []*workspace.Arena
	tapes  []*autograd.Tape
	kc     kernels.Context

	edgeIndexes map[*pipeline.EventGraph]*sampling.EdgeIndex
	bulkK       map[*pipeline.EventGraph]int // memory-derived k, cached across epochs
}

// NewTrainer builds P identically initialized replicas.
func NewTrainer(cfg Config) *Trainer {
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	t := &Trainer{
		Cfg:         cfg,
		group:       comm.NewGroup(cfg.Procs, comm.NVLink3()),
		gen:         rng.New(cfg.Seed),
		edgeIndexes: make(map[*pipeline.EventGraph]*sampling.EdgeIndex),
		bulkK:       make(map[*pipeline.EventGraph]int),
	}
	// Ranks are timed serially (see the package comment), so each tape
	// gets the full single-unit kernel budget rather than a 1/P share.
	kc := kernels.Budget(1, cfg.KernelWorkers)
	for rank := 0; rank < cfg.Procs; rank++ {
		m := ignn.New(cfg.GNN, rng.New(cfg.Seed+1000)) // same seed → identical replicas
		t.replicas = append(t.replicas, m)
		t.params = append(t.params, m.Params())
		t.opts = append(t.opts, nn.NewAdam(cfg.LR))
		t.syncers = append(t.syncers, ddp.NewGradSyncer(t.group, rank, cfg.Sync, m.Params()))
		arena := workspace.NewArena()
		t.arenas = append(t.arenas, arena)
		tape := autograd.NewTapeArena(arena)
		tape.SetKernels(kc)
		t.tapes = append(t.tapes, tape)
	}
	t.kc = kc
	return t
}

// Model returns replica 0 (all replicas stay synchronized).
func (t *Trainer) Model() *ignn.Model { return t.replicas[0] }

// CommGroup exposes the communication group for stats inspection.
func (t *Trainer) CommGroup() *comm.Group { return t.group }

func (t *Trainer) edgeIndex(eg *pipeline.EventGraph) *sampling.EdgeIndex {
	if idx, ok := t.edgeIndexes[eg]; ok {
		return idx
	}
	idx := sampling.NewEdgeIndex(eg.G)
	t.edgeIndexes[eg] = idx
	return idx
}

// EpochStats reports one epoch of training.
type EpochStats struct {
	Timer   *metrics.PhaseTimer
	Loss    float64 // mean step loss
	Steps   int     // optimizer steps taken
	Skipped int     // graphs skipped by the memory model (full-graph mode)
	BulkK   int     // bulk batch count used (matrix sampler)
}

// TrainEpochFullGraph performs the original Exa.TrkX pass: one optimizer
// step per event graph, skipping graphs whose activation footprint
// exceeds device memory.
func (t *Trainer) TrainEpochFullGraph(graphs []*pipeline.EventGraph) EpochStats {
	stats := EpochStats{Timer: metrics.NewPhaseTimer()}
	model, params, opt := t.replicas[0], t.params[0], t.opts[0]
	lossSum := 0.0
	for _, eg := range graphs {
		est := ignn.EstimateActivationElements(t.Cfg.GNN, eg.NumVertices(), eg.NumEdges())
		if !t.Cfg.Device.FitsActivations(est) {
			stats.Skipped++
			continue
		}
		if eg.NumEdges() == 0 {
			continue
		}
		start := time.Now()
		tape := t.tapes[0]
		tape.Reset()
		logits := model.Forward(tape, eg.G.Src, eg.G.Dst, eg.X, eg.Y)
		loss := tape.BCEWithLogits(logits, eg.Label, t.Cfg.PosWeight)
		tape.Backward(loss)
		opt.Step(params)
		stats.Timer.AddDuration(metrics.PhaseTraining, t.Cfg.scaleCompute(time.Since(start)))
		lossSum += loss.Value.At(0, 0)
		t.arenas[0].Reset()
		stats.Steps++
	}
	if stats.Steps > 0 {
		stats.Loss = lossSum / float64(stats.Steps)
	}
	// Keep other replicas in sync for Evaluate/Model consumers.
	for rank := 1; rank < t.Cfg.Procs; rank++ {
		nn.CopyParamValues(t.params[rank], params)
	}
	return stats
}

// chooseBulkK derives the number of batches to sample per bulk call from
// aggregate device memory and a probe subgraph's activation footprint.
func (t *Trainer) chooseBulkK(probe *sampling.Subgraph, shardsPerBatch, remaining int) int {
	if t.Cfg.BulkK > 0 {
		if t.Cfg.BulkK < remaining {
			return t.Cfg.BulkK
		}
		return remaining
	}
	perShard := ignn.EstimateActivationElements(t.Cfg.GNN, probe.NumVertices(), probe.NumEdges())
	perBatch := perShard * shardsPerBatch
	return gpumem.BulkBatchCount(t.Cfg.Device, t.Cfg.Procs, perBatch, remaining)
}

// TrainEpochMinibatch performs the paper's minibatch pass over every
// event graph: vertices are shuffled into global batches of BatchSize,
// each batch is sharded across Procs ranks, shards are ShaDow-sampled
// (sequentially per batch for the standard sampler; k batches at a time
// for the matrix bulk sampler), and ranks train shard subgraphs under
// DDP with gradient all-reduce.
func (t *Trainer) TrainEpochMinibatch(graphs []*pipeline.EventGraph) EpochStats {
	stats := EpochStats{Timer: metrics.NewPhaseTimer()}
	lossSum := 0.0
	for _, eg := range graphs {
		if eg.NumVertices() == 0 || eg.NumEdges() == 0 {
			continue
		}
		eidx := t.edgeIndex(eg)
		perm := t.gen.Perm(eg.NumVertices())
		var batches [][]int
		for lo := 0; lo < len(perm); lo += t.Cfg.BatchSize {
			hi := lo + t.Cfg.BatchSize
			if hi > len(perm) {
				hi = len(perm)
			}
			batches = append(batches, perm[lo:hi])
		}
		switch t.Cfg.Sampler {
		case SamplerMatrixBulk:
			lossSum += t.runBulkBatches(eg, eidx, batches, &stats)
		default:
			lossSum += t.runStandardBatches(eg, eidx, batches, &stats)
		}
	}
	if stats.Steps > 0 {
		stats.Loss = lossSum / float64(stats.Steps)
	}
	return stats
}

// shardBatch splits a global batch's roots across ranks.
func shardBatch(batch []int, p int) [][]int {
	shards := make([][]int, p)
	for rank := 0; rank < p; rank++ {
		lo, hi := ddp.ShardRange(len(batch), p, rank)
		shards[rank] = batch[lo:hi]
	}
	return shards
}

// runStandardBatches is the PyG baseline: every batch triggers its own
// sampler invocation on every rank, sequentially batch after batch.
func (t *Trainer) runStandardBatches(eg *pipeline.EventGraph, eidx *sampling.EdgeIndex, batches [][]int, stats *EpochStats) float64 {
	p := t.Cfg.Procs
	lossSum := 0.0
	for _, batch := range batches {
		shards := shardBatch(batch, p)
		subs := make([]*sampling.Subgraph, p)
		// Ranks sample concurrently in real DDP; each rank pays its own
		// sampler-invocation overhead, so the step cost is the max across
		// ranks: (slowest shard sampling) + one overhead.
		var worst time.Duration
		for rank := 0; rank < p; rank++ {
			start := time.Now()
			if len(shards[rank]) > 0 {
				subs[rank] = sampling.StandardShaDow(eg.G, eidx, shards[rank], t.Cfg.Shadow, t.gen.Split())
			}
			if d := time.Since(start); d > worst {
				worst = d
			}
		}
		stats.Timer.AddDuration(metrics.PhaseSampling, worst+t.Cfg.SamplerOverhead)
		lossSum += t.trainStepDDP(eg, subs, stats)
		stats.Steps++
	}
	return lossSum
}

// runBulkBatches is the paper's approach: sample k batches (× P shards)
// in one bulk matrix invocation, then train the k steps.
func (t *Trainer) runBulkBatches(eg *pipeline.EventGraph, eidx *sampling.EdgeIndex, batches [][]int, stats *EpochStats) float64 {
	p := t.Cfg.Procs
	lossSum := 0.0
	i := 0
	for i < len(batches) {
		remaining := len(batches) - i
		// Derive k once per event graph (a probe shard sizes the memory
		// footprint); the choice is cached across epochs.
		chosenK, ok := t.bulkK[eg]
		if !ok {
			probeStart := time.Now()
			probeShards := shardBatch(batches[i], p)
			probe := sampling.MatrixShaDow(eg.G, eidx, probeShards[0], t.Cfg.Shadow, t.gen.Split())
			stats.Timer.AddDuration(metrics.PhaseSampling, time.Since(probeStart)/time.Duration(p))
			chosenK = t.chooseBulkK(probe, p, len(batches))
			t.bulkK[eg] = chosenK
		}
		stats.BulkK = chosenK
		k := chosenK
		if k > remaining {
			k = remaining
		}
		// One bulk invocation sampling k×P shard subgraphs.
		var flat [][]int
		for _, batch := range batches[i : i+k] {
			flat = append(flat, shardBatch(batch, p)...)
		}
		start := time.Now()
		subs := sampling.BulkMatrixShaDow(eg.G, eidx, flat, t.Cfg.Shadow, t.gen.Split())
		elapsed := time.Since(start)
		// The bulk sampler is itself a distributed matrix computation: its
		// stacked work divides across the P devices, so the simulated
		// wall cost is elapsed/P plus a single launch overhead.
		stats.Timer.AddDuration(metrics.PhaseSampling, elapsed/time.Duration(p)+t.Cfg.SamplerOverhead)
		for b := 0; b < k; b++ {
			lossSum += t.trainStepDDP(eg, subs[b*p:(b+1)*p], stats)
			stats.Steps++
		}
		i += k
	}
	return lossSum
}

// trainStepDDP executes one DDP step: each rank forwards/backwards its
// shard subgraph (measured serially, charged as the max), gradients are
// synchronized with the configured all-reduce (really executed; charged
// at the α–β modeled cost), and every rank applies the identical
// optimizer update.
func (t *Trainer) trainStepDDP(eg *pipeline.EventGraph, subs []*sampling.Subgraph, stats *EpochStats) float64 {
	p := t.Cfg.Procs
	var worst time.Duration
	lossSum, lossCount := 0.0, 0
	for rank := 0; rank < p; rank++ {
		start := time.Now()
		nn.ZeroGrads(t.params[rank])
		sub := subs[rank]
		if sub != nil && sub.NumEdges() > 0 {
			arena := t.arenas[rank]
			x := tensor.NewFrom(arena, len(sub.Vertices), eg.X.Cols())
			tensor.GatherRowsInto(x, eg.X, sub.Vertices)
			y := tensor.NewFrom(arena, len(sub.EdgeIDs), eg.Y.Cols())
			tensor.GatherRowsInto(y, eg.Y, sub.EdgeIDs)
			labels := arena.F64(len(sub.EdgeIDs))
			for i, id := range sub.EdgeIDs {
				labels[i] = eg.Label[id]
			}
			tape := t.tapes[rank]
			tape.Reset()
			logits := t.replicas[rank].Forward(tape, sub.Src, sub.Dst, x, y)
			loss := tape.BCEWithLogits(logits, labels, t.Cfg.PosWeight)
			tape.Backward(loss)
			lossSum += loss.Value.At(0, 0)
			lossCount++
			// Gradients have been accumulated into the persistent Params;
			// the step's activations, gradients, and gathers can go back
			// to the pools before sync and the optimizer run.
			arena.Reset()
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	stats.Timer.AddDuration(metrics.PhaseTraining, t.Cfg.scaleCompute(worst))

	// Gradient synchronization: really run the collective, charge the
	// modeled interconnect time.
	before := t.group.ModeledTime()
	ddp.RunRanks(p, func(rank int) {
		t.syncers[rank].Sync(t.params[rank])
	})
	stats.Timer.AddDuration(metrics.PhaseAllReduce, t.group.ModeledTime()-before)

	var optWorst time.Duration
	for rank := 0; rank < p; rank++ {
		start := time.Now()
		if t.Cfg.ClipNorm > 0 {
			nn.ClipGradNorm(t.params[rank], t.Cfg.ClipNorm)
		}
		t.opts[rank].Step(t.params[rank])
		if d := time.Since(start); d > optWorst {
			optWorst = d
		}
	}
	stats.Timer.AddDuration(metrics.PhaseTraining, t.Cfg.scaleCompute(optWorst))
	if lossCount == 0 {
		return 0
	}
	return lossSum / float64(lossCount)
}

// SyncGradientsOnce runs one gradient synchronization across all ranks —
// used by the all-reduce ablation to measure collective costs in
// isolation from sampling and compute.
func (t *Trainer) SyncGradientsOnce() {
	ddp.RunRanks(t.Cfg.Procs, func(rank int) {
		t.syncers[rank].Sync(t.params[rank])
	})
}

// Evaluate scores every edge of the given graphs with replica 0 and
// accumulates precision/recall counts at the configured threshold —
// "the number of correctly classified edges across validation set
// particle graphs" (Figure 4's metric).
func (t *Trainer) Evaluate(graphs []*pipeline.EventGraph) metrics.BinaryCounts {
	var counts metrics.BinaryCounts
	for _, eg := range graphs {
		if eg.NumEdges() == 0 {
			continue
		}
		scores := t.Model().EdgeScoresCtx(t.kc, t.arenas[0], eg.G.Src, eg.G.Dst, eg.X, eg.Y)
		for k, s := range scores {
			counts.Add(s >= t.Cfg.Threshold, eg.Label[k] > 0.5)
		}
	}
	return counts
}

// Mode selects full-graph or minibatch training for convergence runs.
type Mode int

const (
	// FullGraph is the original Exa.TrkX behaviour.
	FullGraph Mode = iota
	// Minibatch is the paper's ShaDow-sampled training.
	Minibatch
)

// String names the mode.
func (m Mode) String() string {
	if m == FullGraph {
		return "full-graph"
	}
	return "minibatch"
}

// applySchedule sets the per-epoch learning rate on every rank's
// optimizer when a schedule is configured.
func (t *Trainer) applySchedule(epoch int) {
	if t.Cfg.Schedule == nil {
		return
	}
	lr := t.Cfg.Schedule.LR(epoch)
	for _, opt := range t.opts {
		nn.SetLR(opt, lr)
	}
}

// RunConvergence trains for Cfg.Epochs epochs, evaluating precision and
// recall on val after each epoch — one curve of Figure 4.
func (t *Trainer) RunConvergence(mode Mode, train, val []*pipeline.EventGraph) *metrics.History {
	h := &metrics.History{}
	for epoch := 0; epoch < t.Cfg.Epochs; epoch++ {
		t.applySchedule(epoch)
		var stats EpochStats
		if mode == FullGraph {
			stats = t.TrainEpochFullGraph(train)
		} else {
			stats = t.TrainEpochMinibatch(train)
		}
		counts := t.Evaluate(val)
		h.Append(metrics.ConvergencePoint{
			Epoch:     epoch,
			Loss:      stats.Loss,
			Precision: counts.Precision(),
			Recall:    counts.Recall(),
		})
	}
	return h
}
