package core

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/gpumem"
	"repro/internal/ignn"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/sampling"
)

// testGraphs builds small truth-level event graphs for trainer tests.
func testGraphs(t *testing.T, events int, scale float64) ([]*pipeline.EventGraph, ignn.Config) {
	t.Helper()
	spec := detector.Ex3Like(scale)
	spec.NumEvents = events
	ds := detector.Generate(spec, 33)
	pcfg := pipeline.DefaultConfig(spec)
	p := pipeline.New(pcfg, 44)
	var egs []*pipeline.EventGraph
	for i, ev := range ds.Events {
		egs = append(egs, p.BuildTruthLevelGraph(ev, 1.5, uint64(200+i)))
	}
	gnn := ignn.Config{
		NodeFeatures: spec.VertexFeatures,
		EdgeFeatures: spec.EdgeFeatures,
		Hidden:       8,
		Steps:        2,
	}
	return egs, gnn
}

func fastConfig(gnn ignn.Config) Config {
	cfg := DefaultConfig(gnn)
	cfg.BatchSize = 64
	cfg.Shadow = sampling.Config{Depth: 2, Fanout: 4}
	cfg.Epochs = 3
	cfg.LR = 3e-3
	return cfg
}

func TestFullGraphTrainingReducesLoss(t *testing.T) {
	egs, gnn := testGraphs(t, 2, 0.02)
	tr := NewTrainer(fastConfig(gnn))
	first := tr.TrainEpochFullGraph(egs)
	var last EpochStats
	for i := 0; i < 6; i++ {
		last = tr.TrainEpochFullGraph(egs)
	}
	if last.Loss >= first.Loss {
		t.Fatalf("full-graph loss did not decrease: %v -> %v", first.Loss, last.Loss)
	}
	if first.Steps != len(egs) {
		t.Fatalf("full-graph steps %d, want one per graph (%d)", first.Steps, len(egs))
	}
	if first.Skipped != 0 {
		t.Fatalf("nothing should be skipped with A100 memory, got %d", first.Skipped)
	}
}

func TestFullGraphSkipsOversizedGraphs(t *testing.T) {
	egs, gnn := testGraphs(t, 3, 0.02)
	cfg := fastConfig(gnn)
	// Size the device so only the smallest graph fits.
	smallest, largest := egs[0], egs[0]
	for _, eg := range egs {
		if eg.NumEdges() < smallest.NumEdges() {
			smallest = eg
		}
		if eg.NumEdges() > largest.NumEdges() {
			largest = eg
		}
	}
	if smallest == largest {
		t.Skip("graphs all the same size")
	}
	budget := ignn.EstimateActivationElements(gnn, smallest.NumVertices(), smallest.NumEdges())
	cfg.Device = gpumem.ScaledDevice(int64(budget+1) * gpumem.BytesPerElement)
	tr := NewTrainer(cfg)
	stats := tr.TrainEpochFullGraph(egs)
	if stats.Skipped == 0 {
		t.Fatal("memory model skipped nothing")
	}
	if stats.Steps+stats.Skipped != len(egs) {
		t.Fatalf("steps %d + skipped %d != graphs %d", stats.Steps, stats.Skipped, len(egs))
	}
}

func TestMinibatchTrainingImprovesMetrics(t *testing.T) {
	egs, gnn := testGraphs(t, 3, 0.02)
	cfg := fastConfig(gnn)
	tr := NewTrainer(cfg)
	val := egs[2:]
	before := tr.Evaluate(val)
	var stats EpochStats
	for i := 0; i < 4; i++ {
		stats = tr.TrainEpochMinibatch(egs[:2])
	}
	after := tr.Evaluate(val)
	if after.F1() <= before.F1() {
		t.Fatalf("minibatch training did not improve F1: %v -> %v", before.F1(), after.F1())
	}
	if stats.Steps == 0 {
		t.Fatal("no steps taken")
	}
	if total := after.TP + after.FP + after.TN + after.FN; total != val[0].NumEdges() {
		t.Fatalf("evaluated %d edges, want %d", total, val[0].NumEdges())
	}
}

func TestMinibatchMoreStepsThanFullGraph(t *testing.T) {
	// The convergence mechanism of Figure 4: minibatch takes many more
	// optimizer steps per epoch than full-graph training.
	egs, gnn := testGraphs(t, 2, 0.02)
	cfg := fastConfig(gnn)
	full := NewTrainer(cfg).TrainEpochFullGraph(egs)
	mini := NewTrainer(cfg).TrainEpochMinibatch(egs)
	if mini.Steps <= full.Steps {
		t.Fatalf("minibatch steps %d not > full-graph steps %d", mini.Steps, full.Steps)
	}
}

func TestBulkSamplerMatchesStandardQuality(t *testing.T) {
	egs, gnn := testGraphs(t, 2, 0.02)
	run := func(sampler SamplerKind) float64 {
		cfg := fastConfig(gnn)
		cfg.Sampler = sampler
		tr := NewTrainer(cfg)
		for i := 0; i < 4; i++ {
			tr.TrainEpochMinibatch(egs[:1])
		}
		return tr.Evaluate(egs[1:]).F1()
	}
	std := run(SamplerStandard)
	bulk := run(SamplerMatrixBulk)
	// "our approach does not suffer from precision or recall degradation"
	if bulk < std-0.1 {
		t.Fatalf("bulk sampler F1 %v much worse than standard %v", bulk, std)
	}
}

func TestReplicasStaySynchronized(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	cfg := fastConfig(gnn)
	cfg.Procs = 3
	cfg.Sync = 1 // coalesced
	tr := NewTrainer(cfg)
	tr.TrainEpochMinibatch(egs)
	base := tr.params[0]
	for rank := 1; rank < cfg.Procs; rank++ {
		for i, p := range tr.params[rank] {
			if diff := p.Value.MaxAbsDiff(base[i].Value); diff > 1e-9 {
				t.Fatalf("rank %d param %d drifted %v", rank, i, diff)
			}
		}
	}
}

func TestPhaseTimerPopulated(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	cfg := fastConfig(gnn)
	cfg.Procs = 2
	tr := NewTrainer(cfg)
	stats := tr.TrainEpochMinibatch(egs)
	if stats.Timer.Get("Sampling") == 0 || stats.Timer.Get("Training") == 0 {
		t.Fatalf("phases not timed: %v", stats.Timer)
	}
	if stats.Timer.Get("AllReduce") == 0 {
		t.Fatal("allreduce phase empty with P=2")
	}
}

func TestBulkKGrowsWithAggregateMemory(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	kFor := func(procs int) int {
		cfg := fastConfig(gnn)
		cfg.Sampler = SamplerMatrixBulk
		cfg.Procs = procs
		cfg.BatchSize = 16
		// Small device so k is memory-limited rather than batch-limited.
		cfg.Device = gpumem.ScaledDevice(3 << 20)
		tr := NewTrainer(cfg)
		stats := tr.TrainEpochMinibatch(egs)
		return stats.BulkK
	}
	k1, k4 := kFor(1), kFor(4)
	if k1 < 1 || k4 < 1 {
		t.Fatalf("bulk k not chosen: k1=%d k4=%d", k1, k4)
	}
	if k4 <= k1 {
		t.Fatalf("bulk k did not grow with devices: k1=%d k4=%d", k1, k4)
	}
}

func TestRunConvergenceHistory(t *testing.T) {
	egs, gnn := testGraphs(t, 2, 0.02)
	cfg := fastConfig(gnn)
	cfg.Epochs = 3
	tr := NewTrainer(cfg)
	h := tr.RunConvergence(Minibatch, egs[:1], egs[1:])
	if len(h.Points) != 3 {
		t.Fatalf("history has %d points, want 3", len(h.Points))
	}
	for _, pt := range h.Points {
		if pt.Precision < 0 || pt.Precision > 1 || pt.Recall < 0 || pt.Recall > 1 {
			t.Fatalf("metrics out of range: %+v", pt)
		}
	}
	if h.Final().Recall < h.Points[0].Recall-0.2 {
		t.Fatalf("recall collapsed during training: %+v", h.Points)
	}
}

func TestFixedBulkK(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	cfg := fastConfig(gnn)
	cfg.Sampler = SamplerMatrixBulk
	cfg.BulkK = 2
	cfg.BatchSize = 32
	tr := NewTrainer(cfg)
	stats := tr.TrainEpochMinibatch(egs)
	if stats.BulkK != 2 {
		t.Fatalf("BulkK %d, want fixed 2", stats.BulkK)
	}
}

func TestModeAndSamplerStrings(t *testing.T) {
	if FullGraph.String() != "full-graph" || Minibatch.String() != "minibatch" {
		t.Fatal("mode names")
	}
	if SamplerStandard.String() != "standard" || SamplerMatrixBulk.String() != "matrix-bulk" {
		t.Fatal("sampler names")
	}
}

func TestScheduleAndClipIntegration(t *testing.T) {
	egs, gnn := testGraphs(t, 1, 0.02)
	cfg := fastConfig(gnn)
	cfg.Epochs = 2
	cfg.Schedule = nn.StepLR{Base: 1e-3, StepSize: 1, Gamma: 0.1}
	cfg.ClipNorm = 0.5
	tr := NewTrainer(cfg)
	h := tr.RunConvergence(Minibatch, egs, egs)
	if len(h.Points) != 2 {
		t.Fatalf("history %d points", len(h.Points))
	}
	// Training with aggressive clipping and decay must still run and keep
	// metrics in range.
	for _, p := range h.Points {
		if p.Precision < 0 || p.Precision > 1 {
			t.Fatalf("precision out of range: %+v", p)
		}
	}
}
