// Package knnsearch implements fixed-radius nearest-neighbor search in the
// learned embedding space — stage 2 of the Exa.TrkX pipeline, which the
// paper's stack delegates to FAISS/FRNN on GPU. A k-d tree over the
// embedding rows answers radius queries; BuildRadiusGraph assembles the
// event graph the downstream filter and GNN stages consume.
//
// The tree and the graph builder are generic over the embedding element
// type, so the float32 inference path searches f32 embeddings directly
// (half the bytes per visited node) instead of widening them first.
package knnsearch

import (
	"cmp"
	"slices"
	"sort"
	"sync"

	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// KDTree is a static k-d tree over the rows of a dense matrix.
type KDTree[T fp.Float] struct {
	pts   *tensor.Matrix[T]
	dim   int
	root  *node
	nodes []node // slab: all nodes in one allocation, pointers into it
}

type node struct {
	point       int // row index into pts
	axis        int
	left, right *node
}

// Build constructs a balanced k-d tree over all rows of pts. The tree's
// nodes live in one slab allocation sized up front, so building costs
// O(1) allocations rather than one per row.
func Build[T fp.Float](pts *tensor.Matrix[T]) *KDTree[T] {
	t := &KDTree[T]{pts: pts, dim: pts.Cols()}
	n := pts.Rows()
	t.nodes = make([]node, 0, n)
	idx := workspace.GetInt(n)
	defer workspace.PutInt(idx)
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx, 0)
	return t
}

func (t *KDTree[T]) build(idx []int, depth int) *node {
	if len(idx) == 0 {
		return nil
	}
	axis := depth % t.dim
	slices.SortFunc(idx, func(a, b int) int {
		return cmp.Compare(t.pts.At(a, axis), t.pts.At(b, axis))
	})
	mid := len(idx) / 2
	// The slab was sized to hold every node, so append never reallocates
	// and the pointer stays valid.
	t.nodes = append(t.nodes, node{point: idx[mid], axis: axis})
	n := &t.nodes[len(t.nodes)-1]
	// Re-sorted halves: the sort above reorders idx in place, and the
	// recursive calls re-sort disjoint sub-slices, so views are safe.
	n.left = t.build(idx[:mid], depth+1)
	n.right = t.build(idx[mid+1:], depth+1)
	return n
}

// RadiusNeighbors returns indices of all points within Euclidean distance
// radius of query (a slice of length dim), excluding exclude (pass -1 to
// keep all). Results are sorted ascending.
func (t *KDTree[T]) RadiusNeighbors(query []T, radius float64, exclude int) []int {
	if len(query) != t.dim {
		panic("knnsearch: query dimension mismatch")
	}
	var out []int
	r2 := T(radius) * T(radius)
	t.search(t.root, query, r2, exclude, &out)
	sort.Ints(out)
	return out
}

func (t *KDTree[T]) search(n *node, q []T, r2 T, exclude int, out *[]int) {
	if n == nil {
		return
	}
	row := t.pts.Row(n.point)
	var d2 T
	for j, qv := range q {
		d := row[j] - qv
		d2 += d * d
		if d2 > r2 {
			break
		}
	}
	if d2 <= r2 && n.point != exclude {
		*out = append(*out, n.point)
	}
	delta := q[n.axis] - row[n.axis]
	near, far := n.left, n.right
	if delta > 0 {
		near, far = far, near
	}
	t.search(near, q, r2, exclude, out)
	if delta*delta <= r2 {
		t.search(far, q, r2, exclude, out)
	}
}

// BruteRadiusNeighbors is the O(n·d) oracle used for testing.
func BruteRadiusNeighbors[T fp.Float](pts *tensor.Matrix[T], query []T, radius float64, exclude int) []int {
	var out []int
	r2 := T(radius) * T(radius)
	for i := 0; i < pts.Rows(); i++ {
		if i == exclude {
			continue
		}
		row := pts.Row(i)
		var d2 T
		for j, qv := range query {
			d := row[j] - qv
			d2 += d * d
		}
		if d2 <= r2 {
			out = append(out, i)
		}
	}
	return out
}

// BuildRadiusGraph connects every pair of embedding rows within radius,
// each undirected pair emitted once (src < dst). maxDegree (if > 0) caps
// the neighbors considered per query vertex, mirroring the k-cap used by
// the production FRNN stage to bound graph size.
//
// One pooled buffer per worker is reused across its radius queries, and
// capped queries use an O(len) partial selection of the maxDegree
// smallest indices instead of sorting the full candidate list — the
// output is identical to sorting ascending and truncating.
//
// The query loop is row-partitioned across workers with the same static
// contiguous chunking the kernel layer uses: each worker answers a
// disjoint range of query vertices into its own edge buffer and the
// buffers concatenate in range order, so the output is bitwise
// identical to the serial loop at every worker count.
func BuildRadiusGraph[T fp.Float](embeddings *tensor.Matrix[T], radius float64, maxDegree int) (src, dst []int) {
	return BuildRadiusGraphCtx(kernels.Context{}, embeddings, radius, maxDegree)
}

// BuildRadiusGraphCtx is BuildRadiusGraph under an explicit intra-op
// worker budget.
func BuildRadiusGraphCtx[T fp.Float](kc kernels.Context, embeddings *tensor.Matrix[T], radius float64, maxDegree int) (src, dst []int) {
	t := Build(embeddings)
	n := embeddings.Rows()
	workers := kc.Cap()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return t.collectRange(embeddings, radius, maxDegree, 0, n)
	}
	chunk := (n + workers - 1) / workers
	srcs := make([][]int, workers)
	dsts := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			srcs[w], dsts[w] = t.collectRange(embeddings, radius, maxDegree, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, s := range srcs {
		total += len(s)
	}
	src = make([]int, 0, total)
	dst = make([]int, 0, total)
	for w := range srcs {
		src = append(src, srcs[w]...)
		dst = append(dst, dsts[w]...)
	}
	return src, dst
}

// collectRange answers the radius queries of vertices [lo, hi),
// appending each query's surviving i<j edges to src/dst in ascending
// vertex order.
func (t *KDTree[T]) collectRange(embeddings *tensor.Matrix[T], radius float64, maxDegree int, lo, hi int) (src, dst []int) {
	r2 := T(radius) * T(radius)
	base := workspace.GetInt(embeddings.Rows())
	defer workspace.PutInt(base)
	for i := lo; i < hi; i++ {
		nbrs := base[:0]
		t.search(t.root, embeddings.Row(i), r2, i, &nbrs)
		if maxDegree > 0 && len(nbrs) > maxDegree {
			selectSmallest(nbrs, maxDegree)
			nbrs = nbrs[:maxDegree]
		}
		slices.Sort(nbrs)
		for _, j := range nbrs {
			if i < j {
				src = append(src, i)
				dst = append(dst, j)
			}
		}
	}
	return src, dst
}

// selectSmallest partially partitions s (quickselect) so its first k
// elements are the k smallest, in arbitrary order.
func selectSmallest(s []int, k int) {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot guards against adversarial orderings.
		mid := (lo + hi) / 2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			return
		}
	}
}
