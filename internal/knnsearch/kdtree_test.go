package knnsearch

import (
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestRadiusNeighborsMatchesBrute(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(80) + 2
		dim := r.Intn(6) + 1
		pts := tensor.RandN(r, n, dim, 1)
		tree := Build(pts)
		for trial := 0; trial < 5; trial++ {
			q := pts.Row(r.Intn(n))
			radius := 0.2 + r.Float64()
			got := tree.RadiusNeighbors(q, radius, -1)
			want := BruteRadiusNeighbors(pts, q, radius, -1)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusNeighborsExclude(t *testing.T) {
	pts := tensor.FromRows([][]float64{{0, 0}, {0.1, 0}, {5, 5}})
	tree := Build(pts)
	nbrs := tree.RadiusNeighbors(pts.Row(0), 1.0, 0)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("neighbors %v, want [1]", nbrs)
	}
	with := tree.RadiusNeighbors(pts.Row(0), 1.0, -1)
	if len(with) != 2 {
		t.Fatalf("without exclusion got %v", with)
	}
}

func TestRadiusZeroFindsExactDuplicates(t *testing.T) {
	pts := tensor.FromRows([][]float64{{1, 1}, {1, 1}, {2, 2}})
	tree := Build(pts)
	nbrs := tree.RadiusNeighbors([]float64{1, 1}, 0, -1)
	if len(nbrs) != 2 {
		t.Fatalf("exact match count %d, want 2", len(nbrs))
	}
}

func TestBuildRadiusGraphPairsUniqueAndOrdered(t *testing.T) {
	r := rng.New(3)
	pts := tensor.RandN(r, 60, 3, 1)
	src, dst := BuildRadiusGraph(pts, 0.8, 0)
	seen := map[[2]int]bool{}
	for k := range src {
		if src[k] >= dst[k] {
			t.Fatalf("edge %d not src<dst: (%d,%d)", k, src[k], dst[k])
		}
		key := [2]int{src[k], dst[k]}
		if seen[key] {
			t.Fatalf("duplicate edge %v", key)
		}
		seen[key] = true
	}
}

func TestBuildRadiusGraphMatchesBrute(t *testing.T) {
	r := rng.New(4)
	pts := tensor.RandN(r, 40, 2, 1)
	radius := 0.5
	src, dst := BuildRadiusGraph(pts, radius, 0)
	got := map[[2]int]bool{}
	for k := range src {
		got[[2]int{src[k], dst[k]}] = true
	}
	count := 0
	for i := 0; i < 40; i++ {
		for _, j := range BruteRadiusNeighbors(pts, pts.Row(i), radius, i) {
			if i < j {
				count++
				if !got[[2]int{i, j}] {
					t.Fatalf("missing edge (%d,%d)", i, j)
				}
			}
		}
	}
	if count != len(src) {
		t.Fatalf("edge count %d, brute force %d", len(src), count)
	}
}

func TestBuildRadiusGraphMaxDegree(t *testing.T) {
	// A dense cluster: cap should bound per-vertex emitted neighbors.
	r := rng.New(5)
	pts := tensor.RandN(r, 50, 2, 0.01)
	srcUncapped, _ := BuildRadiusGraph(pts, 1.0, 0)
	srcCapped, _ := BuildRadiusGraph(pts, 1.0, 5)
	if len(srcCapped) >= len(srcUncapped) {
		t.Fatalf("degree cap did not reduce edges: %d vs %d", len(srcCapped), len(srcUncapped))
	}
}

func TestEmptyAndSinglePoint(t *testing.T) {
	tree := Build(tensor.New(0, 3))
	if nbrs := tree.RadiusNeighbors([]float64{0, 0, 0}, 1, -1); len(nbrs) != 0 {
		t.Fatal("empty tree returned neighbors")
	}
	one := Build(tensor.FromRows([][]float64{{1, 2, 3}}))
	if nbrs := one.RadiusNeighbors([]float64{1, 2, 3}, 0.1, -1); len(nbrs) != 1 {
		t.Fatal("single-point tree missed self")
	}
}

// TestBuildRadiusGraphMatchesSortTruncate pins the maxDegree semantics:
// the partial-selection fast path must emit exactly the maxDegree
// smallest neighbor indices in ascending order — identical to sorting
// the full candidate list and truncating.
func TestBuildRadiusGraphMatchesSortTruncate(t *testing.T) {
	r := rng.New(11)
	pts := tensor.RandN(r, 300, 3, 1)
	for _, maxDeg := range []int{0, 1, 3, 12, 1000} {
		src, dst := BuildRadiusGraph(pts, 0.8, maxDeg)
		tree := Build(pts)
		var wantSrc, wantDst []int
		for i := 0; i < pts.Rows(); i++ {
			nbrs := tree.RadiusNeighbors(pts.Row(i), 0.8, i) // sorted ascending
			if maxDeg > 0 && len(nbrs) > maxDeg {
				nbrs = nbrs[:maxDeg]
			}
			for _, j := range nbrs {
				if i < j {
					wantSrc = append(wantSrc, i)
					wantDst = append(wantDst, j)
				}
			}
		}
		if len(src) != len(wantSrc) {
			t.Fatalf("maxDeg=%d: %d edges, want %d", maxDeg, len(src), len(wantSrc))
		}
		for k := range src {
			if src[k] != wantSrc[k] || dst[k] != wantDst[k] {
				t.Fatalf("maxDeg=%d: edge %d = (%d,%d), want (%d,%d)", maxDeg, k, src[k], dst[k], wantSrc[k], wantDst[k])
			}
		}
	}
}

func TestSelectSmallest(t *testing.T) {
	r := rng.New(12)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(40) + 1
		k := r.Intn(n) + 1
		s := make([]int, n)
		for i := range s {
			s[i] = r.Intn(1000)
		}
		want := append([]int(nil), s...)
		slices.Sort(want)
		selectSmallest(s, k)
		got := append([]int(nil), s[:k]...)
		slices.Sort(got)
		for i := 0; i < k; i++ {
			if got[i] != want[i] {
				t.Fatalf("trial %d: k=%d smallest mismatch: got %v want %v", trial, k, got, want[:k])
			}
		}
	}
}
