package knnsearch

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestRadiusNeighborsMatchesBrute(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(80) + 2
		dim := r.Intn(6) + 1
		pts := tensor.RandN(r, n, dim, 1)
		tree := Build(pts)
		for trial := 0; trial < 5; trial++ {
			q := pts.Row(r.Intn(n))
			radius := 0.2 + r.Float64()
			got := tree.RadiusNeighbors(q, radius, -1)
			want := BruteRadiusNeighbors(pts, q, radius, -1)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusNeighborsExclude(t *testing.T) {
	pts := tensor.FromRows([][]float64{{0, 0}, {0.1, 0}, {5, 5}})
	tree := Build(pts)
	nbrs := tree.RadiusNeighbors(pts.Row(0), 1.0, 0)
	if len(nbrs) != 1 || nbrs[0] != 1 {
		t.Fatalf("neighbors %v, want [1]", nbrs)
	}
	with := tree.RadiusNeighbors(pts.Row(0), 1.0, -1)
	if len(with) != 2 {
		t.Fatalf("without exclusion got %v", with)
	}
}

func TestRadiusZeroFindsExactDuplicates(t *testing.T) {
	pts := tensor.FromRows([][]float64{{1, 1}, {1, 1}, {2, 2}})
	tree := Build(pts)
	nbrs := tree.RadiusNeighbors([]float64{1, 1}, 0, -1)
	if len(nbrs) != 2 {
		t.Fatalf("exact match count %d, want 2", len(nbrs))
	}
}

func TestBuildRadiusGraphPairsUniqueAndOrdered(t *testing.T) {
	r := rng.New(3)
	pts := tensor.RandN(r, 60, 3, 1)
	src, dst := BuildRadiusGraph(pts, 0.8, 0)
	seen := map[[2]int]bool{}
	for k := range src {
		if src[k] >= dst[k] {
			t.Fatalf("edge %d not src<dst: (%d,%d)", k, src[k], dst[k])
		}
		key := [2]int{src[k], dst[k]}
		if seen[key] {
			t.Fatalf("duplicate edge %v", key)
		}
		seen[key] = true
	}
}

func TestBuildRadiusGraphMatchesBrute(t *testing.T) {
	r := rng.New(4)
	pts := tensor.RandN(r, 40, 2, 1)
	radius := 0.5
	src, dst := BuildRadiusGraph(pts, radius, 0)
	got := map[[2]int]bool{}
	for k := range src {
		got[[2]int{src[k], dst[k]}] = true
	}
	count := 0
	for i := 0; i < 40; i++ {
		for _, j := range BruteRadiusNeighbors(pts, pts.Row(i), radius, i) {
			if i < j {
				count++
				if !got[[2]int{i, j}] {
					t.Fatalf("missing edge (%d,%d)", i, j)
				}
			}
		}
	}
	if count != len(src) {
		t.Fatalf("edge count %d, brute force %d", len(src), count)
	}
}

func TestBuildRadiusGraphMaxDegree(t *testing.T) {
	// A dense cluster: cap should bound per-vertex emitted neighbors.
	r := rng.New(5)
	pts := tensor.RandN(r, 50, 2, 0.01)
	srcUncapped, _ := BuildRadiusGraph(pts, 1.0, 0)
	srcCapped, _ := BuildRadiusGraph(pts, 1.0, 5)
	if len(srcCapped) >= len(srcUncapped) {
		t.Fatalf("degree cap did not reduce edges: %d vs %d", len(srcCapped), len(srcUncapped))
	}
}

func TestEmptyAndSinglePoint(t *testing.T) {
	tree := Build(tensor.New(0, 3))
	if nbrs := tree.RadiusNeighbors([]float64{0, 0, 0}, 1, -1); len(nbrs) != 0 {
		t.Fatal("empty tree returned neighbors")
	}
	one := Build(tensor.FromRows([][]float64{{1, 2, 3}}))
	if nbrs := one.RadiusNeighbors([]float64{1, 2, 3}, 0.1, -1); len(nbrs) != 1 {
		t.Fatal("single-point tree missed self")
	}
}
