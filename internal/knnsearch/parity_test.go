package knnsearch

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestBuildRadiusGraphWorkerCountParity proves the parallel query loop
// emits exactly the serial edge list — same edges, same order — at
// workers ∈ {1, 2, 4, 7}, with and without a degree cap.
func TestBuildRadiusGraphWorkerCountParity(t *testing.T) {
	r := rng.New(31)
	pts := tensor.RandN(r, 157, 3, 1)
	for _, maxDegree := range []int{0, 5} {
		refSrc, refDst := BuildRadiusGraphCtx(kernels.Context{Workers: 1}, pts, 0.6, maxDegree)
		if len(refSrc) == 0 {
			t.Fatalf("fixture produced no edges (maxDegree=%d)", maxDegree)
		}
		for _, w := range []int{2, 4, 7} {
			src, dst := BuildRadiusGraphCtx(kernels.Context{Workers: w}, pts, 0.6, maxDegree)
			if len(src) != len(refSrc) {
				t.Fatalf("maxDegree=%d workers=%d: %d edges vs %d serial", maxDegree, w, len(src), len(refSrc))
			}
			for k := range src {
				if src[k] != refSrc[k] || dst[k] != refDst[k] {
					t.Fatalf("maxDegree=%d workers=%d: edge %d is (%d,%d), serial (%d,%d)",
						maxDegree, w, k, src[k], dst[k], refSrc[k], refDst[k])
				}
			}
		}
	}
}
