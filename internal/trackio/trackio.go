// Package trackio serializes generated datasets so the cmd tools can
// share events between generation, training, and benchmarking runs.
// The format is Go's gob encoding of a versioned envelope.
package trackio

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/detector"
	"repro/internal/tensor"
)

// formatVersion guards against reading incompatible files.
const formatVersion = 1

// envelope is the on-disk representation. Dense matrices are flattened
// because tensor.Dense has unexported fields.
type envelope struct {
	Version int
	Spec    detector.Spec
	Events  []eventRecord
}

type eventRecord struct {
	Hits               []detector.Hit
	FeatRows, FeatCols int
	FeatData           []float64
	TruthSrc, TruthDst []int
	Particles          int
}

// Save writes the dataset to path, gzip-compressed.
func Save(path string, ds *detector.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trackio: create: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := encode(zw, ds); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trackio: gzip close: %w", err)
	}
	return f.Close()
}

// Load reads a dataset previously written by Save.
func Load(path string) (*detector.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trackio: open: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("trackio: gzip: %w", err)
	}
	defer zr.Close()
	return decode(zr)
}

func encode(w io.Writer, ds *detector.Dataset) error {
	env := envelope{Version: formatVersion, Spec: ds.Spec}
	for _, ev := range ds.Events {
		env.Events = append(env.Events, eventRecord{
			Hits:      ev.Hits,
			FeatRows:  ev.Features.Rows(),
			FeatCols:  ev.Features.Cols(),
			FeatData:  ev.Features.Data(),
			TruthSrc:  ev.TruthSrc,
			TruthDst:  ev.TruthDst,
			Particles: ev.Particles,
		})
	}
	if err := gob.NewEncoder(w).Encode(&env); err != nil {
		return fmt.Errorf("trackio: encode: %w", err)
	}
	return nil
}

func decode(r io.Reader) (*detector.Dataset, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("trackio: decode: %w", err)
	}
	if env.Version != formatVersion {
		return nil, fmt.Errorf("trackio: format version %d, want %d", env.Version, formatVersion)
	}
	ds := &detector.Dataset{Spec: env.Spec}
	for _, rec := range env.Events {
		ds.Events = append(ds.Events, &detector.Event{
			Hits:      rec.Hits,
			Features:  tensor.FromSlice(rec.FeatRows, rec.FeatCols, rec.FeatData),
			TruthSrc:  rec.TruthSrc,
			TruthDst:  rec.TruthDst,
			Particles: rec.Particles,
		})
	}
	return ds, nil
}
