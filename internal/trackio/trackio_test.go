package trackio

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/detector"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	spec := detector.Ex3Like(0.03)
	spec.NumEvents = 3
	ds := detector.Generate(spec, 42)
	path := filepath.Join(t.TempDir(), "ds.gob.gz")
	if err := Save(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != ds.Spec.Name || len(got.Events) != len(ds.Events) {
		t.Fatalf("spec or event count mismatch: %v events", len(got.Events))
	}
	for i := range ds.Events {
		a, b := ds.Events[i], got.Events[i]
		if a.NumHits() != b.NumHits() {
			t.Fatalf("event %d hits differ", i)
		}
		if a.Features.MaxAbsDiff(b.Features) != 0 {
			t.Fatalf("event %d features differ", i)
		}
		if len(a.TruthSrc) != len(b.TruthSrc) {
			t.Fatalf("event %d truth edges differ", i)
		}
		for k := range a.TruthSrc {
			if a.TruthSrc[k] != b.TruthSrc[k] || a.TruthDst[k] != b.TruthDst[k] {
				t.Fatalf("event %d truth edge %d differs", i, k)
			}
		}
		if a.Particles != b.Particles {
			t.Fatalf("event %d particle count differs", i)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.gob.gz")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("not a gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected error for garbage file")
	}
}
