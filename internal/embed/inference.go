package embed

import (
	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Inference is the precision-generic, tape-free forward pass of a
// trained Embedder: weights are converted to T once at construction and
// every per-event kernel then runs in T. The float64 instantiation is
// bitwise identical to EmbedCtx; the float32 instantiation is the
// reduced-precision serving path. Immutable and safe for concurrent
// use.
type Inference[T fp.Float] struct {
	cfg Config
	mlp *nn.MLPInference[T]
}

// NewInference snapshots e's trained weights at precision T.
func NewInference[T fp.Float](e *Embedder) *Inference[T] {
	return &Inference[T]{cfg: e.cfg, mlp: nn.NewMLPInference[T](e.mlp)}
}

// Config returns the embedder configuration.
func (inf *Inference[T]) Config() Config { return inf.cfg }

// EmbedCtx maps hit features (n × InputFeatures, already in T) into the
// embedding space under the given worker budget. The result is
// arena-owned when arena is non-nil.
func (inf *Inference[T]) EmbedCtx(kc kernels.Context, arena *workspace.Arena, features *tensor.Matrix[T]) *tensor.Matrix[T] {
	return inf.mlp.Forward(kc, arena, features)
}
