package embed

import (
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Quantized is the int8 forward pass of a trained Embedder: weights
// quantize per output column at construction, activations at the
// static scales a Calibrator recorded. Immutable and safe for
// concurrent use.
type Quantized struct {
	cfg Config
	mlp *nn.MLPQuant
}

// NewQuantized snapshots e's trained weights at int8 under the given
// calibrated activation scales (one per linear layer of the MLP).
func NewQuantized(e *Embedder, scales []float32) (*Quantized, error) {
	mlp, err := nn.NewMLPQuant(e.mlp, scales)
	if err != nil {
		return nil, err
	}
	return &Quantized{cfg: e.cfg, mlp: mlp}, nil
}

// Config returns the embedder configuration.
func (q *Quantized) Config() Config { return q.cfg }

// ActScales returns the calibrated activation scales (a copy).
func (q *Quantized) ActScales() []float32 { return q.mlp.ActScales() }

// EmbedCtx maps hit features (n × InputFeatures, float32) into the
// embedding space through the quantized MLP. The float32 result is
// arena-owned when arena is non-nil.
func (q *Quantized) EmbedCtx(kc kernels.Context, arena *workspace.Arena, features *tensor.Matrix[float32]) *tensor.Matrix[float32] {
	return q.mlp.Forward(kc, arena, features)
}

// Calibrator records the activation ranges the embedder's quantized
// path needs: feed it the same feature matrices inference will see,
// then Quantize (or export Scales into a v4 checkpoint).
type Calibrator struct {
	emb *Embedder
	cal *nn.MLPCalibrator
}

// NewCalibrator builds a calibrator over e's current weights.
func NewCalibrator(e *Embedder) *Calibrator {
	return &Calibrator{emb: e, cal: nn.NewMLPCalibrator(e.mlp)}
}

// Observe runs the float32 forward on one event's features, recording
// activation ranges, and returns the embedding so downstream stages can
// calibrate on the same pass.
func (c *Calibrator) Observe(kc kernels.Context, arena *workspace.Arena, features *tensor.Matrix[float32]) *tensor.Matrix[float32] {
	return c.cal.Observe(kc, arena, features)
}

// Scales returns the calibrated per-layer activation scales.
func (c *Calibrator) Scales() []float32 { return c.cal.Scales() }

// Quantize finalizes the calibration into a Quantized embedder.
func (c *Calibrator) Quantize() (*Quantized, error) {
	return NewQuantized(c.emb, c.Scales())
}
