package embed

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/nn"
	"repro/internal/rng"
)

func testEvents(t *testing.T, n int) (detector.Spec, []*detector.Event) {
	t.Helper()
	spec := detector.Ex3Like(0.04)
	spec.NumEvents = n
	ds := detector.Generate(spec, 77)
	return spec, ds.Events
}

func TestEmbedShapes(t *testing.T) {
	spec, evs := testEvents(t, 1)
	cfg := DefaultConfig(spec)
	e := New(cfg, rng.New(1))
	out := e.Embed(evs[0].Features)
	if out.Rows() != evs[0].NumHits() || out.Cols() != cfg.EmbedDim {
		t.Fatalf("embedding %dx%d", out.Rows(), out.Cols())
	}
}

// pairDistances measures mean squared distance of positive (truth-edge)
// and random negative pairs in embedding space.
func pairDistances(e *Embedder, ev *detector.Event, r *rng.Rand) (pos, neg float64) {
	emb := e.Embed(ev.Features)
	nPos := 0
	for k := range ev.TruthSrc {
		pos += sqDist(emb.Row(ev.TruthSrc[k]), emb.Row(ev.TruthDst[k]))
		nPos++
	}
	pos /= float64(nPos)
	nNeg := 0
	for nNeg < nPos {
		a, b := r.Intn(ev.NumHits()), r.Intn(ev.NumHits())
		if a == b || ev.IsTruthEdge(a, b) {
			continue
		}
		neg += sqDist(emb.Row(a), emb.Row(b))
		nNeg++
	}
	neg /= float64(nNeg)
	return pos, neg
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestTrainingSeparatesPairs(t *testing.T) {
	spec, evs := testEvents(t, 3)
	cfg := DefaultConfig(spec)
	cfg.Epochs = 15
	e := New(cfg, rng.New(2))
	e.Train(evs, 3)
	r := rng.New(4)
	pos, neg := pairDistances(e, evs[0], r)
	// After metric learning, same-track pairs must sit much closer than
	// random pairs.
	if pos*2 >= neg {
		t.Fatalf("metric learning failed: pos dist² %v vs neg %v", pos, neg)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	spec, evs := testEvents(t, 2)
	cfg := DefaultConfig(spec)
	cfg.Epochs = 1
	e := New(cfg, rng.New(5))
	first := e.Train(evs, 6)
	cfg.Epochs = 10
	e2 := New(cfg, rng.New(5))
	last := e2.Train(evs, 6)
	if last >= first {
		t.Fatalf("loss did not decrease: first-epoch %v vs 10-epoch %v", first, last)
	}
}

func TestTrainStepHandlesTinyEvent(t *testing.T) {
	spec, _ := testEvents(t, 1)
	cfg := DefaultConfig(spec)
	e := New(cfg, rng.New(7))
	// An event with a single particle (few or no truth edges) must not
	// panic; TrainStep may return 0 loss.
	sp := spec
	sp.AvgParticles = 0.0001
	single := detector.GenerateEvent(sp, rng.New(8))
	_ = e.TrainStep(single, nn.NewSGD(0), rng.New(9))
}
