package embed

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func TestInferenceF64MatchesTapeEmbed(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	cfg := DefaultConfig(spec)
	e := New(cfg, rng.New(3))
	feat := tensor.RandN(rng.New(4), 40, cfg.InputFeatures, 1)

	want := e.Embed(feat)
	got := NewInference[float64](e).EmbedCtx(kernels.Context{}, nil, feat)
	if want.MaxAbsDiff(got) != 0 {
		t.Fatalf("f64 inference embedding differs by %v", want.MaxAbsDiff(got))
	}
}

func TestInferenceF32WithinTolerance(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	cfg := DefaultConfig(spec)
	e := New(cfg, rng.New(5))
	feat := tensor.RandN(rng.New(6), 40, cfg.InputFeatures, 1)

	want := e.Embed(feat)
	got32 := NewInference[float32](e).EmbedCtx(kernels.Context{}, nil, tensor.ConvertFrom[float32](nil, feat))
	got := tensor.ConvertFrom[float64](nil, got32)
	if d := want.MaxAbsDiff(got); d > 1e-4 {
		t.Fatalf("f32 embedding drifts %v from f64", d)
	}
}
