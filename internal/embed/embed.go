// Package embed implements stage 1 of the Exa.TrkX pipeline: a metric-
// learning MLP that maps per-hit features into an embedding space where
// hits belonging to the same particle track land close together. Stage 2
// then builds a fixed-radius nearest-neighbor graph in that space.
package embed

import (
	"context"

	"repro/internal/autograd"
	"repro/internal/detector"
	"repro/internal/kernels"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Config controls the embedding model and its training.
type Config struct {
	InputFeatures int     // per-hit feature width
	Hidden        int     // hidden width of the MLP
	HiddenLayers  int     // hidden layer count (Table I "MLP Layers")
	EmbedDim      int     // output embedding dimension
	Margin        float64 // hinge margin for negative pairs
	LR            float64
	Epochs        int
	NegativeRatio float64 // negative pairs sampled per positive pair
}

// DefaultConfig returns a laptop-scale configuration for the given spec.
func DefaultConfig(spec detector.Spec) Config {
	return Config{
		InputFeatures: spec.VertexFeatures,
		Hidden:        32,
		HiddenLayers:  spec.MLPLayers,
		EmbedDim:      4,
		Margin:        1.0,
		LR:            1e-3,
		Epochs:        30,
		NegativeRatio: 2.0,
	}
}

// Embedder is the trained stage-1 model.
type Embedder struct {
	cfg Config
	mlp *nn.MLP
}

// New creates an untrained embedder.
func New(cfg Config, r *rng.Rand) *Embedder {
	hidden := make([]int, cfg.HiddenLayers)
	for i := range hidden {
		hidden[i] = cfg.Hidden
	}
	return &Embedder{
		cfg: cfg,
		mlp: nn.NewMLP(r, "embed", nn.MLPConfig{
			In:         cfg.InputFeatures,
			Hidden:     hidden,
			Out:        cfg.EmbedDim,
			Activation: nn.ReLU,
		}),
	}
}

// Params exposes the trainable parameters.
func (e *Embedder) Params() []*autograd.Param { return e.mlp.Params() }

// Embed maps an event's hit features into the embedding space.
func (e *Embedder) Embed(features *tensor.Dense) *tensor.Dense {
	return e.EmbedWith(nil, features)
}

// EmbedWith is Embed with the forward pass allocating from the arena's
// workspace pools. The returned matrix is arena-owned: it is valid only
// until the caller resets the arena. A nil arena falls back to the heap.
func (e *Embedder) EmbedWith(arena *workspace.Arena, features *tensor.Dense) *tensor.Dense {
	return e.EmbedCtx(kernels.Context{}, arena, features)
}

// EmbedCtx is EmbedWith under an explicit intra-op worker budget for
// the forward kernels; the embedding is bitwise identical at every
// budget.
func (e *Embedder) EmbedCtx(kc kernels.Context, arena *workspace.Arena, features *tensor.Dense) *tensor.Dense {
	t := autograd.NewTapeArena(arena)
	t.SetKernels(kc)
	return e.mlp.Forward(t, t.Constant(features)).Value
}

// pairBatch holds a training batch of hit index pairs with labels.
type pairBatch struct {
	a, b   []int
	labels []float64
}

// buildPairs assembles positive pairs from truth edges and random
// negatives at the configured ratio.
func buildPairs(ev *detector.Event, ratio float64, r *rng.Rand) pairBatch {
	var pb pairBatch
	for k := range ev.TruthSrc {
		pb.a = append(pb.a, ev.TruthSrc[k])
		pb.b = append(pb.b, ev.TruthDst[k])
		pb.labels = append(pb.labels, 1)
	}
	n := ev.NumHits()
	nNeg := int(float64(len(ev.TruthSrc)) * ratio)
	for i := 0; i < nNeg; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || ev.IsTruthEdge(a, b) {
			continue
		}
		pb.a = append(pb.a, a)
		pb.b = append(pb.b, b)
		pb.labels = append(pb.labels, 0)
	}
	return pb
}

// TrainStep runs one optimization step on one event and returns the loss.
func (e *Embedder) TrainStep(ev *detector.Event, opt nn.Optimizer, r *rng.Rand) float64 {
	return e.TrainStepWith(nil, ev, opt, r)
}

// TrainStepWith is TrainStep with forward/backward activations borrowed
// from the given arena (checkpointed around the step, so the caller's
// other allocations survive). A nil arena uses a private one.
func (e *Embedder) TrainStepWith(arena *workspace.Arena, ev *detector.Event, opt nn.Optimizer, r *rng.Rand) float64 {
	pb := buildPairs(ev, e.cfg.NegativeRatio, r)
	if len(pb.a) == 0 {
		return 0
	}
	if arena == nil {
		arena = workspace.NewArena()
		defer arena.Reset()
	} else {
		mark := arena.Checkpoint()
		defer arena.ResetTo(mark)
	}
	t := autograd.NewTapeArena(arena)
	emb := e.mlp.Forward(t, t.Constant(ev.Features))
	ea := t.GatherRows(emb, pb.a)
	eb := t.GatherRows(emb, pb.b)
	diff := t.Sub(ea, eb)
	d2 := t.RowSums(t.Mul(diff, diff))
	loss := t.HingePairLoss(d2, pb.labels, e.cfg.Margin)
	t.Backward(loss)
	opt.Step(e.mlp.Params())
	return loss.Value.At(0, 0)
}

// Train fits the embedder on the training events for cfg.Epochs passes.
// It returns the mean loss of the final epoch.
func (e *Embedder) Train(events []*detector.Event, seed uint64) float64 {
	loss, _ := e.TrainContext(context.Background(), events, seed)
	return loss
}

// TrainContext is Train with cooperative cancellation between epochs
// and one arena threaded through every step, so epoch loops recycle
// warm activation buffers. Returns the last completed epoch's mean loss
// alongside ctx.Err() when cancelled.
func (e *Embedder) TrainContext(ctx context.Context, events []*detector.Event, seed uint64) (float64, error) {
	r := rng.New(seed)
	opt := nn.NewAdam(e.cfg.LR)
	arena := workspace.NewArena()
	defer arena.Reset()
	last := 0.0
	for epoch := 0; epoch < e.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		sum := 0.0
		for _, ev := range events {
			sum += e.TrainStepWith(arena, ev, opt, r)
		}
		if len(events) > 0 {
			last = sum / float64(len(events))
		}
	}
	return last, nil
}
