package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must not simply mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlates with parent: %d collisions", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	check := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw % 110)
		s := New(seed).SampleWithoutReplacement(n, k)
		wantLen := k
		if k >= n {
			wantLen = n
		}
		if k <= 0 {
			wantLen = 0
		}
		if len(s) != wantLen {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementCoverage(t *testing.T) {
	// Every element of [0, n) should be reachable.
	r := New(31)
	const n, k, trials = 10, 3, 3000
	hit := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(n, k) {
			hit[v]++
		}
	}
	for i, h := range hit {
		if h == 0 {
			t.Fatalf("element %d never sampled in %d trials", i, trials)
		}
	}
}

func TestExpPositiveMean(t *testing.T) {
	r := New(101)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean %v too far from 1", mean)
	}
}
