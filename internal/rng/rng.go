// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the reproduction so that every experiment is
// exactly repeatable from a single seed.
//
// The generator is xoshiro256**, seeded via SplitMix64. Split derives an
// independent stream from a parent stream, which lets concurrent workers
// (e.g. simulated GPU ranks) draw random numbers without locking while
// remaining reproducible regardless of scheduling order.
package rng

import "math"

// Rand is a xoshiro256** generator. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
	// cached spare normal deviate for NormFloat64 (Box-Muller polar method)
	hasSpare bool
	spare    float64
}

// splitMix64 advances the state and returns the next SplitMix64 output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// Avoid the pathological all-zero state (cannot occur from SplitMix64
	// in practice, but guard anyway).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's
// subsequent outputs. It consumes entropy from r.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := (-uint64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	tLo, tHi := t&mask32, t>>32
	t = aLo*bHi + tLo
	lo |= t << 32
	hi = aHi*bHi + tHi + t>>32
	return hi, lo
}

// NormFloat64 returns a standard normal deviate using the polar
// Box-Muller method.
func (r *Rand) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher-Yates).
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// SampleWithoutReplacement returns k distinct values drawn uniformly from
// [0, n). If k >= n it returns all of [0, n) in random order. The result
// order is random.
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	if k <= 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Shuffle so the order carries no bias toward later indices.
	r.Shuffle(out)
	return out
}

// Exp returns an exponentially distributed deviate with rate 1.
func (r *Rand) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
