package sparse

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Blocked-CSR coverage: the column-banded layout must reproduce the
// flat kernels bit for bit at every band width and worker count,
// round-trip losslessly, and hold its zero-allocation contract on warm
// pools. Edge shapes — empty rows, single-column bands, rows whose
// nonzeros straddle band boundaries, bands wider than the matrix — are
// all exercised.

var blockedBands = []int{1, 3, 16, 64, 1000}

// gappyCSR builds a random CSR with deliberately empty rows (every
// third row holds no entries) so the klo==khi skip path runs.
func gappyCSR(r *rng.Rand, rows, cols int, density float64) *CSR {
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		if i%3 == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coo.Add(i, j, r.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestConvertBlockedRoundTrip(t *testing.T) {
	r := rng.New(31)
	for _, src := range []*CSR{
		gappyCSR(r, 23, 17, 0.3),
		randomCSR(r, 1, 1, 1),
		randomCSR(r, 40, 5, 0.6),
		NewCSR(7, 11), // fully empty
	} {
		for _, band := range blockedBands {
			bl := ConvertBlocked(new(BlockedCSROf[float64]), src, band)
			back := bl.ToCSR(new(CSR))
			if !src.Equal(back) {
				t.Fatalf("ConvertBlocked(band=%d) round trip differs for %dx%d", band, src.RowsN, src.ColsN)
			}
		}
	}
}

func TestBlockedSpMMMatchesFlatBitwise(t *testing.T) {
	r := rng.New(32)
	a := gappyCSR(r, 67, 53, 0.25)
	x := tensor.RandN(r, 53, 9, 1)
	ref := SpMMIntoCtx(kernels.Context{Workers: 1}, tensor.New(67, 9), a, x)
	for _, band := range blockedBands {
		bl := ConvertBlocked(new(BlockedCSROf[float64]), a, band)
		for _, w := range parityWorkers {
			got := BlockedSpMMIntoCtx(kernels.Context{Workers: w}, tensor.New(67, 9), bl, x)
			denseBitsEqual(t, "BlockedSpMM", ref, got)
		}
	}
}

func TestBlockedSpMMMatchesFlatBitwiseF32(t *testing.T) {
	r := rng.New(33)
	a64 := gappyCSR(r, 45, 31, 0.3)
	a := &CSROf[float32]{RowsN: a64.RowsN, ColsN: a64.ColsN, RowPtr: a64.RowPtr, ColIdx: a64.ColIdx}
	for _, v := range a64.Vals {
		a.Vals = append(a.Vals, float32(v))
	}
	x := tensor.ConvertFrom[float32](nil, tensor.RandN(r, 31, 7, 1))
	ref := SpMMIntoCtx(kernels.Context{Workers: 1}, tensor.NewOf[float32](45, 7), a, x)
	for _, band := range blockedBands {
		bl := ConvertBlocked(new(BlockedCSROf[float32]), a, band)
		for _, w := range parityWorkers {
			got := BlockedSpMMIntoCtx(kernels.Context{Workers: w}, tensor.NewOf[float32](45, 7), bl, x)
			rd, gd := ref.Data(), got.Data()
			for i := range rd {
				if rd[i] != gd[i] {
					t.Fatalf("BlockedSpMM f32 band=%d workers=%d: element %d differs", band, w, i)
				}
			}
		}
	}
}

func TestBlockedIncidenceMatchesFlat(t *testing.T) {
	r := rng.New(34)
	idx := make([]int, 57)
	for i := range idx {
		idx[i] = r.Intn(19)
	}
	flat := IncidenceInto(NewCSR(0, 0), 19, idx)
	for _, band := range []int{1, 4, 10, 57, 100} {
		direct := BlockedIncidenceInto(new(BlockedCSROf[float64]), 19, idx, band)
		viaConvert := ConvertBlocked(new(BlockedCSROf[float64]), flat, direct.Band)
		if direct.Band != viaConvert.Band || direct.Bands() != viaConvert.Bands() {
			t.Fatalf("band=%d: banding mismatch", band)
		}
		for i := range viaConvert.RowPtr {
			if direct.RowPtr[i] != viaConvert.RowPtr[i] {
				t.Fatalf("band=%d: RowPtr[%d] %d vs %d", band, i, direct.RowPtr[i], viaConvert.RowPtr[i])
			}
		}
		for i := range viaConvert.ColIdx {
			if direct.ColIdx[i] != viaConvert.ColIdx[i] {
				t.Fatalf("band=%d: ColIdx[%d] %d vs %d", band, i, direct.ColIdx[i], viaConvert.ColIdx[i])
			}
		}
		if !direct.ToCSR(new(CSR)).Equal(flat) {
			t.Fatalf("band=%d: blocked incidence does not flatten to IncidenceInto", band)
		}
	}
}

// TestBlockedSpMMAggregationParity is the end-to-end check the serving
// path relies on: blocked incidence × dense == flat incidence × dense,
// bitwise, at every worker count — empty output rows included (rows no
// edge points at stay exactly zero).
func TestBlockedSpMMAggregationParity(t *testing.T) {
	r := rng.New(35)
	const edges, nodes, width = 83, 29, 6
	idx := make([]int, edges)
	for i := range idx {
		idx[i] = r.Intn(nodes - 5) // rows nodes-5..nodes-1 stay empty
	}
	x := tensor.RandN(r, edges, width, 1)
	flat := IncidenceInto(NewCSR(0, 0), nodes, idx)
	ref := SpMMIntoCtx(kernels.Context{Workers: 1}, tensor.New(nodes, width), flat, x)
	for _, band := range []int{1, 7, 32, edges} {
		bl := BlockedIncidenceInto(new(BlockedCSROf[float64]), nodes, idx, band)
		for _, w := range parityWorkers {
			got := BlockedSpMMIntoCtx(kernels.Context{Workers: w}, tensor.New(nodes, width), bl, x)
			denseBitsEqual(t, "blocked aggregation", ref, got)
		}
	}
}

func TestQBlockedMatchesFlatBitwise(t *testing.T) {
	r := rng.New(36)
	const edges, nodes, width = 64, 20, 5
	idx := make([]int, edges)
	for i := range idx {
		idx[i] = r.Intn(nodes - 3)
	}
	x := quantDense(edges, width, 9, 0.02)
	flat := QIncidenceInto(&QCSR{}, nodes, idx)
	refF := QSpMMInto(kernels.Context{Workers: 1}, tensor.NewOf[float32](nodes, width), flat, x)
	refQ := QSpMMQuantInto(kernels.Context{Workers: 1}, tensor.NewQMat(nodes, width, 0), flat, x, 0.03)
	for _, band := range []int{1, 5, 17, edges, 500} {
		bl := QBlockedIncidenceInto(&QBlockedCSR{}, nodes, idx, band)
		if bl.Vals != nil || bl.Scale != 1 {
			t.Fatal("blocked incidence form must be implicit-ones")
		}
		for _, w := range parityWorkers {
			gotF := QBlockedSpMMInto(kernels.Context{Workers: w}, tensor.NewOf[float32](nodes, width), bl, x)
			fd, gd := refF.Data(), gotF.Data()
			for i := range fd {
				if fd[i] != gd[i] {
					t.Fatalf("QBlockedSpMM band=%d workers=%d: element %d differs", band, w, i)
				}
			}
			gotQ := QBlockedSpMMQuantInto(kernels.Context{Workers: w}, tensor.NewQMat(nodes, width, 0), bl, x, 0.03)
			if gotQ.Scale != refQ.Scale {
				t.Fatal("scale mismatch")
			}
			qd, rd := gotQ.Data(), refQ.Data()
			for i := range rd {
				if rd[i] != qd[i] {
					t.Fatalf("QBlockedSpMMQuant band=%d workers=%d: element %d differs", band, w, i)
				}
			}
		}
	}
}

// TestBlockedZeroAllocsWarm pins the pooled-storage contract: building
// and multiplying through reused blocked structures allocates nothing
// once pools are warm.
func TestBlockedZeroAllocsWarm(t *testing.T) {
	r := rng.New(37)
	const edges, nodes, width = 48, 16, 4
	idx := make([]int, edges)
	for i := range idx {
		idx[i] = r.Intn(nodes)
	}
	x := benchDense(edges, width, 5)
	qx := quantDense(edges, width, 6, 0.02)
	kc := kernels.Context{Workers: 1}
	bl := new(BlockedCSROf[float64])
	qbl := new(QBlockedCSR)
	out := tensor.New(nodes, width)
	qoutF := tensor.NewOf[float32](nodes, width)
	qoutQ := tensor.NewQMat(nodes, width, 0)
	flat := IncidenceInto(NewCSR(0, 0), nodes, idx)
	conv := new(BlockedCSROf[float64])
	warm := func() {
		BlockedIncidenceInto(bl, nodes, idx, 16)
		BlockedSpMMIntoCtx(kc, out, bl, x)
		ConvertBlocked(conv, flat, 16)
		QBlockedIncidenceInto(qbl, nodes, idx, 16)
		QBlockedSpMMInto(kc, qoutF, qbl, qx)
		QBlockedSpMMQuantInto(kc, qoutQ, qbl, qx, 0.03)
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("warm blocked kernels allocated %.1f per run, want 0", allocs)
	}
}
