package sparse

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/tensor"
)

// Float32 sparse-kernel coverage: worker-count determinism, f64 parity
// within float32 rounding tolerance, and zero-allocation on warm pools.

// fixture32 converts the shared f64 fixtures (same RNG streams) to f32.
func fixture32(n, nnzPerRow int, seed uint64) *CSR32 {
	return ConvertCSR[float32](benchCSR(n, nnzPerRow, seed))
}

func dense32Of(d *tensor.Dense, _ uint64) *tensor.Dense32 {
	return tensor.ConvertFrom[float32](nil, d)
}

func bits32Equal(t *testing.T, name string, want, got *tensor.Dense32) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: shape mismatch", name)
	}
	w, g := want.Data(), got.Data()
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, w[i], g[i])
		}
	}
}

func TestSpGEMM32WorkerCountParity(t *testing.T) {
	a := fixture32(300, 6, 1)
	b := fixture32(300, 6, 2)
	ref := SpGEMMIntoCtx(kernels.Context{Workers: 1}, new(CSR32), a, b)
	for _, w := range []int{2, 4, 7} {
		got := SpGEMMIntoCtx(kernels.Context{Workers: w}, new(CSR32), a, b)
		if !ref.Equal(got) {
			t.Fatalf("f32 SpGEMM differs at %d workers", w)
		}
	}
}

func TestSpMM32WorkerCountParity(t *testing.T) {
	a := fixture32(300, 6, 1)
	x := dense32Of(benchDense(300, 16, 3), 3)
	res := dense32Of(benchDense(300, 16, 4), 4)
	ref := tensor.NewOf[float32](300, 16)
	SpMMIntoCtx(kernels.Context{Workers: 1}, ref, a, x)
	refAdd := tensor.NewOf[float32](300, 16)
	SpMMAddIntoCtx(kernels.Context{Workers: 1}, refAdd, a, x, res)
	for _, w := range []int{2, 4, 7} {
		got := tensor.NewOf[float32](300, 16)
		SpMMIntoCtx(kernels.Context{Workers: w}, got, a, x)
		bits32Equal(t, "SpMM f32", ref, got)
		gotAdd := tensor.NewOf[float32](300, 16)
		SpMMAddIntoCtx(kernels.Context{Workers: w}, gotAdd, a, x, res)
		bits32Equal(t, "SpMMAdd f32", refAdd, gotAdd)
	}
}

// TestSpMM32MatchesF64WithinTolerance bounds f32 accumulation drift
// against the f64 kernel on f32-representable inputs.
func TestSpMM32MatchesF64WithinTolerance(t *testing.T) {
	a64 := benchCSR(300, 6, 1)
	x64 := benchDense(300, 16, 3)
	a32 := ConvertCSR[float32](a64)
	x32 := tensor.ConvertFrom[float32](nil, x64)
	// Round the f64 operands so both precisions start from the same values.
	a64 = ConvertCSR[float64](a32)
	tensor.Convert(x64, x32)

	want := SpMM(a64, x64)
	got := tensor.ConvertFrom[float64](nil, SpMM(a32, x32))
	if d := want.MaxAbsDiff(got); d > 1e-3 {
		t.Fatalf("f32 SpMM drifts %v from f64", d)
	}
}

func TestSparse32ZeroAllocsWarm(t *testing.T) {
	a := fixture32(64, 4, 1)
	b := fixture32(64, 4, 2)
	x := dense32Of(benchDense(64, 8, 3), 3)
	res := dense32Of(benchDense(64, 8, 4), 4)
	out := tensor.NewOf[float32](64, 8)
	prod := new(CSR32)
	SpGEMMInto(prod, a, b) // warm the pooled storage
	allocs := testing.AllocsPerRun(100, func() {
		SpGEMMInto(prod, a, b)
		SpMMInto(out, a, x)
		SpMMAddInto(out, a, x, res)
	})
	if allocs != 0 {
		t.Fatalf("warm f32 sparse kernels allocated %.1f per run, want 0", allocs)
	}
}

func TestConvertCSRRoundTrip(t *testing.T) {
	m := benchCSR(50, 5, 7)
	down := ConvertCSR[float32](m)
	down.checkValid()
	up := ConvertCSR[float64](down)
	if up.RowsN != m.RowsN || up.ColsN != m.ColsN || up.Nnz() != m.Nnz() {
		t.Fatal("ConvertCSR changed structure")
	}
	for i, v := range m.Vals {
		if up.Vals[i] != float64(float32(v)) {
			t.Fatalf("value %d: %v round-tripped to %v", i, v, up.Vals[i])
		}
	}
}
