// Package sparse implements the sparse matrix kernels that matrix-based
// bulk sampling (Figure 2 of the paper) is built from: COO/CSR storage,
// SpGEMM and SpMM products, row/column selection matrices, per-row
// nonzero sampling, and vertical stacking of selection matrices across
// minibatches.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/workspace"
)

// CSR is a compressed-sparse-row matrix. RowPtr has length rows+1;
// ColIdx/Vals have length Nnz(). Within each row, column indices are
// strictly increasing.
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int
	ColIdx       []int
	Vals         []float64
}

// NewCSR returns an empty rows×cols CSR matrix.
func NewCSR(rows, cols int) *CSR {
	return &CSR{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
}

// Rows returns the row count.
func (m *CSR) Rows() int { return m.RowsN }

// Cols returns the column count.
func (m *CSR) Cols() int { return m.ColsN }

// Nnz returns the number of stored nonzeros.
func (m *CSR) Nnz() int { return len(m.ColIdx) }

// RowNnz returns the number of nonzeros in row i.
func (m *CSR) RowNnz(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns the column indices and values of row i (views, not copies).
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// At returns element (i, j) using binary search within the row.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	return &CSR{
		RowsN:  m.RowsN,
		ColsN:  m.ColsN,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   append([]float64(nil), m.Vals...),
	}
}

// Transpose returns mᵀ in CSR form.
func (m *CSR) Transpose() *CSR {
	out := &CSR{
		RowsN:  m.ColsN,
		ColsN:  m.RowsN,
		RowPtr: make([]int, m.ColsN+1),
		ColIdx: make([]int, m.Nnz()),
		Vals:   make([]float64, m.Nnz()),
	}
	// Count entries per output row (input column).
	for _, c := range m.ColIdx {
		out.RowPtr[c+1]++
	}
	for i := 0; i < m.ColsN; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := append([]int(nil), out.RowPtr[:m.ColsN]...)
	for i := 0; i < m.RowsN; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			pos := next[c]
			out.ColIdx[pos] = i
			out.Vals[pos] = vals[k]
			next[c]++
		}
	}
	return out
}

// VStack stacks matrices vertically; all must share the column count.
// This is how per-minibatch Q (and F) matrices are combined for bulk
// sampling (equation 1 of the paper).
func VStack(ms ...*CSR) *CSR {
	if len(ms) == 0 {
		return NewCSR(0, 0)
	}
	cols := ms[0].ColsN
	rows, nnz := 0, 0
	for _, m := range ms {
		if m.ColsN != cols {
			panic(fmt.Sprintf("sparse: VStack col mismatch %d vs %d", m.ColsN, cols))
		}
		rows += m.RowsN
		nnz += m.Nnz()
	}
	out := &CSR{
		RowsN:  rows,
		ColsN:  cols,
		RowPtr: make([]int, 0, rows+1),
		ColIdx: make([]int, 0, nnz),
		Vals:   make([]float64, 0, nnz),
	}
	out.RowPtr = append(out.RowPtr, 0)
	offset := 0
	for _, m := range ms {
		for i := 1; i <= m.RowsN; i++ {
			out.RowPtr = append(out.RowPtr, offset+m.RowPtr[i])
		}
		out.ColIdx = append(out.ColIdx, m.ColIdx...)
		out.Vals = append(out.Vals, m.Vals...)
		offset += m.Nnz()
	}
	return out
}

// IncidenceInto builds into out the rows×len(idx) incidence matrix S
// with S[idx[e], e] = 1 — row v of S selects exactly the positions e
// whose idx[e] == v, so S×X computes the scatter-add aggregation
// out[v] = Σ_{e: idx[e]=v} X[e] as a row-parallel SpMM instead of a
// serial scatter. Column indices within each row are ascending e, which
// is precisely the order tensor.ScatterAddRows accumulates in, so the
// two aggregations are bitwise interchangeable.
//
// out's existing storage is reused when large enough (callers may
// pre-size it from an arena) and grown through the workspace pools
// otherwise; a one-row cursor scratch is borrowed from the pools for
// the counting sort. Returns out.
func IncidenceInto(out *CSR, rows int, idx []int) *CSR {
	m := len(idx)
	out.RowsN, out.ColsN = rows, m
	out.RowPtr = workspace.GrowInt(out.RowPtr, rows+1)
	out.ColIdx = workspace.GrowInt(out.ColIdx, m)
	out.Vals = workspace.GrowF64(out.Vals, m)
	for i := range out.RowPtr {
		out.RowPtr[i] = 0
	}
	for _, v := range idx {
		out.RowPtr[v+1]++
	}
	for i := 0; i < rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	cursor := workspace.GetInt(rows)
	copy(cursor, out.RowPtr[:rows])
	for e, v := range idx {
		out.ColIdx[cursor[v]] = e
		cursor[v]++
	}
	workspace.PutInt(cursor)
	for i := range out.Vals {
		out.Vals[i] = 1
	}
	return out
}

// BlockDiag assembles matrices along the diagonal: the result has
// sum(rows)×sum(cols) shape with each input occupying its own block.
// ShaDow's sampled adjacency "with b disjoint components" is exactly this.
func BlockDiag(ms ...*CSR) *CSR {
	rows, cols, nnz := 0, 0, 0
	for _, m := range ms {
		rows += m.RowsN
		cols += m.ColsN
		nnz += m.Nnz()
	}
	out := &CSR{
		RowsN:  rows,
		ColsN:  cols,
		RowPtr: make([]int, 0, rows+1),
		ColIdx: make([]int, 0, nnz),
		Vals:   make([]float64, 0, nnz),
	}
	out.RowPtr = append(out.RowPtr, 0)
	colOff, nnzOff := 0, 0
	for _, m := range ms {
		for i := 1; i <= m.RowsN; i++ {
			out.RowPtr = append(out.RowPtr, nnzOff+m.RowPtr[i])
		}
		for _, c := range m.ColIdx {
			out.ColIdx = append(out.ColIdx, c+colOff)
		}
		out.Vals = append(out.Vals, m.Vals...)
		colOff += m.ColsN
		nnzOff += m.Nnz()
	}
	return out
}

// Release returns the matrix's storage to the workspace pools and leaves
// m empty. Only call it on matrices whose storage the caller exclusively
// owns (e.g. scratch CSRs filled by SpGEMMInto/GatherRowsInto); rows
// returned by Row alias that storage and must no longer be in use.
func (m *CSR) Release() {
	workspace.PutInt(m.RowPtr)
	workspace.PutInt(m.ColIdx)
	workspace.PutF64(m.Vals)
	m.RowPtr, m.ColIdx, m.Vals = nil, nil, nil
	m.RowsN, m.ColsN = 0, 0
}

// Equal reports exact structural and numeric equality.
func (m *CSR) Equal(o *CSR) bool {
	if m.RowsN != o.RowsN || m.ColsN != o.ColsN || m.Nnz() != o.Nnz() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != o.ColIdx[i] || m.Vals[i] != o.Vals[i] {
			return false
		}
	}
	return true
}

// checkValid panics if the CSR invariants are violated (used in tests).
func (m *CSR) checkValid() {
	if len(m.RowPtr) != m.RowsN+1 {
		panic("sparse: RowPtr length")
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.RowsN] != len(m.ColIdx) {
		panic("sparse: RowPtr endpoints")
	}
	for i := 0; i < m.RowsN; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			panic("sparse: RowPtr not monotone")
		}
		cols, _ := m.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				panic("sparse: row columns not strictly increasing")
			}
		}
		for _, c := range cols {
			if c < 0 || c >= m.ColsN {
				panic("sparse: column out of range")
			}
		}
	}
}

// parallelRowGrain is the minimum rows per chunk in parallel kernels.
const parallelRowGrain = 64

// assembleRows builds a CSR from per-row (cols, vals) slices.
func assembleRows(rows, cols int, rowCols [][]int, rowVals [][]float64) *CSR {
	out := &CSR{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
	nnz := 0
	for i, rc := range rowCols {
		nnz += len(rc)
		out.RowPtr[i+1] = nnz
	}
	out.ColIdx = make([]int, nnz)
	out.Vals = make([]float64, nnz)
	parallel.For(rows, parallelRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.ColIdx[out.RowPtr[i]:out.RowPtr[i+1]], rowCols[i])
			copy(out.Vals[out.RowPtr[i]:out.RowPtr[i+1]], rowVals[i])
		}
	})
	return out
}
