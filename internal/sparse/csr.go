// Package sparse implements the sparse matrix kernels that matrix-based
// bulk sampling (Figure 2 of the paper) is built from: COO/CSR storage,
// SpGEMM and SpMM products, row/column selection matrices, per-row
// nonzero sampling, and vertical stacking of selection matrices across
// minibatches.
//
// Storage and kernels are generic over the value element type
// (CSROf[T] for T in fp.Float); CSR and CSR32 alias the float64 and
// float32 instantiations. The float64 surface — what the samplers and
// the training stack use — is unchanged from the pre-generic package.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/fp"
	"repro/internal/parallel"
	"repro/internal/workspace"
)

// CSROf is a compressed-sparse-row matrix with values of type T.
// RowPtr has length rows+1; ColIdx/Vals have length Nnz(). Within each
// row, column indices are strictly increasing.
type CSROf[T fp.Float] struct {
	RowsN, ColsN int
	RowPtr       []int
	ColIdx       []int
	Vals         []T
}

// CSR is the float64 CSR matrix — the sampler/training type and the
// element type of every historical API in this package.
type CSR = CSROf[float64]

// CSR32 is the float32 CSR matrix used by the reduced-precision
// inference path.
type CSR32 = CSROf[float32]

// NewCSR returns an empty rows×cols float64 CSR matrix.
func NewCSR(rows, cols int) *CSR { return NewCSROf[float64](rows, cols) }

// NewCSROf returns an empty rows×cols CSR matrix of the given element
// type.
func NewCSROf[T fp.Float](rows, cols int) *CSROf[T] {
	return &CSROf[T]{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
}

// Rows returns the row count.
func (m *CSROf[T]) Rows() int { return m.RowsN }

// Cols returns the column count.
func (m *CSROf[T]) Cols() int { return m.ColsN }

// Nnz returns the number of stored nonzeros.
func (m *CSROf[T]) Nnz() int { return len(m.ColIdx) }

// RowNnz returns the number of nonzeros in row i.
func (m *CSROf[T]) RowNnz(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns the column indices and values of row i (views, not copies).
func (m *CSROf[T]) Row(i int) (cols []int, vals []T) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// At returns element (i, j) using binary search within the row.
func (m *CSROf[T]) At(i, j int) T {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Clone returns a deep copy.
func (m *CSROf[T]) Clone() *CSROf[T] {
	return &CSROf[T]{
		RowsN:  m.RowsN,
		ColsN:  m.ColsN,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   append([]T(nil), m.Vals...),
	}
}

// Transpose returns mᵀ in CSR form.
func (m *CSROf[T]) Transpose() *CSROf[T] {
	out := &CSROf[T]{
		RowsN:  m.ColsN,
		ColsN:  m.RowsN,
		RowPtr: make([]int, m.ColsN+1),
		ColIdx: make([]int, m.Nnz()),
		Vals:   make([]T, m.Nnz()),
	}
	// Count entries per output row (input column).
	for _, c := range m.ColIdx {
		out.RowPtr[c+1]++
	}
	for i := 0; i < m.ColsN; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	next := append([]int(nil), out.RowPtr[:m.ColsN]...)
	for i := 0; i < m.RowsN; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			pos := next[c]
			out.ColIdx[pos] = i
			out.Vals[pos] = vals[k]
			next[c]++
		}
	}
	return out
}

// VStack stacks matrices vertically; all must share the column count.
// This is how per-minibatch Q (and F) matrices are combined for bulk
// sampling (equation 1 of the paper).
func VStack[T fp.Float](ms ...*CSROf[T]) *CSROf[T] {
	if len(ms) == 0 {
		return NewCSROf[T](0, 0)
	}
	cols := ms[0].ColsN
	rows, nnz := 0, 0
	for _, m := range ms {
		if m.ColsN != cols {
			panic(fmt.Sprintf("sparse: VStack col mismatch %d vs %d", m.ColsN, cols))
		}
		rows += m.RowsN
		nnz += m.Nnz()
	}
	out := &CSROf[T]{
		RowsN:  rows,
		ColsN:  cols,
		RowPtr: make([]int, 0, rows+1),
		ColIdx: make([]int, 0, nnz),
		Vals:   make([]T, 0, nnz),
	}
	out.RowPtr = append(out.RowPtr, 0)
	offset := 0
	for _, m := range ms {
		for i := 1; i <= m.RowsN; i++ {
			out.RowPtr = append(out.RowPtr, offset+m.RowPtr[i])
		}
		out.ColIdx = append(out.ColIdx, m.ColIdx...)
		out.Vals = append(out.Vals, m.Vals...)
		offset += m.Nnz()
	}
	return out
}

// IncidenceInto builds into out the rows×len(idx) incidence matrix S
// with S[idx[e], e] = 1 — row v of S selects exactly the positions e
// whose idx[e] == v, so S×X computes the scatter-add aggregation
// out[v] = Σ_{e: idx[e]=v} X[e] as a row-parallel SpMM instead of a
// serial scatter. Column indices within each row are ascending e, which
// is precisely the order tensor.ScatterAddRows accumulates in, so the
// two aggregations are bitwise interchangeable.
//
// out's existing storage is reused when large enough (callers may
// pre-size it from an arena) and grown through the workspace pools
// otherwise; a one-row cursor scratch is borrowed from the pools for
// the counting sort. Returns out.
func IncidenceInto[T fp.Float](out *CSROf[T], rows int, idx []int) *CSROf[T] {
	m := len(idx)
	out.RowsN, out.ColsN = rows, m
	out.RowPtr = workspace.GrowInt(out.RowPtr, rows+1)
	out.ColIdx = workspace.GrowInt(out.ColIdx, m)
	out.Vals = workspace.GrowFloat(out.Vals, m)
	for i := range out.RowPtr {
		out.RowPtr[i] = 0
	}
	for _, v := range idx {
		out.RowPtr[v+1]++
	}
	for i := 0; i < rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	cursor := workspace.GetInt(rows)
	copy(cursor, out.RowPtr[:rows])
	for e, v := range idx {
		out.ColIdx[cursor[v]] = e
		cursor[v]++
	}
	workspace.PutInt(cursor)
	for i := range out.Vals {
		out.Vals[i] = 1
	}
	return out
}

// BlockDiag assembles matrices along the diagonal: the result has
// sum(rows)×sum(cols) shape with each input occupying its own block.
// ShaDow's sampled adjacency "with b disjoint components" is exactly this.
func BlockDiag[T fp.Float](ms ...*CSROf[T]) *CSROf[T] {
	rows, cols, nnz := 0, 0, 0
	for _, m := range ms {
		rows += m.RowsN
		cols += m.ColsN
		nnz += m.Nnz()
	}
	out := &CSROf[T]{
		RowsN:  rows,
		ColsN:  cols,
		RowPtr: make([]int, 0, rows+1),
		ColIdx: make([]int, 0, nnz),
		Vals:   make([]T, 0, nnz),
	}
	out.RowPtr = append(out.RowPtr, 0)
	colOff, nnzOff := 0, 0
	for _, m := range ms {
		for i := 1; i <= m.RowsN; i++ {
			out.RowPtr = append(out.RowPtr, nnzOff+m.RowPtr[i])
		}
		for _, c := range m.ColIdx {
			out.ColIdx = append(out.ColIdx, c+colOff)
		}
		out.Vals = append(out.Vals, m.Vals...)
		colOff += m.ColsN
		nnzOff += m.Nnz()
	}
	return out
}

// Release returns the matrix's storage to the workspace pools and leaves
// m empty. Only call it on matrices whose storage the caller exclusively
// owns (e.g. scratch CSRs filled by SpGEMMInto/GatherRowsInto); rows
// returned by Row alias that storage and must no longer be in use.
func (m *CSROf[T]) Release() {
	workspace.PutInt(m.RowPtr)
	workspace.PutInt(m.ColIdx)
	workspace.PutFloat(m.Vals)
	m.RowPtr, m.ColIdx, m.Vals = nil, nil, nil
	m.RowsN, m.ColsN = 0, 0
}

// Equal reports exact structural and numeric equality.
func (m *CSROf[T]) Equal(o *CSROf[T]) bool {
	if m.RowsN != o.RowsN || m.ColsN != o.ColsN || m.Nnz() != o.Nnz() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != o.ColIdx[i] || m.Vals[i] != o.Vals[i] {
			return false
		}
	}
	return true
}

// checkValid panics if the CSR invariants are violated (used in tests).
func (m *CSROf[T]) checkValid() {
	if len(m.RowPtr) != m.RowsN+1 {
		panic("sparse: RowPtr length")
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.RowsN] != len(m.ColIdx) {
		panic("sparse: RowPtr endpoints")
	}
	for i := 0; i < m.RowsN; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			panic("sparse: RowPtr not monotone")
		}
		cols, _ := m.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				panic("sparse: row columns not strictly increasing")
			}
		}
		for _, c := range cols {
			if c < 0 || c >= m.ColsN {
				panic("sparse: column out of range")
			}
		}
	}
}

// parallelRowGrain is the minimum rows per chunk in parallel kernels.
const parallelRowGrain = 64

// assembleRows builds a CSR from per-row (cols, vals) slices.
func assembleRows[T fp.Float](rows, cols int, rowCols [][]int, rowVals [][]T) *CSROf[T] {
	out := &CSROf[T]{RowsN: rows, ColsN: cols, RowPtr: make([]int, rows+1)}
	nnz := 0
	for i, rc := range rowCols {
		nnz += len(rc)
		out.RowPtr[i+1] = nnz
	}
	out.ColIdx = make([]int, nnz)
	out.Vals = make([]T, nnz)
	parallel.For(rows, parallelRowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.ColIdx[out.RowPtr[i]:out.RowPtr[i+1]], rowCols[i])
			copy(out.Vals[out.RowPtr[i]:out.RowPtr[i+1]], rowVals[i])
		}
	})
	return out
}

// ConvertCSR returns src with values converted to element type D
// (float64→float32 rounds; float32→float64 is exact). The structural
// arrays are copied, so the result is independent of src.
func ConvertCSR[D, S fp.Float](src *CSROf[S]) *CSROf[D] {
	out := &CSROf[D]{
		RowsN:  src.RowsN,
		ColsN:  src.ColsN,
		RowPtr: append([]int(nil), src.RowPtr...),
		ColIdx: append([]int(nil), src.ColIdx...),
		Vals:   make([]D, len(src.Vals)),
	}
	for i, v := range src.Vals {
		out.Vals[i] = D(v)
	}
	return out
}
