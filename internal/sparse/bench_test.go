package sparse

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// benchCSR builds a deterministic n×n sparse matrix with roughly
// nnzPerRow nonzeros per row.
func benchCSR(n, nnzPerRow int, seed uint64) *CSR {
	r := rng.New(seed)
	coo := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			coo.Add(i, r.Intn(n), 1+r.Float64())
		}
	}
	return coo.ToCSR()
}

func benchDense(rows, cols int, seed uint64) *tensor.Dense {
	r := rng.New(seed)
	m := tensor.New(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = r.Float64()
	}
	return m
}

// BenchmarkSpGEMM measures the sparse×sparse product on a graph-like
// operand pair (the Qd·A expansion shape of bulk sampling).
func BenchmarkSpGEMM(b *testing.B) {
	a := benchCSR(2000, 8, 1)
	c := benchCSR(2000, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpGEMM(a, c)
	}
}

// BenchmarkSpMM measures the sparse×dense product (message aggregation).
func BenchmarkSpMM(b *testing.B) {
	a := benchCSR(2000, 8, 1)
	x := benchDense(2000, 32, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMM(a, x)
	}
}

// BenchmarkGatherRowsCSR measures bulk selection-matrix row gather.
func BenchmarkGatherRowsCSR(b *testing.B) {
	a := benchCSR(2000, 8, 1)
	r := rng.New(4)
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = r.Intn(2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRows(a, idx)
	}
}

// BenchmarkExtractSubmatrixDirect measures induced-subgraph extraction.
func BenchmarkExtractSubmatrixDirect(b *testing.B) {
	a := benchCSR(2000, 8, 1)
	idx := rng.New(5).SampleWithoutReplacement(2000, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractSubmatrixDirect(a, idx)
	}
}

// BenchmarkSpMMAddInto measures the fused aggregation+residual kernel
// (one pass over res instead of SpMM followed by an elementwise add).
func BenchmarkSpMMAddInto(b *testing.B) {
	a := benchCSR(2000, 8, 1)
	x := benchDense(2000, 32, 3)
	res := benchDense(2000, 32, 4)
	out := tensor.New(2000, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpMMAddInto(out, a, x, res)
	}
}
