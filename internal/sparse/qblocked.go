package sparse

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// This file is the int8 twin of blocked.go: the column-banded layout of
// QCSR (see blocked.go for the layout and the band-ascending = column-
// ascending walk order). Integer accumulation is exact, so banding is
// bitwise-neutral here by construction; the epilogues reuse qspmmBody's
// exact expressions.

// QBlockedCSR is a column-banded int8 CSR. Layout matches BlockedCSROf
// (band-major RowPtr with global offsets, global column indices); a nil
// Vals means every stored entry is exactly 1 (Scale 1) — the implicit-
// ones incidence form.
type QBlockedCSR struct {
	RowsN, ColsN int
	Band         int
	RowPtr       []int
	ColIdx       []int
	Vals         []int8
	Scale        float32
}

// Rows returns the row count.
func (m *QBlockedCSR) Rows() int { return m.RowsN }

// Cols returns the column count.
func (m *QBlockedCSR) Cols() int { return m.ColsN }

// Nnz returns the number of stored nonzeros.
func (m *QBlockedCSR) Nnz() int { return len(m.ColIdx) }

// Bands returns the number of column bands.
func (m *QBlockedCSR) Bands() int {
	if m.ColsN <= 0 {
		return 0
	}
	b := m.Band
	if b <= 0 {
		b = m.ColsN
	}
	return (m.ColsN + b - 1) / b
}

// effScale returns the dequantization factor of m's values (1 for the
// implicit-ones incidence form).
func (m *QBlockedCSR) effScale() float32 {
	if m.Vals == nil {
		return 1
	}
	return m.Scale
}

// QBlockedIncidenceInto is BlockedIncidenceInto in the implicit-ones
// int8 form: the same (band, row) counting sort with no value stream at
// all. Storage is reused/grown through the workspace pools. Returns out.
func QBlockedIncidenceInto(out *QBlockedCSR, rows int, idx []int, band int) *QBlockedCSR {
	m := len(idx)
	if band <= 0 || band > m {
		band = m
	}
	out.RowsN, out.ColsN, out.Band = rows, m, band
	out.Vals, out.Scale = nil, 1
	nb := out.Bands()
	rp := workspace.GrowInt(out.RowPtr, nb*(rows+1))
	for i := range rp {
		rp[i] = 0
	}
	for e, v := range idx {
		rp[(e/band)*(rows+1)+v+1]++
	}
	blockedPrefix(rp, nb, rows)
	out.RowPtr = rp
	out.ColIdx = workspace.GrowInt(out.ColIdx, m)
	cursor := blockedCursor(rp, nb, rows)
	for e, v := range idx {
		slot := (e/band)*rows + v
		pos := cursor[slot]
		out.ColIdx[pos] = e
		cursor[slot] = pos + 1
	}
	workspace.PutInt(cursor)
	return out
}

// qblockedCtx carries the blocked quantized SpMM operands into
// capture-free parallel bodies. Exactly one of outF and outQ is
// non-nil.
type qblockedCtx struct {
	outF *tensor.Matrix[float32]
	outQ *tensor.QMat
	a    *QBlockedCSR
	x    *tensor.QMat
}

// QBlockedSpMMInto is QSpMMInto over the column-banded layout: int32
// accumulation per output element with the dequantizing epilogue,
// banded so one band's x rows stay cache-resident. Bitwise identical to
// QSpMMInto at any band width and worker count; zero-alloc steady
// state.
func QBlockedSpMMInto(kc kernels.Context, out *tensor.Matrix[float32], a *QBlockedCSR, x *tensor.QMat) *tensor.Matrix[float32] {
	checkQBlockedSpMM(a, x, out.Rows(), out.Cols(), "QBlockedSpMMInto")
	parallel.ForWithN(kc.Cap(), a.RowsN, 32, qblockedCtx{outF: out, a: a, x: x}, qblockedSpmmBody)
	return out
}

// QBlockedSpMMQuantInto is QSpMMQuantInto over the column-banded
// layout (requantizing epilogue at outScale).
func QBlockedSpMMQuantInto(kc kernels.Context, out *tensor.QMat, a *QBlockedCSR, x *tensor.QMat, outScale float32) *tensor.QMat {
	checkQBlockedSpMM(a, x, out.Rows(), out.Cols(), "QBlockedSpMMQuantInto")
	if !(outScale > 0) {
		panic(fmt.Sprintf("sparse: QBlockedSpMMQuantInto scale %v", outScale))
	}
	out.Scale = outScale
	parallel.ForWithN(kc.Cap(), a.RowsN, 32, qblockedCtx{outQ: out, a: a, x: x}, qblockedSpmmBody)
	return out
}

func checkQBlockedSpMM(a *QBlockedCSR, x *tensor.QMat, outRows, outCols int, op string) {
	if a.ColsN != x.Rows() {
		panic(fmt.Sprintf("sparse: %s inner dims %d vs %d", op, a.ColsN, x.Rows()))
	}
	if outRows != a.RowsN || outCols != x.Cols() {
		panic(fmt.Sprintf("sparse: %s output shape mismatch", op))
	}
}

// qblockedSpmmBody computes rows [lo, hi) of the banded quantized SpMM:
// a sub-block of int32 accumulator rows (pooled scratch) collects every
// band's contributions, then the fused dequantize/requantize epilogue
// writes the block — qspmmBody's exact per-element expressions.
func qblockedSpmmBody(cx qblockedCtx, lo, hi int) {
	a, x := cx.a, cx.x
	c := x.Cols()
	nb := a.Bands()
	rows := a.RowsN
	rb := spmmRowBlock(c, 4)
	acc := workspace.GetI32(rb * c)
	dq := a.effScale() * x.Scale
	for r0 := lo; r0 < hi; r0 += rb {
		r1 := r0 + rb
		if r1 > hi {
			r1 = hi
		}
		block := acc[:(r1-r0)*c]
		for j := range block {
			block[j] = 0
		}
		for b := 0; b < nb; b++ {
			base := b * (rows + 1)
			for i := r0; i < r1; i++ {
				klo, khi := a.RowPtr[base+i], a.RowPtr[base+i+1]
				if klo == khi {
					continue
				}
				aRow := acc[(i-r0)*c : (i-r0+1)*c]
				if a.Vals == nil {
					for _, col := range a.ColIdx[klo:khi] {
						xRow := x.Row(col)
						for j, xv := range xRow {
							aRow[j] += int32(xv)
						}
					}
				} else {
					for k, col := range a.ColIdx[klo:khi] {
						v := int32(a.Vals[klo+k])
						xRow := x.Row(col)
						for j, xv := range xRow {
							aRow[j] += v * int32(xv)
						}
					}
				}
			}
		}
		for i := r0; i < r1; i++ {
			aRow := acc[(i-r0)*c : (i-r0+1)*c]
			if cx.outQ != nil {
				oRow := cx.outQ.Row(i)
				outScale := float64(cx.outQ.Scale)
				for j, s := range aRow {
					f := float64(float32(s) * dq)
					r := math.Round(f / outScale)
					if r > 127 {
						r = 127
					} else if r < -127 {
						r = -127
					}
					oRow[j] = int8(r)
				}
			} else {
				oRow := cx.outF.Row(i)
				for j, s := range aRow {
					oRow[j] = float32(s) * dq
				}
			}
		}
	}
	workspace.PutI32(acc)
}
