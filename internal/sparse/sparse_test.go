package sparse

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// randomCSR generates a random rows×cols CSR with the given density.
func randomCSR(r *rng.Rand, rows, cols int, density float64) *CSR {
	coo := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				coo.Add(i, j, r.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	coo := NewCOO(2, 3)
	coo.Add(0, 1, 1)
	coo.Add(0, 1, 2)
	coo.Add(1, 2, 5)
	coo.Add(0, 0, -1)
	csr := coo.ToCSR()
	csr.checkValid()
	if csr.At(0, 1) != 3 || csr.At(0, 0) != -1 || csr.At(1, 2) != 5 {
		t.Fatalf("duplicate sum wrong: %v", csr.ToDense())
	}
	if csr.Nnz() != 3 {
		t.Fatalf("nnz %d, want 3", csr.Nnz())
	}
}

func TestCSRCOORoundTrip(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		a := randomCSR(r, r.Intn(15)+1, r.Intn(15)+1, 0.3)
		return a.ToCOO().ToCSR().Equal(a)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	r := rng.New(1)
	a := randomCSR(r, 8, 11, 0.25)
	if !FromDense(a.ToDense()).Equal(a) {
		t.Fatal("CSR -> dense -> CSR changed matrix")
	}
}

func TestTransposeInvolution(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		a := randomCSR(r, r.Intn(12)+1, r.Intn(12)+1, 0.3)
		return a.Transpose().Transpose().Equal(a)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	r := rng.New(2)
	a := randomCSR(r, 6, 9, 0.3)
	if a.Transpose().ToDense().MaxAbsDiff(a.ToDense().Transpose()) != 0 {
		t.Fatal("sparse transpose != dense transpose")
	}
}

func TestSpGEMMMatchesDense(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 25; trial++ {
		m, k, n := r.Intn(12)+1, r.Intn(12)+1, r.Intn(12)+1
		a := randomCSR(r, m, k, 0.35)
		b := randomCSR(r, k, n, 0.35)
		got := SpGEMM(a, b)
		got.checkValid()
		want := tensor.MatMul(a.ToDense(), b.ToDense())
		if got.ToDense().MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("SpGEMM mismatch at trial %d", trial)
		}
	}
}

func TestSpGEMMIdentity(t *testing.T) {
	r := rng.New(4)
	a := randomCSR(r, 7, 7, 0.4)
	id := RowSelection([]int{0, 1, 2, 3, 4, 5, 6}, 7)
	if !SpGEMM(id, a).Equal(a) {
		t.Fatal("I*A != A")
	}
	if !SpGEMM(a, id).Equal(a) {
		t.Fatal("A*I != A")
	}
}

func TestSpMMMatchesDense(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		m, k, n := r.Intn(15)+1, r.Intn(15)+1, r.Intn(6)+1
		a := randomCSR(r, m, k, 0.3)
		x := tensor.RandN(r, k, n, 1)
		got := SpMM(a, x)
		want := tensor.MatMul(a.ToDense(), x)
		if got.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("SpMM mismatch at trial %d", trial)
		}
	}
}

func TestRowSelectionExtractsRows(t *testing.T) {
	r := rng.New(6)
	a := randomCSR(r, 10, 8, 0.4)
	idx := []int{7, 2, 2, 0}
	sel := SpGEMM(RowSelection(idx, 10), a)
	want := tensor.GatherRows(a.ToDense(), idx)
	if sel.ToDense().MaxAbsDiff(want) != 0 {
		t.Fatal("row selection SpGEMM != row gather")
	}
}

func TestExtractSubmatrixMatchesDirect(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(20) + 2
		a := randomCSR(r, n, n, 0.3)
		k := r.Intn(n) + 1
		idx := r.SampleWithoutReplacement(n, k)
		viaSpGEMM := ExtractSubmatrix(a, idx)
		direct := ExtractSubmatrixDirect(a, idx)
		return viaSpGEMM.Equal(direct)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractSubmatrixValues(t *testing.T) {
	// 0-1-2 path graph; extracting {0, 2} keeps no edges; {1, 2} keeps one.
	a := FromEdges(3, []int{0, 1}, []int{1, 2}, true)
	sub := ExtractSubmatrix(a, []int{0, 2})
	if sub.Nnz() != 0 {
		t.Fatalf("induced {0,2} should be empty, got %d nnz", sub.Nnz())
	}
	sub = ExtractSubmatrix(a, []int{1, 2})
	if sub.Nnz() != 2 || sub.At(0, 1) != 1 || sub.At(1, 0) != 1 {
		t.Fatalf("induced {1,2} wrong: %v", sub.ToDense())
	}
}

func TestVStack(t *testing.T) {
	r := rng.New(7)
	a := randomCSR(r, 3, 5, 0.4)
	b := randomCSR(r, 2, 5, 0.4)
	s := VStack(a, b)
	s.checkValid()
	want := tensor.ConcatRows(a.ToDense(), b.ToDense())
	if s.ToDense().MaxAbsDiff(want) != 0 {
		t.Fatal("VStack mismatch")
	}
}

func TestBlockDiag(t *testing.T) {
	a := FromEdges(2, []int{0}, []int{1}, true)
	b := FromEdges(3, []int{0, 1}, []int{1, 2}, true)
	d := BlockDiag(a, b)
	d.checkValid()
	if d.Rows() != 5 || d.Cols() != 5 {
		t.Fatalf("BlockDiag shape %dx%d", d.Rows(), d.Cols())
	}
	// Cross-block entries must be zero.
	for i := 0; i < 2; i++ {
		for j := 2; j < 5; j++ {
			if d.At(i, j) != 0 || d.At(j, i) != 0 {
				t.Fatalf("cross-block entry (%d,%d) nonzero", i, j)
			}
		}
	}
	if d.At(0, 1) != 1 || d.At(2, 3) != 1 || d.At(3, 4) != 1 {
		t.Fatal("block contents wrong")
	}
}

func TestFromEdgesSymmetric(t *testing.T) {
	a := FromEdges(4, []int{0, 1, 1}, []int{1, 2, 2}, true)
	if a.At(0, 1) != 1 || a.At(1, 0) != 1 {
		t.Fatal("symmetrization missing")
	}
	if a.At(1, 2) != 1 || a.Nnz() != 4 {
		t.Fatalf("duplicate edge not collapsed: nnz=%d", a.Nnz())
	}
}

func TestSampleRowsBounds(t *testing.T) {
	r := rng.New(8)
	a := FromEdges(30, seqInts(29), seqIntsFrom(1, 29), true) // path graph
	for _, s := range []int{1, 2, 5} {
		res := SampleRows(a, s, r.Split())
		for i, samp := range res.Samples {
			if len(samp) > s {
				t.Fatalf("row %d sampled %d > fanout %d", i, len(samp), s)
			}
			if a.RowNnz(i) <= s && len(samp) != a.RowNnz(i) {
				t.Fatalf("row %d with %d nnz should keep all, got %d", i, a.RowNnz(i), len(samp))
			}
			seen := map[int]bool{}
			for _, c := range samp {
				if a.At(i, c) == 0 {
					t.Fatalf("row %d sampled non-neighbor %d", i, c)
				}
				if seen[c] {
					t.Fatalf("row %d sampled duplicate %d", i, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestSampleRowsDeterministic(t *testing.T) {
	r1, r2 := rng.New(9), rng.New(9)
	a := FromEdges(50, seqInts(49), seqIntsFrom(1, 49), true)
	s1 := SampleRows(a, 2, r1)
	s2 := SampleRows(a, 2, r2)
	for i := range s1.Samples {
		if len(s1.Samples[i]) != len(s2.Samples[i]) {
			t.Fatalf("row %d lengths differ", i)
		}
		for k := range s1.Samples[i] {
			if s1.Samples[i][k] != s2.Samples[i][k] {
				t.Fatalf("row %d sample %d differs", i, k)
			}
		}
	}
}

func TestIndicatorFromSets(t *testing.T) {
	f := IndicatorFromSets([][]int{{2, 0, 2}, {}, {1}}, 4)
	f.checkValid()
	if f.At(0, 0) != 1 || f.At(0, 2) != 1 || f.At(2, 1) != 1 {
		t.Fatal("indicator entries wrong")
	}
	if f.RowNnz(0) != 2 || f.RowNnz(1) != 0 {
		t.Fatal("indicator dedup or empty row wrong")
	}
}

func TestAtOnMissingEntry(t *testing.T) {
	a := FromEdges(3, []int{0}, []int{1}, false)
	if a.At(2, 2) != 0 || a.At(1, 0) != 0 {
		t.Fatal("missing entries should read 0")
	}
}

func seqInts(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func seqIntsFrom(start, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = start + i
	}
	return s
}

func TestGatherRowsMatchesSpGEMMSelection(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(25) + 2
		a := randomCSR(r, n, n, 0.3)
		k := r.Intn(3*n) + 1
		idx := make([]int, k)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		viaGather := GatherRows(a, idx)
		viaSpGEMM := SpGEMM(RowSelection(idx, n), a)
		return viaGather.Equal(viaSpGEMM)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
