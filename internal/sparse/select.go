package sparse

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/workspace"
)

// RowSelection builds the k×n selection matrix with a single unit nonzero
// per row at column idx[i]. Multiplying RowSelection(idx, n) × A extracts
// rows idx of A — the Q matrices of matrix-based sampling are exactly
// these.
func RowSelection(idx []int, n int) *CSR {
	out := &CSR{
		RowsN:  len(idx),
		ColsN:  n,
		RowPtr: make([]int, len(idx)+1),
		ColIdx: make([]int, len(idx)),
		Vals:   make([]float64, len(idx)),
	}
	for i, j := range idx {
		if j < 0 || j >= n {
			panic(fmt.Sprintf("sparse: selection index %d outside [0,%d)", j, n))
		}
		out.RowPtr[i+1] = i + 1
		out.ColIdx[i] = j
		out.Vals[i] = 1
	}
	return out
}

// GatherRows returns the matrix whose i-th row is m's row idx[i]. This is
// the specialized Q·A product for a row-selection matrix Q with one unit
// nonzero per row — the structure the sampling Q matrices always have —
// and avoids the general SpGEMM accumulator. Equivalence with
// SpGEMM(RowSelection(idx, n), A) is covered by tests.
func GatherRows(m *CSR, idx []int) *CSR {
	return GatherRowsInto(new(CSR), m, idx)
}

// GatherRowsInto is GatherRows writing into out, reusing out's storage
// when large enough and growing it through the workspace pools otherwise
// — this is how the bulk sampler reuses one Q·A product matrix across
// all k stacked minibatches and all walk depths. out must not alias m.
// Returns out.
func GatherRowsInto(out *CSR, m *CSR, idx []int) *CSR {
	if out == m {
		panic("sparse: GatherRowsInto output aliases input")
	}
	out.RowsN, out.ColsN = len(idx), m.ColsN
	out.RowPtr = workspace.GrowInt(out.RowPtr, len(idx)+1)
	out.RowPtr[0] = 0
	nnz := 0
	for i, r := range idx {
		nnz += m.RowNnz(r)
		out.RowPtr[i+1] = nnz
	}
	out.ColIdx = workspace.GrowInt(out.ColIdx, nnz)
	out.Vals = workspace.GrowF64(out.Vals, nnz)
	type gatherCtx struct {
		out, m *CSR
		idx    []int
	}
	parallel.ForWith(len(idx), 256, gatherCtx{out, m, idx}, func(c gatherCtx, lo, hi int) {
		out, m := c.out, c.m
		for i := lo; i < hi; i++ {
			cols, vals := m.Row(c.idx[i])
			copy(out.ColIdx[out.RowPtr[i]:out.RowPtr[i+1]], cols)
			copy(out.Vals[out.RowPtr[i]:out.RowPtr[i+1]], vals)
		}
	})
	return out
}

// ExtractSubmatrix returns A[idx, idx] computed with the paper's
// row-and-column-selection SpGEMM formulation: R·A·Rᵀ where R is the
// RowSelection matrix of idx. Output row/column i corresponds to vertex
// idx[i].
func ExtractSubmatrix(a *CSR, idx []int) *CSR {
	r := RowSelection(idx, a.RowsN)
	return SpGEMM(SpGEMM(r, a), r.Transpose())
}

// ExtractSubmatrixDirect computes the same A[idx, idx] with a direct
// hash-based relabeling, used as the independent oracle for testing the
// SpGEMM formulation and as the fast path in the standard (non-bulk)
// ShaDow sampler.
func ExtractSubmatrixDirect(a *CSR, idx []int) *CSR {
	pos := make(map[int]int, len(idx))
	for i, v := range idx {
		pos[v] = i
	}
	rowCols := make([][]int, len(idx))
	rowVals := make([][]float64, len(idx))
	for i, v := range idx {
		cols, vals := a.Row(v)
		var rc []int
		var rv []float64
		for k, c := range cols {
			if j, ok := pos[c]; ok {
				rc = append(rc, j)
				rv = append(rv, vals[k])
			}
		}
		// Row is traversed in increasing source-column order, but target
		// labels follow idx order, so sort by target column.
		insertionSortPairs(rc, rv)
		rowCols[i], rowVals[i] = rc, rv
	}
	return assembleRows(len(idx), len(idx), rowCols, rowVals)
}

func insertionSortPairs(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// SampleRowsResult is the output of SampleRows: for each input row, the
// sampled column indices.
type SampleRowsResult struct {
	Samples [][]int
}

// SampleRows draws up to s distinct nonzero column indices uniformly from
// each row of m. Rows with ≤ s nonzeros return all of them. A split of
// the provided generator seeds each parallel chunk so results are
// deterministic for a given (matrix, s, seed) regardless of scheduling.
//
// This implements the "divide each row by its sum to get a uniform
// distribution and sample s neighbors" step of matrix-based ShaDow: for
// boolean adjacency rows, normalizing and sampling s times without
// replacement is exactly uniform sampling of s distinct neighbors.
func SampleRows(m *CSR, s int, r *rng.Rand) *SampleRowsResult {
	out := &SampleRowsResult{Samples: make([][]int, m.RowsN)}
	// One split generator per contiguous chunk: deterministic for a fixed
	// row count regardless of goroutine scheduling.
	workers := parallel.MaxWorkers()
	chunk := (m.RowsN + workers - 1) / workers
	if chunk < 1 {
		chunk = 1
	}
	var tasks []func()
	for lo := 0; lo < m.RowsN; lo += chunk {
		lo, hi, g := lo, lo+chunk, r.Split()
		if hi > m.RowsN {
			hi = m.RowsN
		}
		tasks = append(tasks, func() {
			for i := lo; i < hi; i++ {
				cols, _ := m.Row(i)
				if len(cols) <= s {
					out.Samples[i] = append([]int(nil), cols...)
					continue
				}
				picks := g.SampleWithoutReplacement(len(cols), s)
				sel := make([]int, len(picks))
				for k, p := range picks {
					sel[k] = cols[p]
				}
				out.Samples[i] = sel
			}
		})
	}
	parallel.Do(tasks...)
	return out
}

// IndicatorFromSets builds a rows×n CSR matrix with unit entries at the
// given column sets (one set per row) — the F frontier/visited matrix of
// matrix-based sampling.
func IndicatorFromSets(sets [][]int, n int) *CSR {
	coo := NewCOO(len(sets), n)
	for i, set := range sets {
		for _, c := range set {
			coo.Add(i, c, 1)
		}
	}
	csr := coo.ToCSR()
	for i := range csr.Vals {
		csr.Vals[i] = 1
	}
	return csr
}

// SampleRowsStreams is SampleRows with one generator per row: row i draws
// from rowRand[i]. Rows sharing a generator are processed in row order,
// so a caller that routes every row of one logical stream (e.g. one
// ShaDow batch vertex) through the same generator gets draw sequences
// that do not depend on which other rows are stacked into the matrix —
// the property bulk sampling needs for results independent of batch
// stacking and rank sharding.
func SampleRowsStreams(m *CSR, s int, rowRand []*rng.Rand) *SampleRowsResult {
	if len(rowRand) != m.RowsN {
		panic("sparse: SampleRowsStreams wants one generator per row")
	}
	out := &SampleRowsResult{Samples: make([][]int, m.RowsN)}
	for i := 0; i < m.RowsN; i++ {
		cols, _ := m.Row(i)
		if len(cols) <= s {
			out.Samples[i] = append([]int(nil), cols...)
			continue
		}
		picks := rowRand[i].SampleWithoutReplacement(len(cols), s)
		sel := make([]int, len(picks))
		for k, p := range picks {
			sel[k] = cols[p]
		}
		out.Samples[i] = sel
	}
	return out
}
