package sparse

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Warm-path allocation budgets. Sizes stay below the parallel grain so
// the kernels run inline (no goroutine fan-out) and the measured allocs
// are the kernels' own. With warmed workspace pools and reused outputs,
// the sparse kernels must not touch the heap at all.

func TestSpGEMMIntoZeroAllocsWarm(t *testing.T) {
	r := rng.New(1)
	a := randomCSR(r, 12, 12, 0.4)
	b := randomCSR(r, 12, 12, 0.4)
	out := new(CSR)
	SpGEMMInto(out, a, b) // warm pools and output storage
	allocs := testing.AllocsPerRun(100, func() {
		SpGEMMInto(out, a, b)
	})
	if allocs != 0 {
		t.Fatalf("warm SpGEMMInto allocated %.1f per run, want 0", allocs)
	}
}

func TestSpMMIntoZeroAllocsWarm(t *testing.T) {
	r := rng.New(2)
	a := randomCSR(r, 16, 16, 0.4)
	x := tensor.RandN(r, 16, 4, 1)
	out := tensor.New(16, 4)
	SpMMInto(out, a, x)
	allocs := testing.AllocsPerRun(100, func() {
		SpMMInto(out, a, x)
	})
	if allocs != 0 {
		t.Fatalf("warm SpMMInto allocated %.1f per run, want 0", allocs)
	}
}

func TestGatherRowsIntoZeroAllocsWarm(t *testing.T) {
	r := rng.New(3)
	a := randomCSR(r, 30, 30, 0.3)
	idx := []int{4, 2, 29, 2, 17, 0}
	out := new(CSR)
	GatherRowsInto(out, a, idx)
	allocs := testing.AllocsPerRun(100, func() {
		GatherRowsInto(out, a, idx)
	})
	if allocs != 0 {
		t.Fatalf("warm GatherRowsInto allocated %.1f per run, want 0", allocs)
	}
}

// Parity: the pooled/in-place variants must be bit-identical to the
// allocating references, and SpGEMM must match the dense oracle.

func TestSpGEMMIntoMatchesSpGEMMReference(t *testing.T) {
	r := rng.New(4)
	out := new(CSR)
	for trial := 0; trial < 40; trial++ {
		m, k, n := r.Intn(30)+1, r.Intn(30)+1, r.Intn(30)+1
		a := randomCSR(r, m, k, 0.3)
		b := randomCSR(r, k, n, 0.3)
		ref := SpGEMM(a, b)
		SpGEMMInto(out, a, b) // reused output across trials
		out.checkValid()
		if !ref.Equal(out) {
			t.Fatalf("trial %d: SpGEMMInto differs from SpGEMM", trial)
		}
	}
}

func TestSpGEMMMatchesDenseOracleRandomized(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		m, k, n := r.Intn(20)+1, r.Intn(20)+1, r.Intn(20)+1
		a := randomCSR(r, m, k, 0.35)
		b := randomCSR(r, k, n, 0.35)
		got := SpGEMM(a, b).ToDense()
		want := tensor.MatMul(a.ToDense(), b.ToDense())
		if got.MaxAbsDiff(want) > 1e-12 {
			t.Fatalf("trial %d: SpGEMM deviates from dense oracle by %v", trial, got.MaxAbsDiff(want))
		}
	}
}

func TestSpMMIntoMatchesSpMMReference(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 30; trial++ {
		m, k, n := r.Intn(25)+1, r.Intn(25)+1, r.Intn(6)+1
		a := randomCSR(r, m, k, 0.3)
		x := tensor.RandN(r, k, n, 1)
		ref := SpMM(a, x)
		out := tensor.New(m, n)
		out.Fill(999) // ensure Into fully overwrites
		SpMMInto(out, a, x)
		if ref.MaxAbsDiff(out) != 0 {
			t.Fatalf("trial %d: SpMMInto not bit-identical to SpMM", trial)
		}
	}
}

func TestGatherRowsIntoMatchesReference(t *testing.T) {
	r := rng.New(7)
	out := new(CSR)
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(30) + 2
		a := randomCSR(r, n, n, 0.3)
		idx := make([]int, r.Intn(2*n)+1)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		ref := GatherRows(a, idx)
		GatherRowsInto(out, a, idx)
		if !ref.Equal(out) {
			t.Fatalf("trial %d: GatherRowsInto differs from GatherRows", trial)
		}
	}
}

func TestCSRReleaseRecycles(t *testing.T) {
	r := rng.New(8)
	a := randomCSR(r, 10, 10, 0.4)
	b := randomCSR(r, 10, 10, 0.4)
	out := new(CSR)
	SpGEMMInto(out, a, b)
	want := SpGEMM(a, b)
	if !want.Equal(out) {
		t.Fatal("precondition failed")
	}
	out.Release()
	if out.Nnz() != 0 || out.RowsN != 0 {
		t.Fatal("Release left state behind")
	}
	// The released storage must be safely reusable.
	SpGEMMInto(out, a, b)
	if !want.Equal(out) {
		t.Fatal("CSR reuse after Release corrupted result")
	}
}
