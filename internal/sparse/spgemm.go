package sparse

import (
	"fmt"
	"slices"

	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// spgemmGrain is the minimum rows per parallel chunk in SpGEMM passes.
const spgemmGrain = 16

// Parallel kernel bodies are named top-level generic functions whose
// two instantiations are bound once at init and selected via fp.Pick —
// materializing a generic func value inside a generic kernel would
// allocate a dictionary-carrying closure per call and break the
// zero-allocation contract (see the same pattern in internal/tensor).
func pickBody[T fp.Float, C any](v64, v32 any) func(C, int, int) {
	return fp.Pick[T, func(C, int, int)](v64, v32)
}

var (
	spgemmSymbolicBody64 any = spgemmSymbolicBody[float64]
	spgemmSymbolicBody32 any = spgemmSymbolicBody[float32]
	spgemmNumericBody64  any = spgemmNumericBody[float64]
	spgemmNumericBody32  any = spgemmNumericBody[float32]
	spmmBody64           any = spmmBody[float64]
	spmmBody32           any = spmmBody[float32]
)

// SpGEMM computes the sparse-sparse product a×b into a freshly allocated
// CSR. See SpGEMMInto for the algorithm.
func SpGEMM[T fp.Float](a, b *CSROf[T]) *CSROf[T] {
	return SpGEMMInto(new(CSROf[T]), a, b)
}

// SpGEMMInto computes out = a×b with a two-pass (symbolic + numeric)
// Gustavson algorithm, parallelized over the rows of a. This is the
// kernel matrix-based bulk sampling leans on for the Qd·A neighborhood
// expansion and the row/column-selection extraction step (Figure 2).
//
// The symbolic pass counts the distinct columns of every output row and
// builds RowPtr with a prefix sum; the numeric pass then writes ColIdx
// and Vals directly into their final positions — no per-row slices are
// allocated and rows are ordered with a single in-place sort of each
// row's touched-column list. out's existing storage is reused when large
// enough and grown through the workspace pools otherwise, so steady-state
// calls on warmed pools perform no heap allocation.
//
// Entries whose products cancel to exactly zero are stored explicitly
// (standard two-pass CSR behaviour: the symbolic pass fixes the sparsity
// pattern before values are known). Boolean and selection operands — all
// the sampler ever multiplies — never cancel.
//
// out must not alias a or b. Returns out.
func SpGEMMInto[T fp.Float](out *CSROf[T], a, b *CSROf[T]) *CSROf[T] {
	return SpGEMMIntoCtx(kernels.Context{}, out, a, b)
}

// SpGEMMIntoCtx is SpGEMMInto under an explicit intra-op worker budget.
// Both passes partition rows statically and every output row is
// computed entirely by one worker (per-worker dense accumulator
// scratch, disjoint CSR ranges placed by the serial prefix sum), so the
// result is bitwise identical at every worker count.
func SpGEMMIntoCtx[T fp.Float](kc kernels.Context, out *CSROf[T], a, b *CSROf[T]) *CSROf[T] {
	if a.ColsN != b.RowsN {
		panic(fmt.Sprintf("sparse: SpGEMM inner dims %d vs %d", a.ColsN, b.RowsN))
	}
	if out == a || out == b {
		panic("sparse: SpGEMMInto output aliases an input")
	}
	rows, cols := a.RowsN, b.ColsN
	out.RowsN, out.ColsN = rows, cols
	out.RowPtr = workspace.GrowInt(out.RowPtr, rows+1)

	// Pass 1 (symbolic): out.RowPtr[i+1] ← number of distinct columns in
	// output row i.
	parallel.ForWithN(kc.Cap(), rows, spgemmGrain, spgemmCtx[T]{out, a, b, cols},
		pickBody[T, spgemmCtx[T]](spgemmSymbolicBody64, spgemmSymbolicBody32))

	// Prefix sum turns per-row counts into row offsets.
	out.RowPtr[0] = 0
	for i := 0; i < rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	nnz := out.RowPtr[rows]
	out.ColIdx = workspace.GrowInt(out.ColIdx, nnz)
	out.Vals = workspace.GrowFloat(out.Vals, nnz)

	// Pass 2 (numeric): accumulate each row in a dense scratch accumulator
	// and write the sorted columns and values straight into the output.
	parallel.ForWithN(kc.Cap(), rows, spgemmGrain, spgemmCtx[T]{out, a, b, cols},
		pickBody[T, spgemmCtx[T]](spgemmNumericBody64, spgemmNumericBody32))
	return out
}

// spgemmCtx carries SpGEMM operands into capture-free parallel bodies
// (see parallel.ForWith).
type spgemmCtx[T fp.Float] struct {
	out, a, b *CSROf[T]
	cols      int
}

// spgemmSymbolicBody counts the distinct output columns of rows
// [lo, hi) into out.RowPtr[i+1].
func spgemmSymbolicBody[T fp.Float](c spgemmCtx[T], lo, hi int) {
	out, a, b := c.out, c.a, c.b
	seen := workspace.GetBool(c.cols)
	touched := workspace.GetInt(c.cols)
	for i := lo; i < hi; i++ {
		cnt := 0
		aCols, _ := a.Row(i)
		for _, ac := range aCols {
			bCols, _ := b.Row(ac)
			for _, bc := range bCols {
				if !seen[bc] {
					seen[bc] = true
					touched[cnt] = bc
					cnt++
				}
			}
		}
		out.RowPtr[i+1] = cnt
		for _, c := range touched[:cnt] {
			seen[c] = false
		}
	}
	workspace.PutBool(seen)
	workspace.PutInt(touched)
}

// spgemmNumericBody accumulates rows [lo, hi) in a dense scratch and
// writes sorted columns and values into their final positions.
func spgemmNumericBody[T fp.Float](c spgemmCtx[T], lo, hi int) {
	out, a, b := c.out, c.a, c.b
	acc := workspace.GetFloat[T](c.cols)
	seen := workspace.GetBool(c.cols)
	touched := workspace.GetInt(c.cols)
	for i := lo; i < hi; i++ {
		cnt := 0
		aCols, aVals := a.Row(i)
		for k, ac := range aCols {
			av := aVals[k]
			bCols, bVals := b.Row(ac)
			for t, bc := range bCols {
				if !seen[bc] {
					seen[bc] = true
					touched[cnt] = bc
					cnt++
				}
				acc[bc] += av * bVals[t]
			}
		}
		row := touched[:cnt]
		slices.Sort(row)
		base := out.RowPtr[i]
		for k, c := range row {
			out.ColIdx[base+k] = c
			out.Vals[base+k] = acc[c]
			acc[c] = 0
			seen[c] = false
		}
	}
	workspace.PutFloat(acc)
	workspace.PutBool(seen)
	workspace.PutInt(touched)
}

// SpMM computes the sparse×dense product a×x into a new dense matrix.
func SpMM[T fp.Float](a *CSROf[T], x *tensor.Matrix[T]) *tensor.Matrix[T] {
	out := tensor.NewOf[T](a.RowsN, x.Cols())
	SpMMInto(out, a, x)
	return out
}

// SpMMInto computes out = a×x. out must be preallocated with shape
// a.RowsN × x.Cols() and must not alias x. Steady-state calls perform no
// heap allocation.
func SpMMInto[T fp.Float](out *tensor.Matrix[T], a *CSROf[T], x *tensor.Matrix[T]) *tensor.Matrix[T] {
	return SpMMIntoCtx(kernels.Context{}, out, a, x)
}

// spmmCtx carries SpMM operands into capture-free parallel bodies; res
// is nil for the plain product and the residual operand for SpMMAdd.
type spmmCtx[T fp.Float] struct {
	out *tensor.Matrix[T]
	a   *CSROf[T]
	x   *tensor.Matrix[T]
	res *tensor.Matrix[T]
}

// SpMMIntoCtx is SpMMInto under an explicit intra-op worker budget.
// Rows partition statically and each output row accumulates serially in
// CSR column order, so the result is bitwise identical at every worker
// count.
func SpMMIntoCtx[T fp.Float](kc kernels.Context, out *tensor.Matrix[T], a *CSROf[T], x *tensor.Matrix[T]) *tensor.Matrix[T] {
	if a.ColsN != x.Rows() {
		panic(fmt.Sprintf("sparse: SpMM inner dims %d vs %d", a.ColsN, x.Rows()))
	}
	if out.Rows() != a.RowsN || out.Cols() != x.Cols() {
		panic("sparse: SpMMInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), a.RowsN, 32, spmmCtx[T]{out, a, x, nil},
		pickBody[T, spmmCtx[T]](spmmBody64, spmmBody32))
	return out
}

// SpMMAddInto computes out = a×x + res in one pass — the fused
// message-aggregation-plus-residual kernel: each output row starts from
// the residual row instead of zero, so res is read exactly once and no
// intermediate product matrix exists. out may alias res (each row is
// read before it is written, and rows are disjoint across workers); it
// must not alias x. Shapes: out, res are a.RowsN × x.Cols().
func SpMMAddInto[T fp.Float](out *tensor.Matrix[T], a *CSROf[T], x, res *tensor.Matrix[T]) *tensor.Matrix[T] {
	return SpMMAddIntoCtx(kernels.Context{}, out, a, x, res)
}

// SpMMAddIntoCtx is SpMMAddInto under an explicit intra-op worker
// budget; bitwise identical at every worker count.
func SpMMAddIntoCtx[T fp.Float](kc kernels.Context, out *tensor.Matrix[T], a *CSROf[T], x, res *tensor.Matrix[T]) *tensor.Matrix[T] {
	if a.ColsN != x.Rows() {
		panic(fmt.Sprintf("sparse: SpMMAdd inner dims %d vs %d", a.ColsN, x.Rows()))
	}
	if out.Rows() != a.RowsN || out.Cols() != x.Cols() {
		panic("sparse: SpMMAddInto output shape mismatch")
	}
	if res.Rows() != a.RowsN || res.Cols() != x.Cols() {
		panic("sparse: SpMMAddInto residual shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), a.RowsN, 32, spmmCtx[T]{out, a, x, res},
		pickBody[T, spmmCtx[T]](spmmBody64, spmmBody32))
	return out
}

// spmmBody computes rows [lo, hi) of out = a×x (+ res). Kept as a named
// function so both entry points share one capture-free body.
func spmmBody[T fp.Float](cx spmmCtx[T], lo, hi int) {
	out, a, x := cx.out, cx.a, cx.x
	c := x.Cols()
	for i := lo; i < hi; i++ {
		oRow := out.Row(i)
		if cx.res != nil {
			copy(oRow, cx.res.Row(i))
		} else {
			for j := range oRow {
				oRow[j] = 0
			}
		}
		cols, vals := a.Row(i)
		for k, col := range cols {
			v := vals[k]
			xRow := x.Row(col)
			for j := 0; j < c; j++ {
				oRow[j] += v * xRow[j]
			}
		}
	}
}

// ToDense materializes the matrix (for tests and small examples only).
func (m *CSROf[T]) ToDense() *tensor.Matrix[T] {
	out := tensor.NewOf[T](m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		cols, vals := m.Row(i)
		row := out.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return out
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(d *tensor.Dense) *CSR {
	coo := NewCOO(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}
