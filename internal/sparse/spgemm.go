package sparse

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// SpGEMM computes the sparse-sparse product a×b using Gustavson's
// row-by-row algorithm with a sparse accumulator, parallelized over the
// rows of a. This is the kernel matrix-based bulk sampling leans on for
// the Qd·A neighborhood expansion and the row/column-selection extraction
// step (Figure 2).
func SpGEMM(a, b *CSR) *CSR {
	if a.ColsN != b.RowsN {
		panic(fmt.Sprintf("sparse: SpGEMM inner dims %d vs %d", a.ColsN, b.RowsN))
	}
	rowCols := make([][]int, a.RowsN)
	rowVals := make([][]float64, a.RowsN)
	parallel.For(a.RowsN, 16, func(lo, hi int) {
		// Per-worker sparse accumulator: dense value array + touched list.
		acc := make([]float64, b.ColsN)
		touched := make([]int, 0, 256)
		seen := make([]bool, b.ColsN)
		for i := lo; i < hi; i++ {
			aCols, aVals := a.Row(i)
			for k, ac := range aCols {
				av := aVals[k]
				bCols, bVals := b.Row(ac)
				for t, bc := range bCols {
					if !seen[bc] {
						seen[bc] = true
						touched = append(touched, bc)
					}
					acc[bc] += av * bVals[t]
				}
			}
			sort.Ints(touched)
			cols := make([]int, 0, len(touched))
			vals := make([]float64, 0, len(touched))
			for _, c := range touched {
				if acc[c] != 0 {
					cols = append(cols, c)
					vals = append(vals, acc[c])
				}
				acc[c] = 0
				seen[c] = false
			}
			touched = touched[:0]
			rowCols[i], rowVals[i] = cols, vals
		}
	})
	return assembleRows(a.RowsN, b.ColsN, rowCols, rowVals)
}

// SpMM computes the sparse×dense product a×x into a new dense matrix.
func SpMM(a *CSR, x *tensor.Dense) *tensor.Dense {
	if a.ColsN != x.Rows() {
		panic(fmt.Sprintf("sparse: SpMM inner dims %d vs %d", a.ColsN, x.Rows()))
	}
	out := tensor.New(a.RowsN, x.Cols())
	c := x.Cols()
	parallel.For(a.RowsN, 32, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			oRow := out.Row(i)
			cols, vals := a.Row(i)
			for k, col := range cols {
				v := vals[k]
				xRow := x.Row(col)
				for j := 0; j < c; j++ {
					oRow[j] += v * xRow[j]
				}
			}
		}
	})
	return out
}

// ToDense materializes the matrix (for tests and small examples only).
func (m *CSR) ToDense() *tensor.Dense {
	out := tensor.New(m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		cols, vals := m.Row(i)
		row := out.Row(i)
		for k, c := range cols {
			row[c] = vals[k]
		}
	}
	return out
}

// FromDense converts a dense matrix to CSR, dropping exact zeros.
func FromDense(d *tensor.Dense) *CSR {
	coo := NewCOO(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		row := d.Row(i)
		for j, v := range row {
			if v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}
