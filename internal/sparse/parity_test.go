package sparse

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Worker-count parity for the sparse kernels: outputs must be bitwise
// identical at workers ∈ {1, 2, 4, 7} (the odd count catches uneven
// partition boundaries), and the fused SpMMAdd must match the unfused
// SpMM + elementwise add chain exactly.

var parityWorkers = []int{1, 2, 4, 7}

func denseBitsEqual(t *testing.T, name string, want, got *tensor.Dense) {
	t.Helper()
	wd, gd := want.Data(), got.Data()
	if !want.SameShape(got) {
		t.Fatalf("%s: shape mismatch", name)
	}
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, wd[i], gd[i])
		}
	}
}

func TestSpGEMMWorkerCountParity(t *testing.T) {
	r := rng.New(21)
	a := randomCSR(r, 67, 53, 0.15)
	b := randomCSR(r, 53, 41, 0.15)
	ref := SpGEMMIntoCtx(kernels.Context{Workers: 1}, new(CSR), a, b)
	for _, w := range parityWorkers[1:] {
		got := SpGEMMIntoCtx(kernels.Context{Workers: w}, new(CSR), a, b)
		if !ref.Equal(got) {
			t.Fatalf("SpGEMM at %d workers differs from 1 worker", w)
		}
	}
}

func TestSpMMWorkerCountParity(t *testing.T) {
	r := rng.New(22)
	a := randomCSR(r, 67, 53, 0.2)
	x := tensor.RandN(r, 53, 9, 1)
	ref := SpMMIntoCtx(kernels.Context{Workers: 1}, tensor.New(67, 9), a, x)
	for _, w := range parityWorkers[1:] {
		got := SpMMIntoCtx(kernels.Context{Workers: w}, tensor.New(67, 9), a, x)
		denseBitsEqual(t, "SpMM", ref, got)
	}
}

func TestSpMMAddMatchesSerialReferenceAtEveryWorkerCount(t *testing.T) {
	r := rng.New(23)
	a := randomCSR(r, 45, 31, 0.2)
	x := tensor.RandN(r, 31, 7, 1)
	res := tensor.RandN(r, 45, 7, 1)

	// Independent serial reference with the kernel's documented
	// accumulation order: each row starts from the residual, then adds
	// products in CSR column order.
	ref := res.Clone()
	for i := 0; i < a.RowsN; i++ {
		cols, vals := a.Row(i)
		rRow := ref.Row(i)
		for k, c := range cols {
			xRow := x.Row(c)
			for j := range rRow {
				rRow[j] += vals[k] * xRow[j]
			}
		}
	}

	for _, w := range parityWorkers {
		got := SpMMAddIntoCtx(kernels.Context{Workers: w}, tensor.New(45, 7), a, x, res)
		denseBitsEqual(t, "SpMMAdd", ref, got)
	}

	// In-place accumulate: out aliasing res is the autograd backward's
	// fused gradient accumulation.
	for _, w := range parityWorkers {
		acc := res.Clone()
		SpMMAddIntoCtx(kernels.Context{Workers: w}, acc, a, x, acc)
		denseBitsEqual(t, "SpMMAdd in place", ref, acc)
	}
}

// TestSpMMAddGatherMatchesUnfusedChain pins the exact case the autograd
// backward fuses: a one-nonzero-per-row gather matrix, where
// res + S×og is bitwise equal to the unfused gather-then-AddInPlace
// chain (each output element is a single addition with identical
// operands in both formulations).
func TestSpMMAddGatherMatchesUnfusedChain(t *testing.T) {
	r := rng.New(26)
	const m, n, h = 57, 19, 5
	idx := make([]int, m)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	og := tensor.RandN(r, n, h, 1)
	res := tensor.RandN(r, m, h, 1)

	gathered := tensor.New(m, h)
	tensor.GatherRowsInto(gathered, og, idx)
	ref := res.Clone()
	ref.AddInPlace(gathered)

	gather := &CSR{RowsN: m, ColsN: n, RowPtr: make([]int, m+1), ColIdx: idx, Vals: make([]float64, m)}
	for i := range gather.RowPtr {
		gather.RowPtr[i] = i
	}
	for i := range gather.Vals {
		gather.Vals[i] = 1
	}
	for _, w := range parityWorkers {
		acc := res.Clone()
		SpMMAddIntoCtx(kernels.Context{Workers: w}, acc, gather, og, acc)
		denseBitsEqual(t, "SpMMAdd gather vs unfused", ref, acc)
	}
}

func TestSpMMAddIntoZeroAllocsWarm(t *testing.T) {
	r := rng.New(24)
	a := randomCSR(r, 16, 16, 0.4)
	x := tensor.RandN(r, 16, 4, 1)
	res := tensor.RandN(r, 16, 4, 1)
	out := tensor.New(16, 4)
	SpMMAddInto(out, a, x, res)
	allocs := testing.AllocsPerRun(100, func() {
		SpMMAddInto(out, a, x, res)
	})
	if allocs != 0 {
		t.Fatalf("warm SpMMAddInto allocated %.1f per run, want 0", allocs)
	}
}

func TestIncidenceIntoBuildsScatterMatrix(t *testing.T) {
	idx := []int{3, 0, 3, 2, 0, 3, 1}
	s := IncidenceInto(new(CSR), 5, idx)
	s.checkValid()
	d := s.ToDense()
	if d.Rows() != 5 || d.Cols() != len(idx) {
		t.Fatalf("incidence shape %dx%d", d.Rows(), d.Cols())
	}
	for v := 0; v < 5; v++ {
		for e := range idx {
			want := 0.0
			if idx[e] == v {
				want = 1
			}
			if d.At(v, e) != want {
				t.Fatalf("S[%d,%d] = %v, want %v", v, e, d.At(v, e), want)
			}
		}
	}
}

// TestIncidenceSpMMMatchesScatterAdd proves the aggregation identity
// the Interaction GNN's AGG step now relies on: S×X is bitwise equal to
// the serial ScatterAddRows, at every worker count.
func TestIncidenceSpMMMatchesScatterAdd(t *testing.T) {
	r := rng.New(25)
	const m, n, h = 83, 29, 6
	idx := make([]int, m)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	x := tensor.RandN(r, m, h, 1)

	ref := tensor.New(n, h)
	tensor.ScatterAddRows(ref, x, idx)

	s := IncidenceInto(new(CSR), n, idx)
	for _, w := range parityWorkers {
		got := SpMMIntoCtx(kernels.Context{Workers: w}, tensor.New(n, h), s, x)
		denseBitsEqual(t, "incidence SpMM vs ScatterAddRows", ref, got)
	}
}
