package sparse

import (
	"math"
	"testing"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Int8 sparse-kernel coverage: the implicit-ones incidence form, exact
// int32 reference parity for both SpMM epilogues, worker-count
// determinism, and zero allocation on warm pools.

func quantDense(rows, cols int, seed uint64, scale float32) *tensor.QMat {
	src := tensor.ConvertFrom[float32](nil, benchDense(rows, cols, seed))
	q := tensor.NewQMat(rows, cols, 0)
	tensor.QuantizeInto(kernels.Context{Workers: 1}, q, src, scale)
	return q
}

// TestQIncidenceMatchesIncidence: the int8 incidence builder produces
// the same sparsity structure as the float builder, with no value
// stream at all.
func TestQIncidenceMatchesIncidence(t *testing.T) {
	r := rng.New(3)
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = r.Intn(20)
	}
	want := IncidenceInto(NewCSR(0, 0), 20, idx)
	got := QIncidenceInto(&QCSR{}, 20, idx)
	if got.Vals != nil || got.Scale != 1 {
		t.Fatal("incidence form must be implicit-ones")
	}
	if got.RowsN != want.RowsN || got.ColsN != want.ColsN {
		t.Fatal("incidence shape mismatch")
	}
	for i := range want.RowPtr {
		if got.RowPtr[i] != want.RowPtr[i] {
			t.Fatalf("RowPtr[%d] %d vs %d", i, got.RowPtr[i], want.RowPtr[i])
		}
	}
	for i := range want.ColIdx {
		if got.ColIdx[i] != want.ColIdx[i] {
			t.Fatalf("ColIdx[%d] %d vs %d", i, got.ColIdx[i], want.ColIdx[i])
		}
	}
}

// TestQuantizeCSRSymmetric pins the per-tensor CSR scheme: scale
// maxabs/127, values clamped to ±127, structure copied.
func TestQuantizeCSRSymmetric(t *testing.T) {
	a := benchCSR(50, 4, 9)
	q := QuantizeCSR(a)
	maxAbs := 0.0
	for _, v := range a.Vals {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if q.Scale != float32(maxAbs/127) {
		t.Fatalf("scale %v, want %v", q.Scale, maxAbs/127)
	}
	for i, v := range q.Vals {
		if v < -127 || v > 127 {
			t.Fatalf("value %d out of symmetric range: %d", i, v)
		}
		want := math.Round(a.Vals[i] / (maxAbs / 127))
		if want > 127 {
			want = 127
		} else if want < -127 {
			want = -127
		}
		if int8(want) != v {
			t.Fatalf("value %d: %d, want %v", i, v, want)
		}
	}
}

// refQSpMM is the naive int32 reference with the same fused epilogue
// arithmetic as qspmmBody, serial and unoptimized.
func refQSpMM(a *QCSR, x *tensor.QMat) *tensor.Dense32 {
	out := tensor.NewOf[float32](a.RowsN, x.Cols())
	dq := a.effScale() * x.Scale
	for i := 0; i < a.RowsN; i++ {
		for j := 0; j < x.Cols(); j++ {
			acc := int32(0)
			for e := a.RowPtr[i]; e < a.RowPtr[i+1]; e++ {
				v := int32(1)
				if a.Vals != nil {
					v = int32(a.Vals[e])
				}
				acc += v * int32(x.Data()[a.ColIdx[e]*x.Cols()+j])
			}
			out.Set(i, j, float32(acc)*dq)
		}
	}
	return out
}

func TestQSpMMMatchesReference(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		n := r.Intn(40) + 10
		cols := r.Intn(12) + 1
		x := quantDense(n, cols, uint64(trial), 0.02)

		// Weighted CSR form.
		aq := QuantizeCSR(benchCSR(n, 3, uint64(trial)+100))
		want := refQSpMM(aq, x)
		got := tensor.NewOf[float32](n, cols)
		QSpMMInto(kernels.Context{Workers: 1}, got, aq, x)
		bits32Equal(t, "QSpMMInto weighted", want, got)

		// Implicit-ones incidence form.
		idx := make([]int, 3*n)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		inc := QIncidenceInto(&QCSR{}, n, idx)
		xe := quantDense(len(idx), cols, uint64(trial)+200, 0.04)
		wantI := refQSpMM(inc, xe)
		gotI := tensor.NewOf[float32](n, cols)
		QSpMMInto(kernels.Context{Workers: 1}, gotI, inc, xe)
		bits32Equal(t, "QSpMMInto incidence", wantI, gotI)

		// Requantizing epilogue: float epilogue then round/clamp.
		const outScale = 0.03
		gotQ := tensor.NewQMat(n, cols, 0)
		QSpMMQuantInto(kernels.Context{Workers: 1}, gotQ, inc, xe, outScale)
		for i := 0; i < n; i++ {
			for j := 0; j < cols; j++ {
				rv := math.Round(float64(wantI.At(i, j)) / outScale)
				if rv > 127 {
					rv = 127
				} else if rv < -127 {
					rv = -127
				}
				if got := gotQ.Data()[i*cols+j]; got != int8(rv) {
					t.Fatalf("trial %d: requant (%d,%d) = %d, want %v", trial, i, j, got, rv)
				}
			}
		}
	}
}

func TestQSpMMWorkerCountParity(t *testing.T) {
	const n, cols = 300, 16
	aq := QuantizeCSR(benchCSR(n, 6, 1))
	x := quantDense(n, cols, 3, 0.02)
	r := rng.New(5)
	idx := make([]int, 2*n)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	inc := QIncidenceInto(&QCSR{}, n, idx)
	xe := quantDense(len(idx), cols, 4, 0.04)

	ref := tensor.NewOf[float32](n, cols)
	QSpMMInto(kernels.Context{Workers: 1}, ref, aq, x)
	refQ := tensor.NewQMat(n, cols, 0)
	QSpMMQuantInto(kernels.Context{Workers: 1}, refQ, inc, xe, 0.03)
	for _, w := range []int{2, 4, 7} {
		kc := kernels.Context{Workers: w}
		got := tensor.NewOf[float32](n, cols)
		QSpMMInto(kc, got, aq, x)
		bits32Equal(t, "QSpMM i8", ref, got)
		gotQ := tensor.NewQMat(n, cols, 0)
		QSpMMQuantInto(kc, gotQ, inc, xe, 0.03)
		for i, v := range refQ.Data() {
			if gotQ.Data()[i] != v {
				t.Fatalf("QSpMMQuantInto differs at %d workers, element %d: %d vs %d", w, i, gotQ.Data()[i], v)
			}
		}
	}
}

func TestQSpMMZeroAllocs(t *testing.T) {
	const n, cols = 16, 8
	r := rng.New(7)
	idx := make([]int, 2*n)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	inc := &QCSR{}
	xe := quantDense(len(idx), cols, 2, 0.04)
	outF := tensor.NewOf[float32](n, cols)
	outQ := tensor.NewQMat(n, cols, 0)
	kc := kernels.Context{Workers: 1}
	allocs := testing.AllocsPerRun(100, func() {
		QIncidenceInto(inc, n, idx)
		QSpMMInto(kc, outF, inc, xe)
		QSpMMQuantInto(kc, outQ, inc, xe, 0.03)
	})
	if allocs != 0 {
		t.Fatalf("int8 sparse kernels allocated %.1f per run, want 0", allocs)
	}
}
