package sparse

import (
	"testing"
)

// decodeEdges interprets fuzz bytes as a small graph: first byte sizes
// the vertex set, the rest pair up into (src, dst) edges reduced mod n.
// Every decoded graph is structurally valid input — the fuzzing surface
// is the CSR construction and SpGEMM symbolic/numeric passes, which
// must uphold their invariants for ANY edge list, not crash on one.
func decodeEdges(data []byte) (n int, src, dst []int) {
	if len(data) == 0 {
		return 1, nil, nil
	}
	n = int(data[0]%32) + 1
	rest := data[1:]
	for i := 0; i+1 < len(rest) && len(src) < 256; i += 2 {
		src = append(src, int(rest[i])%n)
		dst = append(dst, int(rest[i+1])%n)
	}
	return n, src, dst
}

// checkCSRInvariants asserts structural validity beyond checkValid:
// monotone row pointers, strictly sorted in-range columns per row.
func checkCSRInvariants(t *testing.T, m *CSR) {
	t.Helper()
	m.checkValid()
	if len(m.RowPtr) != m.RowsN+1 || m.RowPtr[0] != 0 || m.RowPtr[m.RowsN] != len(m.ColIdx) {
		t.Fatalf("row pointer envelope broken: %d rows, ptr %v", m.RowsN, m.RowPtr)
	}
	for i := 0; i < m.RowsN; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			t.Fatalf("row %d pointers not monotone", i)
		}
		cols, _ := m.Row(i)
		for k, c := range cols {
			if c < 0 || c >= m.ColsN {
				t.Fatalf("row %d col %d out of range", i, c)
			}
			if k > 0 && cols[k-1] >= c {
				t.Fatalf("row %d cols not strictly sorted: %v", i, cols)
			}
		}
	}
}

// FuzzCSRFromEdges: CSR construction (COO sort+dedup path) upholds its
// invariants and agrees with a brute-force dense adjacency for any edge
// list, symmetric or not.
func FuzzCSRFromEdges(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{8, 7, 7, 7, 7, 0, 7})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, src, dst := decodeEdges(data)
		for _, symmetric := range []bool{false, true} {
			m := FromEdges(n, src, dst, symmetric)
			checkCSRInvariants(t, m)
			want := make([]float64, n*n)
			for k := range src {
				want[src[k]*n+dst[k]] = 1
				if symmetric {
					want[dst[k]*n+src[k]] = 1
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got := m.At(i, j); got != want[i*n+j] {
						t.Fatalf("symmetric=%v: At(%d,%d)=%v want %v", symmetric, i, j, got, want[i*n+j])
					}
				}
			}
		}
	})
}

// FuzzSpGEMM: the two-pass symbolic+numeric SpGEMM produces a valid CSR
// that matches the dense reference product A·B for arbitrary sparse
// operands (B = Aᵀ so shapes always agree and transposition is stressed
// too).
func FuzzSpGEMM(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{2, 0, 0, 1, 1})
	f.Add([]byte{16, 3, 9, 9, 3, 1, 15, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, src, dst := decodeEdges(data)
		a := FromEdges(n, src, dst, false)
		// Give values some variety beyond 1 so numeric bugs can't hide.
		for i := range a.Vals {
			a.Vals[i] = float64(i%5) + 0.5
		}
		b := a.Transpose()
		checkCSRInvariants(t, b)
		c := SpGEMM(a, b)
		checkCSRInvariants(t, c)
		if c.Rows() != n || c.Cols() != n {
			t.Fatalf("product shape %dx%d, want %dx%d", c.Rows(), c.Cols(), n, n)
		}
		// Dense reference.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				for k := 0; k < n; k++ {
					want += a.At(i, k) * b.At(k, j)
				}
				got := c.At(i, j)
				diff := got - want
				if diff < -1e-9 || diff > 1e-9 {
					t.Fatalf("C(%d,%d)=%v, dense reference %v", i, j, got, want)
				}
			}
		}
		// The symbolic pass must not fabricate stored zeros outside the
		// structural product: every stored entry needs a matching k.
		for i := 0; i < n; i++ {
			cols, _ := c.Row(i)
			for _, j := range cols {
				structural := false
				for k := 0; k < n && !structural; k++ {
					structural = a.At(i, k) != 0 && b.At(k, j) != 0
				}
				if !structural {
					t.Fatalf("C(%d,%d) stored without structural support", i, j)
				}
			}
		}
	})
}
