package sparse

import (
	"fmt"

	"repro/internal/fp"
	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// This file implements the column-banded ("blocked") CSR layout of the
// aggregation kernels. The columns split into ⌈cols/Band⌉ contiguous
// bands; each band stores its own CSR row structure over the full row
// range, so the SpMM can process one band at a time and the rows of the
// dense operand a band touches stay cache-resident instead of being
// revisited at random across the whole matrix.
//
// Bitwise contract: bands partition the columns in ascending order and
// each (band, row) run keeps strictly ascending columns, so walking
// bands outer-to-inner visits every row's nonzeros in exactly flat-CSR
// order. Each output row still accumulates serially left-to-right, and
// rows partition statically across workers — blocked results are
// bitwise identical to the flat kernels at any band width and worker
// count.

// BlockedCSROf is a column-banded CSR matrix. RowPtr is band-major with
// length Bands()·(rows+1): the segment of band b spans
// [b·(rows+1), (b+1)·(rows+1)) and holds global offsets into the shared
// ColIdx/Vals streams (so consecutive segments overlap at the band
// boundary value). Column indices are global.
type BlockedCSROf[T fp.Float] struct {
	RowsN, ColsN int
	Band         int
	RowPtr       []int
	ColIdx       []int
	Vals         []T
}

// Rows returns the row count.
func (m *BlockedCSROf[T]) Rows() int { return m.RowsN }

// Cols returns the column count.
func (m *BlockedCSROf[T]) Cols() int { return m.ColsN }

// Nnz returns the number of stored nonzeros.
func (m *BlockedCSROf[T]) Nnz() int { return len(m.ColIdx) }

// Bands returns the number of column bands (0 for an empty column
// range).
func (m *BlockedCSROf[T]) Bands() int {
	if m.ColsN <= 0 {
		return 0
	}
	b := m.Band
	if b <= 0 {
		b = m.ColsN
	}
	return (m.ColsN + b - 1) / b
}

// ConvertBlocked rebuilds src in column-banded form with the given band
// width (≤0 means one band spanning every column). out's storage is
// reused when large enough and grown through the workspace pools
// otherwise, so steady-state calls perform no heap allocation. out must
// not alias src. Returns out.
func ConvertBlocked[T fp.Float](out *BlockedCSROf[T], src *CSROf[T], band int) *BlockedCSROf[T] {
	rows := src.RowsN
	if band <= 0 || band > src.ColsN {
		band = src.ColsN
	}
	out.RowsN, out.ColsN, out.Band = rows, src.ColsN, band
	nb := out.Bands()
	rp := workspace.GrowInt(out.RowPtr, nb*(rows+1))
	for i := range rp {
		rp[i] = 0
	}
	for i := 0; i < rows; i++ {
		cols, _ := src.Row(i)
		for _, c := range cols {
			rp[(c/band)*(rows+1)+i+1]++
		}
	}
	blockedPrefix(rp, nb, rows)
	out.RowPtr = rp
	nnz := src.Nnz()
	out.ColIdx = workspace.GrowInt(out.ColIdx, nnz)
	out.Vals = workspace.GrowFloat(out.Vals, nnz)
	cursor := blockedCursor(rp, nb, rows)
	for i := 0; i < rows; i++ {
		cols, vals := src.Row(i)
		for k, c := range cols {
			slot := (c/band)*rows + i
			pos := cursor[slot]
			out.ColIdx[pos] = c
			out.Vals[pos] = vals[k]
			cursor[slot] = pos + 1
		}
	}
	workspace.PutInt(cursor)
	return out
}

// blockedPrefix turns per-(band,row) counts (stored at base+i+1) into
// the band-major global-offset RowPtr layout.
func blockedPrefix(rp []int, nb, rows int) {
	run := 0
	for b := 0; b < nb; b++ {
		base := b * (rows + 1)
		rp[base] = run
		for i := 0; i < rows; i++ {
			rp[base+i+1] += rp[base+i]
		}
		run = rp[base+rows]
	}
}

// blockedCursor returns a pooled nb×rows cursor initialized to each
// (band, row) run's start offset.
func blockedCursor(rp []int, nb, rows int) []int {
	cursor := workspace.GetInt(nb * rows)
	for b := 0; b < nb; b++ {
		copy(cursor[b*rows:(b+1)*rows], rp[b*(rows+1):b*(rows+1)+rows])
	}
	return cursor
}

// ToCSR flattens m back to plain CSR (band-ascending per row = global
// column order). out's storage grows through the workspace pools; must
// not alias m. Returns out.
func (m *BlockedCSROf[T]) ToCSR(out *CSROf[T]) *CSROf[T] {
	rows := m.RowsN
	out.RowsN, out.ColsN = rows, m.ColsN
	out.RowPtr = workspace.GrowInt(out.RowPtr, rows+1)
	out.ColIdx = workspace.GrowInt(out.ColIdx, m.Nnz())
	out.Vals = workspace.GrowFloat(out.Vals, m.Nnz())
	nb := m.Bands()
	pos := 0
	out.RowPtr[0] = 0
	for i := 0; i < rows; i++ {
		for b := 0; b < nb; b++ {
			base := b * (rows + 1)
			lo, hi := m.RowPtr[base+i], m.RowPtr[base+i+1]
			copy(out.ColIdx[pos:pos+hi-lo], m.ColIdx[lo:hi])
			copy(out.Vals[pos:pos+hi-lo], m.Vals[lo:hi])
			pos += hi - lo
		}
		out.RowPtr[i+1] = pos
	}
	return out
}

// BlockedIncidenceInto builds the rows×len(idx) incidence matrix (see
// IncidenceInto) directly in column-banded form with the given band
// width: one counting sort keyed on (band, row) — the column of entry e
// is e itself, so e ascending within each (band, row) bucket is exactly
// ascending column order. Storage is reused/grown through the workspace
// pools. Returns out.
func BlockedIncidenceInto[T fp.Float](out *BlockedCSROf[T], rows int, idx []int, band int) *BlockedCSROf[T] {
	m := len(idx)
	if band <= 0 || band > m {
		band = m
	}
	out.RowsN, out.ColsN, out.Band = rows, m, band
	nb := out.Bands()
	rp := workspace.GrowInt(out.RowPtr, nb*(rows+1))
	for i := range rp {
		rp[i] = 0
	}
	for e, v := range idx {
		rp[(e/band)*(rows+1)+v+1]++
	}
	blockedPrefix(rp, nb, rows)
	out.RowPtr = rp
	out.ColIdx = workspace.GrowInt(out.ColIdx, m)
	out.Vals = workspace.GrowFloat(out.Vals, m)
	cursor := blockedCursor(rp, nb, rows)
	for e, v := range idx {
		slot := (e/band)*rows + v
		pos := cursor[slot]
		out.ColIdx[pos] = e
		cursor[slot] = pos + 1
	}
	workspace.PutInt(cursor)
	for i := 0; i < m; i++ {
		out.Vals[i] = 1
	}
	return out
}

var (
	blockedSpmmBody64 any = blockedSpmmBody[float64]
	blockedSpmmBody32 any = blockedSpmmBody[float32]
)

// blockedSpmmCtx carries the blocked SpMM operands into capture-free
// parallel bodies.
type blockedSpmmCtx[T fp.Float] struct {
	out *tensor.Matrix[T]
	a   *BlockedCSROf[T]
	x   *tensor.Matrix[T]
}

// BlockedSpMMIntoCtx computes out = a×x band by band: within each
// statically partitioned row chunk, a sub-block of output rows zeroes
// once, every band streams its contributions into those rows, and the
// x rows one band touches stay cache-resident. Bitwise identical to
// SpMMIntoCtx at any band width and worker count (see the file
// contract); steady-state calls perform no heap allocation.
func BlockedSpMMIntoCtx[T fp.Float](kc kernels.Context, out *tensor.Matrix[T], a *BlockedCSROf[T], x *tensor.Matrix[T]) *tensor.Matrix[T] {
	if a.ColsN != x.Rows() {
		panic(fmt.Sprintf("sparse: BlockedSpMM inner dims %d vs %d", a.ColsN, x.Rows()))
	}
	if out.Rows() != a.RowsN || out.Cols() != x.Cols() {
		panic("sparse: BlockedSpMMInto output shape mismatch")
	}
	parallel.ForWithN(kc.Cap(), a.RowsN, 32, blockedSpmmCtx[T]{out, a, x},
		pickBody[T, blockedSpmmCtx[T]](blockedSpmmBody64, blockedSpmmBody32))
	return out
}

// spmmRowBlock returns how many output rows accumulate per band sweep:
// enough to amortize the per-band row-pointer walk, small enough that
// the active output block stays L1-resident. Depends only on the output
// width, never on worker count, so it cannot affect results.
func spmmRowBlock(cols, elemBytes int) int {
	rowBytes := cols*elemBytes + 1
	rb := (32 << 10) / rowBytes
	if rb < 8 {
		rb = 8
	}
	return rb
}

// blockedSpmmBody computes rows [lo, hi) of out = a×x band-by-band.
func blockedSpmmBody[T fp.Float](cx blockedSpmmCtx[T], lo, hi int) {
	out, a, x := cx.out, cx.a, cx.x
	c := x.Cols()
	nb := a.Bands()
	rows := a.RowsN
	rb := spmmRowBlock(c, fp.Bytes[T]())
	for r0 := lo; r0 < hi; r0 += rb {
		r1 := r0 + rb
		if r1 > hi {
			r1 = hi
		}
		for i := r0; i < r1; i++ {
			oRow := out.Row(i)
			for j := range oRow {
				oRow[j] = 0
			}
		}
		for b := 0; b < nb; b++ {
			base := b * (rows + 1)
			for i := r0; i < r1; i++ {
				klo, khi := a.RowPtr[base+i], a.RowPtr[base+i+1]
				if klo == khi {
					continue
				}
				oRow := out.Row(i)
				for kk := klo; kk < khi; kk++ {
					v := a.Vals[kk]
					xRow := x.Row(a.ColIdx[kk])
					for j := 0; j < c; j++ {
						oRow[j] += v * xRow[j]
					}
				}
			}
		}
	}
}
