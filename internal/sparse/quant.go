package sparse

import (
	"fmt"
	"math"

	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// This file holds the int8 quantized sparse kernels of the inference
// path: an int8-valued CSR container and the incidence/weighted SpMM
// whose products accumulate in int32 with dequantization (and
// optionally requantization) fused into the epilogue. Integer
// accumulation is exact and rows partition statically, so every kernel
// here is bitwise identical at any worker count.

// QCSR is a compressed-sparse-row matrix with int8 values and one
// symmetric per-tensor scale: real value ≈ float32(q)·Scale. A nil Vals
// means every stored entry is exactly 1 (Scale 1) — the incidence-
// matrix form the GNN aggregation uses, which skips the value stream
// entirely.
type QCSR struct {
	RowsN, ColsN int
	RowPtr       []int
	ColIdx       []int
	Vals         []int8
	Scale        float32
}

// Rows returns the row count.
func (m *QCSR) Rows() int { return m.RowsN }

// Cols returns the column count.
func (m *QCSR) Cols() int { return m.ColsN }

// Nnz returns the number of stored nonzeros.
func (m *QCSR) Nnz() int { return len(m.ColIdx) }

// effScale returns the dequantization factor of m's values (1 for the
// implicit-ones incidence form).
func (m *QCSR) effScale() float32 {
	if m.Vals == nil {
		return 1
	}
	return m.Scale
}

// QuantizeCSR quantizes a float64 CSR at one per-tensor symmetric
// scale (maxabs/127; 1 when all values are zero).
func QuantizeCSR(a *CSR) *QCSR {
	maxAbs := 0.0
	for _, v := range a.Vals {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	scale := 1.0
	if maxAbs > 0 {
		scale = maxAbs / 127
	}
	q := &QCSR{
		RowsN:  a.RowsN,
		ColsN:  a.ColsN,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Vals:   make([]int8, len(a.Vals)),
		Scale:  float32(scale),
	}
	for i, v := range a.Vals {
		r := math.Round(v / scale)
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		q.Vals[i] = int8(r)
	}
	return q
}

// QIncidenceInto builds the rows×len(idx) incidence matrix into out in
// the implicit-ones form (Vals nil): the same counting sort as
// IncidenceInto without materializing a value stream at all — the int8
// aggregation reads one byte per gathered element and zero bytes of
// matrix values. Storage is reused/grown through the workspace pools.
func QIncidenceInto(out *QCSR, rows int, idx []int) *QCSR {
	m := len(idx)
	out.RowsN, out.ColsN = rows, m
	out.Vals, out.Scale = nil, 1
	out.RowPtr = workspace.GrowInt(out.RowPtr, rows+1)
	out.ColIdx = workspace.GrowInt(out.ColIdx, m)
	for i := range out.RowPtr {
		out.RowPtr[i] = 0
	}
	for _, v := range idx {
		out.RowPtr[v+1]++
	}
	for i := 0; i < rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	cursor := workspace.GetInt(rows)
	copy(cursor, out.RowPtr[:rows])
	for e, v := range idx {
		out.ColIdx[cursor[v]] = e
		cursor[v]++
	}
	workspace.PutInt(cursor)
	return out
}

// qspmmCtx carries the quantized SpMM operands into capture-free
// parallel bodies. Exactly one of outF (dequantizing epilogue) and outQ
// (requantizing epilogue) is non-nil.
type qspmmCtx struct {
	outF *tensor.Matrix[float32]
	outQ *tensor.QMat
	a    *QCSR
	x    *tensor.QMat
}

// QSpMMInto computes out = dequant(a×x): int8×int8 products accumulate
// in int32 per output element and the epilogue writes
// float32(acc)·aScale·x.Scale in the same pass — the int32 row never
// round-trips through memory. out must have shape a.RowsN × x.Cols()
// and must not alias x's storage. Zero-alloc steady state; bitwise
// identical at every worker count.
func QSpMMInto(kc kernels.Context, out *tensor.Matrix[float32], a *QCSR, x *tensor.QMat) *tensor.Matrix[float32] {
	checkQSpMM(a, x, out.Rows(), out.Cols(), "QSpMMInto")
	parallel.ForWithN(kc.Cap(), a.RowsN, 32, qspmmCtx{outF: out, a: a, x: x}, qspmmBody)
	return out
}

// QSpMMQuantInto is QSpMMInto with requantization fused into the
// epilogue: out is int8 at outScale, so an aggregation whose result
// immediately feeds another int8 GEMM (the GNN node update) writes a
// quarter of the bytes and never materializes a float32 intermediate.
func QSpMMQuantInto(kc kernels.Context, out *tensor.QMat, a *QCSR, x *tensor.QMat, outScale float32) *tensor.QMat {
	checkQSpMM(a, x, out.Rows(), out.Cols(), "QSpMMQuantInto")
	if !(outScale > 0) {
		panic(fmt.Sprintf("sparse: QSpMMQuantInto scale %v", outScale))
	}
	out.Scale = outScale
	parallel.ForWithN(kc.Cap(), a.RowsN, 32, qspmmCtx{outQ: out, a: a, x: x}, qspmmBody)
	return out
}

func checkQSpMM(a *QCSR, x *tensor.QMat, outRows, outCols int, op string) {
	if a.ColsN != x.Rows() {
		panic(fmt.Sprintf("sparse: %s inner dims %d vs %d", op, a.ColsN, x.Rows()))
	}
	if outRows != a.RowsN || outCols != x.Cols() {
		panic(fmt.Sprintf("sparse: %s output shape mismatch", op))
	}
}

// qspmmBody computes rows [lo, hi) of the quantized SpMM: per-row int32
// accumulation in pooled scratch, then the fused dequantize (or
// requantize) epilogue.
func qspmmBody(cx qspmmCtx, lo, hi int) {
	a, x := cx.a, cx.x
	c := x.Cols()
	acc := workspace.GetI32(c)
	dq := cx.a.effScale() * x.Scale
	for i := lo; i < hi; i++ {
		for j := range acc {
			acc[j] = 0
		}
		rlo, rhi := a.RowPtr[i], a.RowPtr[i+1]
		if a.Vals == nil {
			for _, col := range a.ColIdx[rlo:rhi] {
				xRow := x.Row(col)
				for j, xv := range xRow {
					acc[j] += int32(xv)
				}
			}
		} else {
			for k, col := range a.ColIdx[rlo:rhi] {
				v := int32(a.Vals[rlo+k])
				xRow := x.Row(col)
				for j, xv := range xRow {
					acc[j] += v * int32(xv)
				}
			}
		}
		if cx.outQ != nil {
			oRow := cx.outQ.Row(i)
			outScale := float64(cx.outQ.Scale)
			for j, s := range acc {
				f := float64(float32(s) * dq)
				r := math.Round(f / outScale)
				if r > 127 {
					r = 127
				} else if r < -127 {
					r = -127
				}
				oRow[j] = int8(r)
			}
		} else {
			oRow := cx.outF.Row(i)
			for j, s := range acc {
				oRow[j] = float32(s) * dq
			}
		}
	}
	workspace.PutI32(acc)
}
