package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format sparse matrix. Entries may be unsorted and
// may contain duplicates until ToCSR, which sorts and sums them.
type COO struct {
	RowsN, ColsN int
	RowIdx       []int
	ColIdx       []int
	Vals         []float64
}

// NewCOO returns an empty rows×cols COO matrix.
func NewCOO(rows, cols int) *COO {
	return &COO{RowsN: rows, ColsN: cols}
}

// Add appends entry (i, j, v).
func (m *COO) Add(i, j int, v float64) {
	if i < 0 || i >= m.RowsN || j < 0 || j >= m.ColsN {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) outside %dx%d", i, j, m.RowsN, m.ColsN))
	}
	m.RowIdx = append(m.RowIdx, i)
	m.ColIdx = append(m.ColIdx, j)
	m.Vals = append(m.Vals, v)
}

// Nnz returns the stored entry count (duplicates included).
func (m *COO) Nnz() int { return len(m.Vals) }

// ToCSR converts to CSR, sorting rows and summing duplicate coordinates.
func (m *COO) ToCSR() *CSR {
	type entry struct {
		r, c int
		v    float64
	}
	entries := make([]entry, m.Nnz())
	for k := range m.Vals {
		entries[k] = entry{m.RowIdx[k], m.ColIdx[k], m.Vals[k]}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].r != entries[b].r {
			return entries[a].r < entries[b].r
		}
		return entries[a].c < entries[b].c
	})
	out := &CSR{RowsN: m.RowsN, ColsN: m.ColsN, RowPtr: make([]int, m.RowsN+1)}
	for k := 0; k < len(entries); {
		e := entries[k]
		sum := 0.0
		for k < len(entries) && entries[k].r == e.r && entries[k].c == e.c {
			sum += entries[k].v
			k++
		}
		out.ColIdx = append(out.ColIdx, e.c)
		out.Vals = append(out.Vals, sum)
		out.RowPtr[e.r+1] = len(out.ColIdx)
	}
	for i := 0; i < m.RowsN; i++ {
		if out.RowPtr[i+1] == 0 {
			out.RowPtr[i+1] = out.RowPtr[i]
		}
	}
	return out
}

// FromEdges builds an n×n CSR adjacency matrix from an edge list with all
// values 1. If symmetric, each edge is inserted in both directions.
// Self-loops and duplicate edges collapse to a single unit entry.
func FromEdges(n int, src, dst []int, symmetric bool) *CSR {
	if len(src) != len(dst) {
		panic("sparse: FromEdges src/dst length mismatch")
	}
	coo := NewCOO(n, n)
	for k := range src {
		coo.Add(src[k], dst[k], 1)
		if symmetric && src[k] != dst[k] {
			coo.Add(dst[k], src[k], 1)
		}
	}
	csr := coo.ToCSR()
	// Clamp duplicate-summed values back to 1 (adjacency is boolean).
	for i := range csr.Vals {
		csr.Vals[i] = 1
	}
	return csr
}

// ToCOO converts a CSR matrix back to (float64) coordinate form.
func (m *CSROf[T]) ToCOO() *COO {
	out := NewCOO(m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			out.Add(i, c, float64(vals[k]))
		}
	}
	return out
}
