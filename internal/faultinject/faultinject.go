// Package faultinject is a deterministic chaos harness for the recon
// serving data plane: it wraps any of the five stage interfaces with
// injected errors, panics, and latency spikes, driving the chaos test
// suite and cmd/serve's -chaos-* flags.
//
// Every injection decision is a pure function of (seed, stage, event
// structure) — seeded through internal/rng, never a global source — so
// the same event faults identically at any worker count, submission
// order, or repetition. That determinism is what lets the chaos suite
// assert the strongest invariant: events the injector leaves alone must
// produce bit-identical results to a fault-free run.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/rng"
	"repro/recon"
)

// ErrInjected is the root of every injected error; test assertions and
// servers distinguish deliberate chaos from organic failures with
// errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// Config sets the per-stage-call fault rates. For each guarded stage
// call exactly one fault (or none) fires, chosen by a deterministic
// draw: panic with probability PanicRate, error with ErrorRate, latency
// spike with DelayRate (the three must sum to ≤ 1).
type Config struct {
	Seed      uint64        // decision stream seed
	ErrorRate float64       // probability of returning ErrInjected
	PanicRate float64       // probability of panicking
	DelayRate float64       // probability of sleeping Delay before the call
	Delay     time.Duration // latency spike size
}

// Stats counts the faults an Injector actually fired.
type Stats struct {
	Errors int64
	Panics int64
	Delays int64
}

// Injector wraps recon stages with deterministic fault injection. It
// implements recon.StageWrapper, so the whole pipeline is wrapped with
// recon.WithStageWrapper(inj); individual Wrap* methods compose
// per-stage harnesses. The zero rates make every wrapper a passthrough.
type Injector struct {
	cfg    Config
	errors atomic.Int64
	panics atomic.Int64
	delays atomic.Int64
}

// New validates cfg and builds an injector.
func New(cfg Config) (*Injector, error) {
	for _, r := range []float64{cfg.ErrorRate, cfg.PanicRate, cfg.DelayRate} {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("faultinject: rates must be in [0,1], got %v", r)
		}
	}
	if sum := cfg.ErrorRate + cfg.PanicRate + cfg.DelayRate; sum > 1 {
		return nil, fmt.Errorf("faultinject: rates sum to %v > 1", sum)
	}
	if cfg.DelayRate > 0 && cfg.Delay <= 0 {
		return nil, fmt.Errorf("faultinject: DelayRate %v needs a positive Delay", cfg.DelayRate)
	}
	return &Injector{cfg: cfg}, nil
}

// Stats snapshots the fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{Errors: inj.errors.Load(), Panics: inj.panics.Load(), Delays: inj.delays.Load()}
}

// Active reports whether any fault can ever fire.
func (inj *Injector) Active() bool {
	return inj != nil && inj.cfg.ErrorRate+inj.cfg.PanicRate+inj.cfg.DelayRate > 0
}

// Key hashes the stable structure of an event (hit count, truth-edge
// count, first/last truth endpoints) into the injector's decision
// stream, mirroring the seeding discipline of recon's truth-level
// builder: the same event is the same chaos victim in any order.
func Key(ev *recon.Event) uint64 {
	if ev == nil {
		return 0
	}
	h := uint64(ev.NumHits()) * 0x9E3779B97F4A7C15
	h = (h ^ uint64(len(ev.TruthSrc))) * 0xBF58476D1CE4E5B9
	if n := len(ev.TruthSrc); n > 0 {
		h ^= uint64(ev.TruthSrc[0])<<32 | uint64(ev.TruthDst[n-1])
	}
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	return h ^ (h >> 29)
}

// stageSalt folds a stage name into the decision stream so each stage
// draws independently for the same event.
func stageSalt(stage string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(stage); i++ {
		h = (h ^ uint64(stage[i])) * 1099511628211
	}
	return h
}

// fault is one decided injection.
type fault int

const (
	faultNone fault = iota
	faultError
	faultPanic
	faultDelay
)

// decide draws the deterministic fault for one (stage, event) call.
func (inj *Injector) decide(stage string, key uint64) fault {
	if !inj.Active() {
		return faultNone
	}
	u := rng.New(inj.cfg.Seed ^ stageSalt(stage) ^ key).Float64()
	switch {
	case u < inj.cfg.PanicRate:
		return faultPanic
	case u < inj.cfg.PanicRate+inj.cfg.ErrorRate:
		return faultError
	case u < inj.cfg.PanicRate+inj.cfg.ErrorRate+inj.cfg.DelayRate:
		return faultDelay
	}
	return faultNone
}

// before fires the decided fault ahead of the wrapped stage call. A
// panic propagates to the engine's stage guard; an error returns
// without invoking the stage; a delay sleeps (cancellable) then falls
// through to the real call, leaving the result untouched.
func (inj *Injector) before(ctx context.Context, stage string, key uint64) error {
	switch inj.decide(stage, key) {
	case faultPanic:
		inj.panics.Add(1)
		panic(fmt.Sprintf("faultinject: injected panic in %s (event key %#x)", stage, key))
	case faultError:
		inj.errors.Add(1)
		return fmt.Errorf("%w: stage %s (event key %#x)", ErrInjected, stage, key)
	case faultDelay:
		inj.delays.Add(1)
		t := time.NewTimer(inj.cfg.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// The five stage wrappers. Each defers entirely to the inner stage when
// no fault fires, so non-victim events are bit-identical to an
// unwrapped run (a latency spike alone never changes results).

type embedder struct {
	inner recon.Embedder
	inj   *Injector
}

func (e embedder) Embed(ctx context.Context, a *recon.Arena, ev *recon.Event) (*recon.Matrix, error) {
	if err := e.inj.before(ctx, "embed", Key(ev)); err != nil {
		return nil, err
	}
	return e.inner.Embed(ctx, a, ev)
}

type builder struct {
	inner recon.GraphBuilder
	inj   *Injector
}

func (b builder) BuildEdges(ctx context.Context, a *recon.Arena, ev *recon.Event, embed func() (*recon.Matrix, error)) ([]int, []int, error) {
	if err := b.inj.before(ctx, "build", Key(ev)); err != nil {
		return nil, nil, err
	}
	return b.inner.BuildEdges(ctx, a, ev, embed)
}

type filter struct {
	inner recon.EdgeFilter
	inj   *Injector
}

func (f filter) FilterEdges(ctx context.Context, a *recon.Arena, ev *recon.Event, src, dst []int) ([]int, []int, error) {
	if err := f.inj.before(ctx, "filter", Key(ev)); err != nil {
		return nil, nil, err
	}
	return f.inner.FilterEdges(ctx, a, ev, src, dst)
}

type classifier struct {
	inner recon.EdgeClassifier
	inj   *Injector
}

func (c classifier) ScoreEdges(ctx context.Context, a *recon.Arena, eg *recon.EventGraph) ([]float64, error) {
	if err := c.inj.before(ctx, "classify", Key(eg.Event)); err != nil {
		return nil, err
	}
	return c.inner.ScoreEdges(ctx, a, eg)
}

type extractor struct {
	inner recon.TrackExtractor
	inj   *Injector
}

func (x extractor) ExtractTracks(ctx context.Context, eg *recon.EventGraph, keep []bool) ([][]int, error) {
	if err := x.inj.before(ctx, "extract", Key(eg.Event)); err != nil {
		return nil, err
	}
	return x.inner.ExtractTracks(ctx, eg, keep)
}

// WrapEmbedder and friends implement recon.StageWrapper.
func (inj *Injector) WrapEmbedder(e recon.Embedder) recon.Embedder { return embedder{e, inj} }

func (inj *Injector) WrapGraphBuilder(b recon.GraphBuilder) recon.GraphBuilder {
	return builder{b, inj}
}

func (inj *Injector) WrapEdgeFilter(f recon.EdgeFilter) recon.EdgeFilter { return filter{f, inj} }

func (inj *Injector) WrapEdgeClassifier(c recon.EdgeClassifier) recon.EdgeClassifier {
	return classifier{c, inj}
}

func (inj *Injector) WrapTrackExtractor(x recon.TrackExtractor) recon.TrackExtractor {
	return extractor{x, inj}
}
