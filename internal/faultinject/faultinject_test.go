package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/recon"
)

func testEvents(t *testing.T, n int, seed uint64) []*recon.Event {
	t.Helper()
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = n
	return detector.Generate(spec, seed).Events
}

// TestDecisionDeterminism: the fault drawn for a (stage, event) pair is
// a pure function of the config seed and the event structure —
// identical across injector instances and call order.
func TestDecisionDeterminism(t *testing.T) {
	events := testEvents(t, 16, 11)
	cfg := Config{Seed: 7, ErrorRate: 0.2, PanicRate: 0.2, DelayRate: 0.2, Delay: time.Microsecond}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stages := []string{"embed", "build", "filter", "classify", "extract"}
	type draw struct {
		stage string
		f     fault
	}
	var first []draw
	for _, ev := range events {
		for _, st := range stages {
			first = append(first, draw{st, a.decide(st, Key(ev))})
		}
	}
	// Reverse order on a fresh injector must reproduce every decision.
	i := len(first)
	for e := len(events) - 1; e >= 0; e-- {
		for s := len(stages) - 1; s >= 0; s-- {
			i--
			if got := b.decide(stages[s], Key(events[e])); got != first[i].f {
				t.Fatalf("stage %s event %d: decision %v != %v across order/instance", stages[s], e, got, first[i].f)
			}
		}
	}
}

// TestStageIndependence: the same event draws independently per stage —
// with all five stages at rate 1 for one fault kind, every stage fires,
// and with disjoint seeds the victims differ between stages somewhere.
func TestStageIndependence(t *testing.T) {
	events := testEvents(t, 64, 3)
	inj, err := New(Config{Seed: 1, ErrorRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, ev := range events {
		if inj.decide("embed", Key(ev)) != inj.decide("classify", Key(ev)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("embed and classify drew identical faults for 64 events: stage salt is not mixing")
	}
}

// TestRatesRoughlyHonored: at rate 0.5 over 512 distinct events, the
// fired fraction lands in a generous window (the draw is uniform per
// event key).
func TestRatesRoughlyHonored(t *testing.T) {
	events := testEvents(t, 512, 5)
	inj, err := New(Config{Seed: 2, ErrorRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for _, ev := range events {
		if inj.decide("classify", Key(ev)) == faultError {
			fired++
		}
	}
	if frac := float64(fired) / float64(len(events)); frac < 0.35 || frac > 0.65 {
		t.Fatalf("error rate 0.5 fired %.2f of 512 events", frac)
	}
}

// TestWrapperFaultKinds: the wrappers return ErrInjected, panic, and
// delay as decided, and count what they fired.
func TestWrapperFaultKinds(t *testing.T) {
	inj, err := New(Config{Seed: 1, ErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	ev := testEvents(t, 1, 9)[0]
	x := inj.WrapTrackExtractor(nopExtractor{})
	if _, err := x.ExtractTracks(context.Background(), &recon.EventGraph{Event: ev}, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if inj.Stats().Errors != 1 {
		t.Fatalf("stats = %+v, want 1 error", inj.Stats())
	}

	pinj, err := New(Config{Seed: 1, PanicRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PanicRate 1 did not panic")
			}
		}()
		pinj.WrapTrackExtractor(nopExtractor{}).ExtractTracks(context.Background(), &recon.EventGraph{Event: ev}, nil)
	}()
	if pinj.Stats().Panics != 1 {
		t.Fatalf("stats = %+v, want 1 panic", pinj.Stats())
	}

	dinj, err := New(Config{Seed: 1, DelayRate: 1, Delay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := dinj.WrapTrackExtractor(nopExtractor{}).ExtractTracks(context.Background(), &recon.EventGraph{Event: ev}, nil); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay fault did not sleep")
	}
	if dinj.Stats().Delays != 1 {
		t.Fatalf("stats = %+v, want 1 delay", dinj.Stats())
	}
}

// TestDelayHonorsCancellation: a latency spike aborts promptly when the
// context dies mid-sleep.
func TestDelayHonorsCancellation(t *testing.T) {
	inj, err := New(Config{Seed: 1, DelayRate: 1, Delay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ev := testEvents(t, 1, 9)[0]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = inj.WrapTrackExtractor(nopExtractor{}).ExtractTracks(ctx, &recon.EventGraph{Event: ev}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled delay did not abort promptly")
	}
}

// TestConfigValidation rejects bad rates.
func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"negative":     {ErrorRate: -0.1},
		"over one":     {PanicRate: 1.5},
		"sum over one": {ErrorRate: 0.6, PanicRate: 0.6},
		"delay no dur": {DelayRate: 0.5},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: config %+v accepted", name, cfg)
		}
	}
}

type nopExtractor struct{}

func (nopExtractor) ExtractTracks(ctx context.Context, eg *recon.EventGraph, keep []bool) ([][]int, error) {
	return nil, nil
}
