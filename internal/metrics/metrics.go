// Package metrics implements the evaluation quantities the paper reports:
// edge-classification precision and recall (Figure 4), AUC, track-level
// efficiency and fake rate, and the per-phase epoch timers behind the
// stacked bars of Figure 3 (Sampling / Training / AllReduce).
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// BinaryCounts is a binary-classification confusion summary.
type BinaryCounts struct {
	TP, FP, TN, FN int
}

// Add accumulates one prediction.
func (c *BinaryCounts) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && actual:
		c.FN++
	default:
		c.TN++
	}
}

// Merge accumulates another count set.
func (c *BinaryCounts) Merge(o BinaryCounts) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (c BinaryCounts) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (c BinaryCounts) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c BinaryCounts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, 0 when empty.
func (c BinaryCounts) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// FromScores thresholds scores at thresh against binary labels.
func FromScores(scores, labels []float64, thresh float64) BinaryCounts {
	if len(scores) != len(labels) {
		panic("metrics: scores/labels length mismatch")
	}
	var c BinaryCounts
	for i, s := range scores {
		c.Add(s >= thresh, labels[i] > 0.5)
	}
	return c
}

// AUC computes the area under the ROC curve by the rank statistic
// (ties handled by midranks). Returns 0.5 for degenerate label sets.
func AUC(scores, labels []float64) float64 {
	if len(scores) != len(labels) {
		panic("metrics: scores/labels length mismatch")
	}
	type pair struct{ s, y float64 }
	ps := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i := range scores {
		ps[i] = pair{scores[i], labels[i]}
		if labels[i] > 0.5 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })
	// Midrank sum of positives.
	rankSum := 0.0
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if ps[k].y > 0.5 {
				rankSum += midrank
			}
		}
		i = j
	}
	return (rankSum - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg))
}

// TrackMatch summarizes track-level reconstruction quality under the
// double-majority matching rule: a reconstructed candidate matches a
// particle when more than half of the candidate's hits come from the
// particle and the candidate contains more than half of the particle's
// hits.
type TrackMatch struct {
	Reconstructable int // particles with ≥ minHits hits
	Matched         int // particles matched by some candidate
	Candidates      int // reconstructed candidates with ≥ minHits hits
	Fakes           int // candidates matching no particle
}

// Efficiency is matched/reconstructable.
func (t TrackMatch) Efficiency() float64 {
	if t.Reconstructable == 0 {
		return 0
	}
	return float64(t.Matched) / float64(t.Reconstructable)
}

// FakeRate is fakes/candidates.
func (t TrackMatch) FakeRate() float64 {
	if t.Candidates == 0 {
		return 0
	}
	return float64(t.Fakes) / float64(t.Candidates)
}

// MatchTracks applies double-majority matching. candidates are hit-index
// sets (the connected components); hitParticle maps hit→particle id (-1
// noise); trueTracks maps particle id→hits; minHits filters both sides.
func MatchTracks(candidates [][]int, hitParticle []int, trueTracks map[int][]int, minHits int) TrackMatch {
	var tm TrackMatch
	tm.Reconstructable = len(trueTracks)
	matched := make(map[int]bool)
	for _, cand := range candidates {
		if len(cand) < minHits {
			continue
		}
		tm.Candidates++
		// Majority particle within the candidate.
		counts := make(map[int]int)
		for _, h := range cand {
			if p := hitParticle[h]; p >= 0 {
				counts[p]++
			}
		}
		best, bestN := -1, 0
		for p, n := range counts {
			if n > bestN {
				best, bestN = p, n
			}
		}
		truth, ok := trueTracks[best]
		if best >= 0 && ok &&
			2*bestN > len(cand) && // candidate majority from particle
			2*bestN > len(truth) { // candidate holds particle majority
			if !matched[best] {
				matched[best] = true
				tm.Matched++
			}
		} else {
			tm.Fakes++
		}
	}
	return tm
}

// Phase identifies one component of the epoch-time breakdown in Figure 3.
type Phase string

// The phases of Figure 3's stacked bars.
const (
	PhaseSampling  Phase = "Sampling"
	PhaseTraining  Phase = "Training"
	PhaseAllReduce Phase = "AllReduce"
)

// PhaseTimer accumulates wall-clock per phase.
type PhaseTimer struct {
	durations map[Phase]time.Duration
}

// NewPhaseTimer returns an empty timer.
func NewPhaseTimer() *PhaseTimer {
	return &PhaseTimer{durations: make(map[Phase]time.Duration)}
}

// AddDuration adds d to the phase total.
func (p *PhaseTimer) AddDuration(ph Phase, d time.Duration) {
	p.durations[ph] += d
}

// Time runs f, charging its wall time to the phase.
func (p *PhaseTimer) Time(ph Phase, f func()) {
	start := time.Now()
	f()
	p.AddDuration(ph, time.Since(start))
}

// Get returns the accumulated duration of a phase.
func (p *PhaseTimer) Get(ph Phase) time.Duration { return p.durations[ph] }

// Total returns the sum over all phases.
func (p *PhaseTimer) Total() time.Duration {
	var t time.Duration
	for _, d := range p.durations {
		t += d
	}
	return t
}

// Merge adds another timer's accumulations.
func (p *PhaseTimer) Merge(o *PhaseTimer) {
	for ph, d := range o.durations {
		p.durations[ph] += d
	}
}

// String renders the breakdown in a stable order.
func (p *PhaseTimer) String() string {
	return fmt.Sprintf("sampling=%v training=%v allreduce=%v",
		p.Get(PhaseSampling).Round(time.Microsecond),
		p.Get(PhaseTraining).Round(time.Microsecond),
		p.Get(PhaseAllReduce).Round(time.Microsecond))
}

// ConvergencePoint is one epoch of Figure 4.
type ConvergencePoint struct {
	Epoch             int
	Loss              float64
	Precision, Recall float64
}

// History is a training convergence record.
type History struct {
	Points []ConvergencePoint
}

// Append adds one epoch's numbers.
func (h *History) Append(p ConvergencePoint) { h.Points = append(h.Points, p) }

// Final returns the last recorded point (zero value when empty).
func (h *History) Final() ConvergencePoint {
	if len(h.Points) == 0 {
		return ConvergencePoint{}
	}
	return h.Points[len(h.Points)-1]
}

// BestRecall returns the maximum recall across epochs.
func (h *History) BestRecall() float64 {
	best := 0.0
	for _, p := range h.Points {
		if p.Recall > best {
			best = p.Recall
		}
	}
	return best
}

// BestPrecision returns the maximum precision across epochs.
func (h *History) BestPrecision() float64 {
	best := 0.0
	for _, p := range h.Points {
		if p.Precision > best {
			best = p.Precision
		}
	}
	return best
}
