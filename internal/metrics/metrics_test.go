package metrics

import (
	"math"
	"testing"
	"time"
)

func TestBinaryCountsBasics(t *testing.T) {
	var c BinaryCounts
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("counts %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.Accuracy() != 0.5 {
		t.Fatalf("p=%v r=%v a=%v", c.Precision(), c.Recall(), c.Accuracy())
	}
	if math.Abs(c.F1()-0.5) > 1e-12 {
		t.Fatalf("f1=%v", c.F1())
	}
}

func TestBinaryCountsEmpty(t *testing.T) {
	var c BinaryCounts
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty counts should yield zeros")
	}
}

func TestMerge(t *testing.T) {
	a := BinaryCounts{TP: 1, FP: 2, TN: 3, FN: 4}
	b := BinaryCounts{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Merge(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("merged %+v", a)
	}
}

func TestFromScores(t *testing.T) {
	scores := []float64{0.9, 0.2, 0.7, 0.1}
	labels := []float64{1, 0, 0, 1}
	c := FromScores(scores, labels, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestAUCPerfect(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []float64{0, 0, 1, 1}
	if auc := AUC(scores, labels); math.Abs(auc-1) > 1e-12 {
		t.Fatalf("perfect AUC %v", auc)
	}
	inverted := []float64{0.9, 0.8, 0.2, 0.1}
	if auc := AUC(inverted, labels); math.Abs(auc) > 1e-12 {
		t.Fatalf("inverted AUC %v", auc)
	}
}

func TestAUCRandomAndDegenerate(t *testing.T) {
	// Constant scores: every ordering tied → 0.5.
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []float64{1, 0, 1, 0}
	if auc := AUC(scores, labels); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("tied AUC %v", auc)
	}
	if auc := AUC([]float64{1, 2}, []float64{1, 1}); auc != 0.5 {
		t.Fatalf("single-class AUC %v", auc)
	}
}

func TestMatchTracksPerfect(t *testing.T) {
	hitParticle := []int{0, 0, 0, 1, 1, 1, -1}
	trueTracks := map[int][]int{0: {0, 1, 2}, 1: {3, 4, 5}}
	candidates := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	tm := MatchTracks(candidates, hitParticle, trueTracks, 3)
	if tm.Efficiency() != 1.0 {
		t.Fatalf("efficiency %v", tm.Efficiency())
	}
	if tm.FakeRate() != 0 {
		t.Fatalf("fake rate %v", tm.FakeRate())
	}
	if tm.Candidates != 2 { // the singleton is below minHits
		t.Fatalf("candidates %d", tm.Candidates)
	}
}

func TestMatchTracksSplitTrack(t *testing.T) {
	// Track 0 split into two halves: neither half holds a majority of the
	// 6-hit truth, so the particle is unmatched and both halves are fakes.
	hitParticle := []int{0, 0, 0, 0, 0, 0}
	trueTracks := map[int][]int{0: {0, 1, 2, 3, 4, 5}}
	candidates := [][]int{{0, 1, 2}, {3, 4, 5}}
	tm := MatchTracks(candidates, hitParticle, trueTracks, 3)
	if tm.Matched != 0 || tm.Fakes != 2 {
		t.Fatalf("split track: matched %d fakes %d", tm.Matched, tm.Fakes)
	}
}

func TestMatchTracksMergedFake(t *testing.T) {
	// A candidate mixing two particles equally matches neither.
	hitParticle := []int{0, 0, 1, 1}
	trueTracks := map[int][]int{0: {0, 1}, 1: {2, 3}}
	candidates := [][]int{{0, 1, 2, 3}}
	tm := MatchTracks(candidates, hitParticle, trueTracks, 2)
	if tm.Matched != 0 || tm.Fakes != 1 {
		t.Fatalf("merged: matched %d fakes %d", tm.Matched, tm.Fakes)
	}
}

func TestMatchTracksDoubleMatchCountsOnce(t *testing.T) {
	hitParticle := []int{0, 0, 0, 0}
	trueTracks := map[int][]int{0: {0, 1, 2, 3}}
	// Both candidates claim particle 0; only one can match (first wins),
	// but the second fails double-majority anyway (2 hits of 4).
	candidates := [][]int{{0, 1, 2}, {2, 3}}
	tm := MatchTracks(candidates, hitParticle, trueTracks, 2)
	if tm.Matched != 1 {
		t.Fatalf("matched %d, want 1", tm.Matched)
	}
}

func TestPhaseTimer(t *testing.T) {
	pt := NewPhaseTimer()
	pt.AddDuration(PhaseSampling, 100*time.Millisecond)
	pt.AddDuration(PhaseTraining, 50*time.Millisecond)
	pt.AddDuration(PhaseSampling, 25*time.Millisecond)
	if pt.Get(PhaseSampling) != 125*time.Millisecond {
		t.Fatalf("sampling %v", pt.Get(PhaseSampling))
	}
	if pt.Total() != 175*time.Millisecond {
		t.Fatalf("total %v", pt.Total())
	}
	other := NewPhaseTimer()
	other.AddDuration(PhaseAllReduce, time.Second)
	pt.Merge(other)
	if pt.Get(PhaseAllReduce) != time.Second {
		t.Fatal("merge lost allreduce")
	}
}

func TestPhaseTimerTime(t *testing.T) {
	pt := NewPhaseTimer()
	pt.Time(PhaseTraining, func() { time.Sleep(5 * time.Millisecond) })
	if pt.Get(PhaseTraining) < 4*time.Millisecond {
		t.Fatalf("timed %v", pt.Get(PhaseTraining))
	}
}

func TestHistory(t *testing.T) {
	var h History
	h.Append(ConvergencePoint{Epoch: 0, Precision: 0.5, Recall: 0.4})
	h.Append(ConvergencePoint{Epoch: 1, Precision: 0.8, Recall: 0.7})
	h.Append(ConvergencePoint{Epoch: 2, Precision: 0.75, Recall: 0.72})
	if h.Final().Epoch != 2 {
		t.Fatalf("final %+v", h.Final())
	}
	if h.BestPrecision() != 0.8 || h.BestRecall() != 0.72 {
		t.Fatalf("best p=%v r=%v", h.BestPrecision(), h.BestRecall())
	}
	var empty History
	if empty.Final().Epoch != 0 || empty.BestRecall() != 0 {
		t.Fatal("empty history should zero")
	}
}
