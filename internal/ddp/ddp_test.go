package ddp

import (
	"math"
	"testing"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// buildReplicas returns p identically initialized MLPs.
func buildReplicas(p int) [][]*autograd.Param {
	reps := make([][]*autograd.Param, p)
	for r := 0; r < p; r++ {
		m := nn.NewMLP(rng.New(7), "m", nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 1, Activation: nn.Tanh})
		reps[r] = m.Params()
	}
	return reps
}

// fullBatchGrad computes the reference gradient over the whole batch on a
// single replica.
func fullBatchGrad(x *tensor.Dense, y []float64) []*tensor.Dense {
	m := nn.NewMLP(rng.New(7), "m", nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 1, Activation: nn.Tanh})
	params := m.Params()
	tp := autograd.NewTape()
	h := tp.Constant(x)
	var cur *autograd.Node = h
	_ = cur
	out := m.Forward(tp, h)
	loss := tp.BCEWithLogits(out, y, 1)
	tp.Backward(loss)
	grads := make([]*tensor.Dense, len(params))
	for i, p := range params {
		grads[i] = p.Grad.Clone()
	}
	return grads
}

func ddpGrads(t *testing.T, p int, strategy SyncStrategy, x *tensor.Dense, y []float64) ([][]*autograd.Param, *comm.Group) {
	t.Helper()
	reps := buildReplicas(p)
	group := comm.NewGroup(p, comm.NVLink3())
	RunRanks(p, func(rank int) {
		lo, hi := ShardRange(x.Rows(), p, rank)
		// Rebuild the rank's model from its params via a fresh MLP forward:
		// instead, forward manually using the same architecture.
		m := nn.NewMLP(rng.New(7), "m", nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 1, Activation: nn.Tanh})
		params := m.Params()
		nn.CopyParamValues(params, reps[rank])
		tp := autograd.NewTape()
		out := m.Forward(tp, tp.Constant(x.SliceRows(lo, hi)))
		loss := tp.BCEWithLogits(out, y[lo:hi], 1)
		// Average-of-shard-means with equal shards equals the full-batch
		// mean; scale shard loss by shard fraction × P to keep exactness
		// even with unequal shards.
		_ = loss
		tp.Backward(loss)
		// Copy grads back into the shared replica param list.
		for i := range params {
			reps[rank][i].Grad.CopyFrom(params[i].Grad)
		}
		syncer := NewGradSyncer(group, rank, strategy, reps[rank])
		syncer.Sync(reps[rank])
	})
	return reps, group
}

func TestDDPGradMatchesSerial(t *testing.T) {
	r := rng.New(1)
	const n = 16
	x := tensor.RandN(r, n, 4, 1)
	y := make([]float64, n)
	for i := range y {
		y[i] = float64(i % 2)
	}
	want := fullBatchGrad(x, y)
	for _, p := range []int{2, 4} {
		for _, strategy := range []SyncStrategy{PerMatrix, Coalesced} {
			reps, _ := ddpGrads(t, p, strategy, x, y)
			// With equal shards, the mean of shard-mean gradients equals
			// the full-batch mean gradient.
			for rank := range reps {
				for i := range want {
					if diff := reps[rank][i].Grad.MaxAbsDiff(want[i]); diff > 1e-10 {
						t.Fatalf("p=%d %v rank %d param %d: grad diff %v",
							p, strategy, rank, i, diff)
					}
				}
			}
		}
	}
}

func TestCoalescedFewerCalls(t *testing.T) {
	r := rng.New(2)
	const n, p = 8, 2
	x := tensor.RandN(r, n, 4, 1)
	y := make([]float64, n)
	_, gPer := ddpGrads(t, p, PerMatrix, x, y)
	_, gCoal := ddpGrads(t, p, Coalesced, x, y)
	if gCoal.Calls() != 1 {
		t.Fatalf("coalesced made %d collectives, want 1", gCoal.Calls())
	}
	if gPer.Calls() <= gCoal.Calls() {
		t.Fatalf("per-matrix %d calls vs coalesced %d", gPer.Calls(), gCoal.Calls())
	}
	if gCoal.ModeledTime() >= gPer.ModeledTime() {
		t.Fatalf("coalesced modeled %v not faster than per-matrix %v",
			gCoal.ModeledTime(), gPer.ModeledTime())
	}
}

func TestReplicasStayInSyncOverSteps(t *testing.T) {
	// After several DDP steps with a real optimizer, replica values must
	// remain bitwise close to one another.
	const p = 3
	r := rng.New(3)
	const n = 12
	x := tensor.RandN(r, n, 4, 1)
	y := make([]float64, n)
	for i := range y {
		y[i] = float64(i % 2)
	}
	models := make([]*nn.MLP, p)
	opts := make([]*nn.SGD, p)
	for rank := 0; rank < p; rank++ {
		models[rank] = nn.NewMLP(rng.New(7), "m", nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 1, Activation: nn.Tanh})
		opts[rank] = nn.NewSGD(0.1)
	}
	group := comm.NewGroup(p, comm.NVLink3())
	for step := 0; step < 5; step++ {
		RunRanks(p, func(rank int) {
			lo, hi := ShardRange(n, p, rank)
			tp := autograd.NewTape()
			out := models[rank].Forward(tp, tp.Constant(x.SliceRows(lo, hi)))
			loss := tp.BCEWithLogits(out, y[lo:hi], 1)
			tp.Backward(loss)
			NewGradSyncer(group, rank, Coalesced, models[rank].Params()).Sync(models[rank].Params())
			opts[rank].Step(models[rank].Params())
		})
	}
	base := models[0].Params()
	for rank := 1; rank < p; rank++ {
		for i, pp := range models[rank].Params() {
			if diff := pp.Value.MaxAbsDiff(base[i].Value); diff > 1e-12 {
				t.Fatalf("rank %d param %d drifted by %v", rank, i, diff)
			}
		}
	}
}

func TestShardRange(t *testing.T) {
	// All items covered exactly once, shards differ by ≤ 1.
	for _, tc := range []struct{ n, p int }{{10, 3}, {7, 7}, {5, 8}, {256, 4}, {0, 2}} {
		covered := 0
		var sizes []int
		for rank := 0; rank < tc.p; rank++ {
			lo, hi := ShardRange(tc.n, tc.p, rank)
			if lo > hi || lo < 0 || hi > tc.n {
				t.Fatalf("n=%d p=%d rank=%d invalid range [%d,%d)", tc.n, tc.p, rank, lo, hi)
			}
			covered += hi - lo
			sizes = append(sizes, hi-lo)
		}
		if covered != tc.n {
			t.Fatalf("n=%d p=%d covered %d", tc.n, tc.p, covered)
		}
		minSz, maxSz := sizes[0], sizes[0]
		for _, s := range sizes {
			minSz = min(minSz, s)
			if s > maxSz {
				maxSz = s
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("n=%d p=%d shard imbalance %d", tc.n, tc.p, maxSz-minSz)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if PerMatrix.String() != "per-matrix" || Coalesced.String() != "coalesced" {
		t.Fatal("strategy names wrong")
	}
}

func TestSingleRankNoDeadlock(t *testing.T) {
	m := nn.NewMLP(rng.New(7), "m", nn.MLPConfig{In: 2, Hidden: []int{3}, Out: 1, Activation: nn.ReLU})
	group := comm.NewGroup(1, comm.NVLink3())
	params := m.Params()
	for _, p := range params {
		p.Grad.Fill(2)
	}
	NewGradSyncer(group, 0, Coalesced, params).Sync(params)
	if math.Abs(params[0].Grad.At(0, 0)-2) > 1e-15 {
		t.Fatalf("P=1 sync should only average (÷1): got %v", params[0].Grad.At(0, 0))
	}
}

func TestBucketLayout(t *testing.T) {
	m := nn.NewMLP(rng.New(3), "b", nn.MLPConfig{In: 8, Hidden: []int{16, 16}, Out: 4, Activation: nn.ReLU})
	params := m.Params()
	total := nn.GradElements(params)
	for _, bucketBytes := range []int{1, 64, 1024, 1 << 20} {
		buckets := BucketLayout(params, bucketBytes)
		// Buckets must tile [0, total) in reverse order and cover every
		// parameter exactly once.
		seen := make(map[int]bool)
		wantHi := total
		for _, b := range buckets {
			if b.Hi != wantHi {
				t.Fatalf("bucketBytes=%d: bucket hi %d, want %d", bucketBytes, b.Hi, wantHi)
			}
			if b.Lo >= b.Hi {
				t.Fatalf("bucketBytes=%d: empty bucket [%d,%d)", bucketBytes, b.Lo, b.Hi)
			}
			elems := 0
			for _, pi := range b.Params {
				if seen[pi] {
					t.Fatalf("param %d in two buckets", pi)
				}
				seen[pi] = true
				elems += params[pi].Grad.Size()
			}
			if elems != b.Elements() {
				t.Fatalf("bucket [%d,%d) declares %d elements, params sum to %d", b.Lo, b.Hi, b.Elements(), elems)
			}
			// A bucket may exceed the cap only when it holds a single
			// oversized parameter.
			if elems*8 > bucketBytes && len(b.Params) > 1 {
				t.Fatalf("bucketBytes=%d: multi-param bucket of %d bytes", bucketBytes, elems*8)
			}
			wantHi = b.Lo
		}
		if wantHi != 0 {
			t.Fatalf("bucketBytes=%d: buckets do not reach element 0 (stop at %d)", bucketBytes, wantHi)
		}
		if len(seen) != len(params) {
			t.Fatalf("bucketBytes=%d: %d of %d params bucketed", bucketBytes, len(seen), len(params))
		}
	}
	// Bucket 0 must hold the LAST parameters (first gradients ready).
	buckets := BucketLayout(params, 64)
	last := buckets[0].Params[len(buckets[0].Params)-1]
	if last != len(params)-1 {
		t.Fatalf("bucket 0 must end at the final param, got %d", last)
	}
}

func TestBucketedSyncMatchesCoalesced(t *testing.T) {
	const p = 4
	x := tensor.XavierInit(rng.New(99), 16, 4)
	y := make([]float64, 16)
	for i := range y {
		if i%3 == 0 {
			y[i] = 1
		}
	}
	run := func(strategy SyncStrategy, bucketBytes int) ([][]*tensor.Dense, int64) {
		reps := buildReplicas(p)
		group := comm.NewGroup(p, comm.NVLink3())
		syncers := make([]*GradSyncer, p)
		for r := 0; r < p; r++ {
			syncers[r] = NewGradSyncer(group, r, strategy, reps[r])
			syncers[r].BucketBytes = bucketBytes
		}
		RunRanks(p, func(rank int) {
			lo, hi := ShardRange(16, p, rank)
			shard := tensor.New(hi-lo, 4)
			for i := lo; i < hi; i++ {
				for j := 0; j < 4; j++ {
					shard.Set(i-lo, j, x.At(i, j))
				}
			}
			m := nn.NewMLP(rng.New(7), "m", nn.MLPConfig{In: 4, Hidden: []int{8}, Out: 1, Activation: nn.Tanh})
			nn.CopyParamValues(m.Params(), reps[rank])
			tp := autograd.NewTape()
			loss := tp.BCEWithLogits(m.Forward(tp, tp.Constant(shard)), y[lo:hi], 1)
			tp.Backward(loss)
			for i, pr := range reps[rank] {
				pr.Grad.CopyFrom(m.Params()[i].Grad)
			}
			syncers[rank].Sync(reps[rank])
		})
		grads := make([][]*tensor.Dense, p)
		for r := 0; r < p; r++ {
			grads[r] = make([]*tensor.Dense, len(reps[r]))
			for i, pr := range reps[r] {
				grads[r][i] = pr.Grad.Clone()
			}
		}
		return grads, group.Calls()
	}
	coal, coalCalls := run(Coalesced, 0)
	buck, buckCalls := run(Bucketed, 128)
	if coalCalls != 1 {
		t.Fatalf("coalesced calls = %d", coalCalls)
	}
	if buckCalls <= 1 {
		t.Fatalf("bucketed with a 128-byte cap should issue several collectives, got %d", buckCalls)
	}
	for r := 0; r < p; r++ {
		for i := range coal[r] {
			a, b := coal[r][i].Data(), buck[r][i].Data()
			for k := range a {
				if math.Abs(a[k]-b[k]) > 1e-12 {
					t.Fatalf("rank %d param %d elem %d: coalesced %v != bucketed %v", r, i, k, a[k], b[k])
				}
			}
		}
	}
}
