// Package ddp implements distributed data parallelism over simulated
// devices: P rank goroutines each hold a model replica and a shard of the
// batch; after local backward passes, gradients are synchronized with an
// all-reduce and averaged, so every replica takes the identical optimizer
// step (§II-C of the paper).
//
// Two synchronization strategies are provided, matching the paper's
// §III-D comparison: PerMatrix runs one all-reduce per parameter matrix
// (the baseline, paying ring latency once per matrix); Coalesced stacks
// every gradient into one buffer and reduces once.
package ddp

import (
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
)

// SyncStrategy selects how gradients cross the wire.
type SyncStrategy int

const (
	// PerMatrix all-reduces each parameter gradient separately.
	PerMatrix SyncStrategy = iota
	// Coalesced flattens all gradients into one buffer and all-reduces
	// once — the paper's optimization.
	Coalesced
	// Bucketed groups gradients into fixed-size buckets in reverse
	// parameter order (the order backward completes them) and reduces one
	// bucket at a time — the PyTorch-DDP refinement of coalescing that
	// lets communication start before the full backward pass finishes.
	// GradSyncer.Sync reduces the buckets synchronously; the distributed
	// trainer overlaps them with backward.
	Bucketed
)

// String names the strategy for reports.
func (s SyncStrategy) String() string {
	switch s {
	case Coalesced:
		return "coalesced"
	case Bucketed:
		return "bucketed"
	default:
		return "per-matrix"
	}
}

// DefaultBucketBytes is the bucket cap used when none is configured —
// PyTorch DDP's 25 MiB default scaled to this simulation's model sizes.
const DefaultBucketBytes = 256 << 10

// Bucket is one contiguous run of parameters synchronized together. Lo
// and Hi are the half-open element bounds of the bucket inside the
// flattened gradient vector (nn.FlattenGrads order).
type Bucket struct {
	Params []int // indices into the parameter list, ascending
	Lo, Hi int   // flat element bounds [Lo, Hi)
}

// Elements returns the bucket's flattened element count.
func (b Bucket) Elements() int { return b.Hi - b.Lo }

// BucketLayout partitions parameters into buckets of at most bucketBytes
// (8 bytes per element; a single oversized parameter gets its own
// bucket). Buckets are ordered by backward completion: the LAST
// parameters in the list (the classifier head, used latest in the
// forward pass) finish their gradients first, so the final parameters
// form bucket 0. Within a bucket, parameter indices stay ascending so
// flattened bounds are contiguous.
func BucketLayout(params []*autograd.Param, bucketBytes int) []Bucket {
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	offsets := make([]int, len(params)+1)
	for i, p := range params {
		offsets[i+1] = offsets[i] + p.Grad.Size()
	}
	var buckets []Bucket
	hi := len(params)
	for hi > 0 {
		lo := hi
		bytes := 0
		for lo > 0 {
			pb := params[lo-1].Grad.Size() * 8
			if bytes > 0 && bytes+pb > bucketBytes {
				break
			}
			bytes += pb
			lo--
		}
		b := Bucket{Lo: offsets[lo], Hi: offsets[hi]}
		for i := lo; i < hi; i++ {
			b.Params = append(b.Params, i)
		}
		buckets = append(buckets, b)
		hi = lo
	}
	return buckets
}

// GradSyncer synchronizes one rank's gradients across a group. Each rank
// owns its own GradSyncer (the scratch buffer is per-rank state).
type GradSyncer struct {
	Group    *comm.Group
	Rank     int
	Strategy SyncStrategy
	// BucketBytes caps each bucket for the Bucketed strategy
	// (DefaultBucketBytes when zero).
	BucketBytes int

	buf     []float64
	buckets []Bucket
}

// NewGradSyncer creates a syncer for a rank, sizing the coalescing
// buffer for the given parameter set.
func NewGradSyncer(group *comm.Group, rank int, strategy SyncStrategy, params []*autograd.Param) *GradSyncer {
	s := &GradSyncer{Group: group, Rank: rank, Strategy: strategy}
	if strategy == Coalesced || strategy == Bucketed {
		s.buf = make([]float64, nn.GradElements(params))
	}
	return s
}

// Sync all-reduces the parameter gradients and divides by the group size,
// leaving every replica with the mean gradient. Must be called
// concurrently by all ranks.
func (s *GradSyncer) Sync(params []*autograd.Param) {
	switch s.Strategy {
	case Coalesced:
		nn.FlattenGrads(params, s.buf)
		s.Group.AllReduceSum(s.Rank, s.buf)
		nn.UnflattenGrads(params, s.buf)
	case Bucketed:
		// Buckets tile the flat buffer in reverse parameter order; each is
		// reduced as its own collective. Without overlap this costs the
		// same bytes as Coalesced plus (buckets−1) extra latency terms —
		// still at most the PerMatrix latency since buckets ≤ matrices.
		if s.buckets == nil {
			s.buckets = BucketLayout(params, s.BucketBytes)
		}
		nn.FlattenGrads(params, s.buf)
		for _, b := range s.buckets {
			s.Group.AllReduceSum(s.Rank, s.buf[b.Lo:b.Hi])
		}
		nn.UnflattenGrads(params, s.buf)
	default:
		for _, p := range params {
			s.Group.AllReduceSum(s.Rank, p.Grad.Data())
		}
	}
	nn.ScaleGrads(params, 1/float64(s.Group.P))
}

// RunRanks executes body concurrently for ranks 0..p-1 and waits for all
// of them — the harness every DDP experiment uses.
func RunRanks(p int, body func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			body(r)
		}(r)
	}
	wg.Wait()
}

// ShardRange splits n items across p ranks, returning rank's [lo, hi).
// Remainder items go to the lowest ranks, so shards differ by at most 1.
func ShardRange(n, p, rank int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = rank*base + min(rank, rem)
	size := base
	if rank < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
