// Package ddp implements distributed data parallelism over simulated
// devices: P rank goroutines each hold a model replica and a shard of the
// batch; after local backward passes, gradients are synchronized with an
// all-reduce and averaged, so every replica takes the identical optimizer
// step (§II-C of the paper).
//
// Two synchronization strategies are provided, matching the paper's
// §III-D comparison: PerMatrix runs one all-reduce per parameter matrix
// (the baseline, paying ring latency once per matrix); Coalesced stacks
// every gradient into one buffer and reduces once.
package ddp

import (
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
)

// SyncStrategy selects how gradients cross the wire.
type SyncStrategy int

const (
	// PerMatrix all-reduces each parameter gradient separately.
	PerMatrix SyncStrategy = iota
	// Coalesced flattens all gradients into one buffer and all-reduces
	// once — the paper's optimization.
	Coalesced
)

// String names the strategy for reports.
func (s SyncStrategy) String() string {
	if s == Coalesced {
		return "coalesced"
	}
	return "per-matrix"
}

// GradSyncer synchronizes one rank's gradients across a group. Each rank
// owns its own GradSyncer (the scratch buffer is per-rank state).
type GradSyncer struct {
	Group    *comm.Group
	Rank     int
	Strategy SyncStrategy

	buf []float64
}

// NewGradSyncer creates a syncer for a rank, sizing the coalescing
// buffer for the given parameter set.
func NewGradSyncer(group *comm.Group, rank int, strategy SyncStrategy, params []*autograd.Param) *GradSyncer {
	s := &GradSyncer{Group: group, Rank: rank, Strategy: strategy}
	if strategy == Coalesced {
		s.buf = make([]float64, nn.GradElements(params))
	}
	return s
}

// Sync all-reduces the parameter gradients and divides by the group size,
// leaving every replica with the mean gradient. Must be called
// concurrently by all ranks.
func (s *GradSyncer) Sync(params []*autograd.Param) {
	switch s.Strategy {
	case Coalesced:
		nn.FlattenGrads(params, s.buf)
		s.Group.AllReduceSum(s.Rank, s.buf)
		nn.UnflattenGrads(params, s.buf)
	default:
		for _, p := range params {
			s.Group.AllReduceSum(s.Rank, p.Grad.Data())
		}
	}
	nn.ScaleGrads(params, 1/float64(s.Group.P))
}

// RunRanks executes body concurrently for ranks 0..p-1 and waits for all
// of them — the harness every DDP experiment uses.
func RunRanks(p int, body func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer wg.Done()
			body(r)
		}(r)
	}
	wg.Wait()
}

// ShardRange splits n items across p ranks, returning rank's [lo, hi).
// Remainder items go to the lowest ranks, so shards differ by at most 1.
func ShardRange(n, p, rank int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = rank*base + min(rank, rem)
	size := base
	if rank < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
