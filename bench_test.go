// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus kernel microbenchmarks for the substrates.
// Run with: go test -bench=. -benchmem
//
// The experiment benchmarks execute the same harnesses as the cmd tools
// at reduced scale so a full -bench pass completes in minutes on a
// laptop; EXPERIMENTS.md records cmd-tool runs at the calibrated scales.
package repro_test

import (
	"context"
	"testing"
	"time"

	"repro"
	"repro/recon"
)

func benchOptions() repro.ExperimentOptions {
	return repro.ExperimentOptions{
		Scale:           0.02,
		Events:          4,
		Epochs:          2,
		BatchSize:       128,
		Hidden:          8,
		Steps:           2,
		Seed:            7,
		SamplerOverhead: time.Millisecond,
	}
}

// BenchmarkTable1_DatasetGeneration regenerates Table I: synthesizing the
// CTD-like and Ex3-like datasets and measuring their statistics.
func BenchmarkTable1_DatasetGeneration(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := repro.RunTable1(o)
		if len(rows) != 2 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// benchmarkFigure3 measures one (implementation × process-count) cell of
// Figure 3's epoch-time comparison.
func benchmarkFigure3(b *testing.B, procs int) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := repro.RunFigure3(o, []int{procs})
		if len(rows) != 2 {
			b.Fatal("figure 3 incomplete")
		}
		b.ReportMetric(repro.Figure3Speedups(rows)[procs], "speedup")
	}
}

// engineBenchFixture mirrors cmd/bench's engine fixture: a 32-event
// batch and an untrained reconstructor.
func engineBenchFixture(b *testing.B) (*recon.Reconstructor, []*repro.Event) {
	b.Helper()
	spec := repro.Ex3Like(0.03)
	spec.NumEvents = 32
	ds := repro.GenerateDataset(spec, 3)
	r, err := recon.New(spec, recon.WithSeed(5))
	if err != nil {
		b.Fatal(err)
	}
	return r, ds.Events
}

// benchmarkEngineBatch measures ReconstructBatch throughput at a worker
// count; compare against workers=1 (or the serial loop in cmd/bench)
// for the multi-worker speedup tracked in BENCH_*.json.
func benchmarkEngineBatch(b *testing.B, workers int) {
	r, events := engineBenchFixture(b)
	eng, err := recon.NewEngine(r, recon.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ReconstructBatch(ctx, events); err != nil {
			b.Fatal(err)
		}
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N*len(events))/b.Elapsed().Seconds(), "events/s")
	}
}

// BenchmarkEngine_ReconstructBatch_W1 runs the engine single-worker.
func BenchmarkEngine_ReconstructBatch_W1(b *testing.B) { benchmarkEngineBatch(b, 1) }

// BenchmarkEngine_ReconstructBatch_W4 runs the engine with 4 workers.
func BenchmarkEngine_ReconstructBatch_W4(b *testing.B) { benchmarkEngineBatch(b, 4) }

// BenchmarkFigure3_EpochTime_P1 regenerates the P=1 bars of Figure 3.
func BenchmarkFigure3_EpochTime_P1(b *testing.B) { benchmarkFigure3(b, 1) }

// BenchmarkFigure3_EpochTime_P4 regenerates the P=4 bars of Figure 3.
func BenchmarkFigure3_EpochTime_P4(b *testing.B) { benchmarkFigure3(b, 4) }

// BenchmarkFigure3_EpochTime_P8 regenerates the P=8 bars of Figure 3.
func BenchmarkFigure3_EpochTime_P8(b *testing.B) { benchmarkFigure3(b, 8) }

// BenchmarkFigure4_Convergence regenerates Figure 4's three convergence
// curves (full-graph vs PyG-style ShaDow vs ours) at reduced epochs.
func BenchmarkFigure4_Convergence(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		res := repro.RunFigure4(o)
		if len(res.Ours.Points) != o.Epochs {
			b.Fatal("figure 4 incomplete")
		}
		b.ReportMetric(res.Ours.Final().Recall, "recall")
	}
}

// BenchmarkAblation_AllReduce regenerates the §III-D all-reduce
// comparison (per-matrix vs coalesced across process counts).
func BenchmarkAblation_AllReduce(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := repro.RunAllReduceAblation(o, []int{2, 4, 8}, 5)
		if len(rows) != 6 {
			b.Fatal("ablation incomplete")
		}
	}
}

// BenchmarkAblation_BulkK regenerates the §IV-C bulk-batch-count sweep.
func BenchmarkAblation_BulkK(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := repro.RunBulkKAblation(o, []int{1, 4})
		if len(rows) != 2 {
			b.Fatal("ablation incomplete")
		}
	}
}

// BenchmarkAblation_BatchSize regenerates the batch-size generalization
// sweep.
func BenchmarkAblation_BatchSize(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := repro.RunBatchSizeAblation(o, []int{64, 256})
		if len(rows) != 2 {
			b.Fatal("ablation incomplete")
		}
	}
}

// BenchmarkPipeline_Reconstruct measures full five-stage inference on one
// event (the production workload of the library).
func BenchmarkPipeline_Reconstruct(b *testing.B) {
	spec := repro.Ex3Like(0.03)
	spec.NumEvents = 2
	ds := repro.GenerateDataset(spec, 3)
	p := repro.NewPipeline(repro.DefaultPipelineConfig(spec), 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reconstruct(ds.Events[i%len(ds.Events)])
	}
}

// BenchmarkDetector_GenerateEvent measures the event simulator.
func BenchmarkDetector_GenerateEvent(b *testing.B) {
	spec := repro.Ex3Like(0.1)
	spec.NumEvents = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repro.GenerateDataset(spec, uint64(i))
	}
}
