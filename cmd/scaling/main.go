// Command scaling sweeps the distributed bulk-sampled trainer across
// rank counts × bulk batch stacking × sync strategies and emits the
// paper's strong-scaling table (Figures 5–6 shape) as a BENCH-style JSON
// record: per-cell epoch wall time, sampling/training phase maxima,
// modeled α–β collective time, charged calls and logical bytes, and the
// final loss.
//
// Two cross-cell checks are embedded in the record:
//
//   - parity_ok: every cell produced the bit-identical loss trajectory —
//     the determinism guarantee of recon.TrainDistributed observed over
//     the whole sweep.
//   - comm_claim_ok: at every P, coalesced and bucketed modeled
//     collective time ≤ per-matrix — the paper's §III-D claim under the
//     α–β model.
//
// Usage:
//
//	go run ./cmd/scaling -ranks 1,2,4 -bulk 1,4 -epochs 2 -out BENCH_3.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/sampling"
)

// CellResult is one sweep cell's measurement.
type CellResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"` // wall ns per epoch
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is the BENCH_*.json schema (see PERF.md).
type Record struct {
	SchemaVersion int          `json:"schema_version"`
	Date          string       `json:"date"`
	GoVersion     string       `json:"go_version"`
	GOOS          string       `json:"goos"`
	GOARCH        string       `json:"goarch"`
	MaxProcs      int          `json:"maxprocs"`
	Protocol      string       `json:"protocol"`
	Benchmarks    []CellResult `json:"benchmarks"`
	ParityOK      bool         `json:"parity_ok"`
	CommClaimOK   bool         `json:"comm_claim_ok"`
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			log.Fatalf("bad int list entry %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		log.Fatal("empty int list")
	}
	return out
}

func main() {
	ranksFlag := flag.String("ranks", "1,2,4", "comma-separated rank counts")
	bulkFlag := flag.String("bulk", "1,4", "comma-separated bulk batch counts k")
	strategiesFlag := flag.String("strategies", "permatrix,coalesced,bucketed", "sync strategies to sweep")
	epochs := flag.Int("epochs", 2, "epochs per cell")
	batch := flag.Int("batch", 64, "global batch size")
	hidden := flag.Int("hidden", 16, "GNN hidden width")
	steps := flag.Int("steps", 3, "GNN message-passing steps")
	events := flag.Int("events", 4, "synthetic events")
	scale := flag.Float64("scale", 0.02, "dataset scale")
	bucketBytes := flag.Int("bucket-bytes", 4096, "bucket cap for the bucketed strategy")
	gradBlocks := flag.Int("grad-blocks", 8, "canonical gradient micro-blocks per step")
	seed := flag.Uint64("seed", 7, "seed")
	out := flag.String("out", "", "write BENCH-style JSON to this path (empty: stdout only)")
	flag.Parse()

	ranks := parseInts(*ranksFlag)
	bulks := parseInts(*bulkFlag)
	strategies := map[string]repro.SyncStrategy{}
	var strategyOrder []string
	for _, s := range strings.Split(*strategiesFlag, ",") {
		switch strings.TrimSpace(s) {
		case "permatrix":
			strategies["permatrix"] = repro.PerMatrixSync
		case "coalesced":
			strategies["coalesced"] = repro.CoalescedSync
		case "bucketed":
			strategies["bucketed"] = repro.BucketedSync
		case "":
			continue
		default:
			log.Fatalf("unknown strategy %q", s)
		}
		strategyOrder = append(strategyOrder, strings.TrimSpace(s))
	}

	spec := repro.Ex3Like(*scale)
	spec.NumEvents = *events
	ds := repro.GenerateDataset(spec, 42)
	p := repro.NewPipeline(repro.DefaultPipelineConfig(spec), 44)
	var graphs []*repro.EventGraph
	for i, ev := range ds.Events {
		graphs = append(graphs, p.BuildTruthLevelGraph(ev, 1.5, uint64(200+i)))
	}
	gnn := repro.GNNConfig{
		NodeFeatures: spec.VertexFeatures,
		EdgeFeatures: spec.EdgeFeatures,
		Hidden:       *hidden,
		Steps:        *steps,
	}

	rec := Record{
		SchemaVersion: 1,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		MaxProcs:      runtime.GOMAXPROCS(0),
		Protocol: fmt.Sprintf("cmd/scaling: ranks %v × bulk %v × strategies %v; %d epochs, batch %d, "+
			"hidden %d, steps %d, %d truth-level Ex3 events @ scale %v, grad-blocks %d, bucket-bytes %d, seed %d. "+
			"ns_per_op is measured wall time per epoch (host-core contention included; modeled comm excluded); "+
			"comm_modeled_ns is the α–β ring time of the charged logical collectives.",
			ranks, bulks, strategyOrder, *epochs, *batch, *hidden, *steps, *events, *scale, *gradBlocks, *bucketBytes, *seed),
		ParityOK:    true,
		CommClaimOK: true,
	}

	ctx := context.Background()
	var refTrajectory []float64
	modeledByP := map[int]map[string]float64{}

	for _, P := range ranks {
		modeledByP[P] = map[string]float64{}
		for _, stratName := range strategyOrder {
			for _, k := range bulks {
				cfg := repro.DefaultDistTrainerConfig(gnn)
				cfg.Epochs = *epochs
				cfg.BatchSize = *batch
				cfg.Shadow = sampling.Config{Depth: 2, Fanout: 4}
				cfg.LR = 3e-3
				cfg.Ranks = P
				cfg.Strategy = strategies[stratName]
				cfg.BucketBytes = *bucketBytes
				cfg.BulkBatches = k
				cfg.GradBlocks = *gradBlocks
				cfg.Seed = *seed
				tr := repro.NewDistTrainer(cfg)

				var trajectory []float64
				var sampT, trainT, commModeled time.Duration
				var stepCount int
				start := time.Now()
				for e := 0; e < *epochs; e++ {
					stats, err := tr.TrainEpoch(ctx, graphs)
					if err != nil {
						log.Fatal(err)
					}
					trajectory = append(trajectory, stats.StepLosses...)
					sampT += stats.Timer.Get("Sampling")
					trainT += stats.Timer.Get("Training")
					commModeled += stats.Comm.Modeled
					stepCount += stats.Steps
				}
				wall := time.Since(start)
				cs := tr.CommStats()
				if len(trajectory) == 0 {
					log.Fatalf("%s: sweep produced no optimizer steps — dataset too small for the configured batch size", fmt.Sprintf("Scaling_P%d_k%d_%s", P, k, stratName))
				}

				if refTrajectory == nil {
					refTrajectory = trajectory
				} else if !equal(refTrajectory, trajectory) {
					rec.ParityOK = false
				}
				modeledByP[P][stratName] += float64(commModeled)

				name := fmt.Sprintf("Scaling_P%d_k%d_%s", P, k, stratName)
				cell := CellResult{
					Name:       name,
					Iterations: *epochs,
					NsPerOp:    float64(wall.Nanoseconds()) / float64(*epochs),
					Metrics: map[string]float64{
						"steps_per_epoch": float64(stepCount) / float64(*epochs),
						"sampling_ns":     float64(sampT.Nanoseconds()) / float64(*epochs),
						"training_ns":     float64(trainT.Nanoseconds()) / float64(*epochs),
						"comm_modeled_ns": float64(commModeled.Nanoseconds()) / float64(*epochs),
						// Run totals (across all epochs, including the
						// one-time weight broadcast), unlike the per-epoch
						// *_ns siblings.
						"comm_calls_total":         float64(cs.Calls),
						"comm_logical_bytes_total": float64(cs.LogicalBytes),
						"buckets_per_step":         float64(tr.NumBuckets()),
						"final_loss":               trajectory[len(trajectory)-1],
						"ranks":                    float64(P),
						"bulk_batches":             float64(k),
						"events":                   float64(len(graphs)),
						"trajectory_identity":      boolMetric(refTrajectory != nil && equal(refTrajectory, trajectory)),
					},
				}
				rec.Benchmarks = append(rec.Benchmarks, cell)
				fmt.Printf("%-34s epoch=%8.2fms sampling=%7.2fms training=%8.2fms comm=%9.3fµs calls=%4d loss=%.6f\n",
					name, ms(cell.NsPerOp), ms(cell.Metrics["sampling_ns"]), ms(cell.Metrics["training_ns"]),
					cell.Metrics["comm_modeled_ns"]/1e3, cs.Calls, cell.Metrics["final_loss"])
			}
		}
		if pm, ok := modeledByP[P]["permatrix"]; ok {
			for _, s := range []string{"coalesced", "bucketed"} {
				if v, ok := modeledByP[P][s]; ok && v > pm {
					rec.CommClaimOK = false
				}
			}
		}
	}

	fmt.Printf("\nparity_ok=%v comm_claim_ok=%v\n", rec.ParityOK, rec.CommClaimOK)
	if !rec.ParityOK || !rec.CommClaimOK {
		defer os.Exit(1)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rec); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}

func ms(ns float64) float64 { return ns / 1e6 }

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
