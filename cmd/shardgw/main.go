// Command shardgw fronts a fleet of cmd/serve engine shards with the
// recon.ShardGateway: incoming reconstruction requests are partitioned
// across shards by consistent hashing (stable events keep hitting the
// same shard), unhealthy shards are evicted and traffic rerouted to the
// least-loaded survivor, and the admission contract of a single server
// is preserved — 429 + Retry-After when every shard is saturated, 503
// when none is available or the gateway itself is draining.
//
// Because every shard runs the same deterministic engine, which shard
// serves an event never changes a bit of the result.
//
// Endpoints (same surface as cmd/serve):
//
//	POST /v1/reconstruct  partitioned across shards, merged in order
//	GET  /healthz         200 while ≥1 shard is healthy, 503 otherwise
//	GET  /statz           gateway counters plus a per-shard breakdown:
//	                      state, routed events, rejections, evictions
//
// Example, two local shards:
//
//	serve -addr :8081 -truth-graphs 1.0 &
//	serve -addr :8082 -truth-graphs 1.0 &
//	shardgw -addr :8080 -shards http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/recon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082)")
	healthInterval := flag.Duration("health-interval", time.Second, "how often to probe each shard's /healthz")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures (probe or proxy) that evict a shard")
	proxyTimeout := flag.Duration("proxy-timeout", 30*time.Second, "per-sub-request deadline against a shard")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM waits for in-flight requests before a hard stop")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes (413 beyond it)")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("shardgw: -shards must list at least one shard URL")
	}

	gw, err := recon.NewShardGateway(urls,
		recon.WithHealthInterval(*healthInterval),
		recon.WithFailThreshold(*failThreshold),
		recon.WithProxyTimeout(*proxyTimeout),
		recon.WithDrainTimeout(*drainTimeout),
		recon.WithMaxBodyBytes(*maxBody))
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("draining: waiting up to %v for in-flight requests", *drainTimeout)
	}()

	log.Printf("gateway on %s over %d shards (health-interval=%v fail-threshold=%d)",
		*addr, len(urls), *healthInterval, *failThreshold)
	if err := gw.Serve(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("drain complete")
}
