// Command table1 regenerates Table I of the paper: the dataset summary
// for CTD and Ex3, printing the paper's reference values next to the
// measured statistics of the synthetic datasets at the chosen scale.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
)

func main() {
	scale := flag.Float64("scale", 0.02, "dataset scale factor (1 = paper size)")
	events := flag.Int("events", 80, "event graphs per dataset (paper: 80)")
	seed := flag.Uint64("seed", 7, "generation seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rows, err := repro.Table1(ctx, repro.ExperimentOptions{
		Scale:  *scale,
		Events: *events,
		Seed:   *seed,
	})
	if err != nil {
		log.Fatalf("interrupted: %v", err)
	}
	fmt.Println("TABLE I: Datasets used in our experiments (measured @ scale", *scale, "| paper @ scale 1)")
	fmt.Printf("%-5s %7s %14s %14s %10s %9s %9s | %14s %14s\n",
		"Name", "Graphs", "AvgVertices", "AvgEdges", "MLPLayers", "VtxFeats", "EdgFeats",
		"PaperVertices", "PaperEdges")
	for _, r := range rows {
		fmt.Printf("%-5s %7d %14.1f %14.1f %10d %9d %9d | %13.1fK %13.1fK\n",
			r.Name, r.Graphs, r.AvgVertices, r.AvgEdges,
			r.MLPLayers, r.VertexFeatures, r.EdgeFeatures,
			r.PaperVertices/1e3, r.PaperEdges/1e3)
	}
}
