package main

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// This file implements -tile-sweep: the cache-blocking autotuner. For
// each precision it times the tiled GEMM across an MR×JB grid and the
// blocked incidence-SpMM across a column-band grid, against the flat
// kernels as the MR=-1/Band=-1 baseline rows. The fastest shapes become
// the process default (kernels.SetDefaultTiling) before the main suite
// runs, and the whole sweep — every candidate's ns/op plus the chosen
// Tiling — lands in the record's tile_sweep section so the selection is
// reproducible from the JSON alone. Tiles never change results (see the
// blocked-kernel parity tests), so the sweep is purely a performance
// search.

// TileSweepEntry is one (precision, axis, shape) timing. GEMM entries
// carry MR/JB (MR -1 = flat kernel); SpMM entries carry Band (-1 =
// flat CSR).
type TileSweepEntry struct {
	Precision string  `json:"precision"` // "f64", "f32", "i8"
	Axis      string  `json:"axis"`      // "gemm", "spmm"
	MR        int     `json:"mr,omitempty"`
	JB        int     `json:"jb,omitempty"`
	Band      int     `json:"band,omitempty"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// TileSweep is the record section the autotuner emits.
type TileSweep struct {
	Quick   bool             `json:"quick,omitempty"`
	Entries []TileSweepEntry `json:"entries"`
	Chosen  kernels.Tiling   `json:"chosen"`
}

// sweepGrids returns the candidate shapes. The full grid covers every
// implemented micro-kernel height and the plausible panel/band range for
// the L1/L2 sizes of commodity hosts; quick keeps one row per axis
// decision so the CI smoke finishes in seconds.
func sweepGrids(quick bool) (gemm []kernels.TileShape, bands []int) {
	if quick {
		return []kernels.TileShape{
			{MR: 1, JB: 512},
			{MR: 4, JB: 512},
		}, []int{256, 1024}
	}
	for _, mr := range []int{1, 2, 4} {
		for _, jb := range []int{64, 128, 256, 512} {
			gemm = append(gemm, kernels.TileShape{MR: mr, JB: jb})
		}
	}
	return gemm, []int{128, 256, 512, 1024, 2048}
}

// benchNs times fn once under testing.Benchmark and returns ns/op.
func benchNs(fn func(b *testing.B)) float64 {
	r := testing.Benchmark(fn)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// sweepSizes returns the sweep fixture dimensions; quick shrinks them so
// each candidate's 1s measurement spends its iterations on small ops.
func sweepSizes(quick bool) (gemmRows, edges, nodes, cols int) {
	if quick {
		return 1024, 4096, 1000, 32
	}
	return 4096, 8192, 2000, 32
}

// runTileSweep measures every candidate and returns the sweep section
// with the fastest GEMM (MR, JB) and SpMM Band per precision.
func runTileSweep(quick bool) *TileSweep {
	sw := &TileSweep{Quick: quick}
	gemmGrid, bandGrid := sweepGrids(quick)
	gemmRows, edges, nodes, cols := sweepSizes(quick)

	// Fixtures are shared across candidates of one precision so every
	// entry times identical work.
	a64 := benchMat(gemmRows, 64, 1)
	w64 := benchMat(64, 64, 2)
	o64 := tensor.New(gemmRows, 64)
	a32 := tensor.ConvertFrom[float32](nil, a64)
	w32 := tensor.ConvertFrom[float32](nil, w64)
	o32 := tensor.NewOf[float32](gemmRows, 64)
	aQ := benchQMat(gemmRows, 64, 1)
	wQ := tensor.QuantizeWeights(w64)
	biasQ := make([]float32, 64)
	oQ := tensor.NewQMat(gemmRows, 64, 0)

	idx, _ := benchEdges(edges, nodes, 3)
	x64 := benchMat(edges, cols, 4)
	s64 := tensor.New(nodes, cols)
	x32 := tensor.ConvertFrom[float32](nil, x64)
	s32 := tensor.NewOf[float32](nodes, cols)
	xQ := benchQMat(edges, cols, 4)
	sQ := tensor.NewQMat(nodes, cols, 0)

	gemmRunners := map[string]func(ts kernels.TileShape, b *testing.B){
		"f64": func(ts kernels.TileShape, b *testing.B) {
			kc := kernels.Context{Tiles: kernels.Tiling{F64: ts}}
			for i := 0; i < b.N; i++ {
				tensor.MatMulIntoCtx(kc, o64, a64, w64)
			}
		},
		"f32": func(ts kernels.TileShape, b *testing.B) {
			kc := kernels.Context{Tiles: kernels.Tiling{F32: ts}}
			for i := 0; i < b.N; i++ {
				tensor.MatMulIntoCtx(kc, o32, a32, w32)
			}
		},
		"i8": func(ts kernels.TileShape, b *testing.B) {
			kc := kernels.Context{Tiles: kernels.Tiling{I8: ts}}
			for i := 0; i < b.N; i++ {
				tensor.QMatMulBiasReLUQuantInto(kc, oQ, aQ, wQ, biasQ, 0.05)
			}
		},
	}
	spmmRunners := map[string]func(band int, b *testing.B){
		"f64": func(band int, b *testing.B) {
			if band < 0 {
				s := sparse.IncidenceInto(sparse.NewCSR(0, 0), nodes, idx)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.SpMMIntoCtx(kernels.Context{}, s64, s, x64)
				}
				return
			}
			s := sparse.BlockedIncidenceInto(new(sparse.BlockedCSROf[float64]), nodes, idx, band)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.BlockedSpMMIntoCtx(kernels.Context{}, s64, s, x64)
			}
		},
		"f32": func(band int, b *testing.B) {
			if band < 0 {
				s := sparse.IncidenceInto(sparse.NewCSROf[float32](0, 0), nodes, idx)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.SpMMIntoCtx(kernels.Context{}, s32, s, x32)
				}
				return
			}
			s := sparse.BlockedIncidenceInto(new(sparse.BlockedCSROf[float32]), nodes, idx, band)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.BlockedSpMMIntoCtx(kernels.Context{}, s32, s, x32)
			}
		},
		"i8": func(band int, b *testing.B) {
			if band < 0 {
				s := sparse.QIncidenceInto(&sparse.QCSR{}, nodes, idx)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sparse.QSpMMQuantInto(kernels.Context{}, sQ, s, xQ, 0.05)
				}
				return
			}
			s := sparse.QBlockedIncidenceInto(&sparse.QBlockedCSR{}, nodes, idx, band)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.QBlockedSpMMQuantInto(kernels.Context{}, sQ, s, xQ, 0.05)
			}
		},
	}

	precisions := []string{"f64", "f32", "i8"}
	best := map[string]kernels.TileShape{}
	for _, p := range precisions {
		run := gemmRunners[p]
		bestNs, bestShape := 0.0, kernels.TileShape{MR: -1}
		candidates := append([]kernels.TileShape{{MR: -1}}, gemmGrid...)
		for _, ts := range candidates {
			ts := ts
			fmt.Fprintf(os.Stderr, "tile-sweep: %s gemm mr=%d jb=%d...\n", p, ts.MR, ts.JB)
			ns := benchNs(func(b *testing.B) { run(ts, b) })
			sw.Entries = append(sw.Entries, TileSweepEntry{
				Precision: p, Axis: "gemm", MR: ts.MR, JB: ts.JB, NsPerOp: ns,
			})
			if bestNs == 0 || ns < bestNs {
				bestNs, bestShape = ns, ts
			}
		}
		best[p] = bestShape
	}
	for _, p := range precisions {
		run := spmmRunners[p]
		bestNs, bestBand := 0.0, -1
		for _, band := range append([]int{-1}, bandGrid...) {
			band := band
			fmt.Fprintf(os.Stderr, "tile-sweep: %s spmm band=%d...\n", p, band)
			ns := benchNs(func(b *testing.B) { run(band, b) })
			sw.Entries = append(sw.Entries, TileSweepEntry{
				Precision: p, Axis: "spmm", Band: band, NsPerOp: ns,
			})
			if bestNs == 0 || ns < bestNs {
				bestNs, bestBand = ns, band
			}
		}
		sh := best[p]
		sh.Band = bestBand
		best[p] = sh
	}
	sw.Chosen = kernels.Tiling{F64: best["f64"], F32: best["f32"], I8: best["i8"]}
	fmt.Fprintf(os.Stderr, "tile-sweep: chosen f64=%+v f32=%+v i8=%+v\n",
		sw.Chosen.F64, sw.Chosen.F32, sw.Chosen.I8)
	return sw
}

// assertTileSweep is the CI smoke check: the sweep must have actually
// explored the shape space (≥2 distinct MR values and ≥2 band widths
// beyond the flat baselines, per precision) and each chosen shape must
// be one of the swept candidates — i.e. a non-default tile is genuinely
// selectable, not hardwired.
func assertTileSweep(sw *TileSweep) error {
	type axisKey struct{ precision, axis string }
	mrSeen := map[axisKey]map[int]bool{}
	bandSeen := map[axisKey]map[int]bool{}
	for _, e := range sw.Entries {
		k := axisKey{e.Precision, e.Axis}
		switch e.Axis {
		case "gemm":
			if mrSeen[k] == nil {
				mrSeen[k] = map[int]bool{}
			}
			mrSeen[k][e.MR] = true
		case "spmm":
			if bandSeen[k] == nil {
				bandSeen[k] = map[int]bool{}
			}
			bandSeen[k][e.Band] = true
		}
	}
	chosen := map[string]kernels.TileShape{
		"f64": sw.Chosen.F64, "f32": sw.Chosen.F32, "i8": sw.Chosen.I8,
	}
	for p, sh := range chosen {
		mr := mrSeen[axisKey{p, "gemm"}]
		tiledMRs := 0
		for v := range mr {
			if v > 0 {
				tiledMRs++
			}
		}
		if tiledMRs < 2 {
			return fmt.Errorf("%s gemm sweep covered %d tiled MR values, want ≥2", p, tiledMRs)
		}
		if !mr[sh.MR] {
			return fmt.Errorf("%s chosen MR=%d was never swept", p, sh.MR)
		}
		bands := bandSeen[axisKey{p, "spmm"}]
		tiledBands := 0
		for v := range bands {
			if v > 0 {
				tiledBands++
			}
		}
		if tiledBands < 2 {
			return fmt.Errorf("%s spmm sweep covered %d band widths, want ≥2", p, tiledBands)
		}
		if !bands[sh.Band] {
			return fmt.Errorf("%s chosen Band=%d was never swept", p, sh.Band)
		}
	}
	return nil
}

// attachTileMetrics labels every GEMM row with the tile shape it ran at
// (tile_mr/tile_jb) and every SpMM row with its column band
// (tile_band), resolved from the active process default per the row's
// precision suffix — so a record is self-describing about the layout
// its numbers were measured under. -1 marks the flat kernel.
func attachTileMetrics(rec *Record) {
	tiles := kernels.DefaultTiling().Resolve()
	for i := range rec.Benchmarks {
		b := &rec.Benchmarks[i]
		sh := tiles.F64
		switch {
		case strings.HasSuffix(b.Name, "_f32"):
			sh = tiles.F32
		case strings.HasSuffix(b.Name, "_i8"):
			sh = tiles.I8
		}
		isGEMM := strings.Contains(b.Name, "MatMul")
		isSpMM := strings.Contains(b.Name, "SpMM")
		if !isGEMM && !isSpMM {
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		if isGEMM {
			b.Metrics["tile_mr"] = float64(sh.MR)
			b.Metrics["tile_jb"] = float64(sh.JB)
		}
		if isSpMM {
			b.Metrics["tile_band"] = float64(sh.Band)
		}
	}
}
