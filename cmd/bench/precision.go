package main

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/recon"
)

// This file holds the precision benchmark family: every row exists as
// an _f64/_f32 twin over identical fixtures (the f32 operands are the
// rounded f64 operands), so cmd/benchdiff's pair mode
// (-pair _f64:_f32) reports the float32 speed and bytes-moved ratios
// directly and CI gates the B/op reduction mechanically. The kernel
// twins allocate their outputs inside the timed loop on purpose: B/op
// then measures the bytes the kernel writes per op, which is the
// bandwidth claim under test (f32 must move ≥25% fewer).
//
// PR 9 adds _i8 twins for the quantized kernels (SpMM, the GEMM, and
// the end-to-end engine): same fixtures quantized symmetrically, output
// allocated in the timed loop, so `-pair _f32:_i8 -pair-min-bytes-drop
// 40` gates the int8 bandwidth claim the same way.

func benchCSR32(n, nnzPerRow int, seed uint64) *sparse.CSR32 {
	return sparse.ConvertCSR[float32](benchCSR(n, nnzPerRow, seed))
}

func benchMat32(rows, cols int, seed uint64) *tensor.Dense32 {
	return tensor.ConvertFrom[float32](nil, benchMat(rows, cols, seed))
}

// benchQMat quantizes the shared f64 fixture at its own maxabs/127
// per-tensor scale — the same scheme the calibrated inference path uses.
func benchQMat(rows, cols int, seed uint64) *tensor.QMat {
	src := benchMat(rows, cols, seed)
	maxAbs := 0.0
	for _, v := range src.Data() {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 127
	}
	q := tensor.NewQMat(rows, cols, 0)
	tensor.QuantizeInto(kernels.Context{}, q, tensor.ConvertFrom[float32](nil, src), float32(maxAbs/127))
	return q
}

// precisionSuite returns the _f64/_f32 twin rows.
func precisionSuite() []namedBench {
	return []namedBench{
		{"BenchmarkSpMM_f64", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			x := benchMat(2000, 32, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.SpMM(a, x)
			}
		}},
		{"BenchmarkSpMM_f32", func(b *testing.B) {
			a := benchCSR32(2000, 8, 1)
			x := benchMat32(2000, 32, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.SpMM(a, x)
			}
		}},
		{"BenchmarkSpMM_i8", func(b *testing.B) {
			a := sparse.QuantizeCSR(benchCSR(2000, 8, 1))
			x := benchQMat(2000, 32, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewQMat(2000, 32, 0)
				sparse.QSpMMQuantInto(kernels.Context{}, out, a, x, 0.05)
			}
		}},
		{"BenchmarkMatMul_f64", func(b *testing.B) {
			a := benchMat(4096, 64, 1)
			w := benchMat(64, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(a, w)
			}
		}},
		{"BenchmarkMatMul_f32", func(b *testing.B) {
			a := benchMat32(4096, 64, 1)
			w := benchMat32(64, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(a, w)
			}
		}},
		{"BenchmarkMatMul_i8", func(b *testing.B) {
			a := benchQMat(4096, 64, 1)
			w := tensor.QuantizeWeights(benchMat(64, 64, 2))
			bias := make([]float32, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewQMat(4096, 64, 0)
				tensor.QMatMulBiasReLUQuantInto(kernels.Context{}, out, a, w, bias, 0.05)
			}
		}},
		{"BenchmarkSpMMAdd_f64", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			x := benchMat(2000, 32, 3)
			res := benchMat(2000, 32, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.New(2000, 32)
				sparse.SpMMAddInto(out, a, x, res)
			}
		}},
		{"BenchmarkSpMMAdd_f32", func(b *testing.B) {
			a := benchCSR32(2000, 8, 1)
			x := benchMat32(2000, 32, 3)
			res := benchMat32(2000, 32, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewOf[float32](2000, 32)
				sparse.SpMMAddInto(out, a, x, res)
			}
		}},
		{"BenchmarkAddBiasReLU_f64", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			bias := benchMat(1, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.New(4096, 64)
				tensor.AddBiasReLUInto(out, x, bias)
			}
		}},
		{"BenchmarkAddBiasReLU_f32", func(b *testing.B) {
			x := benchMat32(4096, 64, 1)
			bias := benchMat32(1, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewOf[float32](4096, 64)
				tensor.AddBiasReLUInto(out, x, bias)
			}
		}},
		{"BenchmarkGatherConcat3_f64", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			e := benchMat(8192, 16, 2)
			src, dst := benchEdges(8192, 4096, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.New(8192, 16+64+64)
				tensor.GatherConcat3Into(out, e, nil, x, src, x, dst)
			}
		}},
		{"BenchmarkGatherConcat3_f32", func(b *testing.B) {
			x := benchMat32(4096, 64, 1)
			e := benchMat32(8192, 16, 2)
			src, dst := benchEdges(8192, 4096, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewOf[float32](8192, 16+64+64)
				tensor.GatherConcat3Into(out, e, nil, x, src, x, dst)
			}
		}},
		{"BenchmarkEngine_Reconstruct_f64", func(b *testing.B) {
			f := precisionEngineFixture(b)
			runEngineBench(b, f.e64, f.test)
			reportTrackMetrics(b, f.e64, f.test, nil)
		}},
		{"BenchmarkEngine_Reconstruct_f32", func(b *testing.B) {
			f := precisionEngineFixture(b)
			runEngineBench(b, f.e32, f.test)
			reportTrackMetrics(b, f.e32, f.test, f.e64)
		}},
		{"BenchmarkEngine_Reconstruct_i8", func(b *testing.B) {
			f := precisionEngineFixture(b)
			runEngineBench(b, f.e8, f.test)
			reportTrackMetrics(b, f.e8, f.test, f.e64)
		}},
	}
}

// precisionFixtureState caches one trained model served at every
// precision, so the twin rows (and their parity metrics) measure
// identical weights and events.
type precisionFixtureState struct {
	e64, e32, e8 *recon.Engine
	test         []*repro.Event
	err          error
}

var (
	precisionOnce  sync.Once
	precisionState precisionFixtureState
)

func precisionEngineFixture(b *testing.B) *precisionFixtureState {
	precisionOnce.Do(func() {
		ctx := context.Background()
		spec := repro.Ex3Like(0.02)
		spec.NumEvents = 10
		ds := repro.GenerateDataset(spec, 11)
		train, test := ds.Events[:3], ds.Events[3:]
		// The documented ≤0.02 accuracy budget is defined over a trained
		// model: a barely-trained GNN sits near its decision threshold on
		// many edges, where quantization noise flips decisions. Train long
		// enough (matching recon's parity fixture) that the budget is the
		// property under test, not fixture luck.
		opts := []recon.Option{
			recon.WithSeed(9),
			recon.WithGNN(8, 2),
			recon.WithGNNTraining(60, 3e-3, 2.0),
		}
		r64, err := recon.New(spec, opts...)
		if err == nil {
			err = r64.Fit(ctx, train)
		}
		var r32, r8 *recon.Reconstructor
		var ckpt, ckpt8 string
		if err == nil {
			dir, derr := os.MkdirTemp("", "bench-precision")
			if derr != nil {
				err = derr
			} else {
				ckpt = filepath.Join(dir, "model.ckpt.gz")
				ckpt8 = filepath.Join(dir, "model-i8.ckpt.gz")
				err = r64.SaveCheckpoint(ckpt)
			}
		}
		if err == nil {
			// The quantized engine loads a v4 checkpoint exported from the
			// fitted model, so its activation scales are calibrated on the
			// training events — the canonical int8 serving workflow.
			err = r64.SaveCheckpointInt8(ckpt8)
		}
		if err == nil {
			r32, err = recon.New(spec, append(append([]recon.Option{}, opts...), recon.WithPrecision(recon.Float32))...)
		}
		if err == nil {
			err = r32.LoadCheckpoint(ckpt)
		}
		if err == nil {
			r8, err = recon.New(spec, append(append([]recon.Option{}, opts...), recon.WithPrecision(recon.Int8))...)
		}
		if err == nil {
			err = r8.LoadCheckpoint(ckpt8)
		}
		var e64, e32, e8 *recon.Engine
		if err == nil {
			e64, err = recon.NewEngine(r64, recon.WithWorkers(1))
		}
		if err == nil {
			e32, err = recon.NewEngine(r32, recon.WithWorkers(1))
		}
		if err == nil {
			e8, err = recon.NewEngine(r8, recon.WithWorkers(1))
		}
		precisionState = precisionFixtureState{e64: e64, e32: e32, e8: e8, test: test, err: err}
	})
	if precisionState.err != nil {
		b.Fatal(precisionState.err)
	}
	return &precisionState
}

func runEngineBench(b *testing.B, eng *recon.Engine, events []*repro.Event) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ReconstructBatch(ctx, events); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportEventsPerSec(b, len(events))
}

// reportTrackMetrics attaches aggregate track efficiency
// (Σmatched/Σreconstructable — the Table-1 methodology) and aggregate
// edge purity over the test events; when ref is non-nil (the f32 and
// i8 rows), the absolute parity deltas against the reference engine
// ride along — the mechanical record of the documented accuracy
// budget.
func reportTrackMetrics(b *testing.B, eng *recon.Engine, events []*repro.Event, ref *recon.Engine) {
	eff, purity, err := meanTrackMetrics(eng, events)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(eff, "track_efficiency")
	b.ReportMetric(purity, "edge_purity")
	if ref != nil {
		refEff, refPurity, err := meanTrackMetrics(ref, events)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(abs(eff-refEff), "eff_delta_vs_f64")
		b.ReportMetric(abs(purity-refPurity), "purity_delta_vs_f64")
	}
}

func meanTrackMetrics(eng *recon.Engine, events []*repro.Event) (eff, purity float64, err error) {
	results, err := eng.ReconstructBatch(context.Background(), events)
	if err != nil {
		return 0, 0, err
	}
	matched, reconstructable := 0, 0
	var edges repro.BinaryCounts
	for _, res := range results {
		if res == nil {
			continue
		}
		matched += res.Match.Matched
		reconstructable += res.Match.Reconstructable
		edges.Merge(res.EdgeCounts)
	}
	if reconstructable > 0 {
		eff = float64(matched) / float64(reconstructable)
	}
	return eff, edges.Precision(), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// benchEdges builds deterministic random src/dst index lists.
func benchEdges(m, n int, seed uint64) (src, dst []int) {
	r := rng.New(seed)
	src = make([]int, m)
	dst = make([]int, m)
	for i := range src {
		src[i] = r.Intn(n)
		dst[i] = r.Intn(n)
	}
	return src, dst
}
