package main

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/recon"
)

// This file holds the precision benchmark family: every row exists as
// an _f64/_f32 twin over identical fixtures (the f32 operands are the
// rounded f64 operands), so cmd/benchdiff's pair mode
// (-pair _f64:_f32) reports the float32 speed and bytes-moved ratios
// directly and CI gates the B/op reduction mechanically. The kernel
// twins allocate their outputs inside the timed loop on purpose: B/op
// then measures the bytes the kernel writes per op, which is the
// bandwidth claim under test (f32 must move ≥25% fewer).

func benchCSR32(n, nnzPerRow int, seed uint64) *sparse.CSR32 {
	return sparse.ConvertCSR[float32](benchCSR(n, nnzPerRow, seed))
}

func benchMat32(rows, cols int, seed uint64) *tensor.Dense32 {
	return tensor.ConvertFrom[float32](nil, benchMat(rows, cols, seed))
}

// precisionSuite returns the _f64/_f32 twin rows.
func precisionSuite() []namedBench {
	return []namedBench{
		{"BenchmarkSpMM_f64", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			x := benchMat(2000, 32, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.SpMM(a, x)
			}
		}},
		{"BenchmarkSpMM_f32", func(b *testing.B) {
			a := benchCSR32(2000, 8, 1)
			x := benchMat32(2000, 32, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.SpMM(a, x)
			}
		}},
		{"BenchmarkMatMul_f64", func(b *testing.B) {
			a := benchMat(4096, 64, 1)
			w := benchMat(64, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(a, w)
			}
		}},
		{"BenchmarkMatMul_f32", func(b *testing.B) {
			a := benchMat32(4096, 64, 1)
			w := benchMat32(64, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(a, w)
			}
		}},
		{"BenchmarkSpMMAdd_f64", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			x := benchMat(2000, 32, 3)
			res := benchMat(2000, 32, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.New(2000, 32)
				sparse.SpMMAddInto(out, a, x, res)
			}
		}},
		{"BenchmarkSpMMAdd_f32", func(b *testing.B) {
			a := benchCSR32(2000, 8, 1)
			x := benchMat32(2000, 32, 3)
			res := benchMat32(2000, 32, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewOf[float32](2000, 32)
				sparse.SpMMAddInto(out, a, x, res)
			}
		}},
		{"BenchmarkAddBiasReLU_f64", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			bias := benchMat(1, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.New(4096, 64)
				tensor.AddBiasReLUInto(out, x, bias)
			}
		}},
		{"BenchmarkAddBiasReLU_f32", func(b *testing.B) {
			x := benchMat32(4096, 64, 1)
			bias := benchMat32(1, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewOf[float32](4096, 64)
				tensor.AddBiasReLUInto(out, x, bias)
			}
		}},
		{"BenchmarkGatherConcat3_f64", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			e := benchMat(8192, 16, 2)
			src, dst := benchEdges(8192, 4096, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.New(8192, 16+64+64)
				tensor.GatherConcat3Into(out, e, nil, x, src, x, dst)
			}
		}},
		{"BenchmarkGatherConcat3_f32", func(b *testing.B) {
			x := benchMat32(4096, 64, 1)
			e := benchMat32(8192, 16, 2)
			src, dst := benchEdges(8192, 4096, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := tensor.NewOf[float32](8192, 16+64+64)
				tensor.GatherConcat3Into(out, e, nil, x, src, x, dst)
			}
		}},
		{"BenchmarkEngine_Reconstruct_f64", func(b *testing.B) {
			f := precisionEngineFixture(b)
			runEngineBench(b, f.e64, f.test)
			reportTrackMetrics(b, f.e64, f.test, nil)
		}},
		{"BenchmarkEngine_Reconstruct_f32", func(b *testing.B) {
			f := precisionEngineFixture(b)
			runEngineBench(b, f.e32, f.test)
			reportTrackMetrics(b, f.e32, f.test, f.e64)
		}},
	}
}

// precisionFixtureState caches one trained model served at both
// precisions, so the twin rows (and their parity metrics) measure
// identical weights and events.
type precisionFixtureState struct {
	e64, e32 *recon.Engine
	test     []*repro.Event
	err      error
}

var (
	precisionOnce  sync.Once
	precisionState precisionFixtureState
)

func precisionEngineFixture(b *testing.B) *precisionFixtureState {
	precisionOnce.Do(func() {
		ctx := context.Background()
		spec := repro.Ex3Like(0.02)
		spec.NumEvents = 6
		ds := repro.GenerateDataset(spec, 11)
		train, test := ds.Events[:2], ds.Events[2:]
		opts := []recon.Option{
			recon.WithSeed(9),
			recon.WithGNN(8, 2),
		}
		r64, err := recon.New(spec, opts...)
		if err == nil {
			err = r64.Fit(ctx, train)
		}
		var r32 *recon.Reconstructor
		var ckpt string
		if err == nil {
			dir, derr := os.MkdirTemp("", "bench-precision")
			if derr != nil {
				err = derr
			} else {
				ckpt = filepath.Join(dir, "model.ckpt.gz")
				err = r64.SaveCheckpoint(ckpt)
			}
		}
		if err == nil {
			r32, err = recon.New(spec, append(append([]recon.Option{}, opts...), recon.WithPrecision(recon.Float32))...)
		}
		if err == nil {
			err = r32.LoadCheckpoint(ckpt)
		}
		var e64, e32 *recon.Engine
		if err == nil {
			e64, err = recon.NewEngine(r64, recon.WithWorkers(1))
		}
		if err == nil {
			e32, err = recon.NewEngine(r32, recon.WithWorkers(1))
		}
		precisionState = precisionFixtureState{e64: e64, e32: e32, test: test, err: err}
	})
	if precisionState.err != nil {
		b.Fatal(precisionState.err)
	}
	return &precisionState
}

func runEngineBench(b *testing.B, eng *recon.Engine, events []*repro.Event) {
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ReconstructBatch(ctx, events); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportEventsPerSec(b, len(events))
}

// reportTrackMetrics attaches mean track efficiency and edge purity
// over the test events; when ref is non-nil (the f32 row), the
// absolute parity deltas against the reference engine ride along — the
// mechanical record of the "identical metrics within tolerance" claim.
func reportTrackMetrics(b *testing.B, eng *recon.Engine, events []*repro.Event, ref *recon.Engine) {
	eff, purity, err := meanTrackMetrics(eng, events)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(eff, "track_efficiency")
	b.ReportMetric(purity, "edge_purity")
	if ref != nil {
		refEff, refPurity, err := meanTrackMetrics(ref, events)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(abs(eff-refEff), "eff_delta_vs_f64")
		b.ReportMetric(abs(purity-refPurity), "purity_delta_vs_f64")
	}
}

func meanTrackMetrics(eng *recon.Engine, events []*repro.Event) (eff, purity float64, err error) {
	results, err := eng.ReconstructBatch(context.Background(), events)
	if err != nil {
		return 0, 0, err
	}
	n := 0
	for _, res := range results {
		if res == nil {
			continue
		}
		eff += res.Match.Efficiency()
		purity += res.EdgeCounts.Precision()
		n++
	}
	if n > 0 {
		eff /= float64(n)
		purity /= float64(n)
	}
	return eff, purity, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// benchEdges builds deterministic random src/dst index lists.
func benchEdges(m, n int, seed uint64) (src, dst []int) {
	r := rng.New(seed)
	src = make([]int, m)
	dst = make([]int, m)
	for i := range src {
		src[i] = r.Intn(n)
		dst[i] = r.Intn(n)
	}
	return src, dst
}
