// Command bench runs the repository's benchmark suite programmatically —
// the experiment regenerations of bench_test.go plus the sparse/dense
// kernel microbenchmarks — and emits a BENCH_*.json perf-trajectory
// record (ns/op, B/op, allocs/op per benchmark). PERF.md documents the
// schema and protocol.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_1.json [-baseline BENCH_baseline.json] [-quick] [-procs 1,2,4]
//
// With -baseline, the named prior record is embedded and per-benchmark
// improvement percentages are computed against it. With -procs, the
// kernel and Reconstruct benchmarks are additionally re-run at each
// listed GOMAXPROCS and recorded under procs_sweep with speedup_vs_p1
// metrics — suppressed (speedup_claims_deferred) on a single-CPU host,
// where GOMAXPROCS scaling measures scheduler overhead rather than
// parallelism. cmd/benchdiff compares two records mechanically.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/gpumem"
	"repro/internal/kernels"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sampling"
	"repro/internal/sparse"
	"repro/internal/tensor"
	"repro/internal/workspace"
	"repro/recon"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Improvement compares a benchmark against its baseline (positive = better).
type Improvement struct {
	Name          string  `json:"name"`
	NsPercent     float64 `json:"ns_per_op_pct"`
	BytesPercent  float64 `json:"bytes_per_op_pct"`
	AllocsPercent float64 `json:"allocs_per_op_pct"`
}

// SweepRun is one GOMAXPROCS setting's pass over the sweep suite.
type SweepRun struct {
	Procs      int           `json:"procs"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// ProcsSweep records the -procs GOMAXPROCS scaling sweep. Entries at
// p>1 carry a speedup_vs_p1 metric — unless the host has only one CPU,
// in which case SpeedupClaimsDeferred documents why no speedup is
// claimed (a 1-CPU container cannot demonstrate parallel headroom; the
// sweep still records per-procs timings so overhead is visible).
type ProcsSweep struct {
	NumCPU                int        `json:"num_cpu"`
	Procs                 []int      `json:"procs"`
	SpeedupClaimsDeferred bool       `json:"speedup_claims_deferred,omitempty"`
	DeferredReason        string     `json:"deferred_reason,omitempty"`
	Runs                  []SweepRun `json:"runs"`
}

// Record is the BENCH_*.json schema (see PERF.md).
type Record struct {
	SchemaVersion int           `json:"schema_version"`
	Date          string        `json:"date"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	MaxProcs      int           `json:"maxprocs"`
	NumCPU        int           `json:"num_cpu"`
	Protocol      string        `json:"protocol"`
	Benchmarks    []BenchResult `json:"benchmarks"`
	Sweep         *ProcsSweep   `json:"procs_sweep,omitempty"`
	TileSweep     *TileSweep    `json:"tile_sweep,omitempty"`
	Workspace     struct {
		Gets       int64 `json:"gets"`
		Puts       int64 `json:"puts"`
		Misses     int64 `json:"misses"`
		InUseBytes int64 `json:"in_use_bytes"`
	} `json:"workspace"`
	WorkspaceFitsA100 bool          `json:"workspace_fits_a100_reserve"`
	Baseline          *Record       `json:"baseline,omitempty"`
	Improvements      []Improvement `json:"improvements,omitempty"`
}

func benchOptions() repro.ExperimentOptions {
	return repro.ExperimentOptions{
		Scale:           0.02,
		Events:          4,
		Epochs:          2,
		BatchSize:       128,
		Hidden:          8,
		Steps:           2,
		Seed:            7,
		SamplerOverhead: time.Millisecond,
	}
}

// benchCSR mirrors the fixture of internal/sparse/bench_test.go.
func benchCSR(n, nnzPerRow int, seed uint64) *sparse.CSR {
	r := rng.New(seed)
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			coo.Add(i, r.Intn(n), 1+r.Float64())
		}
	}
	return coo.ToCSR()
}

func benchMat(rows, cols int, seed uint64) *tensor.Dense {
	r := rng.New(seed)
	m := tensor.New(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = r.Float64()*2 - 1
	}
	return m
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

func suite(quick bool) []namedBench {
	o := benchOptions()
	benches := []namedBench{
		{"BenchmarkPipeline_Reconstruct", func(b *testing.B) {
			spec := repro.Ex3Like(0.03)
			spec.NumEvents = 2
			ds := repro.GenerateDataset(spec, 3)
			p := repro.NewPipeline(repro.DefaultPipelineConfig(spec), 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Reconstruct(ds.Events[i%len(ds.Events)])
			}
		}},
		{"BenchmarkEngine_ReconstructSerial", func(b *testing.B) {
			r, events := engineFixture(b)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ev := range events {
					if _, err := r.Reconstruct(ctx, ev); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportEventsPerSec(b, len(events))
		}},
		{"BenchmarkEngine_ReconstructBatch_W1", func(b *testing.B) {
			r, events := engineFixture(b)
			eng, err := recon.NewEngine(r, recon.WithWorkers(1))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ReconstructBatch(ctx, events); err != nil {
					b.Fatal(err)
				}
			}
			reportEventsPerSec(b, len(events))
		}},
		{"BenchmarkEngine_ReconstructBatch_W4", func(b *testing.B) {
			r, events := engineFixture(b)
			eng, err := recon.NewEngine(r, recon.WithWorkers(4))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ReconstructBatch(ctx, events); err != nil {
					b.Fatal(err)
				}
			}
			reportEventsPerSec(b, len(events))
		}},
		{"BenchmarkEngine_OverloadSaturated", func(b *testing.B) {
			// Overload behavior (PR 6): 8 concurrent single-event submitters
			// against a 2-worker/2-slot admission window; each of the b.N
			// submissions either completes or fast-fails with ErrOverloaded.
			// The row reports the reject rate and the p99 latency of admitted
			// requests — the fast-fail contract means admitted work stays fast
			// while excess load bounces instead of stacking queue latency.
			r, events := engineFixture(b)
			eng, err := recon.NewEngine(r, recon.WithWorkers(2), recon.WithQueueDepth(2))
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			const clients = 8
			var next, admitted, rejected atomic.Int64
			var mu sync.Mutex
			var latencies []time.Duration
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						ev := events[i%len(events)]
						start := time.Now()
						_, err := eng.ReconstructBatch(ctx, []*repro.Event{ev})
						if errors.Is(err, recon.ErrOverloaded) {
							rejected.Add(1)
							continue
						}
						if err != nil {
							b.Error(err)
							return
						}
						admitted.Add(1)
						d := time.Since(start)
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			if total := admitted.Load() + rejected.Load(); total > 0 {
				b.ReportMetric(float64(rejected.Load())/float64(total), "reject_rate")
			}
			if len(latencies) > 0 {
				sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
				p99 := latencies[int(0.99*float64(len(latencies)-1))]
				b.ReportMetric(float64(p99.Nanoseconds()), "p99_admitted_ns")
			}
			reportEventsPerSec(b, 1)
		}},
		{"BenchmarkGateway_Route", func(b *testing.B) {
			// The routing hot path alone: consistent-hash pick across a
			// 4-shard ring, no sockets. This is the per-event overhead the
			// gateway adds before any proxying happens.
			gw, err := recon.NewShardGateway([]string{
				"http://10.0.0.1:1", "http://10.0.0.2:1", "http://10.0.0.3:1", "http://10.0.0.4:1",
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := gw.PickShard(uint64(i) * 0x9E3779B97F4A7C15); !ok {
					b.Fatal("no healthy shard")
				}
			}
		}},
		{"BenchmarkGateway_Fanout_S1", gatewayFanoutBench(1)},
		{"BenchmarkGateway_Fanout_S2", gatewayFanoutBench(2)},
		{"BenchmarkSpGEMM", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			c := benchCSR(2000, 8, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.SpGEMM(a, c)
			}
		}},
		{"BenchmarkSpMM", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			x := benchMat(2000, 32, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.SpMM(a, x)
			}
		}},
		{"BenchmarkGatherRowsCSR", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			r := rng.New(4)
			idx := make([]int, 1024)
			for i := range idx {
				idx[i] = r.Intn(2000)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.GatherRows(a, idx)
			}
		}},
		{"BenchmarkMatMul", func(b *testing.B) {
			a := benchMat(4096, 64, 1)
			w := benchMat(64, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(a, w)
			}
		}},
		{"BenchmarkMatMulInto", func(b *testing.B) {
			a := benchMat(4096, 64, 1)
			w := benchMat(64, 64, 2)
			out := tensor.New(4096, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(out, a, w)
			}
		}},
		{"BenchmarkMatMulT", func(b *testing.B) {
			g := benchMat(4096, 64, 1)
			w := benchMat(64, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulT(g, w)
			}
		}},
		{"BenchmarkTMatMul", func(b *testing.B) {
			a := benchMat(4096, 64, 1)
			g := benchMat(4096, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.TMatMul(a, g)
			}
		}},
		{"BenchmarkGatherRows", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			r := rng.New(3)
			idx := make([]int, 8192)
			for i := range idx {
				idx[i] = r.Intn(4096)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.GatherRows(x, idx)
			}
		}},
		{"BenchmarkAddBias", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			bias := benchMat(1, 64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.AddBias(x, bias)
			}
		}},
		{"BenchmarkAddBiasReLUInto", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			bias := benchMat(1, 64, 2)
			out := tensor.New(4096, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.AddBiasReLUInto(out, x, bias)
			}
		}},
		{"BenchmarkGatherConcat3Into", func(b *testing.B) {
			x := benchMat(4096, 64, 1)
			e := benchMat(8192, 16, 2)
			r := rng.New(3)
			src := make([]int, 8192)
			dst := make([]int, 8192)
			for i := range src {
				src[i] = r.Intn(4096)
				dst[i] = r.Intn(4096)
			}
			out := tensor.New(8192, 16+64+64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.GatherConcat3Into(out, e, nil, x, src, x, dst)
			}
		}},
		{"BenchmarkSpMMAddInto", func(b *testing.B) {
			a := benchCSR(2000, 8, 1)
			x := benchMat(2000, 32, 3)
			res := benchMat(2000, 32, 4)
			out := tensor.New(2000, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sparse.SpMMAddInto(out, a, x, res)
			}
		}},
		{"BenchmarkBulkMatrixShaDow256x4", func(b *testing.B) {
			g, eidx := samplingFixture(2000)
			r := rng.New(2)
			var batches [][]int
			for j := 0; j < 4; j++ {
				batches = append(batches, r.SampleWithoutReplacement(2000, 256))
			}
			cfg := sampling.DefaultConfig()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sampling.BulkMatrixShaDow(g, eidx, batches, cfg, r.Split())
			}
		}},
		{"BenchmarkDistTrain_EpochP2_Bucketed", func(b *testing.B) {
			graphs, gnn := distTrainFixture(b)
			cfg := repro.DefaultDistTrainerConfig(gnn)
			cfg.Ranks = 2
			cfg.Strategy = repro.BucketedSync
			cfg.BatchSize = 64
			cfg.Shadow = sampling.Config{Depth: 2, Fanout: 4}
			tr := repro.NewDistTrainer(cfg)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.TrainEpoch(ctx, graphs); err != nil {
					b.Fatal(err)
				}
			}
			cs := tr.CommStats()
			b.ReportMetric(float64(cs.Modeled.Nanoseconds())/float64(b.N), "comm_modeled_ns/op")
		}},
	}
	benches = append(benches, precisionSuite()...)
	if !quick {
		benches = append(benches,
			namedBench{"BenchmarkFigure3_EpochTime_P1", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows := repro.RunFigure3(o, []int{1})
					b.ReportMetric(repro.Figure3Speedups(rows)[1], "speedup")
				}
			}},
			namedBench{"BenchmarkFigure3_EpochTime_P4", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows := repro.RunFigure3(o, []int{4})
					b.ReportMetric(repro.Figure3Speedups(rows)[4], "speedup")
				}
			}},
		)
	}
	return benches
}

// sweepNames selects the kernel and Reconstruct benchmarks the -procs
// sweep re-runs at each GOMAXPROCS setting.
var sweepNames = []string{
	"BenchmarkSpGEMM",
	"BenchmarkSpMM",
	"BenchmarkSpMMAddInto",
	"BenchmarkMatMulInto",
	"BenchmarkMatMulT",
	"BenchmarkTMatMul",
	"BenchmarkGatherRows",
	"BenchmarkAddBias",
	"BenchmarkAddBiasReLUInto",
	"BenchmarkGatherConcat3Into",
	"BenchmarkPipeline_Reconstruct",
}

// parseProcsList parses a -procs value like "1,2,4".
func parseProcsList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad procs entry %q", part)
		}
		out = append(out, p)
	}
	return out, nil
}

// runSweep re-runs the sweep suite under each GOMAXPROCS in procs and
// attaches speedup_vs_p1 metrics — unless the host has a single CPU, in
// which case speedup claims are explicitly deferred: GOMAXPROCS>1 on
// one core measures scheduling overhead, not parallel speedup, and
// printing a "speedup" from it would repeat the BENCH_2/BENCH_3 caveat
// this guard exists to kill.
func runSweep(procs []int) *ProcsSweep {
	sweep := &ProcsSweep{NumCPU: runtime.NumCPU(), Procs: procs}
	if sweep.NumCPU == 1 {
		sweep.SpeedupClaimsDeferred = true
		sweep.DeferredReason = "host has 1 CPU: GOMAXPROCS scaling cannot demonstrate parallel speedup; re-run the sweep on a multi-core host to claim speedup_vs_p1"
		fmt.Fprintln(os.Stderr, "bench: NOTE:", sweep.DeferredReason)
	}
	byName := map[string]func(b *testing.B){}
	for _, nb := range suite(true) {
		byName[nb.name] = nb.fn
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		run := SweepRun{Procs: p}
		for _, name := range sweepNames {
			fn, ok := byName[name]
			if !ok {
				continue
			}
			fmt.Fprintf(os.Stderr, "running %s at GOMAXPROCS=%d...\n", name, p)
			r := testing.Benchmark(fn)
			run.Benchmarks = append(run.Benchmarks, BenchResult{
				Name:        name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
		}
		sweep.Runs = append(sweep.Runs, run)
	}

	// Speedups are attached after every run completes, so the p=1
	// reference may appear anywhere in the -procs list.
	if sweep.SpeedupClaimsDeferred {
		return sweep
	}
	p1 := map[string]float64{}
	for _, run := range sweep.Runs {
		if run.Procs != 1 {
			continue
		}
		for _, b := range run.Benchmarks {
			p1[b.Name] = b.NsPerOp
		}
	}
	if len(p1) == 0 {
		fmt.Fprintln(os.Stderr, "bench: NOTE: -procs list has no p=1 run; speedup_vs_p1 cannot be computed")
		return sweep
	}
	for ri := range sweep.Runs {
		run := &sweep.Runs[ri]
		if run.Procs == 1 {
			continue
		}
		for bi := range run.Benchmarks {
			b := &run.Benchmarks[bi]
			if base, ok := p1[b.Name]; ok && b.NsPerOp > 0 {
				b.Metrics = map[string]float64{"speedup_vs_p1": base / b.NsPerOp}
			}
		}
	}
	return sweep
}

// distTrainFixture builds truth-level graphs and a small GNN config for
// the distributed-trainer benchmark.
func distTrainFixture(b *testing.B) ([]*repro.EventGraph, repro.GNNConfig) {
	spec := repro.Ex3Like(0.02)
	spec.NumEvents = 2
	ds := repro.GenerateDataset(spec, 42)
	p := repro.NewPipeline(repro.DefaultPipelineConfig(spec), 44)
	var graphs []*repro.EventGraph
	for i, ev := range ds.Events {
		graphs = append(graphs, p.BuildTruthLevelGraph(ev, 1.5, uint64(200+i)))
	}
	gnn := repro.GNNConfig{
		NodeFeatures: spec.VertexFeatures,
		EdgeFeatures: spec.EdgeFeatures,
		Hidden:       8,
		Steps:        2,
	}
	return graphs, gnn
}

// gatewayFanoutBench builds a gateway over n real HTTP engine shards
// and measures end-to-end request latency through routing, fan-out,
// proxying, and order-preserving merge. The S1 vs S2 rows isolate what
// splitting one request across shards costs (and buys) against the
// single-shard proxy baseline.
func gatewayFanoutBench(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		spec := repro.Ex3Like(0.02)
		spec.NumEvents = 4
		ds := repro.GenerateDataset(spec, 3)
		urls := make([]string, shards)
		for i := range urls {
			r, err := recon.New(spec,
				recon.WithTruthLevelGraphs(1.0),
				recon.WithThreshold(0),
				recon.WithSeed(2))
			if err != nil {
				b.Fatal(err)
			}
			eng, err := recon.NewEngine(r, recon.WithWorkers(2), recon.WithQueueDepth(16))
			if err != nil {
				b.Fatal(err)
			}
			srv := httptest.NewServer(recon.NewServer(eng))
			b.Cleanup(srv.Close)
			urls[i] = srv.URL
		}
		gw, err := recon.NewShardGateway(urls)
		if err != nil {
			b.Fatal(err)
		}
		req := recon.ReconstructRequest{}
		for _, ev := range ds.Events {
			req.Events = append(req.Events, *recon.EventToJSON(ev))
		}
		body, err := json.Marshal(&req)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hr := httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader(body))
			hr.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			gw.ServeHTTP(w, hr)
			if w.Code != 200 {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
		reportEventsPerSec(b, len(ds.Events))
	}
}

// engineFixture builds the 32-event batch and untrained reconstructor
// shared by the engine benchmarks — identical fixtures so the serial,
// 1-worker, and 4-worker entries measure the same work.
func engineFixture(b *testing.B) (*recon.Reconstructor, []*repro.Event) {
	spec := repro.Ex3Like(0.03)
	spec.NumEvents = 32
	ds := repro.GenerateDataset(spec, 3)
	r, err := recon.New(spec, recon.WithSeed(5))
	if err != nil {
		b.Fatal(err)
	}
	return r, ds.Events
}

// reportEventsPerSec attaches reconstruction throughput to an engine
// benchmark whose inner loop processes n events per iteration.
func reportEventsPerSec(b *testing.B, n int) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "events/s")
	}
}

// samplingFixture mirrors internal/sampling/bench_test.go's benchGraph.
func samplingFixture(n int) (*graph.Graph, *sampling.EdgeIndex) {
	r := rng.New(1)
	var src, dst []int
	for i := 1; i < n; i++ {
		src = append(src, i-1)
		dst = append(dst, i)
	}
	for k := 0; k < 3*n; k++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			src = append(src, a)
			dst = append(dst, b)
		}
	}
	g := graph.New(n, src, dst)
	g.Adjacency()
	return g, sampling.NewEdgeIndex(g)
}

// attachEngineSpeedup records the 4-worker engine's throughput gain
// over the serial loop on the W4 entry. The measured speedup scales
// with available cores: worker-pool parallelism cannot beat serial on
// a single-CPU host, so `cores` is recorded alongside it.
func attachEngineSpeedup(rec *Record) {
	var serial, w4 *BenchResult
	for i := range rec.Benchmarks {
		switch rec.Benchmarks[i].Name {
		case "BenchmarkEngine_ReconstructSerial":
			serial = &rec.Benchmarks[i]
		case "BenchmarkEngine_ReconstructBatch_W4":
			w4 = &rec.Benchmarks[i]
		}
	}
	if serial == nil || w4 == nil || w4.NsPerOp == 0 {
		return
	}
	if w4.Metrics == nil {
		w4.Metrics = map[string]float64{}
	}
	w4.Metrics["speedup_vs_serial"] = serial.NsPerOp / w4.NsPerOp
	w4.Metrics["cores"] = float64(runtime.NumCPU())
}

func pct(baseline, current float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - current) / baseline
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	baselinePath := flag.String("baseline", "", "optional prior BENCH_*.json to diff against")
	quick := flag.Bool("quick", false, "skip the multi-second experiment benchmarks")
	procsFlag := flag.String("procs", "", "comma-separated GOMAXPROCS sweep for the kernel/Reconstruct benchmarks (e.g. 1,2,4); p>1 entries gain speedup_vs_p1 unless the host has 1 CPU")
	tileSweep := flag.Bool("tile-sweep", false, "run the cache-blocking autotuner first: sweep GEMM (MR,JB) and SpMM band shapes per precision, record every candidate under tile_sweep, and run the main suite at the fastest shapes")
	tileSweepQuick := flag.Bool("tile-sweep-quick", false, "tile sweep over a reduced grid and smaller fixtures (implies -tile-sweep); the CI smoke grid")
	tileSweepOnly := flag.Bool("tile-sweep-only", false, "run only the tile sweep and skip the main benchmark suite (implies -tile-sweep)")
	tileSweepAssert := flag.Bool("tile-sweep-assert", false, "exit non-zero unless the sweep explored ≥2 tiled shapes per axis and chose from them — the CI selectability check")
	flag.Parse()
	if *tileSweepQuick || *tileSweepOnly {
		*tileSweep = true
	}

	procs, err := parseProcsList(*procsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: -procs: %v\n", err)
		os.Exit(1)
	}

	// Validate the baseline before spending a minute on benchmarks.
	var base *Record
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: read baseline: %v\n", err)
			os.Exit(1)
		}
		base = &Record{}
		if err := json.Unmarshal(raw, base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parse baseline: %v\n", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
	}

	rec := &Record{
		SchemaVersion: 1,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		MaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Protocol:      "testing.Benchmark per entry (default 1s benchtime), fixtures identical to bench_test.go and the kernel bench files; see PERF.md",
	}
	fmt.Fprintf(os.Stderr, "bench: host maxprocs=%d num_cpu=%d\n", rec.MaxProcs, rec.NumCPU)

	if *tileSweep {
		sw := runTileSweep(*tileSweepQuick)
		rec.TileSweep = sw
		if *tileSweepAssert {
			if err := assertTileSweep(sw); err != nil {
				fmt.Fprintf(os.Stderr, "bench: tile-sweep-assert: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "bench: tile-sweep-assert ok")
		}
		// The main suite (and any -procs sweep) now runs at the shapes
		// the sweep selected.
		kernels.SetDefaultTiling(sw.Chosen)
	}

	suiteBenches := suite(*quick)
	if *tileSweepOnly {
		suiteBenches = nil
	}
	for _, nb := range suiteBenches {
		fmt.Fprintf(os.Stderr, "running %s...\n", nb.name)
		r := testing.Benchmark(nb.fn)
		res := BenchResult{
			Name:        nb.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = map[string]float64{}
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		rec.Benchmarks = append(rec.Benchmarks, res)
	}

	attachEngineSpeedup(rec)
	attachTileMetrics(rec)

	if len(procs) > 0 {
		rec.Sweep = runSweep(procs)
	}

	ws := workspace.ReadStats()
	rec.Workspace.Gets = ws.Gets
	rec.Workspace.Puts = ws.Puts
	rec.Workspace.Misses = ws.Misses
	rec.Workspace.InUseBytes = ws.InUseBytes
	rec.WorkspaceFitsA100 = gpumem.A100().WorkspaceUsage().Fits

	if base != nil {
		rec.Baseline = base
		byName := map[string]BenchResult{}
		for _, b := range base.Benchmarks {
			byName[b.Name] = b
		}
		for _, c := range rec.Benchmarks {
			b, ok := byName[c.Name]
			if !ok {
				continue
			}
			rec.Improvements = append(rec.Improvements, Improvement{
				Name:          c.Name,
				NsPercent:     pct(b.NsPerOp, c.NsPerOp),
				BytesPercent:  pct(float64(b.BytesPerOp), float64(c.BytesPerOp)),
				AllocsPercent: pct(float64(b.AllocsPerOp), float64(c.AllocsPerOp)),
			})
		}
	}

	blob, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rec.Benchmarks))
}
