package main

import (
	"strings"
	"testing"
)

// TestPrecisionSuitePairsComplete pins the twin-row invariants the
// benchdiff pair gates rely on: every _f64 row has an _f32 twin and
// vice versa, and every _i8 row has an _f32 twin (not every kernel is
// quantized, so the i8 requirement runs one way only).
func TestPrecisionSuitePairsComplete(t *testing.T) {
	names := map[string]bool{}
	for _, nb := range precisionSuite() {
		names[nb.name] = true
	}
	if len(names) == 0 {
		t.Fatal("empty precision suite")
	}
	for n := range names {
		var twin string
		switch {
		case strings.HasSuffix(n, "_f64"):
			twin = strings.TrimSuffix(n, "_f64") + "_f32"
		case strings.HasSuffix(n, "_f32"):
			twin = strings.TrimSuffix(n, "_f32") + "_f64"
		case strings.HasSuffix(n, "_i8"):
			twin = strings.TrimSuffix(n, "_i8") + "_f32"
		default:
			t.Fatalf("%s carries no precision suffix", n)
		}
		if !names[twin] {
			t.Fatalf("%s has no twin %s", n, twin)
		}
	}
}

// TestPrecisionSuiteRuns executes every twin row once through the
// benchmark harness (the engine rows train one shared fixture), so the
// BENCH_5 rows and their parity metrics are exercised under go test —
// not only via cmd/bench runs.
func TestPrecisionSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("precision suite trains a model; skipped in -short")
	}
	for _, nb := range precisionSuite() {
		r := testing.Benchmark(nb.fn)
		if r.N < 1 {
			t.Fatalf("%s did not run", nb.name)
		}
		if nb.name == "BenchmarkEngine_Reconstruct_f32" || nb.name == "BenchmarkEngine_Reconstruct_i8" {
			if d, ok := r.Extra["eff_delta_vs_f64"]; !ok || d > 0.02 {
				t.Fatalf("%s: efficiency delta %v (present=%v) exceeds tolerance", nb.name, d, ok)
			}
			if d, ok := r.Extra["purity_delta_vs_f64"]; !ok || d > 0.02 {
				t.Fatalf("%s: purity delta %v (present=%v) exceeds tolerance", nb.name, d, ok)
			}
		}
	}
}

func TestParseProcsList(t *testing.T) {
	got, err := parseProcsList("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Fatalf("parseProcsList: %v %v", got, err)
	}
	if _, err := parseProcsList("0"); err == nil {
		t.Fatal("procs 0 accepted")
	}
	if _, err := parseProcsList("x"); err == nil {
		t.Fatal("procs x accepted")
	}
	if got, err := parseProcsList(""); err != nil || got != nil {
		t.Fatalf("empty procs: %v %v", got, err)
	}
}

func TestAttachEngineSpeedup(t *testing.T) {
	rec := &Record{Benchmarks: []BenchResult{
		{Name: "BenchmarkEngine_ReconstructSerial", NsPerOp: 1000},
		{Name: "BenchmarkEngine_ReconstructBatch_W4", NsPerOp: 500},
	}}
	attachEngineSpeedup(rec)
	if got := rec.Benchmarks[1].Metrics["speedup_vs_serial"]; got != 2 {
		t.Fatalf("speedup_vs_serial = %v, want 2", got)
	}
}
