// Command serve runs the track-reconstruction HTTP front-end: a
// recon.Engine behind a JSON API, loading an optional checkpoint and
// serving concurrent requests.
//
// Endpoints:
//
//	POST /v1/reconstruct  {"events":[...]} and/or {"synthetic":{"count":1,"seed":7}}
//	GET  /healthz         liveness probe
//	GET  /statz           p50/p90/p99 latency + throughput counters
//
// Example smoke run (truth-level graphs make an untrained model produce
// meaningful tracks, since true edges dominate the constructed graph):
//
//	serve -addr :8080 -truth-graphs 1.0 -threshold 0
//	curl -X POST localhost:8080/v1/reconstruct -d '{"synthetic":{"count":1,"seed":7}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro"
	"repro/recon"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataset := flag.String("dataset", "ex3", "dataset family the models were built for: ex3 or ctd")
	scale := flag.Float64("scale", 0.05, "detector spec scale factor")
	checkpoint := flag.String("checkpoint", "", "checkpoint path (from trackrecon -save or SaveCheckpoint); empty = untrained models")
	workers := flag.Int("workers", 4, "engine worker-pool size")
	queue := flag.Int("queue", 8, "in-flight events admitted beyond the workers")
	hidden := flag.Int("hidden", 16, "GNN hidden width (must match the checkpoint)")
	steps := flag.Int("steps", 3, "GNN message-passing layers (must match the checkpoint)")
	threshold := flag.Float64("threshold", 0.5, "stage-4 edge decision threshold")
	truthGraphs := flag.Float64("truth-graphs", -1, "build truth-level graphs with this fake ratio instead of the learned stages 1-3 (<0 = off)")
	seed := flag.Uint64("seed", 1, "model initialization seed (must match the checkpoint)")
	precision := flag.String("precision", "f64", "inference precision for the built-in stages: f64 or f32 (f32 halves kernel memory traffic; checkpoints of any dtype load)")
	flag.Parse()

	prec, ok := recon.ParsePrecision(*precision)
	if !ok {
		log.Fatalf("serve: -precision must be f64 or f32, got %q", *precision)
	}

	var spec repro.DetectorSpec
	if *dataset == "ctd" {
		spec = repro.CTDLike(*scale)
	} else {
		spec = repro.Ex3Like(*scale)
	}

	opts := []recon.Option{
		recon.WithGNN(*hidden, *steps),
		recon.WithThreshold(*threshold),
		recon.WithSeed(*seed),
		recon.WithPrecision(prec),
	}
	if *truthGraphs >= 0 {
		opts = append(opts, recon.WithTruthLevelGraphs(*truthGraphs))
	}
	r, err := recon.New(spec, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *checkpoint != "" {
		if err := r.LoadCheckpoint(*checkpoint); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded checkpoint %s", *checkpoint)
	}

	eng, err := recon.NewEngine(r, recon.WithWorkers(*workers), recon.WithQueueDepth(*queue))
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("serving %s-like reconstruction on %s (workers=%d queue=%d threshold=%v precision=%s)",
		spec.Name, *addr, *workers, *queue, *threshold, prec)
	if err := recon.NewServer(eng).Serve(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
