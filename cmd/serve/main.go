// Command serve runs the track-reconstruction HTTP front-end: a
// recon.Engine behind a JSON API, loading an optional checkpoint and
// serving concurrent requests with admission control, per-request
// deadlines, panic isolation, and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/reconstruct  {"events":[...]} and/or {"synthetic":{"count":1,"seed":7}},
//	                      as application/json or application/x-recon-bin (see
//	                      API.md "Wire format & micro-batching");
//	                      429 + Retry-After when the admission queue is full,
//	                      415 for unknown Content-Type, 413 over -max-body
//	GET  /healthz         liveness probe (503 while draining)
//	GET  /statz           p50/p90/p99 latency, throughput, queue depth,
//	                      rejected and panic-recovery counters
//
// Example smoke run (truth-level graphs make an untrained model produce
// meaningful tracks, since true edges dominate the constructed graph):
//
//	serve -addr :8080 -truth-graphs 1.0 -threshold 0
//	curl -X POST localhost:8080/v1/reconstruct \
//	  -H 'Content-Type: application/json' \
//	  -d '{"synthetic":{"count":1,"seed":7}}'
//
// The -chaos-* flags wrap every pipeline stage with deterministic fault
// injection (internal/faultinject) for resilience drills: the server
// must keep answering — per-event errors in 200 bodies, overload as
// 429s — while panics are recovered and counted in /statz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/recon"
)

// resolveQueueDepth folds the deprecated -queue alias into -queue-depth:
// either flag alone wins, both set to the same value is tolerated, and
// both set to different values is a hard conflict — there is exactly one
// validated queue-depth path after this returns.
func resolveQueueDepth(fs *flag.FlagSet, queueDepth, queue *int) error {
	var depthSet, aliasSet bool
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "queue-depth":
			depthSet = true
		case "queue":
			aliasSet = true
		}
	})
	if depthSet && aliasSet && *queueDepth != *queue {
		return fmt.Errorf("-queue is a deprecated alias for -queue-depth; both set with conflicting values %d and %d", *queue, *queueDepth)
	}
	if aliasSet && !depthSet {
		log.Printf("warning: -queue is deprecated, use -queue-depth")
		*queueDepth = *queue
	}
	if *queueDepth < 0 {
		return fmt.Errorf("-queue-depth must be ≥0, got %d", *queueDepth)
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataset := flag.String("dataset", "ex3", "dataset family the models were built for: ex3 or ctd")
	scale := flag.Float64("scale", 0.05, "detector spec scale factor")
	checkpoint := flag.String("checkpoint", "", "checkpoint path (from trackrecon -save or SaveCheckpoint); empty = untrained models")
	workers := flag.Int("workers", 4, "engine worker-pool size")
	queueDepth := flag.Int("queue-depth", 8, "in-flight events admitted beyond the workers; excess requests get 429")
	queue := flag.Int("queue", 8, "deprecated alias for -queue-depth")
	hidden := flag.Int("hidden", 16, "GNN hidden width (must match the checkpoint)")
	steps := flag.Int("steps", 3, "GNN message-passing layers (must match the checkpoint)")
	threshold := flag.Float64("threshold", 0.5, "stage-4 edge decision threshold")
	truthGraphs := flag.Float64("truth-graphs", -1, "build truth-level graphs with this fake ratio instead of the learned stages 1-3 (<0 = off)")
	seed := flag.Uint64("seed", 1, "model initialization seed (must match the checkpoint)")
	precision := flag.String("precision", "f64", "inference precision for the built-in stages: f64, f32, or i8 (f32 halves kernel memory traffic, i8 quarters it; checkpoints of any dtype load — i8 adopts a v4 checkpoint's calibration and auto-calibrates otherwise)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request reconstruction deadline (0 = none); expired batches answer 503")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch coalescing window (0 = off): concurrent requests arriving within it merge into one engine batch")
	maxBatchEvents := flag.Int("max-batch-events", 16, "dispatch a micro-batch early once it holds this many events")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM waits for in-flight requests before a hard stop")
	maxBody := flag.Int64("max-body", 8<<20, "request body size cap in bytes (413 beyond it)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault-injection decision seed")
	chaosError := flag.Float64("chaos-error", 0, "per-stage-call probability of an injected error")
	chaosPanic := flag.Float64("chaos-panic", 0, "per-stage-call probability of an injected panic")
	chaosDelayRate := flag.Float64("chaos-delay-rate", 0, "per-stage-call probability of an injected latency spike")
	chaosDelay := flag.Duration("chaos-delay", 5*time.Millisecond, "size of an injected latency spike")
	flag.Parse()

	if err := resolveQueueDepth(flag.CommandLine, queueDepth, queue); err != nil {
		log.Fatalf("serve: %v", err)
	}

	prec, ok := recon.ParsePrecision(*precision)
	if !ok {
		log.Fatalf("serve: -precision must be f64, f32, or i8, got %q", *precision)
	}

	var spec repro.DetectorSpec
	if *dataset == "ctd" {
		spec = repro.CTDLike(*scale)
	} else {
		spec = repro.Ex3Like(*scale)
	}

	opts := []recon.Option{
		recon.WithGNN(*hidden, *steps),
		recon.WithThreshold(*threshold),
		recon.WithSeed(*seed),
		recon.WithPrecision(prec),
	}
	if *truthGraphs >= 0 {
		opts = append(opts, recon.WithTruthLevelGraphs(*truthGraphs))
	}
	if *chaosError > 0 || *chaosPanic > 0 || *chaosDelayRate > 0 {
		inj, err := faultinject.New(faultinject.Config{
			Seed:      *chaosSeed,
			ErrorRate: *chaosError,
			PanicRate: *chaosPanic,
			DelayRate: *chaosDelayRate,
			Delay:     *chaosDelay,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, recon.WithStageWrapper(inj))
		log.Printf("chaos mode: seed=%d error=%v panic=%v delay=%v/%v",
			*chaosSeed, *chaosError, *chaosPanic, *chaosDelayRate, *chaosDelay)
	}
	r, err := recon.New(spec, opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *checkpoint != "" {
		if err := r.LoadCheckpoint(*checkpoint); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded checkpoint %s", *checkpoint)
	}

	engOpts := []recon.Option{
		recon.WithWorkers(*workers),
		recon.WithQueueDepth(*queueDepth),
		recon.WithMaxBatchEvents(*maxBatchEvents),
	}
	if *requestTimeout > 0 {
		engOpts = append(engOpts, recon.WithRequestTimeout(*requestTimeout))
	}
	if *batchWindow > 0 {
		engOpts = append(engOpts, recon.WithBatchWindow(*batchWindow))
	}
	eng, err := recon.NewEngine(r, engOpts...)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("draining: waiting up to %v for in-flight requests", *drainTimeout)
	}()

	log.Printf("serving %s-like reconstruction on %s (workers=%d queue-depth=%d threshold=%v precision=%s batch-window=%v)",
		spec.Name, *addr, *workers, *queueDepth, *threshold, prec, *batchWindow)
	srv := recon.NewServer(eng,
		recon.WithDrainTimeout(*drainTimeout),
		recon.WithMaxBodyBytes(*maxBody))
	if err := srv.Serve(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("drain complete")
}
