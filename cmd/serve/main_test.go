package main

import (
	"flag"
	"io"
	"testing"
)

// queueFlags builds a fresh flag set with the two queue flags and parses
// args against it.
func queueFlags(t *testing.T, args []string) (*flag.FlagSet, *int, *int) {
	t.Helper()
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	queueDepth := fs.Int("queue-depth", 8, "")
	queue := fs.Int("queue", 8, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs, queueDepth, queue
}

func TestResolveQueueDepth(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    int
		wantErr bool
	}{
		{name: "neither set keeps default", args: nil, want: 8},
		{name: "canonical flag wins", args: []string{"-queue-depth", "4"}, want: 4},
		{name: "alias alone still works", args: []string{"-queue", "3"}, want: 3},
		{name: "both set agreeing", args: []string{"-queue", "5", "-queue-depth", "5"}, want: 5},
		{name: "both set conflicting", args: []string{"-queue", "5", "-queue-depth", "6"}, wantErr: true},
		{name: "negative depth rejected", args: []string{"-queue-depth", "-1"}, wantErr: true},
		{name: "negative alias rejected", args: []string{"-queue", "-2"}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, depth, queue := queueFlags(t, tc.args)
			err := resolveQueueDepth(fs, depth, queue)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got queue-depth %d", *depth)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *depth != tc.want {
				t.Fatalf("queue-depth %d, want %d", *depth, tc.want)
			}
		})
	}
}
