// Command figure3 regenerates Figure 3 of the paper: epoch time across
// simulated GPU counts, split into Sampling / Training / AllReduce, for
// the PyG-style baseline (sequential per-batch ShaDow, per-matrix
// all-reduce) and our implementation (matrix-based bulk sampling,
// coalesced all-reduce).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro"
)

func main() {
	dataset := flag.String("dataset", "ex3", "dataset family: ex3 or ctd")
	scale := flag.Float64("scale", 0.05, "dataset scale factor")
	events := flag.Int("events", 6, "training event graphs")
	hidden := flag.Int("hidden", 16, "GNN hidden width (paper: 64)")
	steps := flag.Int("steps", 3, "GNN message-passing layers (paper: 8)")
	batch := flag.Int("batch", 256, "global batch size (paper: 256)")
	procsFlag := flag.String("procs", "", "comma-separated process counts (default per dataset)")
	overhead := flag.Duration("sampler-overhead", 15*time.Millisecond,
		"simulated per-invocation sampler launch overhead (calibration in EXPERIMENTS.md)")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	var procs []int
	if *procsFlag == "" {
		if *dataset == "ctd" {
			procs = []int{4, 8, 16} // the paper's CTD sweep
		} else {
			procs = []int{1, 4, 8} // the paper's Ex3 sweep
		}
	} else {
		for _, tok := range strings.Split(*procsFlag, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fmt.Println("bad -procs:", err)
				return
			}
			procs = append(procs, p)
		}
	}

	o := repro.ExperimentOptions{
		Dataset:         *dataset,
		Scale:           *scale,
		Events:          *events,
		Hidden:          *hidden,
		Steps:           *steps,
		BatchSize:       *batch,
		Seed:            *seed,
		SamplerOverhead: *overhead,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("FIGURE 3: epoch time, dataset=%s scale=%v procs=%v\n", *dataset, *scale, procs)
	fmt.Println("(times are simulated-device epoch costs; see EXPERIMENTS.md for the timing model)")
	rows, err := repro.Figure3(ctx, o, procs)
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	if err != nil {
		fmt.Println("interrupted:", err)
		return
	}
	fmt.Println("\nspeedup (PyG / Ours):")
	for _, p := range procs {
		if s, ok := repro.Figure3Speedups(rows)[p]; ok {
			fmt.Printf("  p=%-2d %.2fx\n", p, s)
		}
	}
}
