// Command loadgen is the serving-path load harness (PR 8): it drives
// concurrent /v1/reconstruct traffic — JSON or binary wire format,
// open or closed loop — against a target server, gateway, or an
// in-process engine sweep over micro-batch windows, and records
// p50/p99 latency, throughput, and reject rate as BENCH-schema rows so
// serving SLOs are benchdiff-gated like the kernels.
//
// Closed loop (-rate 0): each of -conns workers keeps exactly one
// request in flight — throughput is what the server sustains. Open
// loop (-rate N): requests are injected at N req/s regardless of
// completions, so queueing delay shows up in the latency tail instead
// of being hidden by back-pressure (the coordinated-omission trap).
//
// Modes:
//
//	loadgen -self -batch-windows 0,2ms -format both -out BENCH_8.json
//	    in-process sweep: one engine per batch window, rows named
//	    BenchmarkLoadgen_BW<window>_<fmt>; each windowed engine's merged
//	    responses are first checked bitwise against the unbatched
//	    window-0 reference.
//
//	loadgen -target http://host:8080 -label BW2ms -format both -strict
//	    external target: statuses other than 200/429 (or zero
//	    throughput) fail the run — the CI smoke gate.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/recon"
	"repro/recon/wire"
)

// benchResult and record mirror the cmd/bench BENCH_*.json schema
// (PERF.md) so benchdiff can diff and pair-gate loadgen rows.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type record struct {
	SchemaVersion int           `json:"schema_version"`
	Date          string        `json:"date"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	MaxProcs      int           `json:"maxprocs"`
	NumCPU        int           `json:"num_cpu"`
	Protocol      string        `json:"protocol"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

// loadConfig is one measured run against one URL in one format.
type loadConfig struct {
	url      string
	binary   bool
	conns    int
	rate     float64 // requests/s injected; 0 = closed loop
	duration time.Duration
}

// loadResult aggregates one run's outcome.
type loadResult struct {
	requests  int64
	rejected  int64 // 429s: expected under overload
	errors    int64 // anything other than 200/429
	wireBytes int64 // request + response bytes on the wire
	events    int64 // events carried by 200 responses
	latencies []time.Duration
	elapsed   time.Duration
	badStatus string // first unexpected status line seen, for -strict
}

// percentile reads the p-quantile from a sorted latency slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// windowLabel names a batch-window sweep point: BW0, BW2ms, ...
func windowLabel(d time.Duration) string {
	if d == 0 {
		return "BW0"
	}
	return "BW" + strings.ReplaceAll(d.String(), ".", "p")
}

// parseWindows parses the -batch-windows sweep list, e.g. "0,2ms,5ms".
func parseWindows(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part == "0" {
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("bad batch window %q: %w", part, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("bad batch window %q: negative", part)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, errors.New("empty -batch-windows list")
	}
	return out, nil
}

// buildRequests pre-generates the client-side request population: one
// request per generated event, so decode cost on the server is real
// traffic, not synthetic-spec shorthand.
func buildRequests(spec repro.DetectorSpec, events int, seed uint64, perReq int) []recon.ReconstructRequest {
	spec.NumEvents = events
	ds := repro.GenerateDataset(spec, seed)
	var reqs []recon.ReconstructRequest
	for i := 0; i < len(ds.Events); i += perReq {
		req := recon.ReconstructRequest{}
		for j := i; j < i+perReq && j < len(ds.Events); j++ {
			req.Events = append(req.Events, *recon.EventToJSON(ds.Events[j]))
		}
		reqs = append(reqs, req)
	}
	return reqs
}

// encodeBodies renders every request in one wire format.
func encodeBodies(reqs []recon.ReconstructRequest, binary bool) ([][]byte, error) {
	out := make([][]byte, len(reqs))
	for i := range reqs {
		if binary {
			buf, err := wire.AppendRequest(nil, &reqs[i])
			if err != nil {
				return nil, err
			}
			out[i] = buf
		} else {
			buf, err := json.Marshal(&reqs[i])
			if err != nil {
				return nil, err
			}
			out[i] = buf
		}
	}
	return out, nil
}

// runLoad drives one measured run. Workers share an atomic cursor over
// the pre-encoded bodies; in open-loop mode a pacer goroutine injects
// send tokens at the configured rate.
func runLoad(client *http.Client, cfg loadConfig, bodies [][]byte) *loadResult {
	contentType := wire.ContentTypeJSON
	if cfg.binary {
		contentType = wire.ContentTypeBinary
	}
	res := &loadResult{}
	var (
		mu     sync.Mutex
		cursor atomic.Int64
	)
	deadline := time.Now().Add(cfg.duration)

	var tokens chan struct{}
	if cfg.rate > 0 {
		tokens = make(chan struct{}, cfg.conns)
		go func() {
			tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.rate))
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				select {
				case tokens <- struct{}{}:
				default: // injector ahead of the fleet: drop, don't block the pacer
				}
			}
			close(tokens)
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			var requests, rejected, errCount, bytesTotal, events int64
			bad := ""
			for time.Now().Before(deadline) {
				if tokens != nil {
					if _, ok := <-tokens; !ok {
						break
					}
				}
				body := bodies[int(cursor.Add(1)-1)%len(bodies)]
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, cfg.url+"/v1/reconstruct", bytes.NewReader(body))
				if err != nil {
					errCount++
					continue
				}
				req.Header.Set("Content-Type", contentType)
				req.Header.Set("Accept", contentType)
				resp, err := client.Do(req)
				if err != nil {
					errCount++
					continue
				}
				respBody, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				requests++
				bytesTotal += int64(len(body) + len(respBody))
				switch {
				case rerr != nil:
					errCount++
				case resp.StatusCode == http.StatusOK:
					lats = append(lats, lat)
					events += int64(countResults(cfg.binary, respBody))
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected++
				default:
					errCount++
					if bad == "" {
						bad = fmt.Sprintf("%d: %s", resp.StatusCode, firstLine(respBody))
					}
				}
			}
			mu.Lock()
			res.requests += requests
			res.rejected += rejected
			res.errors += errCount
			res.wireBytes += bytesTotal
			res.events += events
			res.latencies = append(res.latencies, lats...)
			if res.badStatus == "" {
				res.badStatus = bad
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res
}

// countResults counts the events a 200 response carries, in either
// encoding, without a full decode on the JSON path.
func countResults(binary bool, body []byte) int {
	if binary {
		resp, err := wire.DecodeResponse(body)
		if err != nil {
			return 0
		}
		return len(resp.Results)
	}
	var resp struct {
		Results []json.RawMessage `json:"results"`
	}
	if json.Unmarshal(body, &resp) != nil {
		return 0
	}
	return len(resp.Results)
}

func firstLine(b []byte) string {
	s := string(b)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// toRow converts one run into its BENCH row. ns/op is the p50 request
// latency; B/op is the average wire bytes per request — the quantity
// the `-pair _json:_bin` benchdiff gate checks the binary encoding
// against.
func toRow(name string, res *loadResult) benchResult {
	row := benchResult{
		Name:       name,
		Iterations: int(res.requests),
		NsPerOp:    float64(percentile(res.latencies, 0.50)),
	}
	if res.requests > 0 {
		row.BytesPerOp = res.wireBytes / res.requests
	}
	secs := res.elapsed.Seconds()
	served := res.requests - res.rejected - res.errors
	row.Metrics = map[string]float64{
		"rps":          float64(served) / secs,
		"events_per_s": float64(res.events) / secs,
		"p50_ms":       float64(percentile(res.latencies, 0.50)) / float64(time.Millisecond),
		"p99_ms":       float64(percentile(res.latencies, 0.99)) / float64(time.Millisecond),
		"reject_rate":  float64(res.rejected) / float64(max64(res.requests, 1)),
		"requests":     float64(res.requests),
		"rejected":     float64(res.rejected),
		"errors":       float64(res.errors),
	}
	return row
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// resultsBlob posts one request and returns the marshaled results array
// — the bitwise unit of the parity check (Elapsed legitimately varies).
func resultsBlob(client *http.Client, url string, body []byte, binary bool) ([]byte, error) {
	contentType := wire.ContentTypeJSON
	if binary {
		contentType = wire.ContentTypeBinary
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/reconstruct", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Accept", contentType)
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, firstLine(raw))
	}
	if binary {
		dec, err := wire.DecodeResponse(raw)
		if err != nil {
			return nil, err
		}
		return json.Marshal(dec.Results)
	}
	var dec recon.ReconstructResponse
	if err := json.Unmarshal(raw, &dec); err != nil {
		return nil, err
	}
	return json.Marshal(dec.Results)
}

// checkParity verifies the micro-batching determinism contract over
// live HTTP: every request's results through the windowed server —
// fired concurrently so requests actually coalesce, in both encodings —
// must be byte-identical to the window-0 reference.
func checkParity(client *http.Client, refURL, testURL string, bodiesJSON, bodiesBin [][]byte) error {
	refs := make([][]byte, len(bodiesJSON))
	for i, body := range bodiesJSON {
		blob, err := resultsBlob(client, refURL, body, false)
		if err != nil {
			return fmt.Errorf("reference request %d: %w", i, err)
		}
		refs[i] = blob
	}
	var wg sync.WaitGroup
	errs := make([]error, len(bodiesJSON))
	for i := range bodiesJSON {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, binary := bodiesJSON[i], false
			if i%2 == 1 {
				body, binary = bodiesBin[i], true
			}
			blob, err := resultsBlob(client, testURL, body, binary)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(blob, refs[i]) {
				errs[i] = errors.New("merged-batch results diverge from unbatched reference")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("parity request %d: %w", i, err)
		}
	}
	return nil
}

// selfServer starts an in-process server with the given batch window
// and returns its base URL and a shutdown func.
func selfServer(r *recon.Reconstructor, workers, queueDepth, maxBatch int, window time.Duration) (string, func(), error) {
	engOpts := []recon.Option{
		recon.WithWorkers(workers),
		recon.WithQueueDepth(queueDepth),
		recon.WithMaxBatchEvents(maxBatch),
	}
	if window > 0 {
		engOpts = append(engOpts, recon.WithBatchWindow(window))
	}
	eng, err := recon.NewEngine(r, engOpts...)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: recon.NewServer(eng)}
	go func() { _ = hs.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = hs.Close() }, nil
}

func main() {
	target := flag.String("target", "", "base URL of a running serve/shardgw instance; empty requires -self")
	self := flag.Bool("self", false, "run against in-process engines, sweeping -batch-windows")
	label := flag.String("label", "BW0", "row label for -target mode (rows: BenchmarkLoadgen_<label>_<fmt>)")
	format := flag.String("format", "both", "wire format to drive: json, bin, or both")
	conns := flag.Int("conns", 8, "concurrent connections (closed-loop workers)")
	rate := flag.Float64("rate", 0, "open-loop request injection rate in req/s (0 = closed loop)")
	duration := flag.Duration("duration", 5*time.Second, "measured duration per run")
	events := flag.Int("events", 32, "client-side event population to cycle through")
	perReq := flag.Int("events-per-request", 1, "events carried per request")
	scale := flag.Float64("scale", 0.02, "detector spec scale for generated events")
	seed := flag.Uint64("seed", 3, "event generation seed")
	dataset := flag.String("dataset", "ex3", "dataset family: ex3 or ctd")
	batchWindows := flag.String("batch-windows", "0,2ms", "-self sweep: comma-separated micro-batch windows")
	workers := flag.Int("workers", 4, "-self engine worker-pool size")
	queueDepth := flag.Int("queue-depth", 64, "-self engine queue depth")
	maxBatch := flag.Int("max-batch-events", 16, "-self micro-batch early-dispatch size")
	strict := flag.Bool("strict", false, "exit 1 on any non-200/429 status, zero throughput, or parity failure")
	precision := flag.String("precision", "f64", "inference precision: f64, f32, or i8 — builds the -self engines at that precision and suffixes non-f64 row labels (_f32/_i8) so benchdiff can pair precision twins")
	out := flag.String("out", "", "write BENCH-schema JSON here ('' = stdout)")
	flag.Parse()

	if (*target == "") == !*self {
		log.Fatal("loadgen: exactly one of -target or -self is required")
	}
	prec, ok := recon.ParsePrecision(*precision)
	if !ok {
		log.Fatalf("loadgen: -precision must be f64, f32, or i8, got %q", *precision)
	}
	// Precision tags the rows so f64/f32/i8 sweeps of the same window
	// coexist in one BENCH file as benchdiff-pairable twins.
	precSuffix := ""
	if prec != recon.Float64 {
		precSuffix = "_" + prec.String()
	}
	var formats []bool // binary?
	switch *format {
	case "json":
		formats = []bool{false}
	case "bin":
		formats = []bool{true}
	case "both":
		formats = []bool{false, true}
	default:
		log.Fatalf("loadgen: -format must be json, bin, or both, got %q", *format)
	}

	spec := repro.Ex3Like(*scale)
	if *dataset == "ctd" {
		spec = repro.CTDLike(*scale)
	}
	reqs := buildRequests(spec, *events, *seed, *perReq)
	bodiesJSON, err := encodeBodies(reqs, false)
	if err != nil {
		log.Fatalf("loadgen: encode json: %v", err)
	}
	bodiesBin, err := encodeBodies(reqs, true)
	if err != nil {
		log.Fatalf("loadgen: encode binary: %v", err)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *conns}}
	rec := record{
		SchemaVersion: 1,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		MaxProcs:      runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Protocol: fmt.Sprintf("cmd/loadgen conns=%d rate=%v duration=%v events=%d per-req=%d scale=%v seed=%d precision=%s; "+
			"ns/op = p50 request latency, B/op = wire bytes per request; see PERF.md PR 8",
			*conns, *rate, *duration, *events, *perReq, *scale, *seed, prec),
	}
	failed := false

	runOne := func(url, lbl string) {
		for _, binary := range formats {
			fmtName, bodies := "json", bodiesJSON
			if binary {
				fmtName, bodies = "bin", bodiesBin
			}
			cfg := loadConfig{url: url, binary: binary, conns: *conns, rate: *rate, duration: *duration}
			res := runLoad(client, cfg, bodies)
			name := fmt.Sprintf("BenchmarkLoadgen_%s_%s", lbl, fmtName)
			row := toRow(name, res)
			rec.Benchmarks = append(rec.Benchmarks, row)
			log.Printf("%s: %d reqs (%d rejected, %d errors) rps=%.1f p50=%.2fms p99=%.2fms B/op=%d",
				name, res.requests, res.rejected, res.errors,
				row.Metrics["rps"], row.Metrics["p50_ms"], row.Metrics["p99_ms"], row.BytesPerOp)
			if res.badStatus != "" {
				log.Printf("%s: unexpected status %s", name, res.badStatus)
			}
			if *strict && (res.errors > 0 || res.requests == 0 || res.requests == res.rejected) {
				failed = true
			}
		}
	}

	if *self {
		windows, err := parseWindows(*batchWindows)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		r, err := recon.New(spec,
			recon.WithTruthLevelGraphs(1.0),
			recon.WithThreshold(0),
			recon.WithSeed(2),
			recon.WithPrecision(prec))
		if err != nil {
			log.Fatal(err)
		}
		refURL, stopRef, err := selfServer(r, *workers, *queueDepth, *maxBatch, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer stopRef()
		for _, w := range windows {
			url, stop := refURL, func() {}
			if w > 0 {
				url, stop, err = selfServer(r, *workers, *queueDepth, *maxBatch, w)
				if err != nil {
					log.Fatal(err)
				}
				// The determinism gate before the clock starts: merged
				// responses must be bitwise equal to the unbatched reference.
				if err := checkParity(client, refURL, url, bodiesJSON, bodiesBin); err != nil {
					log.Printf("parity check failed for %s: %v", windowLabel(w), err)
					failed = true
				}
			}
			runOne(url, windowLabel(w)+precSuffix)
			stop()
		}
	} else {
		runOne(strings.TrimRight(*target, "/"), *label+precSuffix)
	}

	blob, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	if failed {
		log.Fatal("loadgen: strict mode failed (errors, zero throughput, or parity divergence)")
	}
}
