package main

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/recon"
)

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(sorted, 1); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestWindowLabel(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{0, "BW0"},
		{2 * time.Millisecond, "BW2ms"},
		{2500 * time.Microsecond, "BW2p5ms"}, // dots would break benchdiff row regexes
	} {
		if got := windowLabel(tc.d); got != tc.want {
			t.Fatalf("windowLabel(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestParseWindows(t *testing.T) {
	got, err := parseWindows("0, 2ms,500us")
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 2 * time.Millisecond, 500 * time.Microsecond}
	if len(got) != len(want) {
		t.Fatalf("parsed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "nope", "-2ms"} {
		if _, err := parseWindows(bad); err == nil {
			t.Fatalf("parseWindows(%q) accepted", bad)
		}
	}
}

func TestBuildAndEncodeBodies(t *testing.T) {
	reqs := buildRequests(repro.Ex3Like(0.01), 4, 3, 2)
	if len(reqs) != 2 || len(reqs[0].Events) != 2 {
		t.Fatalf("grouping: %d requests, %d events in first", len(reqs), len(reqs[0].Events))
	}
	jsonBodies, err := encodeBodies(reqs, false)
	if err != nil {
		t.Fatal(err)
	}
	binBodies, err := encodeBodies(reqs, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if len(binBodies[i]) >= len(jsonBodies[i]) {
			t.Fatalf("request %d: binary body (%d B) not smaller than JSON (%d B)",
				i, len(binBodies[i]), len(jsonBodies[i]))
		}
	}
}

func TestToRowMetrics(t *testing.T) {
	res := &loadResult{
		requests:  10,
		rejected:  2,
		errors:    0,
		wireBytes: 1000,
		events:    8,
		latencies: []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond},
		elapsed:   time.Second,
	}
	row := toRow("BenchmarkLoadgen_X_json", res)
	if row.BytesPerOp != 100 || row.Iterations != 10 {
		t.Fatalf("row = %+v", row)
	}
	if row.Metrics["reject_rate"] != 0.2 || row.Metrics["rps"] != 8 {
		t.Fatalf("metrics = %+v", row.Metrics)
	}
	if row.NsPerOp != float64(2*time.Millisecond) {
		t.Fatalf("ns/op = %v", row.NsPerOp)
	}
}

// TestSelfSweepEndToEnd drives the real harness path in miniature: an
// in-process window-0 reference and a windowed server, the bitwise
// parity gate between them, and a short closed-loop run in each format.
func TestSelfSweepEndToEnd(t *testing.T) {
	spec := repro.Ex3Like(0.01)
	reqs := buildRequests(spec, 4, 3, 1)
	bodiesJSON, err := encodeBodies(reqs, false)
	if err != nil {
		t.Fatal(err)
	}
	bodiesBin, err := encodeBodies(reqs, true)
	if err != nil {
		t.Fatal(err)
	}

	r, err := recon.New(spec,
		recon.WithTruthLevelGraphs(1.0),
		recon.WithThreshold(0),
		recon.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	refURL, stopRef, err := selfServer(r, 2, 16, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stopRef()
	batchURL, stopBatch, err := selfServer(r, 2, 16, 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer stopBatch()

	client := &http.Client{}
	if err := checkParity(client, refURL, batchURL, bodiesJSON, bodiesBin); err != nil {
		t.Fatalf("parity: %v", err)
	}

	for _, binary := range []bool{false, true} {
		bodies := bodiesJSON
		if binary {
			bodies = bodiesBin
		}
		res := runLoad(client, loadConfig{
			url: batchURL, binary: binary, conns: 2, duration: 400 * time.Millisecond,
		}, bodies)
		if res.requests == 0 || res.errors > 0 || res.badStatus != "" {
			t.Fatalf("binary=%v: %d requests, %d errors, status %q",
				binary, res.requests, res.errors, res.badStatus)
		}
		if res.events == 0 {
			t.Fatalf("binary=%v: no events counted from 200 responses", binary)
		}
	}

	// Open loop: the pacer must inject roughly rate*duration requests.
	res := runLoad(client, loadConfig{
		url: refURL, binary: true, conns: 2, rate: 50, duration: 400 * time.Millisecond,
	}, bodiesBin)
	if res.requests == 0 || res.errors > 0 {
		t.Fatalf("open loop: %d requests, %d errors", res.requests, res.errors)
	}
}

func TestFirstLine(t *testing.T) {
	if got := firstLine([]byte("line one\nline two")); got != "line one" {
		t.Fatalf("firstLine = %q", got)
	}
	if got := firstLine([]byte(strings.Repeat("x", 300))); len(got) != 200 {
		t.Fatalf("firstLine length = %d", len(got))
	}
}
