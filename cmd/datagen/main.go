// Command datagen generates a synthetic dataset and writes it to disk
// for use by trackrecon and trainpipe. The same spec flags (-dataset,
// -scale) configure cmd/serve, which must match the checkpoint it loads.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	dataset := flag.String("dataset", "ex3", "dataset family: ex3 or ctd")
	scale := flag.Float64("scale", 0.05, "scale factor (1 = paper size)")
	events := flag.Int("events", 20, "number of events")
	seed := flag.Uint64("seed", 42, "generation seed")
	out := flag.String("o", "dataset.gob.gz", "output path")
	flag.Parse()

	var spec repro.DetectorSpec
	if *dataset == "ctd" {
		spec = repro.CTDLike(*scale)
	} else {
		spec = repro.Ex3Like(*scale)
	}
	spec.NumEvents = *events
	ds := repro.GenerateDataset(spec, *seed)
	if err := repro.SaveDataset(*out, ds); err != nil {
		log.Fatal(err)
	}
	st := ds.ComputeStats()
	fmt.Printf("wrote %s: %d %s-like events, avg %.0f hits and %.0f truth edges per event\n",
		*out, st.Graphs, st.Name, st.AvgVertices, st.AvgTruthEdges)
}
