// Command trainpipe trains the GNN stage with the paper's minibatch DDP
// pipeline on a dataset, printing per-epoch losses, phase times, and
// validation precision/recall — the training workflow behind Figures 3
// and 4, exposed directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/recon"
)

func main() {
	in := flag.String("i", "", "dataset path (from datagen); empty = generate ex3 @ 0.05")
	epochs := flag.Int("epochs", 8, "epochs")
	batch := flag.Int("batch", 256, "global batch size")
	procs := flag.Int("procs", 2, "simulated GPUs")
	hidden := flag.Int("hidden", 16, "GNN hidden width")
	steps := flag.Int("steps", 3, "GNN layers")
	impl := flag.String("impl", "ours", "training impl: ours | pyg | fullgraph")
	seed := flag.Uint64("seed", 11, "seed")
	flag.Parse()

	var ds *repro.Dataset
	var err error
	if *in != "" {
		ds, err = repro.LoadDataset(*in)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		spec := repro.Ex3Like(0.05)
		spec.NumEvents = 8
		ds = repro.GenerateDataset(spec, 42)
	}
	trainEvs, valEvs, _ := ds.Split(0.75, 0.25)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Event graphs come from the recon truth-level builder (ground-truth
	// edges plus random fakes), decoupling GNN training from stage 1-3.
	rec, err := recon.New(ds.Spec, recon.WithTruthLevelGraphs(1.5), recon.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	buildAll := func(evs []*repro.Event) []*repro.EventGraph {
		graphs := make([]*repro.EventGraph, 0, len(evs))
		for _, ev := range evs {
			eg, err := rec.BuildGraph(ctx, ev)
			if err != nil {
				log.Fatal(err)
			}
			graphs = append(graphs, eg)
		}
		return graphs
	}
	train, val := buildAll(trainEvs), buildAll(valEvs)

	gnn := repro.GNNConfig{
		NodeFeatures: ds.Spec.VertexFeatures,
		EdgeFeatures: ds.Spec.EdgeFeatures,
		Hidden:       *hidden,
		Steps:        *steps,
	}
	var cfg repro.TrainerConfig
	switch *impl {
	case "pyg":
		cfg = repro.PyGBaselineConfig(gnn, *procs)
	case "fullgraph":
		cfg = repro.DefaultTrainerConfig(gnn)
	default:
		cfg = repro.OursConfig(gnn, *procs)
	}
	cfg.BatchSize = *batch
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	tr := repro.NewTrainer(cfg)

	fmt.Printf("training impl=%s procs=%d batch=%d on %d graphs\n", *impl, *procs, *batch, len(train))
	for e := 0; e < *epochs; e++ {
		if ctx.Err() != nil {
			fmt.Println("interrupted")
			return
		}
		var stats repro.EpochStats
		if *impl == "fullgraph" {
			stats = tr.TrainEpochFullGraph(train)
		} else {
			stats = tr.TrainEpochMinibatch(train)
		}
		counts := tr.Evaluate(val)
		extra := ""
		if stats.BulkK > 0 {
			extra = fmt.Sprintf(" k=%d", stats.BulkK)
		}
		if stats.Skipped > 0 {
			extra += fmt.Sprintf(" skipped=%d", stats.Skipped)
		}
		fmt.Printf("epoch %2d: loss=%.4f steps=%d P=%.4f R=%.4f [%v]%s\n",
			e, stats.Loss, stats.Steps, counts.Precision(), counts.Recall(),
			stats.Timer.Total().Round(time.Millisecond), extra)
	}
}
