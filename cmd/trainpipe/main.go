// Command trainpipe trains the GNN stage with the paper's minibatch DDP
// pipeline on a dataset, printing per-epoch losses, phase times, and
// validation precision/recall — the training workflow behind Figures 3
// and 4, exposed directly.
//
// With -impl dist the GNN stage trains through the end-to-end
// distributed trainer (recon.TrainDistributed): P rank goroutines,
// bulk-sampled ShaDow minibatches, and the selected gradient
// synchronization strategy (-sync permatrix|coalesced|bucketed), with a
// loss trajectory that is bit-identical at every -procs value.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/recon"
)

func main() {
	in := flag.String("i", "", "dataset path (from datagen); empty = generate ex3 @ 0.05")
	epochs := flag.Int("epochs", 8, "epochs")
	batch := flag.Int("batch", 256, "global batch size")
	procs := flag.Int("procs", 2, "simulated GPUs")
	hidden := flag.Int("hidden", 16, "GNN hidden width")
	steps := flag.Int("steps", 3, "GNN layers")
	impl := flag.String("impl", "ours", "training impl: ours | pyg | fullgraph | dist")
	seed := flag.Uint64("seed", 11, "seed")
	sync := flag.String("sync", "coalesced", "dist impl: gradient sync strategy (permatrix | coalesced | bucketed)")
	bulk := flag.Int("bulk", 4, "dist impl: batches stacked per bulk sampler call")
	bucketBytes := flag.Int("bucket-bytes", 0, "dist impl: bucket cap in bytes for -sync bucketed (0 = default)")
	flag.Parse()

	var ds *repro.Dataset
	var err error
	if *in != "" {
		ds, err = repro.LoadDataset(*in)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		spec := repro.Ex3Like(0.05)
		spec.NumEvents = 8
		ds = repro.GenerateDataset(spec, 42)
	}
	trainEvs, valEvs, _ := ds.Split(0.75, 0.25)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Event graphs come from the recon truth-level builder (ground-truth
	// edges plus random fakes), decoupling GNN training from stage 1-3.
	rec, err := recon.New(ds.Spec, recon.WithTruthLevelGraphs(1.5), recon.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	buildAll := func(evs []*repro.Event) []*repro.EventGraph {
		graphs := make([]*repro.EventGraph, 0, len(evs))
		for _, ev := range evs {
			eg, err := rec.BuildGraph(ctx, ev)
			if err != nil {
				log.Fatal(err)
			}
			graphs = append(graphs, eg)
		}
		return graphs
	}
	train, val := buildAll(trainEvs), buildAll(valEvs)

	if *impl == "dist" {
		trainDistributed(ctx, train, val, *epochs, *batch, *procs, *hidden, *steps, *seed, *sync, *bulk, *bucketBytes)
		return
	}

	gnn := repro.GNNConfig{
		NodeFeatures: ds.Spec.VertexFeatures,
		EdgeFeatures: ds.Spec.EdgeFeatures,
		Hidden:       *hidden,
		Steps:        *steps,
	}
	var cfg repro.TrainerConfig
	switch *impl {
	case "pyg":
		cfg = repro.PyGBaselineConfig(gnn, *procs)
	case "fullgraph":
		cfg = repro.DefaultTrainerConfig(gnn)
	default:
		cfg = repro.OursConfig(gnn, *procs)
	}
	cfg.BatchSize = *batch
	cfg.Epochs = *epochs
	cfg.Seed = *seed
	tr := repro.NewTrainer(cfg)

	fmt.Printf("training impl=%s procs=%d batch=%d on %d graphs\n", *impl, *procs, *batch, len(train))
	for e := 0; e < *epochs; e++ {
		if ctx.Err() != nil {
			fmt.Println("interrupted")
			return
		}
		var stats repro.EpochStats
		if *impl == "fullgraph" {
			stats = tr.TrainEpochFullGraph(train)
		} else {
			stats = tr.TrainEpochMinibatch(train)
		}
		counts := tr.Evaluate(val)
		extra := ""
		if stats.BulkK > 0 {
			extra = fmt.Sprintf(" k=%d", stats.BulkK)
		}
		if stats.Skipped > 0 {
			extra += fmt.Sprintf(" skipped=%d", stats.Skipped)
		}
		fmt.Printf("epoch %2d: loss=%.4f steps=%d P=%.4f R=%.4f [%v]%s\n",
			e, stats.Loss, stats.Steps, counts.Precision(), counts.Recall(),
			stats.Timer.Total().Round(time.Millisecond), extra)
	}
}

// trainDistributed routes GNN-stage training through the end-to-end
// distributed trainer and evaluates the resulting classifier.
func trainDistributed(ctx context.Context, train, val []*repro.EventGraph,
	epochs, batch, procs, hidden, steps int, seed uint64, sync string, bulk, bucketBytes int) {
	strategy := recon.CoalescedSync
	switch sync {
	case "permatrix":
		strategy = recon.PerMatrixSync
	case "coalesced":
	case "bucketed":
		strategy = recon.BucketedSync
	default:
		log.Fatalf("unknown -sync %q", sync)
	}
	fmt.Printf("training impl=dist procs=%d batch=%d sync=%s bulk=%d on %d graphs\n",
		procs, batch, sync, bulk, len(train))
	start := time.Now()
	res, err := recon.TrainDistributed(ctx, train,
		recon.WithRanks(procs),
		recon.WithSyncStrategy(strategy),
		recon.WithBulkBatches(bulk),
		recon.WithBucketBytes(bucketBytes),
		recon.WithBatchSize(batch),
		recon.WithGNN(hidden, steps),
		recon.WithGNNTraining(epochs, 3e-3, 1),
		recon.WithSeed(seed),
	)
	if err != nil && err != context.Canceled {
		log.Fatal(err)
	}
	for e, ep := range res.Epochs {
		fmt.Printf("epoch %2d: loss=%.4f steps=%d [sampling=%v training=%v comm=%v]\n",
			e, ep.Loss, ep.Steps,
			ep.Sampling.Round(time.Millisecond), ep.Training.Round(time.Millisecond),
			ep.Comm.Round(time.Microsecond))
	}
	if err == context.Canceled {
		fmt.Println("interrupted")
		return
	}
	prec, rec, everr := res.Evaluate(ctx, val, 0.5)
	if everr != nil {
		log.Fatal(everr)
	}
	fmt.Printf("done in %v: %d collectives (%s), %.1f KiB logical, modeled comm %v, val P=%.4f R=%.4f\n",
		time.Since(start).Round(time.Millisecond), res.Comm.Calls, sync,
		float64(res.Comm.LogicalBytes)/1024, res.Comm.Modeled.Round(time.Microsecond), prec, rec)
}
