// Command trackrecon trains the full pipeline on a generated dataset and
// reconstructs tracks on its held-out events concurrently, reporting
// edge and track metrics per event — the end-user workflow of the
// library. With -save it writes a checkpoint cmd/serve can load.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
	"repro/recon"
)

func main() {
	in := flag.String("i", "", "dataset path (from datagen); empty = generate ex3 @ 0.05")
	hidden := flag.Int("hidden", 16, "GNN hidden width")
	steps := flag.Int("steps", 3, "GNN message-passing layers")
	gnnEpochs := flag.Int("gnn-epochs", 20, "GNN training epochs")
	workers := flag.Int("workers", 4, "engine workers for held-out reconstruction")
	save := flag.String("save", "", "write the trained checkpoint here (load with cmd/serve -checkpoint)")
	saveInt8 := flag.String("save-int8", "", "write a quantized v4 checkpoint here: int8 weights plus activation scales calibrated on the training events (serve it with cmd/serve -precision i8)")
	seed := flag.Uint64("seed", 9, "seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var ds *repro.Dataset
	var err error
	if *in != "" {
		ds, err = repro.LoadDataset(*in)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		spec := repro.Ex3Like(0.05)
		spec.NumEvents = 10
		ds = repro.GenerateDataset(spec, 42)
	}
	train, val, test := ds.Split(0.8, 0.1)
	fmt.Printf("dataset %s: %d train / %d val / %d test events\n",
		ds.Spec.Name, len(train), len(val), len(test))

	r, err := recon.New(ds.Spec,
		recon.WithGNN(*hidden, *steps),
		recon.WithGNNTraining(*gnnEpochs, 3e-3, 2.0),
		recon.WithSeed(*seed),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training the learned stages (embedding, filter, GNN)...")
	if err := r.Fit(ctx, train); err != nil {
		log.Fatal(err)
	}
	if *save != "" {
		if err := r.SaveCheckpoint(*save); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n\n", *save)
	}
	if *saveInt8 != "" {
		// Fit retained the training events, so the export calibrates
		// activation scales on the same distribution the model trained on.
		if err := r.SaveCheckpointInt8(*saveInt8); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("int8 checkpoint written to %s\n\n", *saveInt8)
	}

	eng, err := recon.NewEngine(r, recon.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	results, err := eng.ReconstructBatch(ctx, test)
	if err != nil {
		log.Fatal(err)
	}

	var agg repro.BinaryCounts
	effSum, fakeSum := 0.0, 0.0
	for i, res := range results {
		agg.Merge(res.EdgeCounts)
		effSum += res.Match.Efficiency()
		fakeSum += res.Match.FakeRate()
		fmt.Printf("event %d: %3d candidates | edge P=%.3f R=%.3f | track eff=%.3f fake=%.3f\n",
			i, len(res.Tracks), res.EdgeCounts.Precision(), res.EdgeCounts.Recall(),
			res.Match.Efficiency(), res.Match.FakeRate())
	}
	n := float64(len(test))
	fmt.Printf("\noverall: edge P=%.3f R=%.3f | mean track eff=%.3f mean fake=%.3f\n",
		agg.Precision(), agg.Recall(), effSum/n, fakeSum/n)
}
