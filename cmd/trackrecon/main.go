// Command trackrecon trains the full pipeline on a generated dataset and
// reconstructs tracks on its held-out events, reporting edge and track
// metrics per event — the end-user workflow of the library.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	in := flag.String("i", "", "dataset path (from datagen); empty = generate ex3 @ 0.05")
	hidden := flag.Int("hidden", 16, "GNN hidden width")
	steps := flag.Int("steps", 3, "GNN message-passing layers")
	gnnEpochs := flag.Int("gnn-epochs", 20, "GNN training epochs")
	seed := flag.Uint64("seed", 9, "seed")
	flag.Parse()

	var ds *repro.Dataset
	var err error
	if *in != "" {
		ds, err = repro.LoadDataset(*in)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		spec := repro.Ex3Like(0.05)
		spec.NumEvents = 10
		ds = repro.GenerateDataset(spec, 42)
	}
	train, val, test := ds.Split(0.8, 0.1)
	fmt.Printf("dataset %s: %d train / %d val / %d test events\n",
		ds.Spec.Name, len(train), len(val), len(test))

	cfg := repro.DefaultPipelineConfig(ds.Spec)
	cfg.GNN.Hidden = *hidden
	cfg.GNN.Steps = *steps
	p := repro.NewPipeline(cfg, *seed)

	fmt.Println("training stages 1-3 (embedding, graph construction, filter)...")
	if err := p.TrainStages13(train, *seed+1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("training stage 4 (interaction GNN)...")
	var graphs []*repro.EventGraph
	for _, ev := range train {
		graphs = append(graphs, p.BuildGraph(ev))
	}
	loss := p.TrainGNN(graphs, *gnnEpochs, 3e-3, 2.0)
	fmt.Printf("final GNN loss %.4f\n\n", loss)

	var agg repro.BinaryCounts
	effSum, fakeSum := 0.0, 0.0
	for i, ev := range test {
		res := p.Reconstruct(ev)
		agg.Merge(res.EdgeCounts)
		effSum += res.Match.Efficiency()
		fakeSum += res.Match.FakeRate()
		fmt.Printf("event %d: %3d candidates | edge P=%.3f R=%.3f | track eff=%.3f fake=%.3f\n",
			i, len(res.Tracks), res.EdgeCounts.Precision(), res.EdgeCounts.Recall(),
			res.Match.Efficiency(), res.Match.FakeRate())
	}
	n := float64(len(test))
	fmt.Printf("\noverall: edge P=%.3f R=%.3f | mean track eff=%.3f mean fake=%.3f\n",
		agg.Precision(), agg.Recall(), effSum/n, fakeSum/n)
}
