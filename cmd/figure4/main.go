// Command figure4 regenerates Figure 4 of the paper: precision and
// recall convergence on Ex3 for full-graph training (the original
// Exa.TrkX behaviour, skipping graphs that exceed device memory), ShaDow
// minibatch training with the PyG-style implementation, and ShaDow
// training with our implementation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
)

func main() {
	scale := flag.Float64("scale", 0.05, "dataset scale factor")
	events := flag.Int("events", 8, "event graphs")
	epochs := flag.Int("epochs", 12, "training epochs (paper: 30)")
	hidden := flag.Int("hidden", 16, "GNN hidden width (paper: 64)")
	steps := flag.Int("steps", 3, "GNN message-passing layers (paper: 8)")
	batch := flag.Int("batch", 256, "batch size (paper: 256)")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := repro.Figure4(ctx, repro.ExperimentOptions{
		Dataset:   "ex3",
		Scale:     *scale,
		Events:    *events,
		Epochs:    *epochs,
		Hidden:    *hidden,
		Steps:     *steps,
		BatchSize: *batch,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatalf("interrupted: %v", err)
	}
	fmt.Printf("FIGURE 4: convergence on Ex3 (full-graph skipped %d graphs/epoch for memory)\n\n", res.Skipped)
	fmt.Printf("%5s | %-21s | %-21s | %-21s\n", "", "full-graph", "ShaDow (PyG impl)", "ShaDow (ours)")
	fmt.Printf("%5s | %10s %10s | %10s %10s | %10s %10s\n",
		"epoch", "precision", "recall", "precision", "recall", "precision", "recall")
	for i := range res.FullGraph.Points {
		fg, pyg, ours := res.FullGraph.Points[i], res.PyG.Points[i], res.Ours.Points[i]
		fmt.Printf("%5d | %10.4f %10.4f | %10.4f %10.4f | %10.4f %10.4f\n",
			i, fg.Precision, fg.Recall, pyg.Precision, pyg.Recall, ours.Precision, ours.Recall)
	}
	fmt.Println("\nfinal:")
	fmt.Printf("  full-graph:        P=%.4f R=%.4f\n", res.FullGraph.Final().Precision, res.FullGraph.Final().Recall)
	fmt.Printf("  ShaDow (PyG impl): P=%.4f R=%.4f\n", res.PyG.Final().Precision, res.PyG.Final().Recall)
	fmt.Printf("  ShaDow (ours):     P=%.4f R=%.4f\n", res.Ours.Final().Precision, res.Ours.Final().Recall)
}
