// Command benchdiff compares two BENCH_*.json records produced by
// cmd/bench and fails (exit 1) on performance regressions, making perf
// trajectories mechanically checkable in CI and review:
//
//	go run ./cmd/benchdiff old.json new.json [-ns-tol 10]
//
// A regression is any shared benchmark whose ns/op grew by more than
// -ns-tol percent (default 10), or whose allocs/op grew at all — the
// zero-allocation contract of the hot kernels admits no tolerance.
// Benchmarks present in only one record are reported but never fail the
// diff (suites legitimately grow).
//
// Pair mode compares suffix-paired rows WITHIN one record instead:
//
//	go run ./cmd/benchdiff -pair _f64:_f32 [-pair-min-bytes-drop 25] BENCH_5.json
//
// Every benchmark named X<old-suffix> is matched with X<new-suffix> and
// the ns/op and B/op ratios are reported — how the precision (or any
// other suffixed variant) family compares on the same host and run.
// With -pair-min-bytes-drop N, the diff fails unless every pair's B/op
// dropped by at least N percent, gating e.g. the float32 bandwidth win
// mechanically; -pair-min-ns-drop N gates the ns/op ratio the same way
// (N=0 means "the new suffix must not be slower" — the int8-beats-f32
// speed gate). Unpaired rows are ignored.
//
// Two-record mode can also demand an improvement, not just the absence
// of regressions: -require-ns-drop N (with -match scoping the claim)
// fails unless at least one shared benchmark's ns/op dropped by ≥N
// percent — how the tile-sweep's ≥15% GEMM/SpMM win is gated in CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// benchResult mirrors the cmd/bench BenchResult fields benchdiff reads.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// record mirrors the cmd/bench Record fields benchdiff reads.
type record struct {
	Date       string        `json:"date"`
	MaxProcs   int           `json:"maxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func load(path string) (*record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// runPairMode compares rows named X<oldSuf> against X<newSuf> within
// one record, printing the ns/op and B/op ratios, and returns the
// number of pairs that missed a gate: B/op reduction below minBytesDrop
// percent, or ns/op reduction below minNsDrop percent (minNsDrop < 0
// disables the ns gate; 0 demands the new suffix be no slower).
func runPairMode(rec *record, oldSuf, newSuf string, minBytesDrop, minNsDrop float64, matchRe *regexp.Regexp) int {
	byName := map[string]benchResult{}
	for _, b := range rec.Benchmarks {
		byName[b.Name] = b
	}
	type pair struct {
		base     string
		old, new benchResult
	}
	var pairs []pair
	for _, b := range rec.Benchmarks {
		if !strings.HasSuffix(b.Name, oldSuf) {
			continue
		}
		base := strings.TrimSuffix(b.Name, oldSuf)
		if matchRe != nil && !matchRe.MatchString(base) {
			continue
		}
		nb, ok := byName[base+newSuf]
		if !ok {
			fmt.Printf("%-40s   (no %s twin)\n", b.Name, newSuf)
			continue
		}
		pairs = append(pairs, pair{base, b, nb})
	}
	if len(pairs) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no %s/%s pairs found\n", oldSuf, newSuf)
		os.Exit(2)
	}

	failures := 0
	fmt.Printf("%-40s %12s %12s %8s %12s %12s %8s\n",
		"benchmark", oldSuf+" ns", newSuf+" ns", "ns ratio", oldSuf+" B/op", newSuf+" B/op", "ΔB%")
	for _, p := range pairs {
		nsRatio := 0.0
		if p.new.NsPerOp > 0 {
			nsRatio = p.old.NsPerOp / p.new.NsPerOp
		}
		bytesDrop := 0.0
		if p.old.BytesPerOp > 0 {
			bytesDrop = 100 * float64(p.old.BytesPerOp-p.new.BytesPerOp) / float64(p.old.BytesPerOp)
		}
		nsDrop := 0.0
		if p.old.NsPerOp > 0 {
			nsDrop = 100 * (p.old.NsPerOp - p.new.NsPerOp) / p.old.NsPerOp
		}
		verdict := ""
		if minBytesDrop > 0 && bytesDrop < minBytesDrop {
			verdict = fmt.Sprintf("  FAIL: B/op drop %.1f%% < %.0f%%", bytesDrop, minBytesDrop)
			failures++
		}
		if minNsDrop >= 0 && nsDrop < minNsDrop {
			verdict += fmt.Sprintf("  FAIL: ns/op drop %.1f%% < %.0f%%", nsDrop, minNsDrop)
			failures++
		}
		fmt.Printf("%-40s %12.0f %12.0f %7.2fx %12d %12d %+7.1f%%%s\n",
			p.base, p.old.NsPerOp, p.new.NsPerOp, nsRatio,
			p.old.BytesPerOp, p.new.BytesPerOp, -bytesDrop, verdict)
	}
	return failures
}

// maxNsDrop returns the largest ns/op percentage drop among benchmarks
// present in both records, and the name of the benchmark achieving it.
func maxNsDrop(oldBy map[string]benchResult, newBenches []benchResult) (best float64, name string) {
	best = -1e18
	for _, nb := range newBenches {
		ob, ok := oldBy[nb.Name]
		if !ok || ob.NsPerOp <= 0 {
			continue
		}
		drop := 100 * (ob.NsPerOp - nb.NsPerOp) / ob.NsPerOp
		if drop > best {
			best, name = drop, nb.Name
		}
	}
	return best, name
}

func main() {
	nsTol := flag.Float64("ns-tol", 10, "ns/op growth tolerance in percent")
	match := flag.String("match", "", "only compare benchmarks whose name matches this regexp")
	pairSuffixes := flag.String("pair", "", "pair mode: compare rows suffixed OLD:NEW (e.g. _f64:_f32) within ONE record")
	pairMinBytesDrop := flag.Float64("pair-min-bytes-drop", 0, "pair mode: fail unless every pair's B/op dropped by at least this percent")
	pairMinNsDrop := flag.Float64("pair-min-ns-drop", -1, "pair mode: fail unless every pair's ns/op dropped by at least this percent (0 = new suffix must not be slower; negative disables)")
	requireNsDrop := flag.Float64("require-ns-drop", 0, "two-record mode: fail unless at least one shared benchmark's ns/op dropped by at least this percent (scope with -match)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] old.json new.json\n")
		fmt.Fprintf(flag.CommandLine.Output(), "       benchdiff -pair OLDSUF:NEWSUF [flags] record.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var pairRe *regexp.Regexp
	var err error
	if *match != "" {
		pairRe, err = regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -match: %v\n", err)
			os.Exit(2)
		}
	}
	if *pairSuffixes != "" {
		parts := strings.SplitN(*pairSuffixes, ":", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" || flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		rec, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		failures := runPairMode(rec, parts[0], parts[1], *pairMinBytesDrop, *pairMinNsDrop, pairRe)
		if failures > 0 {
			fmt.Printf("\nbenchdiff: %d pair gate failure(s)\n", failures)
			os.Exit(1)
		}
		fmt.Println("\nbenchdiff: all pairs within gate")
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	matchRe := pairRe
	if matchRe != nil {
		filter := func(bs []benchResult) []benchResult {
			var out []benchResult
			for _, b := range bs {
				if matchRe.MatchString(b.Name) {
					out = append(out, b)
				}
			}
			return out
		}
		oldRec.Benchmarks = filter(oldRec.Benchmarks)
		newRec.Benchmarks = filter(newRec.Benchmarks)
	}
	if oldRec.MaxProcs != newRec.MaxProcs {
		fmt.Printf("NOTE: maxprocs differs (%d vs %d); ns/op comparison may be meaningless\n",
			oldRec.MaxProcs, newRec.MaxProcs)
	}

	oldBy := map[string]benchResult{}
	for _, b := range oldRec.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := map[string]bool{}

	regressions := 0
	fmt.Printf("%-44s %14s %14s %8s %8s\n", "benchmark", "old ns/op", "new ns/op", "Δns%", "Δallocs")
	for _, nb := range newRec.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-44s %14s %14.0f %8s %8s  (new)\n", nb.Name, "-", nb.NsPerOp, "-", "-")
			continue
		}
		dNs := pct(ob.NsPerOp, nb.NsPerOp)
		dAllocs := nb.AllocsPerOp - ob.AllocsPerOp
		verdict := ""
		if dNs > *nsTol {
			verdict = "  REGRESSION: ns/op"
			regressions++
		}
		if dAllocs > 0 {
			verdict += "  REGRESSION: allocs/op"
			regressions++
		}
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%% %+8d%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, dNs, dAllocs, verdict)
	}
	for _, ob := range oldRec.Benchmarks {
		if !seen[ob.Name] {
			fmt.Printf("%-44s %14.0f %14s %8s %8s  (removed)\n", ob.Name, ob.NsPerOp, "-", "-", "-")
		}
	}

	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s) beyond tolerance (ns/op > +%.0f%% or any allocs/op growth)\n",
			regressions, *nsTol)
		os.Exit(1)
	}
	if *requireNsDrop > 0 {
		best, name := maxNsDrop(oldBy, newRec.Benchmarks)
		if best < *requireNsDrop {
			fmt.Printf("\nbenchdiff: no shared benchmark improved ns/op by ≥%.0f%% (best: %s at %.1f%%)\n",
				*requireNsDrop, name, best)
			os.Exit(1)
		}
		fmt.Printf("\nbenchdiff: improvement gate met by %s (ns/op -%.1f%%)\n", name, best)
	}
	fmt.Println("\nbenchdiff: no regressions")
}
