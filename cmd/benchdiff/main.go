// Command benchdiff compares two BENCH_*.json records produced by
// cmd/bench and fails (exit 1) on performance regressions, making perf
// trajectories mechanically checkable in CI and review:
//
//	go run ./cmd/benchdiff old.json new.json [-ns-tol 10]
//
// A regression is any shared benchmark whose ns/op grew by more than
// -ns-tol percent (default 10), or whose allocs/op grew at all — the
// zero-allocation contract of the hot kernels admits no tolerance.
// Benchmarks present in only one record are reported but never fail the
// diff (suites legitimately grow).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

// benchResult mirrors the cmd/bench BenchResult fields benchdiff reads.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// record mirrors the cmd/bench Record fields benchdiff reads.
type record struct {
	Date       string        `json:"date"`
	MaxProcs   int           `json:"maxprocs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func load(path string) (*record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

func main() {
	nsTol := flag.Float64("ns-tol", 10, "ns/op growth tolerance in percent")
	match := flag.String("match", "", "only compare benchmarks whose name matches this regexp")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	oldRec, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRec, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var matchRe *regexp.Regexp
	if *match != "" {
		matchRe, err = regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -match: %v\n", err)
			os.Exit(2)
		}
	}
	if matchRe != nil {
		filter := func(bs []benchResult) []benchResult {
			var out []benchResult
			for _, b := range bs {
				if matchRe.MatchString(b.Name) {
					out = append(out, b)
				}
			}
			return out
		}
		oldRec.Benchmarks = filter(oldRec.Benchmarks)
		newRec.Benchmarks = filter(newRec.Benchmarks)
	}
	if oldRec.MaxProcs != newRec.MaxProcs {
		fmt.Printf("NOTE: maxprocs differs (%d vs %d); ns/op comparison may be meaningless\n",
			oldRec.MaxProcs, newRec.MaxProcs)
	}

	oldBy := map[string]benchResult{}
	for _, b := range oldRec.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := map[string]bool{}

	regressions := 0
	fmt.Printf("%-44s %14s %14s %8s %8s\n", "benchmark", "old ns/op", "new ns/op", "Δns%", "Δallocs")
	for _, nb := range newRec.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Printf("%-44s %14s %14.0f %8s %8s  (new)\n", nb.Name, "-", nb.NsPerOp, "-", "-")
			continue
		}
		dNs := pct(ob.NsPerOp, nb.NsPerOp)
		dAllocs := nb.AllocsPerOp - ob.AllocsPerOp
		verdict := ""
		if dNs > *nsTol {
			verdict = "  REGRESSION: ns/op"
			regressions++
		}
		if dAllocs > 0 {
			verdict += "  REGRESSION: allocs/op"
			regressions++
		}
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%% %+8d%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, dNs, dAllocs, verdict)
	}
	for _, ob := range oldRec.Benchmarks {
		if !seen[ob.Name] {
			fmt.Printf("%-44s %14.0f %14s %8s %8s  (removed)\n", ob.Name, ob.NsPerOp, "-", "-", "-")
		}
	}

	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s) beyond tolerance (ns/op > +%.0f%% or any allocs/op growth)\n",
			regressions, *nsTol)
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no regressions")
}
